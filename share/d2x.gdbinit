# D2X helper macros for the stock debugger (paper §3.3, Table 2).
# Written once per debugger; DSL-independent. Load with the debugger's
# macro loader (the Go API is macros.Install; cmd/d2xdbg loads it
# automatically). Mirrors internal/d2x/macros/macros.go.
define xbt
  call d2x_runtime::command_xbt($rip, $rsp)
end
define xframe
  call d2x_runtime::command_xframe($rip, $rsp, "$arg0")
end
define xlist
  call d2x_runtime::command_xlist($rip, $rsp)
end
define xvars
  call d2x_runtime::command_xvars($rip, $rsp, "$arg0")
end
define xbreak
  eval "%s", d2x_runtime::command_xbreak($rip, "$arg0")
end
define xdel
  eval "%s", d2x_runtime::command_xdel("$arg0")
end
