// Quickstart: the smallest end-to-end D2X workflow.
//
//  1. Stage a function with the buildit framework (D2X enabled) — this is
//     the "DSL compiler" role; the first-stage program is THIS file.
//  2. Link: the generated mini-C gets the D2X tables inside it, standard
//     debug info is produced, and the D2X runtime is linked in.
//  3. Attach the stock debugger and use the D2X commands: the extended
//     stack points back at the staging lines below, and the erased static
//     variable is visible with the value it had at generation time.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"strings"

	"d2x/internal/buildit"
	"d2x/internal/d2x"
	"d2x/internal/minic"
)

func main() {
	// ---- Stage 1: write the program that writes the program. ----
	b := buildit.NewBuilder()
	buildit.EnableD2X(b) // one line opts the whole DSL into D2X

	f := b.Func("sum_squares", []buildit.Param{{Name: "n", Type: minic.IntType}}, minic.IntType)
	unroll := buildit.NewStatic(f, "unroll", 4) // erased from generated code
	total := f.Decl("total", f.IntLit(0))
	// First-stage loop: unrolls into `unroll` copies of the body. The
	// countdown value is snapshotted onto each generated line, so the
	// debugger can show how many copies remained when a line was made.
	for unroll.Get() > 0 {
		f.AddAssign(total, f.Mul(f.Arg(0), f.Arg(0)))
		unroll.Set(unroll.Get() - 1)
	}
	f.Return(total)

	m := b.Func("main", nil, minic.IntType)
	m.Printf("%d\n", m.Call("sum_squares", minic.IntType, m.IntLit(5)))
	m.Return(m.IntLit(0))

	// ---- Link: code + D2X tables + debug info + runtime. ----
	build, err := b.Link("quickstart_gen.c", d2x.LinkOptions{})
	if err != nil {
		fail(err)
	}
	fmt.Println("---- generated code ----")
	fmt.Print(build.Source[:strings.Index(build.Source, "// ---- D2X debug tables")])

	// ---- Debug: stock debugger + D2X macros. ----
	d, err := build.NewSession(os.Stdout)
	if err != nil {
		fail(err)
	}
	fmt.Println("---- debugger session ----")
	line := 0
	for i, l := range strings.Split(build.Source, "\n") {
		if strings.Contains(l, "total_1 += n * n;") {
			line = i + 1
			break
		}
	}
	for _, cmd := range []string{
		fmt.Sprintf("break quickstart_gen.c:%d", line),
		"run",
		"xbt",           // extended stack -> the f.AddAssign line above
		"xvars",         // extended variables at this line
		"xvars unroll",  // the erased static's value when this line was generated
		"print total_1", // ordinary second-stage print still works
		"delete",
		"continue",
	} {
		fmt.Printf("(gdb) %s\n", cmd)
		if err := d.Execute(cmd); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "quickstart:", err)
	os.Exit(1)
}
