// Einsum: the paper's Figure 10/11 scenario — a tensor DSL prototyped on
// the BuildIt framework in a few hundred lines, debuggable through D2X
// without a single debugging-related line in the DSL itself.
//
// The program initialises b[j] = 1 and computes c[i] = 2 * a[i][j] * b[j]
// (matrix-vector multiply). The DSL's constant-propagation analysis runs
// through static state, so the generated kernel multiplies by the literal
// 1 — and the debugger can show that analysis result (b.constant_val = 1)
// at the paused line.
//
// Run with: go run ./examples/einsum [M N]
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"d2x/internal/buildit"
	"d2x/internal/d2x"
	"d2x/internal/einsum"
	"d2x/internal/minic"
)

func main() {
	M, N := 16, 8
	if len(os.Args) == 3 {
		var err1, err2 error
		M, err1 = strconv.Atoi(os.Args[1])
		N, err2 = strconv.Atoi(os.Args[2])
		if err1 != nil || err2 != nil || M < 1 || N < 1 {
			fail(fmt.Errorf("bad dimensions %v", os.Args[1:]))
		}
	}

	b := buildit.NewBuilder()
	buildit.EnableD2X(b)

	// ---- The DSL input (Figure 10), written against the einsum API. ----
	f := b.Func("m_v_mul", []buildit.Param{
		{Name: "output", Type: einsum.IntArrayType},
		{Name: "matrix", Type: einsum.IntArrayType},
		{Name: "input", Type: einsum.IntArrayType},
	}, minic.VoidType)
	env := einsum.New(f)
	c := env.Tensor("c", f.Arg(0), M)
	a := env.Tensor("a", f.Arg(1), M, N)
	bt := env.Tensor("b", f.Arg(2), N)
	i, j := einsum.NewIndex("i"), einsum.NewIndex("j")
	must(bt.Assign(einsum.Const(1), j))                                  // b[j] = 1
	must(c.Assign(einsum.Mul(einsum.Const(2), a.At(i, j), bt.At(j)), i)) // c[i] = 2*a[i][j]*b[j]
	f.Return(buildit.Expr{})

	// ---- A harness main. ----
	m := b.Func("main", nil, minic.IntType)
	out := m.DeclArr("output", minic.IntType, m.IntLit(int64(M)))
	mat := m.DeclArr("matrix", minic.IntType, m.IntLit(int64(M*N)))
	in := m.DeclArr("input", minic.IntType, m.IntLit(int64(N)))
	m.For("k", m.IntLit(0), m.IntLit(int64(M*N)), func(k buildit.Expr) {
		m.Assign(m.Index(mat, k), m.Mod(k, m.IntLit(7)))
	})
	m.Do(m.Call("m_v_mul", minic.VoidType, out, mat, in))
	m.Printf("c[0]=%d c[last]=%d\n", m.Index(out, m.IntLit(0)), m.Index(out, m.IntLit(int64(M-1))))
	m.Return(m.IntLit(0))

	build, err := b.Link("einsum_gen.c", d2x.LinkOptions{})
	if err != nil {
		fail(err)
	}
	fmt.Println("---- generated kernel (note: input[] is never read; the constant 1 was propagated) ----")
	kernel := build.Source[strings.Index(build.Source, "func void m_v_mul"):]
	fmt.Print(kernel[:strings.Index(kernel, "func int main")])
	fmt.Println()

	d, err := build.NewSession(os.Stdout)
	if err != nil {
		fail(err)
	}
	fmt.Println("---- debugger session (Figure 11) ----")
	accLine := lineOf(build.Source, "acc_")
	for _, cmd := range []string{
		fmt.Sprintf("break einsum_gen.c:%d", accLine),
		"run",
		"bt",  // the generated frame
		"xbt", // walks through the einsum DSL implementation into this file
		"xvars",
		"xvars b.constant_val", // the analysis result: 1
		"xvars a.constant_val", // unknown — never constant-assigned
		"delete",
		"continue",
	} {
		fmt.Printf("(gdb) %s\n", cmd)
		if err := d.Execute(cmd); err != nil {
			fail(err)
		}
	}
}

func lineOf(src, needle string) int {
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, needle) {
			return i + 1
		}
	}
	return 1
}

func must(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "einsum:", err)
	os.Exit(1)
}
