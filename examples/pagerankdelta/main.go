// PageRankDelta: the paper's Figure 6 scenario end-to-end.
//
// The GraphIt compiler turns a 28-line algorithm into a few hundred lines
// of specialised parallel code. This example shows how a user debugs it
// anyway: break inside the generated UDF, walk the extended stack back to
// the .gt input, inspect the schedule the compiler chose, and decode the
// multi-representation frontier with the rtv_handler — all through a stock
// debugger.
//
// Run with: go run ./examples/pagerankdelta
// Pass a graph spec to change the input, e.g.:
//
//	go run ./examples/pagerankdelta "uniform:n=256,m=2048,seed=42"
package main

import (
	"fmt"
	"os"
	"strings"

	"d2x/internal/graphit"
)

func main() {
	src := graphit.PageRankDeltaSrc
	if len(os.Args) > 1 {
		src = strings.Replace(src, `load("powerlaw:n=64,m=512,seed=5")`,
			fmt.Sprintf("load(%q)", os.Args[1]), 1)
	}
	art, err := graphit.CompileToC("pagerankdelta.gt", src,
		"pagerankdelta.sched", graphit.PageRankDeltaSchedule,
		graphit.CompileOptions{D2X: true})
	if err != nil {
		fail(err)
	}
	build, err := art.Link()
	if err != nil {
		fail(err)
	}
	fmt.Printf("compiled %d .gt lines into %d generated lines\n\n",
		len(strings.Split(src, "\n")), len(strings.Split(build.Source, "\n")))

	d, err := build.NewSession(os.Stdout)
	if err != nil {
		fail(err)
	}
	udfLine := lineOf(build.Source, "atomic_add(&new_rank[dst]")
	printLine := lineOf(build.Source, "__frontier_size(frontier)")
	for _, cmd := range []string{
		fmt.Sprintf("break pagerankdelta.c:%d", udfLine),
		"run",
		"bt",    // second-stage stack: generated frames
		"xbt",   // first-stage stack: UDF line + specialising operator
		"xlist", // the .gt source around the UDF line
		"xframe 1",
		"xlist", // the operator call site in main
		"xvars schedule",
		"xvars specialized_udf",
		"delete",
		fmt.Sprintf("break pagerankdelta.c:%d", printLine),
		"continue",
		"xvars frontier", // rtv_handler decodes the representation
		"delete",
		"continue",
	} {
		fmt.Printf("(gdb) %s\n", cmd)
		if err := d.Execute(cmd); err != nil {
			fail(err)
		}
	}
}

func lineOf(src, needle string) int {
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, needle) {
			return i + 1
		}
	}
	return 1
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pagerankdelta:", err)
	os.Exit(1)
}
