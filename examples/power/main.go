// Power: the paper's Figure 8/9 scenario — multi-stage programming with
// BuildIt, where the first stage (this Go file) fully evaluates the
// exponent and the generated code is the unrolled repeated-squaring
// sequence. The debugger shows both worlds side by side: bt/print for the
// second stage, xbt/xlist/xvars for the first, and xbreak turns one
// first-stage line into breakpoints at every generated copy.
//
// Run with: go run ./examples/power [exponent]
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"d2x/internal/buildit"
	"d2x/internal/d2x"
	"d2x/internal/minic"
)

// stagePower is the first-stage program. Every staged statement below
// records this file and line as its static tag — that is what xbt and
// xbreak operate on.
func stagePower(b *buildit.Builder, exponent int) string {
	f := b.Func("power_f", []buildit.Param{{Name: "arg0", Type: minic.IntType}}, minic.IntType)
	exp := buildit.NewStatic(f, "exponent", exponent)
	res := f.Decl("res", f.IntLit(1))
	x := f.Decl("x", f.Arg(0))
	for exp.Get() > 0 {
		if exp.Get()%2 == 1 {
			f.Assign(res, f.Mul(res, x))
		}
		exp.Set(exp.Get() / 2)
		if exp.Get() > 0 {
			f.Assign(x, f.Mul(x, x))
		}
	}
	f.Return(res)
	return f.Name()
}

func main() {
	exponent := 15
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v < 0 {
			fail(fmt.Errorf("bad exponent %q", os.Args[1]))
		}
		exponent = v
	}

	b := buildit.NewBuilder()
	buildit.EnableD2X(b)
	kernel := stagePower(b, exponent)
	m := b.Func("main", nil, minic.IntType)
	r := m.Decl("r", m.Call(kernel, minic.IntType, m.IntLit(3)))
	m.Printf("%d\n", r)
	m.Return(m.IntLit(0))

	build, err := b.Link("power_gen.c", d2x.LinkOptions{})
	if err != nil {
		fail(err)
	}
	fmt.Println("---- generated code (exponent erased, loop unrolled) ----")
	fmt.Print(build.Source[:strings.Index(build.Source, "func int main()")])
	fmt.Println()

	d, err := build.NewSession(os.Stdout)
	if err != nil {
		fail(err)
	}
	fmt.Println("---- debugger session ----")
	cmds := []string{}
	if line := lineOf(build.Source, "x_2 = x_2 * x_2;"); line > 1 {
		cmds = append(cmds,
			fmt.Sprintf("break power_gen.c:%d", line),
			"run", "bt", "xbt", "xlist", "xvars exponent", "print res_1",
		)
		// xbreak on the first-stage multiply line: one DSL breakpoint,
		// many generated sites.
		if mulLine := firstStageMulLine(build); mulLine > 0 {
			cmds = append(cmds, fmt.Sprintf("xbreak %d", mulLine), "xbreak")
		}
		cmds = append(cmds, "delete", "continue")
	} else {
		cmds = append(cmds, "run")
	}
	for _, cmd := range cmds {
		fmt.Printf("(gdb) %s\n", cmd)
		if err := d.Execute(cmd); err != nil {
			fail(err)
		}
	}
}

// firstStageMulLine finds this file's `f.Assign(res, f.Mul(res, x))` line
// number so xbreak can target it without hard-coding.
func firstStageMulLine(build *d2x.Build) int {
	self, err := os.ReadFile(selfPath())
	if err != nil {
		return 0
	}
	for i, l := range strings.Split(string(self), "\n") {
		if strings.Contains(l, "f.Assign(res, f.Mul(res, x))") {
			return i + 1
		}
	}
	return 0
}

func selfPath() string {
	// The staged tags carry this file's absolute path; examples run from
	// the repo, so the relative path also resolves.
	return "examples/power/main.go"
}

func lineOf(src, needle string) int {
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, needle) {
			return i + 1
		}
	}
	return 1
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "power:", err)
	os.Exit(1)
}
