package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"

	"d2x/internal/d2x/serve"
)

// loadJSONFile is the committed machine-readable load-test record for the
// debug service: the 1k-client run's throughput and latency quantiles.
const loadJSONFile = "BENCH_pr7.json"

// loadGatePct is the allowed p99 regression before the gate fails. p99
// under a 1k-goroutine stampede on shared CI hardware is noisy, so the
// gate is deliberately loose — it exists to catch order-of-magnitude
// regressions (a lock back on the command path, an accidental O(n)
// registry scan), not 10% drift.
const loadGatePct = 150

type loadReport struct {
	PR   string `json:"pr"`
	Go   string `json:"go"`
	OS   string `json:"os"`
	Arch string `json:"arch"`
	serve.LoadResult
}

// TestEmitLoadJSON runs the d2xserve load harness and writes
// BENCH_pr7.json. Gated behind an env var so ordinary `go test ./...`
// stays fast:
//
//	D2X_LOAD_JSON=1 go test -run TestEmitLoadJSON .
//
// D2X_LOAD_CLIENTS overrides the client count (CI smoke runs use 100;
// the committed baseline and the nightly run use the full 1000).
// D2X_LOAD_BATCH >= 2 groups each client's steady-state commands into
// wire batch frames of that many sub-commands — the nightly run uses it
// to capture both protocol modes side by side. With D2X_LOAD_GATE=1 the
// test fails if the measured p99 exceeds the committed baseline by more
// than loadGatePct percent; the baseline is read before the file is
// rewritten. Smoke runs gate against the full run's baseline, which only
// makes the gate stricter — p99 at a tenth of the concurrency should be
// far below it.
func TestEmitLoadJSON(t *testing.T) {
	if os.Getenv("D2X_LOAD_JSON") == "" {
		t.Skipf("set D2X_LOAD_JSON=1 to emit %s", loadJSONFile)
	}

	clients := 1000
	if s := os.Getenv("D2X_LOAD_CLIENTS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad D2X_LOAD_CLIENTS %q", s)
		}
		clients = n
	}
	batch := 0
	if s := os.Getenv("D2X_LOAD_BATCH"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			t.Fatalf("bad D2X_LOAD_BATCH %q", s)
		}
		batch = n
	}

	var baseline loadReport
	haveBaseline := false
	if b, err := os.ReadFile(loadJSONFile); err == nil {
		if json.Unmarshal(b, &baseline) == nil && baseline.P99MS > 0 {
			haveBaseline = true
		}
	}

	res, err := serve.RunLoad(serve.LoadConfig{Clients: clients, CommandsPerClient: 20, Batch: batch})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d of %d load clients failed", res.Errors, res.Clients)
	}
	t.Logf("%d clients (batch=%d): %.0f cmd/s (%.0f cmd/s/core), p50 %.3f ms, p99 %.3f ms, max %.3f ms",
		res.Clients, res.Batch, res.CommandsPerSec, res.CommandsPerSecPerCore, res.P50MS, res.P99MS, res.MaxMS)

	rep := loadReport{
		PR: "pr7", Go: runtime.Version(),
		OS: runtime.GOOS, Arch: runtime.GOARCH,
		LoadResult: *res,
	}
	// Only a full-scale sequential run may rewrite the committed
	// baseline: a smoke run's numbers describe a different experiment,
	// and so do a batch run's (its quantiles are per round trip, which
	// carries Batch sub-commands).
	if clients >= 1000 && batch < 2 {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(loadJSONFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", loadJSONFile)
	}

	if os.Getenv("D2X_LOAD_GATE") == "" {
		return
	}
	if batch >= 2 {
		t.Logf("batch-mode quantiles are per round trip, not per command; p99 gate skipped")
		return
	}
	if !haveBaseline {
		t.Logf("no committed baseline in %s yet; gate is a no-op", loadJSONFile)
		return
	}
	limit := baseline.P99MS * (100 + loadGatePct) / 100
	if res.P99MS > limit {
		t.Errorf("command p99 regressed more than %d%%: baseline %.3f ms, now %.3f ms (limit %.3f ms)",
			loadGatePct, baseline.P99MS, res.P99MS, limit)
	} else {
		t.Logf("gate ok: p99 %.3f ms vs baseline %.3f ms (limit %.3f ms)",
			res.P99MS, baseline.P99MS, limit)
	}
}
