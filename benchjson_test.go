package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"d2x/internal/obs"
)

// benchJSONFile is the committed machine-readable benchmark record. CI
// regenerates it on every run, uploads it as an artifact, and — once a
// baseline is committed — fails the job if the xbt p50 regresses by more
// than benchGatePct percent.
const benchJSONFile = "BENCH_pr5.json"

// benchGatePct is the allowed xbt-p50 regression before the gate fails.
const benchGatePct = 25

// benchAllocBudgets are absolute allocs/op ceilings for the steady-state
// command path, enforced on every emit (unlike the p50 gate they need no
// committed baseline). They mirror the testing.AllocsPerRun budgets in
// alloc_test.go so the JSON record and the unit tests can never drift:
// Fig4 xbt is fully pooled (measured 0, ceiling 4 for GC-timing noise),
// the xbreak+xdel round trip's remaining allocations are the command
// strings the round trip intrinsically materialises (measured 4, after
// the plan cache, the xdel macro's substitution memo, and the debugger's
// breakpoint freelist drove out the script and object allocations).
var benchAllocBudgets = map[string]int64{
	"Fig4_TwoStageMapping":          4,
	"XBreak":                        6,
	"SharedTables_SecondSessionXBT": 4,
}

type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type benchReport struct {
	PR         string        `json:"pr"`
	Go         string        `json:"go"`
	OS         string        `json:"os"`
	Arch       string        `json:"arch"`
	Benchmarks []benchResult `json:"benchmarks"`
	// XBTP50NS is the xbt command's median latency from the obs
	// histogram, accumulated over every xbt the benchmarks executed
	// while instrumentation was on. This is the gated number.
	XBTP50NS int64 `json:"xbt_p50_ns"`
	// Obs is the full observability snapshot of the benchmark run:
	// command counters, stage latencies, decode counts, session churn.
	Obs *obs.Snap `json:"obs"`
}

// TestEmitBenchJSON runs the command-path benchmarks programmatically and
// writes BENCH_pr5.json: ns/op + allocs per benchmark, plus the obs
// snapshot of everything the run executed. Allocation ceilings
// (benchAllocBudgets) are enforced on every emit. Gated behind an env
// var so ordinary `go test ./...` stays fast:
//
//	D2X_BENCH_JSON=1 go test -run TestEmitBenchJSON .
//
// With D2X_BENCH_GATE=1 as well, the test fails if the measured xbt p50
// exceeds the committed baseline by more than benchGatePct percent. The
// baseline is read before the file is rewritten, so the gate always
// compares against the last committed record, not this run's own output.
func TestEmitBenchJSON(t *testing.T) {
	if os.Getenv("D2X_BENCH_JSON") == "" {
		t.Skipf("set D2X_BENCH_JSON=1 to emit %s", benchJSONFile)
	}

	var baseline benchReport
	haveBaseline := false
	// Gate against this PR's committed record; before one exists, fall
	// back to the previous PR's baseline so the gate is never dark.
	for _, name := range []string{benchJSONFile, "BENCH_pr4.json"} {
		if b, err := os.ReadFile(name); err == nil {
			if json.Unmarshal(b, &baseline) == nil && baseline.XBTP50NS > 0 {
				haveBaseline = true
				break
			}
		}
	}

	// Fresh counters: the snapshot should describe this run only.
	obs.Reset()
	rep := benchReport{
		PR: "pr5", Go: runtime.Version(),
		OS: runtime.GOOS, Arch: runtime.GOARCH,
	}
	for _, bm := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"Fig4_TwoStageMapping", BenchmarkFig4_TwoStageMapping},
		{"XBreak", BenchmarkXBreak},
		{"SharedTables_SecondSessionXBT", BenchmarkSharedTables_SecondSessionXBT},
		{"ObsOverhead_XBT_On", BenchmarkObsOverhead_XBT_On},
		{"ObsOverhead_XBT_Off", BenchmarkObsOverhead_XBT_Off},
	} {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			bm.fn(b)
		})
		rep.Benchmarks = append(rep.Benchmarks, benchResult{
			Name:        bm.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		t.Logf("%-32s %12.0f ns/op %8d allocs/op", bm.name,
			float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp())
		if budget, ok := benchAllocBudgets[bm.name]; ok && r.AllocsPerOp() > budget {
			t.Errorf("%s = %d allocs/op, over the %d budget", bm.name, r.AllocsPerOp(), budget)
		}
	}

	rep.XBTP50NS = obs.GetHistogram("d2xr.cmd.xbt").Quantile(0.5)
	rep.Obs = obs.Snapshot()
	if rep.XBTP50NS == 0 {
		t.Fatal("no xbt latency recorded: instrumentation is dark")
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchJSONFile, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (xbt p50 = %d ns)", benchJSONFile, rep.XBTP50NS)

	if os.Getenv("D2X_BENCH_GATE") == "" {
		return
	}
	if !haveBaseline {
		t.Logf("no committed baseline in %s yet; gate is a no-op", benchJSONFile)
		return
	}
	limit := baseline.XBTP50NS * (100 + benchGatePct) / 100
	if rep.XBTP50NS > limit {
		t.Errorf("xbt p50 regressed more than %d%%: baseline %d ns, now %d ns (limit %d ns)",
			benchGatePct, baseline.XBTP50NS, rep.XBTP50NS, limit)
	} else {
		t.Logf("gate ok: xbt p50 %d ns vs baseline %d ns (limit %d ns)",
			rep.XBTP50NS, baseline.XBTP50NS, limit)
	}
}
