// Package bench is the evaluation harness: one benchmark per table and
// figure of the paper (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for measured-vs-paper results). Run with:
//
//	go test -bench=. -benchmem
package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"

	"d2x/internal/buildit"
	"d2x/internal/d2x"
	"d2x/internal/d2x/d2xc"
	"d2x/internal/d2x/d2xenc"
	"d2x/internal/debugger"
	"d2x/internal/dwarfish"
	"d2x/internal/einsum"
	"d2x/internal/graphit"
	"d2x/internal/loc"
	"d2x/internal/minic"
	"d2x/internal/obs"
)

func lineOf(src, needle string) int {
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, needle) {
			return i + 1
		}
	}
	return 1
}

func mustExec(tb testing.TB, d *debugger.Debugger, cmds ...string) {
	tb.Helper()
	for _, c := range cmds {
		if err := d.Execute(c); err != nil {
			tb.Fatalf("command %q: %v", c, err)
		}
	}
}

// ---- Figures 1/2: per-call-site UDF specialisation ----

// BenchmarkFig1_2_UDFSpecialization measures the full GraphIt pipeline on
// the Figure 1 program and verifies the Figure 2 shape on every iteration.
func BenchmarkFig1_2_UDFSpecialization(b *testing.B) {
	var genLines int
	for i := 0; i < b.N; i++ {
		art, err := graphit.CompileToC("twoapply.gt", graphit.TwoApplySrc,
			"s", graphit.TwoApplySchedule, graphit.CompileOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(art.Source, "atomic_add(&nrank[d]") ||
			!strings.Contains(art.Source, "nrank[d] += orank[s];") {
			b.Fatal("Figure 2 shape missing")
		}
		genLines = len(strings.Split(art.Source, "\n"))
	}
	b.ReportMetric(float64(genLines), "generated-lines")
}

// ---- Figure 4: the two-stage mapping ----

// BenchmarkFig4_TwoStageMapping measures one xbt: rip -> generated line
// via standard debug info, then generated line -> DSL context via the D2X
// tables read from the debuggee.
func BenchmarkFig4_TwoStageMapping(b *testing.B) {
	d, src := pausedPagerankDelta(b, "powerlaw:n=64,m=512,seed=5")
	_ = src
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Execute("xbt"); err != nil {
			b.Fatal(err)
		}
	}
}

// pausedPagerankDelta builds PageRankDelta with D2X and pauses inside the
// specialised UDF. Output goes to io.Discard: a strings.Builder sink
// grows without bound across b.N command iterations, and its regrow
// memcpys would dominate the measured command latency at large N.
func pausedPagerankDelta(tb testing.TB, spec string) (*debugger.Debugger, string) {
	tb.Helper()
	src := strings.Replace(graphit.PageRankDeltaSrc,
		`load("powerlaw:n=64,m=512,seed=5")`, fmt.Sprintf("load(%q)", spec), 1)
	art, err := graphit.CompileToC("pagerankdelta.gt", src,
		"s", graphit.PageRankDeltaSchedule, graphit.CompileOptions{D2X: true})
	if err != nil {
		tb.Fatal(err)
	}
	build, err := art.Link()
	if err != nil {
		tb.Fatal(err)
	}
	d, err := build.NewSession(io.Discard)
	if err != nil {
		tb.Fatal(err)
	}
	udfLine := lineOf(build.Source, "atomic_add(&new_rank[dst]")
	mustExec(tb, d, fmt.Sprintf("break pagerankdelta.c:%d", udfLine), "run")
	return d, build.Source
}

// ---- Figure 6: the PageRankDelta debugging session, swept over graph
// sizes ----

func BenchmarkFig6_PagerankDeltaSession(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		spec := fmt.Sprintf("powerlaw:n=%d,m=%d,seed=5", n, 8*n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, _ := pausedPagerankDelta(b, spec)
				mustExec(b, d, "xbt", "xlist", "xframe 1", "xvars schedule", "delete", "continue")
				if d.LastStop().Reason != debugger.StopExited {
					b.Fatalf("stop = %v", d.LastStop().Reason)
				}
			}
		})
	}
}

// ---- Figure 7: the frontier rtv_handler ----

// BenchmarkFig7_FrontierHandler measures evaluating the generated
// vertexset handler (a debug-time call into the debuggee) for growing
// frontier sizes.
func BenchmarkFig7_FrontierHandler(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			spec := fmt.Sprintf("powerlaw:n=%d,m=%d,seed=5", n, 8*n)
			src := strings.Replace(graphit.PageRankDeltaSrc,
				`load("powerlaw:n=64,m=512,seed=5")`, fmt.Sprintf("load(%q)", spec), 1)
			art, err := graphit.CompileToC("pagerankdelta.gt", src,
				"s", graphit.PageRankDeltaSchedule, graphit.CompileOptions{D2X: true})
			if err != nil {
				b.Fatal(err)
			}
			build, err := art.Link()
			if err != nil {
				b.Fatal(err)
			}
			d, err := build.NewSession(io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			printLine := lineOf(build.Source, "__frontier_size(frontier)")
			mustExec(b, d, fmt.Sprintf("break pagerankdelta.c:%d", printLine), "run")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Execute("xvars frontier"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 8: staging the power function ----

func BenchmarkFig8_PowerStaging(b *testing.B) {
	for _, exp := range []int{15, 64, 1024} {
		b.Run(fmt.Sprintf("exp=%d", exp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bb := buildit.NewBuilder()
				buildit.EnableD2X(bb)
				stagePower(bb, exp)
				if _, _, err := bb.Generate("power_gen.c"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func stagePower(b *buildit.Builder, exponent int) string {
	f := b.Func("power_f", []buildit.Param{{Name: "arg0", Type: minic.IntType}}, minic.IntType)
	exp := buildit.NewStatic(f, "exponent", exponent)
	res := f.Decl("res", f.IntLit(1))
	x := f.Decl("x", f.Arg(0))
	for exp.Get() > 0 {
		if exp.Get()%2 == 1 {
			f.Assign(res, f.Mul(res, x))
		}
		exp.Set(exp.Get() / 2)
		if exp.Get() > 0 {
			f.Assign(x, f.Mul(x, x))
		}
	}
	f.Return(res)
	return f.Name()
}

// ---- Figure 9: the full first-stage/second-stage session ----

func BenchmarkFig9_PowerSession(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bb := buildit.NewBuilder()
		buildit.EnableD2X(bb)
		kernel := stagePower(bb, 15)
		m := bb.Func("main", nil, minic.IntType)
		r := m.Decl("r", m.Call(kernel, minic.IntType, m.IntLit(3)))
		m.Printf("%d\n", r)
		m.Return(m.IntLit(0))
		build, err := bb.Link("power_gen.c", d2x.LinkOptions{})
		if err != nil {
			b.Fatal(err)
		}
		var sink strings.Builder
		d, err := build.NewSession(&sink)
		if err != nil {
			b.Fatal(err)
		}
		line := lineOf(build.Source, "x_2 = x_2 * x_2;")
		mustExec(b, d,
			fmt.Sprintf("break power_gen.c:%d", line),
			"run", "bt", "xbt", "xvars exponent", "print res_1", "delete", "continue")
		if !strings.Contains(sink.String(), "14348907") {
			b.Fatal("wrong program result")
		}
	}
}

// ---- Figure 11: the einsum session ----

func BenchmarkFig11_EinsumSession(b *testing.B) {
	const M, N = 16, 8
	for i := 0; i < b.N; i++ {
		bb := buildit.NewBuilder()
		buildit.EnableD2X(bb)
		f := bb.Func("m_v_mul", []buildit.Param{
			{Name: "output", Type: einsum.IntArrayType},
			{Name: "matrix", Type: einsum.IntArrayType},
			{Name: "input", Type: einsum.IntArrayType},
		}, minic.VoidType)
		env := einsum.New(f)
		c := env.Tensor("c", f.Arg(0), M)
		a := env.Tensor("a", f.Arg(1), M, N)
		bt := env.Tensor("b", f.Arg(2), N)
		ii, jj := einsum.NewIndex("i"), einsum.NewIndex("j")
		if err := bt.Assign(einsum.Const(1), jj); err != nil {
			b.Fatal(err)
		}
		if err := c.Assign(einsum.Mul(einsum.Const(2), a.At(ii, jj), bt.At(jj)), ii); err != nil {
			b.Fatal(err)
		}
		f.Return(buildit.Expr{})
		m := bb.Func("main", nil, minic.IntType)
		out := m.DeclArr("output", minic.IntType, m.IntLit(M))
		mat := m.DeclArr("matrix", minic.IntType, m.IntLit(M*N))
		in := m.DeclArr("input", minic.IntType, m.IntLit(N))
		m.Do(m.Call("m_v_mul", minic.VoidType, out, mat, in))
		m.Return(m.IntLit(0))
		build, err := bb.Link("einsum_gen.c", d2x.LinkOptions{})
		if err != nil {
			b.Fatal(err)
		}
		var sink strings.Builder
		d, err := build.NewSession(&sink)
		if err != nil {
			b.Fatal(err)
		}
		accLine := lineOf(build.Source, "acc_")
		mustExec(b, d,
			fmt.Sprintf("break einsum_gen.c:%d", accLine),
			"run", "xbt", "xvars b.constant_val", "delete", "continue")
		if !strings.Contains(sink.String(), "b.constant_val = 1") {
			b.Fatal("constant propagation result not visible")
		}
	}
}

// ---- Tables 3 and 4: LoC accounting ----

func BenchmarkTable3_GraphItLoC(b *testing.B) {
	root, err := loc.RepoRoot()
	if err != nil {
		b.Fatal(err)
	}
	var st loc.Stats
	for i := 0; i < b.N; i++ {
		st, err = loc.GraphItStats(root)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.NonDelta()), "graphit-loc")
	b.ReportMetric(float64(st.Delta), "delta-loc")
	b.ReportMetric(st.DeltaPercent(), "delta-pct")
}

func BenchmarkTable4_BuildItLoC(b *testing.B) {
	root, err := loc.RepoRoot()
	if err != nil {
		b.Fatal(err)
	}
	var st loc.Stats
	for i := 0; i < b.N; i++ {
		st, err = loc.BuildItStats(root)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.NonDelta()), "buildit-loc")
	b.ReportMetric(float64(st.Delta), "delta-loc")
	b.ReportMetric(st.DeltaPercent(), "delta-pct")
}

// ---- §3.2: "D2X-R does not add any runtime overhead" ----

// The overhead pair runs the identical PageRankDelta computation with and
// without the D2X tables in the binary. The paper's claim is that the
// tables are inert data until a debug command runs; here the VM's
// deterministic instruction counter makes the comparison exact — the
// main-phase instruction counts must be identical, and are reported as
// metrics.
func BenchmarkOverhead_WithD2X(b *testing.B)    { benchOverhead(b, true) }
func BenchmarkOverhead_WithoutD2X(b *testing.B) { benchOverhead(b, false) }

func benchOverhead(b *testing.B, withD2X bool) {
	art, err := graphit.CompileToC("pagerankdelta.gt", graphit.PageRankDeltaSrc,
		"s", graphit.PageRankDeltaSchedule, graphit.CompileOptions{D2X: withD2X})
	if err != nil {
		b.Fatal(err)
	}
	build, err := art.Link()
	if err != nil {
		b.Fatal(err)
	}
	var mainSteps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := minic.NewVM(build.Program, nil)
		if err := vm.Start(); err != nil { // __init (table building) runs here
			b.Fatal(err)
		}
		startSteps := vm.Steps
		if err := vm.RunToCompletion(0); err != nil {
			b.Fatal(err)
		}
		mainSteps = vm.Steps - startSteps
	}
	b.ReportMetric(float64(mainSteps), "main-phase-instrs")
}

// ---- Ablations (DESIGN.md §6) ----

// BenchmarkAblation_InferiorTables_XBT vs _HostSideTables_XBT: the paper
// stores D2X tables in the debuggee and reads them via calls; the obvious
// alternative keeps a host-side map in the debugger process. The pair
// quantifies the cost of the portable design.
func BenchmarkAblation_InferiorTables_XBT(b *testing.B) {
	d, _ := pausedPagerankDelta(b, "powerlaw:n=64,m=512,seed=5")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Execute("xbt"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_HostSideTables_XBT(b *testing.B) {
	d, _ := pausedPagerankDelta(b, "powerlaw:n=64,m=512,seed=5")
	// Host side: decode the tables once into the debugger process and
	// serve the backtrace from the map directly, bypassing the call into
	// the debuggee entirely.
	tables, err := d2xenc.Decode(d.Process().VM)
	if err != nil {
		b.Fatal(err)
	}
	rip, ok := d.RegisterRIP()
	if !ok {
		b.Fatal("no rip")
	}
	info := d.Process().Info
	var sink string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, line, ok := info.LineFor(dwarfish.DecodeAddr(rip))
		if !ok {
			b.Fatal("no line")
		}
		rec := tables.RecordForLine(line)
		if rec == nil {
			b.Fatal("no record")
		}
		var sb strings.Builder
		for j, loc := range rec.Stack {
			fmt.Fprintf(&sb, "#%d in %s at %s:%d\n", j, loc.Function, loc.File, loc.Line)
		}
		sink = sb.String()
	}
	if sink == "" {
		b.Fatal("empty backtrace")
	}
}

// BenchmarkAblation_LiveVars vs _PerLineVars: D2X-C offers scoped live
// variables (create once, auto-emitted per line) against naively calling
// set_var on every line. The pair measures collection+emission cost and
// reports emitted table size; both encode the same information.
func BenchmarkAblation_LiveVars(b *testing.B)    { benchVarStrategy(b, true) }
func BenchmarkAblation_PerLineVars(b *testing.B) { benchVarStrategy(b, false) }

func benchVarStrategy(b *testing.B, live bool) {
	const lines = 2000
	var tableBytes int
	for i := 0; i < b.N; i++ {
		ctx := d2xc.NewContext()
		if err := ctx.BeginSectionAt(1); err != nil {
			b.Fatal(err)
		}
		if live {
			ctx.PushScope()
			for v := 0; v < 8; v++ {
				ctx.CreateVar(fmt.Sprintf("var%d", v))
			}
		}
		for l := 0; l < lines; l++ {
			ctx.PushSourceLoc("input.dsl", l%50+1, "main")
			if live {
				if l%100 == 0 {
					if err := ctx.UpdateVar("var0", fmt.Sprint(l)); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				for v := 0; v < 8; v++ {
					ctx.SetVar(fmt.Sprintf("var%d", v), fmt.Sprint(l/100*100))
				}
			}
			ctx.Nextl()
		}
		if live {
			if err := ctx.PopScope(); err != nil {
				b.Fatal(err)
			}
		}
		if err := ctx.EndSection(); err != nil {
			b.Fatal(err)
		}
		var sb strings.Builder
		if err := d2xenc.EmitTables(ctx, &sb); err != nil {
			b.Fatal(err)
		}
		tableBytes = sb.Len()
	}
	b.ReportMetric(float64(tableBytes), "table-bytes")
}

// ---- Observability overhead (DESIGN.md §Observability) ----

// The obs pair runs the identical xbt command with the observability
// layer enabled and disabled. The instrumentation budget for the whole
// debug stack is <5% on this path (a handful of atomic increments and
// clock reads per command); the pair measures what is actually paid.
func BenchmarkObsOverhead_XBT_On(b *testing.B)  { benchObsOverhead(b, true) }
func BenchmarkObsOverhead_XBT_Off(b *testing.B) { benchObsOverhead(b, false) }

func benchObsOverhead(b *testing.B, on bool) {
	d, _ := pausedPagerankDelta(b, "powerlaw:n=64,m=512,seed=5")
	prev := obs.Enabled()
	obs.SetEnabled(on)
	defer obs.SetEnabled(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Execute("xbt"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- D2X-R command path: xbreak and multi-session table sharing ----

// BenchmarkXBreak measures the DSL-breakpoint round trip: expand a DSL
// line through the tables' forward index, insert the generated-code
// breakpoints via eval, then delete them again.
func BenchmarkXBreak(b *testing.B) {
	d, _ := pausedPagerankDelta(b, "powerlaw:n=64,m=512,seed=5")
	dslLine := lineOf(graphit.PageRankDeltaSrc, "new_rank[dst] +=")
	xbreakCmd := fmt.Sprintf("xbreak pagerankdelta.gt:%d", dslLine)
	// The per-iteration xdel command is built with strconv, not Sprintf:
	// the op's intrinsic cost is one unique command string, and the
	// harness should not add fmt's boxing on top of it.
	scratch := make([]byte, 0, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Execute(xbreakCmd); err != nil {
			b.Fatal(err)
		}
		scratch = append(scratch[:0], "xdel "...)
		scratch = strconv.AppendInt(scratch, int64(i+1), 10)
		if err := d.Execute(string(scratch)); err != nil {
			b.Fatal(err)
		}
	}
}

// pagerankBuild links the standard PageRankDelta build with D2X once.
func pagerankBuild(tb testing.TB) *d2x.Build {
	tb.Helper()
	art, err := graphit.CompileToC("pagerankdelta.gt", graphit.PageRankDeltaSrc,
		"s", graphit.PageRankDeltaSchedule, graphit.CompileOptions{D2X: true})
	if err != nil {
		tb.Fatal(err)
	}
	build, err := art.Link()
	if err != nil {
		tb.Fatal(err)
	}
	return build
}

// pausedSession attaches one more debug session to an existing build and
// pauses it inside the specialised UDF (output discarded, as above).
func pausedSession(tb testing.TB, build *d2x.Build) *debugger.Debugger {
	tb.Helper()
	d, err := build.NewSession(io.Discard)
	if err != nil {
		tb.Fatal(err)
	}
	udfLine := lineOf(build.Source, "atomic_add(&new_rank[dst]")
	mustExec(tb, d, fmt.Sprintf("break pagerankdelta.c:%d", udfLine), "run")
	return d
}

// The shared-tables pair measures what a *second* concurrent session on
// the same Build pays per D2X command. With the shared service the first
// session's decode is reused; the ablation re-decodes the tables from the
// debuggee on each command, which is what per-session table ownership
// (the pre-service design) cost on a session's first command.
func BenchmarkSharedTables_SecondSessionXBT(b *testing.B) {
	build := pagerankBuild(b)
	d1 := pausedSession(b, build)
	mustExec(b, d1, "xbt") // first session pays the one shared decode
	d2 := pausedSession(b, build)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d2.Execute("xbt"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSharedTables_PerSessionDecodeXBT(b *testing.B) {
	build := pagerankBuild(b)
	d1 := pausedSession(b, build)
	mustExec(b, d1, "xbt")
	d2 := pausedSession(b, build)
	vm := d2.Process().VM
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d2xenc.Decode(vm); err != nil { // the old per-session decode
			b.Fatal(err)
		}
		if err := d2.Execute("xbt"); err != nil {
			b.Fatal(err)
		}
	}
}
