package bench

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"d2x/internal/graphit"
)

// Steady-state allocation budgets for the hot D2X-R command path. These
// are ceilings, not measurements: each budget sits a little above what
// the path allocates today so runtime-internal noise (a map rehash, a
// pool refill after GC) cannot flake the test, while any real regression
// — a fmt call is ≥3 allocations, a dropped pool is dozens — trips it
// immediately. CI runs these alongside the ns/op gate in
// benchjson_test.go, so a change can't trade allocations for latency
// unnoticed.
const (
	// xbtAllocBudget bounds one `xbt` after warmup. Measured at the
	// time of writing: 0 allocs/op — stage 1+2 resolve through the
	// fused index, the backtrace renders into a pooled []byte, and the
	// debuggee write path reuses the session's output buffer. The
	// slack of 4 is deliberate (ISSUE PR5): it absorbs GC-timing noise
	// without admitting even a single formatted string per frame.
	xbtAllocBudget = 4

	// xframeAllocBudget bounds one `xframe 1` after warmup. Measured:
	// 0 allocs/op — same render path as xbt, one frame instead of all.
	xframeAllocBudget = 4

	// xbreakAllocBudget bounds one xbreak+xdel round trip. Measured:
	// 4 allocs/op (down from 8: the break/clear scripts now come from
	// the session's plan cache instead of being re-rendered, the xdel
	// macro memoises its last substitution so a repeated delete line
	// costs no new string, and the debugger recycles *Breakpoint
	// objects through a freelist instead of allocating per install).
	// The remainder is semantic, not waste: the per-ID command lines
	// the macro substitutions materialise and the expression-cache miss
	// the unique xdel line forces by construction.
	xbreakAllocBudget = 6
)

func measureAllocs(t *testing.T, runs int, f func() error) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation budgets don't hold under the race detector's runtime")
	}
	// Warm pools, caches and the fused index outside the measurement.
	for i := 0; i < 3; i++ {
		if err := f(); err != nil {
			t.Fatal(err)
		}
	}
	var err error
	avg := testing.AllocsPerRun(runs, func() {
		if e := f(); e != nil && err == nil {
			err = e
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return avg
}

func TestXBTAllocSteadyState(t *testing.T) {
	d, _ := pausedPagerankDelta(t, "powerlaw:n=64,m=512,seed=5")
	avg := measureAllocs(t, 200, func() error { return d.Execute("xbt") })
	if avg > xbtAllocBudget {
		t.Errorf("xbt steady state = %.1f allocs/op, budget %d", avg, xbtAllocBudget)
	}
}

func TestXFrameAllocSteadyState(t *testing.T) {
	d, _ := pausedPagerankDelta(t, "powerlaw:n=64,m=512,seed=5")
	mustExec(t, d, "xbt") // xframe needs a remembered rip
	avg := measureAllocs(t, 200, func() error { return d.Execute("xframe 1") })
	if avg > xframeAllocBudget {
		t.Errorf("xframe steady state = %.1f allocs/op, budget %d", avg, xframeAllocBudget)
	}
}

func TestXBreakAllocSteadyState(t *testing.T) {
	d, _ := pausedPagerankDelta(t, "powerlaw:n=64,m=512,seed=5")
	dslLine := lineOf(graphit.PageRankDeltaSrc, "new_rank[dst] +=")
	xbreakCmd := fmt.Sprintf("xbreak pagerankdelta.gt:%d", dslLine)
	// Build the per-round xdel command with strconv so the harness adds
	// one string to the op (the unique command line, which is intrinsic)
	// rather than fmt's boxing as well.
	id := 0
	scratch := make([]byte, 0, 16)
	avg := measureAllocs(t, 100, func() error {
		id++
		if err := d.Execute(xbreakCmd); err != nil {
			return err
		}
		scratch = append(scratch[:0], "xdel "...)
		scratch = strconv.AppendInt(scratch, int64(id), 10)
		return d.Execute(string(scratch))
	})
	if avg > xbreakAllocBudget {
		t.Errorf("xbreak+xdel steady state = %.1f allocs/op, budget %d", avg, xbreakAllocBudget)
	}
}

// TestConcurrentSessionsSharedRenderPath runs 8 debug sessions of the
// same build concurrently, each hammering the pooled render buffers, the
// shared table decode and the fused resolution index. Run under -race
// (CI does) this is the data-race check for everything the sessions
// share; run without it, it still exercises the pool round-trip under
// contention.
func TestConcurrentSessionsSharedRenderPath(t *testing.T) {
	build := pagerankBuild(t)
	udfLine := lineOf(build.Source, "atomic_add(&new_rank[dst]")
	dslLine := lineOf(graphit.PageRankDeltaSrc, "new_rank[dst] +=")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sink strings.Builder
			d, err := build.NewSession(&sink)
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			cmds := []string{fmt.Sprintf("break pagerankdelta.c:%d", udfLine), "run"}
			for j := 0; j < 25; j++ {
				cmds = append(cmds, "xbt", "xframe 1",
					fmt.Sprintf("xbreak pagerankdelta.gt:%d", dslLine),
					fmt.Sprintf("xdel %d", j+1))
			}
			for _, c := range cmds {
				if err := d.Execute(c); err != nil {
					t.Errorf("session %d: command %q: %v", i, c, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
