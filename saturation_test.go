package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"d2x/internal/d2x"
	"d2x/internal/d2x/d2xr"
	"d2x/internal/debugger"
	"d2x/internal/graphit"
	"d2x/internal/minic"
)

// satJSONFile is the committed machine-readable saturation record: the
// 8-goroutine mixed-workload run's throughput in both protocols, and the
// batch-over-sequential speedup.
const satJSONFile = "BENCH_pr10.json"

// satGoroutines is the concurrency of the recorded experiment: enough to
// contend on the shared tables and the sharded counters, small enough to
// fit CI runners.
const satGoroutines = 8

// satGatePct is how far sequential commands/sec/core may fall below the
// committed baseline before the gate fails. Throughput on shared CI
// hardware swings with the neighbours, so the band is generous — the
// gate exists to catch a serialized command path (a lock where the
// sharded counters were, a re-decode per command), not scheduler noise.
const satGatePct = 60

// satMinSpeedup is the required batch-over-sequential advantage at
// satGoroutines, per core. The typed batch path exists to shed the
// string protocol's per-command overhead; if it cannot double the mixed
// workload's throughput, it has quietly reabsorbed that overhead.
const satMinSpeedup = 2.0

// satCycleLen is the commands per workload cycle: six frame queries
// (xbt/xvars alternating) plus one xbreak+xdel breakpoint churn pair.
const satCycleLen = 8

type satMode struct {
	Mode                  string  `json:"mode"`
	Goroutines            int     `json:"goroutines"`
	Commands              int64   `json:"commands"`
	ElapsedMS             float64 `json:"elapsed_ms"`
	CommandsPerSec        float64 `json:"commands_per_sec"`
	CommandsPerSecPerCore float64 `json:"commands_per_sec_per_core"`
}

type satReport struct {
	PR         string  `json:"pr"`
	Go         string  `json:"go"`
	OS         string  `json:"os"`
	Arch       string  `json:"arch"`
	Cores      int     `json:"cores"`
	Sequential satMode `json:"sequential"`
	Batch      satMode `json:"batch"`
	// Speedup is batch over sequential commands/sec/core.
	Speedup float64 `json:"speedup"`
}

// satSession is one goroutine's paused debug session plus the typed
// inputs ($rip/$rsp equivalents) its batch ops need.
type satSession struct {
	d        *debugger.Debugger
	rt       *d2xr.Runtime
	vm       *minic.VM
	rip, rsp int64
}

func newSatSession(tb testing.TB, build *d2x.Build) *satSession {
	tb.Helper()
	d := pausedSession(tb, build)
	// One primer command pays the session's share of the table decode
	// outside the measurement and records the paused rip/rsp the typed
	// ops reuse.
	mustExec(tb, d, "xbt")
	vm := d.Process().VM
	st := build.Runtime.StateFor(vm)
	return &satSession{d: d, rt: build.Runtime, vm: vm, rip: st.LastRIP, rsp: st.CurRSP}
}

// satSequential is one goroutine's share of the string-protocol run:
// every command goes through the macro layer, expression evaluation, and
// a native call, exactly as an interactive debugger would issue it.
func satSequential(s *satSession, cycles int, xbreakCmd string) error {
	id := 0
	scratch := make([]byte, 0, 16)
	for c := 0; c < cycles; c++ {
		for _, cmd := range [...]string{"xbt", "xvars", "xbt", "xvars", "xbt", "xvars"} {
			if err := s.d.Execute(cmd); err != nil {
				return err
			}
		}
		if err := s.d.Execute(xbreakCmd); err != nil {
			return err
		}
		id++
		scratch = append(scratch[:0], "xdel "...)
		scratch = strconv.AppendInt(scratch, int64(id), 10)
		if err := s.d.Execute(string(scratch)); err != nil {
			return err
		}
	}
	return nil
}

// satBatch is the same workload through the typed batch layer: one
// ExecBatch per cycle, with the break/clear scripts the batch returns
// replayed on the debugger — the part of the work a typed caller still
// owes, so the two modes leave identical session state.
func satBatch(s *satSession, cycles int, spec string) error {
	var res d2xr.BatchResults
	ops := make([]d2xr.BatchOp, satCycleLen)
	for i := 0; i < 6; i++ {
		kind := d2xr.BatchXBT
		if i%2 == 1 {
			kind = d2xr.BatchXVars
		}
		ops[i] = d2xr.BatchOp{Kind: kind, RIP: s.rip, RSP: s.rsp}
	}
	ops[6] = d2xr.BatchOp{Kind: d2xr.BatchXBreak, RIP: s.rip, Arg: spec}
	id := 0
	scratch := make([]byte, 0, 16)
	for c := 0; c < cycles; c++ {
		id++
		scratch = strconv.AppendInt(scratch[:0], int64(id), 10)
		ops[7] = d2xr.BatchOp{Kind: d2xr.BatchXDel, Arg: string(scratch)}
		s.rt.ExecBatch(s.vm, ops, &res)
		for i := range res.Ops {
			if err := res.Ops[i].Err; err != nil {
				return fmt.Errorf("batch op %d: %w", i, err)
			}
			if sc := res.Ops[i].Script; sc != "" {
				if err := satRunScript(s.d, sc); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func satRunScript(d *debugger.Debugger, script string) error {
	for len(script) > 0 {
		line := script
		if nl := strings.IndexByte(script, '\n'); nl >= 0 {
			line, script = script[:nl], script[nl+1:]
		} else {
			script = ""
		}
		if line == "" {
			continue
		}
		if err := d.Execute(line); err != nil {
			return err
		}
	}
	return nil
}

// runSaturation drives `goroutines` fresh sessions of one shared build
// through `cycles` rounds of the mixed workload concurrently and
// returns aggregate throughput.
func runSaturation(tb testing.TB, build *d2x.Build, goroutines, cycles int, batch bool) satMode {
	tb.Helper()
	sessions := make([]*satSession, goroutines)
	for i := range sessions {
		sessions[i] = newSatSession(tb, build)
	}
	defer func() {
		for _, s := range sessions {
			s.d.Close()
		}
	}()
	dslLine := lineOf(graphit.PageRankDeltaSrc, "new_rank[dst] +=")
	spec := fmt.Sprintf("pagerankdelta.gt:%d", dslLine)

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	start := time.Now()
	for _, s := range sessions {
		wg.Add(1)
		go func(s *satSession) {
			defer wg.Done()
			var err error
			if batch {
				err = satBatch(s, cycles, spec)
			} else {
				err = satSequential(s, cycles, "xbreak "+spec)
			}
			if err != nil {
				errs <- err
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		tb.Fatal(err)
	}

	mode := satMode{Mode: "sequential", Goroutines: goroutines}
	if batch {
		mode.Mode = "batch"
	}
	mode.Commands = int64(goroutines) * int64(cycles) * satCycleLen
	mode.ElapsedMS = float64(elapsed.Nanoseconds()) / 1e6
	mode.CommandsPerSec = float64(mode.Commands) / elapsed.Seconds()
	mode.CommandsPerSecPerCore = mode.CommandsPerSec / float64(runtime.GOMAXPROCS(0))
	return mode
}

// TestSaturationSmoke keeps the harness itself honest on every ordinary
// `go test ./...`: both modes run a small slice of the workload on
// shared tables without errors and agree on the command count.
func TestSaturationSmoke(t *testing.T) {
	build := pagerankBuild(t)
	seq := runSaturation(t, build, 2, 5, false)
	bat := runSaturation(t, build, 2, 5, true)
	want := int64(2 * 5 * satCycleLen)
	if seq.Commands != want || bat.Commands != want {
		t.Fatalf("commands: sequential %d, batch %d, want %d", seq.Commands, bat.Commands, want)
	}
	if seq.CommandsPerSec <= 0 || bat.CommandsPerSec <= 0 {
		t.Fatalf("throughput not measured: sequential %+v, batch %+v", seq, bat)
	}
}

// TestEmitSaturationJSON runs the full saturation A/B and writes
// BENCH_pr10.json. Gated behind an env var so ordinary `go test ./...`
// stays fast:
//
//	D2X_SAT_JSON=1 go test -run TestEmitSaturationJSON .
//
// D2X_SAT_CYCLES overrides the per-goroutine cycle count. With
// D2X_SAT_GATE=1 the test fails if (a) the batch path's per-core
// throughput advantage falls below satMinSpeedup, or (b) sequential
// commands/sec/core falls more than satGatePct percent below the
// committed baseline (read before the file is rewritten).
func TestEmitSaturationJSON(t *testing.T) {
	if os.Getenv("D2X_SAT_JSON") == "" {
		t.Skipf("set D2X_SAT_JSON=1 to emit %s", satJSONFile)
	}
	cycles := 4000
	if s := os.Getenv("D2X_SAT_CYCLES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad D2X_SAT_CYCLES %q", s)
		}
		cycles = n
	}

	var baseline satReport
	haveBaseline := false
	if b, err := os.ReadFile(satJSONFile); err == nil {
		if json.Unmarshal(b, &baseline) == nil && baseline.Sequential.CommandsPerSecPerCore > 0 {
			haveBaseline = true
		}
	}

	build := pagerankBuild(t)
	seq := runSaturation(t, build, satGoroutines, cycles, false)
	bat := runSaturation(t, build, satGoroutines, cycles, true)
	rep := satReport{
		PR: "pr10", Go: runtime.Version(), OS: runtime.GOOS, Arch: runtime.GOARCH,
		Cores: runtime.GOMAXPROCS(0), Sequential: seq, Batch: bat,
		Speedup: bat.CommandsPerSecPerCore / seq.CommandsPerSecPerCore,
	}
	t.Logf("sequential: %d goroutines, %.0f cmd/s (%.0f cmd/s/core)",
		seq.Goroutines, seq.CommandsPerSec, seq.CommandsPerSecPerCore)
	t.Logf("batch:      %d goroutines, %.0f cmd/s (%.0f cmd/s/core), speedup %.2fx",
		bat.Goroutines, bat.CommandsPerSec, bat.CommandsPerSecPerCore, rep.Speedup)

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(satJSONFile, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", satJSONFile)

	if os.Getenv("D2X_SAT_GATE") == "" {
		return
	}
	if rep.Speedup < satMinSpeedup {
		t.Errorf("batch speedup %.2fx below the %.1fx floor: the typed path has reabsorbed protocol overhead",
			rep.Speedup, satMinSpeedup)
	}
	if !haveBaseline {
		t.Logf("no committed baseline in %s yet; throughput gate is a no-op", satJSONFile)
		return
	}
	floor := baseline.Sequential.CommandsPerSecPerCore * (100 - satGatePct) / 100
	if seq.CommandsPerSecPerCore < floor {
		t.Errorf("sequential throughput regressed more than %d%%: baseline %.0f cmd/s/core, now %.0f (floor %.0f)",
			satGatePct, baseline.Sequential.CommandsPerSecPerCore, seq.CommandsPerSecPerCore, floor)
	} else {
		t.Logf("gate ok: %.0f cmd/s/core vs baseline %.0f (floor %.0f)",
			seq.CommandsPerSecPerCore, baseline.Sequential.CommandsPerSecPerCore, floor)
	}
}
