// Command d2xserve is the D2X debug service: it serves the wire protocol
// of internal/d2x/wire over TCP, multiplexing many concurrent debug
// sessions over the shared example builds.
//
// Usage:
//
//	d2xserve [-addr host:port]
//
// The protocol is newline-delimited JSON, so a session can be driven by
// hand:
//
//	$ d2xserve -addr 127.0.0.1:4711 &
//	$ nc 127.0.0.1 4711
//	{"seq":1,"type":"request","command":"launch","arguments":{"example":"power"}}
//	{"seq":2,"type":"request","command":"break","arguments":{"spec":"main"}}
//	{"seq":3,"type":"request","command":"run"}
//	{"seq":4,"type":"request","command":"xbt"}
//
// d2xserve exits 0 on a clean shutdown (SIGINT/SIGTERM) and 1 on a
// listen or serve error.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"d2x/internal/d2x/serve"
	"d2x/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("d2xserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:4711", "listen address")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	obs.SetEnabled(true)

	srv := serve.New()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "d2xserve: shutting down")
		srv.Close()
	}()

	err := srv.ListenAndServe(*addr, func(a net.Addr) {
		fmt.Printf("d2xserve: listening on %s\n", a)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "d2xserve: %v\n", err)
		return 1
	}
	return 0
}
