// Command locstats regenerates the paper's Table 3 and Table 4 for this
// repository: component sizes and the D2X integration deltas.
//
// Usage: locstats [-root DIR]
package main

import (
	"flag"
	"fmt"
	"os"

	"d2x/internal/loc"
)

func main() {
	root := flag.String("root", "", "repository root (default: auto-detect)")
	flag.Parse()
	dir := *root
	if dir == "" {
		var err error
		if dir, err = loc.RepoRoot(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	t3, err := loc.Table3(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	t4, err := loc.Table4(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(t3)
	fmt.Println(t4)
}
