// Command d2xload is the load harness for d2xserve: it holds N
// concurrent debug sessions open against a server (an external one via
// -addr, or an in-process one by default) and reports throughput and
// exact command-latency quantiles.
//
// Usage:
//
//	d2xload [-addr host:port] [-clients 1000] [-commands 20] [-batch 0] [-example power] [-json out.json]
//
// d2xload exits 0 when every client completed its script, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"d2x/internal/d2x/serve"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("d2xload", flag.ContinueOnError)
	addr := fs.String("addr", "", "server address (empty: run an in-process server)")
	clients := fs.Int("clients", 1000, "concurrent debug sessions")
	commands := fs.Int("commands", 20, "steady-state commands per client")
	batch := fs.Int("batch", 0, "sub-commands per batch request (0 or 1: standalone requests)")
	example := fs.String("example", "power", "example build every session launches")
	jsonOut := fs.String("json", "", "write the result as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	res, err := serve.RunLoad(serve.LoadConfig{
		Addr: *addr, Clients: *clients,
		CommandsPerClient: *commands, Example: *example, Batch: *batch,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "d2xload: %v\n", err)
		return 1
	}
	mode := "sequential"
	if res.Batch >= 2 {
		mode = fmt.Sprintf("batch=%d", res.Batch)
	}
	fmt.Printf("d2xload: %d clients (%s), %d commands in %.0f ms: %.0f cmd/s (%.0f cmd/s/core), p50 %.3f ms, p99 %.3f ms, max %.3f ms, %d client errors\n",
		res.Clients, mode, res.Commands, res.ElapsedMS, res.CommandsPerSec,
		res.CommandsPerSecPerCore, res.P50MS, res.P99MS, res.MaxMS, res.Errors)
	if *jsonOut != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "d2xload: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "d2xload: %v\n", err)
			return 1
		}
	}
	if res.Errors > 0 {
		return 1
	}
	return 0
}
