// Command d2xfuzz differentially fuzzes the optimiser against the D2X
// debugging experience. It generates a deterministic corpus of staged
// programs (internal/progen), builds each with the optimiser off
// (reference) and on (subject), and asserts a scripted debug session
// cannot tell the builds apart: identical program output, xbreak
// expansions that only shrink, stop traces that align, and byte-identical
// xbt/xvars at every aligned stop.
//
// On a divergence the offending spec is minimised to a 1-minimal
// reproducer and, with -fixtures, written as a JSON fixture for
// examples/fuzz and the replay test.
//
// Usage:
//
//	d2xfuzz [-n 200] [-start 0] [-seed 1] [-fixtures dir] [-debugify] [-v]
//
// Exit status is 1 when any program diverged, 2 on harness errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"d2x/internal/minic"
	"d2x/internal/minic/debugify"
	"d2x/internal/progen"
)

func main() {
	var (
		n        = flag.Int("n", 200, "corpus size")
		start    = flag.Int("start", 0, "first corpus index (replay one failure with -start i -n 1)")
		seed     = flag.Int64("seed", 1, "corpus seed")
		fixtures = flag.String("fixtures", "", "directory to write minimised divergence fixtures to")
		dbg      = flag.Bool("debugify", false, "also debugify every minic-kind program and report per-pass preservation")
		verbose  = flag.Bool("v", false, "log every program, not just divergences")
	)
	flag.Parse()

	divergent, harnessErrs := 0, 0
	totalStops, totalDSLLines := 0, 0
	kindCount := map[string]int{}
	// Per-pass debugify aggregation across the whole corpus.
	passRewrites := map[string]int{}
	passFindings := map[string]int{}
	passPrograms := 0

	for i := *start; i < *start+*n; i++ {
		spec := progen.Generate(*seed, i)
		kindCount[spec.Kind]++
		p, err := progen.Render(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: render: %v\n", spec.Name(), err)
			harnessErrs++
			continue
		}
		if *dbg && spec.Kind == progen.KindMinic {
			rep, err := debugify.Run(p.GenFile, p.GenSource, minic.NewNatives())
			if err == nil {
				passPrograms++
				for _, pr := range rep.Passes {
					passRewrites[pr.Pass] += pr.Rewrites
					passFindings[pr.Pass] += len(pr.Findings)
				}
			}
		}
		res, err := progen.RunDifferential(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", spec.Name(), err)
			harnessErrs++
			continue
		}
		totalStops += res.Stops
		totalDSLLines += res.DSLLines
		if res.Clean() {
			if *verbose {
				fmt.Printf("%-22s ok   (%d dsl lines, %d stops)\n", spec.Name(), res.DSLLines, res.Stops)
			}
			continue
		}
		divergent++
		fmt.Printf("%-22s DIVERGED (%d finding(s))\n", spec.Name(), len(res.Divergences))
		for _, d := range res.Divergences {
			fmt.Printf("  %s\n", d)
			if d.Ref != "" || d.Subject != "" {
				fmt.Printf("    ref:     %q\n    subject: %q\n", d.Ref, d.Subject)
			}
		}
		min := progen.Minimize(spec, reproduces(res.Divergences[0].Kind))
		if *fixtures != "" {
			if path, err := writeFixture(*fixtures, min); err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing fixture: %v\n", spec.Name(), err)
				harnessErrs++
			} else {
				fmt.Printf("  minimised reproducer: %s\n", path)
			}
		}
	}

	fmt.Printf("\nd2xfuzz: %d programs (", *n)
	kinds := make([]string, 0, len(kindCount))
	for k := range kindCount {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for i, k := range kinds {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%d %s", kindCount[k], k)
	}
	fmt.Printf("), seed %d\n", *seed)
	fmt.Printf("  %d dsl lines exercised, %d reference stops compared\n", totalDSLLines, totalStops)
	fmt.Printf("  %d divergent, %d harness errors\n", divergent, harnessErrs)

	if *dbg && passPrograms > 0 {
		fmt.Printf("\ndebugify over %d minic programs:\n", passPrograms)
		for _, p := range minic.Passes() {
			clean := "clean"
			if passFindings[p.Name] > 0 {
				clean = fmt.Sprintf("%d finding(s)", passFindings[p.Name])
			}
			fmt.Printf("  %-20s %6d rewrites  %s\n", p.Name, passRewrites[p.Name], clean)
		}
	}

	switch {
	case harnessErrs > 0:
		os.Exit(2)
	case divergent > 0:
		os.Exit(1)
	}
}

// reproduces builds the minimiser predicate: a candidate keeps the
// divergence alive if it renders, runs through the oracle, and still
// reports a divergence of the original kind.
func reproduces(kind string) func(*progen.Spec) bool {
	return func(s *progen.Spec) bool {
		p, err := progen.Render(s)
		if err != nil {
			return false
		}
		res, err := progen.RunDifferential(p)
		if err != nil {
			return false
		}
		for _, d := range res.Divergences {
			if d.Kind == kind {
				return true
			}
		}
		return false
	}
}

// writeFixture serialises a minimised spec into dir, named after its
// provenance so re-runs overwrite rather than accumulate.
func writeFixture(dir string, s *progen.Spec) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := s.Marshal()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, s.Name()+".json")
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
