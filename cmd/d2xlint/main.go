// Command d2xlint runs the d2xverify checks over the case-study
// pipelines (pagerankdelta, power, einsum, quickstart) and over the
// repository's architecture invariants. It is the CI face of the
// verifier: a healthy tree prints one "ok" line per target and exits 0.
//
// Exit status follows compiler conventions:
//
//	0  no error-severity findings (warnings are printed but do not fail)
//	1  at least one SevError finding
//	2  the tool itself could not run (unknown pipeline, build failure)
//
// Usage:
//
//	d2xlint [-arch=false] [-effects] [-debugify] [pagerankdelta|power|einsum|quickstart ...]
//
// With no pipeline arguments all pipelines are checked. -effects prints
// each pipeline's per-function effect summaries (the output of
// internal/minic/effects) — the debugging view for the analysis itself.
// -debugify prints each pipeline's per-pass debug-info preservation
// summary (the output of internal/minic/debugify): rewrites applied,
// locations tracked, and findings per optimiser pass.
package main

import (
	"flag"
	"fmt"
	"os"

	"d2x/internal/d2xverify"
	"d2x/internal/examplebuilds"
	"d2x/internal/loc"
	"d2x/internal/minic"
	"d2x/internal/minic/effects"
)

func main() {
	arch := flag.Bool("arch", true, "also run the repository architecture checks")
	showFX := flag.Bool("effects", false, "print per-function effect summaries for each pipeline")
	showDbg := flag.Bool("debugify", false, "print per-pass debug-info preservation summaries for each pipeline")
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 {
		targets = examplebuilds.Names()
	}

	sawError := false
	for _, name := range targets {
		build, err := examplebuilds.Build(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "d2xlint: building %s: %v\n", name, err)
			os.Exit(2)
		}
		rep := build.Verify()
		if rep.Errors() > 0 {
			sawError = true
		}
		if len(rep.Diags) > 0 {
			fmt.Printf("%s: %d finding(s)\n%s", name, len(rep.Diags), rep)
		} else {
			fmt.Printf("%s: ok (%d checks)\n", name, len(d2xverify.DefaultRegistry().Checks()))
		}
		if *showFX {
			printEffects(name, build.Program)
		}
		if *showDbg {
			printDebugify(name, build.Program)
		}
	}

	if *arch {
		root, err := loc.RepoRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "d2xlint:", err)
			os.Exit(2)
		}
		rep := d2xverify.VerifyRepo(root)
		if rep.Errors() > 0 {
			sawError = true
		}
		if len(rep.Diags) > 0 {
			fmt.Printf("arch: %d finding(s)\n%s", len(rep.Diags), rep)
		} else {
			fmt.Printf("arch: ok (%d checks)\n", len(d2xverify.DefaultRegistry().RepoChecks()))
		}
	}

	if sawError {
		os.Exit(1)
	}
}

// printDebugify dumps one pipeline's per-pass preservation summary, one
// optimiser pass per line.
func printDebugify(name string, prog *minic.Program) {
	in := &d2xverify.Input{Program: prog}
	rep, err := in.Debugify()
	if err != nil || rep == nil {
		fmt.Printf("%s: debugify unavailable\n", name)
		return
	}
	fmt.Printf("%s: debugify per-pass preservation\n", name)
	for _, pr := range rep.Passes {
		status := "clean"
		if !pr.Clean() {
			status = fmt.Sprintf("%d finding(s)", len(pr.Findings))
		}
		fmt.Printf("  %-20s rewrites=%-4d locs=%d->%d vars=%d->%d %s\n",
			pr.Pass, pr.Rewrites, pr.LocsBefore, pr.LocsAfter, pr.VarsBefore, pr.VarsAfter, status)
		for _, f := range pr.Findings {
			fmt.Printf("    %s\n", f)
		}
	}
	if rep.VarCheckNote != "" {
		fmt.Printf("  note: %s\n", rep.VarCheckNote)
	}
}

// printEffects dumps one pipeline's effect summaries, one function per
// line, in name order.
func printEffects(name string, prog *minic.Program) {
	fmt.Printf("%s: effect summaries\n", name)
	for _, s := range effects.Analyze(prog).Sorted() {
		line := fmt.Sprintf("  %-40s %-36s loops=%s", s.Name, s.Effects, s.Loop)
		if s.Effects&effects.WritesHeap != 0 && s.WriteLine != 0 {
			line += fmt.Sprintf(" (first write at line %d)", s.WriteLine)
		}
		fmt.Println(line)
	}
}
