// Command d2xlint runs the d2xverify checks over the case-study
// pipelines (pagerankdelta, power, einsum, quickstart) and over the
// repository's architecture invariants. It is the CI face of the
// verifier: a healthy tree prints one "ok" line per target and exits 0.
//
// Exit status follows compiler conventions:
//
//	0  no error-severity findings (warnings are printed but do not fail)
//	1  at least one SevError finding
//	2  the tool itself could not run (unknown pipeline, build failure)
//
// Usage:
//
//	d2xlint [-arch=false] [-effects] [pagerankdelta|power|einsum|quickstart ...]
//
// With no pipeline arguments all pipelines are checked. -effects prints
// each pipeline's per-function effect summaries (the output of
// internal/minic/effects) — the debugging view for the analysis itself.
package main

import (
	"flag"
	"fmt"
	"os"

	"d2x/internal/buildit"
	"d2x/internal/d2x"
	"d2x/internal/d2xverify"
	"d2x/internal/einsum"
	"d2x/internal/graphit"
	"d2x/internal/loc"
	"d2x/internal/minic"
	"d2x/internal/minic/effects"
)

func main() {
	arch := flag.Bool("arch", true, "also run the repository architecture checks")
	showFX := flag.Bool("effects", false, "print per-function effect summaries for each pipeline")
	flag.Parse()

	builders := map[string]func() (*d2x.Build, error){
		"pagerankdelta": buildPagerankDelta,
		"power":         buildPower,
		"einsum":        buildEinsum,
		"quickstart":    buildQuickstart,
	}
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"pagerankdelta", "power", "einsum", "quickstart"}
	}

	sawError := false
	for _, name := range targets {
		mk, ok := builders[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "d2xlint: unknown pipeline %q (want pagerankdelta, power, einsum, quickstart)\n", name)
			os.Exit(2)
		}
		build, err := mk()
		if err != nil {
			fmt.Fprintf(os.Stderr, "d2xlint: building %s: %v\n", name, err)
			os.Exit(2)
		}
		rep := build.Verify()
		if rep.Errors() > 0 {
			sawError = true
		}
		if len(rep.Diags) > 0 {
			fmt.Printf("%s: %d finding(s)\n%s", name, len(rep.Diags), rep)
		} else {
			fmt.Printf("%s: ok (%d checks)\n", name, len(d2xverify.DefaultRegistry().Checks()))
		}
		if *showFX {
			printEffects(name, build.Program)
		}
	}

	if *arch {
		root, err := loc.RepoRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "d2xlint:", err)
			os.Exit(2)
		}
		rep := d2xverify.VerifyRepo(root)
		if rep.Errors() > 0 {
			sawError = true
		}
		if len(rep.Diags) > 0 {
			fmt.Printf("arch: %d finding(s)\n%s", len(rep.Diags), rep)
		} else {
			fmt.Printf("arch: ok (%d checks)\n", len(d2xverify.DefaultRegistry().RepoChecks()))
		}
	}

	if sawError {
		os.Exit(1)
	}
}

// printEffects dumps one pipeline's effect summaries, one function per
// line, in name order.
func printEffects(name string, prog *minic.Program) {
	fmt.Printf("%s: effect summaries\n", name)
	for _, s := range effects.Analyze(prog).Sorted() {
		line := fmt.Sprintf("  %-40s %-36s loops=%s", s.Name, s.Effects, s.Loop)
		if s.Effects&effects.WritesHeap != 0 && s.WriteLine != 0 {
			line += fmt.Sprintf(" (first write at line %d)", s.WriteLine)
		}
		fmt.Println(line)
	}
}

func buildPagerankDelta() (*d2x.Build, error) {
	art, err := graphit.CompileToC("pagerankdelta.gt", graphit.PageRankDeltaSrc,
		"pagerankdelta.sched", graphit.PageRankDeltaSchedule, graphit.CompileOptions{D2X: true})
	if err != nil {
		return nil, err
	}
	return art.Link()
}

func buildPower() (*d2x.Build, error) {
	bb := buildit.NewBuilder()
	buildit.EnableD2X(bb)
	f := bb.Func("power_15", []buildit.Param{{Name: "base", Type: minic.IntType}}, minic.IntType)
	exp := buildit.NewStatic(f, "exponent", 15)
	res := f.Decl("res", f.IntLit(1))
	x := f.Decl("x", f.Arg(0))
	for exp.Get() > 0 {
		if exp.Get()%2 == 1 {
			f.Assign(res, f.Mul(res, x))
		}
		exp.Set(exp.Get() / 2)
		if exp.Get() > 0 {
			f.Assign(x, f.Mul(x, x))
		}
	}
	f.Return(res)
	m := bb.Func("main", nil, minic.IntType)
	r := m.Decl("r", m.Call("power_15", minic.IntType, m.IntLit(3)))
	m.Printf("%d\n", r)
	m.Return(m.IntLit(0))
	return bb.Link("power_gen.c", d2x.LinkOptions{})
}

func buildEinsum() (*d2x.Build, error) {
	const M, N = 16, 8
	bb := buildit.NewBuilder()
	buildit.EnableD2X(bb)
	f := bb.Func("m_v_mul", []buildit.Param{
		{Name: "output", Type: einsum.IntArrayType},
		{Name: "matrix", Type: einsum.IntArrayType},
		{Name: "input", Type: einsum.IntArrayType},
	}, minic.VoidType)
	env := einsum.New(f)
	c := env.Tensor("c", f.Arg(0), M)
	a := env.Tensor("a", f.Arg(1), M, N)
	bt := env.Tensor("b", f.Arg(2), N)
	ii, jj := einsum.NewIndex("i"), einsum.NewIndex("j")
	if err := bt.Assign(einsum.Const(1), jj); err != nil {
		return nil, err
	}
	if err := c.Assign(einsum.Mul(einsum.Const(2), a.At(ii, jj), bt.At(jj)), ii); err != nil {
		return nil, err
	}
	f.Return(buildit.Expr{})
	m := bb.Func("main", nil, minic.IntType)
	out := m.DeclArr("output", minic.IntType, m.IntLit(M))
	mat := m.DeclArr("matrix", minic.IntType, m.IntLit(M*N))
	in := m.DeclArr("input", minic.IntType, m.IntLit(N))
	m.Do(m.Call("m_v_mul", minic.VoidType, out, mat, in))
	m.Return(m.IntLit(0))
	return bb.Link("einsum_gen.c", d2x.LinkOptions{})
}

// buildQuickstart replicates the staging of examples/quickstart: an
// unrolled sum_squares with an erased static, the smallest D2X build.
func buildQuickstart() (*d2x.Build, error) {
	bb := buildit.NewBuilder()
	buildit.EnableD2X(bb)
	f := bb.Func("sum_squares", []buildit.Param{{Name: "n", Type: minic.IntType}}, minic.IntType)
	unroll := buildit.NewStatic(f, "unroll", 4)
	total := f.Decl("total", f.IntLit(0))
	for unroll.Get() > 0 {
		f.AddAssign(total, f.Mul(f.Arg(0), f.Arg(0)))
		unroll.Set(unroll.Get() - 1)
	}
	f.Return(total)
	m := bb.Func("main", nil, minic.IntType)
	m.Printf("%d\n", m.Call("sum_squares", minic.IntType, m.IntLit(5)))
	m.Return(m.IntLit(0))
	return bb.Link("quickstart_gen.c", d2x.LinkOptions{})
}
