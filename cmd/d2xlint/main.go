// Command d2xlint runs the d2xverify checks over the case-study
// pipelines (pagerankdelta, power, einsum, quickstart) and over the
// repository's architecture invariants. It is the CI face of the
// verifier: a healthy tree prints one "ok" line per target and exits 0.
//
// Exit status follows compiler conventions:
//
//	0  no error-severity findings (warnings are printed but do not fail)
//	1  at least one SevError finding
//	2  the tool itself could not run (unknown pipeline, build failure)
//
// Usage:
//
//	d2xlint [-arch=false] [-effects] [pagerankdelta|power|einsum|quickstart ...]
//
// With no pipeline arguments all pipelines are checked. -effects prints
// each pipeline's per-function effect summaries (the output of
// internal/minic/effects) — the debugging view for the analysis itself.
package main

import (
	"flag"
	"fmt"
	"os"

	"d2x/internal/d2xverify"
	"d2x/internal/examplebuilds"
	"d2x/internal/loc"
	"d2x/internal/minic"
	"d2x/internal/minic/effects"
)

func main() {
	arch := flag.Bool("arch", true, "also run the repository architecture checks")
	showFX := flag.Bool("effects", false, "print per-function effect summaries for each pipeline")
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 {
		targets = examplebuilds.Names()
	}

	sawError := false
	for _, name := range targets {
		build, err := examplebuilds.Build(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "d2xlint: building %s: %v\n", name, err)
			os.Exit(2)
		}
		rep := build.Verify()
		if rep.Errors() > 0 {
			sawError = true
		}
		if len(rep.Diags) > 0 {
			fmt.Printf("%s: %d finding(s)\n%s", name, len(rep.Diags), rep)
		} else {
			fmt.Printf("%s: ok (%d checks)\n", name, len(d2xverify.DefaultRegistry().Checks()))
		}
		if *showFX {
			printEffects(name, build.Program)
		}
	}

	if *arch {
		root, err := loc.RepoRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "d2xlint:", err)
			os.Exit(2)
		}
		rep := d2xverify.VerifyRepo(root)
		if rep.Errors() > 0 {
			sawError = true
		}
		if len(rep.Diags) > 0 {
			fmt.Printf("arch: %d finding(s)\n%s", len(rep.Diags), rep)
		} else {
			fmt.Printf("arch: ok (%d checks)\n", len(d2xverify.DefaultRegistry().RepoChecks()))
		}
	}

	if sawError {
		os.Exit(1)
	}
}

// printEffects dumps one pipeline's effect summaries, one function per
// line, in name order.
func printEffects(name string, prog *minic.Program) {
	fmt.Printf("%s: effect summaries\n", name)
	for _, s := range effects.Analyze(prog).Sorted() {
		line := fmt.Sprintf("  %-40s %-36s loops=%s", s.Name, s.Effects, s.Loop)
		if s.Effects&effects.WritesHeap != 0 && s.WriteLine != 0 {
			line += fmt.Sprintf(" (first write at line %d)", s.WriteLine)
		}
		fmt.Println(line)
	}
}
