// Command d2xlint runs the d2xverify checks over the three case-study
// pipelines (pagerankdelta, power, einsum) and over the repository's
// architecture invariants. It is the CI face of the verifier: a healthy
// tree prints one "ok" line per target and exits 0; any cross-layer
// inconsistency or lint finding is printed with its anchor and fix hint
// and the exit status is 1.
//
// Usage:
//
//	d2xlint [-arch=false] [pagerankdelta|power|einsum ...]
//
// With no pipeline arguments all three are checked.
package main

import (
	"flag"
	"fmt"
	"os"

	"d2x/internal/buildit"
	"d2x/internal/d2x"
	"d2x/internal/d2xverify"
	"d2x/internal/einsum"
	"d2x/internal/graphit"
	"d2x/internal/loc"
	"d2x/internal/minic"
)

func main() {
	arch := flag.Bool("arch", true, "also run the repository architecture checks")
	flag.Parse()

	builders := map[string]func() (*d2x.Build, error){
		"pagerankdelta": buildPagerankDelta,
		"power":         buildPower,
		"einsum":        buildEinsum,
	}
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"pagerankdelta", "power", "einsum"}
	}

	failed := false
	for _, name := range targets {
		mk, ok := builders[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "d2xlint: unknown pipeline %q (want pagerankdelta, power, einsum)\n", name)
			os.Exit(2)
		}
		build, err := mk()
		if err != nil {
			fmt.Fprintf(os.Stderr, "d2xlint: building %s: %v\n", name, err)
			os.Exit(1)
		}
		rep := build.Verify()
		if len(rep.Diags) > 0 {
			failed = true
			fmt.Printf("%s: %d finding(s)\n%s", name, len(rep.Diags), rep)
		} else {
			fmt.Printf("%s: ok (%d checks)\n", name, len(d2xverify.DefaultRegistry().Checks()))
		}
	}

	if *arch {
		root, err := loc.RepoRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "d2xlint:", err)
			os.Exit(1)
		}
		rep := d2xverify.VerifyRepo(root)
		if len(rep.Diags) > 0 {
			failed = true
			fmt.Printf("arch: %d finding(s)\n%s", len(rep.Diags), rep)
		} else {
			fmt.Printf("arch: ok (%d checks)\n", len(d2xverify.DefaultRegistry().RepoChecks()))
		}
	}

	if failed {
		os.Exit(1)
	}
}

func buildPagerankDelta() (*d2x.Build, error) {
	art, err := graphit.CompileToC("pagerankdelta.gt", graphit.PageRankDeltaSrc,
		"pagerankdelta.sched", graphit.PageRankDeltaSchedule, graphit.CompileOptions{D2X: true})
	if err != nil {
		return nil, err
	}
	return art.Link()
}

func buildPower() (*d2x.Build, error) {
	bb := buildit.NewBuilder()
	buildit.EnableD2X(bb)
	f := bb.Func("power_15", []buildit.Param{{Name: "base", Type: minic.IntType}}, minic.IntType)
	exp := buildit.NewStatic(f, "exponent", 15)
	res := f.Decl("res", f.IntLit(1))
	x := f.Decl("x", f.Arg(0))
	for exp.Get() > 0 {
		if exp.Get()%2 == 1 {
			f.Assign(res, f.Mul(res, x))
		}
		exp.Set(exp.Get() / 2)
		if exp.Get() > 0 {
			f.Assign(x, f.Mul(x, x))
		}
	}
	f.Return(res)
	m := bb.Func("main", nil, minic.IntType)
	r := m.Decl("r", m.Call("power_15", minic.IntType, m.IntLit(3)))
	m.Printf("%d\n", r)
	m.Return(m.IntLit(0))
	return bb.Link("power_gen.c", d2x.LinkOptions{})
}

func buildEinsum() (*d2x.Build, error) {
	const M, N = 16, 8
	bb := buildit.NewBuilder()
	buildit.EnableD2X(bb)
	f := bb.Func("m_v_mul", []buildit.Param{
		{Name: "output", Type: einsum.IntArrayType},
		{Name: "matrix", Type: einsum.IntArrayType},
		{Name: "input", Type: einsum.IntArrayType},
	}, minic.VoidType)
	env := einsum.New(f)
	c := env.Tensor("c", f.Arg(0), M)
	a := env.Tensor("a", f.Arg(1), M, N)
	bt := env.Tensor("b", f.Arg(2), N)
	ii, jj := einsum.NewIndex("i"), einsum.NewIndex("j")
	if err := bt.Assign(einsum.Const(1), jj); err != nil {
		return nil, err
	}
	if err := c.Assign(einsum.Mul(einsum.Const(2), a.At(ii, jj), bt.At(jj)), ii); err != nil {
		return nil, err
	}
	f.Return(buildit.Expr{})
	m := bb.Func("main", nil, minic.IntType)
	out := m.DeclArr("output", minic.IntType, m.IntLit(M))
	mat := m.DeclArr("matrix", minic.IntType, m.IntLit(M*N))
	in := m.DeclArr("input", minic.IntType, m.IntLit(N))
	m.Do(m.Call("m_v_mul", minic.VoidType, out, mat, in))
	m.Return(m.IntLit(0))
	return bb.Link("einsum_gen.c", d2x.LinkOptions{})
}
