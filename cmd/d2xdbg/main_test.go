package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"d2x/internal/graphit"
)

// writeGT writes a known-good GraphIt program to a temp file.
func writeGT(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "two_apply.gt")
	if err := os.WriteFile(p, []byte(graphit.TwoApplySrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func writeScript(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "script")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// errReader fails after its prefix is consumed, simulating an I/O error
// in the middle of an interactive session.
type errReader struct {
	prefix io.Reader
	err    error
	done   bool
}

func (r *errReader) Read(p []byte) (int, error) {
	if !r.done {
		n, err := r.prefix.Read(p)
		if err == io.EOF {
			r.done = true
			return n, nil
		}
		return n, err
	}
	return 0, r.err
}

type strErr string

func (e strErr) Error() string { return string(e) }

func TestExitCodes(t *testing.T) {
	gt := writeGT(t)
	cases := []struct {
		name     string
		args     []string
		stdin    io.Reader
		want     int
		inStderr string
		inStdout string
	}{
		{
			name: "no input file", args: nil, want: 2, inStderr: "usage",
		},
		{
			name: "too many args", args: []string{gt, gt}, want: 2, inStderr: "usage",
		},
		{
			name: "bad flag", args: []string{"-definitely-not-a-flag", gt}, want: 2,
		},
		{
			name: "missing gt file", args: []string{filepath.Join(t.TempDir(), "nope.gt")},
			want: 1, inStderr: "no such file",
		},
		{
			name: "bad gt source",
			args: []string{writeScript(t, "this is not graphit")},
			want: 1, inStderr: "d2xdbg:",
		},
		{
			name: "missing schedule file",
			args: []string{"-schedule", filepath.Join(t.TempDir(), "nope.sched"), gt},
			want: 1, inStderr: "no such file",
		},
		{
			name: "missing script file",
			args: []string{"-x", filepath.Join(t.TempDir(), "nope"), gt},
			want: 1, inStderr: "no such file",
		},
		{
			name: "script with bad command",
			args: []string{"-x", writeScript(t, "break main\nfrobnicate\nrun\n"), gt},
			want: 1, inStderr: "frobnicate",
		},
		{
			name: "script command error stops script",
			args: []string{"-x", writeScript(t, "break nosuchfunction\n"), gt},
			want: 1, inStderr: "nosuchfunction",
		},
		{
			name: "good script", args: []string{"-x", writeScript(t, "break main\nrun\nbt\n"), gt},
			want: 0,
		},
		{
			name: "repl clean EOF", args: []string{gt},
			stdin: strings.NewReader(""), want: 0, inStdout: "(d2xdbg)",
		},
		{
			name: "repl quit", args: []string{gt},
			stdin: strings.NewReader("quit\n"), want: 0,
		},
		{
			name: "repl bad command does not exit", args: []string{gt},
			stdin: strings.NewReader("frobnicate\nquit\n"), want: 0,
			inStdout: "frobnicate",
		},
		{
			name: "repl read error", args: []string{gt},
			stdin: &errReader{prefix: strings.NewReader("break main\n"), err: strErr("disk on fire")},
			want:  1, inStderr: "disk on fire",
		},
		{
			name: "repl oversized line", args: []string{gt},
			stdin: strings.NewReader(strings.Repeat("x", maxCommandLine+10) + "\n"),
			want:  1, inStderr: "longer than",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			stdin := tc.stdin
			if stdin == nil {
				stdin = strings.NewReader("")
			}
			got := run(tc.args, stdin, &stdout, &stderr)
			if got != tc.want {
				t.Errorf("exit = %d, want %d (stderr: %q)", got, tc.want, stderr.String())
			}
			if tc.inStderr != "" && !strings.Contains(stderr.String(), tc.inStderr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.inStderr)
			}
			if tc.inStdout != "" && !strings.Contains(stdout.String(), tc.inStdout) {
				t.Errorf("stdout %q does not contain %q", stdout.String(), tc.inStdout)
			}
		})
	}
}
