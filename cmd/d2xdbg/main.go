// Command d2xdbg is the interactive debugger front end: it compiles a
// GraphIt program with D2X enabled, loads it under the stock debugger with
// the D2X helper macros installed, and starts a GDB-style command loop.
//
// Usage:
//
//	d2xdbg [-schedule FILE] [-x SCRIPT] input.gt
//
// All of GDB's usual commands work (break, run, continue, step, next, bt,
// frame, print, info, call, eval, ...) plus the D2X commands: xbt, xlist,
// xframe, xvars, xbreak, xdel — and the observability commands stats
// (metrics snapshot as JSON) and trace (event trace as JSONL). With -x,
// commands come from a script file and the session is non-interactive.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"d2x/internal/debugger"
	"d2x/internal/graphit"
)

func main() {
	schedule := flag.String("schedule", "", "schedule file")
	script := flag.String("x", "", "execute commands from this file and exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: d2xdbg [flags] input.gt")
		flag.PrintDefaults()
		os.Exit(2)
	}
	gtFile := flag.Arg(0)
	gtSrc, err := os.ReadFile(gtFile)
	if err != nil {
		fatal(err)
	}
	schedSrc := ""
	if *schedule != "" {
		b, err := os.ReadFile(*schedule)
		if err != nil {
			fatal(err)
		}
		schedSrc = string(b)
	}

	art, err := graphit.CompileToC(gtFile, string(gtSrc), *schedule, schedSrc,
		graphit.CompileOptions{D2X: true})
	if err != nil {
		fatal(err)
	}
	build, err := art.Link()
	if err != nil {
		fatal(err)
	}
	d, err := build.NewSession(os.Stdout)
	if err != nil {
		fatal(err)
	}

	if *script != "" {
		b, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		if err := d.ExecuteScript(string(b)); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("d2xdbg: debugging %s (generated code: %d lines)\n",
		gtFile, len(strings.Split(build.Source, "\n")))
	fmt.Println(`Type "help" for commands, "quit" to exit.`)
	repl(d)
}

func repl(d *debugger.Debugger) {
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("(d2xdbg) ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch line {
		case "quit", "q", "exit":
			return
		case "help":
			printHelp()
			continue
		case "":
			continue
		}
		if err := d.Execute(line); err != nil {
			fmt.Println(err)
		}
	}
}

func printHelp() {
	fmt.Print(`Standard commands:
  break LOC | delete [N] | clear LOC    breakpoints (LOC: file:line or func)
  run | continue | step | next | finish execution
  bt | frame [N] | up | down            stack navigation
  list [N] | print EXPR | set X = Y     inspection
  info breakpoints|locals|args|threads|registers|functions
  thread N | call F(ARGS) | eval "FMT", ARGS
D2X commands (DSL-level):
  xbt            extended (DSL) stack for the current frame
  xlist          DSL source around the selected extended frame
  xframe [N]     select/display an extended frame
  xvars [NAME]   extended variables; NAME evaluates one (rtv_handlers run)
  xbreak [LOC]   DSL-level breakpoint (file:line in the DSL input)
  xdel ID        delete a DSL-level breakpoint
Observability:
  stats          debug-service metrics snapshot (JSON)
  trace [N]      structured event trace as JSONL (last N events)
`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "d2xdbg:", err)
	os.Exit(1)
}
