// Command d2xdbg is the interactive debugger front end: it compiles a
// GraphIt program with D2X enabled, loads it under the stock debugger with
// the D2X helper macros installed, and starts a GDB-style command loop.
//
// Usage:
//
//	d2xdbg [-schedule FILE] [-x SCRIPT] input.gt
//
// All of GDB's usual commands work (break, run, continue, step, next, bt,
// frame, print, info, call, eval, ...) plus the D2X commands: xbt, xlist,
// xframe, xvars, xbreak, xdel — and the observability commands stats
// (metrics snapshot as JSON) and trace (event trace as JSONL). With -x,
// commands come from a script file and the session is non-interactive; the
// script stops at its first failing command.
//
// Exit status:
//
//	0  clean exit: "quit" or end of input in the REPL, or a -x script
//	   whose every command succeeded
//	1  error: unreadable input or script file, compile or link failure,
//	   a failing -x script command, or a command-stream read error
//	   (including an over-long line)
//	2  usage error
//
// Note that in the interactive REPL a failing command prints its error
// and the loop continues — only the -x script mode treats a command
// failure as fatal.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"d2x/internal/debugger"
	"d2x/internal/graphit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// maxCommandLine bounds one REPL or script line. No debugger command is
// anywhere near this long; an unbounded line would otherwise grow the
// scanner buffer without limit.
const maxCommandLine = 1 << 20

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("d2xdbg", flag.ContinueOnError)
	fs.SetOutput(stderr)
	schedule := fs.String("schedule", "", "schedule file")
	script := fs.String("x", "", "execute commands from this file and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: d2xdbg [flags] input.gt")
		fs.PrintDefaults()
		return 2
	}
	gtFile := fs.Arg(0)
	gtSrc, err := os.ReadFile(gtFile)
	if err != nil {
		return fail(stderr, err)
	}
	schedSrc := ""
	if *schedule != "" {
		b, err := os.ReadFile(*schedule)
		if err != nil {
			return fail(stderr, err)
		}
		schedSrc = string(b)
	}

	art, err := graphit.CompileToC(gtFile, string(gtSrc), *schedule, schedSrc,
		graphit.CompileOptions{D2X: true})
	if err != nil {
		return fail(stderr, err)
	}
	build, err := art.Link()
	if err != nil {
		return fail(stderr, err)
	}
	d, err := build.NewSession(stdout)
	if err != nil {
		return fail(stderr, err)
	}
	defer d.Close()

	if *script != "" {
		b, err := os.ReadFile(*script)
		if err != nil {
			return fail(stderr, err)
		}
		if err := d.ExecuteScript(string(b)); err != nil {
			return fail(stderr, err)
		}
		return 0
	}

	fmt.Fprintf(stdout, "d2xdbg: debugging %s (generated code: %d lines)\n",
		gtFile, len(strings.Split(build.Source, "\n")))
	fmt.Fprintln(stdout, `Type "help" for commands, "quit" to exit.`)
	if err := repl(d, stdin, stdout); err != nil {
		return fail(stderr, err)
	}
	return 0
}

// repl runs the interactive loop until "quit" or end of input. A failing
// command prints its error and the loop continues; a failure to *read*
// the command stream (I/O error, over-long line) is returned and fatal.
func repl(d *debugger.Debugger, stdin io.Reader, stdout io.Writer) error {
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 4096), maxCommandLine)
	for {
		fmt.Fprint(stdout, "(d2xdbg) ")
		if !sc.Scan() {
			fmt.Fprintln(stdout)
			if err := sc.Err(); err != nil {
				if err == bufio.ErrTooLong {
					return fmt.Errorf("command line longer than %d bytes", maxCommandLine)
				}
				return fmt.Errorf("reading commands: %w", err)
			}
			return nil // clean EOF
		}
		line := strings.TrimSpace(sc.Text())
		switch line {
		case "quit", "q", "exit":
			return nil
		case "help":
			printHelp(stdout)
			continue
		case "":
			continue
		}
		if err := d.Execute(line); err != nil {
			fmt.Fprintln(stdout, err)
		}
	}
}

func printHelp(w io.Writer) {
	fmt.Fprint(w, `Standard commands:
  break LOC | delete [N] | clear LOC    breakpoints (LOC: file:line or func)
  run | continue | step | next | finish execution
  bt | frame [N] | up | down            stack navigation
  list [N] | print EXPR | set X = Y     inspection
  info breakpoints|locals|args|threads|registers|functions|record
  thread N | call F(ARGS) | eval "FMT", ARGS
Process record (time travel):
  record                 start recording execution at this stop
  record stop            stop recording and delete the history
  record goto N          jump to recorded position N
  reverse-step (rs)      run backwards to the previous source line
  reverse-continue (rc)  run backwards to the last breakpoint hit
D2X commands (DSL-level):
  xbt            extended (DSL) stack for the current frame
  xlist          DSL source around the selected extended frame
  xframe [N]     select/display an extended frame
  xvars [NAME]   extended variables; NAME evaluates one (rtv_handlers run)
  xbreak [LOC]   DSL-level breakpoint (file:line in the DSL input)
  xdel ID        delete a DSL-level breakpoint
  reverse-xbt    reverse-step, then show the extended stack there
Observability:
  stats          debug-service metrics snapshot (JSON)
  trace [N]      structured event trace as JSONL (last N events)
`)
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "d2xdbg:", err)
	return 1
}
