// Command graphitc is the GraphIt compiler driver: it compiles a .gt
// algorithm file (plus an optional schedule file) to mini-C, optionally
// with D2X debug information, and can run the result directly.
//
// Usage:
//
//	graphitc [-schedule FILE] [-o FILE] [-g] [-run] [-lint] [-workers N] input.gt
//
// -g enables D2X debug information (the tables are generated into the
// output program itself). -run compiles and executes instead of writing
// the generated source. -lint runs the d2xverify cross-layer checks over
// the linked build and exits nonzero on any finding.
package main

import (
	"flag"
	"fmt"
	"os"

	"d2x/internal/graphit"
	"d2x/internal/minic"
)

func main() {
	schedule := flag.String("schedule", "", "schedule file (GraphIt scheduling language)")
	output := flag.String("o", "", "write generated mini-C to this file (default stdout)")
	debug := flag.Bool("g", false, "generate D2X debug information")
	run := flag.Bool("run", false, "compile and run instead of emitting source")
	optimize := flag.Bool("O", false, "run the mini-C constant folder over the generated code")
	lint := flag.Bool("lint", false, "verify debug-info consistency instead of emitting or running")
	workers := flag.Int("workers", 4, "logical threads for parallel_for when running")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: graphitc [flags] input.gt")
		flag.PrintDefaults()
		os.Exit(2)
	}
	gtFile := flag.Arg(0)
	gtSrc, err := os.ReadFile(gtFile)
	if err != nil {
		fatal(err)
	}
	schedSrc := ""
	if *schedule != "" {
		b, err := os.ReadFile(*schedule)
		if err != nil {
			fatal(err)
		}
		schedSrc = string(b)
	}

	art, err := graphit.CompileToC(gtFile, string(gtSrc), *schedule, schedSrc,
		graphit.CompileOptions{D2X: *debug})
	if err != nil {
		fatal(err)
	}

	if *lint {
		build, err := art.LinkOptimizing(*optimize)
		if err != nil {
			fatal(err)
		}
		rep := build.Verify()
		if len(rep.Diags) > 0 {
			fmt.Fprint(os.Stderr, rep)
			fmt.Fprintf(os.Stderr, "graphitc: %d finding(s)\n", len(rep.Diags))
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "graphitc: %s: debug info verified, no findings\n", gtFile)
		return
	}

	if *run {
		build, err := art.LinkOptimizing(*optimize)
		if err != nil {
			fatal(err)
		}
		vm := minic.NewVM(build.Program, os.Stdout)
		vm.NumWorkers = *workers
		if err := vm.Run(); err != nil {
			fatal(err)
		}
		return
	}

	src := art.Source
	if *debug && art.Ctx != nil {
		// Emit the full linked source (code + tables) so the output is a
		// self-contained debuggable program.
		build, err := art.LinkOptimizing(*optimize)
		if err != nil {
			fatal(err)
		}
		src = build.Source
	}
	if *output == "" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(*output, []byte(src), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphitc:", err)
	os.Exit(1)
}
