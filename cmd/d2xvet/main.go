// Command d2xvet runs the repository's static-analysis pass suite
// (internal/d2xvet) over package patterns, multichecker-style.
//
// Usage:
//
//	d2xvet [-pass name[,name...]] [-list] [pattern ...]
//
// A pattern is a directory, or a directory followed by /... for the
// subtree rooted there; the default is ./... from the enclosing module
// root. Repository-level passes (arch/import-graph, arch/markers) run
// once over the module root whenever selected, regardless of patterns.
//
// Exit codes (matching d2xlint):
//
//	0  every selected pass ran and reported nothing
//	1  at least one finding
//	2  usage error, or the tool itself failed (unparseable source,
//	   type-check failure, unknown pass)
//
// Suppress a finding with a trailing (or preceding-line) comment:
//
//	//d2xvet:ignore <pass> <reason>
//
// The reason is mandatory; a reason-less ignore is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"d2x/internal/d2xvet"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("d2xvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	passes := fs.String("pass", "", "comma-separated pass names to run (default: all)")
	list := fs.Bool("list", false, "list the available passes and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: d2xvet [-pass name[,name...]] [-list] [pattern ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range d2xvet.All() {
			kind := "package"
			if a.Repo {
				kind = "repo"
			}
			fmt.Fprintf(stdout, "%-18s %-7s  %s\n", a.Name, kind, a.Doc)
		}
		return 0
	}

	analyzers := d2xvet.All()
	if *passes != "" {
		analyzers = nil
		for _, name := range strings.Split(*passes, ",") {
			name = strings.TrimSpace(name)
			a := d2xvet.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "d2xvet: unknown pass %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := d2xvet.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "d2xvet: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "/...")
		if base == "" || base == "." {
			base = loader.Root
		}
		abs, err := filepath.Abs(base)
		if err != nil {
			fmt.Fprintf(stderr, "d2xvet: %v\n", err)
			return 2
		}
		if recursive {
			sub, err := d2xvet.GoDirs(abs)
			if err != nil {
				fmt.Fprintf(stderr, "d2xvet: %v\n", err)
				return 2
			}
			for _, d := range sub {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
		} else if !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}

	var pkgs []*d2xvet.Package
	for _, dir := range dirs {
		loaded, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "d2xvet: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, loaded...)
	}

	facts := d2xvet.NewFacts(pkgs)
	// Markers must resolve module-wide even when analyzing a subset of
	// packages, or cross-package annotations look missing and noalloc
	// reports false positives.
	analyzed := map[string]bool{}
	for _, dir := range dirs {
		analyzed[dir] = true
	}
	if err := facts.ScanModule(loader, analyzed); err != nil {
		fmt.Fprintf(stderr, "d2xvet: %v\n", err)
		return 2
	}
	diags, err := d2xvet.RunPackages(loader.Root, pkgs, analyzers, facts)
	if err != nil {
		fmt.Fprintf(stderr, "d2xvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, relDiag(loader.Root, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(stdout, "d2xvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relDiag renders a diagnostic with its file path relative to the
// module root, the way the repo's other lint output reads.
func relDiag(root string, d d2xvet.Diagnostic) string {
	if d.Pos.Filename != "" {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
	}
	return d.String()
}
