// Command d2xdemo replays the paper's figures as live debugger sessions on
// this reproduction. Each subcommand compiles the relevant case study,
// attaches the debugger, runs a scripted session, and prints the
// transcript — the qualitative evaluation of the paper in executable form.
//
// Usage:
//
//	d2xdemo [-lint] [-stats] [fig2|fig6|fig9|fig11|parallel|all]
//
// With -lint each figure's build is run through the d2xverify checks
// instead of a debugger session; any finding exits nonzero. With -stats
// the observability snapshot of everything the run touched — command
// counts, lookup-stage latencies, table decodes, session churn — is
// printed as JSON after the transcripts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"d2x/internal/buildit"
	"d2x/internal/d2x"
	"d2x/internal/debugger"
	"d2x/internal/einsum"
	"d2x/internal/graphit"
	"d2x/internal/minic"
	"d2x/internal/obs"
)

// lintMode replaces each figure's debugger session with a d2xverify run
// over the same build.
var lintMode = flag.Bool("lint", false, "verify each figure's debug info instead of running a session")

// statsMode dumps the obs.Snapshot of the whole run as JSON on exit.
var statsMode = flag.Bool("stats", false, "print the observability snapshot (JSON) after the run")

func main() {
	flag.Parse()
	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	demos := map[string]func() error{
		"fig2": fig2, "fig6": fig6, "fig9": fig9, "fig11": fig11,
		"parallel": parallel,
	}
	order := []string{"fig2", "fig6", "fig9", "fig11", "parallel"}
	if which != "all" {
		fn, ok := demos[which]
		if !ok {
			fmt.Fprintf(os.Stderr, "d2xdemo: unknown demo %q (want fig2, fig6, fig9, fig11, parallel, all)\n", which)
			os.Exit(2)
		}
		if err := fn(); err != nil {
			fatal(err)
		}
		printStats()
		return
	}
	for _, name := range order {
		banner(name)
		if err := demos[name](); err != nil {
			fatal(err)
		}
	}
	printStats()
}

// printStats implements -stats: the observability snapshot of everything
// this run executed, as indented JSON on stdout.
func printStats() {
	if !*statsMode {
		return
	}
	b, err := obs.Snapshot().MarshalIndent()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n======== stats ========\n%s\n", b)
}

func banner(name string) {
	fmt.Printf("\n======== %s ========\n", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "d2xdemo:", err)
	os.Exit(1)
}

// maybeLint handles -lint: it verifies the build's debug layers and
// reports true when the figure should skip its debugger session.
func maybeLint(name string, build *d2x.Build) (bool, error) {
	if !*lintMode {
		return false, nil
	}
	rep := build.Verify()
	if len(rep.Diags) > 0 {
		return true, fmt.Errorf("%s: %d verification finding(s)\n%s", name, len(rep.Diags), rep)
	}
	fmt.Printf("%s: debug info verified, no findings\n", name)
	return true, nil
}

// script runs debugger commands, echoing them GDB-style.
func script(d *debugger.Debugger, cmds ...string) error {
	for _, c := range cmds {
		fmt.Printf("(gdb) %s\n", c)
		if err := d.Execute(c); err != nil {
			return fmt.Errorf("command %q: %w", c, err)
		}
	}
	return nil
}

// fig2 shows per-call-site UDF specialisation: the same updateEdge
// compiled once with atomics (push) and once without (pull).
func fig2() error {
	fmt.Println("Figure 1/2: one UDF, two schedules, two generated versions")
	if *lintMode {
		fmt.Println("fig2: source-only demo, nothing to verify")
		return nil
	}
	art, err := graphit.CompileToC("twoapply.gt", graphit.TwoApplySrc,
		"twoapply.sched", graphit.TwoApplySchedule, graphit.CompileOptions{})
	if err != nil {
		return err
	}
	for _, l := range strings.Split(art.Source, "\n") {
		if strings.Contains(l, "updateEdge_") || strings.Contains(l, "nrank[d]") {
			fmt.Println(strings.TrimRight(l, " \t"))
		}
	}
	return nil
}

// fig6 is the PageRankDelta session: extended stack, UDF calling context,
// and the vertexset rtv_handler.
func fig6() error {
	fmt.Println("Figure 6: debugging PageRankDelta (GraphIt) with D2X")
	art, err := graphit.CompileToC("pagerankdelta.gt", graphit.PageRankDeltaSrc,
		"pagerankdelta.sched", graphit.PageRankDeltaSchedule, graphit.CompileOptions{D2X: true})
	if err != nil {
		return err
	}
	build, err := art.Link()
	if err != nil {
		return err
	}
	if done, err := maybeLint("fig6", build); done {
		return err
	}
	d, err := build.NewSession(os.Stdout)
	if err != nil {
		return err
	}
	udfLine := lineOf(build.Source, "atomic_add(&new_rank[dst]")
	printLine := lineOf(build.Source, "__frontier_size(frontier)")
	return script(d,
		fmt.Sprintf("break pagerankdelta.c:%d", udfLine),
		"run",
		"xbt",
		"xlist",
		"xframe 1",
		"xvars schedule",
		"delete",
		fmt.Sprintf("break pagerankdelta.c:%d", printLine),
		"continue",
		"xvars",
		"xvars frontier",
		"print frontier",
		"delete",
		"continue",
	)
}

// fig9 is the BuildIt power-function session: second-stage commands (bt,
// print) against first-stage commands (xbt, xlist, xvars, xbreak).
func fig9() error {
	fmt.Println("Figure 8/9: debugging staged power_15 (BuildIt) with D2X")
	b := buildit.NewBuilder()
	buildit.EnableD2X(b)
	stagePowerDemo(b, 15)
	m := b.Func("main", nil, minic.IntType)
	r := m.Decl("r", m.Call("power_15", minic.IntType, m.IntLit(3)))
	m.Printf("%d\n", r)
	m.Return(m.IntLit(0))
	build, err := b.Link("power_gen.c", d2x.LinkOptions{})
	if err != nil {
		return err
	}
	if done, err := maybeLint("fig9", build); done {
		return err
	}
	d, err := build.NewSession(os.Stdout)
	if err != nil {
		return err
	}
	line := lineOf(build.Source, "x_2 = x_2 * x_2;")
	return script(d,
		fmt.Sprintf("break power_gen.c:%d", line),
		"run",
		"bt",
		"frame",
		"xbt",
		"xlist",
		"xvars",
		"xvars exponent",
		"print res_1",
		"delete",
		"continue",
	)
}

// stagePowerDemo is the first-stage source Figure 9's xlist displays.
func stagePowerDemo(b *buildit.Builder, exponent int) {
	f := b.Func("power_15", []buildit.Param{{Name: "arg0", Type: minic.IntType}}, minic.IntType)
	exp := buildit.NewStatic(f, "exponent", exponent)
	res := f.Decl("res", f.IntLit(1))
	x := f.Decl("x", f.Arg(0))
	for exp.Get() > 0 {
		if exp.Get()%2 == 1 {
			f.Assign(res, f.Mul(res, x))
		}
		exp.Set(exp.Get() / 2)
		if exp.Get() > 0 {
			f.Assign(x, f.Mul(x, x))
		}
	}
	f.Return(res)
}

// fig11 is the einsum session: xbt into the DSL implementation, xvars
// showing the constant-propagation result.
func fig11() error {
	fmt.Println("Figure 10/11: debugging the einsum DSL (on BuildIt) with D2X")
	const M, N = 16, 8
	b := buildit.NewBuilder()
	buildit.EnableD2X(b)
	f := b.Func("m_v_mul", []buildit.Param{
		{Name: "output", Type: einsum.IntArrayType},
		{Name: "matrix", Type: einsum.IntArrayType},
		{Name: "input", Type: einsum.IntArrayType},
	}, minic.VoidType)
	env := einsum.New(f)
	c := env.Tensor("c", f.Arg(0), M)
	a := env.Tensor("a", f.Arg(1), M, N)
	bt := env.Tensor("b", f.Arg(2), N)
	i, j := einsum.NewIndex("i"), einsum.NewIndex("j")
	if err := bt.Assign(einsum.Const(1), j); err != nil {
		return err
	}
	if err := c.Assign(einsum.Mul(einsum.Const(2), a.At(i, j), bt.At(j)), i); err != nil {
		return err
	}
	f.Return(buildit.Expr{})

	m := b.Func("main", nil, minic.IntType)
	out := m.DeclArr("output", minic.IntType, m.IntLit(M))
	mat := m.DeclArr("matrix", minic.IntType, m.IntLit(M*N))
	in := m.DeclArr("input", minic.IntType, m.IntLit(N))
	m.For("k", m.IntLit(0), m.IntLit(M*N), func(k buildit.Expr) {
		m.Assign(m.Index(mat, k), m.Mod(k, m.IntLit(7)))
	})
	m.Do(m.Call("m_v_mul", minic.VoidType, out, mat, in))
	m.Printf("c[0]=%d\n", m.Index(out, m.IntLit(0)))
	m.Return(m.IntLit(0))

	build, err := b.Link("einsum_gen.c", d2x.LinkOptions{})
	if err != nil {
		return err
	}
	if done, err := maybeLint("fig11", build); done {
		return err
	}
	d, err := build.NewSession(os.Stdout)
	if err != nil {
		return err
	}
	line := lineOf(build.Source, "output[")
	return script(d,
		fmt.Sprintf("break einsum_gen.c:%d", line),
		"run",
		"bt",
		"xbt",
		"xframe 1",
		"xvars",
		"xvars b.constant_val",
		"delete",
		"continue",
	)
}

// parallel demonstrates the shared debug-info service: one PageRankDelta
// build serves several concurrent debug sessions, each with its own
// debuggee, breakpoints, and transcript, while the D2X tables are decoded
// exactly once. Transcripts are buffered per session and printed in
// order, like a terminal per developer.
func parallel() error {
	const sessions = 4
	fmt.Printf("Parallel sessions: %d debuggers, one build, one table decode\n", sessions)
	art, err := graphit.CompileToC("pagerankdelta.gt", graphit.PageRankDeltaSrc,
		"pagerankdelta.sched", graphit.PageRankDeltaSchedule, graphit.CompileOptions{D2X: true})
	if err != nil {
		return err
	}
	build, err := art.Link()
	if err != nil {
		return err
	}
	if done, err := maybeLint("parallel", build); done {
		return err
	}
	udfLine := lineOf(build.Source, "atomic_add(&new_rank[dst]")

	transcripts := make([]strings.Builder, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := &transcripts[i]
			d, err := build.NewSession(out)
			if err != nil {
				errs[i] = err
				return
			}
			defer d.Close()
			for _, c := range []string{
				fmt.Sprintf("break pagerankdelta.c:%d", udfLine),
				"run", "xbt", "xvars schedule",
				"xbreak pagerankdelta.gt:" + fmt.Sprint(lineOf(graphit.PageRankDeltaSrc, "new_rank[dst] +=")),
				"delete", "continue",
			} {
				fmt.Fprintf(out, "(gdb) %s\n", c)
				if err := d.Execute(c); err != nil {
					errs[i] = fmt.Errorf("command %q: %w", c, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := range transcripts {
		fmt.Printf("\n-- session %d --\n%s", i, transcripts[i].String())
		if errs[i] != nil {
			return fmt.Errorf("session %d: %w", i, errs[i])
		}
	}
	fmt.Printf("\ntable decodes: %d (shared across %d sessions), live sessions after close: %d\n",
		build.Runtime.TableDecodes(), sessions, build.LiveSessions())
	return nil
}

func lineOf(src, needle string) int {
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, needle) {
			return i + 1
		}
	}
	return 1
}
