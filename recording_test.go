package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"d2x/internal/graphit"
	"d2x/internal/minic"
	"d2x/internal/minic/journal"
)

// ---- Execution recording (time travel): forward-run overhead ----

// The recording pair runs the identical PageRankDelta computation with
// the execution journal attached and without it. The journal's budget is
// at most 15% wall-clock on the recorded run (the per-instruction log is
// 16 pooled bytes; snapshots amortise over DefaultSnapshotEvery steps)
// and exactly zero when off — recording off IS the plain VM loop, there
// is no disabled-but-present instrumentation to pay for. The gate in
// TestEmitRecordingBenchJSON holds the first claim; the deterministic
// instruction counter makes the workloads comparable instruction for
// instruction.

func BenchmarkRecording_Fig4Run_On(b *testing.B)  { benchRecordedRun(b, true) }
func BenchmarkRecording_Fig4Run_Off(b *testing.B) { benchRecordedRun(b, false) }

func benchRecordedRun(b *testing.B, record bool) {
	art, err := graphit.CompileToC("pagerankdelta.gt", graphit.PageRankDeltaSrc,
		"s", graphit.PageRankDeltaSchedule, graphit.CompileOptions{D2X: true})
	if err != nil {
		b.Fatal(err)
	}
	build, err := art.Link()
	if err != nil {
		b.Fatal(err)
	}
	var recorded int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := minic.NewVM(build.Program, nil)
		if err := vm.Start(); err != nil {
			b.Fatal(err)
		}
		if record {
			j, err := journal.Attach(vm, journal.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := vm.RunToCompletion(0); err != nil {
				b.Fatal(err)
			}
			recorded = j.Step()
		} else if err := vm.RunToCompletion(0); err != nil {
			b.Fatal(err)
		}
	}
	if record {
		b.ReportMetric(float64(recorded), "recorded-instrs")
	}
}

// ---- Execution recording: command-path cost at a stop ----

// A recording changes nothing about what a paused debug command does:
// xbt at a stop walks the same frames and reads the same tables whether
// or not a journal is logging the (not currently executing) debuggee.
// The pair documents that the command path is recording-oblivious.

func BenchmarkRecording_XBT_On(b *testing.B)  { benchRecordingXBT(b, true) }
func BenchmarkRecording_XBT_Off(b *testing.B) { benchRecordingXBT(b, false) }

func benchRecordingXBT(b *testing.B, record bool) {
	d, _ := pausedPagerankDelta(b, "powerlaw:n=64,m=512,seed=5")
	if record {
		mustExec(b, d, "record")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Execute("xbt"); err != nil {
			b.Fatal(err)
		}
	}
}

// recBenchJSONFile is the committed machine-readable record of the
// recording-overhead experiment; CI regenerates and gates it like
// BENCH_pr5.json.
const recBenchJSONFile = "BENCH_pr9.json"

// recordingGatePct is the recording-on overhead ceiling on the Fig4
// forward run, in percent. The on/off pair is measured in the same
// process back to back, so machine speed cancels out of the ratio and
// the gate needs no committed baseline.
const recordingGatePct = 15

type recordingReport struct {
	PR         string        `json:"pr"`
	Go         string        `json:"go"`
	OS         string        `json:"os"`
	Arch       string        `json:"arch"`
	Benchmarks []benchResult `json:"benchmarks"`
	// RunOverheadPct is the gated number: wall-clock cost of recording
	// the Fig4 forward run, relative to the identical unrecorded run.
	RunOverheadPct float64 `json:"run_overhead_pct"`
	// XBTOverheadPct documents the command path staying recording-
	// oblivious; it hovers around zero and is not gated (command
	// latencies are noisy at the nanosecond scale).
	XBTOverheadPct float64 `json:"xbt_overhead_pct"`
}

// TestEmitRecordingBenchJSON measures the recording on/off pairs and
// writes BENCH_pr9.json. Gated behind the same env vars as the pr5
// record:
//
//	D2X_BENCH_JSON=1 go test -run TestEmitRecordingBenchJSON .
//
// With D2X_BENCH_GATE=1 as well, the test fails if recording the Fig4
// forward run costs more than recordingGatePct percent over the
// unrecorded run.
func TestEmitRecordingBenchJSON(t *testing.T) {
	if os.Getenv("D2X_BENCH_JSON") == "" {
		t.Skipf("set D2X_BENCH_JSON=1 to emit %s", recBenchJSONFile)
	}

	rep := recordingReport{
		PR: "pr9", Go: runtime.Version(),
		OS: runtime.GOOS, Arch: runtime.GOARCH,
	}
	nsPerOp := map[string]float64{}
	for _, bm := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"Recording_Fig4Run_On", BenchmarkRecording_Fig4Run_On},
		{"Recording_Fig4Run_Off", BenchmarkRecording_Fig4Run_Off},
		{"Recording_XBT_On", BenchmarkRecording_XBT_On},
		{"Recording_XBT_Off", BenchmarkRecording_XBT_Off},
	} {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			bm.fn(b)
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		nsPerOp[bm.name] = ns
		rep.Benchmarks = append(rep.Benchmarks, benchResult{
			Name:        bm.name,
			N:           r.N,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		t.Logf("%-24s %12.0f ns/op %8d allocs/op", bm.name, ns, r.AllocsPerOp())
	}

	rep.RunOverheadPct = 100 * (nsPerOp["Recording_Fig4Run_On"]/nsPerOp["Recording_Fig4Run_Off"] - 1)
	rep.XBTOverheadPct = 100 * (nsPerOp["Recording_XBT_On"]/nsPerOp["Recording_XBT_Off"] - 1)

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(recBenchJSONFile, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (recording overhead %.1f%%, xbt delta %.1f%%)",
		recBenchJSONFile, rep.RunOverheadPct, rep.XBTOverheadPct)

	if os.Getenv("D2X_BENCH_GATE") == "" {
		return
	}
	if rep.RunOverheadPct > recordingGatePct {
		t.Errorf("recording overhead %.1f%% exceeds the %d%% budget",
			rep.RunOverheadPct, recordingGatePct)
	} else {
		t.Logf("gate ok: recording overhead %.1f%% within %d%%",
			rep.RunOverheadPct, recordingGatePct)
	}
}
