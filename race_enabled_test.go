//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in. The
// race runtime allocates on paths that are allocation-free in a normal
// build, so the AllocsPerRun budgets only hold without it.
const raceEnabled = true
