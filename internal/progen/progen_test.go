package progen

import (
	"testing"
)

// TestGenerateIsDeterministic pins the (seed, index) -> Spec mapping:
// two independent generations must agree byte-for-byte, and the render
// must be a pure function of the spec.
func TestGenerateIsDeterministic(t *testing.T) {
	for i := 0; i < 12; i++ {
		a := Generate(1, i)
		b := Generate(1, i)
		aj, err := a.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		bj, _ := b.Marshal()
		if string(aj) != string(bj) {
			t.Fatalf("index %d: generation not deterministic:\n%s\nvs\n%s", i, aj, bj)
		}
		pa, err := Render(a)
		if err != nil {
			t.Fatalf("index %d: %v", i, err)
		}
		pb, _ := Render(b)
		if pa.GenSource != pb.GenSource || pa.DSLSource != pb.DSLSource {
			t.Fatalf("index %d: render not deterministic", i)
		}
	}
}

// TestSpecRoundTripsThroughJSON: the fixture wire format loses nothing.
func TestSpecRoundTripsThroughJSON(t *testing.T) {
	for i := 0; i < 8; i++ {
		s := Generate(7, i)
		data, err := s.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("index %d: %v\n%s", i, err, data)
		}
		orig, _ := Render(s)
		redone, err := Render(back)
		if err != nil {
			t.Fatalf("index %d: render of round-tripped spec: %v", i, err)
		}
		if orig.GenSource != redone.GenSource {
			t.Fatalf("index %d: round-tripped spec renders differently", i)
		}
	}
}

// TestCorpusBuildsAndRunsEquivalently is the cheap half of the
// differential property: every corpus program must link in both build
// modes and produce identical program output (the session-level oracle
// in differential.go checks the debugger views on top).
func TestCorpusBuildsAndRunsEquivalently(t *testing.T) {
	sawKind := map[string]bool{}
	for i := 0; i < 16; i++ {
		spec := Generate(2, i)
		sawKind[spec.Kind] = true
		p, err := Render(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		ref, err := p.Build(false)
		if err != nil {
			t.Fatalf("%s: reference link: %v", spec.Name(), err)
		}
		opt, err := p.Build(true)
		if err != nil {
			t.Fatalf("%s: optimised link: %v", spec.Name(), err)
		}
		refOut, _, err := ref.Run()
		if err != nil {
			t.Fatalf("%s: reference run: %v", spec.Name(), err)
		}
		optOut, _, err := opt.Run()
		if err != nil {
			t.Fatalf("%s: optimised run: %v", spec.Name(), err)
		}
		if refOut != optOut {
			t.Errorf("%s: output diverged:\nref: %q\nopt: %q\ngen:\n%s",
				spec.Name(), refOut, optOut, p.GenSource)
		}
	}
	if !sawKind[KindMinic] || !sawKind[KindGraphit] {
		t.Errorf("corpus lacks kind coverage: %v", sawKind)
	}
}
