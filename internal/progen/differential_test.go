package progen

import (
	"strings"
	"testing"
)

// TestDifferentialCleanOnSmallCorpus runs the full session-level oracle
// over a handful of programs of both kinds. The cheap output-equivalence
// half is covered for a larger corpus in progen_test.go; this is the
// expensive end-to-end property.
func TestDifferentialCleanOnSmallCorpus(t *testing.T) {
	for i := 0; i < 6; i++ {
		spec := Generate(3, i)
		p, err := Render(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		res, err := RunDifferential(p)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		if res.Stops == 0 {
			t.Errorf("%s: no stops observed", spec.Name())
		}
		for _, d := range res.Divergences {
			t.Errorf("%s: %s\nref:     %q\nsubject: %q", spec.Name(), d, d.Ref, d.Subject)
		}
	}
}

// mkTrace builds a synthetic session trace for the alignment unit tests.
func mkTrace(breakLines []int, stops ...stopInfo) *sessionTrace {
	tr := &sessionTrace{perDSL: map[int]int{}, breakLines: map[int]bool{}}
	for _, l := range breakLines {
		tr.breakLines[l] = true
	}
	tr.stops = stops
	return tr
}

func kinds(divs []Divergence) []string {
	out := make([]string, len(divs))
	for i, d := range divs {
		out[i] = d.Kind
	}
	return out
}

func TestAlignStopsAcceptsPrunedLines(t *testing.T) {
	// Reference stops on 10, 20, 10, 30; subject pruned line 20 entirely
	// (no breakpoint there), so its trace 10, 10, 30 aligns cleanly.
	ref := mkTrace([]int{10, 20, 30},
		stopInfo{genLine: 10, xbt: "a", xvars: "x"},
		stopInfo{genLine: 20, xbt: "b", xvars: "y"},
		stopInfo{genLine: 10, xbt: "a2", xvars: "x2"},
		stopInfo{genLine: 30, xbt: "c", xvars: "z"},
	)
	sub := mkTrace([]int{10, 30},
		stopInfo{genLine: 10, xbt: "a", xvars: "x"},
		stopInfo{genLine: 10, xbt: "a2", xvars: "x2"},
		stopInfo{genLine: 30, xbt: "c", xvars: "z"},
	)
	if divs := alignStops(ref, sub); len(divs) != 0 {
		t.Fatalf("expected clean alignment, got %v", kinds(divs))
	}
}

func TestAlignStopsCatchesMissedStop(t *testing.T) {
	// Subject still claims line 20 is breakable but never stops there.
	ref := mkTrace([]int{10, 20},
		stopInfo{genLine: 10}, stopInfo{genLine: 20}, stopInfo{genLine: 10},
	)
	sub := mkTrace([]int{10, 20},
		stopInfo{genLine: 10}, stopInfo{genLine: 10},
	)
	divs := alignStops(ref, sub)
	if len(divs) != 1 || divs[0].Kind != DivMissed || divs[0].GenLine != 20 {
		t.Fatalf("expected one missed-stop at 20, got %v", divs)
	}
}

func TestAlignStopsCatchesMissedTail(t *testing.T) {
	// The reference trace continues past the subject's end on a line the
	// subject can still break on.
	ref := mkTrace([]int{10, 20},
		stopInfo{genLine: 10}, stopInfo{genLine: 20},
	)
	sub := mkTrace([]int{10, 20},
		stopInfo{genLine: 10},
	)
	divs := alignStops(ref, sub)
	if len(divs) != 1 || divs[0].Kind != DivMissed {
		t.Fatalf("expected missed-stop for the tail, got %v", divs)
	}
}

func TestAlignStopsCatchesExtraStop(t *testing.T) {
	ref := mkTrace([]int{10},
		stopInfo{genLine: 10},
	)
	sub := mkTrace([]int{10, 40},
		stopInfo{genLine: 10}, stopInfo{genLine: 40},
	)
	divs := alignStops(ref, sub)
	if len(divs) != 1 || divs[0].Kind != DivExtra || divs[0].GenLine != 40 {
		t.Fatalf("expected one extra-stop at 40, got %v", divs)
	}
}

func TestAlignStopsCatchesViewMismatches(t *testing.T) {
	ref := mkTrace([]int{10},
		stopInfo{genLine: 10, xbt: "frame A", xvars: "v0 = 1"},
	)
	sub := mkTrace([]int{10},
		stopInfo{genLine: 10, xbt: "frame B", xvars: "v0 = 2"},
	)
	divs := alignStops(ref, sub)
	got := strings.Join(kinds(divs), ",")
	if got != DivBacktrace+","+DivVariables {
		t.Fatalf("expected xbt and xvars mismatches, got %v", divs)
	}
	if divs[0].Ref != "frame A" || divs[0].Subject != "frame B" {
		t.Fatalf("mismatch should carry both sides: %+v", divs[0])
	}
}

func TestAlignStopsDedupesRepeats(t *testing.T) {
	// The same missed line across many loop iterations reports once.
	ref := mkTrace([]int{10, 20},
		stopInfo{genLine: 20}, stopInfo{genLine: 10},
		stopInfo{genLine: 20}, stopInfo{genLine: 10},
	)
	sub := mkTrace([]int{10, 20},
		stopInfo{genLine: 10}, stopInfo{genLine: 10},
	)
	divs := alignStops(ref, sub)
	if len(divs) != 1 || divs[0].Kind != DivMissed {
		t.Fatalf("expected a single deduped missed-stop, got %v", divs)
	}
}

func TestCompareExpansions(t *testing.T) {
	lines := []int{1, 2}
	ref := mkTrace([]int{100, 101})
	ref.perDSL = map[int]int{1: 2, 2: 1}
	sub := mkTrace([]int{100, 102}) // 102 is not breakable in the reference
	sub.perDSL = map[int]int{1: 3, 2: 1}

	divs := compareExpansions(lines, ref, sub)
	var sawWidened, sawMinted bool
	for _, d := range divs {
		switch {
		case d.Kind == DivExpansion && d.GenLine == 0:
			sawWidened = true
		case d.Kind == DivExpansion && d.GenLine == 102:
			sawMinted = true
		}
	}
	if !sawWidened || !sawMinted {
		t.Fatalf("expected widened-expansion and minted-line findings, got %v", divs)
	}

	// Shrinking is fine.
	sub2 := mkTrace([]int{100})
	sub2.perDSL = map[int]int{1: 1, 2: 0}
	if divs := compareExpansions(lines, ref, sub2); len(divs) != 0 {
		t.Fatalf("shrinking expansions must be clean, got %v", divs)
	}
}
