package progen

import (
	"fmt"
	"math/rand"
)

// Generate produces the index-th spec of the corpus identified by seed.
// The mapping (seed, index) -> Spec is a pure function: the same pair
// always yields the same spec, on any machine, so a CI failure replays
// locally from just the two numbers.
//
// Every fourth program is a graphit-kind program compiled by the real
// GraphIt pipeline; the rest are staged minic programs whose shapes are
// biased toward what the optimiser rewrites: constant subtrees to fold,
// algebraic identities to simplify, constant branches to prune, dead
// tails to drop.
func Generate(seed int64, index int) *Spec {
	r := rand.New(rand.NewSource(seed*1_000_003 + int64(index)))
	s := &Spec{Seed: seed, Index: index}
	if index%4 == 3 {
		s.Kind = KindGraphit
		s.Graphit = genGraphit(r)
		return s
	}
	s.Kind = KindMinic
	nFuncs := 1 + r.Intn(3)
	for i := 0; i < nFuncs; i++ {
		s.Funcs = append(s.Funcs, genFunc(r, s.Funcs, i))
	}
	return s
}

// genFunc generates one function that may call any of the earlier ones.
func genFunc(r *rand.Rand, earlier []FuncSpec, index int) FuncSpec {
	f := FuncSpec{
		Name:   fmt.Sprintf("f%d", index),
		Params: 1 + r.Intn(2),
		Locals: 2 + r.Intn(3),
	}
	if r.Intn(2) == 0 {
		f.RTV = true
	}
	if r.Intn(2) == 0 {
		f.Static = 1 + r.Intn(16)
	}
	if r.Intn(3) == 0 {
		f.DeadTail = 1 + r.Intn(3)
	}
	g := &funcGen{r: r, f: &f, earlier: earlier}
	n := 2 + r.Intn(4)
	for i := 0; i < n; i++ {
		f.Body = append(f.Body, g.stmt(2))
	}
	return f
}

// funcGen holds the per-function generation state.
type funcGen struct {
	r       *rand.Rand
	f       *FuncSpec
	earlier []FuncSpec
}

// stmt generates one statement; depth bounds the nesting.
func (g *funcGen) stmt(depth int) StmtSpec {
	r := g.r
	choices := 4 // set, print, expand, call
	if depth > 0 {
		choices += 3 // if, while, for
	}
	switch c := r.Intn(choices); {
	case c == 0 && len(g.earlier) > 0:
		callee := g.earlier[r.Intn(len(g.earlier))]
		st := StmtSpec{Op: OpCall, Target: r.Intn(g.f.Locals), Callee: callee.Name}
		for i := 0; i < callee.Params; i++ {
			st.Args = append(st.Args, g.value(1))
		}
		return st
	case c <= 1:
		return StmtSpec{Op: OpSet, Target: r.Intn(g.f.Locals), Expr: g.value(3)}
	case c == 2:
		return StmtSpec{Op: OpPrint, Expr: g.value(2)}
	case c == 3:
		return StmtSpec{Op: OpExpand, Target: r.Intn(g.f.Locals), Width: 2 + r.Intn(4)}
	case c == 4:
		st := StmtSpec{Op: OpIf, Cond: g.cond(depth)}
		st.Body = g.block(depth - 1)
		if r.Intn(2) == 0 {
			st.Else = g.block(depth - 1)
		}
		return st
	case c == 5:
		return StmtSpec{Op: OpWhile, Bound: 1 + r.Intn(4), Body: g.block(depth - 1)}
	default:
		return StmtSpec{Op: OpFor, Bound: 1 + r.Intn(4), Body: g.block(depth - 1)}
	}
}

func (g *funcGen) block(depth int) []StmtSpec {
	n := 1 + g.r.Intn(3)
	out := make([]StmtSpec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.stmt(depth))
	}
	return out
}

// value generates a well-typed int expression. The distribution leans
// into optimiser fodder: literal-only subtrees (folded), x+0 / x*1 /
// x*0 identities (simplified), and plain variable arithmetic (left
// alone).
func (g *funcGen) value(depth int) *ExprSpec {
	r := g.r
	if depth <= 0 || r.Intn(3) == 0 {
		return g.leaf()
	}
	switch r.Intn(8) {
	case 0: // foldable: literal op literal
		op := []string{ExAdd, ExSub, ExMul, ExDiv, ExMod}[r.Intn(5)]
		return &ExprSpec{Op: op,
			X: &ExprSpec{Op: ExLit, Val: int64(r.Intn(20))},
			Y: &ExprSpec{Op: ExLit, Val: int64(1 + r.Intn(9))}}
	case 1: // identity: x+0, x*1, x-0, x/1
		op := []string{ExAdd, ExMul, ExSub, ExDiv}[r.Intn(4)]
		id := int64(0)
		if op == ExMul || op == ExDiv {
			id = 1
		}
		return &ExprSpec{Op: op, X: g.value(depth - 1), Y: &ExprSpec{Op: ExLit, Val: id}}
	case 2: // annihilator: x*0 (side-effect-free x only: leaf)
		return &ExprSpec{Op: ExMul, X: g.leaf(), Y: &ExprSpec{Op: ExLit, Val: 0}}
	case 3, 4: // guarded division/modulo by a nonzero literal
		op := ExDiv
		if r.Intn(2) == 0 {
			op = ExMod
		}
		return &ExprSpec{Op: op, X: g.value(depth - 1),
			Y: &ExprSpec{Op: ExLit, Val: int64(1 + r.Intn(7))}}
	default:
		op := []string{ExAdd, ExSub, ExMul}[r.Intn(3)]
		return &ExprSpec{Op: op, X: g.value(depth - 1), Y: g.value(depth - 1)}
	}
}

func (g *funcGen) leaf() *ExprSpec {
	r := g.r
	switch r.Intn(3) {
	case 0:
		return &ExprSpec{Op: ExLit, Val: int64(r.Intn(32))}
	case 1:
		return &ExprSpec{Op: ExVar, Var: r.Intn(g.f.Locals)}
	default:
		return &ExprSpec{Op: ExArg, Var: r.Intn(g.f.Params)}
	}
}

// cond generates a bool expression. A fifth of conditions compare two
// literals — statically decidable, so fold-constants turns them into
// BoolLits and prune-branches drops an arm.
func (g *funcGen) cond(depth int) *ExprSpec {
	r := g.r
	cmp := []string{ExLt, ExLe, ExGt, ExGe, ExEq, ExNe}[r.Intn(6)]
	var c *ExprSpec
	if r.Intn(5) == 0 {
		c = &ExprSpec{Op: cmp,
			X: &ExprSpec{Op: ExLit, Val: int64(r.Intn(10))},
			Y: &ExprSpec{Op: ExLit, Val: int64(r.Intn(10))}}
	} else {
		c = &ExprSpec{Op: cmp, X: g.value(1), Y: g.value(1)}
	}
	if depth > 1 && r.Intn(4) == 0 {
		join := ExAnd
		if r.Intn(2) == 0 {
			join = ExOr
		}
		return &ExprSpec{Op: join, X: c, Y: g.cond(1)}
	}
	return c
}

// genGraphit composes a graphit-kind spec from the canonical construct
// pool.
func genGraphit(r *rand.Rand) *GraphitSpec {
	graphs := []string{
		"uniform:n=32,m=128,seed=3",
		"powerlaw:n=64,m=512,seed=11",
		"uniform:n=64,m=256,seed=9",
		"powerlaw:n=48,m=300,seed=5",
	}
	return &GraphitSpec{
		Graph:    graphs[r.Intn(len(graphs))],
		Iters:    2 + r.Intn(6),
		Applies:  1 + r.Intn(2),
		Filter:   r.Intn(2) == 0,
		Push:     r.Intn(2) == 0,
		Parallel: r.Intn(2) == 0,
	}
}
