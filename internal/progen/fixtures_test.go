package progen

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFixturesReplayClean replays every committed fixture through both
// build modes and the full differential oracle. Fixtures are either
// seed specs pinning the optimiser behaviours the fuzzer exercises, or
// minimised reproducers of past divergences — in both cases a
// divergence here is a regression.
func TestFixturesReplayClean(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "fuzz")
	matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatalf("no fixtures under %s", dir)
	}
	for _, path := range matches {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := ParseSpec(data)
			if err != nil {
				t.Fatal(err)
			}
			p, err := Render(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunDifferential(p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stops == 0 {
				t.Errorf("fixture produced no stops — it no longer exercises the debugger")
			}
			for _, d := range res.Divergences {
				t.Errorf("divergence: %s\nref:     %q\nsubject: %q", d, d.Ref, d.Subject)
			}
		})
	}
}
