// Package progen is a deterministic, seeded generator of random DSL
// programs for differential testing of the D2X pipeline. A Spec is a
// small, JSON-serialisable description of a staged program; Render
// plays the DSL compiler — emitting mini-C through the d2x-c API with
// full contextual metadata (source-location stacks, erased statics,
// rtv handlers, macro-style one-to-many line expansions) — and Build
// links the result with the optimiser on or off. cmd/d2xfuzz drives
// corpora of Specs through the differential oracle; divergences are
// minimised (Minimize) and committed as fixtures under examples/fuzz.
//
// Specs serialise so that a failing program is a small reviewable JSON
// artifact that replays bit-for-bit, and so the minimiser can shrink a
// divergence by structural deletion rather than by re-generation.
package progen

import (
	"encoding/json"
	"fmt"
)

// Spec describes one generated program. Exactly one of the two kinds is
// populated: KindMinic uses Funcs, KindGraphit uses Graphit.
type Spec struct {
	Kind  string `json:"kind"`
	Seed  int64  `json:"seed"`  // provenance: the corpus seed
	Index int    `json:"index"` // provenance: position in the corpus

	Funcs   []FuncSpec   `json:"funcs,omitempty"`
	Graphit *GraphitSpec `json:"graphit,omitempty"`
}

// Spec kinds.
const (
	KindMinic   = "minic"
	KindGraphit = "graphit"
)

// FuncSpec is one staged function of a minic-kind program. Functions
// may call only lower-indexed functions (the call graph is a DAG, so
// generated programs always terminate); main calls the last function
// and prints its result.
type FuncSpec struct {
	Name   string `json:"name"`
	Params int    `json:"params"` // number of int parameters (arg0..argN-1)
	Locals int    `json:"locals"` // always-live int locals v0..vN-1; v0 is the result
	// RTV installs a runtime value handler exposing v0 through the D2X
	// tables. Handlers are deliberately restricted to top-level locals:
	// a handler reading a branch-local the optimiser may legitimately
	// prune would diverge by design, not by bug.
	RTV bool `json:"rtv,omitempty"`
	// Static, when positive, threads an erased static ("stage") through
	// the function's D2X records, updated between top-level statements —
	// the staging-time state of the paper's power example.
	Static int `json:"static,omitempty"`
	// DeadTail emits that many unreachable statements after the return —
	// food for the prune-unreachable pass.
	DeadTail int        `json:"deadTail,omitempty"`
	Body     []StmtSpec `json:"body"`
}

// Statement ops.
const (
	OpSet    = "set"    // v[Target] = Expr
	OpIf     = "if"     // if (Cond) { Body } else { Else }
	OpWhile  = "while"  // bounded counter loop around Body (Bound iterations)
	OpFor    = "for"    // C-style counted loop around Body (Bound iterations)
	OpCall   = "call"   // v[Target] = Callee(Args...)
	OpPrint  = "print"  // printf("%d\n", Expr)
	OpExpand = "expand" // macro-style: Width generated statements on ONE dsl line
)

// StmtSpec is one statement of a FuncSpec body. Fields are used
// per-op; unused fields stay zero and are omitted from JSON.
type StmtSpec struct {
	Op     string      `json:"op"`
	Target int         `json:"target,omitempty"`
	Expr   *ExprSpec   `json:"expr,omitempty"`
	Cond   *ExprSpec   `json:"cond,omitempty"`
	Bound  int         `json:"bound,omitempty"`
	Callee string      `json:"callee,omitempty"`
	Args   []*ExprSpec `json:"args,omitempty"`
	Body   []StmtSpec  `json:"body,omitempty"`
	Else   []StmtSpec  `json:"else,omitempty"`
	Width  int         `json:"width,omitempty"`
}

// Expression ops. Arithmetic ops yield int; comparisons and logical ops
// yield bool. The generator keeps trees well-typed by construction:
// conditions are comparisons (possibly conjoined), value expressions
// are arithmetic.
const (
	ExLit = "lit"
	ExVar = "var" // local v[Var]
	ExArg = "arg" // parameter arg[Var]
	ExAdd = "add"
	ExSub = "sub"
	ExMul = "mul"
	ExDiv = "div" // render guards the divisor: literal 0 becomes 1
	ExMod = "mod" // same guard
	ExLt  = "lt"
	ExLe  = "le"
	ExGt  = "gt"
	ExGe  = "ge"
	ExEq  = "eq"
	ExNe  = "ne"
	ExAnd = "and"
	ExOr  = "or"
)

// ExprSpec is one expression node.
type ExprSpec struct {
	Op  string    `json:"op"`
	Val int64     `json:"val,omitempty"`
	Var int       `json:"var,omitempty"`
	X   *ExprSpec `json:"x,omitempty"`
	Y   *ExprSpec `json:"y,omitempty"`
}

// GraphitSpec is a graphit-kind program: a PageRank-shaped computation
// composed from the canonical constructs (edge applies with labelled
// sites, a vertex step, optional filter), compiled by the real GraphIt
// pipeline and scheduled per the flags.
type GraphitSpec struct {
	Graph    string `json:"graph"` // load() spec, e.g. "uniform:n=32,m=128,seed=3"
	Iters    int    `json:"iters"` // main-loop trip count
	Applies  int    `json:"apply"` // edge-apply statements inside the loop (>=1)
	Filter   bool   `json:"filter,omitempty"`
	Push     bool   `json:"push,omitempty"`     // schedule: push (true) or pull
	Parallel bool   `json:"parallel,omitempty"` // schedule: parallel drivers
}

// Marshal renders the spec as indented JSON, the fixture wire format.
func (s *Spec) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseSpec decodes a fixture produced by Marshal.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("progen: parsing spec: %w", err)
	}
	switch s.Kind {
	case KindMinic:
		if len(s.Funcs) == 0 {
			return nil, fmt.Errorf("progen: minic spec with no functions")
		}
	case KindGraphit:
		if s.Graphit == nil {
			return nil, fmt.Errorf("progen: graphit spec with no graphit block")
		}
	default:
		return nil, fmt.Errorf("progen: unknown spec kind %q", s.Kind)
	}
	return &s, nil
}

// Name is a stable human-readable identifier for logs and fixtures.
func (s *Spec) Name() string {
	return fmt.Sprintf("%s-seed%d-%d", s.Kind, s.Seed, s.Index)
}
