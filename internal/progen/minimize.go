package progen

import "encoding/json"

// Minimize shrinks a divergent spec by structural deletion. pred reports
// whether a candidate still reproduces the divergence; candidates that
// no longer render, build, or diverge simply return false and are
// skipped. The result is 1-minimal with respect to the edit set: no
// single remaining edit keeps the divergence alive.
//
// The minimiser is greedy, largest cuts first — drop whole functions,
// then whole statements, then hoist loop/branch bodies, then clear the
// metadata flags, then shrink expressions to their subtrees — restarting
// after every accepted cut, so a late cut can re-enable an earlier one.
func Minimize(spec *Spec, pred func(*Spec) bool) *Spec {
	cur := cloneSpec(spec)
	// A spec has a bounded edit count, and every accepted edit strictly
	// shrinks it, so the loop terminates; the cap is a belt against an
	// edit that failed to shrink.
	for round := 0; round < 500; round++ {
		improved := false
		for _, cand := range variants(cur) {
			if pred(cand) {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

func cloneSpec(s *Spec) *Spec {
	data, err := json.Marshal(s)
	if err != nil {
		panic("progen: spec not serialisable: " + err.Error())
	}
	var out Spec
	if err := json.Unmarshal(data, &out); err != nil {
		panic("progen: spec not round-trippable: " + err.Error())
	}
	return &out
}

// variants enumerates the one-edit reductions of s, largest first. Each
// returned spec is an independent clone.
func variants(s *Spec) []*Spec {
	if s.Kind == KindGraphit {
		return graphitVariants(s)
	}
	var out []*Spec
	// Drop a whole function. Calls into the dropped function stop
	// compiling; pred filters those out.
	if len(s.Funcs) > 1 {
		for i := range s.Funcs {
			c := cloneSpec(s)
			c.Funcs = append(c.Funcs[:i], c.Funcs[i+1:]...)
			out = append(out, c)
		}
	}
	// Delete a statement / hoist a body, anywhere in any function.
	for fi := range s.Funcs {
		for _, edit := range blockEdits(s.Funcs[fi].Body, nil) {
			c := cloneSpec(s)
			c.Funcs[fi].Body = applyBlockEdit(c.Funcs[fi].Body, edit)
			if len(c.Funcs[fi].Body) == 0 {
				continue // a function must keep at least one statement
			}
			out = append(out, c)
		}
	}
	// Clear per-function metadata knobs.
	for fi := range s.Funcs {
		f := &s.Funcs[fi]
		for _, clr := range []struct {
			on    bool
			apply func(*FuncSpec)
		}{
			{f.DeadTail > 0, func(g *FuncSpec) { g.DeadTail = 0 }},
			{f.RTV, func(g *FuncSpec) { g.RTV = false }},
			{f.Static > 0, func(g *FuncSpec) { g.Static = 0 }},
		} {
			if !clr.on {
				continue
			}
			c := cloneSpec(s)
			clr.apply(&c.Funcs[fi])
			out = append(out, c)
		}
	}
	// Shrink one expression to a subtree or a literal.
	nExpr := countExprs(s)
	for k := 0; k < nExpr; k++ {
		for _, mode := range []int{exprToX, exprToY, exprToLit} {
			c := cloneSpec(s)
			if editExpr(c, k, mode) {
				out = append(out, c)
			}
		}
	}
	return out
}

// blockEdit addresses one edit inside a statement block: path indexes
// into nested Body/Else slices, and the final op is delete or hoist.
type blockEdit struct {
	path  []int // statement indices, outermost first
	hoist bool  // replace the statement with its Body (+Else); else delete
}

// blockEdits enumerates the edits available in a block (recursively).
func blockEdits(block []StmtSpec, prefix []int) []blockEdit {
	var out []blockEdit
	for i := range block {
		path := append(append([]int{}, prefix...), i)
		out = append(out, blockEdit{path: path})
		st := &block[i]
		if len(st.Body) > 0 {
			// Hoist covers Else too; statements inside an Else become
			// directly editable once a hoist lands them in the parent.
			out = append(out, blockEdit{path: path, hoist: true})
			out = append(out, blockEdits(st.Body, path)...)
		}
	}
	return out
}

// applyBlockEdit performs one edit on a (cloned) block and returns the
// new block.
func applyBlockEdit(block []StmtSpec, e blockEdit) []StmtSpec {
	i := e.path[0]
	if len(e.path) > 1 {
		block[i].Body = applyBlockEdit(block[i].Body, blockEdit{path: e.path[1:], hoist: e.hoist})
		return block
	}
	if e.hoist {
		repl := append(append([]StmtSpec{}, block[i].Body...), block[i].Else...)
		return append(block[:i], append(repl, block[i+1:]...)...)
	}
	return append(block[:i], block[i+1:]...)
}

// Expression edit modes.
const (
	exprToX = iota
	exprToY
	exprToLit
)

// countExprs numbers every expression node in the spec, in a fixed
// traversal order shared with editExpr.
func countExprs(s *Spec) int {
	n := 0
	walkSpecExprs(s, func(slot **ExprSpec) bool { n++; return true })
	return n
}

// editExpr applies mode to the k-th expression node. Returns false when
// the edit is a no-op (leaf node asked for a subtree, or already a small
// literal).
func editExpr(s *Spec, k, mode int) bool {
	idx, changed := 0, false
	walkSpecExprs(s, func(slot **ExprSpec) bool {
		if idx != k {
			idx++
			return true
		}
		idx++
		e := *slot
		switch mode {
		case exprToX:
			if e.X != nil {
				*slot = e.X
				changed = true
			}
		case exprToY:
			if e.Y != nil {
				*slot = e.Y
				changed = true
			}
		case exprToLit:
			if e.Op != ExLit || e.Val > 1 {
				*slot = &ExprSpec{Op: ExLit, Val: 1}
				changed = true
			}
		}
		return false
	})
	return changed
}

// walkSpecExprs visits every expression slot in the spec, pre-order.
// The visitor returns false to stop the walk.
func walkSpecExprs(s *Spec, visit func(**ExprSpec) bool) {
	var walkExpr func(**ExprSpec) bool
	walkExpr = func(slot **ExprSpec) bool {
		if *slot == nil {
			return true
		}
		if !visit(slot) {
			return false
		}
		if !walkExpr(&(*slot).X) {
			return false
		}
		return walkExpr(&(*slot).Y)
	}
	var walkBlock func([]StmtSpec) bool
	walkBlock = func(block []StmtSpec) bool {
		for i := range block {
			st := &block[i]
			if !walkExpr(&st.Expr) || !walkExpr(&st.Cond) {
				return false
			}
			for j := range st.Args {
				if !walkExpr(&st.Args[j]) {
					return false
				}
			}
			if !walkBlock(st.Body) || !walkBlock(st.Else) {
				return false
			}
		}
		return true
	}
	for fi := range s.Funcs {
		if !walkBlock(s.Funcs[fi].Body) {
			return
		}
	}
}

// graphitVariants reduces a graphit-kind spec along its handful of axes.
func graphitVariants(s *Spec) []*Spec {
	g := s.Graphit
	var out []*Spec
	add := func(apply func(*GraphitSpec)) {
		c := cloneSpec(s)
		apply(c.Graphit)
		out = append(out, c)
	}
	if g.Applies > 1 {
		add(func(g *GraphitSpec) { g.Applies-- })
	}
	if g.Iters > 1 {
		add(func(g *GraphitSpec) { g.Iters = 1 })
	}
	if g.Filter {
		add(func(g *GraphitSpec) { g.Filter = false })
	}
	if g.Parallel {
		add(func(g *GraphitSpec) { g.Parallel = false })
	}
	if g.Push {
		add(func(g *GraphitSpec) { g.Push = false })
	}
	if g.Graph != "uniform:n=32,m=128,seed=3" {
		add(func(g *GraphitSpec) { g.Graph = "uniform:n=32,m=128,seed=3" })
	}
	return out
}
