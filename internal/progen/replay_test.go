package progen

import "testing"

// TestReplayByteIdenticalCorpus runs the time-travel oracle over a
// 50-program generated corpus: for every program, a recorded session's
// replay to each chosen mark must regenerate the forward transcripts
// byte for byte. This is the breadth test behind the journal's
// determinism claim; the depth tests (exact cadence boundaries, chunk
// recycling, mutations) live in internal/minic/journal.
func TestReplayByteIdenticalCorpus(t *testing.T) {
	const programs = 50
	for i := 0; i < programs; i++ {
		spec := Generate(1, i)
		p, err := Render(spec)
		if err != nil {
			t.Fatalf("program %d (%s): render: %v", i, spec.Name(), err)
		}
		b, err := p.Build(false)
		if err != nil {
			t.Fatalf("program %d (%s): build: %v", i, spec.Name(), err)
		}
		if err := CheckReplay(b, 20); err != nil {
			t.Errorf("program %d (%s): %v", i, spec.Name(), err)
		}
	}
}
