package progen

import (
	"bytes"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"d2x/internal/d2x"
	"d2x/internal/d2x/d2xc"
)

// Divergence kinds, ordered roughly by how early in the oracle they are
// detected.
const (
	DivBuild     = "build"            // optimised build failed where reference linked
	DivOutput    = "run-output"       // program output differs between build modes
	DivExpansion = "xbreak-expansion" // optimised xbreak covers lines the reference doesn't
	DivMissed    = "missed-stop"      // reference stopped on a line the subject still claims to break on
	DivExtra     = "extra-stop"       // subject stopped where the reference never did
	DivBacktrace = "xbt"              // xbt text differs at an aligned stop
	DivVariables = "xvars"            // xvars text differs at an aligned stop
)

// Divergence is one observed disagreement between the reference
// (unoptimised) and subject (optimised) builds of the same program.
type Divergence struct {
	Kind    string
	GenLine int    // generated-code line of the stop, when applicable
	Detail  string // human-readable description
	Ref     string // reference-side text, when applicable
	Subject string // subject-side text, when applicable
}

func (d Divergence) String() string {
	s := d.Kind
	if d.GenLine > 0 {
		s += fmt.Sprintf(" @gen:%d", d.GenLine)
	}
	if d.Detail != "" {
		s += ": " + d.Detail
	}
	return s
}

// DiffResult is the outcome of one differential run.
type DiffResult struct {
	Spec        *Spec
	Divergences []Divergence
	Stops       int // stops observed in the reference trace
	DSLLines    int // distinct breakable DSL lines exercised via xbreak
}

// Clean reports whether the two build modes were debugger-equivalent.
func (r *DiffResult) Clean() bool { return len(r.Divergences) == 0 }

// stopInfo is one breakpoint halt in a session trace: where it stopped
// and what the contextual debugger showed there.
type stopInfo struct {
	genLine int
	xbt     string
	xvars   string
}

// sessionTrace is everything the oracle observes from one scripted
// session against one build.
type sessionTrace struct {
	perDSL     map[int]int  // dsl line -> breakpoints xbreak inserted there
	breakLines map[int]bool // gen lines carrying an installed breakpoint
	stops      []stopInfo
}

// maxStops bounds one trace so a semantics-breaking optimisation that
// turns a bounded loop unbounded fails fast instead of hanging the run.
// The cap is sized to the corpus' worst case — a graphit program stops
// a few times per edge per iteration (~22k stops for the largest graph
// and trip count) — with headroom, while still catching runaways.
const maxStops = 60000

// RunDifferential builds the program with the optimiser off (reference)
// and on (subject) and checks that a debugging session cannot tell the
// two apart, per the alignment rules:
//
//   - program output must be identical;
//   - every DSL line's xbreak expansion in the subject must be a subset
//     of the reference's (the optimiser may only remove stop points, and
//     only by removing the statements themselves);
//   - the subject's stop trace must be an in-order subsequence of the
//     reference's, where a reference-only stop is excused only if its
//     generated line has no breakpoint in the subject (the statement was
//     pruned, and xbreak knows it);
//   - at every aligned stop, xbt and xvars must print byte-identical
//     text.
//
// Divergences are observations, not errors; the error return is for the
// harness itself failing (e.g. the reference build misbehaving, which
// would be a generator bug rather than an optimiser bug).
func RunDifferential(p *Program) (*DiffResult, error) {
	res := &DiffResult{Spec: p.Spec}

	ref, err := p.Build(false)
	if err != nil {
		return nil, fmt.Errorf("progen: reference link of %s: %w", p.Spec.Name(), err)
	}
	sub, err := p.Build(true)
	if err != nil {
		res.Divergences = append(res.Divergences, Divergence{
			Kind: DivBuild, Detail: fmt.Sprintf("optimised link failed: %v", err),
		})
		return res, nil
	}

	refOut, _, err := ref.Run()
	if err != nil {
		return nil, fmt.Errorf("progen: reference run of %s: %w", p.Spec.Name(), err)
	}
	subOut, _, err := sub.Run()
	if err != nil {
		res.Divergences = append(res.Divergences, Divergence{
			Kind: DivOutput, Detail: fmt.Sprintf("optimised run failed: %v", err), Ref: refOut,
		})
		return res, nil
	}
	if refOut != subOut {
		res.Divergences = append(res.Divergences, Divergence{
			Kind: DivOutput, Detail: "program output differs", Ref: refOut, Subject: subOut,
		})
	}

	lines := dslStmtLines(p.context(), p.DSLFile)
	res.DSLLines = len(lines)

	refTrace, err := captureTrace(ref, p.DSLFile, lines)
	if err != nil {
		return nil, fmt.Errorf("progen: reference session of %s: %w", p.Spec.Name(), err)
	}
	res.Stops = len(refTrace.stops)
	subTrace, err := captureTrace(sub, p.DSLFile, lines)
	if err != nil {
		// The subject's session misbehaving IS an optimiser-visible
		// divergence: the same script ran clean on the reference.
		res.Divergences = append(res.Divergences, Divergence{
			Kind: DivExtra, Detail: fmt.Sprintf("optimised session failed: %v", err),
		})
		return res, nil
	}

	res.Divergences = append(res.Divergences, compareExpansions(lines, refTrace, subTrace)...)
	res.Divergences = append(res.Divergences, alignStops(refTrace, subTrace)...)
	return res, nil
}

// context returns the D2X compile-time context of the rendered program,
// whichever pipeline produced it.
func (p *Program) context() *d2xc.Context {
	if p.art != nil {
		return p.art.Ctx
	}
	return p.ctx
}

// dslStmtLines collects the distinct DSL source lines the context's
// records attribute generated code to — the lines a user could plausibly
// xbreak on — in ascending order.
func dslStmtLines(ctx *d2xc.Context, dslFile string) []int {
	seen := map[int]bool{}
	for _, rec := range ctx.Records() {
		if len(rec.Stack) > 0 && rec.Stack[0].File == dslFile && rec.Stack[0].Line > 0 {
			seen[rec.Stack[0].Line] = true
		}
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

var (
	reInserting = regexp.MustCompile(`Inserting (\d+) breakpoints with ID`)
	reStopLine  = regexp.MustCompile(`(?m)^Breakpoint \d+, .* at .*:(\d+)$`)
	reBPSite    = regexp.MustCompile(` at [^:;]+:(\d+)`)
)

// captureTrace runs the oracle's fixed session script against one build:
// bootstrap at main, install an xbreak on every DSL statement line, drop
// the bootstrap breakpoint, then continue to completion recording the
// xbt and xvars view at every stop.
func captureTrace(b *d2x.Build, dslFile string, dslLines []int) (*sessionTrace, error) {
	var buf bytes.Buffer
	d, err := b.NewSession(&buf)
	if err != nil {
		return nil, err
	}
	defer d.Close()

	// Drain the transcript per command: a slice from a persistent mark
	// would copy the whole (growing) buffer on every command, which is
	// quadratic over the thousands of stops a graphit trace produces.
	exec := func(cmd string) (string, error) {
		buf.Reset()
		err := d.Execute(cmd)
		return buf.String(), err
	}

	if _, err := exec("break main"); err != nil {
		return nil, fmt.Errorf("break main: %w", err)
	}
	if out, err := exec("run"); err != nil {
		return nil, fmt.Errorf("run: %w", err)
	} else if !strings.Contains(out, "Breakpoint 1,") {
		return nil, fmt.Errorf("run did not stop at main:\n%s", out)
	}

	tr := &sessionTrace{perDSL: map[int]int{}, breakLines: map[int]bool{}}
	for _, line := range dslLines {
		out, err := exec(fmt.Sprintf("xbreak %s:%d", dslFile, line))
		if err != nil {
			return nil, fmt.Errorf("xbreak %s:%d: %w", dslFile, line, err)
		}
		if m := reInserting.FindStringSubmatch(out); m != nil {
			tr.perDSL[line], _ = strconv.Atoi(m[1])
		} else {
			tr.perDSL[line] = 0
		}
	}

	// Read back where the xbreaks actually landed in the generated code.
	// Breakpoint 1 is the bootstrap at main; everything else is D2X's.
	out, err := exec("info breakpoints")
	if err != nil {
		return nil, fmt.Errorf("info breakpoints: %w", err)
	}
	for _, row := range strings.Split(out, "\n") {
		fields := strings.Fields(row)
		if len(fields) < 4 || fields[0] == "Num" || fields[0] == "1" {
			continue
		}
		for _, m := range reBPSite.FindAllStringSubmatch(row, -1) {
			gl, _ := strconv.Atoi(m[1])
			tr.breakLines[gl] = true
		}
	}
	if _, err := exec("delete 1"); err != nil {
		return nil, fmt.Errorf("delete 1: %w", err)
	}

	for {
		out, err := exec("continue")
		if err != nil {
			return nil, fmt.Errorf("continue: %w", err)
		}
		if strings.Contains(out, "[Program exited]") {
			return tr, nil
		}
		m := reStopLine.FindStringSubmatch(out)
		if m == nil {
			return nil, fmt.Errorf("continue stopped without a breakpoint banner:\n%s", out)
		}
		genLine, _ := strconv.Atoi(m[1])
		xbt, err := exec("xbt")
		if err != nil {
			return nil, fmt.Errorf("xbt at gen:%d: %w", genLine, err)
		}
		xvars, err := exec("xvars")
		if err != nil {
			return nil, fmt.Errorf("xvars at gen:%d: %w", genLine, err)
		}
		tr.stops = append(tr.stops, stopInfo{genLine: genLine, xbt: xbt, xvars: xvars})
		if len(tr.stops) > maxStops {
			return nil, fmt.Errorf("stop cap exceeded (%d stops)", maxStops)
		}
	}
}

// compareExpansions enforces the subset rule: per DSL line the subject
// may insert at most as many breakpoints as the reference, and every
// generated line the subject breaks on must be one the reference breaks
// on too. The optimiser may delete stop points; it must not mint them.
func compareExpansions(lines []int, ref, sub *sessionTrace) []Divergence {
	var out []Divergence
	for _, l := range lines {
		if sub.perDSL[l] > ref.perDSL[l] {
			out = append(out, Divergence{
				Kind:   DivExpansion,
				Detail: fmt.Sprintf("dsl line %d: subject expands to %d breakpoints, reference to %d", l, sub.perDSL[l], ref.perDSL[l]),
			})
		}
	}
	for gl := range sub.breakLines {
		if !ref.breakLines[gl] {
			out = append(out, Divergence{
				Kind: DivExpansion, GenLine: gl,
				Detail: "subject placed a breakpoint on a generated line the reference has no statement on",
			})
		}
	}
	return out
}

// alignStops checks the subject's stop trace is an in-order subsequence
// of the reference's, with byte-identical contextual views at aligned
// stops. A reference stop with no subject counterpart is legitimate only
// when the subject no longer claims that generated line is breakable —
// i.e. the statement was pruned and the line table says so.
func alignStops(ref, sub *sessionTrace) []Divergence {
	var out []Divergence
	i := 0
	for j := 0; j < len(sub.stops); j++ {
		s := sub.stops[j]
		matched := false
		for i < len(ref.stops) {
			r := ref.stops[i]
			if r.genLine == s.genLine {
				i++
				matched = true
				if r.xbt != s.xbt {
					out = append(out, Divergence{
						Kind: DivBacktrace, GenLine: s.genLine,
						Detail: "xbt differs at aligned stop",
						Ref:    r.xbt, Subject: s.xbt,
					})
				}
				if r.xvars != s.xvars {
					out = append(out, Divergence{
						Kind: DivVariables, GenLine: s.genLine,
						Detail: "xvars differs at aligned stop",
						Ref:    r.xvars, Subject: s.xvars,
					})
				}
				break
			}
			// Reference-only stop: fine iff the subject pruned the line.
			if sub.breakLines[r.genLine] {
				out = append(out, Divergence{
					Kind: DivMissed, GenLine: r.genLine,
					Detail: "reference stopped here; subject has a breakpoint on this line but skipped it",
				})
			}
			i++
		}
		if !matched {
			out = append(out, Divergence{
				Kind: DivExtra, GenLine: s.genLine,
				Detail: "subject stopped where the reference trace has no remaining stop",
			})
			// Past the reference's trace end every further subject stop is
			// equally unexplained; one finding per line is enough.
			break
		}
	}
	for ; i < len(ref.stops); i++ {
		if sub.breakLines[ref.stops[i].genLine] {
			out = append(out, Divergence{
				Kind: DivMissed, GenLine: ref.stops[i].genLine,
				Detail: "reference trace continues past the subject's last stop on a line the subject can still break on",
			})
		}
	}
	return dedupeDivergences(out)
}

// dedupeDivergences collapses repeated findings (e.g. the same missed
// line on every loop iteration) to one per (kind, line, detail).
func dedupeDivergences(in []Divergence) []Divergence {
	seen := map[string]bool{}
	out := in[:0]
	for _, d := range in {
		k := fmt.Sprintf("%s|%d|%s", d.Kind, d.GenLine, d.Detail)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, d)
	}
	return out
}
