package progen

import (
	"bytes"
	"fmt"
	"strings"

	"d2x/internal/d2x"
)

// CheckReplay is the time-travel differential oracle: it drives one
// recorded debug session forward, capturing the full transcript at every
// stop, then rewinds to several recorded marks with `record goto` and
// re-drives the identical command tail. Deterministic replay means the
// re-driven transcripts — stop banners, program output interleaved by
// `next`, stack traces, extended backtraces — must be byte-identical to
// the forward leg; any drift (scheduler nondeterminism, a snapshot
// missing state, frame IDs not restored) surfaces as a diff.
//
// The per-stop script is read-only on the debuggee (`next`, `bt`, and
// `xbt` on D2X builds): debugger-side mutations like `set var` or
// writing rtv handlers are deliberately out of scope, since those are
// not part of the instruction history (the debugger forces a journal
// checkpoint for `set var` instead; see internal/minic/journal).
func CheckReplay(b *d2x.Build, maxSteps int) error {
	var buf bytes.Buffer
	d, err := b.NewSession(&buf)
	if err != nil {
		return err
	}
	defer d.Close()

	// Commands that error produce no transcript; fold the error text in
	// so both legs must fail identically too.
	exec := func(cmd string) string {
		buf.Reset()
		if err := d.Execute(cmd); err != nil {
			return "command error: " + err.Error() + "\n"
		}
		return buf.String()
	}
	stopScript := func() string {
		t := exec("next")
		t += exec("bt")
		if b.Runtime != nil {
			t += exec("xbt")
		}
		return t
	}

	if out := exec("break main"); !strings.Contains(out, "Breakpoint 1") {
		return fmt.Errorf("break main: %s", out)
	}
	if out := exec("run"); !strings.Contains(out, "Breakpoint 1,") {
		return fmt.Errorf("run did not stop at main:\n%s", out)
	}
	if err := d.Execute("record"); err != nil {
		return fmt.Errorf("record: %w", err)
	}
	rec := d.ActiveRecorder()
	if rec == nil {
		return fmt.Errorf("record left no active recorder")
	}

	var (
		marks   []int64  // recorded position at each stop, pre-command
		forward []string // transcript of the per-stop script there
	)
	for len(forward) < maxSteps {
		marks = append(marks, rec.Step())
		t := stopScript()
		forward = append(forward, t)
		if strings.Contains(t, "[Program exited]") {
			break
		}
	}

	// Rewind to the start, the middle and the last stop; each replay
	// must regenerate the forward transcripts exactly.
	for _, i := range []int{0, len(marks) / 2, len(marks) - 1} {
		if err := d.Execute(fmt.Sprintf("record goto %d", marks[i])); err != nil {
			return fmt.Errorf("record goto %d: %w", marks[i], err)
		}
		for k := i; k < len(forward); k++ {
			if t := stopScript(); t != forward[k] {
				return fmt.Errorf("replay from mark %d diverged at stop %d\n--- forward ---\n%s--- replay ---\n%s",
					marks[i], k, forward[k], t)
			}
		}
	}
	return nil
}
