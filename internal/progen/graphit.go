package progen

import (
	"fmt"
	"strings"

	"d2x/internal/graphit"
)

// renderGraphit composes a .gt program and schedule from the spec and
// compiles them through the real GraphIt pipeline with D2X enabled. The
// shapes are assembled from the canonical constructs of the example
// programs — edge applies with labelled sites, a rank-update vertex
// step, an optional filter — parameterised by the spec.
func renderGraphit(spec *Spec) (*Program, error) {
	g := spec.Graphit
	if g == nil {
		return nil, fmt.Errorf("progen: graphit spec %s has no graphit block", spec.Name())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "element Vertex end\n")
	fmt.Fprintf(&b, "element Edge end\n")
	fmt.Fprintf(&b, "const edges : edgeset{Edge}(Vertex, Vertex) = load(%q)\n", g.Graph)
	fmt.Fprintf(&b, "const rank : vector{Vertex}(float) = 1.0 / num_vertices\n")
	fmt.Fprintf(&b, "const nrank : vector{Vertex}(float) = 0.0\n")
	fmt.Fprintf(&b, "const damp : float = 0.85\n")
	fmt.Fprintf(&b, "\n")
	for i := 0; i < g.Applies; i++ {
		fmt.Fprintf(&b, "func update%d(src: Vertex, dst: Vertex)\n", i)
		if i%2 == 0 {
			fmt.Fprintf(&b, "\tnrank[dst] += rank[src] / out_degree[src]\n")
		} else {
			fmt.Fprintf(&b, "\tnrank[dst] += rank[src]\n")
		}
		fmt.Fprintf(&b, "end\n\n")
	}
	fmt.Fprintf(&b, "func vstep(v: Vertex)\n")
	fmt.Fprintf(&b, "\trank[v] = 0.15 + damp * nrank[v]\n")
	fmt.Fprintf(&b, "\tnrank[v] = 0.0\n")
	fmt.Fprintf(&b, "end\n\n")
	if g.Filter {
		fmt.Fprintf(&b, "func hot(v: Vertex) -> output: bool\n")
		fmt.Fprintf(&b, "\toutput = rank[v] > 0.1\n")
		fmt.Fprintf(&b, "end\n\n")
	}
	fmt.Fprintf(&b, "func main()\n")
	fmt.Fprintf(&b, "\tfor i in 0:%d\n", g.Iters)
	for i := 0; i < g.Applies; i++ {
		fmt.Fprintf(&b, "\t\t#s%d# edges.apply(update%d)\n", i+1, i)
	}
	fmt.Fprintf(&b, "\t\tvertices.apply(vstep)\n")
	fmt.Fprintf(&b, "\tend\n")
	if g.Filter {
		fmt.Fprintf(&b, "\tvar hotset : vertexset{Vertex} = vertices.filter(hot)\n")
		fmt.Fprintf(&b, "\tprint hotset.size()\n")
	}
	fmt.Fprintf(&b, "\tprint rank[0]\n")
	fmt.Fprintf(&b, "end\n")

	dir := "pull"
	if g.Push {
		dir = "push"
	}
	var sched strings.Builder
	for i := 0; i < g.Applies; i++ {
		fmt.Fprintf(&sched, "s%d: direction=%s, parallel=%v\n", i+1, dir, g.Parallel)
	}

	art, err := graphit.CompileToC("fuzz.gt", b.String(), "fuzz.sched", sched.String(),
		graphit.CompileOptions{D2X: true})
	if err != nil {
		return nil, fmt.Errorf("progen: graphit compile of %s: %w", spec.Name(), err)
	}
	return &Program{
		Spec:      spec,
		DSLFile:   "fuzz.gt",
		DSLSource: art.GTSource,
		GenFile:   "fuzz.c",
		GenSource: art.Source,
		art:       art,
	}, nil
}
