package progen

import (
	"fmt"
	"strings"

	"d2x/internal/d2x"
	"d2x/internal/d2x/d2xc"
	"d2x/internal/graphit"
)

// Program is a rendered spec, ready to link in either build mode. The
// render itself is deterministic: the same spec always produces the
// same DSL text, generated code, and D2X context.
type Program struct {
	Spec      *Spec
	DSLFile   string // the first-stage source file name (fuzz.dsl / fuzz.gt)
	DSLSource string
	GenFile   string // the generated-code file name
	GenSource string // generated mini-C, before the D2X tables are appended

	ctx *d2xc.Context     // minic kind: the context the render produced
	art *graphit.Artifact // graphit kind: the compiled artifact
}

// Render plays the DSL compiler for the spec: it emits the generated
// program through the d2x-c API, recording per-line source-location
// stacks, erased statics, and rtv handlers exactly as the case-study
// pipelines do.
func Render(spec *Spec) (*Program, error) {
	switch spec.Kind {
	case KindMinic:
		return renderMinic(spec)
	case KindGraphit:
		return renderGraphit(spec)
	}
	return nil, fmt.Errorf("progen: unknown spec kind %q", spec.Kind)
}

// Build links the rendered program. optimize selects the build mode the
// differential oracle compares: the same artifact through
// minic.Optimize or straight to the compiler. Build may be called any
// number of times; each call produces an independent d2x.Build.
func (p *Program) Build(optimize bool) (*d2x.Build, error) {
	if p.art != nil {
		return p.art.LinkOptimizing(optimize)
	}
	dslFile, dslSource := p.DSLFile, p.DSLSource
	return d2x.Link(p.GenFile, p.GenSource, p.ctx, d2x.LinkOptions{
		Optimize: optimize,
		FileResolver: func(path string) (string, error) {
			if path == dslFile {
				return dslSource, nil
			}
			return "", fmt.Errorf("no file %s", path)
		},
	})
}

// ---- minic kind ----

// renderer carries the state of one minic-kind render.
type renderer struct {
	e        *d2xc.Emitter
	ctx      *d2xc.Context
	dsl      []string // DSL source lines, 1-based via len()
	hostLine int      // outer "staging host" frame line for the current function
	hostFn   string
	counters int // unique loop-counter / scratch suffix
	fn       *FuncSpec
}

// dslLine appends one line of DSL pseudo-source and returns its 1-based
// line number.
func (r *renderer) dslLine(indent int, format string, args ...any) int {
	r.dsl = append(r.dsl, strings.Repeat("  ", indent)+fmt.Sprintf(format, args...))
	return len(r.dsl)
}

// loc attributes the next generated line to a DSL line: the innermost
// frame is the DSL statement, the outer frame the staging host that
// invoked the DSL function — the two-deep extended stack of the paper's
// BuildIt examples.
func (r *renderer) loc(dslLine int) {
	r.ctx.PushSourceLoc("fuzz.dsl", dslLine, r.fn.Name)
	r.ctx.PushSourceLoc("staging.go", r.hostLine, r.hostFn)
}

func renderMinic(spec *Spec) (*Program, error) {
	ctx := d2xc.NewContext()
	r := &renderer{e: d2xc.NewEmitter(ctx), ctx: ctx}
	for i := range spec.Funcs {
		if err := r.emitFunc(&spec.Funcs[i], i); err != nil {
			return nil, fmt.Errorf("progen: rendering %s of %s: %w", spec.Funcs[i].Name, spec.Name(), err)
		}
	}
	r.emitMain(spec)
	return &Program{
		Spec:      spec,
		DSLFile:   "fuzz.dsl",
		DSLSource: strings.Join(r.dsl, "\n") + "\n",
		GenFile:   "fuzz_gen.c",
		GenSource: r.e.String(),
		ctx:       ctx,
	}, nil
}

func (r *renderer) emitFunc(f *FuncSpec, index int) error {
	r.fn = f
	r.hostLine = 100 + index
	r.hostFn = "stage_" + f.Name

	params := make([]string, f.Params)
	dslParams := make([]string, f.Params)
	for i := range params {
		params[i] = fmt.Sprintf("int arg%d", i)
		dslParams[i] = fmt.Sprintf("arg%d", i)
	}
	r.dslLine(0, "func %s(%s)", f.Name, strings.Join(dslParams, ", "))
	r.e.Emitln("func int %s(%s) {", f.Name, strings.Join(params, ", "))
	if err := r.e.BeginSection(); err != nil {
		return err
	}
	r.ctx.PushScope()
	if f.Static > 0 {
		r.ctx.CreateVar("stage")
		if err := r.ctx.UpdateVar("stage", fmt.Sprint(f.Static)); err != nil {
			return err
		}
	}
	if f.RTV {
		r.ctx.CreateVar("v0_view")
		if err := r.ctx.UpdateVarHandler("v0_view", d2xc.RTVHandler{
			FuncName: "__d2x_rtv_" + f.Name,
		}); err != nil {
			return err
		}
	}
	r.e.Indent()
	for i := 0; i < f.Locals; i++ {
		line := r.dslLine(1, "v%d = %d", i, i)
		r.loc(line)
		r.e.Emitln("int v%d = %d;", i, i)
	}
	for i := range f.Body {
		// Thread the erased static through the records, the way a staged
		// loop updates its staging-time state between emitted statements.
		if f.Static > 0 && i > 0 {
			if err := r.ctx.UpdateVar("stage", fmt.Sprint(f.Static-i)); err != nil {
				return err
			}
		}
		r.emitStmt(&f.Body[i], 1)
	}
	line := r.dslLine(1, "return v0")
	r.loc(line)
	r.e.Emitln("return v0;")
	for i := 0; i < f.DeadTail; i++ {
		// Unreachable statements after the return: the DSL "emitted" them,
		// prune-unreachable drops them in the optimised build.
		line := r.dslLine(1, "dead v%d", i)
		r.loc(line)
		r.e.Emitln("int dz%d = %d + %d;", i, i, i+1)
	}
	r.e.Dedent()
	if err := r.ctx.PopScope(); err != nil {
		return err
	}
	if err := r.e.EndSection(); err != nil {
		return err
	}
	r.e.Emitln("}")

	if f.RTV {
		// The runtime value handler: generated code that runs only at
		// debug time, reaching the paused frame through the D2X runtime.
		r.e.Emitln("func string __d2x_rtv_%s(string key) {", f.Name)
		r.e.Emitln("\tint* addr = d2x_find_stack_var(\"v0\");")
		r.e.Emitln("\treturn \"v0=\" + to_str(*addr);")
		r.e.Emitln("}")
	}
	return nil
}

// emitStmt renders one statement spec at the given DSL indent level.
// The generated code's nesting tracks the emitter's Indent.
func (r *renderer) emitStmt(st *StmtSpec, indent int) {
	switch st.Op {
	case OpSet:
		line := r.dslLine(indent, "v%d = %s", st.Target, dslExpr(st.Expr))
		r.loc(line)
		r.e.Emitln("v%d = %s;", st.Target, genExpr(st.Expr))
	case OpPrint:
		line := r.dslLine(indent, "print %s", dslExpr(st.Expr))
		r.loc(line)
		r.e.Emitln("printf(\"%%d\\n\", %s);", genExpr(st.Expr))
	case OpExpand:
		// Macro-heavy shape: one DSL line expanding to Width generated
		// statements, every one attributed to the same DSL location.
		line := r.dslLine(indent, "v%d = expand(%d)", st.Target, st.Width)
		for j := 0; j < st.Width; j++ {
			r.loc(line)
			r.e.Emitln("v%d = v%d + %d;", st.Target, st.Target, j+1)
		}
	case OpCall:
		args := make([]string, len(st.Args))
		dargs := make([]string, len(st.Args))
		for i, a := range st.Args {
			args[i] = genExpr(a)
			dargs[i] = dslExpr(a)
		}
		line := r.dslLine(indent, "v%d = %s(%s)", st.Target, st.Callee, strings.Join(dargs, ", "))
		r.loc(line)
		r.e.Emitln("v%d = %s(%s);", st.Target, st.Callee, strings.Join(args, ", "))
	case OpIf:
		line := r.dslLine(indent, "if %s", dslExpr(st.Cond))
		r.loc(line)
		r.e.Emitln("if (%s) {", genExpr(st.Cond))
		r.e.Indent()
		for i := range st.Body {
			r.emitStmt(&st.Body[i], indent+1)
		}
		r.e.Dedent()
		if len(st.Else) > 0 {
			r.dslLine(indent, "else")
			r.e.Emitln("} else {")
			r.e.Indent()
			for i := range st.Else {
				r.emitStmt(&st.Else[i], indent+1)
			}
			r.e.Dedent()
		}
		r.e.Emitln("}")
	case OpWhile:
		c := r.counters
		r.counters++
		line := r.dslLine(indent, "loop %d times", st.Bound)
		r.loc(line)
		r.e.Emitln("int w%d = 0;", c)
		r.loc(line)
		r.e.Emitln("while (w%d < %d) {", c, st.Bound)
		r.e.Indent()
		for i := range st.Body {
			r.emitStmt(&st.Body[i], indent+1)
		}
		r.loc(line)
		r.e.Emitln("w%d = w%d + 1;", c, c)
		r.e.Dedent()
		r.e.Emitln("}")
	case OpFor:
		c := r.counters
		r.counters++
		line := r.dslLine(indent, "for %d times", st.Bound)
		r.loc(line)
		r.e.Emitln("for (int c%d = 0; c%d < %d; c%d++) {", c, c, st.Bound, c)
		r.e.Indent()
		for i := range st.Body {
			r.emitStmt(&st.Body[i], indent+1)
		}
		r.e.Dedent()
		r.e.Emitln("}")
	}
}

func (r *renderer) emitMain(spec *Spec) {
	last := &spec.Funcs[len(spec.Funcs)-1]
	args := make([]string, last.Params)
	for i := range args {
		args[i] = fmt.Sprint(3 + 2*i)
	}
	r.e.Emitln("func int main() {")
	r.e.Emitln("\tint r = %s(%s);", last.Name, strings.Join(args, ", "))
	r.e.Emitln("\tprintf(\"%%d\\n\", r);")
	r.e.Emitln("\treturn 0;")
	r.e.Emitln("}")
}

// genExpr renders an expression spec as mini-C text. Division and
// modulo keep the generator's invariant — a literal, nonzero divisor —
// by construction here too, so even a hand-edited fixture cannot trap.
func genExpr(e *ExprSpec) string {
	return renderExpr(e, false)
}

// dslExpr renders the DSL view of the expression (same structure,
// surface syntax without parens noise).
func dslExpr(e *ExprSpec) string {
	return renderExpr(e, true)
}

var exprOps = map[string]string{
	ExAdd: "+", ExSub: "-", ExMul: "*", ExDiv: "/", ExMod: "%",
	ExLt: "<", ExLe: "<=", ExGt: ">", ExGe: ">=", ExEq: "==", ExNe: "!=",
	ExAnd: "&&", ExOr: "||",
}

func renderExpr(e *ExprSpec, dsl bool) string {
	if e == nil {
		return "0"
	}
	switch e.Op {
	case ExLit:
		return fmt.Sprint(e.Val)
	case ExVar:
		return fmt.Sprintf("v%d", e.Var)
	case ExArg:
		return fmt.Sprintf("arg%d", e.Var)
	case ExDiv, ExMod:
		y := e.Y
		if y == nil || y.Op != ExLit || y.Val == 0 {
			y = &ExprSpec{Op: ExLit, Val: 3}
		}
		return fmt.Sprintf("(%s %s %s)", renderExpr(e.X, dsl), exprOps[e.Op], renderExpr(y, dsl))
	default:
		op, ok := exprOps[e.Op]
		if !ok {
			return "0"
		}
		return fmt.Sprintf("(%s %s %s)", renderExpr(e.X, dsl), op, renderExpr(e.Y, dsl))
	}
}
