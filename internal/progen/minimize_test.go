package progen

import (
	"strings"
	"testing"
)

// specHasPrint reports whether any statement anywhere in the spec is a
// print — the stand-in "divergence" the minimiser must preserve.
func specHasPrint(s *Spec) bool {
	var scan func([]StmtSpec) bool
	scan = func(block []StmtSpec) bool {
		for i := range block {
			if block[i].Op == OpPrint {
				return true
			}
			if scan(block[i].Body) || scan(block[i].Else) {
				return true
			}
		}
		return false
	}
	for i := range s.Funcs {
		if scan(s.Funcs[i].Body) {
			return true
		}
	}
	return false
}

func countStmts(s *Spec) int {
	n := 0
	var scan func([]StmtSpec)
	scan = func(block []StmtSpec) {
		for i := range block {
			n++
			scan(block[i].Body)
			scan(block[i].Else)
		}
	}
	for i := range s.Funcs {
		scan(s.Funcs[i].Body)
	}
	return n
}

// TestMinimizeShrinksToPredicate: from a sizeable generated spec, keep
// only what a structural predicate needs. The result must satisfy the
// predicate, be 1-minimal, and leave the input untouched.
func TestMinimizeShrinksToPredicate(t *testing.T) {
	var spec *Spec
	for i := 0; ; i++ {
		spec = Generate(11, i)
		if spec.Kind == KindMinic && specHasPrint(spec) && countStmts(spec) >= 6 {
			break
		}
		if i > 50 {
			t.Fatal("no suitable seed spec in the first 50 indices")
		}
	}
	before, _ := spec.Marshal()

	min := Minimize(spec, func(c *Spec) bool {
		// A real predicate re-renders and re-runs the oracle; rendering
		// here keeps candidates honest (a candidate that cannot render
		// must be rejected the same way).
		if _, err := Render(c); err != nil {
			return false
		}
		return specHasPrint(c)
	})

	if !specHasPrint(min) {
		t.Fatal("minimised spec lost the predicate")
	}
	if len(min.Funcs) != 1 {
		t.Errorf("expected a single surviving function, got %d", len(min.Funcs))
	}
	if got := countStmts(min); got != 1 {
		t.Errorf("expected exactly the one print statement to survive, got %d statements:\n%s",
			got, mustJSON(min))
	}
	after, _ := spec.Marshal()
	if string(before) != string(after) {
		t.Error("Minimize mutated its input spec")
	}
}

// TestMinimizeSimplifiesExpressions: an expression-level predicate keeps
// only the subtree it needs.
func TestMinimizeSimplifiesExpressions(t *testing.T) {
	spec := &Spec{Kind: KindMinic, Seed: 0, Index: 0, Funcs: []FuncSpec{{
		Name: "f0", Params: 1, Locals: 2,
		Body: []StmtSpec{
			{Op: OpSet, Target: 0, Expr: &ExprSpec{
				Op: ExAdd,
				X:  &ExprSpec{Op: ExMul, X: &ExprSpec{Op: ExArg}, Y: &ExprSpec{Op: ExLit, Val: 3}},
				Y:  &ExprSpec{Op: ExMod, X: &ExprSpec{Op: ExVar, Var: 1}, Y: &ExprSpec{Op: ExLit, Val: 5}},
			}},
			{Op: OpSet, Target: 1, Expr: &ExprSpec{Op: ExLit, Val: 9}},
		},
	}}}

	hasMod := func(s *Spec) bool {
		found := false
		walkSpecExprs(s, func(slot **ExprSpec) bool {
			if (*slot).Op == ExMod {
				found = true
				return false
			}
			return true
		})
		return found
	}
	min := Minimize(spec, func(c *Spec) bool {
		if _, err := Render(c); err != nil {
			return false
		}
		return hasMod(c)
	})
	if !hasMod(min) {
		t.Fatal("minimised spec lost the mod expression")
	}
	if countStmts(min) != 1 {
		t.Errorf("expected 1 statement, got %d", countStmts(min))
	}
	// The add wrapper and the mul subtree are noise; the survivor should
	// be the bare mod (its operands reduced to leaves or literals).
	e := min.Funcs[0].Body[0].Expr
	if e == nil || e.Op != ExMod {
		t.Errorf("expected the expression to reduce to the mod node, got %s", mustJSON(min))
	}
}

// TestMinimizeGraphit: graphit specs reduce along their axes.
func TestMinimizeGraphit(t *testing.T) {
	spec := &Spec{Kind: KindGraphit, Seed: 0, Index: 0, Graphit: &GraphitSpec{
		Graph: "powerlaw:n=64,m=512,seed=11", Iters: 6, Applies: 2,
		Filter: true, Push: true, Parallel: true,
	}}
	min := Minimize(spec, func(c *Spec) bool {
		return c.Graphit != nil && c.Graphit.Filter
	})
	g := min.Graphit
	if !g.Filter {
		t.Fatal("minimised spec lost the filter")
	}
	if g.Iters != 1 || g.Applies != 1 || g.Push || g.Parallel {
		t.Errorf("expected everything but the filter reduced, got %s", mustJSON(min))
	}
	if g.Graph != "uniform:n=32,m=128,seed=3" {
		t.Errorf("expected the smallest graph, got %s", g.Graph)
	}
}

func mustJSON(s *Spec) string {
	data, err := s.Marshal()
	if err != nil {
		return err.Error()
	}
	return strings.TrimSpace(string(data))
}
