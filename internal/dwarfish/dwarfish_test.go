package dwarfish

import (
	"math/rand"
	"testing"
	"testing/quick"

	"d2x/internal/minic"
)

const sampleSrc = `func int add(int a, int b) {
	int sum = a + b;
	return sum;
}
func int main() {
	int x = add(1, 2);
	int y = add(x, 3);
	return y;
}
`

func buildSample(t *testing.T) (*minic.Program, *Info) {
	t.Helper()
	prog, err := minic.Compile("gen.c", sampleSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	return prog, Build(prog)
}

func TestBuildFunctions(t *testing.T) {
	_, info := buildSample(t)
	add := info.FuncByName("add")
	if add == nil {
		t.Fatal("no debug record for add")
	}
	if add.DeclLine != 1 {
		t.Errorf("add.DeclLine = %d, want 1", add.DeclLine)
	}
	if v, ok := add.VarByName("sum"); !ok || v.Type != "int" || v.Param {
		t.Errorf("sum var = %+v, ok=%v", v, ok)
	}
	if v, ok := add.VarByName("a"); !ok || !v.Param || v.Slot != 0 {
		t.Errorf("a var = %+v, ok=%v", v, ok)
	}
	if info.FuncByName("missing") != nil {
		t.Error("FuncByName returned a record for a missing function")
	}
}

func TestLineMapping(t *testing.T) {
	_, info := buildSample(t)
	add := info.FuncByName("add")
	// Line 2 is `int sum = a + b;` — it must have at least one statement PC
	// and LineOf must invert it.
	pcs := add.StmtPCs(2)
	if len(pcs) == 0 {
		t.Fatal("no statement PCs for line 2")
	}
	for _, pc := range pcs {
		if got := add.LineOf(pc); got != 2 {
			t.Errorf("LineOf(%d) = %d, want 2", pc, got)
		}
	}
	file, line, ok := info.LineFor(Addr{FuncIndex: add.FuncIndex, PC: pcs[0]})
	if !ok || file != "gen.c" || line != 2 {
		t.Errorf("LineFor = %q:%d ok=%v", file, line, ok)
	}
}

func TestSitesForLine(t *testing.T) {
	_, info := buildSample(t)
	sites := info.SitesForLine(6) // `int y = add(x, 3);`
	if len(sites) != 1 {
		t.Fatalf("sites for line 6 = %d, want 1", len(sites))
	}
	if sites[0].Func != "main" {
		t.Errorf("site func = %q, want main", sites[0].Func)
	}
	if got := info.SitesForLine(9999); len(got) != 0 {
		t.Errorf("sites for absent line = %v", got)
	}
}

func TestSitesForFunc(t *testing.T) {
	_, info := buildSample(t)
	sites := info.SitesForFunc("add")
	if len(sites) != 1 || sites[0].Line != 2 {
		t.Fatalf("entry site for add = %+v, want line 2", sites)
	}
	if got := info.SitesForFunc("nope"); got != nil {
		t.Errorf("sites for absent func = %v", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, info := buildSample(t)
	blob := info.Encode()
	back, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.File != info.File || len(back.Funcs) != len(info.Funcs) {
		t.Fatalf("decoded shape mismatch: %+v", back)
	}
	for i := range info.Funcs {
		a, b := info.Funcs[i], back.Funcs[i]
		if a.Name != b.Name || a.FuncIndex != b.FuncIndex || a.DeclLine != b.DeclLine {
			t.Errorf("func %d header mismatch: %+v vs %+v", i, a, b)
		}
		if len(a.Vars) != len(b.Vars) || len(a.Lines) != len(b.Lines) {
			t.Fatalf("func %d table size mismatch", i)
		}
		for j := range a.Vars {
			if a.Vars[j] != b.Vars[j] {
				t.Errorf("var %d/%d mismatch: %+v vs %+v", i, j, a.Vars[j], b.Vars[j])
			}
		}
		for j := range a.Lines {
			if a.Lines[j] != b.Lines[j] {
				t.Errorf("line %d/%d mismatch: %+v vs %+v", i, j, a.Lines[j], b.Lines[j])
			}
		}
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	if _, err := Decode([]byte("not a dwarfish blob")); err == nil {
		t.Error("decode of garbage succeeded")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("decode of empty input succeeded")
	}
	_, info := buildSample(t)
	blob := info.Encode()
	if _, err := Decode(blob[:len(blob)/2]); err == nil {
		t.Error("decode of truncated blob succeeded")
	}
}

// TestAddrEncodingProperty: EncodeAddr/DecodeAddr are inverses for all
// plausible function indexes and PCs.
func TestAddrEncodingProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := Addr{FuncIndex: r.Intn(1 << 20), PC: r.Intn(1 << 28)}
		return DecodeAddr(EncodeAddr(a)) == a
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestLineTableProperty: for every instruction of every function in a real
// compiled program, LineOf agrees with the compiler's own line record.
func TestLineTableProperty(t *testing.T) {
	prog, info := buildSample(t)
	for idx := range prog.Funcs {
		fc := prog.Code[idx]
		fi := info.FuncByIndex(idx)
		if fi == nil {
			t.Fatalf("no debug info for func %d", idx)
		}
		for pc, in := range fc.Instrs {
			if got := fi.LineOf(pc); got != in.Line {
				t.Errorf("%s pc %d: LineOf = %d, compiler line = %d", fi.Name, pc, got, in.Line)
			}
		}
	}
}

func TestVarShadowingPrefersInnermost(t *testing.T) {
	src := `func int main() {
	int v = 1;
	if (v == 1) {
		int x = 2;
		v = x;
	}
	int x = 3;
	return v + x;
}
`
	prog, err := minic.Compile("gen.c", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	info := Build(prog)
	mainFn := info.FuncByName("main")
	v, ok := mainFn.VarByName("x")
	if !ok {
		t.Fatal("no var x")
	}
	// Two `x` slots exist; the record must pick the later (higher) slot.
	count := 0
	for _, rec := range mainFn.Vars {
		if rec.Name == "x" {
			count++
			if rec.Slot > v.Slot {
				t.Errorf("VarByName picked slot %d, a later one %d exists", v.Slot, rec.Slot)
			}
		}
	}
	if count != 2 {
		t.Fatalf("expected 2 x records, found %d", count)
	}
}
