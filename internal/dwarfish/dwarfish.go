// Package dwarfish is the mini-C ecosystem's standard debugging
// information format — the role DWARF plays for native code in the paper.
// The compiler produces it when building "with -g"; the debugger consumes
// only this serialised form (never the compiler's in-memory structures) to
// map execution state (function index + program counter, the VM's $rip) to
// source lines, and variable names to frame slots.
//
// D2X deliberately does NOT extend this format. The paper's core argument
// is that debug-info formats are rigid and hard to extend (the DWARF 5
// standard runs 459 pages), so DSL context should ride in the program
// itself instead. dwarfish therefore stays strictly at the generated-code
// level; everything DSL-specific lives in the D2X tables.
package dwarfish

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Magic identifies serialised dwarfish blobs; Version is bumped on any
// incompatible change.
const (
	Magic   = "DWFx"
	Version = 1
)

// VarLoc locates one named variable in a function frame.
type VarLoc struct {
	Name string
	Slot int
	Type string // surface type syntax, for `info locals` display
	// Param marks function parameters (slots [0, NumParams)).
	Param bool
}

// LineEntry maps one program counter to a source line.
type LineEntry struct {
	PC   int
	Line int
	Stmt bool // true when PC begins a source statement (breakpoint target)
}

// FuncInfo is the debug record of one function.
type FuncInfo struct {
	Name      string
	FuncIndex int
	DeclLine  int
	File      string
	Vars      []VarLoc
	Lines     []LineEntry
}

// VarByName returns the variable record with the given name. When a name
// is shadowed (multiple slots share it), the highest slot — the innermost
// declaration — wins, matching debugger convention.
func (f *FuncInfo) VarByName(name string) (VarLoc, bool) {
	found := VarLoc{Slot: -1}
	for _, v := range f.Vars {
		if v.Name == name && v.Slot > found.Slot {
			found = v
		}
	}
	return found, found.Slot >= 0
}

// LineOf returns the source line for a program counter, using the last
// line entry at or before pc, like DWARF line programs do.
func (f *FuncInfo) LineOf(pc int) int {
	line := 0
	for _, e := range f.Lines {
		if e.PC > pc {
			break
		}
		line = e.Line
	}
	return line
}

// LineRange returns the inclusive source-line span covered by the
// function: its declaration line through the last line-table entry.
// ok is false when the function has no line entries at all.
func (f *FuncInfo) LineRange() (lo, hi int, ok bool) {
	if len(f.Lines) == 0 {
		return 0, 0, false
	}
	lo, hi = f.DeclLine, f.DeclLine
	for _, e := range f.Lines {
		if e.Line < lo {
			lo = e.Line
		}
		if e.Line > hi {
			hi = e.Line
		}
	}
	return lo, hi, true
}

// StmtPCs returns the statement-start PCs on the given line.
func (f *FuncInfo) StmtPCs(line int) []int {
	var pcs []int
	for _, e := range f.Lines {
		if e.Stmt && e.Line == line {
			pcs = append(pcs, e.PC)
		}
	}
	return pcs
}

// Info is the complete debug information of one compiled program.
type Info struct {
	File  string // generated source file name
	Funcs []FuncInfo

	byName map[string]int
	// byIdx is a dense FuncIndex → Funcs position table. Compiler
	// function indices are small and near-dense, so a slice beats a map
	// and makes FuncByIndex a bounds check + load on the frame-walk path.
	byIdx []int32
	// lineSites maps a source line to its statement-start sites across
	// all functions, sorted by (FuncIndex, PC). Built once alongside the
	// name index; the slices are shared and must not be mutated.
	lineSites map[int][]BreakpointSite
}

// FuncByName returns the record of the named function, or nil.
func (in *Info) FuncByName(name string) *FuncInfo {
	in.ensureIndex()
	if i, ok := in.byName[name]; ok {
		return &in.Funcs[i]
	}
	return nil
}

// FuncByIndex returns the record of the function with the given compiler
// index, or nil.
func (in *Info) FuncByIndex(idx int) *FuncInfo {
	in.ensureIndex()
	if idx < 0 || idx >= len(in.byIdx) {
		return nil
	}
	if i := in.byIdx[idx]; i >= 0 {
		return &in.Funcs[i]
	}
	return nil
}

func (in *Info) ensureIndex() {
	if in.byName != nil {
		return
	}
	maxIdx := -1
	for i := range in.Funcs {
		if fi := in.Funcs[i].FuncIndex; fi > maxIdx {
			maxIdx = fi
		}
	}
	byIdx := make([]int32, maxIdx+1)
	for i := range byIdx {
		byIdx[i] = -1
	}
	byName := make(map[string]int, len(in.Funcs))
	lineSites := make(map[int][]BreakpointSite)
	for i := range in.Funcs {
		f := &in.Funcs[i]
		byName[f.Name] = i
		if f.FuncIndex >= 0 && byIdx[f.FuncIndex] < 0 {
			byIdx[f.FuncIndex] = int32(i)
		}
	}
	// Functions are visited in FuncIndex order so each line's site list
	// comes out sorted by (FuncIndex, PC) without a per-query sort.
	for idx := 0; idx <= maxIdx; idx++ {
		pos := byIdx[idx]
		if pos < 0 {
			continue
		}
		f := &in.Funcs[pos]
		for _, e := range f.Lines {
			if !e.Stmt {
				continue
			}
			lineSites[e.Line] = append(lineSites[e.Line], BreakpointSite{
				Func: f.Name,
				Addr: Addr{FuncIndex: f.FuncIndex, PC: e.PC},
				Line: e.Line,
			})
		}
	}
	in.byIdx = byIdx
	in.lineSites = lineSites
	in.byName = byName // publish last: byName != nil marks the index ready
}

// Addr identifies one executable location: a function and a program
// counter within it. It is the structured form of the VM's $rip.
type Addr struct {
	FuncIndex int
	PC        int
}

// EncodeAddr packs an Addr into a single int64 in the way the debugger's
// $rip meta-variable exposes it to called functions. The paper passes the
// raw x86 %rip the same way.
//
//d2x:noalloc
func EncodeAddr(a Addr) int64 {
	return int64(a.FuncIndex)<<32 | int64(uint32(a.PC))
}

// DecodeAddr unpacks an int64-encoded address.
//
//d2x:noalloc
func DecodeAddr(v int64) Addr {
	return Addr{FuncIndex: int(v >> 32), PC: int(uint32(v))}
}

// LineFor maps an address to (file, line), the debugger's stage-1 mapping.
func (in *Info) LineFor(a Addr) (string, int, bool) {
	f := in.FuncByIndex(a.FuncIndex)
	if f == nil {
		return "", 0, false
	}
	line := f.LineOf(a.PC)
	if line == 0 {
		return "", 0, false
	}
	return in.File, line, true
}

// BreakpointSite is one concrete machine location a source breakpoint
// expands to.
type BreakpointSite struct {
	Func string
	Addr Addr
	Line int
}

// SitesForLine returns every statement-start location on the given source
// line across all functions, sorted by function then PC. A single source
// line can map to several sites (e.g. a UDF inlined per call site), which
// is exactly the situation D2X's xbreak deals with one level up.
//
// The returned slice is shared with the Info's precomputed index and
// must be treated as immutable by callers.
func (in *Info) SitesForLine(line int) []BreakpointSite {
	in.ensureIndex()
	return in.lineSites[line]
}

// HasStmtOnLine reports whether any function has a statement-start PC on
// the given source line — len(SitesForLine(line)) > 0 without touching
// the site slice. It is the predicate the breakpoint-planning path uses
// to filter candidate generated lines.
//
//d2x:noalloc
func (in *Info) HasStmtOnLine(line int) bool {
	in.ensureIndex() //d2xvet:ignore noalloc the index is built once per Info and memoized
	return len(in.lineSites[line]) > 0
}

// VisitLineRanges calls fn once per maximal PC range of each function
// that maps to a single source line, functions in FuncIndex order and
// ranges in increasing PC order. A range is [loPC, hiPC); the final
// range of each function is open-ended and reported with hiPC = -1.
// The decomposition reproduces LineOf exactly: PCs below the first line
// entry are not covered (LineOf reports line 0 there), and when several
// entries share a PC the last one wins. Consumers such as the fused
// rip→context index use this to precompute stage-1 resolution without
// N×LineOf probes.
func (in *Info) VisitLineRanges(fn func(f *FuncInfo, loPC, hiPC, line int)) {
	in.ensureIndex()
	for idx := 0; idx < len(in.byIdx); idx++ {
		pos := in.byIdx[idx]
		if pos < 0 {
			continue
		}
		f := &in.Funcs[pos]
		n := len(f.Lines)
		for i := 0; i < n; i++ {
			e := f.Lines[i]
			if i+1 < n {
				next := f.Lines[i+1].PC
				if next == e.PC {
					continue // shadowed entry: the later one wins, as in LineOf
				}
				fn(f, e.PC, next, e.Line)
			} else {
				fn(f, e.PC, -1, e.Line)
			}
		}
	}
}

// SitesForFunc returns the entry breakpoint site of the named function:
// its first statement-start PC.
func (in *Info) SitesForFunc(name string) []BreakpointSite {
	f := in.FuncByName(name)
	if f == nil {
		return nil
	}
	for _, e := range f.Lines {
		if e.Stmt {
			return []BreakpointSite{{
				Func: f.Name,
				Addr: Addr{FuncIndex: f.FuncIndex, PC: e.PC},
				Line: e.Line,
			}}
		}
	}
	return nil
}

// ---- Serialisation ----

// Encode serialises the debug info to its binary wire format.
func (in *Info) Encode() []byte {
	var b bytes.Buffer
	b.WriteString(Magic)
	writeUvarint(&b, Version)
	writeString(&b, in.File)
	writeUvarint(&b, uint64(len(in.Funcs)))
	for _, f := range in.Funcs {
		writeString(&b, f.Name)
		writeUvarint(&b, uint64(f.FuncIndex))
		writeUvarint(&b, uint64(f.DeclLine))
		writeString(&b, f.File)
		writeUvarint(&b, uint64(len(f.Vars)))
		for _, v := range f.Vars {
			writeString(&b, v.Name)
			writeUvarint(&b, uint64(v.Slot))
			writeString(&b, v.Type)
			writeBool(&b, v.Param)
		}
		writeUvarint(&b, uint64(len(f.Lines)))
		// Delta-encode the line table, the same trick DWARF line programs
		// use to stay compact.
		prevPC, prevLine := 0, 0
		for _, e := range f.Lines {
			writeUvarint(&b, uint64(e.PC-prevPC))
			writeVarint(&b, int64(e.Line-prevLine))
			writeBool(&b, e.Stmt)
			prevPC, prevLine = e.PC, e.Line
		}
	}
	return b.Bytes()
}

// Decode parses a binary debug-info blob. All strings are interned
// while decoding: the wire format repeats file names and type spellings
// per function and per variable, and interning collapses each distinct
// spelling to a single heap object. Consumers (the fused rip→context
// index, the render path) can then hold and compare these strings
// without copying.
func Decode(data []byte) (*Info, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != Magic {
		return nil, fmt.Errorf("dwarfish: bad magic")
	}
	ver, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("dwarfish: unsupported version %d", ver)
	}
	tab := make(Interner, 32)
	var scratch []byte
	readString := func(r *bytes.Reader) (string, error) {
		return readStringInterned(r, &scratch, tab)
	}
	in := &Info{}
	if in.File, err = readString(r); err != nil {
		return nil, err
	}
	nf, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if nf > 1<<20 {
		return nil, fmt.Errorf("dwarfish: corrupt function count %d", nf)
	}
	in.Funcs = make([]FuncInfo, nf)
	for i := range in.Funcs {
		f := &in.Funcs[i]
		if f.Name, err = readString(r); err != nil {
			return nil, err
		}
		fi, err := readUvarint(r)
		if err != nil {
			return nil, err
		}
		f.FuncIndex = int(fi)
		dl, err := readUvarint(r)
		if err != nil {
			return nil, err
		}
		f.DeclLine = int(dl)
		if f.File, err = readString(r); err != nil {
			return nil, err
		}
		nv, err := readUvarint(r)
		if err != nil {
			return nil, err
		}
		if nv > 1<<20 {
			return nil, fmt.Errorf("dwarfish: corrupt var count %d", nv)
		}
		f.Vars = make([]VarLoc, nv)
		for j := range f.Vars {
			v := &f.Vars[j]
			if v.Name, err = readString(r); err != nil {
				return nil, err
			}
			slot, err := readUvarint(r)
			if err != nil {
				return nil, err
			}
			v.Slot = int(slot)
			if v.Type, err = readString(r); err != nil {
				return nil, err
			}
			if v.Param, err = readBool(r); err != nil {
				return nil, err
			}
		}
		nl, err := readUvarint(r)
		if err != nil {
			return nil, err
		}
		if nl > 1<<26 {
			return nil, fmt.Errorf("dwarfish: corrupt line count %d", nl)
		}
		f.Lines = make([]LineEntry, nl)
		prevPC, prevLine := 0, 0
		for j := range f.Lines {
			dpc, err := readUvarint(r)
			if err != nil {
				return nil, err
			}
			dline, err := readVarint(r)
			if err != nil {
				return nil, err
			}
			stmt, err := readBool(r)
			if err != nil {
				return nil, err
			}
			prevPC += int(dpc)
			prevLine += int(dline)
			f.Lines[j] = LineEntry{PC: prevPC, Line: prevLine, Stmt: stmt}
		}
	}
	// Build the name index now so a decoded Info is immutable from here on
	// and safe to share between concurrent debug sessions without locks.
	in.ensureIndex()
	return in, nil
}

func writeUvarint(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	b.Write(tmp[:n])
}

func writeVarint(b *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	b.Write(tmp[:n])
}

func writeString(b *bytes.Buffer, s string) {
	writeUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

func writeBool(b *bytes.Buffer, v bool) {
	if v {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
}

func readUvarint(r *bytes.Reader) (uint64, error) { return binary.ReadUvarint(r) }
func readVarint(r *bytes.Reader) (int64, error)   { return binary.ReadVarint(r) }

// Interner deduplicates strings: each distinct spelling is stored once
// and every later occurrence returns the stored copy. Decode uses one
// per blob; d2xenc shares the same trick for its string tables.
type Interner map[string]string

// Intern returns the canonical copy of s, storing s on first sight.
func (t Interner) Intern(s string) string {
	if v, ok := t[s]; ok {
		return v
	}
	t[s] = s
	return s
}

// readStringInterned reads a length-prefixed string into a reused
// scratch buffer and interns it. The map lookup keyed by string(buf)
// does not allocate (the compiler elides the conversion), so repeated
// spellings cost zero heap after their first occurrence.
func readStringInterned(r *bytes.Reader, scratch *[]byte, tab Interner) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > uint64(r.Len()) {
		return "", fmt.Errorf("dwarfish: corrupt string length %d", n)
	}
	if uint64(cap(*scratch)) < n {
		*scratch = make([]byte, n)
	}
	buf := (*scratch)[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	if v, ok := tab[string(buf)]; ok {
		return v, nil
	}
	s := string(buf)
	tab[s] = s
	return s, nil
}

func readBool(r *bytes.Reader) (bool, error) {
	c, err := r.ReadByte()
	if err != nil {
		return false, err
	}
	return c != 0, nil
}
