package dwarfish

import "d2x/internal/minic"

// Build extracts debug information from a compiled program — the moment
// the paper's workflow invokes with `-g`. The result is self-contained:
// after Encode/Decode it carries everything a debugger needs for the
// stage-1 (binary state → generated source) mapping.
func Build(prog *minic.Program) *Info {
	info := &Info{File: prog.SourceName}
	for idx, fd := range prog.Funcs {
		fc := prog.Code[idx]
		fi := FuncInfo{
			Name:      fd.Name,
			FuncIndex: idx,
			DeclLine:  fd.Line,
			File:      prog.SourceName,
		}
		for slot, name := range fd.SlotNames {
			fi.Vars = append(fi.Vars, VarLoc{
				Name:  name,
				Slot:  slot,
				Type:  fd.SlotTypes[slot].String(),
				Param: slot < len(fd.Params),
			})
		}
		prevLine := -1
		for pc, in := range fc.Instrs {
			// Record an entry at every statement start and at every line
			// change, mirroring how compilers emit DWARF line rows.
			if in.StmtStart || in.Line != prevLine {
				fi.Lines = append(fi.Lines, LineEntry{PC: pc, Line: in.Line, Stmt: in.StmtStart})
				prevLine = in.Line
			}
		}
		info.Funcs = append(info.Funcs, fi)
	}
	return info
}
