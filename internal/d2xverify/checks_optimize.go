package d2xverify

// Differential line-attribution check for the optimiser. optimize.go's
// header comment states the invariant the whole D2X design leans on —
// optimisation changes code, not line attribution, because surviving
// statements keep their lines — but nothing enforced it. This check
// does, differentially: re-parse the program's source, run Optimize on
// the copy, and verify the surviving statements' line set is a subset
// of the original's. A line that appears only after optimisation means
// the optimiser invented or re-homed a statement, which would silently
// detach the D2X tables from the code they describe.

import (
	"sort"

	"d2x/internal/minic"
)

// optimizeForCheck is the optimiser the check runs on its private parse.
// A variable so the check's reporting path is testable against a
// deliberately line-breaking optimiser (the real one never fires it).
var optimizeForCheck = func(f *minic.File) { minic.Optimize(f) }

func optimizeChecks() []Check {
	return []Check{
		{
			Name: "opt/line-attribution",
			Desc: "Optimize keeps surviving statements on their original lines",
			Run:  checkOptimizeLines,
		},
	}
}

func checkOptimizeLines(in *Input, r *Reporter) error {
	src := in.Program.SourceText
	if src == "" {
		return nil
	}
	// Parse twice rather than mutating anything the input owns: the
	// check must be free of side effects on the program under test.
	orig, err := minic.Parse(in.Program.SourceName, src)
	if err != nil {
		return nil // unparseable SourceText is another check's finding
	}
	work, err := minic.Parse(in.Program.SourceName, src)
	if err != nil {
		return nil
	}
	before := stmtLines(orig)
	optimizeForCheck(work)
	var bad []int
	seen := map[int]bool{}
	for line := range stmtLines(work) {
		if !before[line] && !seen[line] {
			seen[line] = true
			bad = append(bad, line)
		}
	}
	sort.Ints(bad)
	for _, line := range bad {
		r.Errorf(in.GenLoc(line),
			"Optimize must rewrite statements in place, never re-line or invent them",
			"optimised program has a statement at line %d where the original had none — D2X line attribution would break",
			line)
	}
	return nil
}

// stmtLines collects the source lines occupied by statements and global
// declarations of a parsed file.
func stmtLines(f *minic.File) map[int]bool {
	lines := map[int]bool{}
	for _, fd := range f.Funcs {
		minic.InspectStmts(fd.Body, func(s minic.Stmt) bool {
			lines[s.Pos()] = true
			return true
		})
	}
	for _, g := range f.Globals {
		lines[g.Line] = true
	}
	return lines
}
