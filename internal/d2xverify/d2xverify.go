// Package d2xverify is a static-analysis subsystem for D2X pipelines: it
// cross-checks the three artifacts every compile produces — the mini-C
// program, its dwarfish debug info, and the D2X tables riding inside the
// program — and lints the generated code itself.
//
// The motivation is the failure class documented for DWARF producers
// ("Who's Debugging the Debuggers?", Di Luna et al.): debug metadata
// that is silently wrong gives the user wrong answers with full
// confidence. D2X widens the surface — a generated line with a stale
// location stack or a dangling rtv_handler lies about the DSL, not just
// about the binary — so the verifier checks every layer against the
// others:
//
//   - cross-layer consistency (checks_crosslayer.go): line tables map to
//     real statements, D2X records are well-formed and round-trip
//     through the wire format, handlers and macros name real functions
//     with compatible signatures, scopes are balanced.
//   - mini-C dataflow lints (checks_dataflow.go): use-before-init,
//     unreachable statements, unused frame slots, dead stores — catching
//     DSL codegen bugs at compile time instead of at debug time.
//   - architecture lints (checks_arch.go): the debugger must not import
//     d2x packages, and the D2X:BEGIN/END delta markers feeding
//     internal/loc must be well-formed.
//
// DSL authors add their own checks with Registry.Register; see
// DESIGN.md's Verification section.
package d2xverify

import (
	"fmt"
	"sort"
	"strings"

	"d2x/internal/d2x/d2xc"
	"d2x/internal/d2x/d2xenc"
	"d2x/internal/dwarfish"
	"d2x/internal/minic"
	"d2x/internal/minic/debugify"
	"d2x/internal/minic/effects"
	"d2x/internal/srcloc"
)

// Severity grades a diagnostic.
type Severity int

const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String renders the severity for report output.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Diagnostic is one finding: which check fired, how bad it is, where
// (a srcloc anchor into the generated program, a DSL source, or a repo
// file), what is wrong, and — when the fix is mechanical — how to fix it.
type Diagnostic struct {
	Check    string
	Severity Severity
	Loc      srcloc.Loc
	Message  string
	Hint     string
}

// String renders the diagnostic in file:line: tool style.
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Loc.File != "" {
		fmt.Fprintf(&b, "%s:%d: ", d.Loc.File, d.Loc.Line)
	}
	fmt.Fprintf(&b, "%s: [%s] %s", d.Severity, d.Check, d.Message)
	if d.Hint != "" {
		fmt.Fprintf(&b, " (fix: %s)", d.Hint)
	}
	return b.String()
}

// Report is the outcome of one verification run.
type Report struct {
	Diags []Diagnostic
}

// Errors counts error-severity findings.
func (r *Report) Errors() int { return r.count(SevError) }

// Warnings counts warning-severity findings.
func (r *Report) Warnings() int { return r.count(SevWarning) }

func (r *Report) count(s Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// ByCheck returns the findings of one named check.
func (r *Report) ByCheck(name string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Check == name {
			out = append(out, d)
		}
	}
	return out
}

// String renders every finding, one per line.
func (r *Report) String() string {
	var b strings.Builder
	for _, d := range r.Diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Reporter collects diagnostics for the check currently running.
type Reporter struct {
	check string
	diags *[]Diagnostic
}

func (r *Reporter) report(sev Severity, loc srcloc.Loc, hint, format string, args ...any) {
	*r.diags = append(*r.diags, Diagnostic{
		Check:    r.check,
		Severity: sev,
		Loc:      loc,
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
	})
}

// Errorf records an error finding anchored at loc. hint may be empty.
func (r *Reporter) Errorf(loc srcloc.Loc, hint, format string, args ...any) {
	r.report(SevError, loc, hint, format, args...)
}

// Warnf records a warning finding anchored at loc. hint may be empty.
func (r *Reporter) Warnf(loc srcloc.Loc, hint, format string, args ...any) {
	r.report(SevWarning, loc, hint, format, args...)
}

// Input is one compiled pipeline output under verification. Program is
// required; the other artifacts unlock further checks (a nil DebugBlob
// skips the dwarfish checks, a nil Ctx skips the journal/round-trip
// checks, and so on) — the verifier checks what it is given.
type Input struct {
	// Program is the compiled generated program (with the D2X tables
	// inside it, when the pipeline ran with D2X).
	Program *minic.Program
	// DebugBlob is the encoded dwarfish debug info, as produced by the
	// link step.
	DebugBlob []byte
	// Ctx is the D2X compile-time context that produced the tables,
	// when the caller still holds it. It enables the round-trip and
	// scope-journal checks.
	Ctx *d2xc.Context
	// Macros is DSL-specific debugger macro text (d2x.Build.ExtraMacros);
	// call targets inside it are resolved against the program.
	Macros string

	info     *dwarfish.Info
	infoErr  error
	infoDone bool

	tables     *d2xenc.Tables
	tablesErr  error
	tablesDone bool

	fx     *effects.Analysis
	fxDone bool

	dbg     *debugify.Report
	dbgDone bool
}

// Debugify lazily runs the per-pass debug-info preservation analysis
// over the program's source text (see internal/minic/debugify). The
// report is shared by every opt/debugify-* check. Returns (nil, nil)
// when the program carries no source text or it does not re-parse —
// those are other checks' findings.
func (in *Input) Debugify() (*debugify.Report, error) {
	if !in.dbgDone {
		in.dbgDone = true
		src := in.Program.SourceText
		if src == "" {
			return nil, nil
		}
		rep, err := debugify.Run(in.Program.SourceName, src, in.Program.Natives)
		if err != nil {
			// debugify.Run only fails on a parse error, and unparseable
			// SourceText is another check's finding.
			return nil, nil
		}
		in.dbg = rep
	}
	return in.dbg, nil
}

// EffectAnalysis lazily runs the effect-and-termination analysis over
// the compiled program (checker annotations are enough; no bytecode is
// consulted). The result is shared by every effects-family check.
func (in *Input) EffectAnalysis() *effects.Analysis {
	if !in.fxDone {
		in.fxDone = true
		in.fx = effects.Analyze(in.Program)
	}
	return in.fx
}

// GenFile returns the generated source file name.
func (in *Input) GenFile() string { return in.Program.SourceName }

// GenLoc anchors a diagnostic at a generated-program line.
func (in *Input) GenLoc(line int) srcloc.Loc {
	return srcloc.Loc{File: in.GenFile(), Line: line}
}

// Info lazily decodes the dwarfish blob. Returns (nil, nil) when the
// input carries no blob.
func (in *Input) Info() (*dwarfish.Info, error) {
	if !in.infoDone {
		in.infoDone = true
		if len(in.DebugBlob) > 0 {
			in.info, in.infoErr = dwarfish.Decode(in.DebugBlob)
		}
	}
	return in.info, in.infoErr
}

// HasD2XTables reports whether the program carries D2X tables (the
// marker global exists).
func (in *Input) HasD2XTables() bool {
	_, ok := in.Program.GlobalByName[d2xenc.GRecCount]
	return ok
}

// Tables lazily decodes the D2X tables by running the program's
// constructor phase in a scratch VM and reading the populated globals —
// exactly the path the D2X runtime uses on the debuggee, so decoding
// here exercises the real wire format. Returns (nil, nil) when the
// program carries no tables.
func (in *Input) Tables() (*d2xenc.Tables, error) {
	if !in.tablesDone {
		in.tablesDone = true
		if in.HasD2XTables() {
			vm := minic.NewVM(in.Program, nil)
			if err := vm.Start(); err != nil {
				in.tablesErr = fmt.Errorf("d2xverify: running table constructors: %w", err)
			} else {
				in.tables, in.tablesErr = d2xenc.Decode(vm)
			}
		}
	}
	return in.tables, in.tablesErr
}

// Check is one program-level verification pass.
type Check struct {
	Name string // stable slug, e.g. "d2x/stacks"
	Desc string
	Run  func(in *Input, r *Reporter) error
}

// RepoCheck is one repository-level (architecture) verification pass.
type RepoCheck struct {
	Name string
	Desc string
	Run  func(root string, r *Reporter) error
}

// Registry holds the checks a verification run executes. The zero value
// is empty; DefaultRegistry returns the built-in set. DSLs register
// their own checks on a copy (see DESIGN.md: adding a DSL-specific
// check).
type Registry struct {
	program []Check
	repo    []RepoCheck
}

// Register adds a program-level check.
func (reg *Registry) Register(c Check) { reg.program = append(reg.program, c) }

// RegisterRepo adds a repository-level check.
func (reg *Registry) RegisterRepo(c RepoCheck) { reg.repo = append(reg.repo, c) }

// Checks returns the registered program-level checks.
func (reg *Registry) Checks() []Check { return reg.program }

// RepoChecks returns the registered repository-level checks.
func (reg *Registry) RepoChecks() []RepoCheck { return reg.repo }

// DefaultRegistry returns the built-in check set.
func DefaultRegistry() *Registry {
	reg := &Registry{}
	for _, c := range crossLayerChecks() {
		reg.Register(c)
	}
	for _, c := range dataflowChecks() {
		reg.Register(c)
	}
	for _, c := range effectsChecks() {
		reg.Register(c)
	}
	for _, c := range optimizeChecks() {
		reg.Register(c)
	}
	for _, c := range debugifyChecks() {
		reg.Register(c)
	}
	for _, c := range repoChecks() {
		reg.RegisterRepo(c)
	}
	return reg
}

// Verify runs every program-level check of the registry over the input.
// A check that fails to run at all contributes an error diagnostic
// rather than aborting the whole run.
func (reg *Registry) Verify(in *Input) *Report {
	rep := &Report{}
	for _, c := range reg.program {
		r := &Reporter{check: c.Name, diags: &rep.Diags}
		if err := c.Run(in, r); err != nil {
			r.Errorf(srcloc.Loc{File: in.GenFile()}, "", "check failed to run: %v", err)
		}
	}
	sortDiags(rep.Diags)
	return rep
}

// VerifyRepo runs every repository-level check over the source tree at
// root.
func (reg *Registry) VerifyRepo(root string) *Report {
	rep := &Report{}
	for _, c := range reg.repo {
		r := &Reporter{check: c.Name, diags: &rep.Diags}
		if err := c.Run(root, r); err != nil {
			r.Errorf(srcloc.Loc{}, "", "check failed to run: %v", err)
		}
	}
	sortDiags(rep.Diags)
	return rep
}

// Verify runs the default registry's program-level checks.
func Verify(in *Input) *Report { return DefaultRegistry().Verify(in) }

// VerifyRepo runs the default registry's repository-level checks.
func VerifyRepo(root string) *Report { return DefaultRegistry().VerifyRepo(root) }

// sortDiags orders findings by location, then severity (most severe
// first), then check name, for stable output.
func sortDiags(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Loc.File != b.Loc.File {
			return a.Loc.File < b.Loc.File
		}
		if a.Loc.Line != b.Loc.Line {
			return a.Loc.Line < b.Loc.Line
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		return a.Check < b.Check
	})
}
