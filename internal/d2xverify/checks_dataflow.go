package d2xverify

// mini-C dataflow lints over the generated program's AST. The audience
// is DSL compiler authors: a use-before-init or a dead store in
// *generated* code is a codegen bug (lost initialisation pass, stale
// buffer reuse), so these fire as part of the compile pipeline rather
// than at debug time.
//
// All four lints are deliberately conservative. parallel_for bodies are
// compiled into helper functions with their own frames and the shared
// AST is slot-annotated for the helper, so the parent walk prunes at
// ParallelForStmt and the helper is analysed as its own function;
// slots with no local declaration in the analysed body (parameters,
// captured locals, the helper's loop variable) are assumed initialised
// and in use.

import (
	"d2x/internal/minic"
)

func dataflowChecks() []Check {
	return []Check{
		{
			Name: "minic/use-before-init",
			Desc: "locals are definitely assigned before every read",
			Run:  wholeProgramLint(lintUseBeforeInit),
		},
		{
			Name: "minic/unreachable",
			Desc: "no statement follows a return/break/continue in its block",
			Run:  wholeProgramLint(lintUnreachable),
		},
		{
			Name: "minic/unused-slot",
			Desc: "every declared frame slot is read somewhere",
			Run:  wholeProgramLint(lintUnusedSlots),
		},
		{
			Name: "minic/dead-store",
			Desc: "no store is unconditionally overwritten before being read",
			Run:  wholeProgramLint(lintDeadStores),
		},
	}
}

// wholeProgramLint lifts a per-function lint over every function of the
// program.
func wholeProgramLint(lint func(in *Input, fd *minic.FuncDecl, r *Reporter)) func(*Input, *Reporter) error {
	return func(in *Input, r *Reporter) error {
		for _, fd := range in.Program.Funcs {
			if fd.Body == nil {
				continue
			}
			lint(in, fd, r)
		}
		return nil
	}
}

// stmtsOf walks the statements fd's own frame executes: everything in
// the body except parallel_for bodies, which run in a helper frame.
// fn is called in source order; returning false prunes nested blocks.
func stmtsOf(fd *minic.FuncDecl, fn func(minic.Stmt) bool) {
	minic.InspectStmts(fd.Body, func(s minic.Stmt) bool {
		if !fn(s) {
			return false
		}
		_, isPar := s.(*minic.ParallelForStmt)
		return !isPar
	})
}

// exprsOf calls fn for every expression evaluated by fd's own frame
// (deeply), in source order.
func exprsOf(fd *minic.FuncDecl, fn func(minic.Expr)) {
	stmtsOf(fd, func(s minic.Stmt) bool {
		minic.StmtExprs(s, func(e minic.Expr) {
			minic.InspectExpr(e, fn)
		})
		return true
	})
}

// localIdent returns the frame slot when e is an identifier naming a
// local (not a global, not a function reference), and -1 otherwise.
func localIdent(e minic.Expr) int {
	if id, ok := e.(*minic.Ident); ok && !id.IsGlobal && !id.IsFunc {
		return id.Slot
	}
	return -1
}

// declaredSlots maps slot -> declaration for every local declared in
// the statements fd's own frame executes.
func declaredSlots(fd *minic.FuncDecl) map[int]*minic.VarDeclStmt {
	decls := map[int]*minic.VarDeclStmt{}
	stmtsOf(fd, func(s minic.Stmt) bool {
		if d, ok := s.(*minic.VarDeclStmt); ok {
			decls[d.Slot] = d
		}
		return true
	})
	return decls
}

// addressTakenSlots returns the slots whose address escapes via &x; any
// store to them may be observed through the pointer, so the store lints
// leave them alone. Slots captured by a parallel_for are passed to the
// helper by reference and count as escaping too.
func addressTakenSlots(fd *minic.FuncDecl) map[int]bool {
	taken := map[int]bool{}
	exprsOf(fd, func(e minic.Expr) {
		if u, ok := e.(*minic.UnaryExpr); ok && u.Op == minic.Amp {
			if slot := localIdent(u.X); slot >= 0 {
				taken[slot] = true
			}
		}
	})
	captured := map[string]bool{}
	stmtsOf(fd, func(s minic.Stmt) bool {
		if p, ok := s.(*minic.ParallelForStmt); ok {
			for _, name := range p.CapturedVars {
				captured[name] = true
			}
		}
		return true
	})
	for slot, name := range fd.SlotNames {
		if captured[name] {
			taken[slot] = true
		}
	}
	return taken
}

// ---- use-before-init ----

// initState tracks, for locally declared slots only, whether each is
// definitely assigned on every path reaching the current point.
type initState map[int]bool

func (s initState) clone() initState {
	out := make(initState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// join intersects two states: a slot is definitely assigned after a
// branch only when both arms assigned it.
func (s initState) join(o initState) {
	for k, v := range s {
		s[k] = v && o[k]
	}
}

// lintUseBeforeInit is a definite-assignment analysis in the style
// mandated by the Java and C# specs: path-insensitive, loops may run
// zero times, if/else joins by intersection. It only tracks slots
// declared in the analysed body — anything else (params, captured
// locals, helper loop variables) is initialised by the caller.
func lintUseBeforeInit(in *Input, fd *minic.FuncDecl, r *Reporter) {
	ub := &useBeforeInit{in: in, fd: fd, r: r, taken: addressTakenSlots(fd)}
	ub.block(fd.Body, initState{})
}

type useBeforeInit struct {
	in    *Input
	fd    *minic.FuncDecl
	r     *Reporter
	taken map[int]bool
}

// read flags uses of declared-but-unassigned slots inside e.
func (ub *useBeforeInit) read(e minic.Expr, st initState) {
	minic.InspectExpr(e, func(x minic.Expr) {
		if u, ok := x.(*minic.UnaryExpr); ok && u.Op == minic.Amp {
			// &x initialises x as far as this analysis can see: the callee
			// may write through the pointer (d2x_find_stack_var does).
			if slot := localIdent(u.X); slot >= 0 {
				if _, tracked := st[slot]; tracked {
					st[slot] = true
				}
			}
			return
		}
		slot := localIdent(x)
		if slot < 0 {
			return
		}
		if assigned, tracked := st[slot]; tracked && !assigned {
			ub.r.Errorf(ub.in.GenLoc(x.Pos()),
				"initialise the variable at its declaration or on every path before this read",
				"function %q: %q (slot %d) may be read before it is assigned",
				ub.fd.Name, ub.fd.SlotNames[slot], slot)
			st[slot] = true // report each slot's first offending read only
		}
	})
}

// assignTarget processes the LHS of an assignment: a plain local ident
// becomes assigned; any other lvalue shape (index, field, deref) reads
// its subexpressions.
func (ub *useBeforeInit) assignTarget(lhs minic.Expr, st initState, alsoReads bool) {
	if slot := localIdent(lhs); slot >= 0 {
		if alsoReads {
			ub.read(lhs, st)
		}
		if _, tracked := st[slot]; tracked {
			st[slot] = true
		}
		return
	}
	ub.read(lhs, st)
}

// stmt analyses one statement, mutating st in place; the return value
// reports whether the statement terminates its block (control cannot
// fall through to the next statement).
func (ub *useBeforeInit) stmt(s minic.Stmt, st initState) bool {
	switch t := s.(type) {
	case *minic.BlockStmt:
		return ub.block(t, st)
	case *minic.VarDeclStmt:
		if t.Init != nil {
			ub.read(t.Init, st)
		}
		st[t.Slot] = t.Init != nil
	case *minic.AssignStmt:
		ub.read(t.RHS, st)
		ub.assignTarget(t.LHS, st, t.Op != minic.Assign)
	case *minic.IncDecStmt:
		ub.assignTarget(t.LHS, st, true)
	case *minic.ExprStmt:
		ub.read(t.X, st)
	case *minic.IfStmt:
		ub.read(t.Cond, st)
		thenSt := st.clone()
		thenTerm := ub.block(t.Then, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if t.Else != nil {
			elseTerm = ub.stmt(t.Else, elseSt)
		}
		// Join only the arms control can fall out of: a terminated arm
		// contributes nothing to the state after the if.
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			for k := range st {
				st[k] = elseSt[k]
			}
		case elseTerm:
			for k := range st {
				st[k] = thenSt[k]
			}
		default:
			for k := range st {
				st[k] = thenSt[k] && elseSt[k]
			}
		}
	case *minic.WhileStmt:
		ub.read(t.Cond, st)
		ub.block(t.Body, st.clone()) // body may run zero times
	case *minic.ForStmt:
		if t.Init != nil {
			ub.stmt(t.Init, st)
		}
		if t.Cond != nil {
			ub.read(t.Cond, st)
		}
		bodySt := st.clone()
		ub.block(t.Body, bodySt)
		if t.Post != nil {
			ub.stmt(t.Post, bodySt)
		}
	case *minic.ParallelForStmt:
		ub.read(t.Lo, st)
		ub.read(t.Hi, st)
		// The body runs in the helper's frame; captured locals are treated
		// as address-taken, so nothing else to do here.
	case *minic.ReturnStmt:
		if t.X != nil {
			ub.read(t.X, st)
		}
		return true
	case *minic.BreakStmt, *minic.ContinueStmt:
		return true
	}
	return false
}

func (ub *useBeforeInit) block(b *minic.BlockStmt, st initState) bool {
	for _, s := range b.Stmts {
		if ub.stmt(s, st) {
			return true
		}
	}
	return false
}

// ---- unreachable statements ----

// lintUnreachable flags statements that can never execute because an
// earlier statement in the same block unconditionally left it. One
// finding per dead region.
func lintUnreachable(in *Input, fd *minic.FuncDecl, r *Reporter) {
	checkBlock := func(b *minic.BlockStmt) {
		dead := false
		for _, s := range b.Stmts {
			if dead {
				r.Errorf(in.GenLoc(s.Pos()),
					"remove the statement or restructure the control flow before it",
					"function %q: unreachable statement", fd.Name)
				break
			}
			if stmtTerminates(s) {
				dead = true
			}
		}
	}
	stmtsOf(fd, func(s minic.Stmt) bool {
		if b, ok := s.(*minic.BlockStmt); ok {
			checkBlock(b)
		}
		return true
	})
	checkBlock(fd.Body)
	// fd.Body's nested blocks are reached via stmtsOf; the top-level call
	// covers the function body itself, which InspectStmts does not yield.
}

// stmtTerminates reports whether control cannot flow past s.
func stmtTerminates(s minic.Stmt) bool {
	switch t := s.(type) {
	case *minic.ReturnStmt, *minic.BreakStmt, *minic.ContinueStmt:
		return true
	case *minic.BlockStmt:
		for _, c := range t.Stmts {
			if stmtTerminates(c) {
				return true
			}
		}
		return false
	case *minic.IfStmt:
		if t.Else == nil {
			return false
		}
		return stmtTerminates(t.Then) && stmtTerminates(t.Else)
	}
	return false
}

// ---- unused frame slots ----

// lintUnusedSlots flags locals that are declared but never read: their
// frame slots, their stores, and their debug records are all dead
// weight, and in generated code they usually mark a codegen pass that
// lost track of a temporary.
func lintUnusedSlots(in *Input, fd *minic.FuncDecl, r *Reporter) {
	decls := declaredSlots(fd)
	if len(decls) == 0 {
		return
	}
	read := addressTakenSlots(fd) // &x and captures count as reads
	markReads := func(e minic.Expr, skipRoot bool) {
		minic.InspectExpr(e, func(x minic.Expr) {
			if skipRoot && x == e {
				return
			}
			if slot := localIdent(x); slot >= 0 {
				read[slot] = true
			}
		})
	}
	stmtsOf(fd, func(s minic.Stmt) bool {
		switch t := s.(type) {
		case *minic.VarDeclStmt:
			if t.Init != nil {
				markReads(t.Init, false)
			}
		case *minic.AssignStmt:
			markReads(t.RHS, false)
			// A plain `x = ...` does not read x; any other LHS shape does.
			markReads(t.LHS, t.Op == minic.Assign && localIdent(t.LHS) >= 0)
		case *minic.IncDecStmt:
			// x++ reads x before writing it.
			markReads(t.LHS, false)
		default:
			minic.StmtExprs(s, func(e minic.Expr) { markReads(e, false) })
		}
		return true
	})
	for slot, decl := range decls {
		if !read[slot] {
			r.Warnf(in.GenLoc(decl.Pos()),
				"drop the declaration and every store to it",
				"function %q: %q (slot %d) is declared but never read",
				fd.Name, decl.Name, slot)
		}
	}
}

// ---- dead stores ----

// lintDeadStores flags a store to a local that the very next statement
// unconditionally overwrites without reading it. Only adjacent
// statements in one block are considered, and only for locals whose
// address never escapes — a deliberately conservative window that is
// still enough to catch the classic generated-code bug of initialising
// a temporary twice.
func lintDeadStores(in *Input, fd *minic.FuncDecl, r *Reporter) {
	escaped := addressTakenSlots(fd)
	// storeOf returns (slot, true) when s is an unconditional plain store
	// to a non-escaping local.
	storeOf := func(s minic.Stmt) (int, bool) {
		switch t := s.(type) {
		case *minic.VarDeclStmt:
			if t.Init != nil && !escaped[t.Slot] {
				return t.Slot, true
			}
		case *minic.AssignStmt:
			if t.Op == minic.Assign {
				if slot := localIdent(t.LHS); slot >= 0 && !escaped[slot] {
					return slot, true
				}
			}
		}
		return -1, false
	}
	reads := func(s minic.Stmt, slot int) bool {
		found := false
		minic.StmtExprs(s, func(e minic.Expr) {
			minic.InspectExpr(e, func(x minic.Expr) {
				if localIdent(x) == slot {
					found = true
				}
			})
		})
		if a, ok := s.(*minic.AssignStmt); ok && a.Op == minic.Assign {
			// The LHS ident of a plain store is a write, not a read; it was
			// counted by the walk above, so discount it when it is the only
			// occurrence.
			if localIdent(a.LHS) == slot {
				found = false
				minic.InspectExpr(a.RHS, func(x minic.Expr) {
					if localIdent(x) == slot {
						found = true
					}
				})
			}
		}
		return found
	}
	checkBlock := func(b *minic.BlockStmt) {
		for i := 0; i+1 < len(b.Stmts); i++ {
			slot, ok := storeOf(b.Stmts[i])
			if !ok {
				continue
			}
			next := b.Stmts[i+1]
			nextSlot, nextIsStore := storeOf(next)
			if nextIsStore && nextSlot == slot && !reads(next, slot) {
				r.Warnf(in.GenLoc(b.Stmts[i].Pos()),
					"remove the first store; its value is overwritten before any read",
					"function %q: value stored to %q (slot %d) is immediately overwritten at line %d",
					fd.Name, fd.SlotNames[slot], slot, next.Pos())
			}
		}
	}
	checkBlock(fd.Body)
	stmtsOf(fd, func(s minic.Stmt) bool {
		if b, ok := s.(*minic.BlockStmt); ok {
			checkBlock(b)
		}
		return true
	})
}
