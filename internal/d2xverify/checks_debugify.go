package d2xverify

// Debugify checks: per-pass debug-info preservation for the optimiser.
// Where opt/line-attribution compares only the end-to-end line *sets*,
// these checks instrument the program's source with unique synthetic
// locations (internal/minic/debugify), run every declared optimiser
// pass individually, and verify after each one that no location was
// dropped, invented, or re-attributed without a declared remap, and
// that no function's variable set widened. A failure names the pass
// that broke the invariant, not just the fact that it broke.

import (
	"fmt"

	"d2x/internal/minic/debugify"
)

func debugifyChecks() []Check {
	return []Check{
		{
			Name: "opt/debugify-location",
			Desc: "no optimiser pass drops or invents a location",
			Run:  checkDebugifyLocation,
		},
		{
			Name: "opt/debugify-reattribution",
			Desc: "no optimiser pass re-attributes a location without a declared remap",
			Run:  checkDebugifyReattribution,
		},
		{
			Name: "opt/debugify-variables",
			Desc: "no optimiser pass widens a function's variable set",
			Run:  checkDebugifyVariables,
		},
	}
}

func checkDebugifyLocation(in *Input, r *Reporter) error {
	return reportDebugify(in, r, func(k debugify.FindingKind) bool {
		return k == debugify.FindingLocMissing || k == debugify.FindingLocInvented
	})
}

func checkDebugifyReattribution(in *Input, r *Reporter) error {
	return reportDebugify(in, r, func(k debugify.FindingKind) bool {
		return k == debugify.FindingLocReattributed
	})
}

func checkDebugifyVariables(in *Input, r *Reporter) error {
	return reportDebugify(in, r, func(k debugify.FindingKind) bool {
		return k == debugify.FindingVarWidened || k == debugify.FindingCheckFailed
	})
}

// reportDebugify surfaces the debugify findings selected by want as
// error diagnostics anchored at the affected generated line.
func reportDebugify(in *Input, r *Reporter, want func(debugify.FindingKind) bool) error {
	rep, err := in.Debugify()
	if err != nil || rep == nil {
		return err // no source text, or unparseable: not this check's finding
	}
	for _, f := range rep.Findings() {
		if !want(f.Kind) {
			continue
		}
		r.Errorf(in.GenLoc(f.Line),
			fmt.Sprintf("fix pass %q, or declare the remap via minic.RemapSet if the re-attribution is intended", f.Pass),
			"pass %q broke debug-info preservation [%s]: %s", f.Pass, f.Kind, f.Detail)
	}
	return nil
}
