package d2xverify_test

// End-to-end verification of the three case-study pipelines: a healthy
// compile must produce zero findings across every check — the verifier's
// precision contract. The corrupted-artifact suite (corrupt_test.go)
// proves the complementary recall contract.

import (
	"strings"
	"testing"

	"d2x/internal/buildit"
	"d2x/internal/d2x"
	"d2x/internal/d2xverify"
	"d2x/internal/einsum"
	"d2x/internal/graphit"
	"d2x/internal/loc"
	"d2x/internal/minic"
)

func assertClean(t *testing.T, rep *d2xverify.Report) {
	t.Helper()
	if len(rep.Diags) != 0 {
		t.Fatalf("expected a clean report, got %d findings:\n%s", len(rep.Diags), rep)
	}
}

func pagerankDeltaBuild(t *testing.T) *d2x.Build {
	t.Helper()
	art, err := graphit.CompileToC("pagerankdelta.gt", graphit.PageRankDeltaSrc,
		"s", graphit.PageRankDeltaSchedule, graphit.CompileOptions{D2X: true})
	if err != nil {
		t.Fatal(err)
	}
	build, err := art.Link()
	if err != nil {
		t.Fatal(err)
	}
	return build
}

func powerBuild(t *testing.T) *d2x.Build {
	t.Helper()
	bb := buildit.NewBuilder()
	buildit.EnableD2X(bb)
	f := bb.Func("power_15", []buildit.Param{{Name: "base", Type: minic.IntType}}, minic.IntType)
	exp := buildit.NewStatic(f, "exponent", 15)
	res := f.Decl("res", f.IntLit(1))
	x := f.Decl("x", f.Arg(0))
	for exp.Get() > 0 {
		if exp.Get()%2 == 1 {
			f.Assign(res, f.Mul(res, x))
		}
		exp.Set(exp.Get() / 2)
		if exp.Get() > 0 {
			f.Assign(x, f.Mul(x, x))
		}
	}
	f.Return(res)
	m := bb.Func("main", nil, minic.IntType)
	r := m.Decl("r", m.Call("power_15", minic.IntType, m.IntLit(3)))
	m.Printf("%d\n", r)
	m.Return(m.IntLit(0))
	build, err := bb.Link("power_gen.c", d2x.LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return build
}

func einsumBuild(t *testing.T) *d2x.Build {
	t.Helper()
	const M, N = 16, 8
	bb := buildit.NewBuilder()
	buildit.EnableD2X(bb)
	f := bb.Func("m_v_mul", []buildit.Param{
		{Name: "output", Type: einsum.IntArrayType},
		{Name: "matrix", Type: einsum.IntArrayType},
		{Name: "input", Type: einsum.IntArrayType},
	}, minic.VoidType)
	env := einsum.New(f)
	c := env.Tensor("c", f.Arg(0), M)
	a := env.Tensor("a", f.Arg(1), M, N)
	bt := env.Tensor("b", f.Arg(2), N)
	ii, jj := einsum.NewIndex("i"), einsum.NewIndex("j")
	if err := bt.Assign(einsum.Const(1), jj); err != nil {
		t.Fatal(err)
	}
	if err := c.Assign(einsum.Mul(einsum.Const(2), a.At(ii, jj), bt.At(jj)), ii); err != nil {
		t.Fatal(err)
	}
	f.Return(buildit.Expr{})
	m := bb.Func("main", nil, minic.IntType)
	out := m.DeclArr("output", minic.IntType, m.IntLit(M))
	mat := m.DeclArr("matrix", minic.IntType, m.IntLit(M*N))
	in := m.DeclArr("input", minic.IntType, m.IntLit(N))
	m.Do(m.Call("m_v_mul", minic.VoidType, out, mat, in))
	m.Return(m.IntLit(0))
	build, err := bb.Link("einsum_gen.c", d2x.LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return build
}

func TestPagerankDeltaPipelineVerifies(t *testing.T) {
	assertClean(t, pagerankDeltaBuild(t).Verify())
}

func TestPowerPipelineVerifies(t *testing.T) {
	assertClean(t, powerBuild(t).Verify())
}

func TestEinsumPipelineVerifies(t *testing.T) {
	assertClean(t, einsumBuild(t).Verify())
}

// TestWithoutD2XBuildVerifies checks the degenerate input: a build with
// no tables and no context still runs the dwarfish and dataflow checks
// and stays clean.
func TestWithoutD2XBuildVerifies(t *testing.T) {
	art, err := graphit.CompileToC("pagerankdelta.gt", graphit.PageRankDeltaSrc,
		"s", graphit.PageRankDeltaSchedule, graphit.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	build, err := art.Link()
	if err != nil {
		t.Fatal(err)
	}
	rep := build.Verify()
	assertClean(t, rep)
}

// TestOptimizedPipelineVerifies runs the verifier over a constant-folded
// build: optimisation rewrites statements but must not desynchronise the
// debug layers.
func TestOptimizedPipelineVerifies(t *testing.T) {
	art, err := graphit.CompileToC("pagerankdelta.gt", graphit.PageRankDeltaSrc,
		"s", graphit.PageRankDeltaSchedule, graphit.CompileOptions{D2X: true})
	if err != nil {
		t.Fatal(err)
	}
	build, err := art.LinkOptimizing(true)
	if err != nil {
		t.Fatal(err)
	}
	assertClean(t, build.Verify())
}

func TestRepoArchitectureVerifies(t *testing.T) {
	root, err := loc.RepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	assertClean(t, d2xverify.VerifyRepo(root))
}

// TestVerifyReportsSomethingOnEveryPipeline guards against the vacuous
// pass: the expensive layers (tables, debug info, journal) must actually
// be present in the healthy builds, otherwise the zero-findings results
// above prove nothing.
func TestVerifyReportsSomethingOnEveryPipeline(t *testing.T) {
	for name, build := range map[string]*d2x.Build{
		"pagerankdelta": pagerankDeltaBuild(t),
		"power":         powerBuild(t),
		"einsum":        einsumBuild(t),
	} {
		in := &d2xverify.Input{Program: build.Program, DebugBlob: build.DebugBlob, Ctx: build.Ctx}
		if !in.HasD2XTables() {
			t.Errorf("%s: build carries no D2X tables", name)
		}
		tables, err := in.Tables()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tables == nil || len(tables.Records) == 0 {
			t.Errorf("%s: no table records decoded", name)
		}
		info, err := in.Info()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info == nil || len(info.Funcs) == 0 {
			t.Errorf("%s: no debug info", name)
		}
		if build.Ctx == nil || len(build.Ctx.Journal()) == 0 {
			t.Errorf("%s: no operation journal", name)
		}
	}
}

// TestMarkerLintAgreesWithLoC: satellite check that the marker lint and
// the LoC counter agree on hunk counts for every real counted file (they
// parse the same markers with the same rules).
func TestMarkerLintAgreesWithLoC(t *testing.T) {
	root, err := loc.RepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []struct{ name, dir string }{
		{"graphit", "internal/graphit"},
		{"buildit", "internal/buildit"},
	} {
		st, err := loc.CountComponent(root, comp.name, comp.dir)
		if err != nil {
			t.Fatal(err)
		}
		if st.Hunks == 0 {
			t.Errorf("%s: expected marked hunks in %s", comp.name, comp.dir)
		}
	}
	// Spot-check agreement on a synthetic source with two hunks.
	src := "package x\n// D2X:BEGIN a\nvar a int\n// D2X:END a\nvar b int\n// D2X:BEGIN c\nvar c int\n// D2X:END c\n"
	if got := d2xverify.BalancedHunks("x.go", src); got != 2 {
		t.Fatalf("BalancedHunks = %d, want 2", got)
	}
	if got := loc.CountSource(src).MarkedHunks; got != 2 {
		t.Fatalf("loc.CountSource MarkedHunks = %d, want 2", got)
	}
	if !strings.Contains(src, "D2X:BEGIN") {
		t.Fatal("fixture lost its markers")
	}
}
