package d2xverify

// Cross-layer consistency checks: the dwarfish debug info, the D2X
// tables, and the generated program each describe the same compile, so
// any disagreement between them is a compiler bug. Each check reads two
// layers and diffs them.

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"d2x/internal/d2x/d2xc"
	"d2x/internal/d2x/d2xr"
	"d2x/internal/dwarfish"
	"d2x/internal/minic"
	"d2x/internal/srcloc"
)

func crossLayerChecks() []Check {
	return []Check{
		{
			Name: "debug/line-table",
			Desc: "dwarfish line-table entries map to real generated statements",
			Run:  checkLineTable,
		},
		{
			Name: "debug/frame-vars",
			Desc: "dwarfish variable records agree with the program's frame layout",
			Run:  checkFrameVars,
		},
		{
			Name: "d2x/records",
			Desc: "D2X table records anchor real lines and carry well-formed stacks",
			Run:  checkRecords,
		},
		{
			Name: "d2x/handlers",
			Desc: "runtime value handlers name existing functions with the handler signature",
			Run:  checkHandlers,
		},
		{
			Name: "d2x/runtime-link",
			Desc: "D2X runtime natives and macro call targets resolve in the program",
			Run:  checkRuntimeLink,
		},
		{
			Name: "d2x/roundtrip",
			Desc: "tables decoded from the debuggee match the compile-time context",
			Run:  checkRoundtrip,
		},
		{
			Name: "d2x/scopes",
			Desc: "scope and live-variable operations are balanced with sane live ranges",
			Run:  checkScopes,
		},
	}
}

// realStmtLine reports whether 1-based line n of the generated source
// holds code a statement could live on (non-blank, not a pure comment).
func realStmtLine(p *minic.Program, n int) bool {
	lines := p.SourceLines()
	if n < 1 || n > len(lines) {
		return false
	}
	text := strings.TrimSpace(lines[n-1])
	return text != "" && !strings.HasPrefix(text, "//")
}

// checkLineTable verifies the dwarfish stage-1 mapping: every line-table
// entry must land on a real statement of the generated source, with
// monotonically increasing PCs, and every function record must agree
// with the program's function table.
func checkLineTable(in *Input, r *Reporter) error {
	info, err := in.Info()
	if err != nil {
		return err
	}
	if info == nil {
		return nil
	}
	if info.File != in.GenFile() {
		r.Errorf(srcloc.Loc{File: info.File},
			"recompile with the link step that produced the program",
			"debug info is for file %q but the program is %q", info.File, in.GenFile())
	}
	nLines := len(in.Program.SourceLines())
	for i := range info.Funcs {
		f := &info.Funcs[i]
		fd := progFunc(in.Program, f)
		if fd == nil {
			r.Errorf(srcloc.Loc{File: info.File, Line: f.DeclLine},
				"regenerate the debug info from the final program",
				"debug info describes function %q (index %d) which the program does not define",
				f.Name, f.FuncIndex)
			continue
		}
		if fd.Line != f.DeclLine {
			r.Errorf(in.GenLoc(f.DeclLine), "",
				"function %q declared at line %d but debug info says line %d",
				f.Name, fd.Line, f.DeclLine)
		}
		prevPC := -1
		for _, e := range f.Lines {
			if e.PC <= prevPC {
				r.Errorf(in.GenLoc(e.Line), "",
					"function %q: line-table PC %d not increasing (previous %d)",
					f.Name, e.PC, prevPC)
			}
			prevPC = e.PC
			if e.Line < 1 || e.Line > nLines {
				r.Errorf(in.GenLoc(e.Line),
					"line-table entries must reference the generated file",
					"function %q: line-table entry for PC %d references line %d outside the %d-line source",
					f.Name, e.PC, e.Line, nLines)
				continue
			}
			if !realStmtLine(in.Program, e.Line) {
				r.Errorf(in.GenLoc(e.Line), "",
					"function %q: line-table entry for PC %d maps to line %d, which holds no statement (%q)",
					f.Name, e.PC, e.Line, strings.TrimSpace(in.Program.SourceLine(e.Line)))
			}
		}
	}
	return nil
}

// progFunc resolves a dwarfish function record against the program,
// accepting it only when index and name agree.
func progFunc(p *minic.Program, f *dwarfish.FuncInfo) *minic.FuncDecl {
	if f.FuncIndex < 0 || f.FuncIndex >= len(p.Funcs) {
		return nil
	}
	fd := p.Funcs[f.FuncIndex]
	if fd.Name != f.Name {
		return nil
	}
	return fd
}

// checkFrameVars verifies that every dwarfish variable record names a
// real frame slot of its function, with the right name, type, and
// parameter flag — the data `info locals`, `print`, and
// d2x_find_stack_var all depend on.
func checkFrameVars(in *Input, r *Reporter) error {
	info, err := in.Info()
	if err != nil {
		return err
	}
	if info == nil {
		return nil
	}
	for i := range info.Funcs {
		f := &info.Funcs[i]
		fd := progFunc(in.Program, f)
		if fd == nil {
			continue // reported by debug/line-table
		}
		loc := in.GenLoc(f.DeclLine)
		for _, v := range f.Vars {
			if v.Slot < 0 || v.Slot >= fd.NumSlots {
				r.Errorf(loc, "",
					"function %q: variable %q claims slot %d but the frame has %d slots",
					f.Name, v.Name, v.Slot, fd.NumSlots)
				continue
			}
			if want := fd.SlotNames[v.Slot]; v.Name != want {
				r.Errorf(loc, "",
					"function %q: slot %d is %q in the program but %q in debug info",
					f.Name, v.Slot, want, v.Name)
			}
			if want := fd.SlotTypes[v.Slot].String(); v.Type != want {
				r.Errorf(loc, "",
					"function %q: variable %q has type %q in the program but %q in debug info",
					f.Name, v.Name, want, v.Type)
			}
			if want := v.Slot < len(fd.Params); v.Param != want {
				r.Errorf(loc, "",
					"function %q: variable %q parameter flag is %v but slot %d says %v",
					f.Name, v.Name, v.Param, v.Slot, want)
			}
		}
	}
	return nil
}

// checkRecords verifies the D2X table records themselves: every record
// must anchor a real generated line in increasing order, its extended
// stack frames must carry a file and a positive line, and a record must
// say *something* (a record with no stack and no vars can never be
// produced by d2xc and would make xbt report context where none exists).
func checkRecords(in *Input, r *Reporter) error {
	tables, err := in.Tables()
	if err != nil {
		return err
	}
	if tables == nil {
		return nil
	}
	prevLine := 0
	for _, rec := range tables.Records {
		loc := in.GenLoc(rec.GenLine)
		if !realStmtLine(in.Program, rec.GenLine) {
			r.Errorf(loc, "only attach records to emitted statement lines",
				"D2X record anchored at line %d, which holds no generated statement", rec.GenLine)
		}
		if rec.GenLine <= prevLine {
			r.Errorf(loc, "",
				"D2X records out of order: line %d follows line %d", rec.GenLine, prevLine)
		}
		prevLine = rec.GenLine
		if len(rec.Stack) == 0 && len(rec.Vars) == 0 {
			r.Errorf(loc, "",
				"empty D2X record at line %d: no extended stack and no variables", rec.GenLine)
		}
		for i, fr := range rec.Stack {
			if fr.File == "" || fr.Line < 1 {
				r.Errorf(loc, "push_source_loc requires a file and a 1-based line",
					"line %d: extended stack frame #%d is malformed (file=%q line=%d)",
					rec.GenLine, i, fr.File, fr.Line)
			}
		}
		// Duplicate keys are legitimate (a per-line SetVar shadows a live
		// variable), but an empty key can never be looked up.
		for _, v := range rec.Vars {
			if v.Key == "" {
				r.Errorf(loc, "", "line %d: extended variable with empty key", rec.GenLine)
			}
		}
	}
	return nil
}

// handlerSig is the required signature of a runtime value handler:
// func string <name>(string key).
var handlerSig = minic.Signature{
	Params: []*minic.Type{minic.StringType},
	Result: minic.StringType,
}

// checkHandlers verifies that every rtv_handler referenced by the tables
// names a function that exists in the program with the handler calling
// convention — a dangling handler turns `xvars` into a crash at debug
// time.
func checkHandlers(in *Input, r *Reporter) error {
	tables, err := in.Tables()
	if err != nil {
		return err
	}
	if tables == nil {
		return nil
	}
	reported := map[string]bool{}
	for _, rec := range tables.Records {
		for _, v := range rec.Vars {
			if v.Kind != d2xc.VarHandler || reported[v.Val] {
				continue
			}
			loc := in.GenLoc(rec.GenLine)
			fi, ok := in.Program.FuncByName[v.Val]
			if !ok {
				reported[v.Val] = true
				r.Errorf(loc,
					fmt.Sprintf("generate `func string %s(string key)` into the program", v.Val),
					"variable %q names runtime value handler %q, which is not defined",
					v.Key, v.Val)
				continue
			}
			fd := in.Program.Funcs[fi]
			if !compatibleSig(funcSig(fd), handlerSig) {
				reported[v.Val] = true
				r.Errorf(loc,
					fmt.Sprintf("change %s to `func string %s(string key)`", v.Val, v.Val),
					"runtime value handler %q has signature %s; handlers must be (string) string",
					v.Val, funcSig(fd))
			}
		}
	}
	return nil
}

func funcSig(fd *minic.FuncDecl) minic.Signature {
	sig := minic.Signature{Result: fd.Result}
	for _, p := range fd.Params {
		sig.Params = append(sig.Params, p.Type)
	}
	return sig
}

func compatibleSig(got, want minic.Signature) bool {
	if len(got.Params) != len(want.Params) || !got.Result.Equal(want.Result) {
		return false
	}
	for i := range got.Params {
		if !got.Params[i].Equal(want.Params[i]) {
			return false
		}
	}
	return true
}

// macroCallRe matches a call target inside debugger macro text:
// `call d2x_runtime::command_xbt($rip, $rsp)` or
// `eval "%s", d2x_runtime::command_xbreak($rip, "$arg0")`.
var macroCallRe = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*(?:::[A-Za-z_][A-Za-z0-9_]*)*)\s*\(`)

// checkRuntimeLink verifies the link contract between the tables and the
// D2X runtime: a program carrying D2X tables must also register every
// command native the helper macros call (otherwise `xbt` dies at debug
// time), every native's signature must match the interface spec, and
// every call target in DSL-supplied macro text must resolve — after the
// debugger's `::` mangling — to a native or generated function.
func checkRuntimeLink(in *Input, r *Reporter) error {
	fileLoc := srcloc.Loc{File: in.GenFile()}
	if in.HasD2XTables() {
		for _, spec := range d2xr.CommandNatives() {
			nat, _, ok := in.Program.Natives.Lookup(spec.Name)
			if !ok {
				r.Errorf(fileLoc,
					"link with d2xr.Register (d2x.Link does this automatically)",
					"program carries D2X tables but native %q is not registered", spec.Name)
				continue
			}
			if !compatibleSig(nat.Sig, spec.Sig) && !nat.AnyResult {
				r.Errorf(fileLoc, "",
					"native %q registered with signature %s; the D2X runtime interface requires %s",
					spec.Name, nat.Sig, spec.Sig)
			}
		}
	}
	for i, line := range strings.Split(in.Macros, "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "call ") && !strings.HasPrefix(trimmed, "eval ") {
			continue
		}
		for _, m := range macroCallRe.FindAllStringSubmatch(trimmed, -1) {
			target := strings.ReplaceAll(m[1], "::", "_")
			if _, _, ok := in.Program.Natives.Lookup(target); ok {
				continue
			}
			if _, ok := in.Program.FuncByName[target]; ok {
				continue
			}
			r.Errorf(srcloc.Loc{File: "<macros>", Line: i + 1},
				fmt.Sprintf("define %q in the generated program or register it as a native", target),
				"macro calls %q, which resolves to nothing in the program", m[1])
		}
	}
	return nil
}

// checkRoundtrip verifies the wire format end to end: the tables decoded
// out of the debuggee's globals (the path the D2X runtime takes) must be
// record-for-record identical to the compile-time context that emitted
// them. Any divergence means d2xenc dropped or mangled debug state.
func checkRoundtrip(in *Input, r *Reporter) error {
	if in.Ctx == nil {
		return nil
	}
	tables, err := in.Tables()
	if err != nil {
		return err
	}
	if tables == nil {
		return nil
	}
	want := in.Ctx.Records()
	got := tables.Records
	if len(got) != len(want) {
		r.Errorf(srcloc.Loc{File: in.GenFile()}, "",
			"context has %d records but the encoded tables decode to %d", len(want), len(got))
		return nil
	}
	for i := range want {
		w, g := want[i], got[i]
		loc := in.GenLoc(w.GenLine)
		if g.GenLine != w.GenLine {
			r.Errorf(loc, "", "record %d: generated line %d round-trips as %d", i, w.GenLine, g.GenLine)
			continue
		}
		// The encoder deliberately drops column information (the tables
		// are line-granular), so compare stacks without Col.
		if !stacksEqualNoCol(w.Stack, g.Stack) {
			r.Errorf(loc, "", "record %d (line %d): extended stack did not round-trip:\ncompile time:\n%s\ndecoded:\n%s",
				i, w.GenLine, indent(w.Stack.String()), indent(g.Stack.String()))
		}
		if !varsEqual(w.Vars, g.Vars) {
			r.Errorf(loc, "", "record %d (line %d): extended variables did not round-trip (%d at compile time, %d decoded)",
				i, w.GenLine, len(w.Vars), len(g.Vars))
		}
	}
	return nil
}

func stacksEqualNoCol(a, b srcloc.Stack) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		x.Col, y.Col = 0, 0
		if x != y {
			return false
		}
	}
	return true
}

func varsEqual(a, b []d2xc.VarEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// liveRange is one live variable reconstructed from the journal.
type liveRange struct {
	key   string
	start int // generated line of CreateVar
	end   int // generated line where the var died; 0 while still live
}

// checkScopes replays the context's operation journal and verifies the
// scope discipline the tables cannot express: sections and scopes must
// nest, every scope opened inside a section must close before the
// section ends, variables must be created inside sections (a variable
// created outside is invisible to every record), and each variable's
// live range must stay inside one generated function.
func checkScopes(in *Input, r *Reporter) error {
	if in.Ctx == nil {
		return nil
	}
	var (
		depth        int
		sectionDepth int
		scopes       [][]*liveRange
		ranges       []*liveRange
	)
	scopes = append(scopes, nil) // outermost scope, never popped
	endScope := func(vars []*liveRange, line int) {
		for _, lr := range vars {
			if lr.end == 0 {
				lr.end = line
			}
		}
	}
	for _, ev := range in.Ctx.Journal() {
		loc := in.GenLoc(ev.Line)
		switch ev.Op {
		case d2xc.OpBeginSection:
			sectionDepth = depth
		case d2xc.OpEndSection:
			if depth != sectionDepth {
				r.Errorf(loc, "pop every scope pushed inside the section before EndSection",
					"section ended at line %d with %d scope(s) still open", ev.Line, depth-sectionDepth)
				// Close the leaked scopes so later sections are judged fresh.
				for depth > sectionDepth {
					endScope(scopes[len(scopes)-1], ev.Line)
					scopes = scopes[:len(scopes)-1]
					depth--
				}
			}
		case d2xc.OpPushScope:
			scopes = append(scopes, nil)
			depth++
		case d2xc.OpPopScope:
			endScope(scopes[len(scopes)-1], ev.Line)
			scopes = scopes[:len(scopes)-1]
			depth--
		case d2xc.OpCreateVar:
			if !ev.InSection {
				r.Warnf(loc, "create live variables after BeginSection",
					"live variable %q created outside any section; it will never appear in a record", ev.Key)
			}
			lr := &liveRange{key: ev.Key, start: ev.Line}
			scopes[len(scopes)-1] = append(scopes[len(scopes)-1], lr)
			ranges = append(ranges, lr)
		case d2xc.OpDeleteVar:
			for i := len(scopes) - 1; i >= 0; i-- {
				found := false
				for j := len(scopes[i]) - 1; j >= 0; j-- {
					if lr := scopes[i][j]; lr.key == ev.Key && lr.end == 0 {
						lr.end = ev.Line
						found = true
						break
					}
				}
				if found {
					break
				}
			}
		}
	}
	if depth != 0 {
		r.Errorf(srcloc.Loc{File: in.GenFile()},
			"balance PushScope/PopScope in the DSL compiler",
			"code generation finished with %d scope(s) still open", depth)
	}
	for _, lr := range ranges {
		if lr.end == 0 {
			r.Warnf(in.GenLoc(lr.start), "delete the variable or pop its scope",
				"live variable %q (created at line %d) was never deleted", lr.key, lr.start)
		}
	}
	// Live ranges must not straddle generated functions: a variable
	// created in one function's section but still live in another would
	// attach that context to the wrong frames.
	info, err := in.Info()
	if err != nil {
		return err
	}
	if info == nil {
		return nil
	}
	extents := funcExtents(info)
	for _, lr := range ranges {
		if lr.start == 0 || lr.end == 0 {
			continue
		}
		fn := extentContaining(extents, lr.start)
		if fn == nil {
			continue
		}
		if lr.end < lr.start || lr.end > fn.hi {
			r.Errorf(in.GenLoc(lr.start), "pop the variable's scope before the function ends",
				"live variable %q spans lines %d-%d, escaping function %q (lines %d-%d)",
				lr.key, lr.start, lr.end, fn.name, fn.lo, fn.hi)
		}
	}
	return nil
}

type funcExtent struct {
	name   string
	lo, hi int
}

// funcExtents derives each function's textual extent from the debug
// info: from its first line to just before the next function starts
// (the last function extends to the end of the file). Using the next
// function's start rather than the last line-table entry keeps trailing
// close-brace lines inside the extent.
func funcExtents(info *dwarfish.Info) []funcExtent {
	var out []funcExtent
	for i := range info.Funcs {
		f := &info.Funcs[i]
		if lo, _, ok := f.LineRange(); ok {
			out = append(out, funcExtent{name: f.Name, lo: lo, hi: 1 << 30})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].lo < out[b].lo })
	for i := 0; i+1 < len(out); i++ {
		out[i].hi = out[i+1].lo - 1
	}
	return out
}

func extentContaining(extents []funcExtent, line int) *funcExtent {
	for i := range extents {
		if line >= extents[i].lo && line <= extents[i].hi {
			return &extents[i]
		}
	}
	return nil
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
