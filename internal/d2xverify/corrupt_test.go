package d2xverify_test

// The corrupted-artifact suite: every check must actually fire, with a
// precise srcloc anchor, when fed a deliberately broken artifact. Each
// test corrupts exactly one layer and asserts on that check's findings
// only (a corrupt artifact legitimately trips neighbouring checks too).

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"d2x/internal/d2x/d2xc"
	"d2x/internal/d2x/d2xenc"
	"d2x/internal/d2xverify"
	"d2x/internal/dwarfish"
	"d2x/internal/minic"
	"d2x/internal/srcloc"
)

func compileSrc(t *testing.T, name, src string) *minic.Program {
	t.Helper()
	prog, err := minic.Compile(name, src, minic.NewNatives())
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return prog
}

// findings returns the named check's diagnostics and fails the test when
// there are none.
func findings(t *testing.T, rep *d2xverify.Report, check string) []d2xverify.Diagnostic {
	t.Helper()
	got := rep.ByCheck(check)
	if len(got) == 0 {
		t.Fatalf("check %s did not fire; full report:\n%s", check, rep)
	}
	return got
}

func wantAnchor(t *testing.T, d d2xverify.Diagnostic, file string, line int) {
	t.Helper()
	if d.Loc.File != file || d.Loc.Line != line {
		t.Fatalf("finding anchored at %s:%d, want %s:%d (%s)",
			d.Loc.File, d.Loc.Line, file, line, d)
	}
}

// simpleSrc is a healthy five-line program used as the base artifact for
// debug-info corruption.
const simpleSrc = `func int main() {
	int a = 1;
	int b = a + 2;
	printf("%d\n", b);
	return 0;
}
`

// withTables compiles src with a D2X table section emitted from ctx
// appended, the way d2x.Link assembles a build.
func withTables(t *testing.T, name, src string, ctx *d2xc.Context) *minic.Program {
	t.Helper()
	var b strings.Builder
	b.WriteString(src)
	if err := d2xenc.EmitTables(ctx, &b); err != nil {
		t.Fatal(err)
	}
	return compileSrc(t, name, b.String())
}

// ---- debug/line-table ----

func TestLineTableOutOfRangeLineFires(t *testing.T) {
	prog := compileSrc(t, "gen.c", simpleSrc)
	info := dwarfish.Build(prog)
	info.Funcs[0].Lines[0].Line = 9999
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, DebugBlob: info.Encode()})
	d := findings(t, rep, "debug/line-table")[0]
	wantAnchor(t, d, "gen.c", 9999)
	if !strings.Contains(d.Message, "outside") {
		t.Fatalf("unexpected message: %s", d)
	}
}

func TestLineTableBlankLineFires(t *testing.T) {
	// Line 7 of simpleSrc (after the closing brace) is the trailing empty
	// line — no statement can live there.
	prog := compileSrc(t, "gen.c", simpleSrc+"\n")
	info := dwarfish.Build(prog)
	info.Funcs[0].Lines[0].Line = 7
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, DebugBlob: info.Encode()})
	d := findings(t, rep, "debug/line-table")[0]
	wantAnchor(t, d, "gen.c", 7)
}

func TestLineTableNonMonotonicPCFires(t *testing.T) {
	prog := compileSrc(t, "gen.c", simpleSrc)
	info := dwarfish.Build(prog)
	lines := info.Funcs[0].Lines
	if len(lines) < 2 {
		t.Fatal("need at least two line entries")
	}
	lines[0], lines[1] = lines[1], lines[0]
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, DebugBlob: info.Encode()})
	d := findings(t, rep, "debug/line-table")[0]
	if !strings.Contains(d.Message, "not increasing") {
		t.Fatalf("unexpected message: %s", d)
	}
}

func TestLineTableGhostFunctionFires(t *testing.T) {
	prog := compileSrc(t, "gen.c", simpleSrc)
	info := dwarfish.Build(prog)
	info.Funcs[0].Name = "ghost"
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, DebugBlob: info.Encode()})
	d := findings(t, rep, "debug/line-table")[0]
	if !strings.Contains(d.Message, "ghost") {
		t.Fatalf("unexpected message: %s", d)
	}
}

// ---- debug/frame-vars ----

func TestFrameVarsCorruptionFires(t *testing.T) {
	prog := compileSrc(t, "gen.c", simpleSrc)

	info := dwarfish.Build(prog)
	info.Funcs[0].Vars[0].Slot = 99
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, DebugBlob: info.Encode()})
	d := findings(t, rep, "debug/frame-vars")[0]
	wantAnchor(t, d, "gen.c", 1)
	if !strings.Contains(d.Message, "slot 99") {
		t.Fatalf("unexpected message: %s", d)
	}

	info = dwarfish.Build(prog)
	info.Funcs[0].Vars[0].Name = "phantom"
	rep = d2xverify.Verify(&d2xverify.Input{Program: prog, DebugBlob: info.Encode()})
	findings(t, rep, "debug/frame-vars")

	info = dwarfish.Build(prog)
	info.Funcs[0].Vars[0].Type = "float[]"
	rep = d2xverify.Verify(&d2xverify.Input{Program: prog, DebugBlob: info.Encode()})
	findings(t, rep, "debug/frame-vars")

	info = dwarfish.Build(prog)
	info.Funcs[0].Vars[0].Param = true
	rep = d2xverify.Verify(&d2xverify.Input{Program: prog, DebugBlob: info.Encode()})
	findings(t, rep, "debug/frame-vars")
}

// ---- d2x/records ----

func TestRecordOnBlankLineFires(t *testing.T) {
	// simpleSrc+"\n" leaves line 7 blank; anchor a record there.
	ctx := d2xc.NewContext()
	if err := ctx.BeginSectionAt(7); err != nil {
		t.Fatal(err)
	}
	ctx.PushSourceLoc("app.dsl", 3, "main")
	if err := ctx.EndSection(); err != nil {
		t.Fatal(err)
	}
	prog := withTables(t, "gen.c", simpleSrc+"\n", ctx)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog})
	d := findings(t, rep, "d2x/records")[0]
	wantAnchor(t, d, "gen.c", 7)
	if !strings.Contains(d.Message, "no generated statement") {
		t.Fatalf("unexpected message: %s", d)
	}
}

func TestRecordsOutOfOrderFires(t *testing.T) {
	ctx := d2xc.NewContext()
	ctx.BeginSectionAt(4)
	ctx.PushSourceLoc("app.dsl", 1)
	ctx.EndSection()
	ctx.BeginSectionAt(2)
	ctx.PushSourceLoc("app.dsl", 2)
	ctx.EndSection()
	prog := withTables(t, "gen.c", simpleSrc, ctx)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog})
	d := findings(t, rep, "d2x/records")[0]
	wantAnchor(t, d, "gen.c", 2)
	if !strings.Contains(d.Message, "out of order") {
		t.Fatalf("unexpected message: %s", d)
	}
}

func TestMalformedStackFrameFires(t *testing.T) {
	ctx := d2xc.NewContext()
	ctx.BeginSectionAt(2)
	ctx.PushSourceLoc("", 0) // no file, line 0: an unusable frame
	ctx.EndSection()
	prog := withTables(t, "gen.c", simpleSrc, ctx)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog})
	d := findings(t, rep, "d2x/records")[0]
	wantAnchor(t, d, "gen.c", 2)
	if !strings.Contains(d.Message, "malformed") {
		t.Fatalf("unexpected message: %s", d)
	}
}

// ---- d2x/handlers ----

func TestDanglingHandlerFires(t *testing.T) {
	ctx := d2xc.NewContext()
	ctx.BeginSectionAt(2)
	ctx.PushSourceLoc("app.dsl", 1)
	ctx.SetVarHandler("frontier", d2xc.RTVHandler{FuncName: "__d2x_rtv_missing"})
	ctx.EndSection()
	prog := withTables(t, "gen.c", simpleSrc, ctx)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog})
	d := findings(t, rep, "d2x/handlers")[0]
	wantAnchor(t, d, "gen.c", 2)
	if !strings.Contains(d.Message, "__d2x_rtv_missing") || d.Hint == "" {
		t.Fatalf("unexpected finding: %s", d)
	}
}

func TestWrongHandlerSignatureFires(t *testing.T) {
	src := `func int bad_handler(int x) {
	return x;
}
func int main() {
	int a = bad_handler(1);
	printf("%d\n", a);
	return 0;
}
`
	ctx := d2xc.NewContext()
	ctx.BeginSectionAt(5)
	ctx.PushSourceLoc("app.dsl", 1)
	ctx.SetVarHandler("v", d2xc.RTVHandler{FuncName: "bad_handler"})
	ctx.EndSection()
	prog := withTables(t, "gen.c", src, ctx)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog})
	d := findings(t, rep, "d2x/handlers")[0]
	wantAnchor(t, d, "gen.c", 5)
	if !strings.Contains(d.Message, "(int) int") {
		t.Fatalf("unexpected message: %s", d)
	}
}

// ---- d2x/runtime-link ----

func TestMissingRuntimeNativesFire(t *testing.T) {
	// A program carrying tables but compiled without d2xr registration:
	// every command macro would die at debug time.
	ctx := d2xc.NewContext()
	ctx.BeginSectionAt(2)
	ctx.PushSourceLoc("app.dsl", 1)
	ctx.EndSection()
	prog := withTables(t, "gen.c", simpleSrc, ctx)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog})
	got := findings(t, rep, "d2x/runtime-link")
	if len(got) < 7 {
		t.Fatalf("expected all 7 runtime natives reported missing, got %d:\n%s", len(got), rep)
	}
}

func TestUnresolvedMacroTargetFires(t *testing.T) {
	prog := compileSrc(t, "gen.c", simpleSrc)
	macros := "define xghost\n  call dsl_runtime::no_such_command($rip)\nend\n"
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, Macros: macros})
	d := findings(t, rep, "d2x/runtime-link")[0]
	wantAnchor(t, d, "<macros>", 2)
	if !strings.Contains(d.Message, "dsl_runtime::no_such_command") {
		t.Fatalf("unexpected message: %s", d)
	}
}

// ---- d2x/roundtrip ----

func TestRoundtripMismatchFires(t *testing.T) {
	emitted := d2xc.NewContext()
	emitted.BeginSectionAt(2)
	emitted.PushSourceLoc("app.dsl", 1, "main")
	emitted.EndSection()

	// The claimed compile-time context disagrees on the DSL line.
	claimed := d2xc.NewContext()
	claimed.BeginSectionAt(2)
	claimed.PushSourceLoc("app.dsl", 42, "main")
	claimed.EndSection()

	prog := withTables(t, "gen.c", simpleSrc, emitted)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, Ctx: claimed})
	d := findings(t, rep, "d2x/roundtrip")[0]
	wantAnchor(t, d, "gen.c", 2)
	if !strings.Contains(d.Message, "did not round-trip") {
		t.Fatalf("unexpected message: %s", d)
	}
}

// ---- d2x/scopes ----

func TestScopeLeakAtEndSectionFires(t *testing.T) {
	ctx := d2xc.NewContext()
	ctx.BeginSectionAt(2)
	ctx.PushScope()
	ctx.PushSourceLoc("app.dsl", 1)
	ctx.EndSection() // scope never popped
	prog := compileSrc(t, "gen.c", simpleSrc)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, Ctx: ctx})
	d := findings(t, rep, "d2x/scopes")[0]
	wantAnchor(t, d, "gen.c", 2)
	if !strings.Contains(d.Message, "still open") {
		t.Fatalf("unexpected message: %s", d)
	}
}

func TestCreateVarOutsideSectionFires(t *testing.T) {
	ctx := d2xc.NewContext()
	ctx.CreateVar("orphan") // before any section: never visible
	ctx.BeginSectionAt(2)
	ctx.EndSection()
	if err := ctx.DeleteVar("orphan"); err != nil {
		t.Fatal(err)
	}
	prog := compileSrc(t, "gen.c", simpleSrc)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, Ctx: ctx})
	d := findings(t, rep, "d2x/scopes")[0]
	if d.Severity != d2xverify.SevWarning || !strings.Contains(d.Message, "orphan") {
		t.Fatalf("unexpected finding: %s", d)
	}
}

func TestUndeletedVarFires(t *testing.T) {
	ctx := d2xc.NewContext()
	ctx.BeginSectionAt(2)
	ctx.CreateVar("leak")
	ctx.EndSection()
	prog := compileSrc(t, "gen.c", simpleSrc)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, Ctx: ctx})
	d := findings(t, rep, "d2x/scopes")[0]
	wantAnchor(t, d, "gen.c", 2)
	if !strings.Contains(d.Message, "never deleted") {
		t.Fatalf("unexpected message: %s", d)
	}
}

func TestLiveRangeEscapingFunctionFires(t *testing.T) {
	// Two functions; a variable created inside helper's section survives
	// into main's lines.
	src := `func int helper(int x) {
	int h = x + 1;
	return h;
}
func int main() {
	int a = helper(1);
	printf("%d\n", a);
	return 0;
}
`
	prog := compileSrc(t, "gen.c", src)
	ctx := d2xc.NewContext()
	ctx.BeginSectionAt(2)
	ctx.PushScope()
	ctx.CreateVar("escapee")
	ctx.PushSourceLoc("app.dsl", 1)
	ctx.Nextl()
	ctx.Nextl()
	ctx.Nextl()
	ctx.Nextl() // curLine now 6: inside main
	ctx.PopScope()
	ctx.EndSection()
	rep := d2xverify.Verify(&d2xverify.Input{
		Program: prog, DebugBlob: dwarfish.Build(prog).Encode(), Ctx: ctx,
	})
	d := findings(t, rep, "d2x/scopes")[0]
	wantAnchor(t, d, "gen.c", 2)
	if !strings.Contains(d.Message, "escaping") {
		t.Fatalf("unexpected message: %s", d)
	}
}

// ---- minic dataflow lints ----

func TestUseBeforeInitFires(t *testing.T) {
	src := `func int main() {
	int x;
	int y = x + 1;
	printf("%d\n", y);
	return 0;
}
`
	prog := compileSrc(t, "gen.c", src)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog})
	d := findings(t, rep, "minic/use-before-init")[0]
	wantAnchor(t, d, "gen.c", 3)
	if !strings.Contains(d.Message, `"x"`) {
		t.Fatalf("unexpected message: %s", d)
	}
}

func TestUseBeforeInitBranchJoinFires(t *testing.T) {
	// Initialised on only one arm: still a use-before-init after the if.
	src := `func int main() {
	int x;
	int c = 1;
	if (c > 0) {
		x = 1;
	}
	printf("%d\n", x);
	return 0;
}
`
	prog := compileSrc(t, "gen.c", src)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog})
	d := findings(t, rep, "minic/use-before-init")[0]
	wantAnchor(t, d, "gen.c", 7)
}

func TestUnreachableStatementFires(t *testing.T) {
	src := `func int main() {
	printf("hi\n");
	return 0;
	printf("never\n");
}
`
	prog := compileSrc(t, "gen.c", src)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog})
	d := findings(t, rep, "minic/unreachable")[0]
	wantAnchor(t, d, "gen.c", 4)
}

func TestUnusedSlotFires(t *testing.T) {
	src := `func int main() {
	int unused = 3;
	printf("hi\n");
	return 0;
}
`
	prog := compileSrc(t, "gen.c", src)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog})
	d := findings(t, rep, "minic/unused-slot")[0]
	wantAnchor(t, d, "gen.c", 2)
	if d.Severity != d2xverify.SevWarning || !strings.Contains(d.Message, `"unused"`) {
		t.Fatalf("unexpected finding: %s", d)
	}
}

func TestDeadStoreFires(t *testing.T) {
	src := `func int main() {
	int x = 1;
	x = 2;
	printf("%d\n", x);
	return 0;
}
`
	prog := compileSrc(t, "gen.c", src)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog})
	d := findings(t, rep, "minic/dead-store")[0]
	wantAnchor(t, d, "gen.c", 2)
	if !strings.Contains(d.Message, "immediately overwritten at line 3") {
		t.Fatalf("unexpected message: %s", d)
	}
}

// TestDeadStoreRespectsAddressTaken: a store observed through &x must
// not be flagged even when the next statement overwrites the variable.
func TestDeadStoreRespectsAddressTaken(t *testing.T) {
	src := `func void touch(int* p) {
	printf("%d\n", *p);
}
func int main() {
	int x = 1;
	x = 2;
	touch(&x);
	return 0;
}
`
	prog := compileSrc(t, "gen.c", src)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog})
	if got := rep.ByCheck("minic/dead-store"); len(got) != 0 {
		t.Fatalf("dead-store fired on an address-taken local:\n%s", rep)
	}
}

// ---- arch/import-graph ----

func TestForbiddenDebuggerImportFires(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "debugger")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package debugger\n\nimport _ \"d2x/internal/d2x/d2xc\"\n"
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := d2xverify.VerifyRepo(root)
	d := findings(t, rep, "arch/import-graph")[0]
	wantAnchor(t, d, "internal/debugger/bad.go", 3)
	if !strings.Contains(d.Message, "d2x/internal/d2x/d2xc") {
		t.Fatalf("unexpected message: %s", d)
	}
}

// TestForbiddenWireImportFires: the wire protocol layer must stay a pure
// framing package — importing any piece of the debug stack is flagged.
func TestForbiddenWireImportFires(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "d2x", "wire")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package wire\n\nimport _ \"d2x/internal/debugger\"\n"
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := d2xverify.VerifyRepo(root)
	d := findings(t, rep, "arch/import-graph")[0]
	wantAnchor(t, d, "internal/d2x/wire/bad.go", 3)
	if !strings.Contains(d.Message, "d2x/internal/debugger") {
		t.Fatalf("unexpected message: %s", d)
	}
}

// TestImportRuleSkipsMissingDir: a constrained directory absent from the
// tree under check (fixture roots, partial checkouts) is not an error —
// the rule constrains files, and there are none.
func TestImportRuleSkipsMissingDir(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "debugger")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package debugger\n\nimport _ \"d2x/internal/dwarfish\"\n"
	if err := os.WriteFile(filepath.Join(dir, "ok.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// No internal/d2x/wire in this root; the wire rule must be skipped,
	// not fail the whole check.
	rep := d2xverify.VerifyRepo(root)
	if got := rep.ByCheck("arch/import-graph"); len(got) != 0 {
		t.Fatalf("import-graph produced findings on a tree missing a constrained dir:\n%s", rep)
	}
}

// TestImportRuleDoesNotOvermatch: d2x/internal/d2xverify shares the
// "d2x/internal/d2x" string prefix but is a different package and must
// not be caught by that rule entry (it has its own).
func TestImportRuleDoesNotOvermatch(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "debugger")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package debugger\n\nimport _ \"d2x/internal/dwarfish\"\n"
	if err := os.WriteFile(filepath.Join(dir, "ok.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := d2xverify.VerifyRepo(root)
	if got := rep.ByCheck("arch/import-graph"); len(got) != 0 {
		t.Fatalf("import-graph fired on an allowed import:\n%s", rep)
	}
}

// ---- arch/markers (fixtures; satellite 3) ----

func markerErrors(diags []d2xverify.Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Severity == d2xverify.SevError {
			n++
		}
	}
	return n
}

func TestMarkerFixtures(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		errors  int
		needle  string
		anchors []srcloc.Loc
	}{
		{
			name:   "balanced",
			src:    "package x\n// D2X:BEGIN a\nvar a int\n// D2X:END a\n",
			errors: 0,
		},
		{
			name:    "unterminated",
			src:     "package x\n// D2X:BEGIN a\nvar a int\n",
			errors:  1,
			needle:  "never closed",
			anchors: []srcloc.Loc{{File: "x.go", Line: 2}},
		},
		{
			name:    "stray-end",
			src:     "package x\nvar a int\n// D2X:END a\n",
			errors:  1,
			needle:  "without a matching",
			anchors: []srcloc.Loc{{File: "x.go", Line: 3}},
		},
		{
			name:   "nested",
			src:    "package x\n// D2X:BEGIN a\n// D2X:BEGIN b\nvar a int\n// D2X:END b\n// D2X:END a\n",
			errors: 1,
			needle: "inside the hunk",
		},
		{
			name:    "embedded-in-code",
			src:     "package x\nvar s = \"D2X:BEGIN trap\"\n// D2X:END trap\n",
			errors:  1,
			needle:  "misclassify",
			anchors: []srcloc.Loc{{File: "x.go", Line: 2}},
		},
		{
			name:   "removed-without-count",
			src:    "package x\n// D2X:REMOVED lots\nvar a int\n",
			errors: 1,
			needle: "positive line count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := d2xverify.LintMarkers("x.go", tc.src)
			if got := markerErrors(diags); got != tc.errors {
				t.Fatalf("got %d errors, want %d:\n%v", got, tc.errors, diags)
			}
			if tc.needle != "" {
				found := false
				for _, d := range diags {
					if strings.Contains(d.Message, tc.needle) {
						found = true
					}
				}
				if !found {
					t.Fatalf("no finding mentions %q:\n%v", tc.needle, diags)
				}
			}
			for _, want := range tc.anchors {
				found := false
				for _, d := range diags {
					if d.Loc.File == want.File && d.Loc.Line == want.Line {
						found = true
					}
				}
				if !found {
					t.Fatalf("no finding anchored at %s:%d:\n%v", want.File, want.Line, diags)
				}
			}
			// Agreement with the LoC counter: balanced fixtures count the
			// same hunks; broken ones are rejected by the lint.
			if tc.errors == 0 {
				want := strings.Count(tc.src, "D2X:BEGIN")
				if got := d2xverify.BalancedHunks("x.go", tc.src); got != want {
					t.Fatalf("BalancedHunks = %d, want %d", got, want)
				}
			} else if d2xverify.BalancedHunks("x.go", tc.src) != -1 {
				t.Fatal("BalancedHunks accepted a broken fixture")
			}
		})
	}
}
