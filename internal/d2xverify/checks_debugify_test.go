package d2xverify

// White-box tests for the opt/debugify-* checks. The declared optimiser
// passes are (and must stay) preservation-clean, so the routing of
// findings into diagnostics is tested against a fabricated debugify
// report; the healthy-path test proves the real analysis runs and
// covers every declared pass.

import (
	"strings"
	"testing"

	"d2x/internal/minic"
	"d2x/internal/minic/debugify"
)

func runDebugifyChecks(in *Input) *Report {
	rep := &Report{}
	for _, c := range debugifyChecks() {
		r := &Reporter{check: c.Name, diags: &rep.Diags}
		if err := c.Run(in, r); err != nil {
			r.Errorf(in.GenLoc(0), "", "check failed to run: %v", err)
		}
	}
	return rep
}

func TestDebugifyChecksQuietOnHealthyProgram(t *testing.T) {
	prog, err := minic.Compile("gen.c", `
func int main() {
	int a = 2 + 3;
	if (false) {
		a = 9;
	}
	return a * 1;
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := &Input{Program: prog}
	rep := runDebugifyChecks(in)
	if len(rep.Diags) != 0 {
		t.Fatalf("healthy program tripped debugify checks:\n%s", rep)
	}
	dbg, err := in.Debugify()
	if err != nil || dbg == nil {
		t.Fatalf("Debugify() = (%v, %v), want report", dbg, err)
	}
	if len(dbg.Passes) != len(minic.Passes()) {
		t.Fatalf("report covers %d passes, declared %d", len(dbg.Passes), len(minic.Passes()))
	}
	total := 0
	for _, pr := range dbg.Passes {
		total += pr.Rewrites
	}
	if total == 0 {
		t.Fatal("no rewrites recorded on an optimisable program")
	}
}

func TestDebugifyChecksRouteFindings(t *testing.T) {
	prog, err := minic.Compile("gen.c", "func int main() { return 0; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	in := &Input{Program: prog}
	// Inject a fabricated analysis result: one finding of every kind,
	// each anchored at a distinct line.
	in.dbgDone = true
	in.dbg = &debugify.Report{Passes: []debugify.PassReport{{
		Pass: "fold-constants",
		Findings: []debugify.Finding{
			{Pass: "fold-constants", Kind: debugify.FindingLocMissing, Line: 11, Detail: "stmt lost location"},
			{Pass: "fold-constants", Kind: debugify.FindingLocInvented, Line: 12, Detail: "unassigned location"},
			{Pass: "fold-constants", Kind: debugify.FindingLocReattributed, Line: 13, Detail: "moved without remap"},
			{Pass: "fold-constants", Kind: debugify.FindingVarWidened, Line: 0, Detail: "gained variable"},
			{Pass: "fold-constants", Kind: debugify.FindingCheckFailed, Line: 0, Detail: "does not type-check"},
		},
	}}}
	rep := runDebugifyChecks(in)

	wantCounts := map[string]int{
		"opt/debugify-location":      2,
		"opt/debugify-reattribution": 1,
		"opt/debugify-variables":     2,
	}
	for check, want := range wantCounts {
		got := rep.ByCheck(check)
		if len(got) != want {
			t.Errorf("%s fired %d times, want %d; report:\n%s", check, len(got), want, rep)
			continue
		}
		for _, d := range got {
			if d.Severity != SevError {
				t.Errorf("%s severity %v, want error", check, d.Severity)
			}
			if !strings.Contains(d.Message, `"fold-constants"`) {
				t.Errorf("%s diagnostic does not name the pass: %s", check, d)
			}
		}
	}
	if d := rep.ByCheck("opt/debugify-reattribution")[0]; d.Loc.File != "gen.c" || d.Loc.Line != 13 {
		t.Errorf("re-attribution anchored at %s:%d, want gen.c:13", d.Loc.File, d.Loc.Line)
	}
}

func TestDebugifyChecksSkipWithoutSource(t *testing.T) {
	prog, err := minic.Compile("gen.c", "func int main() { return 0; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	prog.SourceText = ""
	in := &Input{Program: prog}
	if rep := runDebugifyChecks(in); len(rep.Diags) != 0 {
		t.Fatalf("sourceless program tripped debugify checks:\n%s", rep)
	}
	if dbg, err := in.Debugify(); dbg != nil || err != nil {
		t.Fatalf("Debugify() without source = (%v, %v), want (nil, nil)", dbg, err)
	}
}
