package d2xverify_test

// Tests for the effect & termination check family (checks_effects.go)
// and the differential optimiser check (checks_optimize.go). Same
// conventions as corrupt_test.go: one corruption per test, assertions
// on that check's findings only.

import (
	"strings"
	"testing"

	"d2x/internal/d2x/d2xc"
	"d2x/internal/d2x/d2xenc"
	"d2x/internal/d2xverify"
	"d2x/internal/minic"
	"d2x/internal/minic/effects"
)

// handlerCtx registers a single rtv handler named fn.
func handlerCtx(t *testing.T, fn string) *d2xc.Context {
	t.Helper()
	ctx := d2xc.NewContext()
	if err := ctx.BeginSectionAt(2); err != nil {
		t.Fatal(err)
	}
	ctx.PushSourceLoc("app.dsl", 1)
	ctx.SetVarHandler("frontier", d2xc.RTVHandler{FuncName: fn})
	if err := ctx.EndSection(); err != nil {
		t.Fatal(err)
	}
	return ctx
}

// withTablesFX is withTables plus explicit effect-summary rows.
func withTablesFX(t *testing.T, name, src string, ctx *d2xc.Context, fx []d2xenc.HandlerEffect) *minic.Program {
	t.Helper()
	var b strings.Builder
	b.WriteString(src)
	if err := d2xenc.EmitTablesFX(ctx, fx, &b); err != nil {
		t.Fatal(err)
	}
	return compileSrc(t, name, b.String())
}

const writingHandlerSrc = `global int hits = 0;
func string __d2x_rtv_bad(string key) {
	hits = hits + 1;
	return to_str(hits);
}
func int main() {
	printf("%d\n", hits);
	return 0;
}
`

func TestWritingHandlerFires(t *testing.T) {
	ctx := handlerCtx(t, "__d2x_rtv_bad")
	prog := withTables(t, "gen.c", writingHandlerSrc, ctx)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, Ctx: ctx})
	d := findings(t, rep, "d2x/handler-effects")[0]
	if d.Severity != d2xverify.SevError {
		t.Fatalf("severity = %v, want SevError", d.Severity)
	}
	wantAnchor(t, d, "gen.c", 3) // the store, not the declaration
	if !strings.Contains(d.Message, "writes debuggee state") || !strings.Contains(d.Message, "__d2x_rtv_bad") {
		t.Fatalf("unexpected message: %s", d)
	}
	if !strings.Contains(d.Hint, "read-only") {
		t.Fatalf("unexpected hint: %s", d)
	}
}

func TestUnboundedHandlerWarns(t *testing.T) {
	src := `func string __d2x_rtv_spin(string key) {
	while (true) { }
	return "";
}
func int main() { return 0; }
`
	ctx := handlerCtx(t, "__d2x_rtv_spin")
	prog := withTables(t, "gen.c", src, ctx)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, Ctx: ctx})
	d := findings(t, rep, "d2x/handler-effects")[0]
	if d.Severity != d2xverify.SevWarning {
		t.Fatalf("severity = %v, want SevWarning (fuel guard catches it at runtime)", d.Severity)
	}
	wantAnchor(t, d, "gen.c", 2)
	if !strings.Contains(d.Message, "no provable exit") {
		t.Fatalf("unexpected message: %s", d)
	}
}

func TestSafeHandlerIsQuiet(t *testing.T) {
	src := `global int g = 3;
func string __d2x_rtv_ok(string key) {
	int acc = 0;
	for (int i = 0; i < g; i++) { acc = acc + i; }
	return to_str(acc);
}
func int main() { return 0; }
`
	ctx := handlerCtx(t, "__d2x_rtv_ok")
	// The loop bound is a global, so the analysis classifies it
	// fuel-bounded (not trivial): safe to run, fuel guard attached.
	fx := []d2xenc.HandlerEffect{{
		Handler: "__d2x_rtv_ok",
		Mask:    int64(effects.ReadsHeap),
		Loop:    int64(effects.LoopFuelBounded),
	}}
	prog := withTablesFX(t, "gen.c", src, ctx, fx)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, Ctx: ctx})
	for _, check := range []string{"d2x/handler-effects", "d2x/eval-effects", "d2x/effect-tables"} {
		if got := rep.ByCheck(check); len(got) != 0 {
			t.Errorf("%s fired on a safe handler: %v", check, got)
		}
	}
}

// TestWirePathHandlerEffects: with no compile-time context, the handler
// list comes from the decoded tables — the already-linked-build path.
func TestWirePathHandlerEffects(t *testing.T) {
	ctx := handlerCtx(t, "__d2x_rtv_bad")
	prog := withTables(t, "gen.c", writingHandlerSrc, ctx)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog}) // Ctx deliberately absent
	d := findings(t, rep, "d2x/handler-effects")[0]
	if d.Severity != d2xverify.SevError {
		t.Fatalf("severity = %v, want SevError", d.Severity)
	}
}

func TestMacroEvalTargetFires(t *testing.T) {
	src := `global int calls = 0;
func int dsl_runtime_bump(int x) {
	calls = calls + 1;
	return calls + x;
}
func int main() { return 0; }
`
	prog := compileSrc(t, "gen.c", src)
	macros := "define xbump\n  call dsl_runtime::bump($rip)\nend\n"
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, Macros: macros})
	d := findings(t, rep, "d2x/eval-effects")[0]
	wantAnchor(t, d, "<macros>", 2)
	if !strings.Contains(d.Message, "dsl_runtime::bump") || !strings.Contains(d.Message, "writes debuggee state") {
		t.Fatalf("unexpected message: %s", d)
	}
}

// TestEffectTablesUnderstatementFires: tables that claim a writing
// handler is pure are confidently-wrong metadata — SevError.
func TestEffectTablesUnderstatementFires(t *testing.T) {
	ctx := handlerCtx(t, "__d2x_rtv_bad")
	fx := []d2xenc.HandlerEffect{{Handler: "__d2x_rtv_bad", Mask: 0, Loop: 0}} // claims pure
	prog := withTablesFX(t, "gen.c", writingHandlerSrc, ctx, fx)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, Ctx: ctx})
	d := findings(t, rep, "d2x/effect-tables")[0]
	if d.Severity != d2xverify.SevError {
		t.Fatalf("severity = %v, want SevError", d.Severity)
	}
	if !strings.Contains(d.Message, "understate") {
		t.Fatalf("unexpected message: %s", d)
	}
}

// TestEffectTablesMissingRowWarns: FX columns present but the registered
// handler has no row — the runtime degrades to its most conservative
// guard, worth a warning.
func TestEffectTablesMissingRowWarns(t *testing.T) {
	ctx := handlerCtx(t, "__d2x_rtv_bad")
	prog := withTablesFX(t, "gen.c", writingHandlerSrc, ctx, nil) // columns, no rows
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, Ctx: ctx})
	var warn *d2xverify.Diagnostic
	for _, d := range findings(t, rep, "d2x/effect-tables") {
		if d.Severity == d2xverify.SevWarning {
			warn = &d
			break
		}
	}
	if warn == nil {
		t.Fatal("no SevWarning for missing FX row")
	}
	if !strings.Contains(warn.Message, "no recorded effect summary") {
		t.Fatalf("unexpected message: %s", warn)
	}
}

// TestAccuratePessimisticTablesQuiet: a recorded summary that is *more*
// pessimistic than reality is allowed (link analyses unoptimised source).
func TestAccuratePessimisticTablesQuiet(t *testing.T) {
	src := `func string __d2x_rtv_pure(string key) { return key; }
func int main() { return 0; }
`
	ctx := handlerCtx(t, "__d2x_rtv_pure")
	fx := []d2xenc.HandlerEffect{{
		Handler: "__d2x_rtv_pure",
		Mask:    int64(3), // claims reads+writes — worse than the pure reality
		Loop:    int64(2), // claims unprovable
	}}
	prog := withTablesFX(t, "gen.c", src, ctx, fx)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog, Ctx: ctx})
	if got := rep.ByCheck("d2x/effect-tables"); len(got) != 0 {
		t.Errorf("pessimistic-but-sound tables flagged: %v", got)
	}
}

// ---- opt/line-attribution ----

func TestOptimizeLineAttributionClean(t *testing.T) {
	// A program that actually exercises folding and dead-code removal
	// must come out clean: every surviving statement keeps its line.
	src := `func int main() {
	int a = 2 + 3 * 4;
	if (false) { printf("dead\n"); }
	return a;
	int ghost = 9;
}
`
	prog := compileSrc(t, "gen.c", src)
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog})
	if got := rep.ByCheck("opt/line-attribution"); len(got) != 0 {
		t.Errorf("line-attribution fired on healthy optimiser: %v", got)
	}
}

func TestOptimizeLineAttributionSkipsGarbageSource(t *testing.T) {
	prog := compileSrc(t, "gen.c", simpleSrc)
	prog.SourceText = "not { parseable ("
	rep := d2xverify.Verify(&d2xverify.Input{Program: prog})
	if got := rep.ByCheck("opt/line-attribution"); len(got) != 0 {
		t.Errorf("check should skip unparseable SourceText: %v", got)
	}
}
