package d2xverify

// Architecture lints over the repository source tree. These enforce the
// two structural invariants of the reproduction:
//
//  1. The debugger stays D2X-free (paper §3.2/§4.3: D2X works through
//     stock call/eval, so the debugger must not link any d2x package).
//  2. The delta markers that drive the Tables 3/4 accounting are
//     well-formed, since internal/loc's counter trusts them blindly.
//
// Since PR 8 the detection cores live in internal/d2xvet (the repo's
// analysis-pass suite), where the same rules run under cmd/d2xvet with
// the rest of the static checks; this file adapts the structured
// findings back onto the Reporter so Build.Verify() output is unchanged.

import (
	"d2x/internal/d2xvet"
	"d2x/internal/srcloc"
)

func repoChecks() []RepoCheck {
	return []RepoCheck{
		{
			Name: "arch/import-graph",
			Desc: "the debugger imports no D2X or DSL packages",
			Run:  checkImportGraph,
		},
		{
			Name: "arch/markers",
			Desc: "D2X delta markers in counted components are well-formed",
			Run:  checkMarkers,
		},
	}
}

// ImportRule forbids a package subtree from importing certain import
// paths. A path is forbidden when it equals a prefix exactly or lives
// under it.
type ImportRule = d2xvet.ImportRule

// DefaultImportRules returns the repository's architecture constraints.
func DefaultImportRules() []ImportRule { return d2xvet.DefaultImportRules() }

// reportFindings adapts d2xvet's structured arch findings to the
// Reporter, preserving the exact message and hint text.
func reportFindings(r *Reporter, findings []d2xvet.ArchFinding) {
	for _, f := range findings {
		loc := srcloc.Loc{File: f.File, Line: f.Line}
		if f.Warning {
			r.Warnf(loc, f.Hint, "%s", f.Message)
		} else {
			r.Errorf(loc, f.Hint, "%s", f.Message)
		}
	}
}

// checkImportGraph parses the import clauses (only) of every Go file in
// each constrained directory and flags forbidden imports at the line of
// the import spec.
func checkImportGraph(root string, r *Reporter) error {
	findings, err := d2xvet.ImportGraphFindings(root, DefaultImportRules())
	if err != nil {
		return err
	}
	reportFindings(r, findings)
	return nil
}

// markerComponentDirs are the directories internal/loc counts for the
// Tables 3/4 deltas.
func markerComponentDirs() []string { return d2xvet.MarkerComponentDirs() }

// LintMarkerSource lints the delta markers of one Go source file,
// mirroring internal/loc's CountSource semantics exactly. Exported so
// fixture tests (and DSLs with their own counted components) can lint
// in-memory sources; the arch/markers repo check applies it to every
// counted component file.
func LintMarkerSource(file, src string, r *Reporter) {
	reportFindings(r, d2xvet.MarkerSourceFindings(file, src))
}

// LintMarkers runs the marker lint over one in-memory source and
// returns its findings — the entry point for fixture tests.
func LintMarkers(file, src string) []Diagnostic {
	var diags []Diagnostic
	LintMarkerSource(file, src, &Reporter{check: "arch/markers", diags: &diags})
	sortDiags(diags)
	return diags
}

// BalancedHunks returns the number of well-formed hunks in src when the
// lint reports no errors, and -1 otherwise. Tests use it to assert
// agreement with internal/loc's MarkedHunks count.
func BalancedHunks(file, src string) int {
	return d2xvet.BalancedMarkerHunks(file, src)
}

// checkMarkers runs the marker lint over every file the LoC accounting
// reads: non-test Go files in the counted component directories,
// excluding d2x_*.go files (those are attributed whole, so markers
// inside them never reach the counter).
func checkMarkers(root string, r *Reporter) error {
	findings, err := d2xvet.MarkerFindings(root)
	if err != nil {
		return err
	}
	reportFindings(r, findings)
	return nil
}
