package d2xverify

// Architecture lints over the repository source tree. These enforce the
// two structural invariants of the reproduction:
//
//  1. The debugger stays D2X-free (paper §3.2/§4.3: D2X works through
//     stock call/eval, so the debugger must not link any d2x package).
//  2. The delta markers that drive the Tables 3/4 accounting are
//     well-formed, since internal/loc's counter trusts them blindly.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"d2x/internal/srcloc"
)

func repoChecks() []RepoCheck {
	return []RepoCheck{
		{
			Name: "arch/import-graph",
			Desc: "the debugger imports no D2X or DSL packages",
			Run:  checkImportGraph,
		},
		{
			Name: "arch/markers",
			Desc: "D2X delta markers in counted components are well-formed",
			Run:  checkMarkers,
		},
	}
}

// ImportRule forbids a package subtree from importing certain import
// paths. A path is forbidden when it equals a prefix exactly or lives
// under it.
type ImportRule struct {
	Dir       string // repo-relative directory whose files are constrained
	Forbidden []string
	Why       string
}

// DefaultImportRules returns the repository's architecture constraints.
// The debugger must stay ignorant of D2X (it serves `xbt` through stock
// call/eval only) and of every DSL layer above it.
func DefaultImportRules() []ImportRule {
	return []ImportRule{
		{
			Dir: "internal/debugger",
			Forbidden: []string{
				"d2x/internal/d2x",
				"d2x/internal/d2xverify",
				"d2x/internal/buildit",
				"d2x/internal/graphit",
				"d2x/internal/einsum",
			},
			Why: "the debugger must work through stock call/eval with no D2X knowledge",
		},
		{
			Dir: "internal/d2x/wire",
			Forbidden: []string{
				"d2x/internal/d2x/d2xc",
				"d2x/internal/d2x/d2xenc",
				"d2x/internal/d2x/d2xr",
				"d2x/internal/d2x/macros",
				"d2x/internal/d2x/serve",
				"d2x/internal/d2x/session",
				"d2x/internal/d2xverify",
				"d2x/internal/debugger",
				"d2x/internal/minic",
				"d2x/internal/dwarfish",
				"d2x/internal/buildit",
				"d2x/internal/graphit",
				"d2x/internal/einsum",
				"d2x/internal/obs",
			},
			Why: "the wire protocol is a pure framing layer: a client must link it without linking the debug stack",
		},
	}
}

func forbiddenBy(imp string, prefixes []string) string {
	for _, p := range prefixes {
		if imp == p || strings.HasPrefix(imp, p+"/") {
			return p
		}
	}
	return ""
}

// checkImportGraph parses the import clauses (only) of every Go file in
// each constrained directory and flags forbidden imports at the line of
// the import spec.
func checkImportGraph(root string, r *Reporter) error {
	for _, rule := range DefaultImportRules() {
		dir := filepath.Join(root, rule.Dir)
		entries, err := os.ReadDir(dir)
		if os.IsNotExist(err) {
			// Constrained directories need not exist in every tree the
			// check runs over (fixture roots in tests, partial checkouts);
			// a rule constrains files, so no files means nothing to flag.
			continue
		}
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, spec := range f.Imports {
				imp, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if p := forbiddenBy(imp, rule.Forbidden); p != "" {
					rel := filepath.ToSlash(filepath.Join(rule.Dir, e.Name()))
					r.Errorf(srcloc.Loc{File: rel, Line: fset.Position(spec.Pos()).Line},
						rule.Why,
						"%s imports %q, forbidden under %q", rel, imp, p)
				}
			}
		}
	}
	return nil
}

// markerComponentDirs are the directories internal/loc counts for the
// Tables 3/4 deltas — the only places marker well-formedness changes a
// published number.
func markerComponentDirs() []string {
	return []string{
		"internal/graphit",
		"internal/buildit",
		"internal/d2x/d2xc",
		"internal/d2x/d2xenc",
		"internal/d2x/d2xr",
		"internal/d2x/session",
		"internal/d2x/macros",
	}
}

const (
	markBegin   = "D2X:BEGIN"
	markEnd     = "D2X:END"
	markRemoved = "D2X:REMOVED"
)

// LintMarkerSource lints the delta markers of one Go source file,
// mirroring internal/loc's CountSource semantics exactly: any line
// containing the BEGIN substring opens a hunk and any line containing
// the END substring closes one, so a marker substring in an unexpected
// place silently skews the published delta. Exported so fixture tests
// (and DSLs with their own counted components) can lint in-memory
// sources; the arch/markers repo check applies it to every counted
// component file.
func LintMarkerSource(file, src string, r *Reporter) {
	open := 0
	openLine := 0
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		loc := srcloc.Loc{File: file, Line: i + 1}
		hasBegin := strings.Contains(line, markBegin)
		hasEnd := !hasBegin && strings.Contains(line, markEnd)
		switch {
		case hasBegin:
			if !strings.HasPrefix(line, "// "+markBegin) {
				r.Errorf(loc, "put the marker on its own `// D2X:BEGIN <label>` comment line",
					"marker %q embedded in a non-marker line; the LoC counter will misclassify it", markBegin)
			} else if strings.TrimSpace(strings.TrimPrefix(line, "// "+markBegin)) == "" {
				r.Warnf(loc, "label the hunk, e.g. `// D2X:BEGIN frontier-var`",
					"unlabelled %s hunk", markBegin)
			}
			if open > 0 {
				r.Errorf(loc, "close the previous hunk first; hunks cannot nest",
					"%s inside the hunk opened at line %d", markBegin, openLine)
			} else {
				openLine = i + 1
			}
			open++
		case hasEnd:
			if !strings.HasPrefix(line, "// "+markEnd) {
				r.Errorf(loc, "put the marker on its own `// D2X:END <label>` comment line",
					"marker %q embedded in a non-marker line; the LoC counter will misclassify it", markEnd)
			}
			if open == 0 {
				r.Errorf(loc, "remove the stray marker or add the missing D2X:BEGIN",
					"%s without a matching %s", markEnd, markBegin)
			} else {
				open--
			}
		case strings.Contains(line, markRemoved):
			// `// D2X:REMOVED n` records deleted lines (DESIGN.md §5); the
			// count must be a positive integer for the −n column to add up.
			rest := ""
			if idx := strings.Index(line, markRemoved); idx >= 0 {
				rest = strings.TrimSpace(line[idx+len(markRemoved):])
			}
			count := rest
			if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
				count = rest[:sp]
			}
			if n, err := strconv.Atoi(count); err != nil || n <= 0 {
				r.Errorf(loc, "write `// D2X:REMOVED <n>` with the number of deleted lines",
					"%s marker without a positive line count (got %q)", markRemoved, rest)
			}
		}
	}
	if open > 0 {
		r.Errorf(srcloc.Loc{File: file, Line: openLine},
			"add the missing `// D2X:END` before the end of the file",
			"hunk opened at line %d is never closed", openLine)
	}
}

// LintMarkers runs the marker lint over one in-memory source and
// returns its findings — the entry point for fixture tests.
func LintMarkers(file, src string) []Diagnostic {
	var diags []Diagnostic
	LintMarkerSource(file, src, &Reporter{check: "arch/markers", diags: &diags})
	sortDiags(diags)
	return diags
}

// BalancedHunks returns the number of well-formed hunks in src when the
// lint reports no errors, and -1 otherwise. Tests use it to assert
// agreement with internal/loc's MarkedHunks count.
func BalancedHunks(file, src string) int {
	for _, d := range LintMarkers(file, src) {
		if d.Severity == SevError {
			return -1
		}
	}
	return strings.Count(src, markBegin)
}

// checkMarkers runs the marker lint over every file the LoC accounting
// reads: non-test Go files in the counted component directories,
// excluding d2x_*.go files (those are attributed whole, so markers
// inside them never reach the counter).
func checkMarkers(root string, r *Reporter) error {
	for _, dir := range markerComponentDirs() {
		full := filepath.Join(root, dir)
		entries, err := os.ReadDir(full)
		if err != nil {
			continue // component not built yet; loc reports this separately
		}
		var names []string
		for _, e := range entries {
			n := e.Name()
			if e.IsDir() || !strings.HasSuffix(n, ".go") ||
				strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, "d2x_") {
				continue
			}
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			data, err := os.ReadFile(filepath.Join(full, n))
			if err != nil {
				return err
			}
			LintMarkerSource(filepath.ToSlash(filepath.Join(dir, n)), string(data), r)
		}
	}
	return nil
}
