package d2xverify

// Effect & termination checks — the verifier's second major analysis
// family (after the cross-layer consistency checks). The paper's design
// rests on the debugger `call`ing generated code inside the *paused*
// debuggee; these checks run internal/minic/effects over the compiled
// program and reject, before any debug session starts, handlers that
// would write debuggee state (SevError — session corruption) or loop
// without a provable exit (SevWarning — the runtime fuel guard will
// catch it, at the cost of burning the whole budget).
//
// The checks work from either side of the wire: with the compile-time
// context when the caller still holds it, or from the effect-summary
// columns the link step records in the D2X tables (so an already-linked
// build verifies too). A third check cross-validates those recorded
// summaries against a recomputation — recorded summaries may be *more*
// pessimistic than reality (the link analyses unoptimised source), but
// never less.

import (
	"fmt"
	"strings"

	"d2x/internal/d2x/d2xc"
	"d2x/internal/minic/effects"
	"d2x/internal/srcloc"
)

func effectsChecks() []Check {
	return []Check{
		{
			Name: "d2x/handler-effects",
			Desc: "rtv handlers are read-only and provably terminating",
			Run:  checkHandlerEffects,
		},
		{
			Name: "d2x/eval-effects",
			Desc: "macro call/eval targets are safe to run in the paused debuggee",
			Run:  checkEvalEffects,
		},
		{
			Name: "d2x/effect-tables",
			Desc: "recorded handler effect summaries are at least as pessimistic as reality",
			Run:  checkEffectTables,
		},
	}
}

// registeredHandlers returns the distinct rtv handler names registered
// in the build, in first-appearance order — from the compile-time
// context when available, otherwise from the decoded tables (the wire
// path, for already-linked builds).
func registeredHandlers(in *Input) ([]string, error) {
	var names []string
	seen := map[string]bool{}
	add := func(recs []d2xc.Record) {
		for _, rec := range recs {
			for _, v := range rec.Vars {
				if v.Kind == d2xc.VarHandler && v.Val != "" && !seen[v.Val] {
					seen[v.Val] = true
					names = append(names, v.Val)
				}
			}
		}
	}
	if in.Ctx != nil {
		add(in.Ctx.Records())
		return names, nil
	}
	tables, err := in.Tables()
	if err != nil {
		return nil, err
	}
	if tables != nil {
		add(tables.Records)
	}
	return names, nil
}

// declLine returns the declaration line of a program function, or 0.
func declLine(in *Input, name string) int {
	if i, ok := in.Program.FuncByName[name]; ok {
		return in.Program.Funcs[i].Line
	}
	return 0
}

// reportUnsafe files the standard diagnostics for one unsafe summary.
// what names the evaluation surface ("rtv_handler __d2x_rtv_res",
// "macro call target compute"); loc overrides the anchor when non-zero
// (macro findings anchor in the macro text, not the program).
func reportUnsafe(in *Input, r *Reporter, s *effects.Summary, what string, loc srcloc.Loc) {
	at := func(line int) srcloc.Loc {
		if loc != (srcloc.Loc{}) {
			return loc
		}
		if line == 0 {
			line = declLine(in, s.Name)
		}
		return in.GenLoc(line)
	}
	if s.Effects&effects.WritesHeap != 0 {
		r.Errorf(at(s.WriteLine),
			"make it read-only: build the result in locals and return it",
			"%s writes debuggee state (effects: %s); calling it in a paused debuggee corrupts the session",
			what, s.Effects)
	}
	switch {
	case s.Loop == effects.LoopUnprovable:
		r.Warnf(at(s.LoopLine),
			"give the loop a reachable exit (a bounded condition or a break)",
			"%s contains a loop with no provable exit; evaluation will always exhaust the fuel budget",
			what)
	case s.Effects&effects.DivergesMaybe != 0:
		r.Warnf(at(declLine(in, s.Name)),
			"restructure the recursion into a bounded loop",
			"%s is (mutually) recursive; termination is unprovable and evaluation falls back to the fuel guard",
			what)
	}
}

// checkHandlerEffects analyses every registered rtv handler. Handlers
// that name no program function are the cross-layer handler check's
// business, not this one's.
func checkHandlerEffects(in *Input, r *Reporter) error {
	handlers, err := registeredHandlers(in)
	if err != nil {
		return err
	}
	if len(handlers) == 0 {
		return nil
	}
	an := in.EffectAnalysis()
	for _, h := range handlers {
		if s, ok := an.ByName(h); ok {
			reportUnsafe(in, r, s, fmt.Sprintf("rtv_handler %s", h), srcloc.Loc{})
		}
	}
	return nil
}

// evalPrefixes are the macro-line commands whose targets execute inside
// the paused debuggee: explicit call/eval, plus watch/display whose
// expressions the debugger re-evaluates on every stop.
var evalPrefixes = []string{"call ", "eval ", "watch ", "display "}

// checkEvalEffects analyses every macro call/eval target that resolves
// to a generated program function (natives are covered by the fixed
// policy inside the analysis, not flagged here).
func checkEvalEffects(in *Input, r *Reporter) error {
	if in.Macros == "" {
		return nil
	}
	var an *effects.Analysis
	for i, line := range strings.Split(in.Macros, "\n") {
		trimmed := strings.TrimSpace(line)
		matched := false
		for _, p := range evalPrefixes {
			if strings.HasPrefix(trimmed, p) {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		for _, m := range macroCallRe.FindAllStringSubmatch(trimmed, -1) {
			target := strings.ReplaceAll(m[1], "::", "_")
			if _, ok := in.Program.FuncByName[target]; !ok {
				continue
			}
			if an == nil {
				an = in.EffectAnalysis()
			}
			if s, ok := an.ByName(target); ok {
				reportUnsafe(in, r, s, fmt.Sprintf("macro eval target %s", m[1]),
					srcloc.Loc{File: "<macros>", Line: i + 1})
			}
		}
	}
	return nil
}

// checkEffectTables cross-validates the effect summaries the link step
// embedded in the D2X tables against a fresh analysis of the compiled
// program. The recorded summary ran on unoptimised source, so it may be
// more pessimistic than the recomputation — but a recomputation that is
// *worse* means the tables understate the hazard (exactly the
// confidently-wrong-metadata failure the verifier exists for), and a
// registered handler with no row at all degrades the runtime to its
// most conservative guard.
func checkEffectTables(in *Input, r *Reporter) error {
	tables, err := in.Tables()
	if err != nil || tables == nil {
		return err
	}
	if !tables.HasFX() {
		return nil
	}
	an := in.EffectAnalysis()
	for _, name := range tables.HandlerFXNames() {
		rec, _ := tables.HandlerFX(name)
		s, ok := an.ByName(name)
		if !ok {
			continue
		}
		recMask := effects.Effect(rec.Mask)
		recLoop := effects.LoopClass(rec.Loop)
		loc := in.GenLoc(declLine(in, name))
		if extra := s.Effects &^ recMask; extra != 0 {
			r.Errorf(loc, "re-link the build so the tables are regenerated",
				"handler %s: recorded effect summary %q is missing %q found on recheck — the embedded tables understate the handler's effects",
				name, recMask, extra)
		}
		if s.Loop > recLoop {
			r.Errorf(loc, "re-link the build so the tables are regenerated",
				"handler %s: recorded loop class %q but recheck finds %q — the embedded tables understate the handler's termination risk",
				name, recLoop, s.Loop)
		}
	}
	handlers, err := registeredHandlers(in)
	if err != nil {
		return err
	}
	for _, h := range handlers {
		if _, ok := tables.HandlerFX(h); !ok {
			r.Warnf(in.GenLoc(declLine(in, h)),
				"emit the handler's summary via d2xenc.EmitTablesFX",
				"handler %s has no recorded effect summary; the runtime will use its most conservative guard",
				h)
		}
	}
	return nil
}
