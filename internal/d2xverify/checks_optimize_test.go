package d2xverify

// White-box tests for opt/line-attribution. The real optimiser never
// re-lines a statement (debugify enforces that per pass), so the
// check's reporting path is exercised by swapping in a deliberately
// line-breaking optimiser through the optimizeForCheck seam.

import (
	"testing"

	"d2x/internal/minic"
)

func runOptimizeCheck(in *Input) *Report {
	rep := &Report{}
	for _, c := range optimizeChecks() {
		r := &Reporter{check: c.Name, diags: &rep.Diags}
		if err := c.Run(in, r); err != nil {
			r.Errorf(in.GenLoc(0), "", "check failed to run: %v", err)
		}
	}
	return rep
}

const optCheckSrc = `
func int main() {
	int a = 2 + 3;
	int b = a * 1;
	return b;
}`

func TestLineAttributionQuietOnRealOptimizer(t *testing.T) {
	prog, err := minic.Compile("gen.c", optCheckSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := runOptimizeCheck(&Input{Program: prog})
	if len(rep.Diags) != 0 {
		t.Fatalf("real optimiser tripped opt/line-attribution:\n%s", rep)
	}
}

func TestLineAttributionCatchesRelinedStatement(t *testing.T) {
	prog, err := minic.Compile("gen.c", optCheckSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { optimizeForCheck = func(f *minic.File) { minic.Optimize(f) } }()
	optimizeForCheck = func(f *minic.File) {
		// A broken "optimiser": re-home the declarations far past the
		// original function, inventing lines the original never had.
		for _, fd := range f.Funcs {
			minic.InspectStmts(fd.Body, func(s minic.Stmt) bool {
				if d, ok := s.(*minic.VarDeclStmt); ok {
					d.Line += 100
				}
				return true
			})
		}
	}
	rep := runOptimizeCheck(&Input{Program: prog})
	diags := rep.ByCheck("opt/line-attribution")
	if len(diags) == 0 {
		t.Fatalf("re-lining optimiser produced no findings:\n%s", rep)
	}
	for _, d := range diags {
		if d.Severity != SevError {
			t.Errorf("severity %v, want error: %s", d.Severity, d)
		}
		if d.Loc.File != "gen.c" || d.Loc.Line == 0 {
			t.Errorf("finding not anchored in the generated file: %s", d)
		}
	}
}

func TestLineAttributionSkipsWithoutSource(t *testing.T) {
	prog, err := minic.Compile("gen.c", "func int main() { return 0; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	prog.SourceText = ""
	if rep := runOptimizeCheck(&Input{Program: prog}); len(rep.Diags) != 0 {
		t.Fatalf("sourceless program tripped opt/line-attribution:\n%s", rep)
	}
}
