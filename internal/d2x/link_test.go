package d2x

import (
	"strings"
	"testing"

	"d2x/internal/d2x/d2xc"
	"d2x/internal/minic"
)

func TestLinkRejectsBadGeneratedCode(t *testing.T) {
	if _, err := Link("bad.c", "func int main() { syntax error", nil, LinkOptions{}); err == nil {
		t.Error("broken generated code linked")
	}
	// A type error after table splicing also fails cleanly.
	ctx := d2xc.NewContext()
	if _, err := Link("bad.c", "func int main() { return \"str\"; }", ctx, LinkOptions{}); err == nil {
		t.Error("type-broken generated code linked")
	}
}

func TestLinkExtraNatives(t *testing.T) {
	called := false
	build, err := Link("p.c", `func int main() {
	probe();
	return 0;
}`, nil, LinkOptions{
		WithoutD2X: true,
		Natives: func(n *minic.Natives) {
			n.Register(&minic.Native{
				Name: "probe",
				Sig:  minic.Signature{Result: minic.VoidType},
				Handler: func(call *minic.NativeCall) (minic.Value, error) {
					called = true
					return minic.NullVal(), nil
				},
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := build.Run(); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("DSL-supplied native never invoked")
	}
}

func TestWithoutD2XHasNoRuntime(t *testing.T) {
	build, err := Link("p.c", "func int main() { return 0; }", nil, LinkOptions{WithoutD2X: true})
	if err != nil {
		t.Fatal(err)
	}
	if build.Runtime != nil {
		t.Error("runtime attached to a WithoutD2X build")
	}
	if _, _, ok := build.Program.Natives.Lookup("d2x_runtime_command_xbt"); ok {
		t.Error("D2X natives linked into a WithoutD2X build")
	}
	if strings.Contains(build.Source, "__d2x") {
		t.Error("tables in a WithoutD2X build")
	}
}

func TestExtraMacrosLoadAndValidate(t *testing.T) {
	ctx := d2xc.NewContext()
	build, err := Link("p.c", `func void my_ext() {
	printf("ext!\n");
}
func int main() {
	return 0;
}`, ctx, LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	build.ExtraMacros = "define myext\n  call my_ext()\nend\n"
	var out strings.Builder
	d, err := build.NewSession(&out)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Execute("myext"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ext!") {
		t.Errorf("extension output:\n%s", out.String())
	}
	// A malformed macro file fails session construction.
	build.ExtraMacros = "define broken\n"
	if _, err := build.NewSession(nil); err == nil {
		t.Error("malformed ExtraMacros accepted")
	}
}

func TestRunReportsFault(t *testing.T) {
	build, err := Link("p.c", `func int main() {
	int[] a = new int[1];
	return a[5];
}`, nil, LinkOptions{WithoutD2X: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := build.Run(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("fault: %v", err)
	}
}

func TestOptimizedBuildStillDebuggable(t *testing.T) {
	// Generated code full of foldable expressions, with D2X records on
	// every line. After optimisation the program must still run, and the
	// extended stack must still resolve at a surviving statement.
	ctx := d2xc.NewContext()
	e := d2xc.NewEmitter(ctx)
	e.Emitln("func int main() {")
	if err := e.BeginSection(); err != nil {
		t.Fatal(err)
	}
	ctx.PushSourceLoc("opt.dsl", 1, "main")
	e.Emitln("\tint a = 2 + 3 * 4;")
	ctx.PushSourceLoc("opt.dsl", 2, "main")
	e.Emitln("\tif (1 < 2) {")
	e.Emitln("\t\ta = a + 0;")
	e.Emitln("\t}")
	ctx.PushSourceLoc("opt.dsl", 3, "main")
	e.Emitln("%s", "\tprintf(\"%d\\n\", a);")
	ctx.PushSourceLoc("opt.dsl", 4, "main")
	e.Emitln("\treturn 0;")
	if err := e.EndSection(); err != nil {
		t.Fatal(err)
	}
	e.Emitln("}")

	build, err := Link("opt.c", e.String(), ctx, LinkOptions{
		Optimize: true,
		FileResolver: func(path string) (string, error) {
			return "dsl line 1\ndsl line 2\ndsl line 3\ndsl line 4\n", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	d, err := build.NewSession(&out)
	if err != nil {
		t.Fatal(err)
	}
	for _, cmd := range []string{"break opt.c:2", "run", "xbt"} {
		if err := d.Execute(cmd); err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
	}
	if !strings.Contains(out.String(), "#0 in main at opt.dsl:1") {
		t.Errorf("xbt after optimisation:\n%s", out.String())
	}
	if err := d.Execute("continue"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "14\n") {
		t.Errorf("optimised program output:\n%s", out.String())
	}
}
