package d2xc

import (
	"fmt"
	"strings"
)

// Emitter couples a code-generation buffer with a Context so that the
// generated text and the D2X debug tables can never fall out of
// alignment — the hazard the paper warns about ("the developer has to be
// very careful when emitting newlines"). Every Emitln call writes exactly
// one line and advances the context via Nextl.
type Emitter struct {
	b      strings.Builder
	line   int // 1-based line currently being written
	indent int
	ctx    *Context
}

// NewEmitter returns an emitter feeding the given context (which may be
// nil for plain code generation without D2X).
func NewEmitter(ctx *Context) *Emitter {
	return &Emitter{line: 1, ctx: ctx}
}

// Context returns the attached D2X context (possibly nil).
func (e *Emitter) Context() *Context { return e.ctx }

// Line returns the 1-based number of the line about to be written.
func (e *Emitter) Line() int { return e.line }

// Indent increases the indentation of subsequent lines.
func (e *Emitter) Indent() { e.indent++ }

// Dedent decreases the indentation of subsequent lines.
func (e *Emitter) Dedent() {
	if e.indent > 0 {
		e.indent--
	}
}

// Emitln writes one full line of generated code and advances both the
// line counter and the D2X context. The format string must not contain
// newlines; embedding one would desynchronise the debug tables, so it
// panics (a code-generator bug, not an input error).
func (e *Emitter) Emitln(format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	if strings.Contains(s, "\n") {
		panic("d2xc: Emitln line contains a newline; debug tables would desynchronise")
	}
	if s != "" {
		e.b.WriteString(strings.Repeat("\t", e.indent))
	}
	e.b.WriteString(s)
	e.b.WriteByte('\n')
	e.line++
	if e.ctx != nil {
		e.ctx.Nextl()
	}
}

// BeginSection opens a D2X section at the current line.
func (e *Emitter) BeginSection() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.BeginSectionAt(e.line)
}

// EndSection closes the open D2X section.
func (e *Emitter) EndSection() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.EndSection()
}

// String returns the generated source.
func (e *Emitter) String() string { return e.b.String() }
