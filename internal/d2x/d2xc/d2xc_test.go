package d2xc

import (
	"runtime"
	"strings"
	"testing"

	"d2x/internal/srcloc"
)

// TestTable1APIConformance exercises every entry point of the paper's
// Table 1 against its documented behaviour.
func TestTable1APIConformance(t *testing.T) {
	c := NewContext() // d2x_context::d2x_context
	if err := c.BeginSectionAt(10); err != nil {
		t.Fatal(err) // begin_section
	}
	c.PushSourceLoc("in.dsl", 1, "f")                  // push_source_loc with function
	c.PushSourceLoc("in.dsl", 9)                       // push_source_loc without
	c.SetVar("analysis", "reaching-defs")              // set_var(string, string)
	c.SetVarHandler("live", RTVHandler{FuncName: "h"}) // set_var(string, rtv_handler)
	c.Nextl()                                          // nextl
	c.CreateVar("scoped")                              // create_var
	c.PushScope()                                      // push_scope
	c.CreateVar("inner")
	if err := c.UpdateVar("inner", "5"); err != nil { // update_var(string, string)
		t.Fatal(err)
	}
	if err := c.UpdateVarHandler("scoped", RTVHandler{FuncName: "g"}); err != nil { // update_var(string, rtv_handler)
		t.Fatal(err)
	}
	c.Nextl()
	if err := c.PopScope(); err != nil { // pop_scope
		t.Fatal(err)
	}
	c.Nextl()
	if err := c.DeleteVar("scoped"); err != nil { // delete_var (via Delete)
		t.Fatal(err)
	}
	c.Nextl()
	if err := c.EndSection(); err != nil { // end_section
		t.Fatal(err)
	}

	recs := c.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3 (lines without info are omitted)", len(recs))
	}
	// Line 10: stack of two locations (innermost first) and two vars.
	r0 := recs[0]
	if r0.GenLine != 10 {
		t.Errorf("first record line = %d, want 10", r0.GenLine)
	}
	if len(r0.Stack) != 2 || r0.Stack[0].Function != "f" || r0.Stack[1].Line != 9 {
		t.Errorf("stack = %+v", r0.Stack)
	}
	if len(r0.Vars) != 2 || r0.Vars[0].Key != "analysis" || r0.Vars[1].Kind != VarHandler {
		t.Errorf("vars = %+v", r0.Vars)
	}
	// Line 11: live vars scoped + inner, with updates applied.
	r1 := recs[1]
	if r1.GenLine != 11 || len(r1.Vars) != 2 {
		t.Fatalf("second record = %+v", r1)
	}
	byKey := map[string]VarEntry{}
	for _, v := range r1.Vars {
		byKey[v.Key] = v
	}
	if byKey["inner"].Val != "5" || byKey["scoped"].Kind != VarHandler {
		t.Errorf("live vars = %+v", byKey)
	}
	// Line 12: inner's scope was popped; only scoped remains.
	r2 := recs[2]
	if len(r2.Vars) != 1 || r2.Vars[0].Key != "scoped" {
		t.Errorf("third record vars = %+v", r2.Vars)
	}
}

func TestSectionErrors(t *testing.T) {
	c := NewContext()
	if err := c.EndSection(); err == nil {
		t.Error("EndSection without BeginSection accepted")
	}
	if err := c.BeginSectionAt(1); err != nil {
		t.Fatal(err)
	}
	if err := c.BeginSectionAt(2); err == nil {
		t.Error("nested BeginSection accepted")
	}
	if err := c.PopScope(); err == nil {
		t.Error("PopScope with no open scope accepted")
	}
	if err := c.UpdateVar("ghost", "1"); err == nil {
		t.Error("UpdateVar of unknown variable accepted")
	}
	if err := c.UpdateVarHandler("ghost", RTVHandler{FuncName: "h"}); err == nil {
		t.Error("UpdateVarHandler of unknown variable accepted")
	}
	if err := c.DeleteVar("ghost"); err == nil {
		t.Error("DeleteVar of unknown variable accepted")
	}
}

func TestNextlOutsideSectionIsNoop(t *testing.T) {
	c := NewContext()
	c.Nextl()
	c.Nextl()
	if err := c.BeginSectionAt(5); err != nil {
		t.Fatal(err)
	}
	c.PushSourceLoc("a.dsl", 1)
	c.Nextl()
	if err := c.EndSection(); err != nil {
		t.Fatal(err)
	}
	recs := c.Records()
	if len(recs) != 1 || recs[0].GenLine != 5 {
		t.Errorf("records = %+v", recs)
	}
}

func TestDeletedLiveVarStopsAppearing(t *testing.T) {
	c := NewContext()
	if err := c.BeginSectionAt(1); err != nil {
		t.Fatal(err)
	}
	c.CreateVar("v")
	c.Nextl() // line 1 has v
	if err := c.DeleteVar("v"); err != nil {
		t.Fatal(err)
	}
	c.PushSourceLoc("a.dsl", 2)
	c.Nextl() // line 2 has only the loc
	if err := c.EndSection(); err != nil {
		t.Fatal(err)
	}
	recs := c.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if len(recs[1].Vars) != 0 {
		t.Errorf("deleted var still emitted: %+v", recs[1].Vars)
	}
}

func TestNewlyCreatedVarIsUninitialized(t *testing.T) {
	c := NewContext()
	if err := c.BeginSectionAt(1); err != nil {
		t.Fatal(err)
	}
	c.CreateVar("v")
	c.Nextl()
	if err := c.EndSection(); err != nil {
		t.Fatal(err)
	}
	v := c.Records()[0].Vars[0]
	if v.Val != "<uninitialized>" || v.Kind != VarConst {
		t.Errorf("fresh var = %+v", v)
	}
}

func TestShadowingPerLineVarWins(t *testing.T) {
	c := NewContext()
	if err := c.BeginSectionAt(1); err != nil {
		t.Fatal(err)
	}
	c.CreateVar("x")
	if err := c.UpdateVar("x", "live"); err != nil {
		t.Fatal(err)
	}
	c.SetVar("x", "per-line")
	c.Nextl()
	if err := c.EndSection(); err != nil {
		t.Fatal(err)
	}
	vars := c.Records()[0].Vars
	// Both are present; the per-line one comes later, so consumers that
	// scan in order see it shadow the live one.
	if len(vars) != 2 || vars[1].Val != "per-line" {
		t.Errorf("vars = %+v", vars)
	}
}

func TestSelfSourceLoc(t *testing.T) {
	pc, _, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	loc := SelfSourceLoc(pc)
	if !strings.HasSuffix(loc.File, "d2xc_test.go") {
		t.Errorf("file = %q", loc.File)
	}
	if loc.Line == 0 {
		t.Error("no line")
	}
	if !strings.Contains(loc.Function, "TestSelfSourceLoc") {
		t.Errorf("function = %q", loc.Function)
	}
	if got := SelfSourceLoc(0); !got.IsZero() {
		t.Errorf("SelfSourceLoc(0) = %+v, want zero", got)
	}
}

func TestCallerStack(t *testing.T) {
	var stack srcloc.Stack
	func() {
		stack = CallerStack(0)
	}()
	if len(stack) < 2 {
		t.Fatalf("stack too short: %+v", stack)
	}
	if !strings.HasSuffix(stack[0].File, "d2xc_test.go") {
		t.Errorf("innermost frame = %+v", stack[0])
	}
	if !strings.Contains(stack[0].Function, "TestCallerStack") {
		t.Errorf("innermost function = %q", stack[0].Function)
	}
}

func TestEmitterAlignment(t *testing.T) {
	c := NewContext()
	e := NewEmitter(c)
	e.Emitln("// header")
	if err := e.BeginSection(); err != nil {
		t.Fatal(err)
	}
	c.PushSourceLoc("x.dsl", 3)
	e.Indent()
	e.Emitln("stmt one;")
	c.PushSourceLoc("x.dsl", 4)
	e.Emitln("stmt two;")
	e.Dedent()
	if err := e.EndSection(); err != nil {
		t.Fatal(err)
	}
	recs := c.Records()
	if len(recs) != 2 || recs[0].GenLine != 2 || recs[1].GenLine != 3 {
		t.Fatalf("alignment broken: %+v", recs)
	}
	lines := strings.Split(e.String(), "\n")
	if lines[1] != "\tstmt one;" {
		t.Errorf("indentation: %q", lines[1])
	}
}

func TestEmitterRejectsEmbeddedNewline(t *testing.T) {
	e := NewEmitter(nil)
	defer func() {
		if recover() == nil {
			t.Error("Emitln with newline did not panic")
		}
	}()
	e.Emitln("two\nlines")
}
