// Package d2xc is the D2X compiler library (D2X-C): the half of D2X a DSL
// compiler links against while it generates low-level code (paper §3.1,
// §4.1, Table 1). For every line of generated code the DSL compiler
// records (a) a stack of DSL source locations — the "extended stack" — and
// (b) a set of key/value extended variables whose values are either
// constant strings (compiler internal state, e.g. dataflow results) or
// runtime value handlers evaluated inside the debuggee at debug time.
//
// EmitSectionInfo/EmitTables then serialise the tables as plain data and
// code in the generated program itself, so no debugger or debug-info
// format ever needs extending.
package d2xc

import (
	"fmt"
	"runtime"

	"d2x/internal/srcloc"
)

// VarKind discriminates extended-variable values.
type VarKind int

const (
	// VarConst is a constant string captured at compile time.
	VarConst VarKind = iota
	// VarHandler names a runtime value handler: a function generated into
	// the program that receives the variable's key and returns its value
	// as a string, evaluated at debug time (paper's rtv_handler).
	VarHandler
)

// RTVHandler identifies a runtime value handler by the name of the
// generated function implementing it. The paper constructs handlers from
// staged lambdas; in this reproduction the DSL compiler emits the handler
// function into the generated program and refers to it by name. The
// handler's signature in the generated language must be
//
//	func string <name>(string key)
//
// and it may call the D2X runtime API (d2x_find_stack_var) to reach stack
// variables of the paused program.
type RTVHandler struct {
	FuncName string
}

// VarEntry is one extended variable binding at one generated line.
type VarEntry struct {
	Key  string
	Kind VarKind
	Val  string // constant value or handler function name
}

// Record is the debug information of a single generated source line.
type Record struct {
	GenLine int
	Stack   srcloc.Stack // innermost-first extended stack
	Vars    []VarEntry
}

// Section is a contiguous region of generated lines tracked by D2X-C.
type Section struct {
	StartLine int
	Records   []Record
}

type liveVar struct {
	key     string
	kind    VarKind
	val     string
	deleted bool
}

// JournalOp discriminates the operations recorded in a Context's journal.
type JournalOp int

const (
	OpBeginSection JournalOp = iota
	OpEndSection
	OpPushScope
	OpPopScope
	OpCreateVar
	OpUpdateVar
	OpDeleteVar
)

// String names the operation for diagnostics.
func (op JournalOp) String() string {
	switch op {
	case OpBeginSection:
		return "BeginSection"
	case OpEndSection:
		return "EndSection"
	case OpPushScope:
		return "PushScope"
	case OpPopScope:
		return "PopScope"
	case OpCreateVar:
		return "CreateVar"
	case OpUpdateVar:
		return "UpdateVar"
	case OpDeleteVar:
		return "DeleteVar"
	default:
		return fmt.Sprintf("JournalOp(%d)", int(op))
	}
}

// JournalEvent is one recorded scope/variable/section operation: what
// happened, at which generated line (0 when no section was open), and —
// for variable events — the key involved. The journal is the raw
// material for static verification of a DSL compiler's D2X usage
// (d2xverify's scope checks): the tables alone cannot reconstruct
// whether scopes were balanced, the journal can.
type JournalEvent struct {
	Op        JournalOp
	Line      int // generated line at event time; 0 outside a section
	Key       string
	InSection bool
}

// Context accumulates D2X debug information during code generation —
// the d2x_context of the paper. Typical use:
//
//	ctx := d2xc.NewContext()
//	ctx.BeginSectionAt(emitter.Line())
//	... for each generated line:
//	ctx.PushSourceLoc(...); ctx.SetVar(...); emit code; ctx.Nextl()
//	ctx.EndSection()
//	ctx.EmitSectionInfo(w)
type Context struct {
	sections []*Section
	cur      *Section
	curLine  int

	pendingStack srcloc.Stack
	pendingVars  []VarEntry

	scopes [][]*liveVar

	journal []JournalEvent

	emitted int // how many sections EmitSectionInfo has consumed
}

// logOp appends one journal event at the current line.
func (c *Context) logOp(op JournalOp, key string) {
	line := 0
	if c.cur != nil {
		line = c.curLine
	}
	c.journal = append(c.journal, JournalEvent{
		Op: op, Line: line, Key: key, InSection: c.cur != nil,
	})
}

// Journal returns the recorded operation sequence (shared slice; treat
// as read-only).
func (c *Context) Journal() []JournalEvent { return c.journal }

// NewContext returns an empty D2X compile-time context.
func NewContext() *Context {
	return &Context{scopes: [][]*liveVar{{}}}
}

// BeginSectionAt starts a new section whose first generated line is
// startLine (1-based in the generated file). All newlines inside the
// section must be reported via Nextl; lines outside sections carry no D2X
// information.
func (c *Context) BeginSectionAt(startLine int) error {
	if c.cur != nil {
		return fmt.Errorf("d2xc: BeginSection while a section is open")
	}
	c.cur = &Section{StartLine: startLine}
	c.curLine = startLine
	c.pendingStack = nil
	c.pendingVars = nil
	c.logOp(OpBeginSection, "")
	return nil
}

// EndSection closes the current section, flushing the final line's record.
func (c *Context) EndSection() error {
	if c.cur == nil {
		return fmt.Errorf("d2xc: EndSection without BeginSection")
	}
	c.flushLine()
	c.logOp(OpEndSection, "")
	c.sections = append(c.sections, c.cur)
	c.cur = nil
	return nil
}

// InSection reports whether a section is currently open.
func (c *Context) InSection() bool { return c.cur != nil }

// Nextl tells the context that a newline was inserted in the generated
// code: the debug information collected since the previous Nextl belongs
// to the line just finished. Live variables are inserted automatically.
func (c *Context) Nextl() {
	if c.cur == nil {
		return
	}
	c.flushLine()
	c.curLine++
}

func (c *Context) flushLine() {
	rec := Record{GenLine: c.curLine}
	rec.Stack = c.pendingStack
	// Live variables first (outer scopes before inner), then per-line vars
	// so a per-line SetVar can shadow a live variable of the same key.
	for _, scope := range c.scopes {
		for _, lv := range scope {
			if !lv.deleted {
				rec.Vars = append(rec.Vars, VarEntry{Key: lv.key, Kind: lv.kind, Val: lv.val})
			}
		}
	}
	rec.Vars = append(rec.Vars, c.pendingVars...)
	if len(rec.Stack) > 0 || len(rec.Vars) > 0 {
		c.cur.Records = append(c.cur.Records, rec)
	}
	c.pendingStack = nil
	c.pendingVars = nil
}

// PushSourceLoc pushes one DSL source location onto the extended stack of
// the current generated line. Called multiple times per line it builds
// the full stack; the first call supplies the innermost frame.
func (c *Context) PushSourceLoc(file string, line int, function ...string) {
	loc := srcloc.Loc{File: file, Line: line}
	if len(function) > 0 {
		loc.Function = function[0]
	}
	c.pendingStack = append(c.pendingStack, loc)
}

// PushLoc is PushSourceLoc taking a srcloc.Loc, convenient for callers
// that already track locations structurally (BuildIt's static tags).
func (c *Context) PushLoc(loc srcloc.Loc) {
	c.pendingStack = append(c.pendingStack, loc)
}

// SetVar records a constant-string extended variable at the current line.
func (c *Context) SetVar(key, value string) {
	c.pendingVars = append(c.pendingVars, VarEntry{Key: key, Kind: VarConst, Val: value})
}

// SetVarHandler records an extended variable whose value is computed by a
// runtime value handler at debug time.
func (c *Context) SetVarHandler(key string, h RTVHandler) {
	c.pendingVars = append(c.pendingVars, VarEntry{Key: key, Kind: VarHandler, Val: h.FuncName})
}

// CreateVar declares a live variable in the current scope. It is emitted
// at every subsequent line until deleted or its scope is popped. A newly
// created variable has the constant value "<uninitialized>" until updated.
func (c *Context) CreateVar(key string) {
	scope := len(c.scopes) - 1
	c.scopes[scope] = append(c.scopes[scope], &liveVar{
		key: key, kind: VarConst, val: "<uninitialized>",
	})
	c.logOp(OpCreateVar, key)
}

// UpdateVar changes the value of a live variable to a constant string.
// It returns an error when no live variable with the key exists.
func (c *Context) UpdateVar(key, value string) error {
	lv := c.findLive(key)
	if lv == nil {
		return fmt.Errorf("d2xc: UpdateVar: no live variable %q", key)
	}
	lv.kind = VarConst
	lv.val = value
	c.logOp(OpUpdateVar, key)
	return nil
}

// UpdateVarHandler changes the value of a live variable to a handler.
func (c *Context) UpdateVarHandler(key string, h RTVHandler) error {
	lv := c.findLive(key)
	if lv == nil {
		return fmt.Errorf("d2xc: UpdateVarHandler: no live variable %q", key)
	}
	lv.kind = VarHandler
	lv.val = h.FuncName
	c.logOp(OpUpdateVar, key)
	return nil
}

// DeleteVar removes a live variable from whatever scope holds it.
func (c *Context) DeleteVar(key string) error {
	lv := c.findLive(key)
	if lv == nil {
		return fmt.Errorf("d2xc: DeleteVar: no live variable %q", key)
	}
	lv.deleted = true
	c.logOp(OpDeleteVar, key)
	return nil
}

func (c *Context) findLive(key string) *liveVar {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		for j := len(c.scopes[i]) - 1; j >= 0; j-- {
			if lv := c.scopes[i][j]; lv.key == key && !lv.deleted {
				return lv
			}
		}
	}
	return nil
}

// PushScope opens a live-variable scope, mirroring a scope in the DSL or
// the generated code.
func (c *Context) PushScope() {
	c.scopes = append(c.scopes, nil)
	c.logOp(OpPushScope, "")
}

// PopScope closes the innermost scope, deleting its live variables.
func (c *Context) PopScope() error {
	if len(c.scopes) <= 1 {
		return fmt.Errorf("d2xc: PopScope with no open scope")
	}
	c.scopes = c.scopes[:len(c.scopes)-1]
	c.logOp(OpPopScope, "")
	return nil
}

// Sections returns all closed sections (for the emitter and for tests).
func (c *Context) Sections() []*Section { return c.sections }

// Records returns every record across all closed sections.
func (c *Context) Records() []Record {
	var out []Record
	for _, s := range c.sections {
		out = append(out, s.Records...)
	}
	return out
}

// SelfSourceLoc resolves a program counter of the *host* program (the DSL
// compiler itself) to a source location — the paper's self_source_loc
// utility. DSLs embedded in the host language (BuildIt) use it to harvest
// first-stage source locations from their own call stacks.
func SelfSourceLoc(pc uintptr) srcloc.Loc {
	frames := runtime.CallersFrames([]uintptr{pc})
	fr, _ := frames.Next()
	if fr.Function == "" && fr.File == "" {
		return srcloc.Loc{}
	}
	return srcloc.Loc{File: fr.File, Line: fr.Line, Function: shortFuncName(fr.Function)}
}

// CallerStack captures the host program's current call stack as source
// locations, skipping `skip` innermost frames (0 includes the caller of
// CallerStack). BuildIt uses this to build static tags.
func CallerStack(skip int) srcloc.Stack {
	pcs := make([]uintptr, 64)
	n := runtime.Callers(skip+2, pcs)
	frames := runtime.CallersFrames(pcs[:n])
	var stack srcloc.Stack
	for {
		fr, more := frames.Next()
		stack = append(stack, srcloc.Loc{
			File: fr.File, Line: fr.Line, Function: shortFuncName(fr.Function),
		})
		if !more {
			break
		}
	}
	return stack
}

// shortFuncName trims the package path from a runtime function name:
// "d2x/internal/buildit.(*Builder).Emit" -> "(*Builder).Emit".
func shortFuncName(full string) string {
	for i := len(full) - 1; i >= 0; i-- {
		if full[i] == '/' {
			full = full[i+1:]
			break
		}
	}
	for i := 0; i < len(full); i++ {
		if full[i] == '.' {
			return full[i+1:]
		}
	}
	return full
}
