package d2x

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"d2x/internal/obs"
)

// TestSessionCloseEvictsState: closing a session evicts its per-session
// D2X state from the build's runtime (the fix for the map that grew
// without bound), without touching other sessions or the shared tables.
func TestSessionCloseEvictsState(t *testing.T) {
	b := buildPower(t, true)
	d1, _ := session(t, b)
	d2, out2 := session(t, b)
	exec(t, d1, "break power_gen.c:5", "run", "xbt", "xbreak power.dsl:6")
	exec(t, d2, "break power_gen.c:5", "run", "xbt")
	if n := b.LiveSessions(); n != 2 {
		t.Fatalf("live sessions = %d, want 2", n)
	}
	if n := len(b.Runtime.Breakpoints()); n != 1 {
		t.Fatalf("runtime breakpoints = %d, want 1", n)
	}

	d1.Close()
	if n := b.LiveSessions(); n != 1 {
		t.Errorf("live sessions after first Close = %d, want 1", n)
	}
	// The closed session's breakpoints went with its state.
	if n := len(b.Runtime.Breakpoints()); n != 0 {
		t.Errorf("runtime breakpoints after Close = %d, want 0", n)
	}
	if err := d1.Execute("xbt"); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("Execute on closed session: %v", err)
	}

	// The surviving session still works over the shared tables.
	out2.Reset()
	exec(t, d2, "xbt")
	if !strings.Contains(out2.String(), "#0 in power at power.dsl:7") {
		t.Errorf("second session after first Close:\n%s", out2.String())
	}

	d2.Close()
	d2.Close() // idempotent
	if n := b.LiveSessions(); n != 0 {
		t.Errorf("live sessions after all Closes = %d, want 0", n)
	}
	if n := b.Runtime.TableDecodes(); n != 1 {
		t.Errorf("table decodes across both sessions = %d, want 1", n)
	}
}

// TestConcurrentSessionsShareTables runs N full debug sessions over one
// Build in parallel — break, run, xbt, rtv_handler evaluation, xbreak,
// continue — and checks that they share a single table decode and leave
// no state behind. Run under -race this also proves the shared decode,
// debug info, and DSL source cache are safe for concurrent sessions.
func TestConcurrentSessionsShareTables(t *testing.T) {
	b := buildPower(t, true)
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out strings.Builder
			d, err := b.NewSession(&out)
			if err != nil {
				errs <- err
				return
			}
			defer d.Close()
			cmds := []string{
				"break power_gen.c:5", "run",
				"xbt", "xlist", "xvars res_view",
				"xbreak power.dsl:6", "continue",
			}
			for _, cmd := range cmds {
				if err := d.Execute(cmd); err != nil {
					errs <- fmt.Errorf("session %d: %q: %w", i, cmd, err)
					return
				}
			}
			tr := out.String()
			for _, want := range []string{
				"#0 in power at power.dsl:7",
				"res_view = res_1=3",
				"Inserting 4 breakpoints with ID: #1",
			} {
				if !strings.Contains(tr, want) {
					errs <- fmt.Errorf("session %d transcript missing %q:\n%s", i, want, tr)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := b.Runtime.TableDecodes(); got != 1 {
		t.Errorf("table decodes across %d sessions = %d, want 1", n, got)
	}
	if got := b.LiveSessions(); got != 0 {
		t.Errorf("live sessions after all Closes = %d, want 0", got)
	}
}

// TestObsMetricsUnderConcurrentSessions is the observability counterpart
// of the concurrency test above: N sessions hammer one build in parallel
// while the obs layer records them. Counters must sum exactly (no lost
// updates), the live-session gauge must drain back to its starting
// level, and every event readable from the trace ring must be fully
// formed — under -race this doubles as the no-torn-reads proof for the
// ring's atomic-pointer slots.
func TestObsMetricsUnderConcurrentSessions(t *testing.T) {
	b := buildPower(t, true)
	// The command call/error counters are sharded across cache-line-padded
	// cells (sessions hash to cells by ID); Value() sums the cells, and the
	// sums must stay exact under concurrency.
	xbtCalls := obs.GetShardedCounter("d2xr.cmd.xbt.calls")
	xbreakCalls := obs.GetShardedCounter("d2xr.cmd.xbreak.calls")
	creates := obs.GetCounter("session.state.creates")
	evicts := obs.GetCounter("session.state.evicts")
	live := obs.GetGauge("session.live")
	xbtLat := obs.GetHistogram("d2xr.cmd.xbt")
	c0 := []int64{xbtCalls.Value(), xbreakCalls.Value(), creates.Value(), evicts.Value(), live.Value(), xbtLat.Count()}

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out strings.Builder
			d, err := b.NewSession(&out)
			if err != nil {
				errs <- err
				return
			}
			defer d.Close()
			for _, cmd := range []string{
				"break power_gen.c:5", "run", "xbt",
				"xbreak power.dsl:6", "continue",
			} {
				if err := d.Execute(cmd); err != nil {
					errs <- fmt.Errorf("session %d: %q: %w", i, cmd, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if d := xbtCalls.Value() - c0[0]; d != n {
		t.Errorf("xbt calls delta = %d, want %d", d, n)
	}
	if d := xbreakCalls.Value() - c0[1]; d != n {
		t.Errorf("xbreak calls delta = %d, want %d", d, n)
	}
	if d := creates.Value() - c0[2]; d != n {
		t.Errorf("state creates delta = %d, want %d", d, n)
	}
	if d := evicts.Value() - c0[3]; d != n {
		t.Errorf("state evicts delta = %d, want %d", d, n)
	}
	if d := live.Value() - c0[4]; d != 0 {
		t.Errorf("live gauge did not drain: delta = %d", d)
	}
	// The command wrapper times every call (only the stage histograms
	// sample), so the latency count must match the call count exactly.
	if d := xbtLat.Count() - c0[5]; d != n {
		t.Errorf("xbt latency observations delta = %d, want %d", d, n)
	}

	// Every event the ring hands out must be fully formed: monotonically
	// increasing Seq and a non-empty Kind. A torn read would surface here
	// (and as a -race report) as a zero or mixed-up record.
	events := obs.Default.Ring().Events()
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	lastSeq := int64(-1)
	for _, e := range events {
		if e.Seq <= lastSeq {
			t.Fatalf("ring events out of order: seq %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.Kind == "" {
			t.Fatalf("torn/empty event: %+v", e)
		}
	}
}
