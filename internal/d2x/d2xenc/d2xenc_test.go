package d2xenc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"d2x/internal/d2x/d2xc"
	"d2x/internal/minic"
)

// roundTrip emits tables, compiles them with a stub main, runs the init
// functions, and decodes the tables back.
func roundTrip(t testing.TB, ctx *d2xc.Context) *Tables {
	t.Helper()
	var b strings.Builder
	if err := EmitTables(ctx, &b); err != nil {
		t.Fatal(err)
	}
	b.WriteString("func int main() { return 0; }\n")
	prog, err := minic.Compile("tables.c", b.String(), nil)
	if err != nil {
		t.Fatalf("emitted tables do not compile: %v\n%s", err, b.String())
	}
	vm := minic.NewVM(prog, nil)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	tables, err := Decode(vm)
	if err != nil {
		t.Fatal(err)
	}
	return tables
}

func TestEmitDecodeRoundTrip(t *testing.T) {
	ctx := d2xc.NewContext()
	if err := ctx.BeginSectionAt(5); err != nil {
		t.Fatal(err)
	}
	ctx.PushSourceLoc("a.dsl", 1, "f")
	ctx.PushSourceLoc("a.dsl", 9, "main")
	ctx.SetVar("sched", "push")
	ctx.Nextl() // line 5
	ctx.Nextl() // line 6, empty
	ctx.PushSourceLoc("a.dsl", 2, "f")
	ctx.SetVarHandler("fr", d2xc.RTVHandler{FuncName: "__h"})
	ctx.Nextl() // line 7
	if err := ctx.EndSection(); err != nil {
		t.Fatal(err)
	}

	tables := roundTrip(t, ctx)
	if len(tables.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(tables.Records))
	}
	r5 := tables.RecordForLine(5)
	if r5 == nil || len(r5.Stack) != 2 || r5.Stack[0].Function != "f" || r5.Stack[1].Line != 9 {
		t.Errorf("record 5 = %+v", r5)
	}
	if len(r5.Vars) != 1 || r5.Vars[0].Val != "push" {
		t.Errorf("record 5 vars = %+v", r5.Vars)
	}
	r7 := tables.RecordForLine(7)
	if r7 == nil || r7.Vars[0].Kind != d2xc.VarHandler || r7.Vars[0].Val != "__h" {
		t.Errorf("record 7 = %+v", r7)
	}
	if tables.RecordForLine(6) != nil {
		t.Error("empty line has a record")
	}
	if got := tables.GenLinesForDSL("a.dsl", 2); len(got) != 1 || got[0] != 7 {
		t.Errorf("GenLinesForDSL = %v", got)
	}
	if files := tables.DSLFiles(); len(files) != 1 || files[0] != "a.dsl" {
		t.Errorf("DSLFiles = %v", files)
	}
}

// TestRoundTripProperty: random record sets survive the emit -> compile ->
// run -> decode pipeline exactly.
func TestRoundTripProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(12) + 1
		ctx := d2xc.NewContext()
		if err := ctx.BeginSectionAt(1); err != nil {
			t.Fatal(err)
		}
		type lineSpec struct {
			locs int
			vars int
		}
		var specs []lineSpec
		for i := 0; i < n; i++ {
			sp := lineSpec{locs: r.Intn(4), vars: r.Intn(3)}
			specs = append(specs, sp)
			for j := 0; j < sp.locs; j++ {
				ctx.PushSourceLoc(fmt.Sprintf("f%d.dsl", r.Intn(3)), r.Intn(100)+1, fmt.Sprintf("fn%d", r.Intn(4)))
			}
			for j := 0; j < sp.vars; j++ {
				// Include awkward characters to stress string quoting.
				ctx.SetVar(fmt.Sprintf("k%d", j), fmt.Sprintf("v\"%d\n\t%d\\", r.Intn(10), r.Intn(10)))
			}
			ctx.Nextl()
		}
		if err := ctx.EndSection(); err != nil {
			t.Fatal(err)
		}
		want := ctx.Records()
		tables := roundTrip(t, ctx)
		if len(tables.Records) != len(want) {
			t.Logf("seed %d: record counts differ: %d vs %d", seed, len(tables.Records), len(want))
			return false
		}
		for i := range want {
			a, b := want[i], tables.Records[i]
			if a.GenLine != b.GenLine || len(a.Stack) != len(b.Stack) || len(a.Vars) != len(b.Vars) {
				t.Logf("seed %d: record %d shape differs", seed, i)
				return false
			}
			for j := range a.Stack {
				if a.Stack[j] != b.Stack[j] {
					t.Logf("seed %d: stack entry %d/%d differs: %+v vs %+v", seed, i, j, a.Stack[j], b.Stack[j])
					return false
				}
			}
			for j := range a.Vars {
				if a.Vars[j] != b.Vars[j] {
					t.Logf("seed %d: var %d/%d differs: %+v vs %+v", seed, i, j, a.Vars[j], b.Vars[j])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDecodeWithoutTables(t *testing.T) {
	prog, err := minic.Compile("p.c", "func int main() { return 0; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := minic.NewVM(prog, nil)
	if _, err := Decode(vm); err == nil || !strings.Contains(err.Error(), "no D2X tables") {
		t.Errorf("decode of table-less program: %v", err)
	}
}

func TestDecodeCorruptTables(t *testing.T) {
	// A program that declares the table globals but fills them with
	// inconsistent data: the decoder must error, not panic.
	src := `
global string[] __d2x_strtab;
global int[] __d2x_rec_line;
global int[] __d2x_rec_src_off;
global int[] __d2x_rec_src_cnt;
global int[] __d2x_rec_var_off;
global int[] __d2x_rec_var_cnt;
global int[] __d2x_src_file;
global int[] __d2x_src_line;
global int[] __d2x_src_func;
global int[] __d2x_var_key;
global int[] __d2x_var_kind;
global int[] __d2x_var_val;
global int __d2x_rec_count = 1;
func void __init_d2x_0() {
	__d2x_strtab = new string[1];
	__d2x_rec_line = new int[1];
	__d2x_rec_src_off = new int[1];
	__d2x_rec_src_cnt = new int[1];
	__d2x_rec_src_cnt[0] = 99;
	__d2x_rec_var_off = new int[1];
	__d2x_rec_var_cnt = new int[1];
	__d2x_src_file = new int[0];
	__d2x_src_line = new int[0];
	__d2x_src_func = new int[0];
	__d2x_var_key = new int[0];
	__d2x_var_kind = new int[0];
	__d2x_var_val = new int[0];
}
func int main() { return 0; }
`
	prog, err := minic.Compile("corrupt.c", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := minic.NewVM(prog, nil)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(vm); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("decode of corrupt tables: %v", err)
	}
}

func TestFileMatching(t *testing.T) {
	cases := []struct {
		full, query string
		want        bool
	}{
		{"a/b/c.dsl", "c.dsl", true},
		{"a/b/c.dsl", "b/c.dsl", true},
		{"a/b/c.dsl", "a/b/c.dsl", true},
		{"a/b/xc.dsl", "c.dsl", false},
		{"c.dsl", "c.dsl", true},
		{"c.dsl", "d.dsl", false},
		// A basename query must only match at a path boundary: "a.gt" is
		// a suffix of "extra.gt" but names a different file.
		{"extra.gt", "a.gt", false},
		{"dir/extra.gt", "a.gt", false},
		{"dir/a.gt", "a.gt", true},
		// Empty query matches everything (the "any file" wildcard).
		{"a/b/c.dsl", "", true},
		{"", "", true},
		// Exact path, including one without any separator.
		{"a.gt", "a.gt", true},
		{"a.gt", "r/a.gt", false},
	}
	for _, tc := range cases {
		if got := fileMatches(tc.full, tc.query); got != tc.want {
			t.Errorf("fileMatches(%q, %q) = %v, want %v", tc.full, tc.query, got, tc.want)
		}
	}
}

func TestEmptyContextEmits(t *testing.T) {
	ctx := d2xc.NewContext()
	tables := roundTrip(t, ctx)
	if len(tables.Records) != 0 {
		t.Errorf("records = %d, want 0", len(tables.Records))
	}
}

func TestChunkedInitFunctions(t *testing.T) {
	// Enough records to force multiple __init_d2x_* chunks.
	ctx := d2xc.NewContext()
	if err := ctx.BeginSectionAt(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 700; i++ {
		ctx.PushSourceLoc(fmt.Sprintf("file%d.dsl", i%5), i+1, "fn")
		ctx.SetVar("k", fmt.Sprintf("v%d", i))
		ctx.Nextl()
	}
	if err := ctx.EndSection(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := EmitTables(ctx, &b); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "func void __init_d2x_") < 2 {
		t.Errorf("expected multiple init chunks")
	}
	tables := roundTrip(t, ctx)
	if len(tables.Records) != 700 {
		t.Errorf("records = %d, want 700", len(tables.Records))
	}
}

// multiFileTables builds tables spanning several DSL files whose names
// share suffixes, to exercise the forward index's file resolution.
// Generated lines start at 1; each context line i has stack top
// (files[i%len], dslLine) per the schedule below.
func multiFileTables(t *testing.T) *Tables {
	t.Helper()
	ctx := d2xc.NewContext()
	if err := ctx.BeginSectionAt(1); err != nil {
		t.Fatal(err)
	}
	// (file, dslLine) per generated line, in table order.
	schedule := []struct {
		file string
		line int
	}{
		{"dsl/a.gt", 3},
		{"extra.gt", 3},
		{"a.gt", 3},
		{"other/a.gt", 3},
		{"dsl/a.gt", 3}, // second generated line for the same DSL location
		{"dsl/a.gt", 7},
	}
	for _, s := range schedule {
		ctx.PushSourceLoc(s.file, s.line, "fn")
		ctx.Nextl()
	}
	if err := ctx.EndSection(); err != nil {
		t.Fatal(err)
	}
	return roundTrip(t, ctx)
}

// genLinesLinear is the pre-index reference implementation: scan every
// record, match its stack top. The forward index must agree with it.
func genLinesLinear(tb *Tables, file string, line int) []int {
	var out []int
	for _, r := range tb.Records {
		top, ok := r.Stack.Top()
		if !ok {
			continue
		}
		if top.Line == line && fileMatches(top.File, file) {
			out = append(out, r.GenLine)
		}
	}
	return out
}

func TestForwardIndexMatchesLinearScan(t *testing.T) {
	tables := multiFileTables(t)
	queries := []struct {
		file string
		line int
	}{
		{"a.gt", 3},       // suffix: hits dsl/a.gt, a.gt, other/a.gt — not extra.gt
		{"extra.gt", 3},   // exact basename
		{"dsl/a.gt", 3},   // exact path, two generated lines
		{"dsl/a.gt", 7},   //
		{"", 3},           // wildcard file: every file at line 3
		{"a.gt", 99},      // no such line
		{"missing.gt", 3}, // no such file
	}
	for _, q := range queries {
		got := tables.GenLinesForDSL(q.file, q.line)
		want := genLinesLinear(tables, q.file, q.line)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("GenLinesForDSL(%q, %d) = %v, linear scan = %v", q.file, q.line, got, want)
		}
	}
	// The suffix query must have merged records from three files back
	// into table order.
	if got := tables.GenLinesForDSL("a.gt", 3); fmt.Sprint(got) != "[1 3 4 5]" {
		t.Errorf("suffix query order = %v, want [1 3 4 5]", got)
	}
}

// TestQueryResultsAreFresh: mutating what a query returned must not
// change what the next identical query sees — the immutability contract
// concurrent sessions rely on.
func TestQueryResultsAreFresh(t *testing.T) {
	tables := multiFileTables(t)
	lines := tables.GenLinesForDSL("dsl/a.gt", 3)
	if len(lines) != 2 {
		t.Fatalf("GenLinesForDSL = %v, want 2 entries", lines)
	}
	before := fmt.Sprint(lines)
	for i := range lines {
		lines[i] = -1
	}
	trimmed := lines[:0] // the old xbreak filter pattern
	_ = append(trimmed, -2)
	if again := tables.GenLinesForDSL("dsl/a.gt", 3); fmt.Sprint(again) != before {
		t.Errorf("query after caller mutation = %v, want %v", again, before)
	}
	files := tables.DSLFiles()
	for i := range files {
		files[i] = "clobbered"
	}
	if again := tables.DSLFiles(); len(again) == 0 || again[0] == "clobbered" {
		t.Errorf("DSLFiles after caller mutation = %v", again)
	}
}

// roundTripFX is roundTrip with explicit effect-summary rows.
func roundTripFX(t *testing.T, ctx *d2xc.Context, fx []HandlerEffect) *Tables {
	t.Helper()
	var b strings.Builder
	if err := EmitTablesFX(ctx, fx, &b); err != nil {
		t.Fatal(err)
	}
	b.WriteString("func int main() { return 0; }\n")
	prog, err := minic.Compile("tables.c", b.String(), nil)
	if err != nil {
		t.Fatalf("emitted tables do not compile: %v\n%s", err, b.String())
	}
	vm := minic.NewVM(prog, nil)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	tables, err := Decode(vm)
	if err != nil {
		t.Fatal(err)
	}
	return tables
}

func fxContext(t *testing.T) *d2xc.Context {
	t.Helper()
	ctx := d2xc.NewContext()
	if err := ctx.BeginSectionAt(1); err != nil {
		t.Fatal(err)
	}
	ctx.PushSourceLoc("a.dsl", 1, "f")
	ctx.SetVarHandler("fr", d2xc.RTVHandler{FuncName: "__h"})
	ctx.Nextl()
	if err := ctx.EndSection(); err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestFXRoundTrip: effect summaries survive the emit → compile → run →
// decode wire path, including a quoted handler name.
func TestFXRoundTrip(t *testing.T) {
	fx := []HandlerEffect{
		{Handler: "__h", Mask: 3, Loop: 1},
		{Handler: `odd"name`, Mask: 0, Loop: 0},
	}
	tables := roundTripFX(t, fxContext(t), fx)
	if !tables.HasFX() {
		t.Fatal("HasFX = false after FX emit")
	}
	if got := tables.HandlerFXNames(); len(got) != 2 || got[0] != "__h" || got[1] != `odd"name` {
		t.Fatalf("HandlerFXNames = %q", got)
	}
	h, ok := tables.HandlerFX("__h")
	if !ok || h.Mask != 3 || h.Loop != 1 {
		t.Errorf("HandlerFX(__h) = %+v ok=%v, want mask=3 loop=1", h, ok)
	}
	if _, ok := tables.HandlerFX("missing"); ok {
		t.Error("HandlerFX(missing) = ok")
	}
}

// TestFXEmptyVsAbsent distinguishes a post-analysis build with zero
// handlers (columns present, empty) from a pre-analysis build (columns
// absent): HasFX is true for the former, false for the latter.
func TestFXEmptyVsAbsent(t *testing.T) {
	tables := roundTripFX(t, fxContext(t), nil)
	if !tables.HasFX() {
		t.Error("HasFX = false for empty-FX build; columns should still be emitted")
	}
	if n := tables.HandlerFXNames(); len(n) != 0 {
		t.Errorf("HandlerFXNames = %q, want empty", n)
	}

	// Simulate a pre-analysis build by stripping every __d2x_fx line
	// from the emitted source.
	var b strings.Builder
	if err := EmitTablesFX(fxContext(t), nil, &b); err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.Contains(line, "__d2x_fx") {
			continue
		}
		kept = append(kept, line)
	}
	src := strings.Join(kept, "\n") + "func int main() { return 0; }\n"
	prog, err := minic.Compile("tables.c", src, nil)
	if err != nil {
		t.Fatalf("stripped tables do not compile: %v\n%s", err, src)
	}
	vm := minic.NewVM(prog, nil)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	old, err := Decode(vm)
	if err != nil {
		t.Fatalf("pre-analysis build must decode cleanly: %v", err)
	}
	if old.HasFX() {
		t.Error("HasFX = true for build without FX columns")
	}
}
