package d2x

import (
	"strings"
	"testing"

	"d2x/internal/d2x/d2xr"
)

// runScript executes a break/clear script returned by a typed batch op
// on the session's debugger, line by line — what a typed caller does in
// place of the xbreak/xdel macros' eval step.
func runScript(t *testing.T, d interface{ Execute(string) error }, script string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSpace(script), "\n") {
		if line == "" {
			continue
		}
		if err := d.Execute(line); err != nil {
			t.Fatalf("script line %q: %v", line, err)
		}
	}
}

// TestExecBatchMatchesSingleCommands is the typed-layer correctness pin:
// one ExecBatch over a mixed command sequence must be byte-identical to
// executing the same commands one native call each — including the
// debugger-side effects of the scripts xbreak/xdel return, and including
// which commands fail.
func TestExecBatchMatchesSingleCommands(t *testing.T) {
	b := buildPower(t, true)
	dA, outA := session(t, b) // singles
	dB, outB := session(t, b) // batch
	exec(t, dA, "break power_gen.c:5", "run")
	exec(t, dB, "break power_gen.c:5", "run")
	rt := b.Runtime

	// Learn the paused rip/rsp the macros would pass: run one xbt on the
	// singles session and read them back from its session state. Both
	// sessions pause at the same deterministic spot.
	exec(t, dA, "xbt")
	stA := rt.StateFor(dA.Process().VM)
	rip, rsp := stA.LastRIP, stA.CurRSP

	steps := []struct {
		line string
		op   d2xr.BatchOp
	}{
		{"xbt", d2xr.BatchOp{Kind: d2xr.BatchXBT, RIP: rip, RSP: rsp}},
		{"xframe 1", d2xr.BatchOp{Kind: d2xr.BatchXFrame, RIP: rip, RSP: rsp, Arg: "1"}},
		{"xlist", d2xr.BatchOp{Kind: d2xr.BatchXList, RIP: rip, RSP: rsp}},
		{"xvars", d2xr.BatchOp{Kind: d2xr.BatchXVars, RIP: rip, RSP: rsp}},
		{"xframe 0", d2xr.BatchOp{Kind: d2xr.BatchXFrame, RIP: rip, RSP: rsp, Arg: "0"}},
		{"xvars res_view", d2xr.BatchOp{Kind: d2xr.BatchXVars, RIP: rip, RSP: rsp, Arg: "res_view"}},
		{"xbreak power.dsl:6", d2xr.BatchOp{Kind: d2xr.BatchXBreak, RIP: rip, Arg: "power.dsl:6"}},
		{"xbreak", d2xr.BatchOp{Kind: d2xr.BatchXBreak, RIP: rip}},
		{"xbreak power.dsl:999", d2xr.BatchOp{Kind: d2xr.BatchXBreak, RIP: rip, Arg: "power.dsl:999"}},
		{"xdel 1", d2xr.BatchOp{Kind: d2xr.BatchXDel, Arg: "1"}},
		{"xdel 1", d2xr.BatchOp{Kind: d2xr.BatchXDel, Arg: "1"}}, // now gone: fails
		{"xbt", d2xr.BatchOp{Kind: d2xr.BatchXBT, RIP: rip, RSP: rsp}},
	}

	type result struct {
		out string
		err error
	}
	single := make([]result, len(steps))
	for i, s := range steps {
		outA.Reset()
		err := dA.Execute(s.line)
		single[i] = result{outA.String(), err}
	}

	ops := make([]d2xr.BatchOp, len(steps))
	for i, s := range steps {
		ops[i] = s.op
	}
	var res d2xr.BatchResults
	rt.ExecBatch(dB.Process().VM, ops, &res)
	if len(res.Ops) != len(steps) {
		t.Fatalf("ExecBatch returned %d results for %d ops", len(res.Ops), len(steps))
	}

	for i := range steps {
		sErr, bErr := single[i].err, res.Ops[i].Err
		if (sErr == nil) != (bErr == nil) {
			t.Errorf("step %d (%s): single err = %v, batch err = %v", i, steps[i].line, sErr, bErr)
			continue
		}
		if bErr != nil {
			// The macro path wraps the native error; the typed path returns
			// it bare. The underlying failure must be the same one.
			if !strings.Contains(sErr.Error(), bErr.Error()) {
				t.Errorf("step %d (%s): single err %q does not carry batch err %q", i, steps[i].line, sErr, bErr)
			}
			if len(res.Output(i)) != 0 {
				t.Errorf("step %d (%s): failed op left output %q", i, steps[i].line, res.Output(i))
			}
			continue
		}
		// The single path's transcript is the native output plus whatever
		// the returned script printed when eval executed it; replay the
		// typed op's script on the batch session to line the two up.
		combined := string(res.Output(i))
		if sc := res.Ops[i].Script; sc != "" {
			outB.Reset()
			runScript(t, dB, sc)
			combined += outB.String()
		}
		if combined != single[i].out {
			t.Errorf("step %d (%s) diverged:\nsingle: %q\nbatch:  %q", i, steps[i].line, single[i].out, combined)
		}
	}
}

// TestXBTBatchMatchesSequentialXBT: one fused-index walk over N rips
// appends exactly the bytes N single xbt calls print, and an
// unresolvable rip aborts with the buffer truncated to its input length.
func TestXBTBatchMatchesSequentialXBT(t *testing.T) {
	b := buildPower(t, true)
	d, out := session(t, b)
	exec(t, d, "break power_gen.c:5", "run")
	rt := b.Runtime
	vm := d.Process().VM

	out.Reset()
	exec(t, d, "xbt")
	rip := rt.StateFor(vm).LastRIP
	one := out.String()
	out.Reset()
	exec(t, d, "xbt", "xbt")
	want := one + out.String()

	got, err := rt.XBTBatch(vm, []int64{rip, rip, rip}, nil)
	if err != nil {
		t.Fatalf("XBTBatch: %v", err)
	}
	if string(got) != want {
		t.Errorf("XBTBatch diverged from 3 sequential xbts:\nwant %q\ngot  %q", want, string(got))
	}

	// Buffer reuse: a second call over the same slice appends cleanly.
	got2, err := rt.XBTBatch(vm, []int64{rip}, got[:0])
	if err != nil {
		t.Fatalf("XBTBatch reuse: %v", err)
	}
	if string(got2) != one {
		t.Errorf("reused buffer: want %q, got %q", one, string(got2))
	}

	// An unresolvable rip fails the batch and contributes no bytes, even
	// after earlier rips resolved.
	prefix := []byte("prefix:")
	got3, err := rt.XBTBatch(vm, []int64{rip, 1 << 62}, prefix)
	if err == nil || !strings.Contains(err.Error(), "no line info") {
		t.Fatalf("bogus rip: got err %v, want a no-line-info error", err)
	}
	if string(got3) != "prefix:" {
		t.Errorf("aborted batch must truncate to the input length, got %q", string(got3))
	}
}

// TestResolveBreakSetMatchesSingleXBreaks: N specs resolve and install in
// one pass with the single path's output and IDs, the union script
// dedupes overlapping specs, and resolution is atomic — one bad spec
// installs nothing.
func TestResolveBreakSetMatchesSingleXBreaks(t *testing.T) {
	b := buildPower(t, true)
	dA, outA := session(t, b) // singles
	dB, outB := session(t, b) // break set
	exec(t, dA, "break power_gen.c:5", "run")
	exec(t, dB, "break power_gen.c:5", "run")
	rt := b.Runtime
	exec(t, dA, "xbt")
	rip := rt.StateFor(dA.Process().VM).LastRIP
	vmB := dB.Process().VM

	outA.Reset()
	exec(t, dA, "xbreak power.dsl:6", "xbreak 7")
	singleOut := outA.String()

	var bs d2xr.BreakSet
	if err := rt.ResolveBreakSet(vmB, rip, []string{"power.dsl:6", "7"}, &bs); err != nil {
		t.Fatalf("ResolveBreakSet: %v", err)
	}
	wantOut := "Inserting 4 breakpoints with ID: #1\nInserting 3 breakpoints with ID: #2\n"
	if string(bs.Output) != wantOut {
		t.Errorf("set output:\nwant %q\ngot  %q", wantOut, string(bs.Output))
	}
	if len(bs.IDs) != 2 || bs.IDs[0] != 1 || bs.IDs[1] != 2 {
		t.Errorf("set IDs = %v, want [1 2]", bs.IDs)
	}
	// The single path printed the same native lines (with the script's
	// debugger banners interleaved after each).
	for _, line := range strings.SplitAfter(wantOut, "\n") {
		if line != "" && !strings.Contains(singleOut, line) {
			t.Errorf("single transcript missing %q:\n%s", line, singleOut)
		}
	}

	// Replaying the union script installs the same debugger breakpoints
	// the two single xbreaks did: 4 + 3 disjoint generated lines.
	outB.Reset()
	runScript(t, dB, bs.Script)
	if got, want := strings.Count(outB.String(), "Breakpoint "), strings.Count(singleOut, "Breakpoint "); got != want {
		t.Errorf("union script installed %d debugger breakpoints, singles installed %d", got, want)
	}

	// Both sessions now list identical DSL breakpoints, byte for byte.
	outA.Reset()
	exec(t, dA, "xbreak")
	var res d2xr.BatchResults
	rt.ExecBatch(vmB, []d2xr.BatchOp{{Kind: d2xr.BatchXBreak, RIP: rip}}, &res)
	if err := res.Ops[0].Err; err != nil {
		t.Fatalf("xbreak listing op: %v", err)
	}
	if string(res.Output(0)) != outA.String() {
		t.Errorf("listing diverged:\nsingle: %q\nset:    %q", outA.String(), res.Output(0))
	}

	// Overlapping specs: both install (IDs advance like repeated single
	// xbreaks) but the union script carries each generated line once.
	if err := rt.ResolveBreakSet(vmB, rip, []string{"power.dsl:6", "power.dsl:6"}, &bs); err != nil {
		t.Fatalf("overlapping set: %v", err)
	}
	if len(bs.IDs) != 2 || bs.IDs[0] != 3 || bs.IDs[1] != 4 {
		t.Errorf("overlapping set IDs = %v, want [3 4]", bs.IDs)
	}
	if got := strings.Count(bs.Script, "break "); got != 4 {
		t.Errorf("overlapping set script has %d break commands, want 4 (deduped):\n%s", got, bs.Script)
	}

	// A spec with no generated code reports it and installs nothing for
	// that spec (ID 0), exactly as the single command does.
	if err := rt.ResolveBreakSet(vmB, rip, []string{"power.dsl:999"}, &bs); err != nil {
		t.Fatalf("no-code set: %v", err)
	}
	if string(bs.Output) != "No generated code for power.dsl:999\n" || len(bs.IDs) != 1 || bs.IDs[0] != 0 {
		t.Errorf("no-code set: output %q, IDs %v", bs.Output, bs.IDs)
	}
	if bs.Script != "" {
		t.Errorf("no-code set returned a script: %q", bs.Script)
	}

	// Atomicity: a bad spec anywhere in the set aborts before anything is
	// installed.
	before := len(rt.BreakpointsFor(vmB))
	if err := rt.ResolveBreakSet(vmB, rip, []string{"8", "what"}, &bs); err == nil {
		t.Fatal("bad spec in set did not fail")
	}
	if err := rt.ResolveBreakSet(vmB, rip, []string{"8", ""}, &bs); err == nil || !strings.Contains(err.Error(), "empty breakpoint spec") {
		t.Fatalf("empty spec in set: got %v", err)
	}
	if after := len(rt.BreakpointsFor(vmB)); after != before {
		t.Errorf("failed set half-installed: %d breakpoints before, %d after", before, after)
	}
}

// TestPinSessionDefersInvalidateAcrossBatch: the wire server wraps a
// whole batch in PinSession, so a build re-attach (Invalidate) that
// lands mid-batch must not reset the session until the pin drops —
// including across the nested per-op Checkout/Checkin pairs inside
// ExecBatch.
func TestPinSessionDefersInvalidateAcrossBatch(t *testing.T) {
	b := buildPower(t, true)
	d, _ := session(t, b)
	exec(t, d, "break power_gen.c:5", "run", "xbreak power.dsl:6")
	rt := b.Runtime
	vm := d.Process().VM
	st := rt.StateFor(vm)
	rip := st.LastRIP
	if len(st.XBPs) != 1 {
		t.Fatalf("setup: %d DSL breakpoints, want 1", len(st.XBPs))
	}

	pin := rt.PinSession(vm)
	if pin.State() != st {
		t.Fatalf("PinSession pinned a different state object")
	}
	// Re-attaching the same debug blob is how a rebuild lands: it
	// invalidates the shared tables and resets every session — except
	// pinned ones, whose reset is deferred.
	if err := rt.AttachDebugInfo(b.DebugBlob); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	if len(st.XBPs) != 1 {
		t.Error("Invalidate reset a pinned session mid-batch")
	}

	// A batch op under the pin nests its own Checkout/Checkin; the inner
	// Checkin must not apply the deferred reset while the outer pin holds.
	var res d2xr.BatchResults
	rt.ExecBatch(vm, []d2xr.BatchOp{{Kind: d2xr.BatchXBreak, RIP: rip}}, &res)
	if err := res.Ops[0].Err; err != nil {
		t.Fatalf("listing op under pin: %v", err)
	}
	if !strings.Contains(string(res.Output(0)), "power.dsl:6") {
		t.Errorf("pinned session lost its breakpoint from the batch's view: %q", res.Output(0))
	}
	if len(st.XBPs) != 1 {
		t.Error("nested Checkin applied the deferred reset before the pin dropped")
	}

	pin.Unpin()
	if len(st.XBPs) != 0 {
		t.Error("deferred reset not applied when the pin dropped")
	}

	// The zero pin is a no-op, so a pin can be stored unconditionally.
	var zero d2xr.SessionPin
	zero.Unpin()
	if zero.State() != nil {
		t.Error("zero pin has a state")
	}
}
