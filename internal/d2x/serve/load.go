package serve

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"d2x/internal/d2x/wire"
)

// LoadConfig configures a load run against a debug server.
type LoadConfig struct {
	// Addr is the server to drive. Empty starts an in-process server on a
	// loopback port for the duration of the run.
	Addr string
	// Clients is how many concurrent connections to hold open, each with
	// its own live debug session.
	Clients int
	// CommandsPerClient is the steady-state command count per client:
	// alternating xbt/xvars round trips against a session stopped at a
	// breakpoint, the paper's interactive hot path.
	CommandsPerClient int
	// Example is the build every session launches (default "power").
	Example string
	// Batch, when >= 2, groups the steady-state commands into batch
	// requests of this many sub-commands: one wire round trip and one
	// server-side session pin per batch instead of per command. 0 or 1
	// issues them as standalone requests.
	Batch int
}

// LoadResult is the outcome of one load run. Latencies are exact
// quantiles over every measured steady-state command, not histogram
// buckets.
type LoadResult struct {
	Clients  int   `json:"clients"`
	Batch    int   `json:"batch,omitempty"`
	Commands int64 `json:"commands"`
	Errors   int64 `json:"errors"`
	// ElapsedMS is wall time for the whole run; CommandsPerSec counts
	// debugger commands (batch sub-commands individually), and
	// CommandsPerSecPerCore divides that by GOMAXPROCS so runs on
	// different hosts and CI shapes compare on one axis.
	ElapsedMS             float64 `json:"elapsed_ms"`
	CommandsPerSec        float64 `json:"commands_per_sec"`
	CommandsPerSecPerCore float64 `json:"commands_per_sec_per_core"`
	P50MS                 float64 `json:"p50_ms"`
	P99MS                 float64 `json:"p99_ms"`
	MaxMS                 float64 `json:"max_ms"`
}

// RunLoad drives cfg.Clients concurrent debug sessions and reports
// throughput and command-latency quantiles. Every client runs the same
// script: launch, set a breakpoint on the staged function, run to it,
// then issue the steady-state commands; setup commands are not measured.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("serve: load needs a positive client count")
	}
	if cfg.CommandsPerClient <= 0 {
		cfg.CommandsPerClient = 20
	}
	if cfg.Example == "" {
		cfg.Example = "power"
	}

	addr := cfg.Addr
	if addr == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := New()
		done := make(chan struct{})
		go func() { defer close(done); srv.Serve(ln) }()
		defer func() { srv.Close(); <-done }()
		addr = ln.Addr().String()
		// Build the example before the clients stampede: the first launch
		// pays the build under the catalogue lock either way, but paying
		// it here keeps it out of every client's setup window.
		if _, err := srv.build(cfg.Example); err != nil {
			return nil, err
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		latNS    []int64
		cmdCount atomic.Int64
		errCount atomic.Int64
	)
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lats, cmds, err := loadClient(addr, cfg)
			if err != nil {
				errCount.Add(1)
				return
			}
			cmdCount.Add(cmds)
			mu.Lock()
			latNS = append(latNS, lats...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadResult{
		Clients:   cfg.Clients,
		Batch:     cfg.Batch,
		Commands:  cmdCount.Load(),
		Errors:    errCount.Load(),
		ElapsedMS: float64(elapsed.Nanoseconds()) / 1e6,
	}
	if len(latNS) == 0 {
		return res, fmt.Errorf("serve: load run measured no commands (%d client errors)", res.Errors)
	}
	res.CommandsPerSec = float64(res.Commands) / elapsed.Seconds()
	res.CommandsPerSecPerCore = res.CommandsPerSec / float64(runtime.GOMAXPROCS(0))
	sort.Slice(latNS, func(a, b int) bool { return latNS[a] < latNS[b] })
	res.P50MS = float64(latNS[len(latNS)/2]) / 1e6
	res.P99MS = float64(latNS[len(latNS)*99/100]) / 1e6
	res.MaxMS = float64(latNS[len(latNS)-1]) / 1e6
	return res, nil
}

// loadClient runs one scripted session and returns its measured
// round-trip latencies plus how many debugger commands they carried
// (equal in sequential mode; Batch per round trip in batch mode).
func loadClient(addr string, cfg LoadConfig) ([]int64, int64, error) {
	c, err := wire.DialTimeout(addr, 30*time.Second)
	if err != nil {
		return nil, 0, err
	}
	defer c.Close()

	if _, err := c.Do(wire.CmdLaunch, &wire.Args{Example: cfg.Example}); err != nil {
		return nil, 0, err
	}
	// Stop inside the staged function so the D2X commands have a frame
	// with DSL context to resolve.
	if _, err := c.Do(wire.CmdBreak, &wire.Args{Spec: breakSpecFor(cfg.Example)}); err != nil {
		return nil, 0, err
	}
	if _, err := c.Do(wire.CmdRun, nil); err != nil {
		return nil, 0, err
	}
	c.Events()

	subCmd := func(i int) (string, *wire.Args) {
		if i%2 == 1 {
			return wire.CmdXVars, nil
		}
		return wire.CmdXBT, nil
	}

	var cmds int64
	lats := make([]int64, 0, cfg.CommandsPerClient)
	if cfg.Batch >= 2 {
		subs := make([]wire.SubRequest, 0, cfg.Batch)
		for done := 0; done < cfg.CommandsPerClient; {
			subs = subs[:0]
			for len(subs) < cfg.Batch && done+len(subs) < cfg.CommandsPerClient {
				cmd, args := subCmd(done + len(subs))
				subs = append(subs, wire.SubRequest{Command: cmd, Arguments: args})
			}
			t0 := time.Now()
			results, err := c.DoBatch(subs)
			if err != nil {
				return nil, 0, err
			}
			lats = append(lats, time.Since(t0).Nanoseconds())
			for _, r := range results {
				if !r.Success {
					return nil, 0, fmt.Errorf("serve: batch sub-command failed: %s", r.Message)
				}
			}
			done += len(subs)
			cmds += int64(len(subs))
		}
	} else {
		for i := 0; i < cfg.CommandsPerClient; i++ {
			cmd, args := subCmd(i)
			t0 := time.Now()
			if _, err := c.Do(cmd, args); err != nil {
				return nil, 0, err
			}
			lats = append(lats, time.Since(t0).Nanoseconds())
			cmds++
		}
	}
	_, err = c.Do(wire.CmdDisconnect, nil)
	return lats, cmds, err
}

// breakSpecFor names the staged function of each example build — the
// breakpoint the load script stops at.
func breakSpecFor(example string) string {
	switch example {
	case "power":
		return "power_15"
	case "quickstart":
		return "sum_squares"
	case "einsum":
		return "m_v_mul"
	}
	return "main"
}
