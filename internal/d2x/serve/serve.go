// Package serve implements the d2xserve daemon: debug-as-a-service over
// the wire protocol of internal/d2x/wire.
//
// One server process owns the example builds. Each accepted connection
// gets one debug session (its own debuggee VM and debugger) against the
// build it launches, while every session of a build shares the build's
// D2X runtime — one table decode, one fused rip index, a sharded session
// registry — which is exactly the multiplexing the registry work exists
// for. A connection is served by two goroutines: a reader that decodes
// and executes requests one at a time, and a writer that owns the socket
// and drains an outbound queue. Responses are never dropped; events ride
// a bounded segment of the queue and are shed oldest-first when a client
// reads too slowly, with the cumulative shed count attached to every
// event (Body.Dropped) and mirrored in obs under serve.events.dropped.
package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"d2x/internal/d2x"
	"d2x/internal/d2x/d2xr"
	"d2x/internal/d2x/wire"
	"d2x/internal/debugger"
	"d2x/internal/examplebuilds"
	"d2x/internal/minic"
	"d2x/internal/obs"
)

// maxQueuedEvents bounds the droppable (event) portion of a connection's
// outbound queue. Responses do not count against it.
const maxQueuedEvents = 256

var (
	srvConns        = obs.GetGauge("serve.conns")
	srvSessions     = obs.GetCounter("serve.sessions")
	srvRequests     = obs.GetCounter("serve.requests")
	srvErrors       = obs.GetCounter("serve.request_errors")
	srvBadFrames    = obs.GetCounter("serve.bad_frames")
	srvDropped      = obs.GetCounter("serve.events.dropped")
	srvEvents       = obs.GetCounter("serve.events.sent")
	srvCmdLatency   = obs.GetHistogram("serve.cmd.latency")
	srvWriteErrors  = obs.GetCounter("serve.write_errors")
	srvBuildsShared = obs.GetCounter("serve.builds.reused")
)

// BuildFunc constructs a named build. The stock server uses
// examplebuilds.Build; tests may inject their own catalogue.
type BuildFunc func(name string) (*d2x.Build, error)

// Server is the debug service. Zero value is not usable; call New.
type Server struct {
	buildFn BuildFunc

	buildMu sync.Mutex
	builds  map[string]*d2x.Build

	connMu sync.Mutex
	conns  map[*conn]struct{}
	ln     net.Listener
	closed bool

	nextSess atomic.Int64
	wg       sync.WaitGroup
}

// New returns a server building examples through examplebuilds.
func New() *Server { return NewWithBuilds(examplebuilds.Build) }

// NewWithBuilds returns a server with a custom build catalogue.
func NewWithBuilds(fn BuildFunc) *Server {
	return &Server{buildFn: fn, builds: map[string]*d2x.Build{}, conns: map[*conn]struct{}{}}
}

// build returns the shared build for name, constructing it on first use.
// All sessions launching the same name share one build — and therefore
// one D2X runtime and one decoded table set.
func (s *Server) build(name string) (*d2x.Build, error) {
	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	if b, ok := s.builds[name]; ok {
		srvBuildsShared.Inc()
		return b, nil
	}
	b, err := s.buildFn(name)
	if err != nil {
		return nil, err
	}
	s.builds[name] = b
	return b, nil
}

// Serve accepts connections on ln until the listener is closed. It
// returns nil after a Close-triggered shutdown and the accept error
// otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.connMu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.connMu.Lock()
			closed := s.closed
			s.connMu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		cn := newConn(s, c)
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			c.Close()
			return nil
		}
		s.conns[cn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(2)
		go cn.writeLoop()
		go cn.readLoop()
	}
}

// ListenAndServe listens on addr and serves. The returned ready func
// reports the bound address; see cmd/d2xserve for the flag plumbing.
func (s *Server) ListenAndServe(addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr())
	}
	return s.Serve(ln)
}

// Close shuts the server down: stops accepting, closes every live
// connection, and waits for their goroutines to drain.
func (s *Server) Close() error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for cn := range s.conns {
		conns = append(conns, cn)
	}
	s.connMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, cn := range conns {
		cn.shutdown()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) dropConn(cn *conn) {
	s.connMu.Lock()
	delete(s.conns, cn)
	s.connMu.Unlock()
}

// outQueue is a connection's outbound frame queue: a FIFO whose event
// frames are droppable (bounded, shed oldest-first) and whose response
// frames are not. One writer goroutine drains it onto the socket.
type outQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []outItem
	nEvents int
	dropped int64 // cumulative sheds, attached to outgoing events
	closed  bool
}

type outItem struct {
	f         *wire.Frame
	droppable bool
}

func newOutQueue() *outQueue {
	q := &outQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a frame. Droppable frames shed the oldest droppable
// entry when the event segment is full; non-droppable frames always
// enter the queue (the reader executes one command at a time, so at most
// one response is ever pending).
func (q *outQueue) push(f *wire.Frame, droppable bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	if droppable && q.nEvents >= maxQueuedEvents {
		for i, it := range q.items {
			if it.droppable {
				q.items = append(q.items[:i], q.items[i+1:]...)
				q.nEvents--
				q.dropped++
				srvDropped.Inc()
				break
			}
		}
	}
	if droppable {
		q.nEvents++
	}
	q.items = append(q.items, outItem{f: f, droppable: droppable})
	q.cond.Signal()
}

// pop blocks for the next frame; ok is false once the queue is closed
// and drained. Events leave with the cumulative shed count stamped on.
func (q *outQueue) pop() (*wire.Frame, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	if it.droppable {
		q.nEvents--
		if q.dropped > 0 {
			if it.f.Body == nil {
				it.f.Body = &wire.Body{}
			}
			it.f.Body.Dropped = q.dropped
		}
	}
	return it.f, true
}

// close stops the queue accepting new frames. Already-queued frames stay
// and are still drained by pop — a clean disconnect flushes its final
// response; abortive shutdown relies on the socket close failing the
// writes instead.
func (q *outQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// conn is one client connection: its socket, its outbound queue, and —
// after a successful launch — its debug session.
type conn struct {
	srv *Server
	c   net.Conn
	q   *outQueue

	dbg       *debugger.Debugger
	sessionID int64
	// rt and vm identify this session's D2X runtime and debuggee VM
	// (nil for builds compiled without D2X). The batch handler pins the
	// session state through them so a whole batch is atomic with respect
	// to Invalidate and Release.
	rt *d2xr.Runtime
	vm *minic.VM

	progOut    bytes.Buffer // debuggee output, drained into output events
	transcript bytes.Buffer // debugger transcript, returned in responses
	seq        int64        // server-side frame sequence

	writerDone chan struct{}
}

func newConn(s *Server, c net.Conn) *conn {
	return &conn{srv: s, c: c, q: newOutQueue(), writerDone: make(chan struct{})}
}

// shutdown force-closes the connection from the server side.
func (cn *conn) shutdown() {
	cn.q.close()
	cn.c.Close()
}

// writeLoop owns all socket writes: it drains the queue until the queue
// closes or a write fails.
func (cn *conn) writeLoop() {
	defer cn.srv.wg.Done()
	defer close(cn.writerDone)
	enc := wire.NewEncoder(cn.c)
	for {
		f, ok := cn.q.pop()
		if !ok {
			return
		}
		if err := enc.Encode(f); err != nil {
			srvWriteErrors.Inc()
			cn.q.close()
			cn.c.Close()
			return
		}
		if f.Type == wire.TypeEvent {
			srvEvents.Inc()
		}
	}
}

// readLoop decodes and executes requests one at a time until the client
// disconnects or sends garbage.
func (cn *conn) readLoop() {
	defer cn.srv.wg.Done()
	defer func() {
		cn.q.close()
		// Let the writer drain queued frames (a clean disconnect's final
		// response) before the socket goes away; if the peer is gone the
		// writes fail and the writer exits immediately.
		<-cn.writerDone
		cn.c.Close()
		if cn.dbg != nil {
			cn.dbg.Close()
		}
		cn.srv.dropConn(cn)
		srvConns.Add(-1)
	}()
	srvConns.Add(1)
	dec := wire.NewDecoder(cn.c)
	for {
		req, err := dec.Decode()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				srvBadFrames.Inc()
			}
			return
		}
		if req.Type != wire.TypeRequest {
			srvBadFrames.Inc()
			cn.respondErr(req, fmt.Errorf("expected a request frame, got %q", req.Type))
			continue
		}
		srvRequests.Inc()
		start := obs.Now()
		disconnect := cn.handle(req)
		srvCmdLatency.Since(start)
		if disconnect {
			return
		}
	}
}

func (cn *conn) nextSeq() int64 {
	cn.seq++
	return cn.seq
}

func (cn *conn) respond(req *wire.Frame, body *wire.Body) {
	cn.q.push(wire.Response(cn.nextSeq(), req, body), false)
}

func (cn *conn) respondErr(req *wire.Frame, err error) {
	srvErrors.Inc()
	cn.q.push(wire.ErrorResponse(cn.nextSeq(), req, err), false)
}

func (cn *conn) event(name string, body *wire.Body) {
	cn.q.push(wire.Event(cn.nextSeq(), name, body), true)
}

// handle executes one request and enqueues its events and response. It
// reports whether the connection should close (disconnect).
func (cn *conn) handle(req *wire.Frame) (disconnect bool) {
	if !wire.KnownCommand(req.Command) {
		cn.respondErr(req, fmt.Errorf("unknown command %q", req.Command))
		return false
	}
	switch req.Command {
	case wire.CmdLaunch:
		cn.launch(req)
		return false
	case wire.CmdDisconnect:
		cn.respond(req, nil)
		return true
	case wire.CmdStats:
		cn.stats(req)
		return false
	case wire.CmdBatch:
		cn.batch(req)
		return false
	}
	if cn.dbg == nil {
		cn.respondErr(req, fmt.Errorf("no session: send launch first"))
		return false
	}
	body, err := cn.execOne(req.Command, req.Arguments)
	if err != nil {
		cn.respondErr(req, err)
		return false
	}
	cn.respond(req, body)
	return false
}

// execOne maps one command onto the session's debugger and executes it,
// pushing any events it produces, and returns the response body. It is
// the shared execution core of standalone requests and batch
// sub-commands, which is what keeps the two protocols byte-identical.
func (cn *conn) execOne(command string, args *wire.Args) (*wire.Body, error) {
	line, err := commandLine(command, args)
	if err != nil {
		return nil, err
	}
	cn.progOut.Reset()
	cn.transcript.Reset()
	execErr := cn.dbg.Execute(line)
	exec := isExecution(command)
	// Debuggee output produced while the program was running streams out
	// as an event. Output from a paused-state command (the D2X commands
	// print through debuggee natives, so their text arrives on the
	// program stream too) belongs to the command and rides its response.
	if exec && cn.progOut.Len() > 0 {
		cn.event(wire.EventOutput, &wire.Body{Output: cn.progOut.String()})
	}
	if exec && execErr == nil {
		stop := cn.dbg.LastStop()
		cn.event(wire.EventStopped, &wire.Body{
			Reason: stop.Reason.String(),
			Exited: stop.Reason == debugger.StopExited,
		})
	}
	if execErr != nil {
		return nil, execErr
	}
	out := cn.transcript.String()
	if !exec && cn.progOut.Len() > 0 {
		out += cn.progOut.String()
	}
	return &wire.Body{Output: out}, nil
}

// batch executes a batch request: N sub-commands, one response carrying
// one SubResult each. A sub-command failure is isolated to its result;
// the batch response itself fails only when the request as a whole is
// unusable (no session, empty batch). The whole batch runs under one
// session-state pin, so a concurrent build invalidation cannot tear
// down breakpoints or frame selections between sub-commands.
func (cn *conn) batch(req *wire.Frame) {
	if cn.dbg == nil {
		cn.respondErr(req, fmt.Errorf("no session: send launch first"))
		return
	}
	var subs []wire.SubRequest
	if req.Arguments != nil {
		subs = req.Arguments.Batch
	}
	if len(subs) == 0 {
		cn.respondErr(req, fmt.Errorf("batch needs at least one sub-command"))
		return
	}
	if cn.rt != nil && cn.vm != nil {
		pin := cn.rt.PinSession(cn.vm)
		defer pin.Unpin()
	}
	results := make([]wire.SubResult, len(subs))
	for i, sub := range subs {
		switch sub.Command {
		case wire.CmdLaunch, wire.CmdDisconnect, wire.CmdBatch, wire.CmdStats:
			srvErrors.Inc()
			results[i] = wire.SubResult{Message: fmt.Sprintf("command %q is not batchable", sub.Command)}
			continue
		}
		if !wire.KnownCommand(sub.Command) {
			srvErrors.Inc()
			results[i] = wire.SubResult{Message: fmt.Sprintf("unknown command %q", sub.Command)}
			continue
		}
		body, err := cn.execOne(sub.Command, sub.Arguments)
		if err != nil {
			srvErrors.Inc()
			results[i] = wire.SubResult{Message: err.Error()}
			continue
		}
		results[i] = wire.SubResult{Success: true, Output: body.Output}
	}
	cn.respond(req, &wire.Body{Results: results})
}

func (cn *conn) launch(req *wire.Frame) {
	if cn.dbg != nil {
		cn.respondErr(req, fmt.Errorf("session already launched"))
		return
	}
	name := ""
	if req.Arguments != nil {
		name = req.Arguments.Example
	}
	if name == "" {
		cn.respondErr(req, fmt.Errorf("launch needs an example name (one of %v)", examplebuilds.Names()))
		return
	}
	b, err := cn.srv.build(name)
	if err != nil {
		cn.respondErr(req, err)
		return
	}
	d, err := b.NewSessionSplit(&cn.progOut, &cn.transcript)
	if err != nil {
		cn.respondErr(req, err)
		return
	}
	cn.dbg = d
	cn.rt = b.Runtime
	cn.vm = d.Process().VM
	cn.sessionID = cn.srv.nextSess.Add(1)
	srvSessions.Inc()
	cn.respond(req, &wire.Body{Session: cn.sessionID})
}

func (cn *conn) stats(req *wire.Frame) {
	b, err := obs.Snapshot().MarshalIndent()
	if err != nil {
		cn.respondErr(req, err)
		return
	}
	cn.respond(req, &wire.Body{Output: string(b)})
}

// commandLine maps a request to the debugger command it executes. Only
// this fixed set is reachable — a wire client cannot run arbitrary
// debugger commands (no call, no eval, no shell-adjacent anything).
func commandLine(command string, args *wire.Args) (string, error) {
	spec, name := "", ""
	if args != nil {
		spec, name = args.Spec, args.Name
	}
	needSpec := func(cmd string) (string, error) {
		if spec == "" {
			return "", fmt.Errorf("%s needs a spec argument", cmd)
		}
		return cmd + " " + spec, nil
	}
	switch command {
	case wire.CmdBreak:
		return needSpec("break")
	case wire.CmdRun:
		return "run", nil
	case wire.CmdContinue:
		return "continue", nil
	case wire.CmdStep:
		return "step", nil
	case wire.CmdNext:
		return "next", nil
	case wire.CmdFinish:
		return "finish", nil
	case wire.CmdXBT:
		return "xbt", nil
	case wire.CmdXList:
		return "xlist", nil
	case wire.CmdXFrame:
		return needSpec("xframe")
	case wire.CmdXBreak:
		return needSpec("xbreak")
	case wire.CmdXDel:
		return needSpec("xdel")
	case wire.CmdXVars:
		if name != "" {
			return "xvars " + name, nil
		}
		return "xvars", nil
	}
	return "", fmt.Errorf("command %q has no debugger mapping", command)
}

// isExecution reports whether the command resumes the debuggee (and so
// produces a stopped event).
func isExecution(cmd string) bool {
	switch cmd {
	case wire.CmdRun, wire.CmdContinue, wire.CmdStep, wire.CmdNext, wire.CmdFinish:
		return true
	}
	return false
}
