package serve

import (
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"d2x/internal/d2x"
	"d2x/internal/d2x/wire"
	"d2x/internal/examplebuilds"
	"d2x/internal/progen"
)

// startServerWith is startServer with a custom build catalogue.
func startServerWith(t *testing.T, fn BuildFunc) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewWithBuilds(fn)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return ln.Addr().String()
}

func TestBatchBeforeLaunchRejected(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	_, err := c.DoBatch([]wire.SubRequest{{Command: wire.CmdXBT}})
	if err == nil || !strings.Contains(err.Error(), "no session") {
		t.Fatalf("batch before launch: got %v, want a no-session error", err)
	}
}

func TestBatchEmptyRejected(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	mustDo(t, c, wire.CmdLaunch, &wire.Args{Example: "power"})
	for _, args := range []*wire.Args{nil, {}} {
		if _, err := c.Do(wire.CmdBatch, args); err == nil || !strings.Contains(err.Error(), "at least one sub-command") {
			t.Fatalf("empty batch (%+v): got %v, want an empty-batch error", args, err)
		}
	}
	// A rejected batch is a normal command error: the connection and its
	// session survive it.
	mustDo(t, c, wire.CmdBreak, &wire.Args{Spec: "power_15"})
}

// TestBatchPartialFailure: a failing sub-command (2 of 3) is isolated to
// its own SubResult; sub-commands 1 and 3 still execute and succeed.
func TestBatchPartialFailure(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	mustDo(t, c, wire.CmdLaunch, &wire.Args{Example: "power"})
	mustDo(t, c, wire.CmdBreak, &wire.Args{Spec: "power_15"})
	mustDo(t, c, wire.CmdRun, nil)
	c.Events()

	results, err := c.DoBatch([]wire.SubRequest{
		{Command: wire.CmdXBT},
		{Command: wire.CmdXDel, Arguments: &wire.Args{Spec: "99"}},
		{Command: wire.CmdXVars},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if !results[0].Success || !strings.Contains(results[0].Output, "examplebuilds.go") {
		t.Errorf("sub 1 (xbt): %+v, want success with staging frames", results[0])
	}
	if results[1].Success || !strings.Contains(results[1].Message, "no DSL breakpoint #99") {
		t.Errorf("sub 2 (xdel 99): %+v, want an isolated failure", results[1])
	}
	if !results[2].Success {
		t.Errorf("sub 3 (xvars) did not survive sub 2's failure: %+v", results[2])
	}
}

// TestBatchRejectsNonBatchableSubCommands: session- and connection-scoped
// commands cannot ride inside a batch; each is rejected in its own
// SubResult while the batchable neighbours still run.
func TestBatchRejectsNonBatchableSubCommands(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	mustDo(t, c, wire.CmdLaunch, &wire.Args{Example: "power"})
	mustDo(t, c, wire.CmdBreak, &wire.Args{Spec: "power_15"})
	mustDo(t, c, wire.CmdRun, nil)
	c.Events()

	results, err := c.DoBatch([]wire.SubRequest{
		{Command: wire.CmdLaunch, Arguments: &wire.Args{Example: "power"}},
		{Command: wire.CmdDisconnect},
		{Command: wire.CmdBatch},
		{Command: wire.CmdStats},
		{Command: "make-coffee"},
		{Command: wire.CmdXBT},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i := 0; i < 4; i++ {
		if results[i].Success || !strings.Contains(results[i].Message, "not batchable") {
			t.Errorf("sub %d: %+v, want a not-batchable rejection", i+1, results[i])
		}
	}
	if results[4].Success || !strings.Contains(results[4].Message, "unknown command") {
		t.Errorf("sub 5: %+v, want an unknown-command rejection", results[4])
	}
	if !results[5].Success || !strings.Contains(results[5].Output, "examplebuilds.go") {
		t.Errorf("sub 6 (xbt): %+v, want success after the rejected subs", results[5])
	}
	// The rejected launch/disconnect subs must not have touched the
	// connection's session.
	mustDo(t, c, wire.CmdXList, nil)
}

// TestBatchOversizedRejectedClientSide: the encoder refuses to put a
// frame over MaxFrameBytes on the wire, and because nothing was sent the
// connection stays usable.
func TestBatchOversizedRejectedClientSide(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	mustDo(t, c, wire.CmdLaunch, &wire.Args{Example: "power"})

	big := strings.Repeat("x", wire.MaxFrameBytes)
	_, err := c.DoBatch([]wire.SubRequest{{Command: wire.CmdXBreak, Arguments: &wire.Args{Spec: big}}})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized batch: got %v, want a frame-limit error", err)
	}
	mustDo(t, c, wire.CmdBreak, &wire.Args{Spec: "power_15"})
}

// TestBatchOversizedRejectedServerSide: a peer that streams a request
// line past MaxFrameBytes gets its connection dropped, and the server
// keeps serving everyone else.
func TestBatchOversizedRejectedServerSide(t *testing.T) {
	_, addr := startServer(t)

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer raw.Close()
	chunk := make([]byte, 1<<20)
	for i := range chunk {
		chunk[i] = 'a'
	}
	for written := 0; written <= wire.MaxFrameBytes; written += len(chunk) {
		if _, err := raw.Write(chunk); err != nil {
			break // server already reset the connection — that is the point
		}
	}
	raw.Write([]byte("\n"))
	raw.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server answered an oversized frame instead of dropping the connection")
	}

	c := dial(t, addr)
	mustDo(t, c, wire.CmdLaunch, &wire.Args{Example: "quickstart"})
}

// TestBatchMatchesSequentialDifferential is the wire-level correctness
// pin for the batch frame: over every example build plus a progen corpus
// slice, a batch of sub-commands must produce byte-identical outputs —
// and identical failures — to the same commands sent one frame each.
// Both paths share execOne on the server; this proves the sharing holds
// end to end, per-build and per-command.
func TestBatchMatchesSequentialDifferential(t *testing.T) {
	const progenSlice = 3
	addr := startServerWith(t, func(name string) (*d2x.Build, error) {
		if idx, ok := strings.CutPrefix(name, "progen-"); ok {
			i, err := strconv.Atoi(idx)
			if err != nil {
				return nil, err
			}
			p, err := progen.Render(progen.Generate(42, i))
			if err != nil {
				return nil, err
			}
			return p.Build(false)
		}
		return examplebuilds.Build(name)
	})

	names := append([]string{}, examplebuilds.Names()...)
	for i := 0; i < progenSlice; i++ {
		names = append(names, "progen-"+strconv.Itoa(i))
	}

	// A mixed steady-state sequence: frame-bearing queries, breakpoint
	// install/list/delete (bare-line specs resolve against the paused DSL
	// context on every build), and guaranteed failures — which must fail
	// identically on both paths.
	subs := []wire.SubRequest{
		{Command: wire.CmdXBT},
		{Command: wire.CmdXList},
		{Command: wire.CmdXVars},
		{Command: wire.CmdXFrame, Arguments: &wire.Args{Spec: "0"}},
		{Command: wire.CmdXBreak, Arguments: &wire.Args{Spec: "3"}},
		{Command: wire.CmdXBreak, Arguments: &wire.Args{Spec: "4"}},
		{Command: wire.CmdXBT},
		{Command: wire.CmdXDel, Arguments: &wire.Args{Spec: "1"}},
		{Command: wire.CmdXDel, Arguments: &wire.Args{Spec: "99"}},
		{Command: wire.CmdXVars, Arguments: &wire.Args{Name: "no_such_var"}},
	}

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			setup := func(c *wire.Client) {
				mustDo(t, c, wire.CmdLaunch, &wire.Args{Example: name})
				mustDo(t, c, wire.CmdBreak, &wire.Args{Spec: breakSpecFor(name)})
				mustDo(t, c, wire.CmdRun, nil)
				c.Events()
			}
			seqC, batC := dial(t, addr), dial(t, addr)
			setup(seqC)
			setup(batC)

			single := make([]wire.SubResult, len(subs))
			for i, sub := range subs {
				f, err := seqC.Do(sub.Command, sub.Arguments)
				if err != nil {
					if _, ok := err.(*wire.RemoteError); !ok {
						t.Fatalf("sequential %s: %v", sub.Command, err)
					}
					single[i] = wire.SubResult{Message: f.Message}
					continue
				}
				single[i] = wire.SubResult{Success: true, Output: f.Body.Output}
			}

			batch, err := batC.DoBatch(subs)
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			for i := range subs {
				if batch[i] != single[i] {
					t.Errorf("sub %d (%s %+v) diverged:\nsequential: %+v\nbatch:      %+v",
						i+1, subs[i].Command, subs[i].Arguments, single[i], batch[i])
				}
			}
		})
	}
}
