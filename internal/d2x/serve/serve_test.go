package serve

import (
	"net"
	"strings"
	"sync"
	"testing"

	"d2x/internal/d2x/wire"
)

// startServer runs a Server on a loopback listener and tears it down with
// the test.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := New()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *wire.Client {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mustDo(t *testing.T, c *wire.Client, cmd string, args *wire.Args) *wire.Frame {
	t.Helper()
	resp, err := c.Do(cmd, args)
	if err != nil {
		t.Fatalf("%s: %v", cmd, err)
	}
	return resp
}

func TestFullDebugSessionOverTCP(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	resp := mustDo(t, c, wire.CmdLaunch, &wire.Args{Example: "power"})
	if resp.Body == nil || resp.Body.Session == 0 {
		t.Fatalf("launch response has no session id: %+v", resp.Body)
	}

	out := mustDo(t, c, wire.CmdBreak, &wire.Args{Spec: "main"})
	if !strings.Contains(out.Body.Output, "Breakpoint") {
		t.Fatalf("break transcript: %q", out.Body.Output)
	}

	mustDo(t, c, wire.CmdRun, nil)
	stopped := findEvent(c.Events(), wire.EventStopped)
	if stopped == nil || stopped.Body.Reason != "breakpoint" {
		t.Fatalf("run did not stop at breakpoint: %+v", stopped)
	}

	// The D2X commands work across the wire: the backtrace shows the DSL
	// frame context after stepping into the staged function.
	mustDo(t, c, wire.CmdBreak, &wire.Args{Spec: "power_15"})
	mustDo(t, c, wire.CmdContinue, nil)
	if st := findEvent(c.Events(), wire.EventStopped); st == nil || st.Body.Reason != "breakpoint" {
		t.Fatalf("continue did not stop at power_15 breakpoint: %+v", st)
	}
	// xbt shows the contextual (staging-time) stack: frames point into the
	// Go code that staged the power pipeline, not the generated function.
	xbt := mustDo(t, c, wire.CmdXBT, nil)
	if !strings.Contains(xbt.Body.Output, "examplebuilds.go") {
		t.Fatalf("xbt transcript: %q", xbt.Body.Output)
	}

	// Run to completion: program output must arrive as an output event,
	// not inside the response transcript, and the stop event says exited.
	mustDo(t, c, wire.CmdContinue, nil)
	ev := c.Events()
	outEv := findEvent(ev, wire.EventOutput)
	if outEv == nil || !strings.Contains(outEv.Body.Output, "14348907") {
		t.Fatalf("no program-output event with power(3,15): %+v", ev)
	}
	st := findEvent(ev, wire.EventStopped)
	if st == nil || !st.Body.Exited {
		t.Fatalf("final stop event not exited: %+v", st)
	}
}

func findEvent(evs []*wire.Frame, name string) *wire.Frame {
	for _, e := range evs {
		if e.Event == name {
			return e
		}
	}
	return nil
}

func TestServerErrors(t *testing.T) {
	_, addr := startServer(t)

	cases := []struct {
		name string
		run  func(c *wire.Client) error
		want string
	}{
		{"command before launch", func(c *wire.Client) error {
			_, err := c.Do(wire.CmdRun, nil)
			return err
		}, "no session"},
		{"unknown example", func(c *wire.Client) error {
			_, err := c.Do(wire.CmdLaunch, &wire.Args{Example: "nope"})
			return err
		}, "unknown pipeline"},
		{"launch without example", func(c *wire.Client) error {
			_, err := c.Do(wire.CmdLaunch, nil)
			return err
		}, "needs an example name"},
		{"double launch", func(c *wire.Client) error {
			if _, err := c.Do(wire.CmdLaunch, &wire.Args{Example: "quickstart"}); err != nil {
				return err
			}
			_, err := c.Do(wire.CmdLaunch, &wire.Args{Example: "quickstart"})
			return err
		}, "already launched"},
		{"break without spec", func(c *wire.Client) error {
			if _, err := c.Do(wire.CmdLaunch, &wire.Args{Example: "quickstart"}); err != nil {
				return err
			}
			_, err := c.Do(wire.CmdBreak, nil)
			return err
		}, "needs a spec"},
		{"unknown command", func(c *wire.Client) error {
			_, err := c.Do("make-coffee", nil)
			return err
		}, "unknown command"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := dial(t, addr)
			err := tc.run(c)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

func TestStatsAndDisconnect(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	resp := mustDo(t, c, wire.CmdStats, nil)
	if !strings.Contains(resp.Body.Output, "counters") {
		t.Fatalf("stats response is not an obs snapshot: %q", resp.Body.Output)
	}

	if _, err := c.Do(wire.CmdDisconnect, nil); err != nil {
		t.Fatalf("disconnect: %v", err)
	}
	// The server closes its side after the response; the next round trip
	// fails at transport level.
	if _, err := c.Do(wire.CmdStats, nil); err == nil {
		t.Fatal("request after disconnect should fail")
	}
}

func TestMalformedInputDoesNotKillServer(t *testing.T) {
	_, addr := startServer(t)

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	raw.Write([]byte("this is not json\n"))
	raw.Close()

	// The server must still serve a well-behaved client afterwards.
	c := dial(t, addr)
	mustDo(t, c, wire.CmdLaunch, &wire.Args{Example: "quickstart"})
}

func TestConcurrentSessionsShareOneBuild(t *testing.T) {
	srv, addr := startServer(t)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			script := func() error {
				if _, err := c.Do(wire.CmdLaunch, &wire.Args{Example: "power"}); err != nil {
					return err
				}
				if _, err := c.Do(wire.CmdBreak, &wire.Args{Spec: "power_15"}); err != nil {
					return err
				}
				if _, err := c.Do(wire.CmdRun, nil); err != nil {
					return err
				}
				xbt, err := c.Do(wire.CmdXBT, nil)
				if err != nil {
					return err
				}
				if !strings.Contains(xbt.Body.Output, "examplebuilds.go") {
					return errEmptyBacktrace
				}
				_, err = c.Do(wire.CmdContinue, nil)
				return err
			}
			errs <- script()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("client: %v", err)
		}
	}

	srv.buildMu.Lock()
	n := len(srv.builds)
	srv.buildMu.Unlock()
	if n != 1 {
		t.Fatalf("%d builds constructed for one example name, want 1 shared build", n)
	}
}

type strErr string

func (e strErr) Error() string { return string(e) }

const errEmptyBacktrace = strErr("xbt output missing staging frames")

func TestOutQueueShedsOldestEventsOnly(t *testing.T) {
	q := newOutQueue()
	for i := 0; i < maxQueuedEvents+10; i++ {
		q.push(wire.Event(int64(i+1), wire.EventOutput, &wire.Body{}), true)
	}
	q.push(wire.Response(9999, wire.Request(1, wire.CmdRun, nil), nil), false)

	var events []*wire.Frame
	var resp *wire.Frame
	for i := 0; i < maxQueuedEvents+1; i++ { // cap events + 1 response
		f, ok := q.pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		if f.Type == wire.TypeResponse {
			resp = f
		} else {
			events = append(events, f)
		}
	}
	if len(events) != maxQueuedEvents {
		t.Fatalf("queue held %d events, want cap %d", len(events), maxQueuedEvents)
	}
	if resp == nil {
		t.Fatal("response frame was shed")
	}
	// Oldest shed first: first surviving event is seq 11.
	if events[0].Seq != 11 {
		t.Fatalf("first surviving event seq = %d, want 11", events[0].Seq)
	}
	// Every surviving event carries the cumulative shed count.
	if events[0].Body.Dropped != 10 {
		t.Fatalf("Dropped = %d, want 10", events[0].Body.Dropped)
	}
}
