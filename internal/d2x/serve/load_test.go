package serve

import "testing"

// TestRunLoadSmoke exercises the harness end to end at a small scale;
// the 1k-client run lives behind the BENCH_pr7.json gate (see
// loadgate_test.go at the repo root) and in the nightly workflow.
func TestRunLoadSmoke(t *testing.T) {
	res, err := RunLoad(LoadConfig{Clients: 16, CommandsPerClient: 4})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d of %d clients failed", res.Errors, res.Clients)
	}
	if want := int64(16 * 4); res.Commands != want {
		t.Fatalf("measured %d commands, want %d", res.Commands, want)
	}
	if res.P99MS <= 0 || res.P50MS <= 0 || res.P99MS < res.P50MS {
		t.Fatalf("implausible quantiles: p50 %.3f ms, p99 %.3f ms", res.P50MS, res.P99MS)
	}
	if res.CommandsPerSec <= 0 {
		t.Fatalf("implausible throughput %.1f cmd/s", res.CommandsPerSec)
	}
}

func TestRunLoadRejectsBadConfig(t *testing.T) {
	if _, err := RunLoad(LoadConfig{Clients: 0}); err == nil {
		t.Fatal("expected an error for zero clients")
	}
	if _, err := RunLoad(LoadConfig{Clients: 2, Example: "nope"}); err == nil {
		t.Fatal("expected an error for an unknown example")
	}
}
