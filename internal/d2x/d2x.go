// Package d2x ties the D2X components into the workflow of Figure 3:
//
//	DSL compiler ──(d2xc)──► generated code + D2X tables
//	          │
//	          ▼
//	     Link: compile generated code, register the D2X runtime
//	     (d2xr) as linked natives, build standard debug info
//	          │
//	          ▼
//	     Debug: attach the stock debugger, install the helper
//	     macros, and use xbt/xlist/xframe/xvars/xbreak/xdel
//
// DSL compilers use d2xc directly; end-user tooling uses Link and
// NewSession.
package d2x

import (
	"fmt"
	"io"
	"strings"

	"d2x/internal/d2x/d2xc"
	"d2x/internal/d2x/d2xenc"
	"d2x/internal/d2x/d2xr"
	"d2x/internal/d2x/macros"
	"d2x/internal/d2xverify"
	"d2x/internal/debugger"
	"d2x/internal/dwarfish"
	"d2x/internal/minic"
	"d2x/internal/minic/effects"
	"d2x/internal/minic/journal"
)

// Build is a linked, debuggable artifact: the compiled generated program
// with D2X tables inside it, its standard debug info, and the attached
// D2X runtime.
type Build struct {
	Program   *minic.Program
	DebugBlob []byte
	Runtime   *d2xr.Runtime
	Source    string // full generated source including the D2X tables

	// Ctx is the D2X compile-time context the build was linked from (nil
	// for WithoutD2X builds). The verifier uses it to check that the
	// encoded tables round-trip and that the compiler's scope discipline
	// was sound.
	Ctx *d2xc.Context

	// ExtraMacros holds DSL-specific debugger macros (paper §4.3): a DSL
	// may define its own commands over functions it generated into the
	// program, extending the debugger without touching it or D2X-R.
	ExtraMacros string
}

// LinkOptions tune the link step.
type LinkOptions struct {
	// Natives registers additional host-linked functions (a DSL's own
	// runtime library) before compilation.
	Natives func(*minic.Natives)
	// FileResolver overrides how the D2X runtime reads DSL sources for
	// xlist (defaults to the filesystem).
	FileResolver d2xr.FileResolver
	// WithoutD2X skips table emission and runtime registration, producing
	// the exact same program a D2X-less compiler would — the baseline of
	// the overhead experiment.
	WithoutD2X bool
	// Optimize runs the mini-C constant folder over the generated code
	// before compiling it. D2X survives: folding rewrites expressions
	// within statements and prunes dead branches, but surviving
	// statements keep their lines — the key the D2X tables map on.
	Optimize bool
}

// Link assembles a debuggable build from generated source and the D2X
// compile-time context that produced it.
func Link(filename, genSource string, ctx *d2xc.Context, opts LinkOptions) (*Build, error) {
	// Natives first: the handler effect analysis below checks the
	// generated source against the same native registry the final
	// compile will use.
	nats := minic.NewNatives()
	var rt *d2xr.Runtime
	if !opts.WithoutD2X {
		rt = d2xr.New()
		rt.Register(nats)
		if opts.FileResolver != nil {
			rt.SetFileResolver(opts.FileResolver)
		}
	}
	if opts.Natives != nil {
		opts.Natives(nats)
	}

	full := genSource
	if !opts.WithoutD2X && ctx != nil {
		var tb strings.Builder
		if err := d2xenc.EmitTablesFX(ctx, handlerEffects(filename, genSource, ctx, nats), &tb); err != nil {
			return nil, fmt.Errorf("d2x: emitting tables: %w", err)
		}
		if !strings.HasSuffix(full, "\n") && full != "" {
			full += "\n"
		}
		full += tb.String()
	}

	var prog *minic.Program
	var err error
	if opts.Optimize {
		prog, _, err = minic.CompileOptimized(filename, full, nats)
	} else {
		prog, err = minic.Compile(filename, full, nats)
	}
	if err != nil {
		return nil, fmt.Errorf("d2x: compiling generated code: %w", err)
	}
	blob := dwarfish.Build(prog).Encode()
	if rt != nil {
		if err := rt.AttachDebugInfo(blob); err != nil {
			return nil, err
		}
	}
	b := &Build{Program: prog, DebugBlob: blob, Runtime: rt, Source: full}
	if !opts.WithoutD2X {
		b.Ctx = ctx
	}
	return b, nil
}

// handlerEffects runs the effect-and-termination analysis over the
// generated source (before the D2X tables are appended — the tables'
// own __init constructors are not handlers) and returns one summary row
// per registered rtv handler, in first-registration order. Analysis
// failures are swallowed: a genSource that does not check here will
// fail the real compile just below with a better error.
func handlerEffects(filename, genSource string, ctx *d2xc.Context, nats *minic.Natives) []d2xenc.HandlerEffect {
	var names []string
	seen := map[string]bool{}
	for _, r := range ctx.Records() {
		for _, v := range r.Vars {
			if v.Kind == d2xc.VarHandler && v.Val != "" && !seen[v.Val] {
				seen[v.Val] = true
				names = append(names, v.Val)
			}
		}
	}
	if len(names) == 0 {
		return nil
	}
	file, err := minic.Parse(filename, genSource)
	if err != nil {
		return nil
	}
	prog, err := minic.Check(file, nats)
	if err != nil {
		return nil
	}
	an := effects.Analyze(prog)
	var fx []d2xenc.HandlerEffect
	for _, name := range names {
		s, ok := an.ByName(name)
		if !ok {
			continue // handler not in this translation unit
		}
		fx = append(fx, d2xenc.HandlerEffect{
			Handler: name, Mask: int64(s.Effects), Loop: int64(s.Loop),
		})
	}
	return fx
}

// Verify runs the d2xverify cross-layer and lint checks over the build:
// the program, its debug info, its D2X tables, and every macro the
// debug session would load. Pipelines call this behind a -lint flag;
// tests call it directly.
func (b *Build) Verify() *d2xverify.Report {
	macroText := ""
	if b.Runtime != nil {
		macroText = macros.GDBInit
	}
	if b.ExtraMacros != "" {
		macroText += "\n" + b.ExtraMacros
	}
	return d2xverify.Verify(&d2xverify.Input{
		Program:   b.Program,
		DebugBlob: b.DebugBlob,
		Ctx:       b.Ctx,
		Macros:    macroText,
	})
}

// NewSession attaches a fresh debugger to the build, with the D2X helper
// macros installed. Program output and the debugger transcript both go to
// out, interleaved as in a terminal.
//
// Sessions are independent: each gets its own debuggee VM and debugger,
// while the build's D2X runtime serves all of them from one shared table
// decode. Call Close on the returned debugger when done with it — that
// evicts the session's D2X state from the shared runtime (via a close
// hook, so the debugger itself stays D2X-free).
func (b *Build) NewSession(out io.Writer) (*debugger.Debugger, error) {
	return b.NewSessionSplit(out, out)
}

// NewSessionSplit is NewSession with the two output streams separated:
// debuggee program output goes to progOut, the debugger transcript to
// transcript. A terminal interleaves them (NewSession); a debug server
// routes program output into asynchronous events and the transcript into
// command responses, so it needs them apart.
func (b *Build) NewSessionSplit(progOut, transcript io.Writer) (*debugger.Debugger, error) {
	proc, err := debugger.NewProcess(b.Program, b.DebugBlob, progOut)
	if err != nil {
		return nil, err
	}
	d := debugger.New(proc, transcript)
	if b.Runtime != nil {
		if err := macros.Install(d); err != nil {
			return nil, err
		}
		vm := proc.VM
		rt := b.Runtime
		d.OnClose(func() { rt.Release(vm) })
		// Recording in a D2X session parks the journal handle on the
		// per-VM session state instead of the debugger: Release moves it
		// into the runtime's bounded re-attach memory (like the fuel
		// budget), so a debugger re-attaching to the same VM resumes its
		// history, and build invalidation stops it with the rest of the
		// session state.
		d.SetRecorderFactory(func(vm *minic.VM) (debugger.Recorder, error) {
			st := rt.StateFor(vm)
			if j, ok := st.Journal.(*journal.Journal); ok && j.Active() {
				return debugger.NewJournalRecorder(j), nil
			}
			j, err := journal.Attach(vm, journal.Options{})
			if err != nil {
				return nil, err
			}
			st.Journal = j
			return debugger.NewJournalRecorder(j), nil
		})
	}
	if b.ExtraMacros != "" {
		if err := d.LoadMacros(b.ExtraMacros); err != nil {
			return nil, fmt.Errorf("d2x: DSL-specific macros: %w", err)
		}
	}
	return d, nil
}

// LiveSessions reports how many debug sessions currently hold per-session
// state in the build's D2X runtime (0 for WithoutD2X builds).
func (b *Build) LiveSessions() int {
	if b.Runtime == nil {
		return 0
	}
	return b.Runtime.LiveSessions()
}

// Run executes the build to completion without a debugger (the normal,
// non-debug execution path) and returns the program's output. The D2X
// tables ride along but no D2X code runs — the zero-overhead property of
// paper §3.2.
func (b *Build) Run() (string, int64, error) {
	var out strings.Builder
	vm := minic.NewVM(b.Program, &out)
	err := vm.Run()
	return out.String(), vm.Steps, err
}
