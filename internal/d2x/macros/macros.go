// Package macros holds the D2X helper macros (paper §3.3): the small,
// DSL-independent command definitions that let users type `xbt` instead of
// `call d2x_runtime::command_xbt($rip, $rsp)`. They are written once per
// debugger; Table 3 accounts them at 40 lines. The definitions use only
// the debugger's stock features: call/eval plus the process-record
// reverse commands (stock since GDB 7.0), which reverse-xbt composes
// into DSL-level time travel.
package macros

import "d2x/internal/debugger"

// GDBInit is the macro file for the GDB-style debugger in this repository.
// The command names and shapes match the paper's Table 2 exactly.
const GDBInit = `# D2X helper macros — written once per debugger, shared by every DSL.
define xbt
  call d2x_runtime::command_xbt($rip, $rsp)
end
define xframe
  call d2x_runtime::command_xframe($rip, $rsp, "$arg0")
end
define xlist
  call d2x_runtime::command_xlist($rip, $rsp)
end
define xvars
  call d2x_runtime::command_xvars($rip, $rsp, "$arg0")
end
define xbreak
  eval "%s", d2x_runtime::command_xbreak($rip, "$arg0")
end
define xdel
  eval "%s", d2x_runtime::command_xdel("$arg0")
end
define reverse-xbt
  reverse-step
  call d2x_runtime::command_xbt($rip, $rsp)
end
`

// Install loads the D2X macros into a debugger session, the equivalent of
// `source d2x.gdbinit`.
func Install(d *debugger.Debugger) error {
	return d.LoadMacros(GDBInit)
}
