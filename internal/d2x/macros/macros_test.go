package macros

import (
	"strings"
	"testing"

	"d2x/internal/debugger"
	"d2x/internal/dwarfish"
	"d2x/internal/minic"
)

func TestInstallDefinesAllTable2Macros(t *testing.T) {
	prog, err := minic.Compile("p.c", "func int main() { return 0; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := debugger.NewProcess(prog, dwarfish.Build(prog).Encode(), nil)
	if err != nil {
		t.Fatal(err)
	}
	d := debugger.New(proc, nil)
	if err := Install(d); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"xbt", "xframe", "xlist", "xvars", "xbreak", "xdel", "reverse-xbt"} {
		if _, ok := d.Macros()[name]; !ok {
			t.Errorf("macro %s not installed", name)
		}
	}
}

func TestMacroBodiesUseOnlyStockCommands(t *testing.T) {
	// The helper macros may only use stock debugger features — anything
	// else would mean the debugger needed modification (§4.2). That is
	// call and eval for the forward commands, plus the process-record
	// reverse commands (stock in GDB since 7.0) that reverse-xbt
	// composes with an xbt call.
	stock := []string{"call ", "eval ", "reverse-step", "reverse-continue"}
	for _, line := range strings.Split(GDBInit, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") ||
			strings.HasPrefix(line, "define") || line == "end" {
			continue
		}
		ok := false
		for _, p := range stock {
			if strings.HasPrefix(line, p) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("macro body line uses a non-stock mechanism: %q", line)
		}
	}
}

func TestMacroFileSize(t *testing.T) {
	// Table 3 accounts the helper macros at ~40 lines: written once per
	// debugger, shared by every DSL. Keep ours in that ballpark.
	n := len(strings.Split(strings.TrimSpace(GDBInit), "\n"))
	if n < 12 || n > 80 {
		t.Errorf("macro file is %d lines; expected a few dozen", n)
	}
}
