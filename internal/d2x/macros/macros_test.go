package macros

import (
	"strings"
	"testing"

	"d2x/internal/debugger"
	"d2x/internal/dwarfish"
	"d2x/internal/minic"
)

func TestInstallDefinesAllTable2Macros(t *testing.T) {
	prog, err := minic.Compile("p.c", "func int main() { return 0; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := debugger.NewProcess(prog, dwarfish.Build(prog).Encode(), nil)
	if err != nil {
		t.Fatal(err)
	}
	d := debugger.New(proc, nil)
	if err := Install(d); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"xbt", "xframe", "xlist", "xvars", "xbreak", "xdel"} {
		if _, ok := d.Macros()[name]; !ok {
			t.Errorf("macro %s not installed", name)
		}
	}
}

func TestMacroBodiesUseOnlyStockCommands(t *testing.T) {
	// The helper macros may only use call and eval — the two stock
	// debugger features the paper's design depends on (§4.2). Anything
	// else would mean the debugger needed modification.
	for _, line := range strings.Split(GDBInit, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") ||
			strings.HasPrefix(line, "define") || line == "end" {
			continue
		}
		if !strings.HasPrefix(line, "call ") && !strings.HasPrefix(line, "eval ") {
			t.Errorf("macro body line uses a non-stock mechanism: %q", line)
		}
	}
}

func TestMacroFileSize(t *testing.T) {
	// Table 3 accounts the helper macros at ~40 lines: written once per
	// debugger, shared by every DSL. Keep ours in that ballpark.
	n := len(strings.Split(strings.TrimSpace(GDBInit), "\n"))
	if n < 12 || n > 80 {
		t.Errorf("macro file is %d lines; expected a few dozen", n)
	}
}
