package d2x

import (
	"fmt"
	"strings"
	"testing"

	"d2x/internal/d2x/d2xc"
	"d2x/internal/d2xverify"
	"d2x/internal/debugger"
	"d2x/internal/loc"
)

// The DSL input the fake compiler below pretends to have compiled: a
// power-by-repeated-squaring function, the paper's running example for
// BuildIt (Figure 8). Served through an in-memory file resolver.
const powerDSL = `func power(base, exponent)
  res = 1
  x = base
  while exponent > 0
    if exponent % 2 == 1
      res = res * x
    x = x * x
    exponent = exponent / 2
  return res
`

// buildPower plays the role of a DSL compiler using the D2X-C API: it
// emits the specialised power_15 and records, for every generated line,
// the DSL source stack and the (erased) first-stage value of `exponent`.
func buildPower(t *testing.T, withD2X bool) *Build {
	t.Helper()
	var ctx *d2xc.Context
	if withD2X {
		ctx = d2xc.NewContext()
	}
	e := d2xc.NewEmitter(ctx)

	caller := func(line int) {
		if ctx == nil {
			return
		}
		// Innermost frame: the DSL line. Outer frame: the host main that
		// invoked the staged function, as BuildIt's static tags record.
		ctx.PushSourceLoc("power.dsl", line, "power")
		ctx.PushSourceLoc("host.go", 100, "main")
	}
	setExp := func(v int) {
		if ctx != nil {
			if err := ctx.UpdateVar("exponent", fmt.Sprint(v)); err != nil {
				t.Fatal(err)
			}
		}
	}

	e.Emitln("func int power_15(int arg0) {")
	if err := e.BeginSection(); err != nil {
		t.Fatal(err)
	}
	if ctx != nil {
		ctx.PushScope()
		ctx.CreateVar("exponent")
		ctx.CreateVar("res_view")
		if err := ctx.UpdateVarHandler("res_view", d2xc.RTVHandler{FuncName: "__d2x_rtv_res"}); err != nil {
			t.Fatal(err)
		}
	}
	setExp(15)
	caller(2)
	e.Emitln("\tint res_1 = 1;")
	caller(3)
	e.Emitln("\tint x_2 = arg0;")
	exp := 15
	for exp > 0 {
		if exp%2 == 1 {
			caller(6)
			e.Emitln("\tres_1 = res_1 * x_2;")
		}
		exp /= 2
		if exp > 0 {
			caller(7)
			e.Emitln("\tx_2 = x_2 * x_2;")
			setExp(exp)
			caller(8)
			e.Emitln("\tint t_%d = 0;", exp) // stands in for the erased exponent update
		}
	}
	setExp(0)
	caller(9)
	e.Emitln("\treturn res_1;")
	if ctx != nil {
		if err := ctx.PopScope(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.EndSection(); err != nil {
		t.Fatal(err)
	}
	e.Emitln("}")
	if withD2X {
		// The rtv_handler: generated code that runs only at debug time,
		// reaching the paused frame through the D2X runtime API.
		e.Emitln("func string __d2x_rtv_res(string key) {")
		e.Emitln("\tint* addr = d2x_find_stack_var(\"res_1\");")
		e.Emitln("\treturn \"res_1=\" + to_str(*addr);")
		e.Emitln("}")
	}
	e.Emitln("func int main() {")
	e.Emitln("\tint r = power_15(3);")
	e.Emitln("\tprintf(\"%%d\\n\", r);")
	e.Emitln("\treturn 0;")
	e.Emitln("}")

	files := map[string]string{"power.dsl": powerDSL}
	build, err := Link("power_gen.c", e.String(), ctx, LinkOptions{
		WithoutD2X: !withD2X,
		FileResolver: func(path string) (string, error) {
			if s, ok := files[path]; ok {
				return s, nil
			}
			return "", fmt.Errorf("no file %s", path)
		},
	})
	if err != nil {
		t.Fatalf("link failed: %v\nsource:\n%s", err, e.String())
	}
	return build
}

func session(t *testing.T, b *Build) (*debugger.Debugger, *strings.Builder) {
	t.Helper()
	var out strings.Builder
	d, err := b.NewSession(&out)
	if err != nil {
		t.Fatal(err)
	}
	return d, &out
}

func exec(t *testing.T, d *debugger.Debugger, lines ...string) {
	t.Helper()
	for _, l := range lines {
		if err := d.Execute(l); err != nil {
			t.Fatalf("command %q: %v", l, err)
		}
	}
}

func TestProgramRunsCorrectlyWithTables(t *testing.T) {
	for _, withD2X := range []bool{true, false} {
		b := buildPower(t, withD2X)
		out, _, err := b.Run()
		if err != nil {
			t.Fatalf("withD2X=%v: %v", withD2X, err)
		}
		if !strings.Contains(out, "14348907") {
			t.Errorf("withD2X=%v: output %q, want 3^15", withD2X, out)
		}
	}
}

// TestXBT reproduces the xbt flow of Figure 9: the extended stack shows
// the first-stage (DSL) location that produced the paused generated line.
func TestXBT(t *testing.T) {
	b := buildPower(t, true)
	d, out := session(t, b)
	// Generated line 5 is the first `x_2 = x_2 * x_2;` (DSL line 7).
	exec(t, d, "break power_gen.c:5", "run")
	out.Reset()
	exec(t, d, "xbt")
	tr := out.String()
	if !strings.Contains(tr, "#0 in power at power.dsl:7") {
		t.Errorf("xbt missing DSL frame:\n%s", tr)
	}
	if !strings.Contains(tr, "#1 in main at host.go:100") {
		t.Errorf("xbt missing host frame:\n%s", tr)
	}
}

func TestXBTviaRawCall(t *testing.T) {
	// The macro is sugar; the raw call of Figure 5 works identically.
	b := buildPower(t, true)
	d, out := session(t, b)
	exec(t, d, "break power_gen.c:5", "run")
	out.Reset()
	exec(t, d, "call d2x_runtime::command_xbt($rip, $rsp)")
	if !strings.Contains(out.String(), "#0 in power at power.dsl:7") {
		t.Errorf("raw call transcript:\n%s", out.String())
	}
}

func TestXList(t *testing.T) {
	b := buildPower(t, true)
	d, out := session(t, b)
	exec(t, d, "break power_gen.c:5", "run")
	out.Reset()
	exec(t, d, "xlist")
	tr := out.String()
	if !strings.Contains(tr, ">7") || !strings.Contains(tr, "x = x * x") {
		t.Errorf("xlist should mark DSL line 7:\n%s", tr)
	}
	if !strings.Contains(tr, "res = res * x") {
		t.Errorf("xlist should show surrounding DSL lines:\n%s", tr)
	}
}

func TestXFrameNavigation(t *testing.T) {
	b := buildPower(t, true)
	d, out := session(t, b)
	exec(t, d, "break power_gen.c:5", "run")

	out.Reset()
	exec(t, d, "xframe")
	if !strings.Contains(out.String(), "#0 in power at power.dsl:7") {
		t.Errorf("xframe default:\n%s", out.String())
	}

	out.Reset()
	exec(t, d, "xframe 1")
	tr := out.String()
	if !strings.Contains(tr, "#1 in main at host.go:100") {
		t.Errorf("xframe 1:\n%s", tr)
	}
	// xlist fails cleanly for host.go, which the resolver cannot provide:
	// the command reports an error rather than fabricating output.
	if err := d.Execute("xlist"); err == nil {
		t.Error("xlist for unresolvable file succeeded")
	}

	// Selecting an out-of-range extended frame errors.
	if err := d.Execute("xframe 9"); err == nil {
		t.Error("xframe 9 accepted")
	}
}

func TestXFrameResetsOnNewStop(t *testing.T) {
	b := buildPower(t, true)
	d, out := session(t, b)
	exec(t, d, "break power_gen.c:5", "break power_gen.c:7", "run", "xframe 1", "continue")
	out.Reset()
	exec(t, d, "xframe")
	// After moving to a new rip, the selected extended frame resets to 0.
	if !strings.Contains(out.String(), "#0 in power") {
		t.Errorf("xframe after new stop:\n%s", out.String())
	}
}

// TestXVars reproduces the xvars flow of Figure 9: the erased first-stage
// variable `exponent` is visible with the value it had when this line was
// generated, and the handler-backed variable evaluates live state.
func TestXVars(t *testing.T) {
	b := buildPower(t, true)
	d, out := session(t, b)
	exec(t, d, "break power_gen.c:4", "run") // first res_1 multiply: exponent 15
	out.Reset()
	exec(t, d, "xvars")
	tr := out.String()
	if !strings.Contains(tr, "1. exponent") || !strings.Contains(tr, "2. res_view") {
		t.Fatalf("xvars listing:\n%s", tr)
	}
	out.Reset()
	exec(t, d, "xvars exponent")
	if !strings.Contains(out.String(), "exponent = 15") {
		t.Errorf("xvars exponent:\n%s", out.String())
	}

	// After two squarings the static exponent is 3 (15 -> 7 -> 3).
	exec(t, d, "break power_gen.c:8", "continue")
	out.Reset()
	exec(t, d, "xvars exponent")
	if !strings.Contains(out.String(), "exponent = 7") {
		t.Errorf("xvars exponent at line 8:\n%s", out.String())
	}

	if err := d.Execute("xvars nosuch"); err == nil {
		t.Error("xvars with unknown key accepted")
	}
}

// TestRTVHandler: the handler is generated code evaluated at debug time;
// it uses find_stack_var to read the paused frame (Figure 7 mechanism).
func TestRTVHandler(t *testing.T) {
	b := buildPower(t, true)
	d, out := session(t, b)
	exec(t, d, "break power_gen.c:5", "run") // res_1 == 3 here
	out.Reset()
	exec(t, d, "xvars res_view")
	if !strings.Contains(out.String(), "res_view = res_1=3") {
		t.Errorf("rtv_handler output:\n%s", out.String())
	}
	// The handler sees updated state as execution advances: just before
	// the third multiply, res_1 holds 3 * 9 = 27.
	exec(t, d, "break power_gen.c:10", "continue")
	out.Reset()
	exec(t, d, "xvars res_view")
	if !strings.Contains(out.String(), "res_view = res_1=27") {
		t.Errorf("rtv_handler after continue:\n%s", out.String())
	}
}

// TestXBreak reproduces Figure 9's xbreak: one DSL-level breakpoint
// expands to breakpoints at every generated line whose extended stack top
// matches, inserted through the eval mechanism.
func TestXBreak(t *testing.T) {
	b := buildPower(t, true)
	d, out := session(t, b)
	exec(t, d, "break power_gen.c:2", "run")
	out.Reset()
	// DSL line 6 (`res = res * x`) was generated 4 times (15,7,3,1 all odd).
	exec(t, d, "xbreak power.dsl:6")
	tr := out.String()
	if !strings.Contains(tr, "Inserting 4 breakpoints with ID: #1") {
		t.Fatalf("xbreak banner:\n%s", tr)
	}
	if strings.Count(tr, "Breakpoint ") != 4 {
		t.Errorf("expected 4 debugger breakpoint banners:\n%s", tr)
	}
	if got := len(d.Breakpoints()); got != 5 { // 1 manual + 4 from xbreak
		t.Errorf("debugger has %d breakpoints, want 5", got)
	}
	if got := len(b.Runtime.Breakpoints()); got != 1 {
		t.Errorf("runtime has %d DSL breakpoints, want 1", got)
	}

	// Each continue lands on a res_1 multiply.
	for i := 0; i < 4; i++ {
		exec(t, d, "continue")
		if d.LastStop().Reason != debugger.StopBreakpoint {
			t.Fatalf("continue %d: stop = %v", i, d.LastStop().Reason)
		}
	}
	exec(t, d, "continue")
	if d.LastStop().Reason != debugger.StopExited {
		t.Errorf("final stop = %v, want exited", d.LastStop().Reason)
	}
}

func TestXBreakBareLineAndListing(t *testing.T) {
	b := buildPower(t, true)
	d, out := session(t, b)
	exec(t, d, "break power_gen.c:2", "run")
	out.Reset()
	// A bare line number resolves against the current DSL file.
	exec(t, d, "xbreak 7")
	if !strings.Contains(out.String(), "Inserting 3 breakpoints with ID: #1") {
		t.Fatalf("bare-line xbreak:\n%s", out.String())
	}
	out.Reset()
	exec(t, d, "xbreak") // listing mode
	if !strings.Contains(out.String(), "#1  power.dsl:7  (3 generated locations)") {
		t.Errorf("xbreak listing:\n%s", out.String())
	}
	out.Reset()
	exec(t, d, "xbreak power.dsl:999")
	if !strings.Contains(out.String(), "No generated code for power.dsl:999") {
		t.Errorf("xbreak on empty line:\n%s", out.String())
	}
}

func TestXDel(t *testing.T) {
	b := buildPower(t, true)
	d, out := session(t, b)
	exec(t, d, "break power_gen.c:2", "run", "xbreak power.dsl:6")
	before := len(d.Breakpoints())
	out.Reset()
	exec(t, d, "xdel 1")
	tr := out.String()
	if !strings.Contains(tr, "Deleted DSL breakpoint #1") {
		t.Fatalf("xdel banner:\n%s", tr)
	}
	if got := len(d.Breakpoints()); got != before-4 {
		t.Errorf("breakpoints after xdel = %d, want %d", got, before-4)
	}
	if len(b.Runtime.Breakpoints()) != 0 {
		t.Error("runtime still tracks the deleted DSL breakpoint")
	}
	// Program now runs to completion.
	exec(t, d, "continue")
	if d.LastStop().Reason != debugger.StopExited {
		t.Errorf("stop = %v, want exited", d.LastStop().Reason)
	}
	if err := d.Execute("xdel 7"); err == nil {
		t.Error("xdel of unknown id accepted")
	}
}

func TestNoD2XContextMessage(t *testing.T) {
	b := buildPower(t, true)
	d, out := session(t, b)
	// main() is outside any D2X section.
	exec(t, d, "break main", "run")
	out.Reset()
	exec(t, d, "xbt")
	if !strings.Contains(out.String(), "No D2X context for generated line") {
		t.Errorf("xbt outside section:\n%s", out.String())
	}
	out.Reset()
	exec(t, d, "xvars")
	if !strings.Contains(out.String(), "No D2X variables for generated line") {
		t.Errorf("xvars outside section:\n%s", out.String())
	}
}

// TestDebuggerHasNoD2XKnowledge is the architecture test: the debugger
// package must not import any d2x package — the paper's central claim is
// that the debugger needs zero modification.
func TestDebuggerHasNoD2XKnowledge(t *testing.T) {
	// The import-level invariant is enforced by d2xverify's
	// arch/import-graph check over the real source tree.
	root, err := loc.RepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	rep := d2xverify.VerifyRepo(root)
	if got := rep.ByCheck("arch/import-graph"); len(got) != 0 {
		t.Fatalf("debugger imports D2X packages:\n%s", rep)
	}
	// And the runtime half of the invariant: a D2X-less session must
	// still support every debugger command, with the macros simply
	// absent.
	b := buildPower(t, false)
	var out strings.Builder
	d, err := b.NewSession(&out)
	if err != nil {
		t.Fatal(err)
	}
	exec(t, d, "break power_gen.c:5", "run", "bt", "info locals", "continue")
	if !strings.Contains(out.String(), "14348907") {
		t.Errorf("plain session broken:\n%s", out.String())
	}
	// And the D2X macros are simply absent.
	if err := d.Execute("xbt"); err == nil {
		t.Error("xbt available without the D2X runtime linked")
	}
}

func TestTablesSurviveSourceRoundTrip(t *testing.T) {
	// The emitted tables are genuine generated code: recompiling the
	// emitted source text from scratch yields a working D2X build.
	b := buildPower(t, true)
	if !strings.Contains(b.Source, "__init_d2x_0") {
		t.Fatal("emitted source lacks the D2X constructor")
	}
	if !strings.Contains(b.Source, "__d2x_strtab") {
		t.Fatal("emitted source lacks the string table")
	}
}
