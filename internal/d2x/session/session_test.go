package session

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"d2x/internal/d2x/d2xc"
	"d2x/internal/d2x/d2xenc"
	"d2x/internal/minic"
	"d2x/internal/obs"
)

func TestStateLifecycle(t *testing.T) {
	s := New()
	vm1 := &minic.VM{}
	vm2 := &minic.VM{}

	if _, ok := s.Lookup(vm1); ok {
		t.Error("Lookup before State created")
	}
	st1 := s.State(vm1)
	if st1.NextID != 1 {
		t.Errorf("fresh state NextID = %d, want 1", st1.NextID)
	}
	if got := s.State(vm1); got != st1 {
		t.Error("State is not stable per VM")
	}
	st2 := s.State(vm2)
	if st2 == st1 {
		t.Error("distinct VMs share a state")
	}
	if n := s.Sessions(); n != 2 {
		t.Errorf("Sessions = %d, want 2", n)
	}

	st1.XBPs = append(st1.XBPs, &XBreakpoint{ID: 2, File: "a.dsl", Line: 1})
	st2.XBPs = append(st2.XBPs, &XBreakpoint{ID: 1, File: "b.dsl", Line: 2})
	all := s.AllBreakpoints()
	if len(all) != 2 || all[0].ID != 1 || all[1].ID != 2 {
		t.Errorf("AllBreakpoints = %+v", all)
	}

	s.Release(vm1)
	s.Release(vm1) // idempotent
	if n := s.Sessions(); n != 1 {
		t.Errorf("Sessions after Release = %d, want 1", n)
	}
	if _, ok := s.Lookup(vm1); ok {
		t.Error("Lookup after Release")
	}
	if _, ok := s.Lookup(vm2); !ok {
		t.Error("Release evicted the wrong session")
	}
}

func TestTablesFailureNotCached(t *testing.T) {
	s := New()
	prog, err := minic.Compile("p.c", "func int main() { return 0; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := minic.NewVM(prog, nil)
	// This program carries no tables: the decode fails, and the failure
	// must not be cached as a decode.
	if _, err := s.Tables(vm); err == nil || !strings.Contains(err.Error(), "no D2X tables") {
		t.Fatalf("Tables on table-less program: %v", err)
	}
	if n := s.Decodes(); n != 0 {
		t.Errorf("Decodes after failure = %d, want 0", n)
	}
}

// TestMetricsReflectLifecycle asserts that state creation and eviction
// are visible in the obs layer: the satellite requirement that "eviction
// is reflected in the metrics". The registry is process-wide, so the
// test works in deltas.
func TestMetricsReflectLifecycle(t *testing.T) {
	creates := obs.GetCounter("session.state.creates")
	evicts := obs.GetCounter("session.state.evicts")
	live := obs.GetGauge("session.live")
	c0, e0, l0 := creates.Value(), evicts.Value(), live.Value()

	s := New()
	vm1, vm2 := &minic.VM{}, &minic.VM{}
	st1 := s.State(vm1)
	s.State(vm2)
	if d := creates.Value() - c0; d != 2 {
		t.Errorf("creates delta = %d, want 2", d)
	}
	if d := live.Value() - l0; d != 2 {
		t.Errorf("live delta = %d, want 2", d)
	}
	if st1.ID == 0 {
		t.Error("session ID not assigned")
	}

	s.Release(vm1)
	s.Release(vm1) // idempotent: second release must not double-count
	if d := evicts.Value() - e0; d != 1 {
		t.Errorf("evicts delta = %d, want 1", d)
	}
	if d := live.Value() - l0; d != 1 {
		t.Errorf("live delta after evict = %d, want 1", d)
	}
	s.Release(vm2)
	if d := live.Value() - l0; d != 0 {
		t.Errorf("live delta after full drain = %d, want 0", d)
	}
	if d := evicts.Value() - e0; d != 2 {
		t.Errorf("evicts delta after full drain = %d, want 2", d)
	}
}

// TestInvalidateResetsStates covers the re-attach bugfix: replacing the
// build must reset each session's frame selection, rip memory and DSL
// breakpoints while keeping the State objects (and their identities and
// fuel budgets) alive.
func TestInvalidateResetsStates(t *testing.T) {
	s := New()
	vm := &minic.VM{}
	st := s.State(vm)
	st.SelXFrame = 3
	st.LastRIP = 0x77
	st.HaveRIP = true
	st.CmdActive = true
	st.CurRSP = 9
	st.FuelBudget = 123
	st.XBPs = append(st.XBPs, &XBreakpoint{ID: 1, File: "a.dsl", Line: 4, GenLines: []int{10}})
	st.NextID = 2
	id := st.ID

	s.Invalidate()

	if got := s.State(vm); got != st {
		t.Fatal("Invalidate replaced the State object")
	}
	if st.SelXFrame != 0 || st.LastRIP != 0 || st.HaveRIP || st.CmdActive || st.CurRSP != 0 {
		t.Errorf("stale frame state survived: %+v", st)
	}
	if len(st.XBPs) != 0 || st.NextID != 1 {
		t.Errorf("stale breakpoints survived: %+v NextID=%d", st.XBPs, st.NextID)
	}
	if st.ID != id {
		t.Errorf("session ID changed across Invalidate: %d -> %d", id, st.ID)
	}
	if st.FuelBudget != 123 {
		t.Errorf("fuel budget lost across Invalidate: %d", st.FuelBudget)
	}
}

// TestInvalidateDropsSharedTables: after Invalidate the next Tables call
// must re-decode (miss), not serve the stale build's decode.
func TestInvalidateDropsSharedTables(t *testing.T) {
	s := New()
	prog, err := minic.Compile("p.c", "func int main() { return 0; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := minic.NewVM(prog, nil)
	if _, err := s.Tables(vm); err == nil {
		t.Fatal("decode unexpectedly succeeded on a table-less program")
	}
	s.Invalidate()
	if s.tables.Load() != nil {
		t.Error("tables survived Invalidate")
	}
}

// tablesVM compiles a program that carries one small D2X table section
// and runs it so the table constructors have executed — the minimal
// debuggee Service.Tables can decode from.
func tablesVM(t *testing.T) *minic.VM {
	t.Helper()
	ctx := d2xc.NewContext()
	if err := ctx.BeginSectionAt(5); err != nil {
		t.Fatal(err)
	}
	ctx.PushSourceLoc("a.dsl", 1, "f")
	ctx.SetVar("sched", "push")
	ctx.Nextl() // line 5
	ctx.PushSourceLoc("a.dsl", 2, "f")
	ctx.Nextl() // line 6
	if err := ctx.EndSection(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := d2xenc.EmitTables(ctx, &b); err != nil {
		t.Fatal(err)
	}
	b.WriteString("func int main() { return 0; }\n")
	prog, err := minic.Compile("tables.c", b.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := minic.NewVM(prog, nil)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	return vm
}

// TestCheckoutPinsStateAcrossInvalidate is the deterministic half of the
// eviction/invalidate race fix: while a command holds a state via
// Checkout, Invalidate must not reset it in place; the reset lands at
// Checkin, after the command's view is no longer live.
func TestCheckoutPinsStateAcrossInvalidate(t *testing.T) {
	s := New()
	vm := &minic.VM{}
	st := s.Checkout(vm)
	st.SelXFrame = 3
	st.XBPs = append(st.XBPs, &XBreakpoint{ID: 1, File: "a.dsl", Line: 4})
	st.NextID = 2
	st.FuelBudget = 99

	s.Invalidate()

	// The in-flight command's view is intact.
	if st.SelXFrame != 3 || len(st.XBPs) != 1 || st.NextID != 2 {
		t.Fatalf("Invalidate reset a checked-out state: %+v", st)
	}

	s.Checkin(vm, st)

	// The deferred reset applied once the last pin dropped.
	if st.SelXFrame != 0 || len(st.XBPs) != 0 || st.NextID != 1 {
		t.Fatalf("deferred reset not applied at Checkin: %+v", st)
	}
	if st.FuelBudget != 99 {
		t.Errorf("fuel budget lost across deferred reset: %d", st.FuelBudget)
	}

	// A nested pin (refcount 2) defers until the outer Checkin.
	st = s.Checkout(vm)
	inner := s.Checkout(vm)
	if inner != st {
		t.Fatal("nested Checkout returned a different state")
	}
	st.NextID = 7
	s.Invalidate()
	s.Checkin(vm, inner)
	if st.NextID != 7 {
		t.Fatal("reset applied while an outer pin was still held")
	}
	s.Checkin(vm, st)
	if st.NextID != 1 {
		t.Fatal("reset not applied after the outer Checkin")
	}
}

// TestInvalidateRaceWithInFlightCommand provokes the old interleaving —
// Invalidate calling Reset() on a state another goroutine is mid-command
// on — under the race detector. With the pre-refcount registry this was
// a write/write race on State fields; with Checkout/Checkin the reset is
// deferred and the test is race-clean.
func TestInvalidateRaceWithInFlightCommand(t *testing.T) {
	s := New()
	vm := &minic.VM{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.Checkout(vm)
			// Touch exactly the fields Reset tears down, the way a
			// command body does.
			st.SelXFrame++
			st.LastRIP = int64(st.SelXFrame)
			st.HaveRIP = true
			st.XBPs = append(st.XBPs[:0], &XBreakpoint{ID: st.NextID})
			st.NextID++
			s.Checkin(vm, st)
		}
	}()
	for i := 0; i < 2000; i++ {
		s.Invalidate()
	}
	close(stop)
	wg.Wait()
}

// TestFuelBudgetSurvivesEviction is the regression test for the
// fuel-budget loss: a session sets an override, its debugger closes
// (Release evicts the state), and a new session attaches to the same VM
// — the override must survive the state re-creation.
func TestFuelBudgetSurvivesEviction(t *testing.T) {
	s := New()
	vm := &minic.VM{}
	st := s.State(vm)
	st.FuelBudget = 4242
	s.Release(vm)

	st2 := s.State(vm)
	if st2 == st {
		t.Fatal("Release did not evict the state object")
	}
	if st2.FuelBudget != 4242 {
		t.Errorf("fuel budget lost across eviction: got %d, want 4242", st2.FuelBudget)
	}

	// The default (no override) stays the default across eviction.
	vm2 := &minic.VM{}
	s.State(vm2)
	s.Release(vm2)
	if got := s.State(vm2).FuelBudget; got != 0 {
		t.Errorf("zero fuel budget turned into an override: %d", got)
	}
}

// TestReleaseDoesNotDisturbCheckedOutState: eviction while a command is
// in flight removes the registry entry (new sessions get fresh state)
// but never resets the pinned object the in-flight command holds.
func TestReleaseDoesNotDisturbCheckedOutState(t *testing.T) {
	s := New()
	vm := &minic.VM{}
	st := s.Checkout(vm)
	st.XBPs = append(st.XBPs, &XBreakpoint{ID: 1})
	st.FuelBudget = 7

	s.Release(vm)
	if len(st.XBPs) != 1 {
		t.Fatal("Release tore down a checked-out state")
	}
	st2 := s.State(vm)
	if st2 == st {
		t.Fatal("evicted state was handed to a new session")
	}
	if st2.FuelBudget != 7 {
		t.Errorf("fuel budget not inherited by the new session: %d", st2.FuelBudget)
	}
	s.Checkin(vm, st) // must not panic or resurrect the mapping
	if got, ok := s.Lookup(vm); !ok || got != st2 {
		t.Error("Checkin of an evicted state disturbed the registry")
	}
}

// TestShardSpread: the pointer hash must actually spread states across
// shards — a degenerate hash would put every session behind one lock and
// silently reintroduce the global-mutex bottleneck.
func TestShardSpread(t *testing.T) {
	s := New()
	vms := make([]*minic.VM, 1024)
	for i := range vms {
		vms[i] = &minic.VM{}
		s.State(vms[i])
	}
	if n := s.Sessions(); n != len(vms) {
		t.Fatalf("Sessions = %d, want %d", n, len(vms))
	}
	occupied := 0
	most := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n := len(sh.states)
		sh.mu.Unlock()
		if n > 0 {
			occupied++
		}
		if n > most {
			most = n
		}
	}
	if occupied < ShardCount/2 {
		t.Errorf("1024 sessions landed on only %d/%d shards", occupied, ShardCount)
	}
	if most > len(vms)/4 {
		t.Errorf("one shard holds %d of %d sessions; hash is degenerate", most, len(vms))
	}
}

// TestInvalidateConcurrentTablesLookup: 8 goroutines hammer the
// shared-decode and state paths while Invalidate repeatedly drops the
// published tables. Every decode any goroutine observes must be complete
// and equal to the reference decode — a torn publish would differ (and
// trip the race detector).
func TestInvalidateConcurrentTablesLookup(t *testing.T) {
	s := New()
	vm := tablesVM(t)

	ref, err := s.Tables(vm)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Records) == 0 {
		t.Fatal("fixture decoded no records")
	}

	const goroutines = 8
	const iters = 400
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tb, err := s.Tables(vm)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(tb.Records, ref.Records) {
					errs <- errTornDecode
					return
				}
				st := s.Checkout(vm)
				st.LastRIP = int64(i)
				st.HaveRIP = true
				s.Checkin(vm, st)
				if _, ok := s.Lookup(vm); !ok {
					errs <- errLostState
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < iters; i++ {
			s.Invalidate()
		}
		close(done)
	}()
	wg.Wait()
	<-done
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The decode counter must reflect real re-decodes (every miss after
	// an Invalidate), never a cached failure.
	if s.Decodes() < 1 {
		t.Errorf("Decodes = %d, want >= 1", s.Decodes())
	}
}

var (
	errTornDecode = &decodeErr{"observed a torn or stale table decode"}
	errLostState  = &decodeErr{"Lookup lost a live session state"}
)

type decodeErr struct{ msg string }

func (e *decodeErr) Error() string { return e.msg }

func TestStateConcurrent(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			vm := &minic.VM{}
			st := s.State(vm)
			st.CmdActive = true
			st.XBPs = append(st.XBPs, &XBreakpoint{ID: 1})
			if _, ok := s.Lookup(vm); !ok {
				t.Error("Lookup missed own state")
			}
			s.Release(vm)
		}()
	}
	wg.Wait()
	if n := s.Sessions(); n != 0 {
		t.Errorf("Sessions after concurrent churn = %d, want 0", n)
	}
}
