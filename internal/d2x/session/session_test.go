package session

import (
	"strings"
	"sync"
	"testing"

	"d2x/internal/minic"
)

func TestStateLifecycle(t *testing.T) {
	s := New()
	vm1 := &minic.VM{}
	vm2 := &minic.VM{}

	if _, ok := s.Lookup(vm1); ok {
		t.Error("Lookup before State created")
	}
	st1 := s.State(vm1)
	if st1.NextID != 1 {
		t.Errorf("fresh state NextID = %d, want 1", st1.NextID)
	}
	if got := s.State(vm1); got != st1 {
		t.Error("State is not stable per VM")
	}
	st2 := s.State(vm2)
	if st2 == st1 {
		t.Error("distinct VMs share a state")
	}
	if n := s.Sessions(); n != 2 {
		t.Errorf("Sessions = %d, want 2", n)
	}

	st1.XBPs = append(st1.XBPs, &XBreakpoint{ID: 2, File: "a.dsl", Line: 1})
	st2.XBPs = append(st2.XBPs, &XBreakpoint{ID: 1, File: "b.dsl", Line: 2})
	all := s.AllBreakpoints()
	if len(all) != 2 || all[0].ID != 1 || all[1].ID != 2 {
		t.Errorf("AllBreakpoints = %+v", all)
	}

	s.Release(vm1)
	s.Release(vm1) // idempotent
	if n := s.Sessions(); n != 1 {
		t.Errorf("Sessions after Release = %d, want 1", n)
	}
	if _, ok := s.Lookup(vm1); ok {
		t.Error("Lookup after Release")
	}
	if _, ok := s.Lookup(vm2); !ok {
		t.Error("Release evicted the wrong session")
	}
}

func TestTablesFailureNotCached(t *testing.T) {
	s := New()
	prog, err := minic.Compile("p.c", "func int main() { return 0; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := minic.NewVM(prog, nil)
	// This program carries no tables: the decode fails, and the failure
	// must not be cached as a decode.
	if _, err := s.Tables(vm); err == nil || !strings.Contains(err.Error(), "no D2X tables") {
		t.Fatalf("Tables on table-less program: %v", err)
	}
	if n := s.Decodes(); n != 0 {
		t.Errorf("Decodes after failure = %d, want 0", n)
	}
}

func TestStateConcurrent(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			vm := &minic.VM{}
			st := s.State(vm)
			st.CmdActive = true
			st.XBPs = append(st.XBPs, &XBreakpoint{ID: 1})
			if _, ok := s.Lookup(vm); !ok {
				t.Error("Lookup missed own state")
			}
			s.Release(vm)
		}()
	}
	wg.Wait()
	if n := s.Sessions(); n != 0 {
		t.Errorf("Sessions after concurrent churn = %d, want 0", n)
	}
}
