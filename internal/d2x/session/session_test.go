package session

import (
	"strings"
	"sync"
	"testing"

	"d2x/internal/minic"
	"d2x/internal/obs"
)

func TestStateLifecycle(t *testing.T) {
	s := New()
	vm1 := &minic.VM{}
	vm2 := &minic.VM{}

	if _, ok := s.Lookup(vm1); ok {
		t.Error("Lookup before State created")
	}
	st1 := s.State(vm1)
	if st1.NextID != 1 {
		t.Errorf("fresh state NextID = %d, want 1", st1.NextID)
	}
	if got := s.State(vm1); got != st1 {
		t.Error("State is not stable per VM")
	}
	st2 := s.State(vm2)
	if st2 == st1 {
		t.Error("distinct VMs share a state")
	}
	if n := s.Sessions(); n != 2 {
		t.Errorf("Sessions = %d, want 2", n)
	}

	st1.XBPs = append(st1.XBPs, &XBreakpoint{ID: 2, File: "a.dsl", Line: 1})
	st2.XBPs = append(st2.XBPs, &XBreakpoint{ID: 1, File: "b.dsl", Line: 2})
	all := s.AllBreakpoints()
	if len(all) != 2 || all[0].ID != 1 || all[1].ID != 2 {
		t.Errorf("AllBreakpoints = %+v", all)
	}

	s.Release(vm1)
	s.Release(vm1) // idempotent
	if n := s.Sessions(); n != 1 {
		t.Errorf("Sessions after Release = %d, want 1", n)
	}
	if _, ok := s.Lookup(vm1); ok {
		t.Error("Lookup after Release")
	}
	if _, ok := s.Lookup(vm2); !ok {
		t.Error("Release evicted the wrong session")
	}
}

func TestTablesFailureNotCached(t *testing.T) {
	s := New()
	prog, err := minic.Compile("p.c", "func int main() { return 0; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := minic.NewVM(prog, nil)
	// This program carries no tables: the decode fails, and the failure
	// must not be cached as a decode.
	if _, err := s.Tables(vm); err == nil || !strings.Contains(err.Error(), "no D2X tables") {
		t.Fatalf("Tables on table-less program: %v", err)
	}
	if n := s.Decodes(); n != 0 {
		t.Errorf("Decodes after failure = %d, want 0", n)
	}
}

// TestMetricsReflectLifecycle asserts that state creation and eviction
// are visible in the obs layer: the satellite requirement that "eviction
// is reflected in the metrics". The registry is process-wide, so the
// test works in deltas.
func TestMetricsReflectLifecycle(t *testing.T) {
	creates := obs.GetCounter("session.state.creates")
	evicts := obs.GetCounter("session.state.evicts")
	live := obs.GetGauge("session.live")
	c0, e0, l0 := creates.Value(), evicts.Value(), live.Value()

	s := New()
	vm1, vm2 := &minic.VM{}, &minic.VM{}
	st1 := s.State(vm1)
	s.State(vm2)
	if d := creates.Value() - c0; d != 2 {
		t.Errorf("creates delta = %d, want 2", d)
	}
	if d := live.Value() - l0; d != 2 {
		t.Errorf("live delta = %d, want 2", d)
	}
	if st1.ID == 0 {
		t.Error("session ID not assigned")
	}

	s.Release(vm1)
	s.Release(vm1) // idempotent: second release must not double-count
	if d := evicts.Value() - e0; d != 1 {
		t.Errorf("evicts delta = %d, want 1", d)
	}
	if d := live.Value() - l0; d != 1 {
		t.Errorf("live delta after evict = %d, want 1", d)
	}
	s.Release(vm2)
	if d := live.Value() - l0; d != 0 {
		t.Errorf("live delta after full drain = %d, want 0", d)
	}
	if d := evicts.Value() - e0; d != 2 {
		t.Errorf("evicts delta after full drain = %d, want 2", d)
	}
}

// TestInvalidateResetsStates covers the re-attach bugfix: replacing the
// build must reset each session's frame selection, rip memory and DSL
// breakpoints while keeping the State objects (and their identities and
// fuel budgets) alive.
func TestInvalidateResetsStates(t *testing.T) {
	s := New()
	vm := &minic.VM{}
	st := s.State(vm)
	st.SelXFrame = 3
	st.LastRIP = 0x77
	st.HaveRIP = true
	st.CmdActive = true
	st.CurRSP = 9
	st.FuelBudget = 123
	st.XBPs = append(st.XBPs, &XBreakpoint{ID: 1, File: "a.dsl", Line: 4, GenLines: []int{10}})
	st.NextID = 2
	id := st.ID

	s.Invalidate()

	if got := s.State(vm); got != st {
		t.Fatal("Invalidate replaced the State object")
	}
	if st.SelXFrame != 0 || st.LastRIP != 0 || st.HaveRIP || st.CmdActive || st.CurRSP != 0 {
		t.Errorf("stale frame state survived: %+v", st)
	}
	if len(st.XBPs) != 0 || st.NextID != 1 {
		t.Errorf("stale breakpoints survived: %+v NextID=%d", st.XBPs, st.NextID)
	}
	if st.ID != id {
		t.Errorf("session ID changed across Invalidate: %d -> %d", id, st.ID)
	}
	if st.FuelBudget != 123 {
		t.Errorf("fuel budget lost across Invalidate: %d", st.FuelBudget)
	}
}

// TestInvalidateDropsSharedTables: after Invalidate the next Tables call
// must re-decode (miss), not serve the stale build's decode.
func TestInvalidateDropsSharedTables(t *testing.T) {
	s := New()
	prog, err := minic.Compile("p.c", "func int main() { return 0; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := minic.NewVM(prog, nil)
	if _, err := s.Tables(vm); err == nil {
		t.Fatal("decode unexpectedly succeeded on a table-less program")
	}
	s.Invalidate()
	if s.tables.Load() != nil {
		t.Error("tables survived Invalidate")
	}
}

func TestStateConcurrent(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			vm := &minic.VM{}
			st := s.State(vm)
			st.CmdActive = true
			st.XBPs = append(st.XBPs, &XBreakpoint{ID: 1})
			if _, ok := s.Lookup(vm); !ok {
				t.Error("Lookup missed own state")
			}
			s.Release(vm)
		}()
	}
	wg.Wait()
	if n := s.Sessions(); n != 0 {
		t.Errorf("Sessions after concurrent churn = %d, want 0", n)
	}
}
