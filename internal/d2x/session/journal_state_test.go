package session

import (
	"testing"

	"d2x/internal/minic"
)

// fakeJournal stands in for the execution journal: the registry only
// ever moves the handle and calls Stop through the small interface.
type fakeJournal struct{ stopped bool }

func (f *fakeJournal) Stop() { f.stopped = true }

// TestJournalSurvivesEviction: a session starts recording, its debugger
// closes (Release evicts the state), and a new session attaches to the
// same VM — the recording must come back live, not stopped.
func TestJournalSurvivesEviction(t *testing.T) {
	s := New()
	vm := &minic.VM{}
	j := &fakeJournal{}
	s.State(vm).Journal = j
	s.Release(vm)
	if j.stopped {
		t.Fatal("parking a recording must not stop it")
	}

	st2 := s.State(vm)
	if st2.Journal != j {
		t.Fatalf("recording lost across eviction: got %v", st2.Journal)
	}
	// The handle moved — it is not also still parked, so a later
	// eviction of some other VM cannot stop this live recording.
	s.Release(vm)
	if j.stopped {
		t.Fatal("re-parking after restore stopped the recording")
	}
	if got := s.State(vm).Journal; got != j {
		t.Fatalf("second round trip lost the recording: got %v", got)
	}
}

// TestJournalMemoryIsBounded: parked recordings hold real history, so
// the per-shard memory is small and FIFO — and a recording that falls
// off the end is stopped, freeing its snapshots, not leaked.
func TestJournalMemoryIsBounded(t *testing.T) {
	s := New()
	// Collect VMs that all hash to one shard, so the FIFO bound applies
	// across them.
	target := s.shardFor(&minic.VM{})
	var vms []*minic.VM
	for len(vms) < maxJournalMemory+1 {
		vm := &minic.VM{}
		if s.shardFor(vm) == target {
			vms = append(vms, vm)
		}
	}
	jours := make([]*fakeJournal, len(vms))
	for i, vm := range vms {
		jours[i] = &fakeJournal{}
		s.State(vm).Journal = jours[i]
		s.Release(vm)
	}
	if !jours[0].stopped {
		t.Error("oldest parked recording survived past the FIFO bound")
	}
	for i := 1; i < len(jours); i++ {
		if jours[i].stopped {
			t.Errorf("recording %d stopped while within the bound", i)
		}
	}
	if s.State(vms[0]).Journal != nil {
		t.Error("evicted recording handle resurfaced")
	}
	if s.State(vms[1]).Journal != jours[1] {
		t.Error("bounded memory lost a recording it should have kept")
	}
}

// TestResetStopsJournal: build invalidation tears the recording down
// with the rest of the build-scoped state — its history indexes the old
// build's instruction stream.
func TestResetStopsJournal(t *testing.T) {
	st := &State{NextID: 1}
	j := &fakeJournal{}
	st.Journal = j
	st.Reset()
	if !j.stopped {
		t.Error("Reset left the recording running against a dead build")
	}
	if st.Journal != nil {
		t.Error("Reset kept the stale journal handle")
	}
}

// TestInvalidateStopsParkedJournals: recordings parked by Release are
// build-scoped too; Invalidate must stop and drop them, not just the
// live ones.
func TestInvalidateStopsParkedJournals(t *testing.T) {
	s := New()
	vm := &minic.VM{}
	j := &fakeJournal{}
	s.State(vm).Journal = j
	s.Release(vm)

	s.Invalidate()
	if !j.stopped {
		t.Error("Invalidate left a parked recording of the old build running")
	}
	if got := s.State(vm).Journal; got != nil {
		t.Errorf("stale recording handed to a post-invalidate session: %v", got)
	}
}
