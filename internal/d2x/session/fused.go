package session

import (
	"d2x/internal/d2x/d2xc"
	"d2x/internal/d2x/d2xenc"
	"d2x/internal/dwarfish"
	"d2x/internal/minic"
	"d2x/internal/obs"
)

// maxPC is the open upper bound of a function's final line range.
const maxPC = int(^uint(0) >> 1)

// fusedEntry maps one rip range [lo, hi) of a function directly to its
// full resolution: the generated line (stage 1) and the D2X context
// record for that line (stage 2). A genLine of 0 marks a range the
// debug info declares but does not map (LineOf reports line 0 there);
// rec is nil when the generated line has no D2X record.
type fusedEntry struct {
	lo, hi  int
	genLine int
	rec     *d2xc.Record
}

// Fused is the fused resolution index: the two-stage mapping of the
// paper — rip → generated line via standard debug info, generated line
// → DSL context via the D2X tables — joined at build time into one
// immutable per-function sorted range array, so resolving a frame is a
// single binary search instead of a line-table walk plus a table
// lookup. Like d2xenc.Tables, a Fused never changes after construction
// and is shared read-only by every session of the build.
//
//d2x:immutable
type Fused struct {
	// info is the debug info the index was built from. Consumers pass
	// their Info on lookup and the service compares identities, so an
	// index can never serve a session whose debug info was replaced.
	info    *dwarfish.Info
	genFile string
	// funcs is indexed by dwarfish FuncIndex; each entry list is sorted
	// by lo and non-overlapping.
	funcs [][]fusedEntry
}

// GenFile returns the generated source file name the index resolves
// into — interned, so render paths can hold it without copying.
func (fu *Fused) GenFile() string { return fu.genFile }

// Info returns the debug info identity the index was built from.
func (fu *Fused) Info() *dwarfish.Info { return fu.info }

// Resolve maps an encoded rip to (generated line, D2X record) in one
// binary search. ok is false exactly when the reference two-stage path
// would fail stage 1 (unknown function, or no line entry at or before
// the PC); rec is nil when stage 1 resolves but the generated line
// carries no D2X record, mirroring RecordForLine's miss.
//
//d2x:noalloc
func (fu *Fused) Resolve(rip int64) (genLine int, rec *d2xc.Record, ok bool) {
	a := dwarfish.DecodeAddr(rip)
	if a.FuncIndex < 0 || a.FuncIndex >= len(fu.funcs) {
		return 0, nil, false
	}
	entries := fu.funcs[a.FuncIndex]
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if entries[mid].lo <= a.PC {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, nil, false // PC below the first line entry: stage-1 miss
	}
	e := &entries[lo-1]
	if a.PC >= e.hi || e.genLine <= 0 {
		return 0, nil, false
	}
	return e.genLine, e.rec, true
}

// buildFused joins the debug info's line ranges with the decoded D2X
// tables. Adjacent ranges with the same resolution are coalesced, so
// the arrays stay small and the binary search short.
//
//d2x:ctor Fused
func buildFused(info *dwarfish.Info, t *d2xenc.Tables) *Fused {
	fu := &Fused{info: info, genFile: info.File}
	info.VisitLineRanges(func(f *dwarfish.FuncInfo, lo, hi, line int) {
		for f.FuncIndex >= len(fu.funcs) {
			fu.funcs = append(fu.funcs, nil)
		}
		h := hi
		if h < 0 {
			h = maxPC
		}
		var rec *d2xc.Record
		if line > 0 {
			rec = t.RecordForLine(line)
		}
		entries := fu.funcs[f.FuncIndex]
		if n := len(entries); n > 0 && entries[n-1].hi == lo &&
			entries[n-1].genLine == line && entries[n-1].rec == rec {
			entries[n-1].hi = h
		} else {
			entries = append(entries, fusedEntry{lo: lo, hi: h, genLine: line, rec: rec})
		}
		fu.funcs[f.FuncIndex] = entries
	})
	return fu
}

// Fused returns the fused resolution index for the given debug info,
// building it from the shared tables on first use. The hit path — every
// call after the first, from every session — is one atomic load plus an
// identity compare. A Fused built from replaced debug info can never be
// returned: the index remembers the *dwarfish.Info it came from and the
// identity check rejects it, and Invalidate drops the published index
// outright when AttachDebugInfo swaps the build.
//
//d2x:noalloc
func (s *Service) Fused(vm *minic.VM, info *dwarfish.Info) (*Fused, error) {
	if f := s.fused.Load(); f != nil && f.info == info {
		s.m.fusedHit.Inc()
		return f, nil
	}
	return s.buildFusedIndex(vm, info) //d2xvet:ignore noalloc miss path builds the index once per (build, info), off the steady state
}

// buildFusedIndex is the Fused miss path: build the index from the
// shared tables under decodeMu and publish it. Split from Fused so the
// hit path above stays within the //d2x:noalloc contract. The loop
// restarts when Invalidate races the build.
func (s *Service) buildFusedIndex(vm *minic.VM, info *dwarfish.Info) (*Fused, error) {
	for {
		if f := s.fused.Load(); f != nil && f.info == info {
			s.m.fusedHit.Inc()
			return f, nil
		}
		s.m.fusedMiss.Inc()
		t, err := s.Tables(vm)
		if err != nil {
			return nil, err
		}
		s.decodeMu.Lock()
		if f := s.fused.Load(); f != nil && f.info == info {
			s.decodeMu.Unlock()
			return f, nil
		}
		if s.tables.Load() != t {
			// Invalidate ran between our Tables call and the lock; the
			// decode we hold describes a dead build. Start over.
			s.decodeMu.Unlock()
			continue
		}
		start := obs.Now()
		f := buildFused(info, t)
		s.m.fusedLat.Since(start)
		s.m.fusedBuilds.Inc()
		s.fused.Store(f)
		s.decodeMu.Unlock()
		obs.Emit(obs.Event{Kind: "decode", Name: "fused-index", Detail: "fused rip index published"})
		return f, nil
	}
}
