// Package session is the shared debug-info service behind D2X-R: it owns
// the one immutable decode of a build's D2X tables and the per-session
// command state of every debugger attached to that build.
//
// The paper's premise (§3.2, Table 2) is that a debug command is a cheap
// call into the paused inferior. When many sessions debug instances of
// the same build concurrently, that only holds if the expensive part —
// decoding the tables out of inferior memory — happens once per build,
// not once per session, and if the cheap part touches no state shared
// between sessions. This package provides exactly that split:
//
//   - Tables: decoded on first use from whichever session asks first,
//     then shared read-only by every later session. d2xenc.Tables is
//     immutable after Decode and published through an atomic pointer,
//     so the hit path takes no lock at all — one atomic load plus one
//     atomic counter increment.
//   - State: the ambient command state one session accumulates (selected
//     extended frame, DSL breakpoints, active-command frame). Each state
//     is touched only by its own session's command stream; the registry
//     holding them is sharded by VM identity, so sessions on different
//     shards never contend even on the map.
//   - Checkout/Checkin: a command pins its session's state for its
//     duration. The pin is a refcount, so eviction and build
//     invalidation can never reset or tear a state another goroutine is
//     mid-command on — Invalidate defers the reset until the last
//     in-flight command checks the state back in.
//   - Release: evicts a session's state when its debugger closes, so a
//     long-lived build serving many sessions does not accumulate state
//     for VMs that are gone. The session's fuel-budget preference and
//     its live execution recording are remembered (bounded, FIFO) so a
//     re-attach to the same VM gets them back.
//
// Every event the service sees — decodes, cache hits and misses, state
// creation and eviction, the live-session high-water mark — is exported
// through internal/obs, so the premise is measured rather than asserted.
package session

import (
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"d2x/internal/d2x/d2xenc"
	"d2x/internal/minic"
	"d2x/internal/obs"
)

// XBreakpoint is one DSL-level breakpoint: a DSL location expanded to the
// generated lines it corresponds to. Breakpoints belong to the session
// that set them; IDs are per-session, like a debugger's.
type XBreakpoint struct {
	ID       int
	File     string
	Line     int
	GenLines []int

	// Plan is the cached expansion this breakpoint was installed from.
	// GenLines is a copy, never an alias: the breakpoint is recycled
	// through the session freelist while the plan stays cached.
	Plan *BreakPlan
}

// BreakPlan is the build-derived expansion of one DSL breakpoint
// location: the deduped sorted generated lines plus the interned break
// and clear scripts the debugger executes to install and remove them.
// A plan is computed once per (file, line) per session and cached on
// the State (see PlanFor/AddPlan) — the lexer, macro, and string work
// of resolving a spec is paid on the first xbreak only, which is what
// takes the xbreak+xdel round trip below its allocation budget and
// what ResolveBreakSet amortizes across a whole breakpoint set. Plans
// are immutable once cached; Reset drops them with the rest of the
// build-derived state.
type BreakPlan struct {
	File     string
	Line     int
	GenLines []int

	// BreakScript and ClearScript are the newline-joined stock-debugger
	// command strings ("break gen.c:N" / "clear gen.c:N", one per
	// generated line) the macro layer evals.
	BreakScript string
	ClearScript string
}

// breakKey keys the per-session plan cache. A struct key, so lookups
// allocate nothing.
type breakKey struct {
	file string
	line int
}

// maxPlanCache bounds the per-session plan cache. When full it is
// cleared wholesale (like the runtime's expression caches): a session
// that resolves hundreds of distinct locations is a fuzzer, not a
// debugging human, and re-resolving is merely the cold-path cost.
const maxPlanCache = 256

// State is the command state of one debug session, keyed by the session's
// debuggee VM. A debug session executes commands one at a time from its
// paused debugger, so the fields need no lock of their own — only the
// sharded registry that stores states is shared between sessions.
type State struct {
	// ID identifies this session in trace events and diagnostics,
	// assigned once at creation and stable across Reset.
	ID int64

	// SelXFrame is the selected extended frame (xframe), reset to the
	// top whenever a command arrives with a new rip.
	SelXFrame int
	LastRIP   int64
	HaveRIP   bool

	// CmdActive reports that a frame-bearing D2X command is currently
	// executing on this session, and CurRSP holds its frame ID. An
	// explicit flag, not a sentinel value: frame ID 0 is a valid frame
	// (the first frame a VM creates), so "CurRSP == 0" cannot mean
	// "no command running".
	CmdActive bool
	CurRSP    int64

	XBPs   []*XBreakpoint
	NextID int

	// FuelBudget overrides the runtime's default instruction budget for
	// guarded rtv-handler evaluation in this session (0 = use the
	// runtime default). Handlers the effects analysis proved safe run
	// unguarded and ignore it.
	FuelBudget int64

	// Journal is the execution-journal handle of this session's process
	// record (a *journal.Journal, stored as any so this package does not
	// depend on the recorder). It is owned by the session's single command
	// stream like the fields above; the registry only moves it around.
	// Like FuelBudget it survives Release into a bounded per-shard memory,
	// so a debugger re-attaching to the same VM resumes its recording.
	// Unlike FuelBudget it does NOT survive Reset: the history describes
	// the old build's instruction stream, so invalidation stops it.
	Journal any

	// ScratchLines is the reusable generated-line scratch of the xbreak
	// and xdel command paths (candidate collection, dedupe, sort). It is
	// touched only by this session's single command stream and is always
	// rewritten from length zero, so stale contents cannot leak between
	// commands or builds; keeping the capacity across Reset is what makes
	// repeat commands allocation-free.
	ScratchLines []int

	// bpFree recycles breakpoints deleted by xdel — object and GenLines
	// capacity both — so a set/delete round trip stops allocating once
	// warm. Owned by the session's single command stream, like
	// ScratchLines. Entries survive Reset: their fields are fully
	// rewritten on reuse, so stale build state cannot leak through them.
	bpFree []*XBreakpoint

	// plans caches the BreakPlan of every DSL location this session has
	// resolved, keyed by (file, line). Owned by the session's single
	// command stream; dropped by Reset because the generated-line
	// expansions belong to the old build.
	plans map[breakKey]*BreakPlan

	// refs counts in-flight commands pinning this state (Checkout has
	// run, Checkin has not). resetPending records an Invalidate that
	// arrived while refs was non-zero; the reset is applied by the
	// Checkin that drops refs to zero. Both are guarded by the owning
	// shard's lock — they are registry bookkeeping, not command state.
	refs         int32
	resetPending bool
}

// Reset clears everything that refers to the build the session was
// debugging: the selected extended frame, the remembered rip, the active
// command marker, and every DSL breakpoint (their generated-line
// expansions belong to the old build's line numbering). The session's
// identity and its fuel-budget preference survive. Called when
// AttachDebugInfo replaces the build mid-flight.
//
//d2x:noalloc
func (st *State) Reset() {
	st.SelXFrame = 0
	st.LastRIP = 0
	st.HaveRIP = false
	st.CmdActive = false
	st.CurRSP = 0
	st.XBPs = nil
	st.NextID = 1
	st.plans = nil
	if j, ok := st.Journal.(interface{ Stop() }); ok {
		// Recorded history indexes the old build's instruction stream;
		// replaying it into the new build would restore garbage.
		j.Stop()
	}
	st.Journal = nil
}

// GetBP pops a recycled breakpoint — GenLines emptied, capacity kept —
// or allocates a fresh one. Callers overwrite every field.
//
//d2x:noalloc
func (st *State) GetBP() *XBreakpoint {
	if n := len(st.bpFree); n > 0 {
		bp := st.bpFree[n-1]
		st.bpFree[n-1] = nil
		st.bpFree = st.bpFree[:n-1]
		bp.GenLines = bp.GenLines[:0]
		return bp
	}
	return &XBreakpoint{} //d2xvet:ignore noalloc freelist miss allocates once; every round trip after reuses it
}

// PutBP recycles a deleted breakpoint's storage for the next xbreak.
// The breakpoint must already be unlinked from XBPs.
//
//d2x:noalloc amortized
func (st *State) PutBP(bp *XBreakpoint) {
	bp.Plan = nil
	st.bpFree = append(st.bpFree, bp)
}

// PlanFor returns the cached expansion of a DSL location, or nil if
// this session has not resolved it since the last Reset.
//
//d2x:noalloc
func (st *State) PlanFor(file string, line int) *BreakPlan {
	return st.plans[breakKey{file, line}]
}

// AddPlan caches a freshly computed expansion. The cache is bounded;
// when full it is cleared wholesale rather than evicted piecemeal.
func (st *State) AddPlan(p *BreakPlan) {
	if st.plans == nil {
		st.plans = make(map[breakKey]*BreakPlan, 8)
	} else if len(st.plans) >= maxPlanCache {
		clear(st.plans)
	}
	st.plans[breakKey{p.File, p.Line}] = p
}

// metrics is the service's observability handle set, resolved once at
// New so the hot paths never touch the registry.
type metrics struct {
	decodes      *obs.Counter
	decodeErrs   *obs.Counter
	tablesHit    *obs.Counter
	tablesMiss   *obs.Counter
	stateCreates *obs.Counter
	stateEvicts  *obs.Counter
	fuelRestores *obs.Counter
	jourRestores *obs.Counter
	live         *obs.Gauge
	decodeLat    *obs.Histogram
	fusedHit     *obs.Counter
	fusedMiss    *obs.Counter
	fusedBuilds  *obs.Counter
	fusedLat     *obs.Histogram
}

func newMetrics() metrics {
	return metrics{
		decodes:      obs.GetCounter("session.tables.decodes"),
		decodeErrs:   obs.GetCounter("session.tables.decode_errors"),
		tablesHit:    obs.GetCounter("session.tables.hit"),
		tablesMiss:   obs.GetCounter("session.tables.miss"),
		stateCreates: obs.GetCounter("session.state.creates"),
		stateEvicts:  obs.GetCounter("session.state.evicts"),
		fuelRestores: obs.GetCounter("session.state.fuel_restores"),
		jourRestores: obs.GetCounter("session.state.journal_restores"),
		live:         obs.GetGauge("session.live"),
		decodeLat:    obs.GetHistogram("session.tables.decode"),
		fusedHit:     obs.GetCounter("session.fused.hit"),
		fusedMiss:    obs.GetCounter("session.fused.miss"),
		fusedBuilds:  obs.GetCounter("session.fused.builds"),
		fusedLat:     obs.GetHistogram("session.fused.build"),
	}
}

// ShardCount is the number of independent locks the state registry is
// split across. A power of two; 32 shards keep lock contention invisible
// even with a thousand concurrent sessions (the d2xserve load harness is
// the regression test for that claim).
const ShardCount = 32

// maxFuelMemory bounds, per shard, how many evicted sessions' fuel-budget
// preferences are remembered. FIFO eviction: the memory exists so a
// debugger re-attaching to the same VM keeps its override, not as an
// unbounded registry of every VM that ever existed.
const maxFuelMemory = 128

// maxJournalMemory bounds, per shard, how many evicted sessions' live
// recordings are parked for re-attach. Much smaller than maxFuelMemory:
// a fuel budget is one int64, a journal holds snapshots and an
// instruction log. A recording that falls off the FIFO is stopped, so
// its history is freed rather than leaked.
const maxJournalMemory = 16

// shard is one slice of the state registry: a lock, the states of the
// VMs that hash here, and the remembered fuel budgets and parked
// recordings of evicted ones.
type shard struct {
	mu     sync.Mutex
	states map[*minic.VM]*State

	fuel      map[*minic.VM]int64
	fuelOrder []*minic.VM // insertion order, for FIFO bounding

	jour      map[*minic.VM]any
	jourOrder []*minic.VM // insertion order, for FIFO bounding
}

// Service shares one build's decoded D2X tables across its debug
// sessions and tracks each session's command state. All methods are safe
// for concurrent use by multiple sessions.
type Service struct {
	// tables is the published decode. Reads are a single atomic load —
	// the shared-tables fast path takes no lock whatsoever.
	tables atomic.Pointer[d2xenc.Tables]

	// fused is the published fused resolution index, derived from one
	// (tables, debug-info) pair and shared read-only by every session,
	// under the same atomic-pointer discipline as tables.
	fused atomic.Pointer[Fused]

	// decodeMu serialises the slow paths that publish shared data: the
	// table decode, the fused-index build, and Invalidate. It is never
	// taken on a hit path and never nests with a shard lock.
	decodeMu sync.Mutex
	decodes  int

	shards [ShardCount]shard

	nextSessID atomic.Int64
	m          metrics
}

// New returns an empty service.
func New() *Service {
	s := &Service{m: newMetrics()}
	for i := range s.shards {
		s.shards[i].states = map[*minic.VM]*State{}
	}
	return s
}

// shardFor picks the shard owning a VM's state. VMs have no dense ID, so
// the key is the VM's identity (its address), spread with a Fibonacci
// hash — heap addresses share low bits (alignment) and high bits (arena),
// and the multiply mixes both into the top bits we index by.
//
//d2x:noalloc
func (s *Service) shardFor(vm *minic.VM) *shard {
	h := uint64(uintptr(unsafe.Pointer(vm))) * 0x9E3779B97F4A7C15
	return &s.shards[h>>(64-5)] // top 5 bits: ShardCount == 32
}

// Tables returns the build's decoded D2X tables, decoding them out of
// vm's memory on first use. Every session shares the same immutable
// decode. Failures are not cached: a VM that has not yet run the table
// constructors must not poison sessions that ask later.
//
//d2x:noalloc
func (s *Service) Tables(vm *minic.VM) (*d2xenc.Tables, error) {
	if t := s.tables.Load(); t != nil {
		s.m.tablesHit.Inc()
		return t, nil
	}
	return s.decodeTables(vm) //d2xvet:ignore noalloc miss path decodes once per build, off the steady state
}

// decodeTables is the Tables miss path: decode vm's memory under
// decodeMu and publish the result. Split from Tables so the hit path
// above stays within the //d2x:noalloc contract.
func (s *Service) decodeTables(vm *minic.VM) (*d2xenc.Tables, error) {
	s.m.tablesMiss.Inc()
	s.decodeMu.Lock()
	defer s.decodeMu.Unlock()
	if t := s.tables.Load(); t != nil {
		// Another session decoded while we waited for the lock.
		return t, nil
	}
	start := obs.Now()
	t, err := d2xenc.Decode(vm)
	if err != nil {
		s.m.decodeErrs.Inc()
		obs.Emit(obs.Event{Kind: "decode", Name: "tables", Err: err.Error()})
		return nil, err
	}
	s.m.decodeLat.Since(start)
	s.m.decodes.Inc()
	s.decodes++
	obs.Emit(obs.Event{Kind: "decode", Name: "tables", Detail: "shared decode published"})
	s.tables.Store(t)
	return t, nil
}

// getOrCreate returns vm's state, creating it on first use. Caller holds
// sh.mu.
func (s *Service) getOrCreate(sh *shard, vm *minic.VM) *State {
	st := sh.states[vm]
	if st == nil {
		st = &State{ID: s.nextSessID.Add(1), NextID: 1}
		if fuel, ok := sh.fuel[vm]; ok {
			// The VM had a session before (evicted); its fuel-budget
			// preference survives re-attach.
			st.FuelBudget = fuel
			s.m.fuelRestores.Inc()
		}
		if j, ok := sh.jour[vm]; ok {
			// A parked recording moves back onto the live state — removed
			// from the memory (unlike fuel, the handle must have exactly
			// one owner, or a later eviction would stop a live recording).
			st.Journal = j
			delete(sh.jour, vm)
			for i, v := range sh.jourOrder {
				if v == vm {
					sh.jourOrder = append(sh.jourOrder[:i], sh.jourOrder[i+1:]...)
					break
				}
			}
			s.m.jourRestores.Inc()
		}
		sh.states[vm] = st
		s.m.stateCreates.Inc()
		// Delta, not Set: the gauge is process-wide and several builds'
		// services may feed it concurrently.
		s.m.live.Add(1)
		obs.Emit(obs.Event{Kind: "session", Name: "create", Session: st.ID})
	}
	return st
}

// State returns the command state of vm's session, creating it on first
// use. The returned state is not pinned: callers that mutate it from a
// command stream racing Release/Invalidate must use Checkout/Checkin
// instead.
func (s *Service) State(vm *minic.VM) *State {
	sh := s.shardFor(vm)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.getOrCreate(sh, vm)
}

// Checkout returns the command state of vm's session, creating it on
// first use, and pins it for the duration of one command: until the
// matching Checkin, Invalidate defers the state's Reset, so an in-flight
// command can never observe its breakpoints or frame selection being
// torn down under it. Checkout/Checkin pairs are cheap — one shard lock
// each, no allocation — and nest (a command that re-enters the service
// through a nested native call simply holds two pins).
//
//d2x:noalloc
func (s *Service) Checkout(vm *minic.VM) *State {
	sh := s.shardFor(vm)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := s.getOrCreate(sh, vm) //d2xvet:ignore noalloc state creation happens once per attach; every later Checkout is a map hit
	st.refs++
	return st
}

// Checkin unpins a state obtained from Checkout. If the build was
// invalidated while the command was in flight, the last Checkin applies
// the deferred Reset.
//
//d2x:noalloc
func (s *Service) Checkin(vm *minic.VM, st *State) {
	sh := s.shardFor(vm)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st.refs--
	if st.refs == 0 && st.resetPending {
		st.resetPending = false
		st.Reset()
		obs.Emit(obs.Event{Kind: "session", Name: "invalidate", Session: st.ID})
	}
}

// Lookup returns the command state of vm's session without creating one.
//
//d2x:noalloc
func (s *Service) Lookup(vm *minic.VM) (*State, bool) {
	sh := s.shardFor(vm)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.states[vm]
	return st, ok
}

// Release evicts the command state of vm's session. Idempotent; the
// shared tables stay, since they belong to the build, not the session.
// A command in flight on the evicted state (Checkout without Checkin
// yet) keeps its pinned state object — eviction only removes the map
// entry, it never resets a live state. The session's fuel-budget
// override is remembered so a later session on the same VM inherits it,
// and a live recording is parked the same way so re-attaching resumes
// the journal instead of losing the history.
func (s *Service) Release(vm *minic.VM) {
	sh := s.shardFor(vm)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.states[vm]
	if !ok {
		return
	}
	delete(sh.states, vm)
	if st.FuelBudget != 0 {
		if sh.fuel == nil {
			sh.fuel = map[*minic.VM]int64{}
		}
		if _, exists := sh.fuel[vm]; !exists {
			for len(sh.fuelOrder) >= maxFuelMemory {
				oldest := sh.fuelOrder[0]
				sh.fuelOrder = sh.fuelOrder[1:]
				delete(sh.fuel, oldest)
			}
			sh.fuelOrder = append(sh.fuelOrder, vm)
		}
		sh.fuel[vm] = st.FuelBudget
	}
	if st.Journal != nil {
		if sh.jour == nil {
			sh.jour = map[*minic.VM]any{}
		}
		for len(sh.jourOrder) >= maxJournalMemory {
			oldest := sh.jourOrder[0]
			sh.jourOrder = sh.jourOrder[1:]
			if j, ok := sh.jour[oldest].(interface{ Stop() }); ok {
				j.Stop()
			}
			delete(sh.jour, oldest)
		}
		sh.jourOrder = append(sh.jourOrder, vm)
		sh.jour[vm] = st.Journal
		st.Journal = nil
	}
	s.m.stateEvicts.Inc()
	s.m.live.Add(-1)
	obs.Emit(obs.Event{Kind: "session", Name: "evict", Session: st.ID})
}

// Invalidate drops the shared table decode and resets every live
// session's command state, keeping the State objects themselves (their
// owners hold pointers). Called when the build's debug info is replaced
// mid-flight: the old tables describe a binary that no longer exists,
// and stale frame selections or breakpoints must not survive into the
// new one. States pinned by an in-flight command are not reset in place
// — that command's view stays intact, and the reset is applied by its
// Checkin — so invalidation can never tear state another goroutine is
// reading. The cumulative decode counters are deliberately kept — they
// measure work done, not current contents.
func (s *Service) Invalidate() {
	s.decodeMu.Lock()
	s.tables.Store(nil)
	// The fused index is derived from the tables; it dies with them.
	// (Its info-identity check would also reject it, but only when the
	// debug info object itself was replaced — drop it unconditionally.)
	s.fused.Store(nil)
	s.decodeMu.Unlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, st := range sh.states {
			if st.refs > 0 {
				st.resetPending = true
				continue
			}
			st.Reset()
			obs.Emit(obs.Event{Kind: "session", Name: "invalidate", Session: st.ID})
		}
		// Parked recordings die with the build too: their history indexes
		// the old instruction stream.
		for vm, j := range sh.jour {
			if jj, ok := j.(interface{ Stop() }); ok {
				jj.Stop()
			}
			delete(sh.jour, vm)
		}
		sh.jourOrder = sh.jourOrder[:0]
		sh.mu.Unlock()
	}
}

// Sessions reports how many sessions currently hold state.
func (s *Service) Sessions() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.states)
		sh.mu.Unlock()
	}
	return n
}

// Decodes reports how many times the tables were decoded from a debuggee:
// 1 after any session ran a table-backed command, no matter how many
// sessions there are (more only if Invalidate forced a re-decode).
func (s *Service) Decodes() int {
	s.decodeMu.Lock()
	defer s.decodeMu.Unlock()
	return s.decodes
}

// AllBreakpoints returns the DSL breakpoints of every live session,
// ordered by ID (per-session creation order; IDs may repeat across
// sessions).
func (s *Service) AllBreakpoints() []*XBreakpoint {
	var out []*XBreakpoint
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, st := range sh.states {
			out = append(out, st.XBPs...)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
