// Package session is the shared debug-info service behind D2X-R: it owns
// the one immutable decode of a build's D2X tables and the per-session
// command state of every debugger attached to that build.
//
// The paper's premise (§3.2, Table 2) is that a debug command is a cheap
// call into the paused inferior. When many sessions debug instances of
// the same build concurrently, that only holds if the expensive part —
// decoding the tables out of inferior memory — happens once per build,
// not once per session, and if the cheap part touches no state shared
// between sessions. This package provides exactly that split:
//
//   - Tables: decoded on first use from whichever session asks first,
//     then shared read-only by every later session. d2xenc.Tables is
//     immutable after Decode, so no lock guards reads.
//   - State: the ambient command state one session accumulates (selected
//     extended frame, DSL breakpoints, active-command frame). Each state
//     is touched only by its own session's command stream; the Service
//     lock guards only the map holding them.
//   - Release: evicts a session's state when its debugger closes, so a
//     long-lived build serving many sessions does not accumulate state
//     for VMs that are gone.
package session

import (
	"sort"
	"sync"

	"d2x/internal/d2x/d2xenc"
	"d2x/internal/minic"
)

// XBreakpoint is one DSL-level breakpoint: a DSL location expanded to the
// generated lines it corresponds to. Breakpoints belong to the session
// that set them; IDs are per-session, like a debugger's.
type XBreakpoint struct {
	ID       int
	File     string
	Line     int
	GenLines []int
}

// State is the command state of one debug session, keyed by the session's
// debuggee VM. A debug session executes commands one at a time from its
// paused debugger, so the fields need no lock of their own — only the
// Service map that stores states is shared between sessions.
type State struct {
	// SelXFrame is the selected extended frame (xframe), reset to the
	// top whenever a command arrives with a new rip.
	SelXFrame int
	LastRIP   int64
	HaveRIP   bool

	// CmdActive reports that a frame-bearing D2X command is currently
	// executing on this session, and CurRSP holds its frame ID. An
	// explicit flag, not a sentinel value: frame ID 0 is a valid frame
	// (the first frame a VM creates), so "CurRSP == 0" cannot mean
	// "no command running".
	CmdActive bool
	CurRSP    int64

	XBPs   []*XBreakpoint
	NextID int

	// FuelBudget overrides the runtime's default instruction budget for
	// guarded rtv-handler evaluation in this session (0 = use the
	// runtime default). Handlers the effects analysis proved safe run
	// unguarded and ignore it.
	FuelBudget int64
}

// Service shares one build's decoded D2X tables across its debug
// sessions and tracks each session's command state. All methods are safe
// for concurrent use by multiple sessions.
type Service struct {
	mu      sync.RWMutex
	tables  *d2xenc.Tables
	decodes int
	states  map[*minic.VM]*State
}

// New returns an empty service.
func New() *Service {
	return &Service{states: map[*minic.VM]*State{}}
}

// Tables returns the build's decoded D2X tables, decoding them out of
// vm's memory on first use. Every session shares the same immutable
// decode. Failures are not cached: a VM that has not yet run the table
// constructors must not poison sessions that ask later.
func (s *Service) Tables(vm *minic.VM) (*d2xenc.Tables, error) {
	s.mu.RLock()
	t := s.tables
	s.mu.RUnlock()
	if t != nil {
		return t, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tables == nil {
		t, err := d2xenc.Decode(vm)
		if err != nil {
			return nil, err
		}
		s.tables = t
		s.decodes++
	}
	return s.tables, nil
}

// State returns the command state of vm's session, creating it on first
// use.
func (s *Service) State(vm *minic.VM) *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.states[vm]
	if st == nil {
		st = &State{NextID: 1}
		s.states[vm] = st
	}
	return st
}

// Lookup returns the command state of vm's session without creating one.
func (s *Service) Lookup(vm *minic.VM) (*State, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.states[vm]
	return st, ok
}

// Release evicts the command state of vm's session. Idempotent; the
// shared tables stay, since they belong to the build, not the session.
func (s *Service) Release(vm *minic.VM) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.states, vm)
}

// Sessions reports how many sessions currently hold state.
func (s *Service) Sessions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.states)
}

// Decodes reports how many times the tables were decoded from a debuggee:
// 1 after any session ran a table-backed command, no matter how many
// sessions there are.
func (s *Service) Decodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.decodes
}

// AllBreakpoints returns the DSL breakpoints of every live session,
// ordered by ID (per-session creation order; IDs may repeat across
// sessions).
func (s *Service) AllBreakpoints() []*XBreakpoint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*XBreakpoint
	for _, st := range s.states {
		out = append(out, st.XBPs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
