// Batch entry points: the typed command layer that bypasses the
// string-valued native-call protocol end to end.
//
// The single-command path exists because an unmodified debugger can only
// reach D2X-R through `call`/`eval` — every query pays macro
// substitution, expression parsing, and a native-call frame before any
// D2X work happens, and returns its answer as a command string the
// debugger re-parses. That is the right interface for a human at a REPL
// and the wrong one for a debug service pushing thousands of commands
// per second: per-message protocol overhead, not evaluation, dominates
// once the debugger and debuggee are decoupled (Hanson, "A
// Machine-Independent Debugger—Revisited"). The fix is coarser-grained
// operations. ExecBatch runs N sub-commands under one session pin into
// one render buffer; XBTBatch resolves a whole stack of rips in one
// fused-index walk; ResolveBreakSet installs a whole breakpoint set in
// one pass over the shared tables. Results are byte-identical to the
// equivalent single-command sequence — CI proves it differentially over
// every example build and a progen corpus slice.
package d2xr

import (
	"fmt"
	"strconv"
	"strings"

	"d2x/internal/d2x/session"
	"d2x/internal/minic"
	"d2x/internal/obs"
)

// BatchKind selects the command a BatchOp executes.
type BatchKind uint8

const (
	BatchXBT BatchKind = iota
	BatchXFrame
	BatchXList
	BatchXVars
	BatchXBreak
	BatchXDel
)

// batchKindNames maps a kind to its command name for metrics and errors.
var batchKindNames = [...]string{
	BatchXBT: "xbt", BatchXFrame: "xframe", BatchXList: "xlist",
	BatchXVars: "xvars", BatchXBreak: "xbreak", BatchXDel: "xdel",
}

func (k BatchKind) String() string {
	if int(k) < len(batchKindNames) {
		return batchKindNames[k]
	}
	return fmt.Sprintf("BatchKind(%d)", int(k))
}

// BatchOp is one sub-command of a batch: the same inputs the native
// entry points receive, without the string protocol around them.
type BatchOp struct {
	Kind BatchKind
	RIP  int64  // encoded instruction pointer ($rip); unused by xdel
	RSP  int64  // paused frame id ($rsp) for the frame-bearing commands
	Arg  string // spec / frame id / variable name, command-dependent
}

// BatchOpResult is one sub-command's outcome: its rendered output is
// BatchResults.Buf[Lo:Hi], Script is the debugger command script xbreak
// and xdel return (empty otherwise), and Err isolates a failed
// sub-command without aborting the batch.
type BatchOpResult struct {
	Lo, Hi int
	Script string
	Err    error
}

// BatchResults is the reusable result buffer of ExecBatch: one output
// buffer shared by every sub-command plus one result record per op.
// Reusing the same BatchResults across calls makes the steady state
// allocation-free.
type BatchResults struct {
	Buf []byte
	Ops []BatchOpResult
}

// Output returns the rendered output span of sub-command i.
//
//d2x:noalloc
func (res *BatchResults) Output(i int) []byte { return res.Buf[res.Ops[i].Lo:res.Ops[i].Hi] }

// ExecBatch executes a batch of D2X commands under a single session
// pin: one Checkout/Checkin pair instead of N, one render buffer
// instead of N pooled round trips, and no VM native-call frames at all.
// Sub-commands execute in order with the exact per-command session
// bookkeeping of the single path (rip tracking, frame-selection reset,
// active-command marking), so a batch leaves the session in the same
// state the equivalent command sequence would, and each sub-command's
// output bytes match the single path's. A failing sub-command records
// its error in its BatchOpResult and contributes no output; later
// sub-commands still run.
//
//d2x:hotpath
func (r *Runtime) ExecBatch(vm *minic.VM, ops []BatchOp, res *BatchResults) {
	st := r.svc.Checkout(vm)
	defer r.svc.Checkin(vm, st)
	start := obs.NowNanos()
	res.Buf = res.Buf[:0]
	res.Ops = res.Ops[:0]
	for _, op := range ops {
		lo := len(res.Buf)
		b, script, err := r.execBatchOp(st, vm, op, res.Buf)
		if err != nil {
			b = b[:lo]
		}
		res.Buf = b
		res.Ops = append(res.Ops, BatchOpResult{Lo: lo, Hi: len(res.Buf), Script: script, Err: err})
		if int(op.Kind) < len(batchKindNames) {
			m := cmdObs[batchKindNames[op.Kind]]
			m.calls.Inc(uint64(st.ID))
			if err != nil {
				m.errs.Inc(uint64(st.ID))
			}
		}
	}
	batchObs.calls.Inc(uint64(st.ID))
	batchOps.Add(uint64(st.ID), int64(len(ops)))
	ev := obs.Event{Kind: "cmd", Name: "batch", Session: st.ID}
	if start != 0 {
		durNS := obs.NowNanos() - start
		batchObs.lat.ObserveNS(durNS)
		ev.DurNS = durNS
		ev.Time = obs.WallNanos(start + durNS)
	}
	obs.Emit(ev)
}

// execBatchOp runs one sub-command with the session bookkeeping the
// single-command wrapper performs, dispatching to the same append cores
// the native entry points use.
//
//d2x:hotpath
func (r *Runtime) execBatchOp(st *session.State, vm *minic.VM, op BatchOp, b []byte) ([]byte, string, error) {
	if op.Kind != BatchXDel {
		if !st.HaveRIP || op.RIP != st.LastRIP {
			st.SelXFrame = 0
		}
		st.LastRIP = op.RIP
		st.HaveRIP = true
	}
	var script string
	var err error
	switch op.Kind {
	case BatchXBT, BatchXFrame, BatchXList, BatchXVars:
		st.CurRSP = op.RSP
		st.CmdActive = true
		switch op.Kind {
		case BatchXBT:
			b, err = r.appendXBT(vm, op.RIP, b)
		case BatchXFrame:
			b, err = r.appendXFrameCmd(st, vm, op.RIP, op.Arg, b)
		case BatchXList:
			b, err = r.appendXList(st, vm, op.RIP, b)
		case BatchXVars:
			b, err = r.appendXVars(st, vm, op.RIP, op.Arg, b)
		}
		st.CmdActive = false
	case BatchXBreak:
		b, script, err = r.appendXBreak(st, vm, op.RIP, op.Arg, b)
	case BatchXDel:
		b, script, err = r.appendXDel(st, op.Arg, b)
	default:
		err = fmt.Errorf("d2x: unknown batch op kind %d", op.Kind)
	}
	return b, script, err
}

// XBTBatch renders the extended stacks for a whole set of rips — e.g.
// every native frame of a paused stack — in one call: one session pin,
// one fused-index load hoisted out of the loop, one render buffer. The
// appended bytes are identical to running xbt once per rip in order,
// and the session's rip bookkeeping advances the same way. The first
// unresolvable rip aborts the batch with b truncated to its input
// length, matching the single path's no-output-on-error contract.
//
//d2x:hotpath
func (r *Runtime) XBTBatch(vm *minic.VM, rips []int64, b []byte) ([]byte, error) {
	if r.info == nil {
		return b, fmt.Errorf("d2x: no debug info attached")
	}
	st := r.svc.Checkout(vm)
	defer r.svc.Checkin(vm, st)
	fu, err := r.svc.Fused(vm, r.info)
	if err != nil {
		return b, err
	}
	start := obs.NowNanos()
	lo := len(b)
	for _, rip := range rips {
		if !st.HaveRIP || rip != st.LastRIP {
			st.SelXFrame = 0
		}
		st.LastRIP = rip
		st.HaveRIP = true
		genLine, rec, ok := fu.Resolve(rip)
		if !ok {
			stage1Miss.Inc()
			return b[:lo], fmt.Errorf("d2x: no line info for rip %#x", rip)
		}
		if rec == nil {
			stage2Miss.Inc()
		}
		if rec == nil || len(rec.Stack) == 0 {
			b = appendNoContext(b, "context", genLine)
			continue
		}
		for i, loc := range rec.Stack {
			b = appendXFrame(b, i, loc)
			b = append(b, '\n')
		}
	}
	cmdObs["xbt"].calls.Add(uint64(st.ID), int64(len(rips)))
	batchObs.calls.Inc(uint64(st.ID))
	batchOps.Add(uint64(st.ID), int64(len(rips)))
	if start != 0 {
		batchObs.lat.ObserveNS(obs.NowNanos() - start)
	}
	return b, nil
}

// BreakSet is the reusable result of ResolveBreakSet. Output holds the
// concatenated human-readable output (what the single commands would
// print), IDs the assigned breakpoint ID per spec (0 for a spec whose
// location has no generated code — nothing was installed for it), and
// Script the break commands over the deduped union of every spec's
// generated lines, so overlapping specs do not stack duplicate
// debugger breakpoints the way repeated single xbreaks would.
type BreakSet struct {
	Output []byte
	Script string
	IDs    []int

	plans []*session.BreakPlan // per-spec plans, reused across calls
}

// ResolveBreakSet resolves and installs a whole set of DSL breakpoints
// in one pass: one session pin, one shared-tables fetch, and the
// per-spec lexer/macro/script work amortized through the session's plan
// cache. Resolution is atomic — every spec must parse and resolve
// before any breakpoint is installed, so a typo in spec 7 does not
// leave specs 1–6 half-applied.
//
//d2x:hotpath
func (r *Runtime) ResolveBreakSet(vm *minic.VM, rip int64, specs []string, bs *BreakSet) error {
	st := r.svc.Checkout(vm)
	defer r.svc.Checkin(vm, st)
	tables, err := r.tablesFor(vm)
	if err != nil {
		return err
	}
	start := obs.NowNanos()
	bs.Output = bs.Output[:0]
	bs.IDs = bs.IDs[:0]
	bs.Script = ""
	bs.plans = bs.plans[:0]
	for _, spec := range specs {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			return fmt.Errorf("d2x: empty breakpoint spec in set")
		}
		plan, err := r.breakPlanFor(st, vm, tables, rip, spec)
		if err != nil {
			return err
		}
		bs.plans = append(bs.plans, plan)
	}
	for _, plan := range bs.plans {
		if len(plan.GenLines) == 0 {
			bs.Output = append(bs.Output, "No generated code for "...)
			bs.Output = append(bs.Output, plan.File...)
			bs.Output = append(bs.Output, ':')
			bs.Output = strconv.AppendInt(bs.Output, int64(plan.Line), 10)
			bs.Output = append(bs.Output, '\n')
			bs.IDs = append(bs.IDs, 0)
			continue
		}
		bp := st.GetBP()
		bp.ID, bp.File, bp.Line = st.NextID, plan.File, plan.Line
		bp.GenLines = append(bp.GenLines[:0], plan.GenLines...)
		bp.Plan = plan
		st.NextID++
		st.XBPs = append(st.XBPs, bp)
		bs.Output = append(bs.Output, "Inserting "...)
		bs.Output = strconv.AppendInt(bs.Output, int64(len(plan.GenLines)), 10)
		bs.Output = append(bs.Output, " breakpoints with ID: #"...)
		bs.Output = strconv.AppendInt(bs.Output, int64(bp.ID), 10)
		bs.Output = append(bs.Output, '\n')
		bs.IDs = append(bs.IDs, bp.ID)
	}
	// One break script over the union: collect every plan's lines into
	// the session scratch (free again now that resolution is done),
	// dedupe, and reuse the interned single-plan script when the set is
	// one location — the common case allocates nothing here.
	switch {
	case len(bs.plans) == 1:
		bs.Script = bs.plans[0].BreakScript
	default:
		st.ScratchLines = st.ScratchLines[:0]
		for _, plan := range bs.plans {
			st.ScratchLines = append(st.ScratchLines, plan.GenLines...)
		}
		union := dedupeSortedLines(st.ScratchLines)
		if len(union) > 0 {
			rb := getRender()
			rb.b = appendBreakCmds(rb.b[:0], "break ", r.genFileName(), union)
			bs.Script = string(rb.b)
			putRender(rb)
		}
	}
	cmdObs["xbreak"].calls.Add(uint64(st.ID), int64(len(specs)))
	batchObs.calls.Inc(uint64(st.ID))
	batchOps.Add(uint64(st.ID), int64(len(specs)))
	if start != 0 {
		batchObs.lat.ObserveNS(obs.NowNanos() - start)
	}
	return nil
}

// SessionPin holds one session's state checked out across a whole
// multi-command batch. Checkout/Checkin nest, so the per-command pins
// the command wrappers take simply stack on top of this one; while the
// pin is held, Invalidate defers the session's Reset and Release keeps
// the state object alive — the batch is atomic with respect to both.
type SessionPin struct {
	svc *session.Service
	vm  *minic.VM
	st  *session.State
}

// PinSession checks out vm's session state for a batch. Callers must
// call Unpin exactly once; the zero SessionPin unpins as a no-op, so a
// pin can be stored unconditionally.
//
//d2x:noalloc
func (r *Runtime) PinSession(vm *minic.VM) SessionPin {
	return SessionPin{svc: r.svc, vm: vm, st: r.svc.Checkout(vm)}
}

// Unpin releases the batch pin; the deferred Reset of an Invalidate
// that arrived mid-batch is applied here (by the last Checkin).
//
//d2x:noalloc
func (p SessionPin) Unpin() {
	if p.svc != nil {
		p.svc.Checkin(p.vm, p.st)
	}
}

// State returns the pinned session state (nil for the zero pin).
//
//d2x:noalloc
func (p SessionPin) State() *session.State { return p.st }
