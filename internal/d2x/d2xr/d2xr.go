// Package d2xr is the D2X runtime library (D2X-R): the half of D2X linked
// into the generated executable (paper §3.2, §4.2, Table 2). It exposes a
// set of functions with a well-defined interface that the user invokes
// *from an unmodified debugger* via its `call` and `eval` commands:
//
//	(gdb) call d2x_runtime::command_xbt($rip, $rsp)
//	(gdb) eval "%s", d2x_runtime::command_xbreak($rip, "15")
//
// Each command uses the passed instruction pointer to locate the current
// generated source line through the *standard* debug info (stage 1), then
// maps that line to the DSL context through the D2X tables the program
// carries (stage 2) — the two-stage mapping of Figure 4. Breakpoint
// commands return debugger-command strings that the debugger's eval
// executes, letting the debuggee drive the debugger without any plugin.
package d2xr

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"d2x/internal/d2x/d2xc"
	"d2x/internal/d2x/d2xenc"
	"d2x/internal/dwarfish"
	"d2x/internal/minic"
	"d2x/internal/srcloc"
)

// FileResolver reads DSL source files for xlist. The default reads from
// the filesystem, as GDB does for source display; tests inject in-memory
// sources.
type FileResolver func(path string) (string, error)

// XBreakpoint is one DSL-level breakpoint: a DSL location expanded to the
// generated lines it corresponds to.
type XBreakpoint struct {
	ID       int
	File     string
	Line     int
	GenLines []int
}

// Names of the native entry points D2X-R links into the generated
// program. The helper macros reach them as d2x_runtime::command_* (the
// debugger mangles :: to _); d2xverify checks the linked program and the
// macro text against this same list, so the interface is defined once.
const (
	NativeXBT          = "d2x_runtime_command_xbt"
	NativeXFrame       = "d2x_runtime_command_xframe"
	NativeXList        = "d2x_runtime_command_xlist"
	NativeXVars        = "d2x_runtime_command_xvars"
	NativeXBreak       = "d2x_runtime_command_xbreak"
	NativeXDel         = "d2x_runtime_command_xdel"
	NativeFindStackVar = "d2x_find_stack_var"
)

// NativeSpec declares one D2X-R entry point: its linked name and its
// signature in the generated language.
type NativeSpec struct {
	Name string
	Sig  minic.Signature
}

// CommandNatives returns the complete D2X-R native interface (Table 2).
// Register installs exactly these; verification tools cross-check a
// linked program against them.
func CommandNatives() []NativeSpec {
	intT, strT, voidT := minic.IntType, minic.StringType, minic.VoidType
	return []NativeSpec{
		{NativeXBT, minic.Signature{Params: []*minic.Type{intT, intT}, Result: voidT}},
		{NativeXFrame, minic.Signature{Params: []*minic.Type{intT, intT, strT}, Result: voidT}},
		{NativeXList, minic.Signature{Params: []*minic.Type{intT, intT}, Result: voidT}},
		{NativeXVars, minic.Signature{Params: []*minic.Type{intT, intT, strT}, Result: voidT}},
		{NativeXBreak, minic.Signature{Params: []*minic.Type{intT, strT}, Result: strT}},
		{NativeXDel, minic.Signature{Params: []*minic.Type{strT}, Result: strT}},
		{NativeFindStackVar, minic.Signature{Params: []*minic.Type{strT}, Result: minic.AnyType}},
	}
}

// Runtime is the per-program D2X runtime state — the data a real D2X build
// links into the executable. Register its entry points into the native
// registry before compiling the generated code (the "link" step), then
// attach the debug info produced alongside the binary.
type Runtime struct {
	info   *dwarfish.Info
	files  FileResolver
	tables map[*minic.VM]*d2xenc.Tables

	// Ambient command state. A debug session is single-threaded: commands
	// run one at a time from the paused debugger, so plain fields suffice.
	curVM  *minic.VM
	curRSP int64

	selXFrame int
	lastRIP   int64
	haveRIP   bool

	xbps   []*XBreakpoint
	nextID int

	fileCache map[string][]string
}

// New returns an empty runtime. Call Register before compiling generated
// code and AttachDebugInfo once the binary's debug blob exists.
func New() *Runtime {
	return &Runtime{
		files: func(path string) (string, error) {
			b, err := os.ReadFile(path)
			return string(b), err
		},
		tables:    map[*minic.VM]*d2xenc.Tables{},
		nextID:    1,
		fileCache: map[string][]string{},
	}
}

// SetFileResolver replaces the DSL source reader.
func (r *Runtime) SetFileResolver(fr FileResolver) {
	r.files = fr
	r.fileCache = map[string][]string{}
}

// AttachDebugInfo gives the runtime the program's standard debug info —
// the same blob the debugger loads. D2X-R decodes it itself, exactly as
// the paper's runtime decodes DWARF to find stack variables.
func (r *Runtime) AttachDebugInfo(blob []byte) error {
	info, err := dwarfish.Decode(blob)
	if err != nil {
		return fmt.Errorf("d2xr: %w", err)
	}
	r.info = info
	return nil
}

// Breakpoints returns the live DSL-level breakpoints.
func (r *Runtime) Breakpoints() []*XBreakpoint { return r.xbps }

// Register installs the D2X-R entry points as host-linked natives, the
// analogue of linking libd2x-r.a into the generated executable.
func (r *Runtime) Register(nats *minic.Natives) {
	intT, strT, voidT := minic.IntType, minic.StringType, minic.VoidType
	nats.Register(&minic.Native{
		Name: NativeXBT,
		Sig:  minic.Signature{Params: []*minic.Type{intT, intT}, Result: voidT},
		Handler: r.command(func(call *minic.NativeCall) (minic.Value, error) {
			return minic.NullVal(), r.xbt(call.VM, call.Args[0].I)
		}),
	})
	nats.Register(&minic.Native{
		Name: NativeXFrame,
		Sig:  minic.Signature{Params: []*minic.Type{intT, intT, strT}, Result: voidT},
		Handler: r.command(func(call *minic.NativeCall) (minic.Value, error) {
			return minic.NullVal(), r.xframe(call.VM, call.Args[0].I, call.Args[2].S)
		}),
	})
	nats.Register(&minic.Native{
		Name: NativeXList,
		Sig:  minic.Signature{Params: []*minic.Type{intT, intT}, Result: voidT},
		Handler: r.command(func(call *minic.NativeCall) (minic.Value, error) {
			return minic.NullVal(), r.xlist(call.VM, call.Args[0].I)
		}),
	})
	nats.Register(&minic.Native{
		Name: NativeXVars,
		Sig:  minic.Signature{Params: []*minic.Type{intT, intT, strT}, Result: voidT},
		Handler: r.command(func(call *minic.NativeCall) (minic.Value, error) {
			return minic.NullVal(), r.xvars(call.VM, call.Args[0].I, call.Args[2].S)
		}),
	})
	nats.Register(&minic.Native{
		Name: NativeXBreak,
		Sig:  minic.Signature{Params: []*minic.Type{intT, strT}, Result: strT},
		Handler: r.command(func(call *minic.NativeCall) (minic.Value, error) {
			s, err := r.xbreak(call.VM, call.Args[0].I, call.Args[1].S)
			return minic.StrVal(s), err
		}),
	})
	nats.Register(&minic.Native{
		Name: NativeXDel,
		Sig:  minic.Signature{Params: []*minic.Type{strT}, Result: strT},
		Handler: func(call *minic.NativeCall) (minic.Value, error) {
			s, err := r.xdel(call.VM, call.Args[0].S)
			return minic.StrVal(s), err
		},
	})
	nats.Register(&minic.Native{
		Name:      NativeFindStackVar,
		Sig:       minic.Signature{Params: []*minic.Type{strT}, Result: minic.AnyType},
		AnyResult: true,
		Handler: func(call *minic.NativeCall) (minic.Value, error) {
			return r.findStackVar(call.VM, call.Args[0].S)
		},
	})
}

// command wraps an entry point with the ambient-state bookkeeping every
// D2X command shares: remembering the VM and frame for nested handler
// calls, and resetting the selected extended frame when execution moved.
func (r *Runtime) command(h minic.NativeHandler) minic.NativeHandler {
	return func(call *minic.NativeCall) (minic.Value, error) {
		r.curVM = call.VM
		if len(call.Args) >= 2 {
			r.curRSP = call.Args[1].I
		}
		if len(call.Args) >= 1 {
			rip := call.Args[0].I
			if !r.haveRIP || rip != r.lastRIP {
				r.selXFrame = 0
			}
			r.lastRIP = rip
			r.haveRIP = true
		}
		return h(call)
	}
}

// tablesFor decodes (and caches) the D2X tables of a program instance.
func (r *Runtime) tablesFor(vm *minic.VM) (*d2xenc.Tables, error) {
	if t, ok := r.tables[vm]; ok {
		return t, nil
	}
	t, err := d2xenc.Decode(vm)
	if err != nil {
		return nil, err
	}
	r.tables[vm] = t
	return t, nil
}

// recordAt performs the two-stage mapping for an encoded rip: standard
// debug info to the generated line, then D2X tables to the DSL record.
func (r *Runtime) recordAt(vm *minic.VM, rip int64) (*d2xc.Record, int, error) {
	if r.info == nil {
		return nil, 0, fmt.Errorf("d2x: no debug info attached")
	}
	_, genLine, ok := r.info.LineFor(dwarfish.DecodeAddr(rip))
	if !ok {
		return nil, 0, fmt.Errorf("d2x: no line info for rip %#x", rip)
	}
	tables, err := r.tablesFor(vm)
	if err != nil {
		return nil, genLine, err
	}
	return tables.RecordForLine(genLine), genLine, nil
}

func out(vm *minic.VM, format string, args ...any) {
	fmt.Fprintf(vm.Output, format, args...)
}

// xbt prints the extended stack for the current execution frame.
func (r *Runtime) xbt(vm *minic.VM, rip int64) error {
	rec, genLine, err := r.recordAt(vm, rip)
	if err != nil {
		return err
	}
	if rec == nil || len(rec.Stack) == 0 {
		out(vm, "No D2X context for generated line %d\n", genLine)
		return nil
	}
	for i, loc := range rec.Stack {
		out(vm, "%s\n", formatXFrame(i, loc))
	}
	return nil
}

// xframe displays or changes the selected extended frame.
func (r *Runtime) xframe(vm *minic.VM, rip int64, arg string) error {
	rec, genLine, err := r.recordAt(vm, rip)
	if err != nil {
		return err
	}
	if rec == nil || len(rec.Stack) == 0 {
		out(vm, "No D2X context for generated line %d\n", genLine)
		return nil
	}
	if arg = strings.TrimSpace(arg); arg != "" {
		n, err := strconv.Atoi(arg)
		if err != nil {
			return fmt.Errorf("d2x: bad extended frame id %q", arg)
		}
		if n < 0 || n >= len(rec.Stack) {
			return fmt.Errorf("d2x: no extended frame %d (stack has %d frames)", n, len(rec.Stack))
		}
		r.selXFrame = n
	}
	if r.selXFrame >= len(rec.Stack) {
		r.selXFrame = 0
	}
	loc := rec.Stack[r.selXFrame]
	out(vm, "%s\n", formatXFrame(r.selXFrame, loc))
	if text, ok := r.sourceLine(loc.File, loc.Line); ok {
		out(vm, "%d\t%s\n", loc.Line, text)
	}
	return nil
}

// xlist lists DSL source around the selected extended frame.
func (r *Runtime) xlist(vm *minic.VM, rip int64) error {
	rec, genLine, err := r.recordAt(vm, rip)
	if err != nil {
		return err
	}
	if rec == nil || len(rec.Stack) == 0 {
		out(vm, "No D2X context for generated line %d\n", genLine)
		return nil
	}
	if r.selXFrame >= len(rec.Stack) {
		r.selXFrame = 0
	}
	loc := rec.Stack[r.selXFrame]
	lines, err := r.sourceFile(loc.File)
	if err != nil {
		return fmt.Errorf("d2x: cannot list %s: %w", loc.File, err)
	}
	lo := max(1, loc.Line-2)
	hi := min(len(lines), loc.Line+2)
	for n := lo; n <= hi; n++ {
		marker := " "
		if n == loc.Line {
			marker = ">"
		}
		out(vm, "%s%-4d %s\n", marker, n, strings.TrimRight(lines[n-1], " \t"))
	}
	return nil
}

// xvars lists the extended variables at the current line, or evaluates one.
func (r *Runtime) xvars(vm *minic.VM, rip int64, name string) error {
	rec, genLine, err := r.recordAt(vm, rip)
	if err != nil {
		return err
	}
	if rec == nil || len(rec.Vars) == 0 {
		out(vm, "No D2X variables for generated line %d\n", genLine)
		return nil
	}
	name = strings.TrimSpace(name)
	if name == "" {
		for i, v := range rec.Vars {
			out(vm, "%d. %s\n", i+1, v.Key)
		}
		return nil
	}
	for _, v := range rec.Vars {
		if v.Key != name {
			continue
		}
		val, err := r.evalVar(vm, v)
		if err != nil {
			return err
		}
		out(vm, "%s = %s\n", v.Key, val)
		return nil
	}
	return fmt.Errorf("d2x: no extended variable %q at this line", name)
}

// evalVar resolves a variable entry to its display string, invoking the
// generated rtv_handler for handler-valued variables.
func (r *Runtime) evalVar(vm *minic.VM, v d2xc.VarEntry) (string, error) {
	switch v.Kind {
	case d2xc.VarConst:
		return v.Val, nil
	case d2xc.VarHandler:
		res, err := vm.CallFunction(v.Val, []minic.Value{minic.StrVal(v.Key)})
		if err != nil {
			return "", fmt.Errorf("d2x: rtv_handler %s failed: %w", v.Val, err)
		}
		if res.Kind != minic.VStr {
			return minic.ToStr(res), nil
		}
		return res.S, nil
	}
	return "", fmt.Errorf("d2x: unknown variable kind %d", v.Kind)
}

// xbreak installs a DSL-level breakpoint: it expands the DSL location to
// all matching generated lines and returns the debugger commands that
// install the low-level breakpoints (executed by the debugger's eval).
// An empty spec lists the current DSL breakpoints and returns no commands.
func (r *Runtime) xbreak(vm *minic.VM, rip int64, spec string) (string, error) {
	tables, err := r.tablesFor(vm)
	if err != nil {
		return "", err
	}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		if len(r.xbps) == 0 {
			out(vm, "No DSL breakpoints.\n")
			return "", nil
		}
		for _, bp := range r.xbps {
			out(vm, "#%d  %s:%d  (%d generated locations)\n", bp.ID, bp.File, bp.Line, len(bp.GenLines))
		}
		return "", nil
	}

	file, lineStr := "", spec
	if i := strings.LastIndex(spec, ":"); i >= 0 {
		file, lineStr = spec[:i], spec[i+1:]
	}
	line, err := strconv.Atoi(lineStr)
	if err != nil {
		return "", fmt.Errorf("d2x: bad source location %q", spec)
	}
	if file == "" {
		// Default to the DSL file of the current context, then to the
		// program's only DSL file.
		if rec, _, err := r.recordAt(vm, rip); err == nil && rec != nil {
			if top, ok := rec.Stack.Top(); ok {
				file = top.File
			}
		}
		if file == "" {
			files := tables.DSLFiles()
			if len(files) == 0 {
				return "", fmt.Errorf("d2x: program has no DSL source information")
			}
			file = files[0]
		}
	}

	genLines := tables.GenLinesForDSL(file, line)
	// Keep only lines a breakpoint can bind to (brace-only or merged
	// lines have D2X records but no statement site).
	breakable := genLines[:0]
	for _, gl := range genLines {
		if len(r.info.SitesForLine(gl)) > 0 {
			breakable = append(breakable, gl)
		}
	}
	genLines = breakable
	if len(genLines) == 0 {
		out(vm, "No generated code for %s:%d\n", file, line)
		return "", nil
	}
	bp := &XBreakpoint{ID: r.nextID, File: file, Line: line, GenLines: genLines}
	r.nextID++
	r.xbps = append(r.xbps, bp)
	out(vm, "Inserting %d breakpoints with ID: #%d\n", len(genLines), bp.ID)
	var cmds []string
	for _, gl := range genLines {
		cmds = append(cmds, fmt.Sprintf("break %s:%d", r.genFileName(), gl))
	}
	return strings.Join(cmds, "\n"), nil
}

// xdel removes a DSL-level breakpoint by ID and returns the debugger
// commands that clear the generated-code breakpoints.
func (r *Runtime) xdel(vm *minic.VM, spec string) (string, error) {
	spec = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(spec), "#"))
	id, err := strconv.Atoi(spec)
	if err != nil {
		return "", fmt.Errorf("d2x: bad breakpoint id %q", spec)
	}
	for i, bp := range r.xbps {
		if bp.ID != id {
			continue
		}
		r.xbps = append(r.xbps[:i], r.xbps[i+1:]...)
		out(vm, "Deleted DSL breakpoint #%d (%d generated locations)\n", id, len(bp.GenLines))
		var cmds []string
		for _, gl := range bp.GenLines {
			cmds = append(cmds, fmt.Sprintf("clear %s:%d", r.genFileName(), gl))
		}
		return strings.Join(cmds, "\n"), nil
	}
	return "", fmt.Errorf("d2x: no DSL breakpoint #%d", id)
}

// findStackVar is the D2X runtime API available to rtv_handlers: given a
// variable name, locate its storage in the frame the current command was
// invoked on, by decoding the standard debug info (paper §4.1). It
// returns a pointer to the variable (so handlers can both read and write).
func (r *Runtime) findStackVar(vm *minic.VM, name string) (minic.Value, error) {
	if r.info == nil {
		return minic.NullVal(), fmt.Errorf("d2x: no debug info attached")
	}
	if r.curVM != vm || r.curRSP == 0 {
		return minic.NullVal(), fmt.Errorf("d2x: find_stack_var called outside a D2X command")
	}
	frame := vm.FrameByID(int(r.curRSP))
	if frame == nil {
		return minic.NullVal(), fmt.Errorf("d2x: frame %d is no longer live", r.curRSP)
	}
	fi := r.info.FuncByIndex(frame.FuncIndex)
	if fi == nil {
		return minic.NullVal(), fmt.Errorf("d2x: no debug info for function index %d", frame.FuncIndex)
	}
	v, ok := fi.VarByName(name)
	if !ok || v.Slot >= len(frame.Slots) {
		return minic.NullVal(), fmt.Errorf("d2x: no variable %q in %s", name, fi.Name)
	}
	return minic.PtrVal(frame.Slots[v.Slot]), nil
}

func (r *Runtime) genFileName() string {
	if r.info != nil {
		return r.info.File
	}
	return ""
}

func (r *Runtime) sourceFile(path string) ([]string, error) {
	if lines, ok := r.fileCache[path]; ok {
		return lines, nil
	}
	text, err := r.files(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(text, "\n")
	r.fileCache[path] = lines
	return lines, nil
}

func (r *Runtime) sourceLine(path string, n int) (string, bool) {
	lines, err := r.sourceFile(path)
	if err != nil || n < 1 || n > len(lines) {
		return "", false
	}
	return strings.TrimRight(lines[n-1], " \t"), true
}

func formatXFrame(i int, loc srcloc.Loc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d ", i)
	if loc.Function != "" {
		fmt.Fprintf(&b, "in %s ", loc.Function)
	}
	fmt.Fprintf(&b, "at %s:%d", loc.File, loc.Line)
	return b.String()
}
