// Package d2xr is the D2X runtime library (D2X-R): the half of D2X linked
// into the generated executable (paper §3.2, §4.2, Table 2). It exposes a
// set of functions with a well-defined interface that the user invokes
// *from an unmodified debugger* via its `call` and `eval` commands:
//
//	(gdb) call d2x_runtime::command_xbt($rip, $rsp)
//	(gdb) eval "%s", d2x_runtime::command_xbreak($rip, "15")
//
// Each command uses the passed instruction pointer to locate the current
// generated source line through the *standard* debug info (stage 1), then
// maps that line to the DSL context through the D2X tables the program
// carries (stage 2) — the two-stage mapping of Figure 4. Breakpoint
// commands return debugger-command strings that the debugger's eval
// executes, letting the debuggee drive the debugger without any plugin.
//
// One Runtime serves every debug session attached to the same build. The
// expensive per-build data (debug info, decoded D2X tables, DSL sources)
// is shared read-only; everything a command mutates lives in per-session
// state keyed by the session's VM (internal/d2x/session), created on
// first command and evicted when the session closes.
package d2xr

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"d2x/internal/d2x/d2xc"
	"d2x/internal/d2x/d2xenc"
	"d2x/internal/d2x/session"
	"d2x/internal/dwarfish"
	"d2x/internal/minic"
	"d2x/internal/minic/effects"
	"d2x/internal/obs"
	"d2x/internal/srcloc"
)

// FileResolver reads DSL source files for xlist. The default reads from
// the filesystem, as GDB does for source display; tests inject in-memory
// sources.
type FileResolver func(path string) (string, error)

// XBreakpoint is one DSL-level breakpoint: a DSL location expanded to the
// generated lines it corresponds to. Breakpoints are per-session state.
type XBreakpoint = session.XBreakpoint

// Names of the native entry points D2X-R links into the generated
// program. The helper macros reach them as d2x_runtime::command_* (the
// debugger mangles :: to _); d2xverify checks the linked program and the
// macro text against this same list, so the interface is defined once.
const (
	NativeXBT          = "d2x_runtime_command_xbt"
	NativeXFrame       = "d2x_runtime_command_xframe"
	NativeXList        = "d2x_runtime_command_xlist"
	NativeXVars        = "d2x_runtime_command_xvars"
	NativeXBreak       = "d2x_runtime_command_xbreak"
	NativeXDel         = "d2x_runtime_command_xdel"
	NativeFindStackVar = "d2x_find_stack_var"
)

// NativeSpec declares one D2X-R entry point: its linked name and its
// signature in the generated language.
type NativeSpec struct {
	Name string
	Sig  minic.Signature
}

// CommandNatives returns the complete D2X-R native interface (Table 2).
// Register installs exactly these; verification tools cross-check a
// linked program against them.
func CommandNatives() []NativeSpec {
	intT, strT, voidT := minic.IntType, minic.StringType, minic.VoidType
	return []NativeSpec{
		{NativeXBT, minic.Signature{Params: []*minic.Type{intT, intT}, Result: voidT}},
		{NativeXFrame, minic.Signature{Params: []*minic.Type{intT, intT, strT}, Result: voidT}},
		{NativeXList, minic.Signature{Params: []*minic.Type{intT, intT}, Result: voidT}},
		{NativeXVars, minic.Signature{Params: []*minic.Type{intT, intT, strT}, Result: voidT}},
		{NativeXBreak, minic.Signature{Params: []*minic.Type{intT, strT}, Result: strT}},
		{NativeXDel, minic.Signature{Params: []*minic.Type{strT}, Result: strT}},
		{NativeFindStackVar, minic.Signature{Params: []*minic.Type{strT}, Result: minic.AnyType}},
	}
}

// cmdMetrics is one D2X command's observability handle set: call and
// error counts plus a latency histogram. Handles live in the package
// (the obs registry is process-wide), resolved once at init, so the
// command hot path touches only atomics. The counters are sharded:
// every session increments the same six command names, and under the
// saturation workload a single shared cache line serializes the cores
// the registry sharding just decoupled. The session ID is the affinity
// hint; sums stay exact.
type cmdMetrics struct {
	calls *obs.ShardedCounter
	errs  *obs.ShardedCounter
	lat   *obs.Histogram
}

func newCmdMetrics(name string) *cmdMetrics {
	return &cmdMetrics{
		calls: obs.GetShardedCounter("d2xr.cmd." + name + ".calls"),
		errs:  obs.GetShardedCounter("d2xr.cmd." + name + ".errors"),
		lat:   obs.GetHistogram("d2xr.cmd." + name),
	}
}

// Package-wide instrumentation handles: the six Table 2 commands, the
// two mapping stages of Figure 4, rtv-handler guard telemetry, and the
// xlist source-file cache.
var (
	cmdObs = map[string]*cmdMetrics{
		"xbt": newCmdMetrics("xbt"), "xframe": newCmdMetrics("xframe"),
		"xlist": newCmdMetrics("xlist"), "xvars": newCmdMetrics("xvars"),
		"xbreak": newCmdMetrics("xbreak"), "xdel": newCmdMetrics("xdel"),
	}
	// batchObs covers ExecBatch itself (one call, N sub-ops); the sub-ops
	// also count under their own command's calls/errors, so per-command
	// totals are protocol-independent.
	batchObs   = newCmdMetrics("batch")
	batchOps   = obs.GetShardedCounter("d2xr.cmd.batch.ops")
	stage1Lat  = obs.GetHistogram("d2xr.stage1.rip_to_genline")
	stage1Miss = obs.GetCounter("d2xr.stage1.misses")
	stage2Lat  = obs.GetHistogram("d2xr.stage2.genline_to_dsl")
	stage2Miss = obs.GetCounter("d2xr.stage2.misses")
	fusedLat   = obs.GetHistogram("d2xr.fused.resolve")

	// stageTick drives 1-in-stageSampleEvery sampling of the resolve
	// histograms (see recordAt); counts and misses remain exact.
	stageTick atomic.Int64

	rtvUnguarded  = obs.GetCounter("d2xr.rtv.unguarded")
	rtvGuarded    = obs.GetCounter("d2xr.rtv.guarded")
	rtvFuelSpent  = obs.GetCounter("d2xr.rtv.fuel_spent")
	rtvBarrier    = obs.GetCounter("d2xr.rtv.barrier_denials")
	rtvExhausted  = obs.GetCounter("d2xr.rtv.fuel_exhausted")
	rtvLat        = obs.GetHistogram("d2xr.rtv.eval")
	findStackVars = obs.GetCounter("d2xr.find_stack_var.calls")

	// rtvTick drives 1-in-stageSampleEvery sampling of the rtv_handler
	// latency histogram (see evalVar); guard counters remain exact.
	rtvTick atomic.Int64

	fileCacheHits   = obs.GetCounter("d2xr.filecache.hits")
	fileCacheMisses = obs.GetCounter("d2xr.filecache.misses")
	fileCacheEvicts = obs.GetCounter("d2xr.filecache.evictions")
	fileCacheResets = obs.GetCounter("d2xr.filecache.resets")
)

// maxFileCacheEntries bounds the xlist source-file cache. DSL programs
// rarely span more than a handful of files; the bound exists so a
// long-lived build serving many sessions over many differently-pathed
// sources cannot grow without limit (the same leak class as the
// pre-service per-session tables map).
const maxFileCacheEntries = 64

// stageSampleEvery is the sampling stride for the per-stage lookup
// histograms: recordAt times its two stages on one call in this many.
// A power of two keeps the modulo a mask.
const stageSampleEvery = 8

// Runtime is the per-build D2X runtime — the data a real D2X build links
// into the executable. Register its entry points into the native registry
// before compiling the generated code (the "link" step), then attach the
// debug info produced alongside the binary. One Runtime may serve any
// number of concurrent debug sessions; commands from different sessions
// never contend beyond a map lookup.
type Runtime struct {
	info  *dwarfish.Info   // immutable after AttachDebugInfo
	files FileResolver     // replaced only before sessions start
	svc   *session.Service // shared tables + per-session state

	fileMu    sync.Mutex
	fileCache map[string][]string
	fileOrder []string // cache keys in insertion order (FIFO eviction)
}

// New returns an empty runtime. Call Register before compiling generated
// code and AttachDebugInfo once the binary's debug blob exists.
func New() *Runtime {
	return &Runtime{
		files: func(path string) (string, error) {
			b, err := os.ReadFile(path)
			return string(b), err
		},
		svc:       session.New(),
		fileCache: map[string][]string{},
	}
}

// SetFileResolver replaces the DSL source reader and drops every cached
// file: lines read through the old resolver must not leak into xlist
// output served under the new one.
func (r *Runtime) SetFileResolver(fr FileResolver) {
	r.fileMu.Lock()
	defer r.fileMu.Unlock()
	r.files = fr
	r.fileCache = map[string][]string{}
	r.fileOrder = nil
	fileCacheResets.Inc()
}

// AttachDebugInfo gives the runtime the program's standard debug info —
// the same blob the debugger loads. D2X-R decodes it itself, exactly as
// the paper's runtime decodes DWARF to find stack variables.
//
// Re-attaching (replacing the debug info of a runtime that already had
// some) means the build itself was replaced, so everything derived from
// the old build is invalidated: the shared table decode and every live
// session's command state — a stale extended-frame selection or a DSL
// breakpoint expanded against the old line numbering must not survive
// into the new binary.
func (r *Runtime) AttachDebugInfo(blob []byte) error {
	info, err := dwarfish.Decode(blob)
	if err != nil {
		return fmt.Errorf("d2xr: %w", err)
	}
	if r.info != nil {
		r.svc.Invalidate()
		obs.Emit(obs.Event{Kind: "runtime", Name: "reattach", Detail: "tables and session state invalidated"})
	}
	r.info = info
	return nil
}

// Breakpoints returns the live DSL-level breakpoints across all sessions
// (a snapshot; take it while sessions are quiescent).
func (r *Runtime) Breakpoints() []*XBreakpoint { return r.svc.AllBreakpoints() }

// BreakpointsFor returns the DSL-level breakpoints of one session.
func (r *Runtime) BreakpointsFor(vm *minic.VM) []*XBreakpoint {
	st, ok := r.svc.Lookup(vm)
	if !ok {
		return nil
	}
	return st.XBPs
}

// Release evicts the per-session state of one debuggee VM. The d2x link
// layer wires this to Debugger.Close; without it a long-lived build
// accumulates state for every session that ever attached.
func (r *Runtime) Release(vm *minic.VM) { r.svc.Release(vm) }

// LiveSessions reports how many debug sessions currently hold state.
func (r *Runtime) LiveSessions() int { return r.svc.Sessions() }

// TableDecodes reports how many times the D2X tables were decoded from a
// debuggee: 1 after any table-backed command, however many sessions ran.
func (r *Runtime) TableDecodes() int { return r.svc.Decodes() }

// cmdFunc is a D2X command body with its session state resolved.
type cmdFunc func(st *session.State, call *minic.NativeCall) (minic.Value, error)

// Register installs the D2X-R entry points as host-linked natives, the
// analogue of linking libd2x-r.a into the generated executable.
func (r *Runtime) Register(nats *minic.Natives) {
	intT, strT, voidT := minic.IntType, minic.StringType, minic.VoidType
	nats.Register(&minic.Native{
		Name: NativeXBT,
		Sig:  minic.Signature{Params: []*minic.Type{intT, intT}, Result: voidT},
		Handler: r.command("xbt", true, true, func(st *session.State, call *minic.NativeCall) (minic.Value, error) {
			return minic.NullVal(), r.xbt(call.VM, call.Args[0].I)
		}),
	})
	nats.Register(&minic.Native{
		Name: NativeXFrame,
		Sig:  minic.Signature{Params: []*minic.Type{intT, intT, strT}, Result: voidT},
		Handler: r.command("xframe", true, true, func(st *session.State, call *minic.NativeCall) (minic.Value, error) {
			return minic.NullVal(), r.xframe(st, call.VM, call.Args[0].I, call.Args[2].S)
		}),
	})
	nats.Register(&minic.Native{
		Name: NativeXList,
		Sig:  minic.Signature{Params: []*minic.Type{intT, intT}, Result: voidT},
		Handler: r.command("xlist", true, true, func(st *session.State, call *minic.NativeCall) (minic.Value, error) {
			return minic.NullVal(), r.xlist(st, call.VM, call.Args[0].I)
		}),
	})
	nats.Register(&minic.Native{
		Name: NativeXVars,
		Sig:  minic.Signature{Params: []*minic.Type{intT, intT, strT}, Result: voidT},
		Handler: r.command("xvars", true, true, func(st *session.State, call *minic.NativeCall) (minic.Value, error) {
			return minic.NullVal(), r.xvars(st, call.VM, call.Args[0].I, call.Args[2].S)
		}),
	})
	nats.Register(&minic.Native{
		Name: NativeXBreak,
		Sig:  minic.Signature{Params: []*minic.Type{intT, strT}, Result: strT},
		Handler: r.command("xbreak", true, false, func(st *session.State, call *minic.NativeCall) (minic.Value, error) {
			s, err := r.xbreak(st, call.VM, call.Args[0].I, call.Args[1].S)
			return minic.StrVal(s), err
		}),
	})
	nats.Register(&minic.Native{
		Name: NativeXDel,
		Sig:  minic.Signature{Params: []*minic.Type{strT}, Result: strT},
		Handler: r.command("xdel", false, false, func(st *session.State, call *minic.NativeCall) (minic.Value, error) {
			s, err := r.xdel(st, call.VM, call.Args[0].S)
			return minic.StrVal(s), err
		}),
	})
	nats.Register(&minic.Native{
		Name:      NativeFindStackVar,
		Sig:       minic.Signature{Params: []*minic.Type{strT}, Result: minic.AnyType},
		AnyResult: true,
		Handler: func(call *minic.NativeCall) (minic.Value, error) {
			findStackVars.Inc()
			return r.findStackVar(call.VM, call.Args[0].S)
		},
	})
}

// command wraps an entry point with the session-state bookkeeping every
// D2X command shares — resolving the calling session, resetting the
// selected extended frame when execution moved, and, for the commands
// that receive $rsp, marking the command active so nested handler calls
// can locate the paused frame — plus its observability: call/error
// counters, a latency histogram, and one trace event per invocation.
// The hasRIP/hasRSP flags are explicit: xdel's first argument is a
// breakpoint spec, not a rip, and frame ID 0 (the first frame a VM
// creates) is a perfectly valid $rsp.
func (r *Runtime) command(name string, hasRIP, hasRSP bool, h cmdFunc) minic.NativeHandler {
	m := cmdObs[name]
	//d2x:hotpath
	return func(call *minic.NativeCall) (minic.Value, error) {
		// Checkout pins the session state for the whole command: a
		// concurrent AttachDebugInfo/Invalidate defers its Reset until
		// the Checkin below, so the command never sees its breakpoints
		// or frame selection torn down mid-flight.
		st := r.svc.Checkout(call.VM)
		defer r.svc.Checkin(call.VM, st)
		var rip int64
		if hasRIP && len(call.Args) >= 1 {
			rip = call.Args[0].I
			if !st.HaveRIP || rip != st.LastRIP {
				st.SelXFrame = 0
			}
			st.LastRIP = rip
			st.HaveRIP = true
		}
		if hasRSP && len(call.Args) >= 2 {
			st.CurRSP = call.Args[1].I
			st.CmdActive = true
			defer func() { st.CmdActive = false }()
		}
		start := obs.NowNanos()
		v, err := h(st, call)
		m.calls.Inc(uint64(st.ID))
		ev := obs.Event{Kind: "cmd", Name: name, Session: st.ID, RIP: rip}
		if start != 0 {
			durNS := obs.NowNanos() - start
			m.lat.ObserveNS(durNS)
			ev.DurNS = durNS
			// Derive the event's wall stamp from the timestamps already
			// taken, sparing the ring its own clock read.
			ev.Time = obs.WallNanos(start + durNS)
		}
		if err != nil {
			m.errs.Inc(uint64(st.ID))
			ev.Err = err.Error()
		}
		obs.Emit(ev)
		return v, err
	}
}

// tablesFor returns the build's decoded D2X tables, shared across all
// sessions (the first session to ask pays the one decode).
//
//d2x:noalloc
func (r *Runtime) tablesFor(vm *minic.VM) (*d2xenc.Tables, error) {
	return r.svc.Tables(vm)
}

// recordAt maps an encoded rip to its DSL context through the fused
// resolution index: the two stages of Figure 4 — debug info to the
// generated line, generated line to the D2X record — were joined at
// index-build time, so the steady state is one atomic load plus one
// binary search. The stage-1/stage-2 miss counters keep their exact
// meaning (a fused miss is by construction a stage-1 miss; a resolved
// rip with a nil record is a stage-2 miss).
//
//d2x:noalloc
func (r *Runtime) recordAt(vm *minic.VM, rip int64) (*d2xc.Record, int, error) {
	if r.info == nil {
		return nil, 0, fmt.Errorf("d2x: no debug info attached")
	}
	fu, err := r.svc.Fused(vm, r.info)
	if err != nil {
		// The shared tables are unavailable (program carries none, or
		// its constructors have not run). Report with the reference
		// path's precedence: a stage-1 miss outranks the table error.
		_, genLine, ok := r.info.LineFor(dwarfish.DecodeAddr(rip))
		if !ok {
			stage1Miss.Inc()
			return nil, 0, fmt.Errorf("d2x: no line info for rip %#x", rip)
		}
		return nil, genLine, err
	}
	// The resolve histogram is sampled 1-in-stageSampleEvery: the lookup
	// is tens of nanoseconds, so timing every call would cost more than
	// the work being measured. Misses stay exact.
	var t0 int64
	if stageTick.Add(1)%stageSampleEvery == 0 {
		t0 = obs.NowNanos()
	}
	genLine, rec, ok := fu.Resolve(rip)
	if t0 != 0 {
		fusedLat.ObserveNS(obs.NowNanos() - t0)
	}
	if !ok {
		stage1Miss.Inc()
		return nil, 0, fmt.Errorf("d2x: no line info for rip %#x", rip)
	}
	if rec == nil {
		stage2Miss.Inc()
	}
	return rec, genLine, nil
}

// RecordAt maps an encoded rip to its DSL context through the fused
// resolution index — the production path every D2X command uses.
// Exported alongside RecordAtReference so the differential-correctness
// check can drive both and compare.
func (r *Runtime) RecordAt(vm *minic.VM, rip int64) (*d2xc.Record, int, error) {
	return r.recordAt(vm, rip)
}

// Info returns the attached debug info (nil before AttachDebugInfo).
func (r *Runtime) Info() *dwarfish.Info { return r.info }

// RecordAtReference performs the original, un-fused two-stage mapping:
// standard debug info to the generated line (stage 1), then D2X tables
// to the DSL record (stage 2), each stage timed separately so the
// snapshot can attribute latency to the debug-info walk versus the
// table lookup. It is retained as the correctness oracle for the fused
// index — CI runs a differential check proving recordAt and this path
// agree on every address of every example program.
func (r *Runtime) RecordAtReference(vm *minic.VM, rip int64) (*d2xc.Record, int, error) {
	if r.info == nil {
		return nil, 0, fmt.Errorf("d2x: no debug info attached")
	}
	t0 := obs.NowNanos()
	_, genLine, ok := r.info.LineFor(dwarfish.DecodeAddr(rip))
	var t1 int64
	if t0 != 0 {
		t1 = obs.NowNanos()
		stage1Lat.ObserveNS(t1 - t0)
	}
	if !ok {
		return nil, 0, fmt.Errorf("d2x: no line info for rip %#x", rip)
	}
	tables, err := r.tablesFor(vm)
	if err != nil {
		return nil, genLine, err
	}
	rec := tables.RecordForLine(genLine)
	if t1 != 0 {
		stage2Lat.ObserveNS(obs.NowNanos() - t1)
	}
	return rec, genLine, nil
}

// appendNoContext renders the no-DSL-context notice shared by the
// frame-walking commands.
//
//d2x:noalloc amortized
func appendNoContext(b []byte, what string, genLine int) []byte {
	b = append(b, "No D2X "...)
	b = append(b, what...)
	b = append(b, " for generated line "...)
	b = strconv.AppendInt(b, int64(genLine), 10)
	return append(b, '\n')
}

// flush writes the rendered bytes to the debuggee's output. Write
// errors are ignored, as the fmt.Fprintf-based renderer ignored them:
// command output goes to the session's capture buffer, which cannot
// fail, and a failing sink must not abort the user's command.
//
//d2x:noalloc
func flush(vm *minic.VM, b []byte) {
	_, _ = vm.Output.Write(b) //d2xvet:ignore noalloc the session capture sink appends into its reused buffer
}

// xbt prints the extended stack for the current execution frame.
//
//d2x:noalloc amortized
func (r *Runtime) xbt(vm *minic.VM, rip int64) error {
	rb := getRender()
	defer putRender(rb)
	b, err := r.appendXBT(vm, rip, rb.b)
	rb.b = b
	if err != nil {
		return err
	}
	flush(vm, rb.b)
	return nil
}

// appendXBT renders the extended stack for rip into b: the shared core
// of xbt and ExecBatch. On error b is returned unchanged, so batch
// error isolation keeps clean output spans.
//
//d2x:noalloc amortized
func (r *Runtime) appendXBT(vm *minic.VM, rip int64, b []byte) ([]byte, error) {
	rec, genLine, err := r.recordAt(vm, rip)
	if err != nil {
		return b, err
	}
	if rec == nil || len(rec.Stack) == 0 {
		return appendNoContext(b, "context", genLine), nil
	}
	for i, loc := range rec.Stack {
		b = appendXFrame(b, i, loc)
		b = append(b, '\n')
	}
	return b, nil
}

// xframe displays or changes the selected extended frame.
//
//d2x:noalloc amortized
func (r *Runtime) xframe(st *session.State, vm *minic.VM, rip int64, arg string) error {
	rb := getRender()
	defer putRender(rb)
	b, err := r.appendXFrameCmd(st, vm, rip, arg, rb.b)
	rb.b = b
	if err != nil {
		return err
	}
	flush(vm, rb.b)
	return nil
}

// appendXFrameCmd renders (and optionally changes) the selected extended
// frame into b: the shared core of xframe and ExecBatch. On error b is
// returned unchanged.
//
//d2x:noalloc amortized
func (r *Runtime) appendXFrameCmd(st *session.State, vm *minic.VM, rip int64, arg string, b []byte) ([]byte, error) {
	rec, genLine, err := r.recordAt(vm, rip)
	if err != nil {
		return b, err
	}
	if rec == nil || len(rec.Stack) == 0 {
		return appendNoContext(b, "context", genLine), nil
	}
	if arg = strings.TrimSpace(arg); arg != "" {
		n, err := strconv.Atoi(arg)
		if err != nil {
			return b, fmt.Errorf("d2x: bad extended frame id %q", arg)
		}
		if n < 0 || n >= len(rec.Stack) {
			return b, fmt.Errorf("d2x: no extended frame %d (stack has %d frames)", n, len(rec.Stack))
		}
		st.SelXFrame = n
	}
	if st.SelXFrame >= len(rec.Stack) {
		st.SelXFrame = 0
	}
	loc := rec.Stack[st.SelXFrame]
	b = appendXFrame(b, st.SelXFrame, loc)
	b = append(b, '\n')
	if text, ok := r.sourceLine(loc.File, loc.Line); ok {
		b = strconv.AppendInt(b, int64(loc.Line), 10)
		b = append(b, '\t')
		b = append(b, text...)
		b = append(b, '\n')
	}
	return b, nil
}

// xlist lists DSL source around the selected extended frame.
//
//d2x:hotpath
func (r *Runtime) xlist(st *session.State, vm *minic.VM, rip int64) error {
	rb := getRender()
	defer putRender(rb)
	b, err := r.appendXList(st, vm, rip, rb.b)
	rb.b = b
	if err != nil {
		return err
	}
	flush(vm, rb.b)
	return nil
}

// appendXList renders DSL source around the selected extended frame
// into b: the shared core of xlist and ExecBatch. On error b is
// returned unchanged.
//
//d2x:hotpath
func (r *Runtime) appendXList(st *session.State, vm *minic.VM, rip int64, b []byte) ([]byte, error) {
	rec, genLine, err := r.recordAt(vm, rip)
	if err != nil {
		return b, err
	}
	if rec == nil || len(rec.Stack) == 0 {
		return appendNoContext(b, "context", genLine), nil
	}
	if st.SelXFrame >= len(rec.Stack) {
		st.SelXFrame = 0
	}
	loc := rec.Stack[st.SelXFrame]
	lines, err := r.sourceFile(loc.File)
	if err != nil {
		return b, fmt.Errorf("d2x: cannot list %s: %w", loc.File, err)
	}
	lo := max(1, loc.Line-2)
	hi := min(len(lines), loc.Line+2)
	for n := lo; n <= hi; n++ {
		marker := byte(' ')
		if n == loc.Line {
			marker = '>'
		}
		b = append(b, marker)
		b = appendIntPadded(b, int64(n), 4)
		b = append(b, ' ')
		b = append(b, strings.TrimRight(lines[n-1], " \t")...)
		b = append(b, '\n')
	}
	return b, nil
}

// xvars lists the extended variables at the current line, or evaluates one.
//
//d2x:hotpath
func (r *Runtime) xvars(st *session.State, vm *minic.VM, rip int64, name string) error {
	rb := getRender()
	defer putRender(rb)
	b, err := r.appendXVars(st, vm, rip, name, rb.b)
	rb.b = b
	if err != nil {
		return err
	}
	flush(vm, rb.b)
	return nil
}

// appendXVars renders the extended variables at the current line (or
// one evaluated variable) into b: the shared core of xvars and
// ExecBatch. On error b is returned unchanged.
//
//d2x:hotpath
func (r *Runtime) appendXVars(st *session.State, vm *minic.VM, rip int64, name string, b []byte) ([]byte, error) {
	rec, genLine, err := r.recordAt(vm, rip)
	if err != nil {
		return b, err
	}
	if rec == nil || len(rec.Vars) == 0 {
		return appendNoContext(b, "variables", genLine), nil
	}
	name = strings.TrimSpace(name)
	if name == "" {
		for i, v := range rec.Vars {
			b = strconv.AppendInt(b, int64(i+1), 10)
			b = append(b, '.', ' ')
			b = append(b, v.Key...)
			b = append(b, '\n')
		}
		return b, nil
	}
	for _, v := range rec.Vars {
		if v.Key != name {
			continue
		}
		val, err := r.evalVar(st, vm, v)
		if err != nil {
			return b, err
		}
		b = append(b, v.Key...)
		b = append(b, " = "...)
		b = append(b, val...)
		b = append(b, '\n')
		return b, nil
	}
	return b, fmt.Errorf("d2x: no extended variable %q at this line", name)
}

// DefaultHandlerFuel is the instruction budget for guarded rtv_handler
// evaluation when the session does not override it (State.FuelBudget).
// Generous enough for any real handler — the graphit frontier handler
// burns a few thousand instructions — while still bounding a runaway
// loop to well under a second.
const DefaultHandlerFuel int64 = 2_000_000

// StateFor returns (creating if needed) the per-session state of one
// debuggee VM — the hook tests and tooling use to tune FuelBudget.
func (r *Runtime) StateFor(vm *minic.VM) *session.State { return r.svc.State(vm) }

// guardFor picks the runtime guard for one handler call from the effect
// summary the link step recorded in the tables:
//
//   - proven safe (no writes, trivially bounded): no guard at all;
//   - no writes but unproven termination: fuel budget only;
//   - writes, or no recorded summary (old build, unknown handler):
//     fuel budget plus the write barrier.
//
// This is the "trust but verify" split: the static proof buys back the
// guard's overhead, and anything unproven runs fenced.
func (r *Runtime) guardFor(vm *minic.VM, st *session.State, handler string) *minic.Guard {
	fuel := st.FuelBudget
	if fuel <= 0 {
		fuel = DefaultHandlerFuel
	}
	full := &minic.Guard{Fuel: fuel, BlockWrites: true}
	tables, err := r.tablesFor(vm)
	if err != nil || !tables.HasFX() {
		return full
	}
	h, ok := tables.HandlerFX(handler)
	if !ok {
		return full
	}
	mask := effects.Effect(h.Mask)
	loop := effects.LoopClass(h.Loop)
	if mask&effects.WritesHeap != 0 {
		return full
	}
	if mask&effects.DivergesMaybe != 0 || loop != effects.LoopTrivial {
		return &minic.Guard{Fuel: fuel}
	}
	return nil
}

// Degraded results for guarded handler calls that hit a fence. They are
// values, not errors: a misbehaving handler must not abort the user's
// command or the session, only its own display.
const (
	ResultFuelExceeded = "<handler exceeded fuel>"
	ResultWriteBlocked = "<handler blocked: write to debuggee>"
)

// evalVar resolves a variable entry to its display string, invoking the
// generated rtv_handler for handler-valued variables under the guard
// the effect summary calls for.
//
//d2x:hotpath
func (r *Runtime) evalVar(st *session.State, vm *minic.VM, v d2xc.VarEntry) (string, error) {
	switch v.Kind {
	case d2xc.VarConst:
		return v.Val, nil
	case d2xc.VarHandler:
		g := r.guardFor(vm, st, v.Val)
		var gs minic.GuardStats
		if g == nil {
			rtvUnguarded.Inc()
		} else {
			rtvGuarded.Inc()
			g.Stats = &gs
		}
		// The handler-eval histogram is sampled 1-in-stageSampleEvery,
		// like the resolve stages in recordAt: a trivial handler is a
		// handful of VM steps, and xvars evaluates every variable in
		// scope per stop. Guard counters stay exact.
		var t0 int64
		if rtvTick.Add(1)%stageSampleEvery == 0 {
			t0 = obs.NowNanos()
		}
		res, err := vm.CallFunctionGuarded(v.Val, []minic.Value{minic.StrVal(v.Key)}, g)
		if t0 != 0 {
			rtvLat.ObserveNS(obs.NowNanos() - t0)
		}
		rtvFuelSpent.Add(gs.FuelUsed)
		switch {
		case err == nil:
		case errors.Is(err, minic.ErrFuelExhausted):
			rtvExhausted.Inc()
			obs.Emit(obs.Event{Kind: "guard", Name: "fuel", Session: st.ID,
				Detail: fmt.Sprintf("%s fuel=%d", v.Val, gs.FuelUsed), Err: err.Error()})
			return ResultFuelExceeded, nil
		case errors.Is(err, minic.ErrWriteBarrier):
			rtvBarrier.Inc()
			obs.Emit(obs.Event{Kind: "guard", Name: "barrier", Session: st.ID,
				Detail: fmt.Sprintf("%s fuel=%d", v.Val, gs.FuelUsed), Err: err.Error()})
			return ResultWriteBlocked, nil
		default:
			return "", fmt.Errorf("d2x: rtv_handler %s failed: %w", v.Val, err)
		}
		if res.Kind != minic.VStr {
			return minic.ToStr(res), nil
		}
		return res.S, nil
	}
	return "", fmt.Errorf("d2x: unknown variable kind %d", v.Kind)
}

// xbreak installs a DSL-level breakpoint: it expands the DSL location to
// all matching generated lines and returns the debugger commands that
// install the low-level breakpoints (executed by the debugger's eval).
// An empty spec lists the current DSL breakpoints and returns no commands.
//
//d2x:noalloc amortized
func (r *Runtime) xbreak(st *session.State, vm *minic.VM, rip int64, spec string) (string, error) {
	rb := getRender()
	defer putRender(rb)
	b, script, err := r.appendXBreak(st, vm, rip, spec, rb.b)
	rb.b = b
	if err != nil {
		return "", err
	}
	flush(vm, rb.b)
	return script, nil
}

// appendXBreak is the shared core of xbreak, ResolveBreakSet and
// ExecBatch: it appends the human-readable output to b and returns the
// break script (interned on the session's BreakPlan, so the steady
// state hands back the same string instead of rendering a new one).
// On error b is returned unchanged.
//
//d2x:noalloc amortized
func (r *Runtime) appendXBreak(st *session.State, vm *minic.VM, rip int64, spec string, b []byte) ([]byte, string, error) {
	tables, err := r.tablesFor(vm)
	if err != nil {
		return b, "", err
	}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return appendXBPList(st, b), "", nil
	}
	plan, err := r.breakPlanFor(st, vm, tables, rip, spec)
	if err != nil {
		return b, "", err
	}
	if len(plan.GenLines) == 0 {
		b = append(b, "No generated code for "...)
		b = append(b, plan.File...)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(plan.Line), 10)
		b = append(b, '\n')
		return b, "", nil
	}
	// The stored expansion must not alias the cached plan, which outlives
	// the breakpoint's trip through the session freelist. GetBP recycles
	// the object and GenLines storage of previously deleted breakpoints,
	// so the set/delete round trip stops allocating once warm.
	bp := st.GetBP()
	bp.ID, bp.File, bp.Line = st.NextID, plan.File, plan.Line
	bp.GenLines = append(bp.GenLines[:0], plan.GenLines...)
	bp.Plan = plan
	st.NextID++
	st.XBPs = append(st.XBPs, bp)
	b = append(b, "Inserting "...)
	b = strconv.AppendInt(b, int64(len(plan.GenLines)), 10)
	b = append(b, " breakpoints with ID: #"...)
	b = strconv.AppendInt(b, int64(bp.ID), 10)
	b = append(b, '\n')
	return b, plan.BreakScript, nil
}

// appendXBPList renders the session's DSL breakpoints (the empty-spec
// form of xbreak).
//
//d2x:noalloc amortized
func appendXBPList(st *session.State, b []byte) []byte {
	if len(st.XBPs) == 0 {
		return append(b, "No DSL breakpoints.\n"...)
	}
	for _, bp := range st.XBPs {
		b = append(b, '#')
		b = strconv.AppendInt(b, int64(bp.ID), 10)
		b = append(b, "  "...)
		b = append(b, bp.File...)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(bp.Line), 10)
		b = append(b, "  ("...)
		b = strconv.AppendInt(b, int64(len(bp.GenLines)), 10)
		b = append(b, " generated locations)\n"...)
	}
	return b
}

// breakPlanFor parses a breakpoint spec, resolves its DSL file (from
// the current context when the spec names none), and returns this
// session's cached expansion of the location, computing it on first
// use. The parse is allocation-free; everything expensive — the table
// walk, the statement filter, the break/clear script strings — is paid
// once per location per session and amortizes to nothing across the
// repeated commands and batch sets that dominate real traffic.
//
//d2x:noalloc
func (r *Runtime) breakPlanFor(st *session.State, vm *minic.VM, tables *d2xenc.Tables, rip int64, spec string) (*session.BreakPlan, error) {
	file, lineStr := "", spec
	if i := strings.LastIndex(spec, ":"); i >= 0 {
		file, lineStr = spec[:i], spec[i+1:]
	}
	line, err := strconv.Atoi(lineStr)
	if err != nil {
		return nil, fmt.Errorf("d2x: bad source location %q", spec)
	}
	if file == "" {
		// Default to the DSL file of the current context, then to the
		// program's only DSL file.
		if rec, _, err := r.recordAt(vm, rip); err == nil && rec != nil {
			if top, ok := rec.Stack.Top(); ok {
				file = top.File
			}
		}
		if file == "" {
			first, ok := tables.FirstDSLFile()
			if !ok {
				return nil, fmt.Errorf("d2x: program has no DSL source information")
			}
			file = first
		}
	}
	if plan := st.PlanFor(file, line); plan != nil {
		return plan, nil
	}
	return r.buildBreakPlan(st, tables, file, line), nil //d2xvet:ignore noalloc plan misses expand and intern the scripts once per location
}

// buildBreakPlan is breakPlanFor's cache-miss path: expand the DSL
// location over the shared tables, filter to statement-bearing lines,
// dedupe, render the break and clear scripts, and cache the result on
// the session. Split out so the hit path above stays within its
// //d2x:noalloc contract.
func (r *Runtime) buildBreakPlan(st *session.State, tables *d2xenc.Tables, file string, line int) *session.BreakPlan {
	// Collect candidates into the session's scratch slice: the expansion
	// is filtered, deduped and sorted in place, and only the final
	// result is copied out onto the plan.
	st.ScratchLines = tables.AppendGenLinesForDSL(st.ScratchLines[:0], file, line)
	// Keep only lines a breakpoint can bind to (brace-only or merged
	// lines have D2X records but no statement site).
	w := 0
	for _, gl := range st.ScratchLines {
		if r.info.HasStmtOnLine(gl) {
			st.ScratchLines[w] = gl
			w++
		}
	}
	// A DSL line can reach the same generated line through several
	// records (overlapping sections, suffix-matched files): emit each
	// `break` once, in line order, or the debugger ends up with stacked
	// duplicate breakpoints xdel can only half-remove.
	breakable := dedupeSortedLines(st.ScratchLines[:w])
	plan := &session.BreakPlan{File: file, Line: line}
	if len(breakable) > 0 {
		plan.GenLines = append([]int(nil), breakable...)
		rb := getRender()
		rb.b = appendBreakCmds(rb.b[:0], "break ", r.genFileName(), breakable)
		plan.BreakScript = string(rb.b)
		rb.b = appendBreakCmds(rb.b[:0], "clear ", r.genFileName(), breakable)
		plan.ClearScript = string(rb.b)
		putRender(rb)
	}
	// Empty expansions are cached too: repeating a miss ("No generated
	// code for …") should be as cheap as repeating a hit.
	st.AddPlan(plan)
	return plan
}

// appendBreakCmds renders one debugger command per generated line
// ("break gen.c:N" or "clear gen.c:N"), newline-separated.
//
//d2x:noalloc amortized
func appendBreakCmds(b []byte, verb, gen string, lines []int) []byte {
	for i, gl := range lines {
		if i > 0 {
			b = append(b, '\n')
		}
		b = append(b, verb...)
		b = append(b, gen...)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(gl), 10)
	}
	return b
}

// dedupeSortedLines sorts line numbers ascending and removes duplicates,
// in place.
//
//d2x:noalloc
func dedupeSortedLines(lines []int) []int {
	if len(lines) < 2 {
		return lines
	}
	sort.Ints(lines)
	w := 1
	for _, l := range lines[1:] {
		if l != lines[w-1] {
			lines[w] = l
			w++
		}
	}
	return lines[:w]
}

// xdel removes a DSL-level breakpoint by ID and returns the debugger
// commands that clear the generated-code breakpoints.
//
//d2x:noalloc amortized
func (r *Runtime) xdel(st *session.State, vm *minic.VM, spec string) (string, error) {
	rb := getRender()
	defer putRender(rb)
	b, script, err := r.appendXDel(st, spec, rb.b)
	rb.b = b
	if err != nil {
		return "", err
	}
	flush(vm, rb.b)
	return script, nil
}

// appendXDel is the shared core of xdel and ExecBatch: it appends the
// human-readable output to b and returns the clear script. Breakpoints
// installed from a cached plan hand back the plan's interned script;
// the render fallback covers breakpoints that never had one. On error
// b is returned unchanged.
//
//d2x:noalloc amortized
func (r *Runtime) appendXDel(st *session.State, spec string, b []byte) ([]byte, string, error) {
	spec = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(spec), "#"))
	id, err := strconv.Atoi(spec)
	if err != nil {
		return b, "", fmt.Errorf("d2x: bad breakpoint id %q", spec)
	}
	for i, bp := range st.XBPs {
		if bp.ID != id {
			continue
		}
		st.XBPs = append(st.XBPs[:i], st.XBPs[i+1:]...)
		b = append(b, "Deleted DSL breakpoint #"...)
		b = strconv.AppendInt(b, int64(id), 10)
		b = append(b, " ("...)
		b = strconv.AppendInt(b, int64(len(bp.GenLines)), 10)
		b = append(b, " generated locations)\n"...)
		script := ""
		if plan := bp.Plan; plan != nil {
			// The breakpoint's GenLines are a verbatim copy of the plan's
			// (appendXBreak installs them that way and nothing mutates
			// either), so the interned clear script applies as-is.
			script = plan.ClearScript
		} else {
			// No plan: the breakpoint predates the plan cache (installed
			// directly by tooling or tests). Defensive dedupe in the
			// session scratch — a duplicate `clear` on an already-cleared
			// location is a command error.
			st.ScratchLines = append(st.ScratchLines[:0], bp.GenLines...)
			lines := dedupeSortedLines(st.ScratchLines)
			rb := getRender()
			rb.b = appendBreakCmds(rb.b[:0], "clear ", r.genFileName(), lines)
			script = string(rb.b) //d2xvet:ignore noalloc the fallback script must outlive the pooled buffer
			putRender(rb)
		}
		st.PutBP(bp)
		return b, script, nil
	}
	return b, "", fmt.Errorf("d2x: no DSL breakpoint #%d", id)
}

// findStackVar is the D2X runtime API available to rtv_handlers: given a
// variable name, locate its storage in the frame the current command was
// invoked on, by decoding the standard debug info (paper §4.1). It
// returns a pointer to the variable (so handlers can both read and write).
func (r *Runtime) findStackVar(vm *minic.VM, name string) (minic.Value, error) {
	if r.info == nil {
		return minic.NullVal(), fmt.Errorf("d2x: no debug info attached")
	}
	st, ok := r.svc.Lookup(vm)
	if !ok || !st.CmdActive {
		return minic.NullVal(), fmt.Errorf("d2x: find_stack_var called outside a D2X command")
	}
	frame := vm.FrameByID(int(st.CurRSP))
	if frame == nil {
		return minic.NullVal(), fmt.Errorf("d2x: frame %d is no longer live", st.CurRSP)
	}
	fi := r.info.FuncByIndex(frame.FuncIndex)
	if fi == nil {
		return minic.NullVal(), fmt.Errorf("d2x: no debug info for function index %d", frame.FuncIndex)
	}
	v, ok := fi.VarByName(name)
	if !ok || v.Slot >= len(frame.Slots) {
		return minic.NullVal(), fmt.Errorf("d2x: no variable %q in %s", name, fi.Name)
	}
	return minic.PtrVal(frame.Slots[v.Slot]), nil
}

//d2x:noalloc
func (r *Runtime) genFileName() string {
	if r.info != nil {
		return r.info.File
	}
	return ""
}

func (r *Runtime) sourceFile(path string) ([]string, error) {
	r.fileMu.Lock()
	defer r.fileMu.Unlock()
	if lines, ok := r.fileCache[path]; ok {
		fileCacheHits.Inc()
		return lines, nil
	}
	fileCacheMisses.Inc()
	text, err := r.files(path)
	if err != nil {
		// Failures are not cached: the file may appear later (e.g. a
		// resolver backed by a build directory that is still filling).
		return nil, err
	}
	lines := strings.Split(text, "\n")
	for len(r.fileOrder) >= maxFileCacheEntries {
		oldest := r.fileOrder[0]
		r.fileOrder = r.fileOrder[1:]
		delete(r.fileCache, oldest)
		fileCacheEvicts.Inc()
	}
	r.fileCache[path] = lines
	r.fileOrder = append(r.fileOrder, path)
	return lines, nil
}

//d2x:noalloc
func (r *Runtime) sourceLine(path string, n int) (string, bool) {
	lines, err := r.sourceFile(path) //d2xvet:ignore noalloc cache-miss file reads happen once per file, off the steady state
	if err != nil || n < 1 || n > len(lines) {
		return "", false
	}
	return strings.TrimRight(lines[n-1], " \t"), true
}

// formatXFrame is the fmt-based reference renderer for one extended
// frame line. The command path renders with appendXFrame instead; this
// stays as the oracle the equivalence tests compare against.
func formatXFrame(i int, loc srcloc.Loc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d ", i)
	if loc.Function != "" {
		fmt.Fprintf(&b, "in %s ", loc.Function)
	}
	fmt.Fprintf(&b, "at %s:%d", loc.File, loc.Line)
	return b.String()
}
