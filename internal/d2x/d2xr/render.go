package d2xr

import (
	"strconv"
	"sync"

	"d2x/internal/srcloc"
)

// renderBuf is a reusable byte buffer for command output. Every D2X
// command renders into one of these with append-style formatting and
// hands the debuggee's output writer a single Write — no fmt verbs, no
// intermediate strings, no per-command heap allocation. Buffers are
// pooled (not per-session) so any number of concurrent sessions share a
// small working set without coordination beyond sync.Pool's.
type renderBuf struct {
	b []byte
}

// renderBufMaxRetain caps the capacity a buffer may carry back into the
// pool. A one-off giant listing must not pin its backing array forever.
const renderBufMaxRetain = 1 << 16

var renderPool = sync.Pool{
	New: func() any { return &renderBuf{b: make([]byte, 0, 512)} },
}

//d2x:noalloc
func getRender() *renderBuf {
	rb := renderPool.Get().(*renderBuf)
	rb.b = rb.b[:0]
	return rb
}

//d2x:noalloc
func putRender(rb *renderBuf) {
	if cap(rb.b) > renderBufMaxRetain {
		return
	}
	renderPool.Put(rb)
}

// appendXFrame renders one extended-stack frame line, the exact bytes
// the fmt-based reference renderer produces: "#i in F at file:line"
// (the function part omitted when empty).
//
//d2x:noalloc amortized
func appendXFrame(b []byte, i int, loc srcloc.Loc) []byte {
	b = append(b, '#')
	b = strconv.AppendInt(b, int64(i), 10)
	b = append(b, ' ')
	if loc.Function != "" {
		b = append(b, "in "...)
		b = append(b, loc.Function...)
		b = append(b, ' ')
	}
	b = append(b, "at "...)
	b = append(b, loc.File...)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(loc.Line), 10)
	return b
}

// appendIntPadded renders n left-justified in a field of the given
// width, space-padded on the right — fmt's %-4d for the xlist gutter.
//
//d2x:noalloc amortized
func appendIntPadded(b []byte, n int64, width int) []byte {
	start := len(b)
	b = strconv.AppendInt(b, n, 10)
	for len(b)-start < width {
		b = append(b, ' ')
	}
	return b
}
