package d2xr

import (
	"fmt"
	"strings"
	"testing"

	"d2x/internal/d2x/d2xc"
	"d2x/internal/d2x/d2xenc"
	"d2x/internal/d2x/session"
	"d2x/internal/dwarfish"
	"d2x/internal/minic"
)

// fixture builds a tiny "generated program" with D2X tables by hand and
// returns the runtime, the VM (paused conceptually at main's first line),
// and the rip/rsp values for that point — testing D2X-R below the
// debugger, at its raw function interface (paper Figure 5).
type fixture struct {
	rt   *Runtime
	vm   *minic.VM
	out  *strings.Builder
	rip  int64
	rsp  int64
	prog *minic.Program
}

const fixtureGen = `func string __h(string key) {
	int* p = d2x_find_stack_var("v");
	return key + "=" + to_str(*p);
}
func int main() {
	int v = 41;
	v = v + 1;
	printf("%d\n", v);
	return v;
}
`

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ctx := d2xc.NewContext()
	// Generated lines 5..8 are main's body (1-based in fixtureGen).
	if err := ctx.BeginSectionAt(6); err != nil {
		t.Fatal(err)
	}
	ctx.PushSourceLoc("prog.dsl", 2, "main")
	ctx.SetVar("note", "decl")
	ctx.SetVarHandler("vh", d2xc.RTVHandler{FuncName: "__h"})
	ctx.Nextl() // line 6: int v = 41;
	ctx.PushSourceLoc("prog.dsl", 3, "main")
	ctx.SetVar("note", "decl")
	ctx.SetVarHandler("vh", d2xc.RTVHandler{FuncName: "__h"})
	ctx.Nextl() // line 7: v = v + 1;
	if err := ctx.EndSection(); err != nil {
		t.Fatal(err)
	}

	var src strings.Builder
	src.WriteString(fixtureGen)
	if err := d2xenc.EmitTables(ctx, &src); err != nil {
		t.Fatal(err)
	}

	nats := minic.NewNatives()
	rt := New()
	rt.Register(nats)
	rt.SetFileResolver(func(path string) (string, error) {
		if path == "prog.dsl" {
			return "line one\nv := 41\nv += 1\nprint v\n", nil
		}
		return "", fmt.Errorf("no file %q", path)
	})
	prog, err := minic.Compile("gen.c", src.String(), nats)
	if err != nil {
		t.Fatalf("%v\n%s", err, src.String())
	}
	blob := dwarfish.Build(prog).Encode()
	if err := rt.AttachDebugInfo(blob); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	vm := minic.NewVM(prog, &out)
	if err := vm.Start(); err != nil {
		t.Fatal(err)
	}
	// Step until main's second statement (line 7) is about to execute, so
	// v is live with value 41.
	for {
		th := vm.NextThread()
		if th == nil {
			t.Fatal("program finished before reaching line 7")
		}
		top := th.Top()
		in := top.Code.Instrs[top.PC]
		if in.StmtStart && in.Line == 7 {
			f := &fixture{rt: rt, vm: vm, out: &out, prog: prog}
			f.rip = dwarfish.EncodeAddr(dwarfish.Addr{FuncIndex: top.FuncIndex, PC: top.PC})
			f.rsp = int64(top.ID)
			return f
		}
		vm.StepInstr()
	}
}

// callCmd invokes a registered D2X-R native the way the debugger's call
// command would.
func (f *fixture) callCmd(t *testing.T, name string, args ...minic.Value) minic.Value {
	t.Helper()
	nat, _, ok := f.prog.Natives.Lookup(name)
	if !ok {
		t.Fatalf("native %s not registered", name)
	}
	v, err := nat.Handler(&minic.NativeCall{VM: f.vm, Thread: f.vm.Threads()[0], Args: args})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func TestTable2CommandSet(t *testing.T) {
	f := newFixture(t)
	// All six Table 2 entry points exist under their documented names.
	for _, name := range []string{
		"d2x_runtime_command_xbt", "d2x_runtime_command_xframe",
		"d2x_runtime_command_xlist", "d2x_runtime_command_xvars",
		"d2x_runtime_command_xbreak", "d2x_runtime_command_xdel",
	} {
		if _, _, ok := f.prog.Natives.Lookup(name); !ok {
			t.Errorf("missing Table 2 command %s", name)
		}
	}
}

func TestXBTRaw(t *testing.T) {
	f := newFixture(t)
	f.callCmd(t, "d2x_runtime_command_xbt", minic.IntVal(f.rip), minic.IntVal(f.rsp))
	if !strings.Contains(f.out.String(), "#0 in main at prog.dsl:3") {
		t.Errorf("xbt output:\n%s", f.out.String())
	}
}

func TestXListRaw(t *testing.T) {
	f := newFixture(t)
	f.callCmd(t, "d2x_runtime_command_xlist", minic.IntVal(f.rip), minic.IntVal(f.rsp))
	if !strings.Contains(f.out.String(), ">3    v += 1") {
		t.Errorf("xlist output:\n%s", f.out.String())
	}
}

func TestXVarsAndHandler(t *testing.T) {
	f := newFixture(t)
	f.callCmd(t, "d2x_runtime_command_xvars", minic.IntVal(f.rip), minic.IntVal(f.rsp), minic.StrVal(""))
	tr := f.out.String()
	if !strings.Contains(tr, "1. note") || !strings.Contains(tr, "2. vh") {
		t.Fatalf("xvars listing:\n%s", tr)
	}
	f.out.Reset()
	f.callCmd(t, "d2x_runtime_command_xvars", minic.IntVal(f.rip), minic.IntVal(f.rsp), minic.StrVal("note"))
	if !strings.Contains(f.out.String(), "note = decl") {
		t.Errorf("constant var:\n%s", f.out.String())
	}
	f.out.Reset()
	// The handler reads v from the frame rsp identifies: 41.
	f.callCmd(t, "d2x_runtime_command_xvars", minic.IntVal(f.rip), minic.IntVal(f.rsp), minic.StrVal("vh"))
	if !strings.Contains(f.out.String(), "vh = vh=41") {
		t.Errorf("handler var:\n%s", f.out.String())
	}
}

func TestXBreakReturnsCommands(t *testing.T) {
	f := newFixture(t)
	v := f.callCmd(t, "d2x_runtime_command_xbreak", minic.IntVal(f.rip), minic.StrVal("prog.dsl:2"))
	if !strings.Contains(f.out.String(), "Inserting 1 breakpoints with ID: #1") {
		t.Fatalf("xbreak banner:\n%s", f.out.String())
	}
	if v.S != "break gen.c:6" {
		t.Errorf("returned commands = %q", v.S)
	}
	// Deleting returns matching clear commands.
	f.out.Reset()
	v = f.callCmd(t, "d2x_runtime_command_xdel", minic.StrVal("#1"))
	if v.S != "clear gen.c:6" {
		t.Errorf("xdel commands = %q", v.S)
	}
	if !strings.Contains(f.out.String(), "Deleted DSL breakpoint #1") {
		t.Errorf("xdel banner:\n%s", f.out.String())
	}
}

func TestXBreakListingAndMisses(t *testing.T) {
	f := newFixture(t)
	v := f.callCmd(t, "d2x_runtime_command_xbreak", minic.IntVal(f.rip), minic.StrVal(""))
	if v.S != "" || !strings.Contains(f.out.String(), "No DSL breakpoints.") {
		t.Errorf("empty listing: %q / %s", v.S, f.out.String())
	}
	f.out.Reset()
	v = f.callCmd(t, "d2x_runtime_command_xbreak", minic.IntVal(f.rip), minic.StrVal("prog.dsl:999"))
	if v.S != "" || !strings.Contains(f.out.String(), "No generated code for prog.dsl:999") {
		t.Errorf("miss: %q / %s", v.S, f.out.String())
	}
}

func TestFindStackVarOutsideCommand(t *testing.T) {
	f := newFixture(t)
	nat, _, _ := f.prog.Natives.Lookup("d2x_find_stack_var")
	_, err := nat.Handler(&minic.NativeCall{VM: f.vm, Thread: f.vm.Threads()[0],
		Args: []minic.Value{minic.StrVal("v")}})
	if err == nil || !strings.Contains(err.Error(), "outside a D2X command") {
		t.Errorf("err = %v", err)
	}
}

func TestCommandErrors(t *testing.T) {
	f := newFixture(t)
	call := func(name string, args ...minic.Value) error {
		nat, _, _ := f.prog.Natives.Lookup(name)
		_, err := nat.Handler(&minic.NativeCall{VM: f.vm, Thread: f.vm.Threads()[0], Args: args})
		return err
	}
	if err := call("d2x_runtime_command_xvars", minic.IntVal(f.rip), minic.IntVal(f.rsp), minic.StrVal("ghost")); err == nil {
		t.Error("xvars of unknown key accepted")
	}
	if err := call("d2x_runtime_command_xframe", minic.IntVal(f.rip), minic.IntVal(f.rsp), minic.StrVal("7")); err == nil {
		t.Error("xframe out of range accepted")
	}
	if err := call("d2x_runtime_command_xframe", minic.IntVal(f.rip), minic.IntVal(f.rsp), minic.StrVal("abc")); err == nil {
		t.Error("xframe with junk arg accepted")
	}
	if err := call("d2x_runtime_command_xbreak", minic.IntVal(f.rip), minic.StrVal("what")); err == nil {
		t.Error("xbreak with junk location accepted")
	}
	if err := call("d2x_runtime_command_xdel", minic.StrVal("zzz")); err == nil {
		t.Error("xdel with junk id accepted")
	}
	if err := call("d2x_runtime_command_xdel", minic.StrVal("42")); err == nil {
		t.Error("xdel of unknown id accepted")
	}
}

func TestNoDebugInfoAttached(t *testing.T) {
	rt := New()
	nats := minic.NewNatives()
	rt.Register(nats)
	prog, err := minic.Compile("p.c", "func int main() { return 0; }", nats)
	if err != nil {
		t.Fatal(err)
	}
	vm := minic.NewVM(prog, nil)
	nat, _, _ := nats.Lookup("d2x_runtime_command_xbt")
	if _, err := nat.Handler(&minic.NativeCall{VM: vm, Args: []minic.Value{minic.IntVal(0), minic.IntVal(0)}}); err == nil {
		t.Error("xbt without debug info accepted")
	}
	if err := rt.AttachDebugInfo([]byte("junk")); err == nil {
		t.Error("junk debug blob accepted")
	}
}

func TestStaleFrameRejected(t *testing.T) {
	f := newFixture(t)
	// A frame ID that never existed.
	st := f.rt.svc.State(f.vm)
	st.CmdActive = true
	st.CurRSP = 999999
	if _, err := f.rt.findStackVar(f.vm, "v"); err == nil || !strings.Contains(err.Error(), "no longer live") {
		t.Errorf("stale frame: %v", err)
	}
}

func TestHandlerFaultSurfacesAsError(t *testing.T) {
	// A buggy rtv_handler (null deref) must produce a clean error from
	// xvars, not a crash.
	ctx := d2xc.NewContext()
	if err := ctx.BeginSectionAt(6); err != nil {
		t.Fatal(err)
	}
	ctx.SetVarHandler("bad", d2xc.RTVHandler{FuncName: "__boom"})
	ctx.PushSourceLoc("p.dsl", 1)
	ctx.Nextl()
	if err := ctx.EndSection(); err != nil {
		t.Fatal(err)
	}
	var src strings.Builder
	src.WriteString(`func string __boom(string key) {
	int* p = null;
	return to_str(*p);
}
func int main() {
	int v = 0;
	return v;
}
`)
	if err := d2xenc.EmitTables(ctx, &src); err != nil {
		t.Fatal(err)
	}
	nats := minic.NewNatives()
	rt := New()
	rt.Register(nats)
	prog, err := minic.Compile("gen.c", src.String(), nats)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.AttachDebugInfo(dwarfish.Build(prog).Encode()); err != nil {
		t.Fatal(err)
	}
	vm := minic.NewVM(prog, nil)
	if err := vm.Start(); err != nil {
		t.Fatal(err)
	}
	top := vm.Threads()[0].Top()
	rip := dwarfish.EncodeAddr(dwarfish.Addr{FuncIndex: top.FuncIndex, PC: top.PC})
	nat, _, _ := nats.Lookup("d2x_runtime_command_xvars")
	_, err = nat.Handler(&minic.NativeCall{VM: vm, Thread: vm.Threads()[0],
		Args: []minic.Value{minic.IntVal(rip), minic.IntVal(int64(top.ID)), minic.StrVal("bad")}})
	if err == nil || !strings.Contains(err.Error(), "rtv_handler __boom failed") {
		t.Errorf("handler fault: %v", err)
	}
}

// TestFindStackVarInFrameZero is the regression test for the frame-0 bug:
// the runtime used to track the active command frame with the sentinel
// "curRSP == 0", but minic assigns the very first frame it creates ID 0.
// In a program with no constructors that is main's frame, so an
// rtv_handler evaluated while paused in main was wrongly rejected with
// "called outside a D2X command".
func TestFindStackVarInFrameZero(t *testing.T) {
	nats := minic.NewNatives()
	rt := New()
	rt.Register(nats)
	// No D2X tables appended: table constructors would run before main and
	// consume frame ID 0. findStackVar only needs debug info and the
	// command state, not the tables.
	prog, err := minic.Compile("gen.c", fixtureGen, nats)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.AttachDebugInfo(dwarfish.Build(prog).Encode()); err != nil {
		t.Fatal(err)
	}
	vm := minic.NewVM(prog, nil)
	if err := vm.Start(); err != nil {
		t.Fatal(err)
	}
	// Step until main's second statement (line 7), where v is live at 41.
	var frameID int
	for {
		th := vm.NextThread()
		if th == nil {
			t.Fatal("program finished before reaching line 7")
		}
		top := th.Top()
		in := top.Code.Instrs[top.PC]
		if in.StmtStart && in.Line == 7 {
			frameID = top.ID
			break
		}
		vm.StepInstr()
	}
	if frameID != 0 {
		t.Fatalf("expected main to be frame 0 in a constructor-free program, got %d", frameID)
	}
	// Mark a D2X command active on frame 0, exactly as the command wrapper
	// does when the debugger passes $rsp = 0.
	st := rt.svc.State(vm)
	st.CmdActive = true
	st.CurRSP = 0
	defer func() { st.CmdActive = false }()
	res, err := vm.CallFunction("__h", []minic.Value{minic.StrVal("vh")})
	if err != nil {
		t.Fatalf("rtv_handler paused in frame 0: %v", err)
	}
	if res.S != "vh=41" {
		t.Errorf("rtv_handler in frame 0 = %q, want %q", res.S, "vh=41")
	}
}

// TestXBreakRepeatedExpansionStable is the regression test for the slice
// aliasing bug: xbreak used to filter the GenLinesForDSL result with
// genLines[:0], mutating the slice in place. With the results now served
// from the shared table index, that write would corrupt the tables and a
// second identical xbreak would see a different expansion.
func TestXBreakRepeatedExpansionStable(t *testing.T) {
	f := newFixture(t)
	first := f.callCmd(t, "d2x_runtime_command_xbreak",
		minic.IntVal(f.rip), minic.StrVal("prog.dsl:2")).S
	second := f.callCmd(t, "d2x_runtime_command_xbreak",
		minic.IntVal(f.rip), minic.StrVal("prog.dsl:2")).S
	if first == "" {
		t.Fatal("xbreak produced no breakpoint commands")
	}
	if first != second {
		t.Errorf("identical xbreak calls expanded differently:\n1st: %q\n2nd: %q", first, second)
	}
	bps := f.rt.BreakpointsFor(f.vm)
	if len(bps) != 2 {
		t.Fatalf("expected 2 breakpoints, got %d", len(bps))
	}
	if fmt.Sprint(bps[0].GenLines) != fmt.Sprint(bps[1].GenLines) {
		t.Errorf("stored expansions differ: %v vs %v", bps[0].GenLines, bps[1].GenLines)
	}
}

// TestSessionStateEviction covers the unbounded-growth bug: per-VM state
// used to live in a map that never deleted keys. Release must evict it.
func TestSessionStateEviction(t *testing.T) {
	f := newFixture(t)
	f.callCmd(t, "d2x_runtime_command_xbt", minic.IntVal(f.rip), minic.IntVal(f.rsp))
	if n := f.rt.LiveSessions(); n != 1 {
		t.Fatalf("live sessions after a command = %d, want 1", n)
	}
	f.rt.Release(f.vm)
	if n := f.rt.LiveSessions(); n != 0 {
		t.Errorf("live sessions after Release = %d, want 0", n)
	}
	f.rt.Release(f.vm) // idempotent
	if n := f.rt.LiveSessions(); n != 0 {
		t.Errorf("live sessions after double Release = %d, want 0", n)
	}
}

// TestSharedTablesSingleDecode: N sessions over one runtime share one
// table decode.
func TestSharedTablesSingleDecode(t *testing.T) {
	f := newFixture(t)
	if n := f.rt.TableDecodes(); n != 0 {
		t.Fatalf("decodes before any command = %d, want 0", n)
	}
	f.callCmd(t, "d2x_runtime_command_xbt", minic.IntVal(f.rip), minic.IntVal(f.rsp))

	// A second debuggee VM of the same program, served by the same runtime.
	vm2 := minic.NewVM(f.prog, nil)
	if err := vm2.Start(); err != nil {
		t.Fatal(err)
	}
	nat, _, _ := f.prog.Natives.Lookup("d2x_runtime_command_xbt")
	top := vm2.Threads()[0].Top()
	rip2 := dwarfish.EncodeAddr(dwarfish.Addr{FuncIndex: top.FuncIndex, PC: top.PC})
	if _, err := nat.Handler(&minic.NativeCall{VM: vm2, Thread: vm2.Threads()[0],
		Args: []minic.Value{minic.IntVal(rip2), minic.IntVal(int64(top.ID))}}); err != nil {
		t.Fatal(err)
	}
	if n := f.rt.TableDecodes(); n != 1 {
		t.Errorf("decodes after two sessions = %d, want 1", n)
	}
	if n := f.rt.LiveSessions(); n != 2 {
		t.Errorf("live sessions = %d, want 2", n)
	}
}

// TestSourceFileCacheBoundedAndReset is the regression test for the
// unbounded xlist source cache: insertion past the cap must evict the
// oldest entries, hits must not re-read, and swapping the resolver must
// drop everything cached under the old one.
func TestSourceFileCacheBoundedAndReset(t *testing.T) {
	rt := New()
	reads := map[string]int{}
	rt.SetFileResolver(func(path string) (string, error) {
		reads[path]++
		return "old\n", nil
	})
	const overflow = 8
	for i := 0; i < maxFileCacheEntries+overflow; i++ {
		if _, err := rt.sourceFile(fmt.Sprintf("f%03d.dsl", i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(rt.fileCache); n != maxFileCacheEntries {
		t.Errorf("cache size after overflow = %d, want %d", n, maxFileCacheEntries)
	}
	if n := len(rt.fileOrder); n != maxFileCacheEntries {
		t.Errorf("eviction order length = %d, want %d", n, maxFileCacheEntries)
	}
	// A surviving entry is a hit: no second read through the resolver.
	if _, err := rt.sourceFile(fmt.Sprintf("f%03d.dsl", overflow)); err != nil {
		t.Fatal(err)
	}
	if got := reads[fmt.Sprintf("f%03d.dsl", overflow)]; got != 1 {
		t.Errorf("cached file read %d times, want 1", got)
	}
	// The oldest entries were evicted (FIFO): asking again re-reads.
	if _, err := rt.sourceFile("f000.dsl"); err != nil {
		t.Fatal(err)
	}
	if got := reads["f000.dsl"]; got != 2 {
		t.Errorf("evicted file read %d times, want 2", got)
	}
	// Replacing the resolver must drop the whole cache: content cached
	// under the old resolver must not be served for the new one.
	rt.SetFileResolver(func(path string) (string, error) {
		return "new\n", nil
	})
	lines, err := rt.sourceFile("f050.dsl")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 || lines[0] != "new" {
		t.Errorf("stale cache served across resolver change: %q", lines)
	}
}

// TestXBreakDedupesDuplicateGenLines is the regression test for the
// duplicate-emission bug: when a DSL line reaches one generated line
// through several D2X records (two sections covering the same generated
// line, as a macro expanded twice at one site produces), xbreak used to
// emit the same `break` command once per record, stacking duplicate
// breakpoints in the debugger that a single xdel could not fully remove.
func TestXBreakDedupesDuplicateGenLines(t *testing.T) {
	ctx := d2xc.NewContext()
	for i := 0; i < 2; i++ {
		if err := ctx.BeginSectionAt(2); err != nil {
			t.Fatal(err)
		}
		ctx.PushSourceLoc("p.dsl", 1)
		ctx.Nextl() // generated line 2: int v = 1;
		if err := ctx.EndSection(); err != nil {
			t.Fatal(err)
		}
	}
	var src strings.Builder
	src.WriteString(`func int main() {
	int v = 1;
	return v;
}
`)
	if err := d2xenc.EmitTables(ctx, &src); err != nil {
		t.Fatal(err)
	}
	nats := minic.NewNatives()
	rt := New()
	rt.Register(nats)
	prog, err := minic.Compile("gen.c", src.String(), nats)
	if err != nil {
		t.Fatalf("%v\n%s", err, src.String())
	}
	if err := rt.AttachDebugInfo(dwarfish.Build(prog).Encode()); err != nil {
		t.Fatal(err)
	}
	vm := minic.NewVM(prog, nil)
	if err := vm.Start(); err != nil {
		t.Fatal(err)
	}
	top := vm.Threads()[0].Top()
	rip := dwarfish.EncodeAddr(dwarfish.Addr{FuncIndex: top.FuncIndex, PC: top.PC})

	// Both records map p.dsl:1 to generated line 2.
	tables, err := rt.svc.Tables(vm)
	if err != nil {
		t.Fatal(err)
	}
	if gls := tables.GenLinesForDSL("p.dsl", 1); len(gls) < 2 {
		t.Fatalf("fixture did not reproduce duplicate records: GenLines = %v", gls)
	}

	var out strings.Builder
	vm2 := minic.NewVM(prog, &out)
	if err := vm2.Start(); err != nil {
		t.Fatal(err)
	}
	nat, _, _ := nats.Lookup("d2x_runtime_command_xbreak")
	v, err := nat.Handler(&minic.NativeCall{VM: vm2, Thread: vm2.Threads()[0],
		Args: []minic.Value{minic.IntVal(rip), minic.StrVal("p.dsl:1")}})
	if err != nil {
		t.Fatal(err)
	}
	if v.S != "break gen.c:2" {
		t.Errorf("xbreak commands = %q, want one deduplicated break", v.S)
	}
	if !strings.Contains(out.String(), "Inserting 1 breakpoints with ID: #1") {
		t.Errorf("xbreak banner:\n%s", out.String())
	}
	out.Reset()
	natDel, _, _ := nats.Lookup("d2x_runtime_command_xdel")
	v, err = natDel.Handler(&minic.NativeCall{VM: vm2, Thread: vm2.Threads()[0],
		Args: []minic.Value{minic.StrVal("#1")}})
	if err != nil {
		t.Fatal(err)
	}
	if v.S != "clear gen.c:2" {
		t.Errorf("xdel commands = %q, want one deduplicated clear", v.S)
	}
}

// TestXDelEmitsSortedUniqueClears: xdel must emit clear commands sorted
// and deduplicated even for breakpoints whose stored expansion predates
// the dedupe (e.g. set before a re-attach under an older build).
func TestXDelEmitsSortedUniqueClears(t *testing.T) {
	f := newFixture(t)
	st := f.rt.svc.State(f.vm)
	st.XBPs = append(st.XBPs, &session.XBreakpoint{
		ID: 5, File: "p.dsl", Line: 1, GenLines: []int{7, 6, 7, 6, 6}})
	v := f.callCmd(t, "d2x_runtime_command_xdel", minic.StrVal("#5"))
	if v.S != "clear gen.c:6\nclear gen.c:7" {
		t.Errorf("xdel commands = %q, want sorted unique clears", v.S)
	}
}

// TestReattachResetsSessionState is the regression test for the
// mid-flight re-attach bug: replacing the debug info used to keep every
// session's frame selection, remembered rip and DSL breakpoints, all of
// which refer to the old build's line numbering.
func TestReattachResetsSessionState(t *testing.T) {
	f := newFixture(t)
	f.callCmd(t, "d2x_runtime_command_xbreak", minic.IntVal(f.rip), minic.StrVal("prog.dsl:2"))
	f.callCmd(t, "d2x_runtime_command_xbt", minic.IntVal(f.rip), minic.IntVal(f.rsp))
	st := f.rt.svc.State(f.vm)
	if !st.HaveRIP || len(st.XBPs) != 1 {
		t.Fatalf("precondition not met: %+v", st)
	}
	dec0 := f.rt.TableDecodes()

	if err := f.rt.AttachDebugInfo(dwarfish.Build(f.prog).Encode()); err != nil {
		t.Fatal(err)
	}
	if st.HaveRIP || st.LastRIP != 0 || st.SelXFrame != 0 || len(st.XBPs) != 0 {
		t.Errorf("stale session state survived re-attach: %+v", st)
	}
	// The shared decode was dropped too: the next table-backed command
	// re-decodes from the debuggee instead of serving the stale build.
	f.out.Reset()
	f.callCmd(t, "d2x_runtime_command_xbt", minic.IntVal(f.rip), minic.IntVal(f.rsp))
	if n := f.rt.TableDecodes(); n != dec0+1 {
		t.Errorf("decodes after re-attach = %d, want %d", n, dec0+1)
	}
}

// TestReattachInvalidatesFusedIndex is the stale-index regression test
// for the fused resolution index: replacing the debug info must drop the
// published index and rebuild it against the new info identity on the
// next command. An entry fused under the old build's line numbering
// serving the new binary would resolve frames to the wrong DSL context
// silently — the worst failure mode this subsystem has.
func TestReattachInvalidatesFusedIndex(t *testing.T) {
	f := newFixture(t)
	f.out.Reset()
	f.callCmd(t, "d2x_runtime_command_xbt", minic.IntVal(f.rip), minic.IntVal(f.rsp))
	want := f.out.String()
	if want == "" {
		t.Fatal("xbt produced no output before re-attach")
	}
	fu0, err := f.rt.svc.Fused(f.vm, f.rt.info)
	if err != nil {
		t.Fatal(err)
	}
	if fu0.Info() != f.rt.info {
		t.Fatal("published index not keyed to the attached info")
	}

	// Re-attach the same blob: the decode yields a fresh *dwarfish.Info,
	// so anything keyed to the old identity is now stale by definition.
	if err := f.rt.AttachDebugInfo(dwarfish.Build(f.prog).Encode()); err != nil {
		t.Fatal(err)
	}
	if f.rt.info == fu0.Info() {
		t.Fatal("re-attach kept the old info identity; test can prove nothing")
	}
	fu1, err := f.rt.svc.Fused(f.vm, f.rt.info)
	if err != nil {
		t.Fatal(err)
	}
	if fu1 == fu0 {
		t.Error("stale fused index survived AttachDebugInfo")
	}
	if fu1.Info() != f.rt.info {
		t.Errorf("rebuilt index keyed to %p, want the re-attached info %p", fu1.Info(), f.rt.info)
	}

	// The command path agrees byte for byte with the pre-reattach output
	// (same program, same rip — only the index was rebuilt).
	f.out.Reset()
	f.callCmd(t, "d2x_runtime_command_xbt", minic.IntVal(f.rip), minic.IntVal(f.rsp))
	if got := f.out.String(); got != want {
		t.Errorf("xbt after re-attach = %q, want %q", got, want)
	}
}
