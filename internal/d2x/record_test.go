package d2x

import (
	"strings"
	"testing"

	"d2x/internal/minic/journal"
)

// TestReverseXBT is the DSL-level time-travel composition: reverse-step
// back one generated line, then answer xbt there. The extended backtrace
// after the rewind must be byte-identical to the one the forward run
// produced at the same stop — replay goes through the same fused index.
func TestReverseXBT(t *testing.T) {
	b := buildPower(t, true)
	d, out := session(t, b)
	exec(t, d, "break power_gen.c:4", "run", "record")
	out.Reset()
	exec(t, d, "xbt")
	forward := out.String()
	if !strings.Contains(forward, "#0 in power at power.dsl:6") {
		t.Fatalf("setup: xbt at the recording start:\n%s", forward)
	}

	exec(t, d, "next") // forward one generated line, onto power_gen.c:5
	out.Reset()
	exec(t, d, "reverse-xbt")
	tr := out.String()
	if !strings.HasSuffix(tr, forward) {
		t.Errorf("reverse-xbt backtrace diverged from the forward one\n--- forward ---\n%s\n--- reverse ---\n%s", forward, tr)
	}
}

// TestXVarsByteIdenticalAfterReplay rewinds a recording to its start and
// re-asks xvars: erased first-stage variables and handler-backed views
// must come back byte-identical, including the rtv handler re-reading
// the restored stack.
func TestXVarsByteIdenticalAfterReplay(t *testing.T) {
	b := buildPower(t, true)
	d, out := session(t, b)
	exec(t, d, "break power_gen.c:4", "run", "record")
	out.Reset()
	exec(t, d, "xvars")
	forward := out.String()
	if !strings.Contains(forward, "exponent") {
		t.Fatalf("setup: xvars at the recording start:\n%s", forward)
	}

	exec(t, d, "next", "next", "record goto 0")
	out.Reset()
	exec(t, d, "xvars")
	if got := out.String(); got != forward {
		t.Errorf("xvars after replay diverged\n--- forward ---\n%s\n--- replay ---\n%s", forward, got)
	}
}

// TestRecordingParksOnSessionState: in a D2X session the journal handle
// lives on the per-VM session state, not inside the debugger — that is
// what lets Release park it and a re-attach resume it.
func TestRecordingParksOnSessionState(t *testing.T) {
	b := buildPower(t, true)
	d, _ := session(t, b)
	exec(t, d, "break power_gen.c:4", "run", "record")

	st := b.Runtime.StateFor(d.Process().VM)
	j, ok := st.Journal.(*journal.Journal)
	if !ok || !j.Active() {
		t.Fatalf("session state holds %T, want an active journal", st.Journal)
	}
	rec := d.ActiveRecorder()
	if rec == nil {
		t.Fatal("debugger lost its recorder")
	}
	exec(t, d, "next")
	if rec.Step() != j.Step() || j.Step() == 0 {
		t.Fatalf("recorder and parked journal disagree: %d vs %d", rec.Step(), j.Step())
	}

	// `record` again on the same VM must reuse the parked journal, not
	// attach a second one over it.
	exec(t, d, "record stop")
	if j.Active() {
		t.Fatal("record stop left the parked journal recording")
	}
}
