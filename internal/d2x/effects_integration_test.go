package d2x

// End-to-end tests for handler safety: the same misbehaving handler is
// (1) rejected statically by the verifier and (2), when forced past the
// check, stopped by the runtime guard — with the session and debuggee
// left intact. This is the two-path property the effect analysis exists
// to provide: the static layer gives early, precise diagnostics; the
// dynamic layer guarantees nothing slips through.

import (
	"strings"
	"sync"
	"testing"

	"d2x/internal/d2x/d2xc"
	"d2x/internal/d2x/d2xr"
	"d2x/internal/d2xverify"
)

// buildWithHandler stages a tiny generated program whose single xvar
// `view` is backed by handlerSrc's __d2x_rtv_view function.
func buildWithHandler(t *testing.T, handlerSrc string) *Build {
	t.Helper()
	ctx := d2xc.NewContext()
	e := d2xc.NewEmitter(ctx)
	e.Emitln("global int counter = 100;")
	e.Emitln("func int work(int arg0) {")
	if err := e.BeginSection(); err != nil {
		t.Fatal(err)
	}
	ctx.PushScope()
	ctx.CreateVar("view")
	if err := ctx.UpdateVarHandler("view", d2xc.RTVHandler{FuncName: "__d2x_rtv_view"}); err != nil {
		t.Fatal(err)
	}
	ctx.PushSourceLoc("app.dsl", 1, "work")
	e.Emitln("\tint r = arg0 + counter;")
	ctx.PushSourceLoc("app.dsl", 2, "work")
	e.Emitln("\treturn r;")
	if err := ctx.PopScope(); err != nil {
		t.Fatal(err)
	}
	if err := e.EndSection(); err != nil {
		t.Fatal(err)
	}
	e.Emitln("}")
	for _, line := range strings.Split(strings.TrimRight(handlerSrc, "\n"), "\n") {
		e.Emitln("%s", line)
	}
	e.Emitln("func int main() {")
	e.Emitln("\tprintf(\"%%d\\n\", work(1));")
	e.Emitln("\treturn 0;")
	e.Emitln("}")
	build, err := Link("handler_gen.c", e.String(), ctx, LinkOptions{})
	if err != nil {
		t.Fatalf("link failed: %v\nsource:\n%s", err, e.String())
	}
	return build
}

const writingHandler = `func string __d2x_rtv_view(string key) {
	counter = counter + 1;
	return to_str(counter);
}`

// TestWritingHandlerBothPaths is the acceptance scenario: a handler that
// writes a debuggee global is rejected at compile time by the verifier,
// and — forced past the check — stopped by the runtime write barrier,
// with the global untouched and the session fully functional afterwards.
func TestWritingHandlerBothPaths(t *testing.T) {
	b := buildWithHandler(t, writingHandler)

	// Path 1: static. The verifier flags the handler as an error.
	rep := b.Verify()
	var hit *d2xverify.Diagnostic
	for _, d := range rep.ByCheck("d2x/handler-effects") {
		if d.Severity == d2xverify.SevError && strings.Contains(d.Message, "__d2x_rtv_view") {
			hit = &d
			break
		}
	}
	if hit == nil {
		t.Fatalf("verifier did not reject the writing handler:\n%s", rep)
	}

	// Path 2: dynamic. Ignore the verifier and debug anyway.
	d, out := session(t, b)
	exec(t, d, "break handler_gen.c:3", "run")
	out.Reset()
	exec(t, d, "xvars view")
	if !strings.Contains(out.String(), d2xr.ResultWriteBlocked) {
		t.Fatalf("xvars view = %q, want %q", out.String(), d2xr.ResultWriteBlocked)
	}
	vm := d.Process().VM
	if got := vm.GlobalCell("counter").V.I; got != 100 {
		t.Fatalf("counter = %d after blocked handler, want 100 (write must not land)", got)
	}

	// The session survives: tables still decode (xbt works), the blocked
	// handler stays blocked on re-evaluation, and the debuggee runs to
	// the correct result.
	out.Reset()
	exec(t, d, "xbt")
	if !strings.Contains(out.String(), "#0 in work at app.dsl:1") {
		t.Fatalf("xbt after blocked handler:\n%s", out.String())
	}
	out.Reset()
	exec(t, d, "xvars view")
	if !strings.Contains(out.String(), d2xr.ResultWriteBlocked) {
		t.Fatalf("second xvars view:\n%s", out.String())
	}
	out.Reset()
	exec(t, d, "continue")
	if !strings.Contains(out.String(), "101") {
		t.Fatalf("debuggee output after blocked handler:\n%s", out.String())
	}
}

const spinningHandler = `func string __d2x_rtv_view(string key) {
	int i = 0;
	while (true) { i = i + 1; }
	return "";
}`

// TestUnboundedHandlerFuel: a handler with no provable exit draws a
// compile-time warning, and at debug time terminates under the session
// fuel budget with the degraded diagnostic value.
func TestUnboundedHandlerFuel(t *testing.T) {
	b := buildWithHandler(t, spinningHandler)

	rep := b.Verify()
	warned := false
	for _, d := range rep.ByCheck("d2x/handler-effects") {
		if d.Severity == d2xverify.SevWarning && strings.Contains(d.Message, "no provable exit") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("verifier did not warn about the unbounded loop:\n%s", rep)
	}

	d, out := session(t, b)
	exec(t, d, "break handler_gen.c:3", "run")
	st := b.Runtime.StateFor(d.Process().VM)
	st.FuelBudget = 20_000 // keep the test fast; default is 2M instructions
	out.Reset()
	exec(t, d, "xvars view")
	if !strings.Contains(out.String(), d2xr.ResultFuelExceeded) {
		t.Fatalf("xvars view = %q, want %q", out.String(), d2xr.ResultFuelExceeded)
	}
	if st.FuelBudget != 20_000 {
		t.Fatalf("FuelBudget = %d after exhaustion, want 20000 (session state untouched)", st.FuelBudget)
	}
	// The stop is recoverable: the debuggee continues to completion.
	out.Reset()
	exec(t, d, "continue")
	if !strings.Contains(out.String(), "101") {
		t.Fatalf("debuggee output after fuel exhaustion:\n%s", out.String())
	}
}

// TestConcurrentGuardedSessions runs two sessions over one build, each
// exhausting the fuel guard concurrently: per-session state (including
// the fuel budget) must stay isolated and race-free (the CI -race run
// is the real assertion here).
func TestConcurrentGuardedSessions(t *testing.T) {
	b := buildWithHandler(t, spinningHandler)
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(budget int64) {
			defer wg.Done()
			d, out := session(t, b)
			defer d.Close()
			exec(t, d, "break handler_gen.c:3", "run")
			st := b.Runtime.StateFor(d.Process().VM)
			st.FuelBudget = budget
			out.Reset()
			exec(t, d, "xvars view")
			if !strings.Contains(out.String(), d2xr.ResultFuelExceeded) {
				t.Errorf("budget %d: xvars view = %q", budget, out.String())
			}
			if st.FuelBudget != budget {
				t.Errorf("budget %d: FuelBudget changed to %d", budget, st.FuelBudget)
			}
		}(int64(10_000 * (s + 1)))
	}
	wg.Wait()
	if n := b.LiveSessions(); n != 0 {
		t.Errorf("LiveSessions = %d after closes, want 0", n)
	}
}

// TestSafeHandlerRunsUnguarded: the analysis proves the read-only,
// loop-free handler safe, so it evaluates normally even with a fuel
// budget far too small for a guarded run — proof the guard was not
// attached at all.
func TestSafeHandlerRunsUnguarded(t *testing.T) {
	b := buildWithHandler(t, `func string __d2x_rtv_view(string key) {
	return "c=" + to_str(counter);
}`)
	if got := b.Verify().ByCheck("d2x/handler-effects"); len(got) != 0 {
		t.Fatalf("safe handler flagged: %v", got)
	}
	d, out := session(t, b)
	exec(t, d, "break handler_gen.c:3", "run")
	b.Runtime.StateFor(d.Process().VM).FuelBudget = 1 // would kill any guarded call
	out.Reset()
	exec(t, d, "xvars view")
	if !strings.Contains(out.String(), "view = c=100") {
		t.Fatalf("safe handler result:\n%s", out.String())
	}
}
