package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		Request(1, CmdLaunch, &Args{Example: "power"}),
		Request(2, CmdXBreak, &Args{Spec: "power.dsl:6"}),
		Request(3, CmdXVars, &Args{Name: "row"}),
		Response(7, Request(3, CmdXBT, nil), &Body{Output: "#0 ...\n"}),
		ErrorResponse(8, Request(4, CmdStep, nil), errors.New("no program running")),
		Event(9, EventStopped, &Body{Reason: "breakpoint"}),
		Event(10, EventOutput, &Body{Output: "hello\n", Dropped: 3}),
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, f := range frames {
		if err := enc.Encode(f); err != nil {
			t.Fatalf("encode %+v: %v", f, err)
		}
	}
	if got := strings.Count(buf.String(), "\n"); got != len(frames) {
		t.Fatalf("expected %d newline-terminated frames, counted %d", len(frames), got)
	}
	dec := NewDecoder(&buf)
	for i, want := range frames {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode frame %d: %v", i, err)
		}
		if got.Seq != want.Seq || got.Type != want.Type || got.Command != want.Command ||
			got.RequestSeq != want.RequestSeq || got.Success != want.Success ||
			got.Message != want.Message || got.Event != want.Event {
			t.Errorf("frame %d: got %+v want %+v", i, got, want)
		}
		if (got.Body == nil) != (want.Body == nil) {
			t.Fatalf("frame %d: body presence mismatch", i)
		}
		if want.Body != nil && !reflect.DeepEqual(*got.Body, *want.Body) {
			t.Errorf("frame %d: body got %+v want %+v", i, *got.Body, *want.Body)
		}
		if (got.Arguments == nil) != (want.Arguments == nil) {
			t.Fatalf("frame %d: arguments presence mismatch", i)
		}
		if want.Arguments != nil && !reflect.DeepEqual(*got.Arguments, *want.Arguments) {
			t.Errorf("frame %d: arguments got %+v want %+v", i, *got.Arguments, *want.Arguments)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("expected io.EOF after last frame, got %v", err)
	}
}

func TestDecoderSkipsBlankLines(t *testing.T) {
	in := "\n  \n{\"seq\":1,\"type\":\"request\",\"command\":\"stats\"}\r\n\n"
	dec := NewDecoder(strings.NewReader(in))
	f, err := dec.Decode()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Command != CmdStats {
		t.Fatalf("got command %q, want %q", f.Command, CmdStats)
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}

func TestDecoderMalformedInput(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"not json", "hello there\n", "malformed frame"},
		{"json array", "[1,2,3]\n", "malformed frame"},
		{"missing type", "{\"seq\":1}\n", "missing type"},
		{"oversized", strings.Repeat("x", MaxFrameBytes+10) + "\n", "exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dec := NewDecoder(strings.NewReader(tc.in))
			_, err := dec.Decode()
			if err == nil {
				t.Fatal("expected an error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestEncoderRejectsOversizedFrame(t *testing.T) {
	enc := NewEncoder(io.Discard)
	f := Event(1, EventOutput, &Body{Output: strings.Repeat("y", MaxFrameBytes)})
	if err := enc.Encode(f); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("expected an oversize error, got %v", err)
	}
}

func TestKnownCommand(t *testing.T) {
	for _, c := range Commands() {
		if !KnownCommand(c) {
			t.Errorf("Commands() entry %q not known", c)
		}
	}
	for _, c := range []string{"", "quit", "LAUNCH", "xbt "} {
		if KnownCommand(c) {
			t.Errorf("%q should not be a known command", c)
		}
	}
}

// scriptServer runs a minimal scripted peer over one end of a net.Pipe:
// for each request it sends the queued events and then the response.
func scriptServer(t *testing.T, conn net.Conn, script []func(req *Frame, enc *Encoder)) {
	t.Helper()
	dec := NewDecoder(conn)
	enc := NewEncoder(conn)
	for _, step := range script {
		req, err := dec.Decode()
		if err != nil {
			t.Errorf("server decode: %v", err)
			return
		}
		if req.Type != TypeRequest {
			t.Errorf("server got non-request frame %+v", req)
			return
		}
		step(req, enc)
	}
}

func TestClientDoBuffersInterleavedEvents(t *testing.T) {
	cs, ss := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		scriptServer(t, ss, []func(*Frame, *Encoder){
			func(req *Frame, enc *Encoder) {
				enc.Encode(Event(1, EventOutput, &Body{Output: "p = 1\n"}))
				enc.Encode(Event(2, EventStopped, &Body{Reason: "breakpoint"}))
				enc.Encode(Response(3, req, &Body{Output: "Continuing.\n"}))
			},
			func(req *Frame, enc *Encoder) {
				enc.Encode(Response(4, req, &Body{Output: "#0 main\n"}))
			},
		})
	}()

	c := NewClient(cs)
	defer c.Close()

	resp, err := c.Do(CmdContinue, nil)
	if err != nil {
		t.Fatalf("Do(continue): %v", err)
	}
	if resp.Body == nil || resp.Body.Output != "Continuing.\n" {
		t.Fatalf("unexpected response body: %+v", resp.Body)
	}
	ev := c.Events()
	if len(ev) != 2 || ev[0].Event != EventOutput || ev[1].Event != EventStopped {
		t.Fatalf("unexpected events: %+v", ev)
	}
	if got := c.Events(); len(got) != 0 {
		t.Fatalf("Events did not drain: %+v", got)
	}

	if _, err := c.Do(CmdXBT, nil); err != nil {
		t.Fatalf("Do(xbt): %v", err)
	}
	if got := c.Events(); len(got) != 0 {
		t.Fatalf("xbt produced spurious events: %+v", got)
	}
	<-done
}

func TestClientDoReturnsRemoteError(t *testing.T) {
	cs, ss := net.Pipe()
	go scriptServer(t, ss, []func(*Frame, *Encoder){
		func(req *Frame, enc *Encoder) {
			enc.Encode(ErrorResponse(1, req, errors.New("no program running")))
		},
	})
	c := NewClient(cs)
	defer c.Close()

	resp, err := c.Do(CmdStep, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("expected *RemoteError, got %v", err)
	}
	if re.Command != CmdStep || !strings.Contains(re.Message, "no program running") {
		t.Fatalf("unexpected remote error: %+v", re)
	}
	if resp == nil || resp.Success {
		t.Fatalf("failed Do should still return the response frame: %+v", resp)
	}
}

func TestClientDoRejectsMismatchedResponse(t *testing.T) {
	cs, ss := net.Pipe()
	go scriptServer(t, ss, []func(*Frame, *Encoder){
		func(req *Frame, enc *Encoder) {
			wrong := *req
			wrong.Seq = req.Seq + 99
			enc.Encode(Response(1, &wrong, nil))
		},
	})
	c := NewClient(cs)
	defer c.Close()

	if _, err := c.Do(CmdStats, nil); err == nil ||
		!strings.Contains(err.Error(), "while waiting on") {
		t.Fatalf("expected a sequence-mismatch error, got %v", err)
	}
}

func TestClientEventBufferSheds(t *testing.T) {
	cs, ss := net.Pipe()
	go scriptServer(t, ss, []func(*Frame, *Encoder){
		func(req *Frame, enc *Encoder) {
			for i := 0; i < maxBufferedEvents+5; i++ {
				enc.Encode(Event(int64(i+1), EventOutput, &Body{Output: "x"}))
			}
			enc.Encode(Response(9999, req, nil))
		},
	})
	c := NewClient(cs)
	defer c.Close()

	if _, err := c.Do(CmdRun, nil); err != nil {
		t.Fatalf("Do(run): %v", err)
	}
	ev := c.Events()
	if len(ev) != maxBufferedEvents {
		t.Fatalf("buffered %d events, want cap %d", len(ev), maxBufferedEvents)
	}
	if c.DroppedLocally() != 5 {
		t.Fatalf("DroppedLocally = %d, want 5", c.DroppedLocally())
	}
	// Oldest were shed: the first surviving event is seq 6.
	if ev[0].Seq != 6 {
		t.Fatalf("first surviving event seq = %d, want 6", ev[0].Seq)
	}
}
