// Package wire defines the d2xserve wire protocol: a DAP-flavored
// request/response/event scheme carried as newline-delimited JSON frames
// over any byte stream (TCP in production, net.Pipe in tests).
//
// The protocol follows Hanson's machine-independent debugger split: a
// thin client sends small typed requests ("xbt", "continue"), the server
// — which owns the builds, the debuggers, and the shared D2X table
// service — executes them against one debug session per connection and
// replies with the command transcript. Execution commands additionally
// produce asynchronous "stopped" events, and debuggee output streams out
// as "output" events; both ride a bounded per-connection queue on the
// server, so a slow client sheds events instead of stalling the session
// (responses are never shed).
//
// Framing is one JSON object per line, terminated by '\n'. Blank lines
// are ignored, so a human can drive a server from nc(1). A frame is at
// most MaxFrameBytes long, bounding what either side must buffer.
//
// This package is deliberately a pure protocol layer: frame types,
// encode/decode, and a small blocking client. It must not import the
// debugger, the VM, or any other piece of the debug stack — an
// architecture lint (d2xverify arch/import-graph) enforces that, so a
// client links the protocol without linking the service.
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Frame type discriminators.
const (
	TypeRequest  = "request"
	TypeResponse = "response"
	TypeEvent    = "event"
)

// Request commands. Launch binds the connection's one debug session to a
// named build; the rest map one-to-one onto debugger and D2X commands.
const (
	CmdLaunch     = "launch"
	CmdBreak      = "break"
	CmdRun        = "run"
	CmdContinue   = "continue"
	CmdStep       = "step"
	CmdNext       = "next"
	CmdFinish     = "finish"
	CmdXBT        = "xbt"
	CmdXFrame     = "xframe"
	CmdXList      = "xlist"
	CmdXVars      = "xvars"
	CmdXBreak     = "xbreak"
	CmdXDel       = "xdel"
	CmdStats      = "stats"
	CmdDisconnect = "disconnect"
	// CmdBatch carries N sub-commands in one frame; the response carries
	// one result per sub-command. One round trip instead of N, and the
	// server executes the whole batch under a single session pin, so it
	// is atomic with respect to build invalidation and session eviction.
	CmdBatch = "batch"
)

// Event names.
const (
	// EventStopped reports that an execution request halted the debuggee
	// (breakpoint, step, fault, exit); Body.Reason says why.
	EventStopped = "stopped"
	// EventOutput carries debuggee program output produced while an
	// execution request was running.
	EventOutput = "output"
)

// Commands returns the canonical request command set, in documentation
// order. The server rejects anything not in this list.
func Commands() []string {
	return []string{
		CmdLaunch, CmdBreak, CmdRun, CmdContinue, CmdStep, CmdNext,
		CmdFinish, CmdXBT, CmdXFrame, CmdXList, CmdXVars, CmdXBreak,
		CmdXDel, CmdStats, CmdDisconnect, CmdBatch,
	}
}

// KnownCommand reports whether cmd is part of the protocol.
func KnownCommand(cmd string) bool {
	for _, c := range Commands() {
		if c == cmd {
			return true
		}
	}
	return false
}

// MaxFrameBytes bounds one encoded frame (a stats snapshot is the
// largest legitimate frame; 4 MiB leaves two orders of magnitude slack).
const MaxFrameBytes = 4 << 20

// Args carries a request's arguments. One flat struct instead of
// per-command payload types: the protocol has three argument shapes
// (a build name, a location/id spec, a variable name) and a flat struct
// keeps the frame self-describing in a transcript.
type Args struct {
	// Example names the build to launch (an examplebuilds pipeline name
	// on the stock server). Launch only.
	Example string `json:"example,omitempty"`
	// Spec is a location or id argument: "file:line" for break/xbreak,
	// a breakpoint id for xdel, a frame number for xframe.
	Spec string `json:"spec,omitempty"`
	// Name is the extended-variable name for xvars ("" lists them).
	Name string `json:"name,omitempty"`
	// Batch is the sub-command list of a batch request (batch only).
	Batch []SubRequest `json:"batch,omitempty"`
}

// SubRequest is one sub-command of a batch request: the same command
// and argument shapes as a standalone request, minus the framing.
// Launch, disconnect, stats and nested batch are not allowed as
// sub-commands.
type SubRequest struct {
	Command   string `json:"command"`
	Arguments *Args  `json:"arguments,omitempty"`
}

// SubResult is one sub-command's outcome inside a batch response.
// Failures are isolated per sub-command: a batch response is Success
// as a whole whenever the batch itself executed, and each SubResult
// reports its own command's fate exactly as a standalone response
// would (Success + Output, or !Success + Message).
type SubResult struct {
	Success bool   `json:"success"`
	Message string `json:"message,omitempty"` // error text when !Success
	Output  string `json:"output,omitempty"`
}

// Body carries a response's or event's payload.
type Body struct {
	// Output is the command's debugger transcript (responses), or the
	// debuggee output chunk (output events).
	Output string `json:"output,omitempty"`
	// Reason is the stop reason on stopped events: "breakpoint",
	// "step", "watchpoint", "fault", "exited", "none".
	Reason string `json:"reason,omitempty"`
	// Exited reports on stopped events that the debuggee is done.
	Exited bool `json:"exited,omitempty"`
	// Session is the server-side debug session ID (launch responses).
	Session int64 `json:"session,omitempty"`
	// Dropped is the cumulative count of events this connection has shed
	// under backpressure, attached to every event so a client can detect
	// gaps without another round trip.
	Dropped int64 `json:"dropped,omitempty"`
	// Results carries the per-sub-command outcomes of a batch response,
	// in request order, one entry per SubRequest.
	Results []SubResult `json:"results,omitempty"`
}

// Frame is one protocol message. Type selects which fields are
// meaningful: requests carry Command/Arguments, responses carry
// RequestSeq/Success/Message/Body, events carry Event/Body.
type Frame struct {
	Seq  int64  `json:"seq"`
	Type string `json:"type"`

	// Request fields.
	Command   string `json:"command,omitempty"`
	Arguments *Args  `json:"arguments,omitempty"`

	// Response fields.
	RequestSeq int64  `json:"request_seq,omitempty"`
	Success    bool   `json:"success,omitempty"`
	Message    string `json:"message,omitempty"` // error text when !Success

	// Event fields.
	Event string `json:"event,omitempty"`

	Body *Body `json:"body,omitempty"`
}

// Request builds a request frame.
func Request(seq int64, command string, args *Args) *Frame {
	return &Frame{Seq: seq, Type: TypeRequest, Command: command, Arguments: args}
}

// Response builds a successful response to req.
func Response(seq int64, req *Frame, body *Body) *Frame {
	return &Frame{Seq: seq, Type: TypeResponse, Command: req.Command,
		RequestSeq: req.Seq, Success: true, Body: body}
}

// ErrorResponse builds a failed response to req.
func ErrorResponse(seq int64, req *Frame, err error) *Frame {
	return &Frame{Seq: seq, Type: TypeResponse, Command: req.Command,
		RequestSeq: req.Seq, Success: false, Message: err.Error()}
}

// Event builds an event frame.
func Event(seq int64, name string, body *Body) *Frame {
	return &Frame{Seq: seq, Type: TypeEvent, Event: name, Body: body}
}

// Encoder writes frames as newline-delimited JSON. It does no locking:
// callers that interleave writers (the server's response path and event
// queue) serialise around it.
type Encoder struct {
	w io.Writer
}

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode writes one frame and its newline terminator.
func (e *Encoder) Encode(f *Frame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	if len(b)+1 > MaxFrameBytes {
		return fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte limit", len(b)+1, MaxFrameBytes)
	}
	b = append(b, '\n')
	_, err = e.w.Write(b)
	return err
}

// Decoder reads newline-delimited frames. Blank lines are skipped; a
// line over MaxFrameBytes or one that is not a JSON frame is an error.
type Decoder struct {
	sc *bufio.Scanner
}

// NewDecoder returns a decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), MaxFrameBytes)
	return &Decoder{sc: sc}
}

// Decode reads the next frame. It returns io.EOF at a clean end of
// stream and a descriptive error on oversized or malformed input.
func (d *Decoder) Decode() (*Frame, error) {
	for d.sc.Scan() {
		line := d.sc.Bytes()
		if len(trimSpace(line)) == 0 {
			continue
		}
		f := &Frame{}
		if err := json.Unmarshal(line, f); err != nil {
			return nil, fmt.Errorf("wire: malformed frame: %w", err)
		}
		if f.Type == "" {
			return nil, fmt.Errorf("wire: frame missing type")
		}
		return f, nil
	}
	if err := d.sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, fmt.Errorf("wire: frame exceeds the %d-byte limit", MaxFrameBytes)
		}
		return nil, err
	}
	return nil, io.EOF
}

// trimSpace is bytes.TrimSpace for the ASCII whitespace JSON framing can
// produce, avoiding the bytes import for one call.
func trimSpace(b []byte) []byte {
	lo, hi := 0, len(b)
	for lo < hi && (b[lo] == ' ' || b[lo] == '\t' || b[lo] == '\r' || b[lo] == '\n') {
		lo++
	}
	for hi > lo && (b[hi-1] == ' ' || b[hi-1] == '\t' || b[hi-1] == '\r' || b[hi-1] == '\n') {
		hi--
	}
	return b[lo:hi]
}
