package wire

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"
)

// maxBufferedEvents bounds the events a Client holds between Do calls.
// Like the server's queue the client sheds oldest-first: a client that
// never drains events must not grow without bound either.
const maxBufferedEvents = 1024

// Client is a minimal blocking protocol client: one request in flight at
// a time, asynchronous events buffered between calls. It is the client
// the load harness simulates thousands of, and the reference for writing
// one in any other language — the whole protocol is Do plus Events.
//
// A Client is not safe for concurrent use; the protocol's per-connection
// session is single-threaded by design (a debugger has one command
// stream).
type Client struct {
	rwc io.ReadWriteCloser
	bw  *bufio.Writer
	enc *Encoder
	dec *Decoder
	seq int64

	events  []*Frame
	dropped int64
}

// Dial connects to a d2xserve address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	return NewClient(conn), nil
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established byte stream (a net.Conn, one end of a
// net.Pipe) in a protocol client.
func NewClient(rwc io.ReadWriteCloser) *Client {
	bw := bufio.NewWriter(rwc)
	return &Client{rwc: rwc, bw: bw, enc: NewEncoder(bw), dec: NewDecoder(rwc)}
}

// Do sends one request and blocks until its response arrives, buffering
// any events that precede it. A transport or decode error is returned as
// such; a response with Success == false is returned as *RemoteError.
func (c *Client) Do(command string, args *Args) (*Frame, error) {
	c.seq++
	req := Request(c.seq, command, args)
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	for {
		f, err := c.dec.Decode()
		if err != nil {
			return nil, err
		}
		switch f.Type {
		case TypeEvent:
			c.buffer(f)
		case TypeResponse:
			if f.RequestSeq != req.Seq {
				return nil, fmt.Errorf("wire: response for request %d while waiting on %d", f.RequestSeq, req.Seq)
			}
			if !f.Success {
				return f, &RemoteError{Command: command, Message: f.Message}
			}
			return f, nil
		default:
			return nil, fmt.Errorf("wire: unexpected frame type %q from server", f.Type)
		}
	}
}

// DoBatch sends N sub-commands as one batch request and returns the
// per-sub-command results in order. The error covers the batch itself
// (transport failure, or the server rejecting the whole request);
// individual sub-command failures land in their SubResult.
func (c *Client) DoBatch(subs []SubRequest) ([]SubResult, error) {
	f, err := c.Do(CmdBatch, &Args{Batch: subs})
	if err != nil {
		return nil, err
	}
	if f.Body == nil || len(f.Body.Results) != len(subs) {
		got := 0
		if f.Body != nil {
			got = len(f.Body.Results)
		}
		return nil, fmt.Errorf("wire: batch of %d sub-commands got %d results", len(subs), got)
	}
	return f.Body.Results, nil
}

func (c *Client) buffer(f *Frame) {
	if len(c.events) >= maxBufferedEvents {
		copy(c.events, c.events[1:])
		c.events = c.events[:len(c.events)-1]
		c.dropped++
	}
	c.events = append(c.events, f)
}

// Events drains and returns the events buffered since the last call.
func (c *Client) Events() []*Frame {
	ev := c.events
	c.events = nil
	return ev
}

// DroppedLocally reports how many buffered events the client itself shed
// (distinct from Body.Dropped, which counts server-side sheds).
func (c *Client) DroppedLocally() int64 { return c.dropped }

// Close closes the underlying stream.
func (c *Client) Close() error { return c.rwc.Close() }

// RemoteError is a server-side command failure: the request was
// transported and executed, and the server said no.
type RemoteError struct {
	Command string
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: %s: %s", e.Command, e.Message)
}
