package d2xvet

// Fixture-test harness, analysistest-style: a fixture directory under
// testdata/src/<pass> holds compilable Go files whose flagged lines
// carry `// want "regexp"` comments. The harness loads the fixture
// through the real loader, runs the pass, and diffs findings against
// expectations in both directions, so fixtures prove both that the bad
// shape is flagged and that the clean variant stays silent.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// wantMarker introduces an expectation comment. Multiple quoted
// regexps on one line expect multiple findings there.
const wantMarker = "// want "

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// fixtureExpectations scans the .go files of dir for want comments.
func fixtureExpectations(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, wantMarker)
			if idx < 0 {
				continue
			}
			rest := strings.TrimSpace(line[idx+len(wantMarker):])
			for rest != "" {
				if rest[0] != '"' {
					return nil, fmt.Errorf("%s:%d: malformed want comment (expected quoted regexp): %s", e.Name(), i+1, rest)
				}
				// Find the end of the Go-quoted string.
				end := 1
				for end < len(rest) {
					if rest[end] == '\\' {
						end += 2
						continue
					}
					if rest[end] == '"' {
						break
					}
					end++
				}
				if end >= len(rest) {
					return nil, fmt.Errorf("%s:%d: unterminated want regexp", e.Name(), i+1)
				}
				quoted := rest[:end+1]
				rest = strings.TrimSpace(rest[end+1:])
				raw, err := strconv.Unquote(quoted)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %s: %v", e.Name(), i+1, quoted, err)
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, raw, err)
				}
				out = append(out, &expectation{file: e.Name(), line: i + 1, re: re, raw: raw})
			}
		}
	}
	return out, nil
}

// FixtureMismatches loads the fixture package at dir (inside the module
// rooted at moduleRoot), runs the analyzers over it, and returns one
// message per mismatch: an unexpected finding, or a want comment no
// finding matched. An empty slice means the fixture passed.
func FixtureMismatches(moduleRoot, dir string, analyzers []*Analyzer) ([]string, error) {
	l, err := NewLoader(moduleRoot)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadDir(abs)
	if err != nil {
		return nil, err
	}
	facts := NewFacts(pkgs)
	diags, err := RunPackages(l.Root, pkgs, analyzers, facts)
	if err != nil {
		return nil, err
	}
	want, err := fixtureExpectations(abs)
	if err != nil {
		return nil, err
	}
	var mismatches []string
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		matched := false
		for _, w := range want {
			if w.hit || w.file != base || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			mismatches = append(mismatches, fmt.Sprintf("unexpected finding at %s:%d: [%s] %s", base, d.Pos.Line, d.Pass, d.Message))
		}
	}
	for _, w := range want {
		if !w.hit {
			mismatches = append(mismatches, fmt.Sprintf("no finding matched want %q at %s:%d", w.raw, w.file, w.line))
		}
	}
	sort.Strings(mismatches)
	return mismatches, nil
}
