// Package obs mirrors the API shapes of the repository's observability
// layer for the obssample fixture (the pass matches obs packages by
// path suffix, so this stand-in exercises the same rules without
// annotating the real package from testdata).
package obs

// Histogram mirrors the real log2 histogram's observation API.
type Histogram struct{ n int64 }

// Observe records a wall-clock duration (the expensive variant).
func (h *Histogram) Observe(ns int64) { h.n += ns }

// ObserveNS records a monotonic duration.
func (h *Histogram) ObserveNS(ns int64) { h.n += ns }

// Since records wall-clock elapsed time.
func (h *Histogram) Since(start int64) { h.n += start }

// SinceNS records monotonic elapsed time.
func (h *Histogram) SinceNS(start int64) { h.n += start }

// NowNanos is the cheap monotonic clock read.
func NowNanos() int64 { return 0 }

// Now is the expensive wall clock read.
func Now() int64 { return 0 }

// WallNanos derives a wall stamp from a monotonic one — pure
// arithmetic, no clock read.
func WallNanos(ns int64) int64 { return ns }
