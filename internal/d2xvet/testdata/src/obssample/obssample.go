// Fixture for the obssample pass: wall-clock and unsampled histogram
// observations in hot-path functions, against the sampled idioms.
package obssample

import "d2x/internal/d2xvet/testdata/src/obssample/obs"

var lat obs.Histogram

var tick int64

const sampleEvery = 8

//d2x:hotpath
func wallClock(start int64) {
	lat.Since(start) // want "wall-clock obs call Since in hot-path function wallClock"
}

//d2x:hotpath
func wallObserve(ns int64) {
	lat.Observe(ns) // want "wall-clock obs call Observe in hot-path function wallObserve"
}

//d2x:hotpath
func wallRead() int64 {
	return obs.Now() // want "wall-clock read Now in hot-path function wallRead"
}

// Clean: WallNanos is arithmetic over a monotonic stamp, not a clock
// read — the sanctioned way to wall-stamp an event on a hot path.
//
//d2x:hotpath
func wallDerive(start int64) int64 {
	return obs.WallNanos(start)
}

//d2x:hotpath
func unsampled(start int64) {
	lat.SinceNS(start) // want "unsampled histogram observation Histogram.SinceNS in hot-path function unsampled"
}

//d2x:noalloc
func unsampledNoalloc(start int64) {
	lat.ObserveNS(start) // want "unsampled histogram observation Histogram.ObserveNS in hot-path function unsampledNoalloc"
}

// Clean: the stageTick modulo idiom.
//
//d2x:hotpath
func sampled(start int64) {
	tick++
	if tick%sampleEvery == 0 {
		lat.SinceNS(start)
	}
}

// Clean: the sentinel form — t0 is only non-zero when the sampled
// branch captured it.
//
//d2x:hotpath
func sentinel(t0 int64) {
	if t0 != 0 {
		lat.ObserveNS(obs.NowNanos() - t0)
	}
}

// Clean: cold functions may use the wall-clock variants.
func cold(start int64) {
	lat.Since(start)
	_ = obs.Now()
}
