// Fixture for the atomicfield pass: copies of atomic-bearing values,
// non-atomic field access, and post-construction writes to
// //d2x:immutable types.
package atomicfield

import "sync/atomic"

type holder struct {
	ptr atomic.Pointer[int]
	n   atomic.Int64
}

func copies(h *holder) {
	c := *h // want "assignment copies a value containing sync/atomic"
	_ = c
}

func passes(h holder) int64 { return h.n.Load() }

func callCopies(h *holder) {
	_ = passes(*h) // want "call copies a value containing sync/atomic"
}

func returns(h *holder) holder {
	return *h // want "return copies a value containing sync/atomic"
}

func ranges(hs []holder) {
	for _, h := range hs { // want "range copies a value containing sync/atomic"
		_ = h
	}
}

func tears(h *holder) {
	x := h.n // want "assignment copies a value containing sync/atomic" "field h.n of atomic type sync/atomic.Int64 accessed without its atomic API"
	_ = x
}

// The atomic API: method calls and address-taking are clean.
func atomically(h *holder) int64 {
	p := &h.ptr
	p.Store(nil)
	return h.n.Load()
}

func sharesByPointer(h *holder) *holder { return h }

//d2x:immutable
type tables struct {
	index map[int]int
	n     int
}

//d2x:ctor tables
func newTables(n int) *tables {
	t := &tables{index: map[int]int{}}
	t.n = n
	t.index[n] = 1
	return t
}

func mutates(t *tables) {
	t.n = 7 // want "write to field t.n of //d2x:immutable type tables outside its //d2x:ctor functions"
}

func mutatesDeep(t *tables) {
	t.index[3] = 4 // want "write to field t.index of //d2x:immutable type tables outside its //d2x:ctor functions"
}

func reads(t *tables) int { return t.n }
