// Fixture for the pinpair pass: Checkout/Checkin pairing across
// straight-line, branching, error-return, loop and goroutine shapes.
package pinpair

type state struct{ n int }

type registry struct{}

func (r *registry) Checkout(id int) *state { return &state{} }

func (r *registry) Checkin(id int, s *state) {}

func use(s *state) {}

// The repo idiom: pin with defer immediately after Checkout.
func deferred(r *registry) {
	s := r.Checkout(1)
	defer r.Checkin(1, s)
	use(s)
}

// Deferred closure form.
func deferredClosure(r *registry) {
	s := r.Checkout(1)
	defer func() {
		use(s)
		r.Checkin(1, s)
	}()
}

// Undeferred but paired on every path: accepted (panic-unsafe, but the
// pass checks paths, not panics).
func allPaths(r *registry, cond bool) {
	s := r.Checkout(1)
	if cond {
		use(s)
		r.Checkin(1, s)
		return
	}
	r.Checkin(1, s)
}

// The classic leak: an early error return skips the Checkin.
func leaksOnError(r *registry, err error) error {
	s := r.Checkout(1) // want "Checkout is not matched by a Checkin on every path out of leaksOnError"
	if err != nil {
		return err
	}
	r.Checkin(1, s)
	return nil
}

// No Checkin at all.
func leaksEntirely(r *registry) {
	_ = r.Checkout(1) // want "Checkout is not matched by a Checkin on every path out of leaksEntirely"
}

// A Checkin only inside a loop body does not cover the zero-iteration
// path.
func leaksOnEmptyLoop(r *registry, xs []int) {
	s := r.Checkout(1) // want "Checkout is not matched by a Checkin on every path out of leaksOnEmptyLoop"
	for range xs {
		r.Checkin(1, s)
	}
}

// A Checkin in a spawned goroutine is asynchronous and does not
// discharge the calling path.
func leaksAsync(r *registry) {
	s := r.Checkout(1) // want "Checkout is not matched by a Checkin on every path out of leaksAsync"
	go func() {
		r.Checkin(1, s)
	}()
}

// Checkout in an inner block is still tracked.
func innerBlock(r *registry, cond bool) {
	if cond {
		s := r.Checkout(2) // want "Checkout is not matched by a Checkin on every path out of innerBlock"
		use(s)
	}
}

// Both branches pair up: clean even when the Checkin differs per branch.
func branchesPaired(r *registry, cond bool) {
	s := r.Checkout(1)
	if cond {
		r.Checkin(1, s)
	} else {
		r.Checkin(1, s)
	}
}
