// Fixture for the lockscope pass: blocking operations, registry
// re-entry and nested acquisition inside mutex-held regions, plus the
// clean shapes (release-then-block, condition variables).
package lockscope

import (
	"sync"
	"time"
)

type shard struct {
	mu sync.Mutex
	ch chan int
	n  int
}

type reg struct{}

func (r *reg) Checkout(id int) int { return id }

func sleeps(s *shard) {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while s.mu is held"
	s.mu.Unlock()
}

func sends(s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want "channel send while s.mu is held"
}

func receives(s *shard) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive while s.mu is held"
}

func selects(s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select while s.mu is held"
	case <-s.ch:
	default:
	}
}

func nests(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want "acquires b.mu while a.mu is held"
	b.mu.Unlock()
	a.mu.Unlock()
}

func reenters(s *shard, r *reg) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = r.Checkout(1) // want "registry Checkout while s.mu is held"
}

func waits(s *shard, wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want "sync.WaitGroup.Wait while s.mu is held"
	s.mu.Unlock()
}

// Clean: blocking work happens after the release.
func releasesFirst(s *shard, r *reg) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- s.n
	time.Sleep(time.Millisecond)
	_ = r.Checkout(1)
}

// Clean: waiting on a condition variable with its lock held is the
// sync.Cond contract, not a lock-scope violation.
func condWait(s *shard, c *sync.Cond) {
	c.L.Lock()
	for s.n == 0 {
		c.Wait()
	}
	s.n--
	c.L.Unlock()
}

// Clean: re-acquiring the same lock expression in a sibling branch is
// not a nested acquisition.
func branches(s *shard, cond bool) {
	if cond {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	} else {
		s.mu.Lock()
		s.n--
		s.mu.Unlock()
	}
}

// Clean: a goroutine body runs without the caller's locks, and its own
// region is tracked separately.
func spawns(s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1
	}()
}
