// Fixture for the noalloc pass: flagged and clean variants of every
// allocation shape the pass detects, plus the error-path excuses and
// the //d2xvet:ignore escape hatch.
package noalloc

import "errors"

//d2x:noalloc
func strictAppend(dst []int) []int {
	dst = append(dst, 1) // want "append in //d2x:noalloc function strictAppend"
	return dst
}

// //d2x:noalloc amortized permits append: pooled buffers grow to steady
// state and then stop allocating.
//
//d2x:noalloc amortized
func amortizedAppend(dst []byte) []byte {
	return append(dst, 'x')
}

//d2x:noalloc
func makes() []int {
	return make([]int, 4) // want "make in //d2x:noalloc function makes allocates"
}

//d2x:noalloc
func news() *int {
	return new(int) // want "new in //d2x:noalloc function news allocates"
}

//d2x:noalloc
func sliceLit() []int {
	return []int{1, 2} // want "slice literal in //d2x:noalloc function sliceLit allocates"
}

//d2x:noalloc
func heapLit() *point {
	return &point{1, 2} // want "&composite literal in //d2x:noalloc function heapLit heap-allocates"
}

type point struct{ x, y int }

// Value composite literals are stack material and stay clean.
//
//d2x:noalloc
func valueLit() point {
	return point{1, 2}
}

//d2x:noalloc
func boxes(v int) {
	sink(v) // want "argument boxes int into interface any in //d2x:noalloc function boxes"
}

//d2x:noalloc
func sink(v any) { _ = v }

//d2x:noalloc
func callsCold() {
	cold() // want "callee is neither //d2x:noalloc nor on the alloc-free allowlist"
}

func cold() {}

//d2x:noalloc
func callsHot() {
	hot()
}

//d2x:noalloc
func hot() {}

//d2x:noalloc
func concat(a, b string) string {
	return a + b // want "string concatenation in //d2x:noalloc function concat"
}

//d2x:noalloc
func converts(b []byte) string {
	return string(b) // want "conversion string in //d2x:noalloc function converts copies its operand"
}

//d2x:noalloc
func closes(n int) func() int {
	return func() int { return n } // want "function literal in //d2x:noalloc function closes allocates its closure"
}

//d2x:noalloc
func mapWrite(m map[int]int) {
	m[1] = 2 // want "map write in //d2x:noalloc function mapWrite may grow the map"
}

// The error path is excused: a return whose final error result is
// non-nil only runs when the steady state is already over.
//
//d2x:noalloc
func errPath(x *int) (int, error) {
	if x == nil {
		return 0, errors.New("nil input")
	}
	return *x, nil
}

// Allocations under an `if x != nil` guard are the error path too.
//
//d2x:noalloc
func errGuard(err error) {
	if err != nil {
		cold()
	}
}

// A reasoned //d2xvet:ignore suppresses a finding.
//
//d2x:noalloc
func warmup() []int {
	return make([]int, 8) //d2xvet:ignore noalloc pool warm-up; steady state measured at zero allocs
}
