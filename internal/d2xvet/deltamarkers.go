package d2xvet

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Delta-marker lint core, migrated from internal/d2xverify. The
// D2X:BEGIN/END/REMOVED markers feed internal/loc's Tables 3/4
// accounting, which trusts them blindly — a malformed marker silently
// skews a published number.

const (
	markBegin   = "D2X:BEGIN"
	markEnd     = "D2X:END"
	markRemoved = "D2X:REMOVED"
)

// MarkerComponentDirs are the directories internal/loc counts for the
// Tables 3/4 deltas — the only places marker well-formedness changes a
// published number.
func MarkerComponentDirs() []string {
	return []string{
		"internal/graphit",
		"internal/buildit",
		"internal/d2x/d2xc",
		"internal/d2x/d2xenc",
		"internal/d2x/d2xr",
		"internal/d2x/session",
		"internal/d2x/macros",
	}
}

// MarkerSourceFindings lints the delta markers of one Go source file,
// mirroring internal/loc's CountSource semantics exactly: any line
// containing the BEGIN substring opens a hunk and any line containing
// the END substring closes one, so a marker substring in an unexpected
// place silently skews the published delta.
func MarkerSourceFindings(file, src string) []ArchFinding {
	var out []ArchFinding
	errf := func(line int, hint, format string, args ...any) {
		out = append(out, ArchFinding{File: file, Line: line, Message: fmt.Sprintf(format, args...), Hint: hint})
	}
	warnf := func(line int, hint, format string, args ...any) {
		out = append(out, ArchFinding{File: file, Line: line, Warning: true, Message: fmt.Sprintf(format, args...), Hint: hint})
	}
	open := 0
	openLine := 0
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		hasBegin := strings.Contains(line, markBegin)
		hasEnd := !hasBegin && strings.Contains(line, markEnd)
		switch {
		case hasBegin:
			if !strings.HasPrefix(line, "// "+markBegin) {
				errf(i+1, "put the marker on its own `// D2X:BEGIN <label>` comment line",
					"marker %q embedded in a non-marker line; the LoC counter will misclassify it", markBegin)
			} else if strings.TrimSpace(strings.TrimPrefix(line, "// "+markBegin)) == "" {
				warnf(i+1, "label the hunk, e.g. `// D2X:BEGIN frontier-var`",
					"unlabelled %s hunk", markBegin)
			}
			if open > 0 {
				errf(i+1, "close the previous hunk first; hunks cannot nest",
					"%s inside the hunk opened at line %d", markBegin, openLine)
			} else {
				openLine = i + 1
			}
			open++
		case hasEnd:
			if !strings.HasPrefix(line, "// "+markEnd) {
				errf(i+1, "put the marker on its own `// D2X:END <label>` comment line",
					"marker %q embedded in a non-marker line; the LoC counter will misclassify it", markEnd)
			}
			if open == 0 {
				errf(i+1, "remove the stray marker or add the missing D2X:BEGIN",
					"%s without a matching %s", markEnd, markBegin)
			} else {
				open--
			}
		case strings.Contains(line, markRemoved):
			// `// D2X:REMOVED n` records deleted lines (DESIGN.md §5); the
			// count must be a positive integer for the −n column to add up.
			rest := ""
			if idx := strings.Index(line, markRemoved); idx >= 0 {
				rest = strings.TrimSpace(line[idx+len(markRemoved):])
			}
			count := rest
			if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
				count = rest[:sp]
			}
			if n, err := strconv.Atoi(count); err != nil || n <= 0 {
				errf(i+1, "write `// D2X:REMOVED <n>` with the number of deleted lines",
					"%s marker without a positive line count (got %q)", markRemoved, rest)
			}
		}
	}
	if open > 0 {
		errf(openLine, "add the missing `// D2X:END` before the end of the file",
			"hunk opened at line %d is never closed", openLine)
	}
	return out
}

// BalancedMarkerHunks returns the number of well-formed hunks in src
// when the lint reports no errors, and -1 otherwise.
func BalancedMarkerHunks(file, src string) int {
	for _, f := range MarkerSourceFindings(file, src) {
		if !f.Warning {
			return -1
		}
	}
	return strings.Count(src, markBegin)
}

// MarkerFindings runs the marker lint over every file the LoC accounting
// reads: non-test Go files in the counted component directories,
// excluding d2x_*.go files (those are attributed whole, so markers
// inside them never reach the counter).
func MarkerFindings(root string) ([]ArchFinding, error) {
	var out []ArchFinding
	for _, dir := range MarkerComponentDirs() {
		full := filepath.Join(root, dir)
		entries, err := os.ReadDir(full)
		if err != nil {
			continue // component not built yet; loc reports this separately
		}
		var names []string
		for _, e := range entries {
			n := e.Name()
			if e.IsDir() || !strings.HasSuffix(n, ".go") ||
				strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, "d2x_") {
				continue
			}
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			data, err := os.ReadFile(filepath.Join(full, n))
			if err != nil {
				return nil, err
			}
			out = append(out, MarkerSourceFindings(filepath.ToSlash(filepath.Join(dir, n)), string(data))...)
		}
	}
	return out, nil
}

// MarkersAnalyzer is the repo-level delta-marker pass.
var MarkersAnalyzer = &Analyzer{
	Name: "arch/markers",
	Doc:  "D2X delta markers in counted components are well-formed",
	Repo: true,
	Run: func(p *Pass) error {
		findings, err := MarkerFindings(p.Root)
		if err != nil {
			return err
		}
		reportArch(p, findings)
		return nil
	},
}
