package d2xvet

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked analysis unit: a package's non-test and
// in-package test files together (external _test packages form their own
// unit).
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader type-checks packages of the enclosing module using only the
// standard library: repository packages are parsed and checked from
// source, standard-library imports resolve through go/importer's source
// importer (the module has no third-party dependencies, so nothing else
// is ever imported). One Loader memoizes its import graph, so loading
// the whole tree type-checks each dependency once.
type Loader struct {
	Root   string // module root (directory containing go.mod)
	Module string // module path from go.mod

	fset     *token.FileSet
	ctx      build.Context
	std      types.Importer
	imported map[string]*types.Package // memoized import-mode repo packages
	loading  map[string]bool           // import cycle guard
}

// NewLoader returns a loader for the module rooted at root (resolved
// upward to the nearest go.mod when root is inside the module).
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	dir := root
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			root = dir
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, fmt.Errorf("d2xvet: no go.mod at or above %s", root)
		}
		dir = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Root:     root,
		Module:   mod,
		fset:     fset,
		ctx:      build.Default,
		imported: map[string]*types.Package{},
		loading:  map[string]bool{},
	}
	l.std = importer.ForCompiler(fset, "source", nil)
	return l, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("d2xvet: no module line in %s", path)
}

// Fset returns the loader's file set (shared across every package it
// loads, so positions compare across units).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import resolves one import path: module-local packages load from
// source under Root, "unsafe" maps to types.Unsafe, and everything else
// (the standard library) delegates to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		return l.importLocal(path)
	}
	return l.std.Import(path)
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// importLocal type-checks a module-local package in import mode (no test
// files), memoized.
func (l *Loader) importLocal(path string) (*types.Package, error) {
	if pkg, ok := l.imported[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("d2xvet: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	files, _, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("d2xvet: no Go files in %s", dir)
	}
	pkg, _, err := l.check(path, files, nil)
	if err != nil {
		return nil, err
	}
	l.imported[path] = pkg
	return pkg, nil
}

// matchFile applies the build context's file filtering (build tags,
// GOOS/GOARCH suffixes) to one file name.
func (l *Loader) matchFile(dir, name string) bool {
	ok, err := l.ctx.MatchFile(dir, name)
	return err == nil && ok
}

// parseDir parses the buildable Go files of one directory, split into
// the primary package's files and (when withTests) the external _test
// package's files. In-package test files join the primary group.
func (l *Loader) parseDir(dir string, withTests bool) (primary, external []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if !withTests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		if !l.matchFile(dir, n) {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	byPkg := map[string][]*ast.File{}
	var order []string
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		name := f.Name.Name
		if _, ok := byPkg[name]; !ok {
			order = append(order, name)
		}
		byPkg[name] = append(byPkg[name], f)
	}
	if len(order) == 0 {
		return nil, nil, nil
	}
	// The primary package is the non-_test name; a directory holding
	// only an external test package (none in this repo) would make that
	// name primary.
	primaryName := order[0]
	for _, name := range order {
		if !strings.HasSuffix(name, "_test") {
			primaryName = name
			break
		}
	}
	for name, files := range byPkg {
		switch {
		case name == primaryName:
			primary = append(primary, files...)
		case name == primaryName+"_test":
			external = append(external, files...)
		}
	}
	sortFiles(l.fset, primary)
	sortFiles(l.fset, external)
	return primary, external, nil
}

func sortFiles(fset *token.FileSet, files []*ast.File) {
	sort.Slice(files, func(i, j int) bool {
		return fset.Position(files[i].Package).Filename < fset.Position(files[j].Package).Filename
	})
}

// check type-checks one file group under the given import path.
func (l *Loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, *types.Info, error) {
	if info == nil {
		info = newInfo()
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", l.ctx.GOARCH),
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("d2xvet: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// LoadDir loads the analysis units of one directory: the package with
// its in-package test files, plus the external _test package when one
// exists.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("d2xvet: %s is outside the module", dir)
	}
	path := l.Module
	if rel != "." {
		path = l.Module + "/" + filepath.ToSlash(rel)
	}
	primary, external, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	var out []*Package
	if len(primary) > 0 {
		pkg, info, err := l.check(path, primary, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{ImportPath: path, Dir: dir, Fset: l.fset, Files: primary, Types: pkg, Info: info})
	}
	if len(external) > 0 {
		pkg, info, err := l.check(path+"_test", external, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{ImportPath: path + "_test", Dir: dir, Fset: l.fset, Files: external, Types: pkg, Info: info})
	}
	return out, nil
}

// GoDirs returns every directory under root holding buildable Go files,
// skipping testdata, hidden and underscore-prefixed directories.
func GoDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasPrefix(d.Name(), ".") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadAll loads every analysis unit of the module.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs, err := GoDirs(l.Root)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkgs, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkgs...)
	}
	return out, nil
}
