package d2xvet

import (
	"go/ast"
	"go/types"
	"strings"
)

// funcInfo is one analyzable function body: a declaration or a literal,
// with its annotation key (literals have none; their markers resolve by
// position through Facts.LitMarkers).
type funcInfo struct {
	key  string // "" for function literals
	name string // display name for diagnostics
	decl *ast.FuncDecl
	lit  *ast.FuncLit
	body *ast.BlockStmt
}

// eachFunc yields every function declaration and literal of the pass's
// files (skipping bodyless declarations).
func (p *Pass) eachFunc(fn func(fi funcInfo)) {
	path := p.Pkg.Path()
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			fn(funcInfo{key: declKey(path, d), name: d.Name.Name, decl: d, body: d.Body})
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				fn(funcInfo{name: "func literal", lit: lit, body: lit.Body})
			}
			return true
		})
	}
}

// markers returns the function's annotation markers: declaration doc
// markers via Facts, literal markers via the line-above comment.
func (p *Pass) markers(fi funcInfo) (noalloc, amortized, hotpath bool) {
	if fi.decl != nil {
		return p.Facts.NoAlloc(fi.key), p.Facts.NoAllocAmortized(fi.key), p.Facts.HotPath(fi.key)
	}
	ms := p.Facts.LitMarkers(p.Fset.Position(fi.lit.Pos()))
	return litHas(ms, markNoAlloc), litHasWord(ms, markNoAlloc, "amortized"), litHas(ms, markHotPath)
}

// inspectStack walks root keeping the parent chain; fn sees each node
// with its ancestors, outermost first. Return false to skip children.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// staticCallee resolves a call to its statically-known *types.Func
// (package function or concrete method). Returns nil for conversions,
// builtins, func-value and interface-method calls it cannot pin down.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// builtinName returns the name of a builtin being called ("append",
// "make", ...), or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := info.Uses[id].(*types.Builtin); ok {
		return id.Name
	}
	return ""
}

// exprString renders the identifier/selector spine of an expression
// ("r.svc", "sh.mu"); non-spine parts render as "?".
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[?]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	default:
		return "?"
	}
}

// litHasWord reports whether any marker is `want <word>` (plus optional
// trailing text), e.g. "//d2x:noalloc amortized".
func litHasWord(markers []string, want, word string) bool {
	for _, m := range markers {
		if rest, ok := strings.CutPrefix(m, want+" "); ok {
			fields := strings.Fields(rest)
			if len(fields) > 0 && fields[0] == word {
				return true
			}
		}
	}
	return false
}

// namedOf unwraps pointers and aliases to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isObsPkg reports whether a package path is the repo's obs package (or
// a fixture-local equivalent named obs).
func isObsPkg(path string) bool {
	return path == "obs" || strings.HasSuffix(path, "/obs")
}
