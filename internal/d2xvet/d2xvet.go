// Package d2xvet is the repository's own static-analysis suite: a set of
// passes that encode, as compiler-checked diagnostics, the invariants the
// concurrency and performance work of PRs 2–7 otherwise enforces only
// dynamically (-race regression tests, AllocsPerRun budgets, load gates).
//
// The motivating failure class is the one "Who's Debugging the
// Debuggers?" documents for debug-info producers: infrastructure that
// exists to find bugs is where correctness bugs hide, because its own
// invariants are checked last. This repo's service layer now carries
// several such invariants — atomically published immutable tables, the
// refcounted Checkout/Checkin pin protocol, the allocation-free steady
// state of the command path, shard-lock scope discipline — and every one
// of them fails silently at first: a torn table copy, a leaked pin or a
// stray allocation ships and waits for a -race run or a budget test to
// notice. d2xvet moves those contracts to analysis time.
//
// The suite is built directly on go/parser and go/types (the module has
// no third-party dependencies, so golang.org/x/tools/go/analysis is
// deliberately not used), but mirrors its shape: each pass is an
// *Analyzer with a Run(*Pass) function reporting position-anchored
// diagnostics, a multichecker driver (cmd/d2xvet) runs the suite over
// package patterns, and fixture tests assert findings with // want
// comments, analysistest-style.
//
// Passes:
//
//   - atomicfield: values holding sync/atomic types (or sync locks) are
//     never copied, atomic fields are accessed only through their
//     methods, and types annotated //d2x:immutable are written only by
//     their //d2x:ctor constructors.
//   - pinpair: every session-registry Checkout is matched by a Checkin
//     on all paths out of the function, including early error returns.
//   - noalloc: functions annotated //d2x:noalloc contain no allocating
//     operations and call only other noalloc (or known alloc-free)
//     functions; error paths are excused, everything else needs an
//     inline //d2xvet:ignore with a reason.
//   - lockscope: no blocking operation, registry re-entry or second
//     mutex acquisition while a mutex is held.
//   - obssample: hot-path functions (//d2x:noalloc or //d2x:hotpath)
//     use the cheap monotonic/sampled obs variants, never the
//     wall-clock ones, and gate histogram observations on a sampling
//     branch.
//   - arch/import-graph, arch/markers: the repository architecture
//     lints that previously lived as handwritten walkers in
//     internal/d2xverify, migrated onto this driver (d2xverify still
//     delegates to them, so Build.Verify output is unchanged).
//
// A finding is suppressed by a comment on the flagged line or the line
// above:
//
//	//d2xvet:ignore <pass> <reason>
//
// The reason is mandatory; an ignore without one is itself a finding.
// See DESIGN.md ("Static analysis: the d2xvet pass suite") for the
// annotation grammar.
package d2xvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding: which pass fired, where, and what is wrong.
type Diagnostic struct {
	Pass    string
	Pos     token.Position
	Message string
}

// String renders the diagnostic in file:line:col: tool style.
func (d Diagnostic) String() string {
	if d.Pos.Filename == "" {
		return fmt.Sprintf("[%s] %s", d.Pass, d.Message)
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
}

// Analyzer is one static-analysis pass.
type Analyzer struct {
	// Name is the stable slug diagnostics carry and //d2xvet:ignore
	// directives name (e.g. "noalloc", "arch/markers").
	Name string
	Doc  string
	// Repo marks a repository-level pass: it runs once over the module
	// root (Pass.Root), parse-only, instead of once per type-checked
	// package.
	Repo bool
	Run  func(*Pass) error
}

// Pass carries one analysis unit to an Analyzer.Run: for package-level
// passes a type-checked package, for repo-level passes the tree root.
type Pass struct {
	Analyzer *Analyzer

	// Fset, Files, Pkg, Info describe the type-checked package under
	// analysis (nil/empty for repo-level passes). Files includes
	// in-package _test.go files.
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Facts holds the annotation facts scanned over every loaded
	// package, so passes can resolve markers on functions and types
	// defined outside the package under analysis.
	Facts *Facts

	// Root is the module root directory (repo-level passes and the
	// import-graph pass use it).
	Root string

	diags *[]Diagnostic
}

// Reportf records a finding at a token position of the pass's file set.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportAt(p.Fset.Position(pos), format, args...)
}

// ReportAt records a finding at an explicit position (repo-level passes
// report against files they read themselves).
func (p *Pass) ReportAt(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pass:    p.Analyzer.Name,
		Pos:     pos,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns the full pass suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicFieldAnalyzer,
		PinPairAnalyzer,
		NoAllocAnalyzer,
		LockScopeAnalyzer,
		ObsSampleAnalyzer,
		ImportGraphAnalyzer,
		MarkersAnalyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackages runs every package-level analyzer of the suite over each
// loaded package, and every repo-level analyzer once over root. The
// returned diagnostics are filtered through //d2xvet:ignore directives
// and sorted by position.
func RunPackages(root string, pkgs []*Package, analyzers []*Analyzer, facts *Facts) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Repo {
			p := &Pass{Analyzer: a, Root: root, Facts: facts, diags: &diags}
			if err := a.Run(p); err != nil {
				return nil, fmt.Errorf("d2xvet: pass %s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range pkgs {
			p := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Facts:    facts,
				Root:     root,
				diags:    &diags,
			}
			if err := a.Run(p); err != nil {
				return nil, fmt.Errorf("d2xvet: pass %s over %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	return Filter(diags), nil
}

// ignoreDirective is the comment prefix that suppresses a finding on its
// line or the line below.
const ignoreDirective = "//d2xvet:ignore"

// suppressions caches, per file, line → pass → has-reason for every
// ignore directive in the file.
var suppressions sync.Map // string -> map[int]map[string]bool

func fileSuppressions(filename string) map[int]map[string]bool {
	if v, ok := suppressions.Load(filename); ok {
		return v.(map[int]map[string]bool)
	}
	m := map[int]map[string]bool{}
	data, err := os.ReadFile(filename)
	if err == nil {
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, ignoreDirective)
			if idx < 0 {
				continue
			}
			rest := strings.TrimSpace(line[idx+len(ignoreDirective):])
			pass, reason, _ := strings.Cut(rest, " ")
			if pass == "" {
				continue
			}
			if m[i+1] == nil {
				m[i+1] = map[string]bool{}
			}
			m[i+1][pass] = strings.TrimSpace(reason) != ""
		}
	}
	suppressions.Store(filename, m)
	return m
}

// Filter drops diagnostics suppressed by a //d2xvet:ignore <pass>
// <reason> directive on the reported line or the line above it, and adds
// a finding for directives that name the pass but omit the reason — an
// undocumented suppression is itself a defect.
func Filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	reported := map[string]bool{}
	for _, d := range diags {
		if d.Pos.Filename == "" {
			out = append(out, d)
			continue
		}
		m := fileSuppressions(d.Pos.Filename)
		suppressed := false
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			hasReason, ok := m[line][d.Pass]
			if !ok {
				continue
			}
			if hasReason {
				suppressed = true
				break
			}
			key := fmt.Sprintf("%s:%d:%s", d.Pos.Filename, line, d.Pass)
			if !reported[key] {
				reported[key] = true
				out = append(out, Diagnostic{
					Pass: d.Pass,
					Pos:  token.Position{Filename: d.Pos.Filename, Line: line, Column: 1},
					Message: fmt.Sprintf("d2xvet:ignore %s needs a reason (\"//d2xvet:ignore %s <why>\")",
						d.Pass, d.Pass),
				})
			}
			suppressed = true
			break
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	Sort(out)
	return out
}

// Sort orders diagnostics by file, line, column, then pass name.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
}
