package d2xvet

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

const moduleRoot = "../.."

func runFixture(t *testing.T, name string, a *Analyzer) {
	t.Helper()
	mismatches, err := FixtureMismatches(moduleRoot, filepath.Join("testdata", "src", name), []*Analyzer{a})
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	for _, m := range mismatches {
		t.Error(m)
	}
}

func TestAtomicFieldFixture(t *testing.T) { runFixture(t, "atomicfield", AtomicFieldAnalyzer) }
func TestPinPairFixture(t *testing.T)     { runFixture(t, "pinpair", PinPairAnalyzer) }
func TestNoAllocFixture(t *testing.T)     { runFixture(t, "noalloc", NoAllocAnalyzer) }
func TestLockScopeFixture(t *testing.T)   { runFixture(t, "lockscope", LockScopeAnalyzer) }
func TestObsSampleFixture(t *testing.T)   { runFixture(t, "obssample", ObsSampleAnalyzer) }

// TestSuppressionFilter exercises the //d2xvet:ignore directive
// handling directly: a reasoned directive (same line or line above)
// suppresses, a reason-less directive converts the finding into a
// "needs a reason" diagnostic, and unrelated passes stay unsuppressed.
func TestSuppressionFilter(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n" + // line 1
		"var a = 1 //d2xvet:ignore noalloc pooled buffer, measured zero\n" + // 2
		"var b = 2 //d2xvet:ignore noalloc\n" + // 3
		"//d2xvet:ignore pinpair handed off to the reaper goroutine\n" + // 4
		"var c = 3\n" + // 5
		"var d = 4\n" // 6
	path := filepath.Join(dir, "f.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mk := func(pass string, line int) Diagnostic {
		return Diagnostic{Pass: pass, Pos: token.Position{Filename: path, Line: line, Column: 5}, Message: "finding"}
	}
	got := Filter([]Diagnostic{
		mk("noalloc", 2),   // suppressed: reasoned directive on the line
		mk("noalloc", 3),   // directive without reason: becomes a finding
		mk("pinpair", 5),   // suppressed: reasoned directive on the line above
		mk("noalloc", 6),   // not suppressed
		mk("lockscope", 2), // directive names a different pass
	})
	var msgs []string
	for _, d := range got {
		msgs = append(msgs, d.String())
	}
	if len(got) != 3 {
		t.Fatalf("Filter returned %d diagnostics, want 3:\n%v", len(got), msgs)
	}
	if got[0].Pos.Line != 2 || got[0].Pass != "lockscope" {
		t.Errorf("first surviving diagnostic = %s, want the lockscope finding on line 2", got[0])
	}
	if got[1].Pos.Line != 3 || got[1].Message != `d2xvet:ignore noalloc needs a reason ("//d2xvet:ignore noalloc <why>")` {
		t.Errorf("second surviving diagnostic = %s, want the needs-a-reason finding on line 3", got[1])
	}
	if got[2].Pos.Line != 6 || got[2].Pass != "noalloc" {
		t.Errorf("third surviving diagnostic = %s, want the unsuppressed noalloc finding on line 6", got[2])
	}
}

// TestByName pins the analyzer registry: every pass is addressable by
// the name //d2xvet:ignore directives use.
func TestByName(t *testing.T) {
	for _, name := range []string{"atomicfield", "pinpair", "noalloc", "lockscope", "obssample", "arch/import-graph", "arch/markers"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
	if len(All()) != 7 {
		t.Errorf("All() has %d analyzers, want 7", len(All()))
	}
}
