package d2xvet

import (
	"go/ast"
	"go/token"
)

// LockScopeAnalyzer enforces shard-lock scope discipline: while a mutex
// is held, a function must not perform a channel operation, select,
// known-blocking call (time.Sleep, WaitGroup.Wait), registry Checkout,
// or a second Lock on a different mutex. Each of those either parks the
// goroutine while every other session contending for the shard spins,
// or opens a lock-order inversion. sync.Cond.Wait is deliberately not
// flagged: waiting with the lock held is the condition-variable
// contract (the serve-layer output queue relies on it).
//
// The region tracking is syntactic and intra-function: a statement
// `x.mu.Lock()` opens the region for the lock expression `x.mu` until a
// matching `x.mu.Unlock()` statement in the same or an inner block;
// `defer x.mu.Unlock()` holds it to function end. Function literals
// reset the held set (their bodies run elsewhere), except immediately
// invoked ones.
var LockScopeAnalyzer = &Analyzer{
	Name: "lockscope",
	Doc:  "no blocking operation, Checkout, or second Lock while a mutex is held",
	Run:  runLockScope,
}

func runLockScope(p *Pass) error {
	p.eachFunc(func(fi funcInfo) {
		w := &lockWalker{p: p, fi: fi}
		w.block(fi.body.List, map[string]bool{})
	})
	return nil
}

type lockWalker struct {
	p  *Pass
	fi funcInfo
}

// lockCall matches `<expr>.Lock()` / `.RLock()` / `.Unlock()` /
// `.RUnlock()` statements, returning the lock expression spine.
func lockCall(e ast.Expr) (lockExpr string, method string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return exprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// block walks a statement list with the set of held lock expressions.
// The set is copied per nested block so sibling branches don't leak
// acquisitions into each other.
func (w *lockWalker) block(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		w.stmt(s, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if lock, method, ok := lockCall(s.X); ok {
			switch method {
			case "Lock", "RLock":
				if len(held) > 0 && !held[lock] {
					w.p.Reportf(s.Pos(), "acquires %s while %s is held: nested locks invert order under contention", lock, anyHeld(held))
				}
				held[lock] = true
			case "Unlock", "RUnlock":
				delete(held, lock)
			}
			return
		}
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		if lock, method, ok := lockCall(s.Call); ok && (method == "Unlock" || method == "RUnlock") {
			// Held to function end; the region stays open, which is
			// exactly what we want to keep checking.
			_ = lock
			return
		}
		w.checkExpr(s.Call, held)
	case *ast.SendStmt:
		w.reportHeld(held, s.Pos(), "channel send")
	case *ast.SelectStmt:
		w.reportHeld(held, s.Pos(), "select")
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.GoStmt:
		// Goroutine launch doesn't block; its body runs without our
		// locks.
		w.walkLits(s.Call, map[string]bool{})
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.block(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.BlockStmt:
		w.block(s.List, copyHeld(held))
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		w.block(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		w.block(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.IncDecStmt:
		w.checkExpr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, held)
					}
				}
			}
		}
	}
}

func anyHeld(held map[string]bool) string {
	for k := range held {
		return k
	}
	return "?"
}

// checkExpr scans an expression for receives, blocking calls and
// Checkouts performed with locks held. Function literals inside the
// expression are walked with an empty held set.
func (w *lockWalker) checkExpr(e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		w.walkLits(e, map[string]bool{})
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.block(n.Body.List, map[string]bool{})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.reportHeld(held, n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if isPinCall(n, "Checkout") {
				w.reportHeld(held, n.Pos(), "registry Checkout")
				return true
			}
			if fn := staticCallee(w.p.Info, n); fn != nil {
				switch FuncKey(fn) {
				case "time.Sleep", "sync.WaitGroup.Wait":
					w.reportHeld(held, n.Pos(), FuncKey(fn))
				}
			}
		}
		return true
	})
}

// walkLits visits function literals in an expression so their bodies
// still get lock tracking of their own.
func (w *lockWalker) walkLits(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.block(lit.Body.List, copyHeld(held))
			return false
		}
		return true
	})
}

func (w *lockWalker) reportHeld(held map[string]bool, pos token.Pos, what string) {
	if len(held) == 0 {
		return
	}
	w.p.Reportf(pos, "%s while %s is held blocks every goroutine contending for the lock", what, anyHeld(held))
}
