package d2xvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Annotation markers. Markers attach to a function through its doc
// comment (directive comments ride along in the AST doc group) or, for
// function literals, through a comment on the line directly above the
// literal; //d2x:immutable attaches to a type declaration.
const (
	markNoAlloc   = "//d2x:noalloc"
	markHotPath   = "//d2x:hotpath"
	markImmutable = "//d2x:immutable"
	markCtor      = "//d2x:ctor"
)

// Facts is the annotation database scanned over every loaded package
// before the passes run, so a pass analyzing one package can resolve
// markers on functions and types defined in another.
type Facts struct {
	noalloc   map[string]string   // funcKey -> noalloc mode ("strict"/"amortized")
	hotpath   map[string]bool     // funcKey -> annotated //d2x:hotpath
	immutable map[string]bool     // typeKey -> annotated //d2x:immutable
	ctor      map[string][]string // funcKey -> type names it may construct
	lits      map[string][]string // "file:line" of a FuncLit -> markers
}

// NewFacts scans annotation markers from every package.
func NewFacts(pkgs []*Package) *Facts {
	f := &Facts{
		noalloc:   map[string]string{},
		hotpath:   map[string]bool{},
		immutable: map[string]bool{},
		ctor:      map[string][]string{},
		lits:      map[string][]string{},
	}
	for _, pkg := range pkgs {
		f.scan(pkg)
	}
	return f
}

// NoAlloc reports whether the function with the given key is annotated
// //d2x:noalloc (either mode).
func (f *Facts) NoAlloc(key string) bool { return f.noalloc[key] != "" }

// NoAllocAmortized reports whether the function is annotated
// "//d2x:noalloc amortized": appends into reused (pooled) buffers are
// permitted because their growth amortizes to zero in steady state.
func (f *Facts) NoAllocAmortized(key string) bool { return f.noalloc[key] == "amortized" }

// HotPath reports whether the function is annotated //d2x:hotpath (the
// weaker marker: sampled-obs discipline without the allocation contract).
func (f *Facts) HotPath(key string) bool { return f.hotpath[key] }

// Immutable reports whether the type with the given key (pkgpath.Name)
// is annotated //d2x:immutable.
func (f *Facts) Immutable(key string) bool { return f.immutable[key] }

// CtorTypes returns the type names the function is declared a
// constructor of via //d2x:ctor.
func (f *Facts) CtorTypes(key string) []string { return f.ctor[key] }

// LitMarkers returns the markers attached to the function literal
// starting at pos (via a comment on the line above it).
func (f *Facts) LitMarkers(pos token.Position) []string {
	return f.lits[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]
}

func litHas(markers []string, want string) bool {
	for _, m := range markers {
		if m == want || strings.HasPrefix(m, want+" ") {
			return true
		}
	}
	return false
}

// markersIn extracts the //d2x: markers of one comment group.
func markersIn(g *ast.CommentGroup) []string {
	if g == nil {
		return nil
	}
	var out []string
	for _, c := range g.List {
		text := strings.TrimSpace(c.Text)
		if strings.HasPrefix(text, "//d2x:") {
			out = append(out, text)
		}
	}
	return out
}

func (f *Facts) scan(pkg *Package) {
	f.scanFiles(pkg.Types.Path(), pkg.Fset, pkg.Files)
}

// ScanModule parses (without type-checking) every package directory of
// the module and records its markers. Without this, analyzing a subset
// of packages reports false positives: a //d2x:noalloc function calling
// an annotated function in a package outside the subset would see the
// callee as unannotated. Marker scanning is parse-only, so covering the
// whole module costs little even for single-package runs. Directories
// in skipDirs (already loaded as analysis units, whose markers NewFacts
// scanned) are not re-parsed.
func (f *Facts) ScanModule(l *Loader, skipDirs map[string]bool) error {
	dirs, err := GoDirs(l.Root)
	if err != nil {
		return err
	}
	for _, dir := range dirs {
		if skipDirs[dir] {
			continue
		}
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return err
		}
		path := l.Module
		if rel != "." {
			path = l.Module + "/" + filepath.ToSlash(rel)
		}
		primary, external, err := l.parseDir(dir, true)
		if err != nil {
			return err
		}
		f.scanFiles(path, l.fset, primary)
		f.scanFiles(path+"_test", l.fset, external)
	}
	return nil
}

func (f *Facts) scanFiles(path string, fset *token.FileSet, files []*ast.File) {
	for _, file := range files {
		// Comment groups by end line, for attaching line-above markers
		// to function literals.
		endLine := map[int][]string{}
		for _, g := range file.Comments {
			if ms := markersIn(g); ms != nil {
				line := fset.Position(g.End()).Line
				endLine[line] = append(endLine[line], ms...)
			}
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				key := declKey(path, d)
				for _, m := range markersIn(d.Doc) {
					f.applyFuncMarker(key, m)
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				declMarks := markersIn(d.Doc)
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					marks := append(markersIn(ts.Doc), declMarks...)
					if litHas(marks, markImmutable) {
						f.immutable[path+"."+ts.Name.Name] = true
					}
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			pos := fset.Position(lit.Pos())
			if ms := endLine[pos.Line-1]; ms != nil {
				f.lits[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = ms
			}
			return true
		})
	}
}

func (f *Facts) applyFuncMarker(key, marker string) {
	switch {
	case marker == markNoAlloc || strings.HasPrefix(marker, markNoAlloc+" "):
		mode := "strict"
		rest := strings.Fields(strings.TrimPrefix(marker, markNoAlloc))
		if len(rest) > 0 && rest[0] == "amortized" {
			mode = "amortized"
		}
		f.noalloc[key] = mode
	case marker == markHotPath || strings.HasPrefix(marker, markHotPath+" "):
		f.hotpath[key] = true
	case strings.HasPrefix(marker, markCtor+" "):
		name := strings.TrimSpace(strings.TrimPrefix(marker, markCtor+" "))
		if name != "" {
			f.ctor[key] = append(f.ctor[key], name)
		}
	}
}

// declKey builds the funcKey of a declaration: pkgpath.Name for plain
// functions, pkgpath.RecvType.Name for methods (pointer and generic
// receivers normalized to the base type name).
func declKey(pkgPath string, d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return pkgPath + "." + d.Name.Name
	}
	return pkgPath + "." + recvTypeName(d.Recv.List[0].Type) + "." + d.Name.Name
}

func recvTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// FuncKey normalizes a types.Func to the annotation key: methods become
// pkgpath.RecvType.Name with the pointer stripped, functions
// pkgpath.Name. Returns "" for objects without a package (builtins).
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + fn.Name()
		}
		return "" // receiver is an unnamed or universe type: no key
	}
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// TypeKey normalizes a named type to the annotation key pkgpath.Name.
func TypeKey(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// allocFreePrefixes and allocFree list standard-library calls the
// noalloc pass assumes never allocate on the paths this repo uses them:
// the atomic and bit-twiddling packages wholesale, plus specific
// lock/pool/formatting entries. Anything outside the list called from a
// //d2x:noalloc function must itself be annotated or excused inline.
var allocFreePrefixes = []string{
	"sync/atomic.",
	"math/bits.",
}

var allocFree = map[string]bool{
	"sync.Mutex.Lock":      true,
	"sync.Mutex.Unlock":    true,
	"sync.Mutex.TryLock":   true,
	"sync.RWMutex.Lock":    true,
	"sync.RWMutex.Unlock":  true,
	"sync.RWMutex.RLock":   true,
	"sync.RWMutex.RUnlock": true,
	"sync.Pool.Get":        true, // amortized: allocates only to warm the pool
	"sync.Pool.Put":        true,
	"sync.WaitGroup.Add":   true,
	"sync.WaitGroup.Done":  true,
	"sync.Once.Do":         true,

	"time.Since":         true,
	"time.Now":           true,
	"time.Time.UnixNano": true,

	"strconv.AppendInt":  true, // appends into the caller's buffer
	"strconv.AppendUint": true,
	"strconv.Atoi":       true,

	"sort.Ints":       true,
	"sort.Search":     true,
	"sort.SearchInts": true,

	"strings.HasPrefix":  true,
	"strings.HasSuffix":  true,
	"strings.Index":      true,
	"strings.IndexByte":  true,
	"strings.IndexAny":   true,
	"strings.LastIndex":  true,
	"strings.Contains":   true,
	"strings.TrimSpace":  true,
	"strings.TrimRight":  true,
	"strings.TrimLeft":   true,
	"strings.TrimPrefix": true,
	"strings.EqualFold":  true,
	"strings.Compare":    true,
	"strings.Count":      true,

	"errors.Is": true,

	"len": true,
	"cap": true,
}

// assumedAllocFree reports whether a fully-resolved callee key is on the
// built-in alloc-free allowlist.
func assumedAllocFree(key string) bool {
	if allocFree[key] {
		return true
	}
	for _, p := range allocFreePrefixes {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	return false
}
