package d2xvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsSampleAnalyzer enforces the PR 4 observability budget on hot
// paths. In a function annotated //d2x:noalloc or //d2x:hotpath:
//
//   - the wall-clock obs variants (Histogram.Observe, Histogram.Since,
//     obs.Now) are forbidden — the monotonic *NS variants cost one
//     RDTSC-class read instead of a VDSO wall read. obs.WallNanos is
//     fine: it is pure arithmetic over an already-taken monotonic
//     stamp, the sanctioned way to derive a wall time on a hot path;
//   - histogram observations (ObserveNS/SinceNS) must sit under a
//     sampling branch, the stageTick idiom: either the branch condition
//     itself takes a modulo (`tick.Add(1)%stageSampleEvery == 0`) or it
//     tests a sentinel set on the sampled branch (`if t0 != 0 { ... }`).
//     Counters (Inc/Add) are single atomic adds and stay unsampled.
//
// An unsampled histogram on a hot path is how the ~0.3–1% overhead
// budget quietly becomes 5%: the histogram's atomic CAS loop lands on
// every command instead of one in eight.
var ObsSampleAnalyzer = &Analyzer{
	Name: "obssample",
	Doc:  "hot-path functions use sampled, monotonic obs variants",
	Run:  runObsSample,
}

func runObsSample(p *Pass) error {
	// The obs package is the metric implementation, not an
	// instrumentation site: SinceNS delegating to ObserveNS is the cost
	// the sampled idiom pays once per sampled hit, so the discipline
	// binds callers of obs, never its own internals.
	if isObsPkg(p.Pkg.Path()) {
		return nil
	}
	p.eachFunc(func(fi funcInfo) {
		noalloc, _, hotpath := p.markers(fi)
		if !noalloc && !hotpath {
			return
		}
		p.obsSampleFunc(fi)
	})
	return nil
}

// obsCall classifies a call as an obs-package histogram/clock call.
// Matching is by package-path suffix so fixtures exercising the rule
// against the real obs package and future forks both resolve.
func obsCall(info *types.Info, call *ast.CallExpr) (typeName, method string, ok bool) {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || !isObsPkg(fn.Pkg().Path()) {
		return "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n, isNamed := t.(*types.Named); isNamed {
			return n.Obj().Name(), fn.Name(), true
		}
	}
	return "", fn.Name(), true
}

func (p *Pass) obsSampleFunc(fi funcInfo) {
	inspectStack(fi.body, func(n ast.Node, stack []ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != ast.Node(fi.lit) {
			return false // nested literal: separately annotated or cold
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		typeName, method, isObs := obsCall(p.Info, call)
		if !isObs {
			return true
		}
		switch {
		case typeName == "Histogram" && (method == "Observe" || method == "Since"):
			p.Reportf(call.Pos(), "wall-clock obs call %s in hot-path function %s; use the monotonic %sNS variant",
				method, fi.name, method)
		case typeName == "" && method == "Now":
			p.Reportf(call.Pos(), "wall-clock read Now in hot-path function %s; use the monotonic NowNanos (derive wall stamps with WallNanos)",
				fi.name)
		case typeName == "Histogram" && (method == "ObserveNS" || method == "SinceNS"):
			if !underSamplingBranch(stack, fi.body) {
				p.Reportf(call.Pos(), "unsampled histogram observation %s.%s in hot-path function %s; gate it on a 1-in-N tick (see the stageTick idiom)",
					typeName, method, fi.name)
			}
		}
		return true
	})
}

// underSamplingBranch reports whether any enclosing if (within the
// function body) looks like a sampling gate: its condition contains a
// modulo operation or a comparison against zero (the `t0 != 0` sentinel
// form, where t0 was captured under the modulo branch).
func underSamplingBranch(stack []ast.Node, body *ast.BlockStmt) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == ast.Node(body) {
			break
		}
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if condSamples(ifs.Cond) {
			return true
		}
	}
	return false
}

func condSamples(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if b.Op == token.REM {
			found = true
			return false
		}
		if b.Op == token.NEQ || b.Op == token.EQL {
			if isZeroLit(b.X) || isZeroLit(b.Y) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}
