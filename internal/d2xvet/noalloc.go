package d2xvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAllocAnalyzer turns the AllocsPerRun budgets of the PR 5 command
// path into compile-time diagnostics: a function annotated //d2x:noalloc
// must contain no allocating operation — make/new, map and slice
// literals, &composite, map writes, closures, string conversions and
// concatenation, interface boxing — and may call only functions that are
// themselves //d2x:noalloc or on the built-in alloc-free allowlist.
//
// Two escape hatches keep the rule honest rather than noisy:
//
//   - "//d2x:noalloc amortized" additionally permits append: the
//     pooled-rendering path appends into reused buffers whose growth
//     amortizes to zero in steady state. Plain //d2x:noalloc flags
//     append, so adding one to a strict function fails the pass.
//   - Error paths are excused: allocations inside an `if x != nil`
//     block and in return statements whose final error result is
//     non-nil happen only when the steady state is already over.
//
// Everything else needs an inline //d2xvet:ignore noalloc <reason>.
// Dynamic calls (func values, interface methods) are not resolved; the
// hot paths this repo annotates are concrete.
var NoAllocAnalyzer = &Analyzer{
	Name: "noalloc",
	Doc:  "//d2x:noalloc functions contain no allocating operations and call only alloc-free callees",
	Run:  runNoAlloc,
}

func runNoAlloc(p *Pass) error {
	p.eachFunc(func(fi funcInfo) {
		noalloc, amortized, _ := p.markers(fi)
		if !noalloc {
			return
		}
		w := &noallocWalker{p: p, fi: fi, amortized: amortized}
		w.block(fi.body, false)
	})
	return nil
}

type noallocWalker struct {
	p         *Pass
	fi        funcInfo
	amortized bool
}

// block walks one statement list with the current error-path excuse.
func (w *noallocWalker) block(b *ast.BlockStmt, excused bool) {
	for _, s := range b.List {
		w.stmt(s, excused)
	}
}

func (w *noallocWalker) stmt(s ast.Stmt, excused bool) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, excused)
		}
		w.expr(s.Cond, excused)
		// `if x != nil { ... }` bodies are error paths: the steady
		// state never enters them.
		w.block(s.Body, excused || isNonNilCheck(s.Cond))
		if s.Else != nil {
			w.stmt(s.Else, excused || isNilCheck(s.Cond))
		}
	case *ast.BlockStmt:
		w.block(s, excused)
	case *ast.ReturnStmt:
		excused = excused || errorReturn(w.p.Info, s)
		for _, r := range s.Results {
			w.expr(r, excused)
		}
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			w.mapWrite(lhs, excused)
			w.expr(lhs, excused)
		}
		if !excused && len(s.Lhs) == len(s.Rhs) {
			for i, rhs := range s.Rhs {
				w.checkConcatAssign(s, s.Lhs[i], rhs)
			}
		}
		for _, rhs := range s.Rhs {
			w.expr(rhs, excused)
		}
	case *ast.ExprStmt:
		w.expr(s.X, excused)
	case *ast.DeferStmt:
		w.expr(s.Call, excused)
	case *ast.GoStmt:
		if !excused {
			w.p.Reportf(s.Pos(), "go statement in //d2x:noalloc function %s allocates a goroutine stack", w.fi.name)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, excused)
		}
		if s.Cond != nil {
			w.expr(s.Cond, excused)
		}
		if s.Post != nil {
			w.stmt(s.Post, excused)
		}
		w.block(s.Body, excused)
	case *ast.RangeStmt:
		w.expr(s.X, excused)
		w.block(s.Body, excused)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, excused)
		}
		if s.Tag != nil {
			w.expr(s.Tag, excused)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e, excused)
				}
				for _, bs := range cc.Body {
					w.stmt(bs, excused)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, bs := range cc.Body {
					w.stmt(bs, excused)
				}
			}
		}
	case *ast.SelectStmt:
		if !excused {
			w.p.Reportf(s.Pos(), "select in //d2x:noalloc function %s (channel operations are not allocation-free-path material)", w.fi.name)
		}
	case *ast.SendStmt:
		w.expr(s.Chan, excused)
		w.expr(s.Value, excused)
	case *ast.IncDecStmt:
		w.expr(s.X, excused)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, excused)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, excused)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// mapWrite flags `m[k] = v` on a map (growth allocates and rehashes).
func (w *noallocWalker) mapWrite(lhs ast.Expr, excused bool) {
	if excused {
		return
	}
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if tv, ok := w.p.Info.Types[idx.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			w.p.Reportf(lhs.Pos(), "map write in //d2x:noalloc function %s may grow the map", w.fi.name)
		}
	}
}

// checkConcatAssign flags s += "x" style string growth.
func (w *noallocWalker) checkConcatAssign(s *ast.AssignStmt, lhs, rhs ast.Expr) {
	if s.Tok != token.ADD_ASSIGN {
		return
	}
	if tv, ok := w.p.Info.Types[lhs]; ok && isString(tv.Type) {
		w.p.Reportf(rhs.Pos(), "string concatenation in //d2x:noalloc function %s", w.fi.name)
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (w *noallocWalker) expr(e ast.Expr, excused bool) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if !excused {
			w.p.Reportf(e.Pos(), "function literal in //d2x:noalloc function %s allocates its closure", w.fi.name)
		}
		// Do not descend: the literal runs outside this steady state
		// unless called here, and called-literals are rare enough to
		// annotate directly.
	case *ast.CompositeLit:
		w.compositeLit(e, excused)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				if !excused {
					w.p.Reportf(e.Pos(), "&composite literal in //d2x:noalloc function %s heap-allocates", w.fi.name)
				}
				for _, el := range cl.Elts {
					w.expr(el, excused)
				}
				return
			}
		}
		w.expr(e.X, excused)
	case *ast.BinaryExpr:
		if e.Op == token.ADD && !excused {
			if tv, ok := w.p.Info.Types[e]; ok && isString(tv.Type) {
				w.p.Reportf(e.Pos(), "string concatenation in //d2x:noalloc function %s", w.fi.name)
			}
		}
		w.expr(e.X, excused)
		w.expr(e.Y, excused)
	case *ast.CallExpr:
		w.call(e, excused)
	case *ast.StarExpr:
		w.expr(e.X, excused)
	case *ast.SelectorExpr:
		w.expr(e.X, excused)
	case *ast.IndexExpr:
		w.expr(e.X, excused)
		w.expr(e.Index, excused)
	case *ast.IndexListExpr:
		w.expr(e.X, excused)
	case *ast.SliceExpr:
		w.expr(e.X, excused)
		w.expr(e.Low, excused)
		w.expr(e.High, excused)
		w.expr(e.Max, excused)
	case *ast.TypeAssertExpr:
		w.expr(e.X, excused)
	case *ast.KeyValueExpr:
		w.expr(e.Key, excused)
		w.expr(e.Value, excused)
	}
}

func (w *noallocWalker) compositeLit(e *ast.CompositeLit, excused bool) {
	for _, el := range e.Elts {
		w.expr(el, excused)
	}
	if excused {
		return
	}
	tv, ok := w.p.Info.Types[e]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		w.p.Reportf(e.Pos(), "%s literal in //d2x:noalloc function %s allocates",
			kindName(tv.Type), w.fi.name)
	}
	// Struct and array value literals live on the stack unless they
	// escape; escape is the compiler's call, so the pass accepts them
	// and the &lit case above catches the guaranteed heap form.
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

func (w *noallocWalker) call(call *ast.CallExpr, excused bool) {
	for _, arg := range call.Args {
		w.expr(arg, excused)
	}
	if tv, ok := w.p.Info.Types[call.Fun]; ok && tv.IsType() {
		w.conversion(call, tv.Type, excused)
		return
	}
	if b := builtinName(w.p.Info, call); b != "" {
		w.builtin(call, b, excused)
		return
	}
	w.expr(call.Fun, excused)
	if excused {
		return
	}
	w.boxedArgs(call)
	fn := staticCallee(w.p.Info, call)
	if fn == nil {
		return // dynamic call: unresolvable, accepted by design
	}
	key := FuncKey(fn)
	if key == "" || assumedAllocFree(key) || w.p.Facts.NoAlloc(key) {
		return
	}
	w.p.Reportf(call.Pos(), "call to %s from //d2x:noalloc function %s: callee is neither //d2x:noalloc nor on the alloc-free allowlist", key, w.fi.name)
}

// conversion flags string<->[]byte/[]rune conversions, which copy.
func (w *noallocWalker) conversion(call *ast.CallExpr, to types.Type, excused bool) {
	if excused || len(call.Args) != 1 {
		return
	}
	fromTV, ok := w.p.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	from := fromTV.Type
	if (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from)) {
		w.p.Reportf(call.Pos(), "conversion %s in //d2x:noalloc function %s copies its operand",
			types.TypeString(to, types.RelativeTo(nil)), w.fi.name)
	}
	// Conversion to an interface type boxes.
	if types.IsInterface(to) && !types.IsInterface(from) && !isNilExpr(call.Args[0]) {
		w.p.Reportf(call.Pos(), "conversion to interface %s in //d2x:noalloc function %s boxes its operand",
			types.TypeString(to, types.RelativeTo(nil)), w.fi.name)
	}
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func (w *noallocWalker) builtin(call *ast.CallExpr, name string, excused bool) {
	if excused {
		return
	}
	switch name {
	case "make":
		w.p.Reportf(call.Pos(), "make in //d2x:noalloc function %s allocates", w.fi.name)
	case "new":
		w.p.Reportf(call.Pos(), "new in //d2x:noalloc function %s allocates", w.fi.name)
	case "append":
		if !w.amortized {
			w.p.Reportf(call.Pos(), "append in //d2x:noalloc function %s may grow its backing array (use \"//d2x:noalloc amortized\" for pooled buffers)", w.fi.name)
		}
	case "print", "println":
		w.p.Reportf(call.Pos(), "%s in //d2x:noalloc function %s", name, w.fi.name)
	}
}

// boxedArgs flags concrete values passed to interface parameters —
// fmt-style boxing, the classic invisible allocation.
func (w *noallocWalker) boxedArgs(call *ast.CallExpr) {
	tv, ok := w.p.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if params.Len() == 0 {
				break
			}
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				break // variadic ...T passed as slice
			}
			pt = st.Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			break
		}
		if !types.IsInterface(pt) {
			continue
		}
		atv, ok := w.p.Info.Types[arg]
		if !ok || types.IsInterface(atv.Type) || isNilExpr(arg) {
			continue
		}
		if _, isPtr := atv.Type.Underlying().(*types.Pointer); isPtr {
			continue // pointers box without allocating the pointee
		}
		w.p.Reportf(arg.Pos(), "argument boxes %s into interface %s in //d2x:noalloc function %s",
			types.TypeString(atv.Type, types.RelativeTo(nil)), types.TypeString(pt, types.RelativeTo(nil)), w.fi.name)
	}
}

func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isNonNilCheck matches `x != nil` (and `x > 0`-style guards are not
// error paths, so only the nil comparison counts).
func isNonNilCheck(cond ast.Expr) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.NEQ {
		return false
	}
	return isNilExpr(b.X) || isNilExpr(b.Y)
}

// isNilCheck matches `x == nil` (whose else-branch is the error path).
func isNilCheck(cond ast.Expr) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.EQL {
		return false
	}
	return isNilExpr(b.X) || isNilExpr(b.Y)
}

// errorReturn reports whether a return statement's final result is a
// non-nil expression of error type: the error path, excused from the
// allocation contract.
func errorReturn(info *types.Info, r *ast.ReturnStmt) bool {
	if len(r.Results) == 0 {
		return false
	}
	last := r.Results[len(r.Results)-1]
	if isNilExpr(last) {
		return false
	}
	tv, ok := info.Types[last]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Implements(tv.Type, errorInterface()) ||
		(types.IsInterface(tv.Type) && tv.Type.String() == "error")
}

var errIface *types.Interface

func errorInterface() *types.Interface {
	if errIface == nil {
		errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	}
	return errIface
}
