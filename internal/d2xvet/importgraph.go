package d2xvet

// The repository architecture lints (import-graph and delta markers)
// migrated from internal/d2xverify/checks_arch.go onto the d2xvet
// driver. The detection cores live here and return structured findings;
// the analyzers wrap them for cmd/d2xvet, and d2xverify's arch checks
// delegate to the same cores so Build.Verify() output is unchanged.

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// ImportRule forbids a package subtree from importing certain import
// paths. A path is forbidden when it equals a prefix exactly or lives
// under it.
type ImportRule struct {
	Dir       string // repo-relative directory whose files are constrained
	Forbidden []string
	Why       string
}

// DefaultImportRules returns the repository's architecture constraints.
// The debugger must stay ignorant of D2X (it serves `xbt` through stock
// call/eval only) and of every DSL layer above it.
func DefaultImportRules() []ImportRule {
	return []ImportRule{
		{
			Dir: "internal/debugger",
			Forbidden: []string{
				"d2x/internal/d2x",
				"d2x/internal/d2xverify",
				"d2x/internal/buildit",
				"d2x/internal/graphit",
				"d2x/internal/einsum",
			},
			Why: "the debugger must work through stock call/eval with no D2X knowledge",
		},
		{
			Dir: "internal/d2x/wire",
			Forbidden: []string{
				"d2x/internal/d2x/d2xc",
				"d2x/internal/d2x/d2xenc",
				"d2x/internal/d2x/d2xr",
				"d2x/internal/d2x/macros",
				"d2x/internal/d2x/serve",
				"d2x/internal/d2x/session",
				"d2x/internal/d2xverify",
				"d2x/internal/debugger",
				"d2x/internal/minic",
				"d2x/internal/dwarfish",
				"d2x/internal/buildit",
				"d2x/internal/graphit",
				"d2x/internal/einsum",
				"d2x/internal/obs",
			},
			Why: "the wire protocol is a pure framing layer: a client must link it without linking the debug stack",
		},
	}
}

// ArchFinding is one structured architecture-lint finding. File is
// repo-relative with forward slashes (the form the d2xverify report has
// always printed).
type ArchFinding struct {
	File    string
	Line    int
	Warning bool // advisory (d2xverify Warnf); d2xvet reports errors only
	Message string
	Hint    string
}

func forbiddenBy(imp string, prefixes []string) string {
	for _, p := range prefixes {
		if imp == p || strings.HasPrefix(imp, p+"/") {
			return p
		}
	}
	return ""
}

// ImportGraphFindings parses the import clauses (only) of every Go file
// in each constrained directory and flags forbidden imports at the line
// of the import spec. Constrained directories need not exist in every
// tree the check runs over (fixture roots in tests, partial checkouts);
// a rule constrains files, so no files means nothing to flag.
func ImportGraphFindings(root string, rules []ImportRule) ([]ArchFinding, error) {
	var out []ArchFinding
	for _, rule := range rules {
		dir := filepath.Join(root, rule.Dir)
		entries, err := os.ReadDir(dir)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, spec := range f.Imports {
				imp, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if p := forbiddenBy(imp, rule.Forbidden); p != "" {
					rel := filepath.ToSlash(filepath.Join(rule.Dir, e.Name()))
					out = append(out, ArchFinding{
						File:    rel,
						Line:    fset.Position(spec.Pos()).Line,
						Message: fmt.Sprintf("%s imports %q, forbidden under %q", rel, imp, p),
						Hint:    rule.Why,
					})
				}
			}
		}
	}
	return out, nil
}

// ImportGraphAnalyzer is the repo-level import-graph pass.
var ImportGraphAnalyzer = &Analyzer{
	Name: "arch/import-graph",
	Doc:  "the debugger imports no D2X or DSL packages; the wire layer stays free of the debug stack",
	Repo: true,
	Run: func(p *Pass) error {
		findings, err := ImportGraphFindings(p.Root, DefaultImportRules())
		if err != nil {
			return err
		}
		reportArch(p, findings)
		return nil
	},
}

// reportArch maps structured arch findings onto pass diagnostics,
// anchoring them at absolute paths so //d2xvet:ignore suppression works.
func reportArch(p *Pass, findings []ArchFinding) {
	for _, f := range findings {
		if f.Warning {
			continue // advisory findings stay d2xverify warnings
		}
		msg := f.Message
		if f.Hint != "" {
			msg += " (fix: " + f.Hint + ")"
		}
		p.ReportAt(token.Position{
			Filename: filepath.Join(p.Root, filepath.FromSlash(f.File)),
			Line:     f.Line,
			Column:   1,
		}, "%s", msg)
	}
}
