package d2xvet

import (
	"go/ast"
	"go/token"
)

// PinPairAnalyzer enforces the registry pin protocol: every call to a
// Checkout method must be matched by a Checkin on every path out of the
// enclosing function — including early error returns, which is where
// leaked pins actually happen (a pinned State's refcount never drains,
// so Invalidate's deferred Reset and Release's eviction are blocked
// forever). The deferred form
//
//	st := svc.Checkout(vm)
//	defer svc.Checkin(vm, st)
//
// is the only one that also survives panics, and is the repo idiom; an
// undeferred Checkin on all paths is accepted but panic-unsafe.
//
// The matcher is name-based (any method named Checkout/Checkin), so the
// fixtures stay self-contained and future registries inherit the rule.
// Checkins inside `go` statements or nested function literals do not
// count: they are asynchronous with the paths being analyzed.
var PinPairAnalyzer = &Analyzer{
	Name: "pinpair",
	Doc:  "every registry Checkout is matched by a Checkin on all paths out of the function",
	Run:  runPinPair,
}

func runPinPair(p *Pass) error {
	p.eachFunc(func(fi funcInfo) {
		p.pinPairFunc(fi)
	})
	return nil
}

// isPinCall reports whether the expression is a call to a method with
// the given name (Checkout/Checkin) via a selector.
func isPinCall(e ast.Expr, name string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}

// stmtChecksIn reports whether the statement performs a Checkin on the
// analyzed path: a direct call statement or a defer (deferred Checkin
// covers every subsequent exit).
func stmtChecksIn(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return isPinCall(s.X, "Checkin")
	case *ast.DeferStmt:
		if isPinCall(s.Call, "Checkin") {
			return true
		}
		// defer func() { ...; svc.Checkin(...) }()
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			found := false
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok && isPinCall(e, "Checkin") {
					found = true
					return false
				}
				return true
			})
			return found
		}
	}
	return false
}

// pinPairFunc locates each Checkout statement in the function and
// verifies all paths from it to function exit perform a Checkin.
func (p *Pass) pinPairFunc(fi funcInfo) {
	// Walk only this function's own statement tree; nested FuncLits get
	// their own eachFunc visit.
	var walkBlock func(stmts []ast.Stmt)
	walkBlock = func(stmts []ast.Stmt) {
		for i, s := range stmts {
			if pos, ok := checkoutStmt(s); ok {
				a := pinAnalysis{}
				ok, done, fellThrough := a.allPaths(stmts[i+1:], false)
				if !ok || (fellThrough && !done) {
					p.Reportf(pos, "Checkout is not matched by a Checkin on every path out of %s; pin the state with `defer Checkin` immediately after", fi.name)
				}
				// Keep scanning: a second Checkout in the same block is
				// analyzed on its own suffix.
			}
			for _, sub := range subBlocks(s) {
				walkBlock(sub)
			}
		}
	}
	walkBlock(fi.body.List)
}

// checkoutStmt reports whether the statement performs a Checkout, and
// where.
func checkoutStmt(s ast.Stmt) (token.Pos, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if isPinCall(rhs, "Checkout") {
				return rhs.Pos(), true
			}
		}
	case *ast.ExprStmt:
		if isPinCall(s.X, "Checkout") {
			return s.X.Pos(), true
		}
	}
	return token.NoPos, false
}

// subBlocks returns the nested statement lists of a statement, for
// finding Checkouts in inner scopes. Function literals are excluded
// (they are separate functions).
func subBlocks(s ast.Stmt) [][]ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{s.List}
	case *ast.IfStmt:
		out := [][]ast.Stmt{s.Body.List}
		if s.Else != nil {
			out = append(out, subBlocks(s.Else)...)
		}
		return out
	case *ast.ForStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.RangeStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.SwitchStmt:
		return clauseBlocks(s.Body)
	case *ast.TypeSwitchStmt:
		return clauseBlocks(s.Body)
	case *ast.SelectStmt:
		return clauseBlocks(s.Body)
	case *ast.LabeledStmt:
		return subBlocks(s.Stmt)
	}
	return nil
}

func clauseBlocks(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}

// pinAnalysis is the path walker. allPaths reports, for the statement
// suffix after a Checkout: ok — every terminating path (return) saw a
// Checkin first; done — a fall-through path has a Checkin behind it;
// fellThrough — control can reach the end of the suffix.
type pinAnalysis struct {
	gaveUp bool // goto or other construct we refuse to reason about
}

func (a *pinAnalysis) allPaths(stmts []ast.Stmt, done bool) (ok, doneAfter, fellThrough bool) {
	ok = true
	for _, s := range stmts {
		if a.gaveUp {
			return true, true, false
		}
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return ok && done, done, false
		case *ast.BranchStmt:
			if s.Tok == token.GOTO {
				a.gaveUp = true
				return true, true, false
			}
			// break/continue leave the suffix without returning from
			// the function; the Checkin obligation transfers to the
			// enclosing loop's suffix, which this walker is already
			// analyzing (the loop body is part of the suffix). Treat as
			// path end that is fine as-is.
			return ok, done, false
		case *ast.BlockStmt:
			ok2, done2, fell := a.allPaths(s.List, done)
			ok = ok && ok2
			if !fell {
				return ok, done2, false
			}
			done = done2
		case *ast.IfStmt:
			okT, doneT, fellT := a.allPaths(s.Body.List, done)
			okE, doneE, fellE := true, done, true
			if s.Else != nil {
				okE, doneE, fellE = a.allPaths([]ast.Stmt{s.Else}, done)
			}
			ok = ok && okT && okE
			switch {
			case fellT && fellE:
				done = doneT && doneE
			case fellT:
				done = doneT
			case fellE:
				done = doneE
			default:
				return ok, done, false
			}
		case *ast.ForStmt, *ast.RangeStmt:
			// The body may run zero times: returns inside must satisfy
			// the obligation, but a Checkin inside does not count for
			// the fall-through path.
			var body *ast.BlockStmt
			if f, isFor := s.(*ast.ForStmt); isFor {
				body = f.Body
			} else {
				body = s.(*ast.RangeStmt).Body
			}
			ok2, _, _ := a.allPaths(body.List, done)
			ok = ok && ok2
			// An infinite `for {}` with no break never falls through,
			// but detecting that is not needed for the repo's shapes.
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var blocks [][]ast.Stmt
			switch s := s.(type) {
			case *ast.SwitchStmt:
				blocks = clauseBlocks(s.Body)
			case *ast.TypeSwitchStmt:
				blocks = clauseBlocks(s.Body)
			case *ast.SelectStmt:
				blocks = clauseBlocks(s.Body)
			}
			for _, b := range blocks {
				ok2, _, _ := a.allPaths(b, done)
				ok = ok && ok2
			}
			// Conservative: a Checkin inside a clause does not count
			// toward the fall-through path (a missing case skips it).
		case *ast.GoStmt:
			// Asynchronous: a Checkin inside does not discharge this
			// path (and is itself a separate protocol).
		default:
			if stmtChecksIn(s) {
				done = true
			}
		}
	}
	return ok, done, true
}
