package d2xvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicFieldAnalyzer enforces the repository's atomic-publication
// discipline: values that embed sync/atomic types (or sync locks) must
// never be copied, fields of atomic type must be touched only through
// their methods (Load/Store/Add/...), and struct types annotated
// //d2x:immutable must have no field writes outside functions annotated
// //d2x:ctor for that type. A copied atomic.Pointer silently forks the
// publication channel; a direct field read tears; a post-construction
// write to an immutable table races every reader that skipped the lock
// on the strength of the annotation.
var AtomicFieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc:  "atomics are never copied or accessed non-atomically; //d2x:immutable types are written only by their //d2x:ctor functions",
	Run:  runAtomicField,
}

// isSyncType reports whether t is a sync/atomic value type or a sync
// lock type (by-value copies of either are bugs).
func isSyncType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() {
	case "sync/atomic":
		return true // every sync/atomic type is copy-hostile
	case "sync":
		switch n.Obj().Name() {
		case "Mutex", "RWMutex", "WaitGroup", "Cond", "Pool", "Once", "Map":
			return true
		}
	}
	return false
}

// isAtomicType reports whether t is a sync/atomic type specifically
// (subject to the access-through-methods rule).
func isAtomicType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// hasSyncValue reports whether a value of type t contains a sync/atomic
// or lock value (directly, or through struct fields and arrays — not
// through pointers, slices or maps, which share rather than copy).
func hasSyncValue(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if isSyncType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasSyncValue(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return hasSyncValue(u.Elem(), seen)
	}
	return false
}

func runAtomicField(p *Pass) error {
	for _, file := range p.Files {
		p.atomicFieldFile(file)
	}
	return nil
}

func (p *Pass) atomicFieldFile(file *ast.File) {
	inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			p.checkSyncCopyAssign(n)
			for _, lhs := range n.Lhs {
				p.checkImmutableWrite(lhs, stack)
			}
		case *ast.IncDecStmt:
			p.checkImmutableWrite(n.X, stack)
		case *ast.CallExpr:
			p.checkSyncCopyCall(n)
		case *ast.RangeStmt:
			if n.Value != nil {
				// In `for _, v := range xs`, v's type lives in Defs, not
				// in the expression type map.
				var vt types.Type
				if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok && id.Name != "_" {
					if obj := p.Info.ObjectOf(id); obj != nil {
						vt = obj.Type()
					}
				} else if tv, ok := p.Info.Types[n.Value]; ok {
					vt = tv.Type
				}
				if vt != nil && hasSyncValue(vt, nil) {
					p.Reportf(n.Value.Pos(), "range copies a value containing %s", syncTypeName(vt))
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				p.checkSyncCopyExpr(r, "return copies")
			}
		case *ast.SelectorExpr:
			p.checkAtomicAccess(n, stack)
		}
		return true
	})
}

// syncTypeName names the first embedded sync value for the diagnostic.
func syncTypeName(t types.Type) string {
	var find func(t types.Type, seen map[types.Type]bool) string
	find = func(t types.Type, seen map[types.Type]bool) string {
		if seen[t] {
			return ""
		}
		seen[t] = true
		if isSyncType(t) {
			return types.TypeString(t, types.RelativeTo(nil))
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if s := find(u.Field(i).Type(), seen); s != "" {
					return s
				}
			}
		case *types.Array:
			return find(u.Elem(), seen)
		}
		return ""
	}
	return find(t, map[types.Type]bool{})
}

// copySource reports whether the expression reads an existing value (as
// opposed to creating one): composite literals and calls construct
// fresh values, which is initialization, not copying.
func copySource(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit, *ast.CallExpr, *ast.FuncLit, *ast.BasicLit:
		return false
	case *ast.UnaryExpr:
		return e.Op != token.AND
	}
	return true
}

func (p *Pass) checkSyncCopyExpr(e ast.Expr, what string) {
	if !copySource(e) {
		return
	}
	tv, ok := p.Info.Types[e]
	if !ok || !tv.IsValue() {
		return
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return
	}
	if hasSyncValue(tv.Type, nil) {
		p.Reportf(e.Pos(), "%s a value containing %s; share it by pointer", what, syncTypeName(tv.Type))
	}
}

func (p *Pass) checkSyncCopyAssign(n *ast.AssignStmt) {
	for i, rhs := range n.Rhs {
		// `_ = x` discards the value; nothing is copied.
		if len(n.Lhs) == len(n.Rhs) {
			if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
				continue
			}
		}
		p.checkSyncCopyExpr(rhs, "assignment copies")
	}
}

func (p *Pass) checkSyncCopyCall(n *ast.CallExpr) {
	if tv, ok := p.Info.Types[n.Fun]; ok && tv.IsType() {
		return // conversions don't copy lock semantics in ways vet-style checks track
	}
	for _, arg := range n.Args {
		p.checkSyncCopyExpr(arg, "call copies")
	}
}

// checkAtomicAccess flags selector reads/writes of atomic-typed fields
// that bypass the atomic API. Using the field as a method receiver
// (x.ptr.Load()) or taking its address (&x.ptr) is the API; anything
// else tears.
func (p *Pass) checkAtomicAccess(sel *ast.SelectorExpr, stack []ast.Node) {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	if !isAtomicType(s.Obj().Type()) {
		return
	}
	if len(stack) > 0 {
		switch parent := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr:
			// x.field.Method(...): the method-call path.
			if psel, ok := p.Info.Selections[parent]; ok && psel.Kind() == types.MethodVal {
				return
			}
		case *ast.UnaryExpr:
			if parent.Op == token.AND {
				return // &x.field: passing the atomic by pointer
			}
		}
	}
	p.Reportf(sel.Pos(), "field %s of atomic type %s accessed without its atomic API",
		exprString(sel), types.TypeString(s.Obj().Type(), types.RelativeTo(nil)))
}

// checkImmutableWrite flags assignments through fields of
// //d2x:immutable types from functions not annotated as constructors of
// that type.
func (p *Pass) checkImmutableWrite(lhs ast.Expr, stack []ast.Node) {
	// Strip element/deref layers: t.index[k] = v and *t.p = v both
	// mutate state reachable from the field.
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.StarExpr:
			lhs = e.X
			continue
		}
		break
	}
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	recv := namedOf(s.Recv())
	if recv == nil || !p.Facts.Immutable(TypeKey(recv)) {
		return
	}
	if fnKey, fnName := p.enclosingFunc(stack); fnKey != "" {
		for _, t := range p.Facts.CtorTypes(fnKey) {
			if t == recv.Obj().Name() && samePkgPrefix(fnKey, TypeKey(recv)) {
				return
			}
		}
		p.Reportf(sel.Pos(), "write to field %s of //d2x:immutable type %s outside its //d2x:ctor functions (%s is not a constructor)",
			exprString(sel), recv.Obj().Name(), fnName)
		return
	}
	p.Reportf(sel.Pos(), "write to field %s of //d2x:immutable type %s outside its //d2x:ctor functions",
		exprString(sel), recv.Obj().Name())
}

// enclosingFunc finds the innermost enclosing function declaration's key
// and name. Function literals inside a ctor inherit the ctor's key (a
// build loop closure is still the constructor).
func (p *Pass) enclosingFunc(stack []ast.Node) (key, name string) {
	for i := len(stack) - 1; i >= 0; i-- {
		if d, ok := stack[i].(*ast.FuncDecl); ok {
			return declKey(p.Pkg.Path(), d), d.Name.Name
		}
	}
	return "", ""
}

// samePkgPrefix reports whether two annotation keys share a package
// path (the portion before the first '.' after the last '/').
func samePkgPrefix(funcKey, typeKey string) bool {
	pkgOf := func(k string) string {
		slash := 0
		for i, c := range k {
			if c == '/' {
				slash = i
			}
		}
		for i := slash; i < len(k); i++ {
			if k[i] == '.' {
				return k[:i]
			}
		}
		return k
	}
	return pkgOf(funcKey) == pkgOf(typeKey)
}
