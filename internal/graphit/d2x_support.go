package graphit

// This file (together with the D2X:BEGIN/END-marked hunks in codegen.go
// and d2x_link.go) is the entire D2X integration for the GraphIt compiler —
// the delta Table 3 of the paper accounts for (667 lines, a 1.4% change).
// It implements §5.1:
//
//   - Source locations: the frontend's line numbers are propagated through
//     the mid-end; codegen records, per generated line, the UDF body line
//     plus the call site of the operator the UDF was specialised for
//     (Figure 6's "extended call stack shows the location of the operator
//     for which this UDF is specialized").
//   - Schedule/internal state: every operator line carries the applied
//     schedule as constant extended variables.
//   - Complex data structures: vertexset locals register a runtime value
//     handler that decodes whichever representation the frontier currently
//     uses (Figure 7).

import (
	"fmt"
	"strings"

	"d2x/internal/d2x/d2xc"
)

// beginSection opens a D2X section (and a live-variable scope) at the
// current generated line.
func (g *gen) beginSection() {
	if g.ctx == nil {
		return
	}
	if err := g.e.BeginSection(); err != nil {
		g.fail("%s", err)
		return
	}
	g.ctx.PushScope()
}

// endSection closes the section opened by beginSection.
func (g *gen) endSection() {
	if g.ctx == nil {
		return
	}
	if err := g.ctx.PopScope(); err != nil {
		g.fail("%s", err)
	}
	if err := g.e.EndSection(); err != nil {
		g.fail("%s", err)
	}
}

// d2xMainLine attributes the next generated line to a main-body statement.
func (g *gen) d2xMainLine(env *udfEnv, gtLine int) {
	if g.ctx == nil || !g.ctx.InSection() {
		return
	}
	g.ctx.PushSourceLoc(g.gtFile, gtLine, "main")
	_ = env
}

// d2xUDFLine attributes the next generated line to a UDF body statement,
// with the specialising operator's call site as the outer extended frame.
func (g *gen) d2xUDFLine(env *udfEnv, gtLine int) {
	if g.ctx == nil || !g.ctx.InSection() {
		return
	}
	g.ctx.PushSourceLoc(g.gtFile, gtLine, env.encl)
	g.ctx.PushSourceLoc(g.gtFile, env.site.Line, "main")
	g.d2xSiteVars(env.site)
}

// d2xDriverLine attributes the next generated line to the operator itself.
func (g *gen) d2xDriverLine(site *ApplySite) {
	if g.ctx == nil || !g.ctx.InSection() {
		return
	}
	g.ctx.PushSourceLoc(g.gtFile, site.Line, "main")
	g.d2xSiteVars(site)
}

// d2xSiteVars exposes the compiler's scheduling decisions as extended
// variables — internal state invisible in both the DSL input and the
// generated binary (paper §2.3).
func (g *gen) d2xSiteVars(site *ApplySite) {
	label := site.Label
	if label == "" {
		label = fmt.Sprintf("op%d", site.Index+1)
	}
	g.ctx.SetVar("apply_op", fmt.Sprintf("%s (%s line %d)", label, g.gtFile, site.Line))
	g.ctx.SetVar("schedule", site.Schedule.String())
	g.ctx.SetVar("specialized_udf", site.SpecializedName)
}

// d2xFrontierVar registers a vertexset local as a live extended variable
// backed by the frontier rtv_handler, so `xvars <name>` decodes whichever
// representation the set currently uses.
func (g *gen) d2xFrontierVar(name string) {
	if g.ctx == nil || !g.ctx.InSection() {
		return
	}
	g.ctx.CreateVar(name)
	if err := g.ctx.UpdateVarHandler(name, frontierHandler); err != nil {
		g.fail("%s", err)
	}
}

// frontierHandler names the generated runtime value handler of Figure 7.
var frontierHandler = d2xc.RTVHandler{FuncName: "__d2x_rtv_frontier"}

// XGraphMacro is a GraphIt-specific debugger command (paper §4.3): the
// compiler generates __d2x_ext_graph_info into the program and supplies
// this macro alongside the standard D2X ones. Neither the debugger nor the
// D2X runtime library knows it exists.
const XGraphMacro = `define xgraph
  call __d2x_ext_graph_info()
end
`

// emitGraphInfoExtension generates the DSL-specific extension command's
// implementation: plain generated code that inspects the loaded graph.
func (g *gen) emitGraphInfoExtension() {
	if g.ctx == nil {
		return
	}
	for _, l := range strings.Split(strings.TrimSpace(`
func void __d2x_ext_graph_info() {
	if (__g == null) {
		printf("graph not loaded yet\n");
		return;
	}
	int maxdeg = 0;
	for (int v = 0; v < __g->num_vertices; v++) {
		maxdeg = max_int(maxdeg, __g->out_deg[v]);
	}
	printf("graph: %d vertices, %d edges, max out-degree %d\n",
		__g->num_vertices, __g->num_edges, maxdeg);
}`), "\n") {
		g.e.Emitln("%s", l)
	}
}

// emitFrontierHandler generates the Figure 7 handler: find the frontier on
// the paused frame by name via the D2X runtime API, check the current
// representation, and serialise the active vertices accordingly.
func (g *gen) emitFrontierHandler() {
	if g.ctx == nil {
		return
	}
	for _, l := range strings.Split(strings.TrimSpace(`
func string __d2x_rtv_frontier(string key) {
	frontier_t** addr = d2x_find_stack_var(key);
	frontier_t* set = *addr;
	if (set == null) {
		return "<unset>";
	}
	string ret_val = "is_dense(" + to_str(set->is_dense) + ") [";
	if (set->is_dense) {
		for (int i = 0; i < set->vertices_range; i++) {
			if (set->bool_map[i]) {
				ret_val = ret_val + to_str(i) + ",";
			}
		}
	} else {
		for (int i = 0; i < set->num_vertices; i++) {
			ret_val = ret_val + to_str(set->dense_vertex_set[i]) + ",";
		}
	}
	return ret_val + "]";
}`), "\n") {
		g.e.Emitln("%s", l)
	}
}
