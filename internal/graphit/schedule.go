package graphit

import (
	"fmt"
	"strings"
)

// ApplySchedule is the how-to-execute decision for one labelled operator —
// GraphIt's scheduling language separated from the algorithm (paper §5.1).
type ApplySchedule struct {
	Label string
	// Direction selects the iteration strategy: "push" iterates source
	// vertices and their out-edges (writes race, so vector updates are
	// specialised to atomics — Figure 2 line 2); "pull" iterates
	// destination vertices and their in-edges (each destination is owned
	// by one thread, so plain updates are safe — Figure 2 line 5).
	Direction string
	// Parallel fans the outer loop out across the runtime's logical
	// threads.
	Parallel bool
	// Frontier picks the vertexset representation for the operator's
	// input frontier: "sparse" (CompressedQueue), "dense"
	// (Boolmap+Bitmap), or "auto" (switch by density at runtime).
	Frontier string
}

// String renders the schedule the way D2X exposes it as an extended
// variable.
func (s ApplySchedule) String() string {
	return fmt.Sprintf("direction=%s parallel=%t frontier=%s", s.Direction, s.Parallel, s.Frontier)
}

// DefaultSchedule is applied to operators without an entry: serial push
// over an auto frontier, GraphIt's unscheduled baseline.
var DefaultSchedule = ApplySchedule{Direction: "push", Parallel: false, Frontier: "auto"}

// Schedule maps operator labels to their apply schedules.
type Schedule struct {
	byLabel map[string]ApplySchedule
}

// EmptySchedule returns a schedule with defaults only.
func EmptySchedule() *Schedule { return &Schedule{byLabel: map[string]ApplySchedule{}} }

// For returns the schedule of a label, defaulting when absent.
func (s *Schedule) For(label string) ApplySchedule {
	if sch, ok := s.byLabel[label]; ok {
		return sch
	}
	d := DefaultSchedule
	d.Label = label
	return d
}

// Labels returns the explicitly scheduled labels.
func (s *Schedule) Labels() []string {
	out := make([]string, 0, len(s.byLabel))
	for l := range s.byLabel {
		out = append(out, l)
	}
	return out
}

// ParseSchedule reads the scheduling language. One directive per line:
//
//	s1: direction=push, parallel=true, frontier=sparse
//	s2: direction=pull
//
// Comments start with '%'. The paper-style combined names DensePush,
// SparsePush and DensePull are accepted as direction values and imply the
// frontier representation.
func ParseSchedule(file, text string) (*Schedule, error) {
	s := EmptySchedule()
	for lineno, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		label, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, gtErrf(file, lineno+1, 1, "schedule directive needs 'label: settings'")
		}
		label = strings.TrimSpace(label)
		sch := DefaultSchedule
		sch.Label = label
		for _, kv := range strings.Split(rest, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, gtErrf(file, lineno+1, 1, "bad schedule setting %q", kv)
			}
			key = strings.TrimSpace(key)
			val = strings.TrimSpace(val)
			switch key {
			case "direction":
				switch val {
				case "push", "pull":
					sch.Direction = val
				case "DensePush":
					sch.Direction = "push"
					sch.Frontier = "dense"
				case "SparsePush":
					sch.Direction = "push"
					sch.Frontier = "sparse"
				case "DensePull":
					sch.Direction = "pull"
					sch.Frontier = "dense"
				default:
					return nil, gtErrf(file, lineno+1, 1, "unknown direction %q", val)
				}
			case "parallel":
				switch val {
				case "true", "parallel":
					sch.Parallel = true
				case "false", "serial":
					sch.Parallel = false
				default:
					return nil, gtErrf(file, lineno+1, 1, "unknown parallel setting %q", val)
				}
			case "frontier":
				switch val {
				case "sparse", "dense", "auto":
					sch.Frontier = val
				default:
					return nil, gtErrf(file, lineno+1, 1, "unknown frontier representation %q", val)
				}
			default:
				return nil, gtErrf(file, lineno+1, 1, "unknown schedule key %q", key)
			}
		}
		if _, dup := s.byLabel[label]; dup {
			return nil, gtErrf(file, lineno+1, 1, "duplicate schedule for label %q", label)
		}
		s.byLabel[label] = sch
	}
	return s, nil
}
