package graphit

import (
	"fmt"
	"strings"
)

// PrintProgram renders a parsed .gt program back to algorithm-language
// source. Printing a parse of the output yields an identical tree (a
// property the tests check); tools use it for formatting and for dumping
// frontend output.
func PrintProgram(p *Program) string {
	pr := &gtPrinter{}
	for _, el := range p.Elements {
		pr.line("element %s end", el)
	}
	for _, cd := range p.Consts {
		pr.printConst(cd)
	}
	for _, fd := range p.Funcs {
		pr.nl()
		pr.printFunc(fd)
	}
	return pr.b.String()
}

type gtPrinter struct {
	b      strings.Builder
	indent int
}

func (p *gtPrinter) nl() { p.b.WriteByte('\n') }

func (p *gtPrinter) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("\t", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.nl()
}

func (p *gtPrinter) printConst(cd *ConstDecl) {
	switch {
	case cd.LoadSpec != nil:
		p.line("const %s : %s = load(%s)", cd.Name, gtTypeString(cd.Type), gtExprString(cd.LoadSpec))
	case cd.ScalarInit != nil:
		p.line("const %s : %s = %s", cd.Name, gtTypeString(cd.Type), gtExprString(cd.ScalarInit))
	default:
		p.line("const %s : %s", cd.Name, gtTypeString(cd.Type))
	}
}

// gtTypeString renders a type in surface syntax (GType.String uses the
// compact diagnostic form; this one round-trips through the parser).
func gtTypeString(t *GType) string {
	switch t.Kind {
	case GTVector:
		return fmt.Sprintf("vector{Vertex}(%s)", gtTypeString(t.Elem))
	case GTVertexSet:
		return "vertexset{Vertex}"
	case GTEdgeSet:
		if t.Weighted {
			return "edgeset{Edge}(Vertex, Vertex, int)"
		}
		return "edgeset{Edge}(Vertex, Vertex)"
	default:
		return t.String()
	}
}

func (p *gtPrinter) printFunc(fd *FuncDef) {
	params := make([]string, len(fd.Params))
	for i, pr := range fd.Params {
		params[i] = fmt.Sprintf("%s: %s", pr.Name, gtTypeString(pr.Type))
	}
	sig := fmt.Sprintf("func %s(%s)", fd.Name, strings.Join(params, ", "))
	if fd.RetName != "" {
		sig += fmt.Sprintf(" -> %s: %s", fd.RetName, gtTypeString(fd.RetType))
	}
	p.line("%s", sig)
	p.indent++
	p.printStmts(fd.Body)
	p.indent--
	p.line("end")
}

func (p *gtPrinter) printStmts(stmts []GStmt) {
	for _, s := range stmts {
		p.printStmt(s)
	}
}

func (p *gtPrinter) printStmt(s GStmt) {
	switch st := s.(type) {
	case *VarDecl:
		p.line("var %s : %s = %s", st.Name, gtTypeString(st.Type), gtExprString(st.Init))
	case *AssignStmt:
		rhs := st.RHS
		label := ""
		if le, ok := rhs.(*labelledExpr); ok {
			label = "#" + le.label + "# "
			rhs = le.inner
		}
		p.line("%s%s %s %s", label, gtExprString(st.LHS), st.Op, gtExprString(rhs))
	case *ExprStmt:
		label := ""
		if st.Label != "" {
			label = "#" + st.Label + "# "
		}
		p.line("%s%s", label, gtExprString(st.X))
	case *IfStmt:
		p.printIf(st, "if")
		p.line("end")
	case *WhileStmt:
		p.line("while %s", gtExprString(st.Cond))
		p.indent++
		p.printStmts(st.Body)
		p.indent--
		p.line("end")
	case *ForStmt:
		p.line("for %s in %s:%s", st.Var, gtExprString(st.Lo), gtExprString(st.Hi))
		p.indent++
		p.printStmts(st.Body)
		p.indent--
		p.line("end")
	case *PrintStmt:
		p.line("print %s", gtExprString(st.X))
	case *BreakStmt:
		p.line("break")
	}
}

// printIf renders an if/elif chain without closing it (the caller prints
// the final end). A single nested IfStmt in the else slot renders as elif.
func (p *gtPrinter) printIf(st *IfStmt, keyword string) {
	p.line("%s %s", keyword, gtExprString(st.Cond))
	p.indent++
	p.printStmts(st.Then)
	p.indent--
	if len(st.Else) == 0 {
		return
	}
	if inner, ok := st.Else[0].(*IfStmt); ok && len(st.Else) == 1 {
		p.printIf(inner, "elif")
		return
	}
	p.line("else")
	p.indent++
	p.printStmts(st.Else)
	p.indent--
}

// gtExprString renders an expression with precedence-correct parentheses.
func gtExprString(e GExpr) string { return gtExprPrec(e, 0) }

func gtOpPrec(op string) int {
	switch op {
	case "or":
		return 1
	case "and":
		return 2
	case "==", "!=":
		return 3
	case "<", "<=", ">", ">=":
		return 4
	case "+", "-":
		return 5
	case "*", "/":
		return 6
	}
	return 0
}

func gtExprPrec(e GExpr, min int) string {
	s, prec := gtExprRaw(e)
	if prec < min {
		return "(" + s + ")"
	}
	return s
}

func gtExprRaw(e GExpr) (string, int) {
	switch x := e.(type) {
	case *labelledExpr:
		return gtExprRaw(x.inner)
	case *IntLit:
		return fmt.Sprint(x.Val), 8
	case *FloatLit:
		s := fmt.Sprintf("%g", x.Val)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s, 8
	case *BoolLit:
		return fmt.Sprint(x.Val), 8
	case *StringLit:
		return fmt.Sprintf("%q", x.Val), 8
	case *NameRef:
		return x.Name, 8
	case *BinExpr:
		prec := gtOpPrec(x.Op)
		return fmt.Sprintf("%s %s %s", gtExprPrec(x.X, prec), x.Op, gtExprPrec(x.Y, prec+1)), prec
	case *UnExpr:
		if x.Op == "not" {
			return "not " + gtExprPrec(x.X, 7), 7
		}
		return "-" + gtExprPrec(x.X, 7), 7
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", gtExprPrec(x.X, 8), gtExprString(x.Index)), 8
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = gtExprString(a)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", ")), 8
	case *MethodExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = gtExprString(a)
		}
		return fmt.Sprintf("%s.%s(%s)", gtExprPrec(x.Recv, 8), x.Method, strings.Join(args, ", ")), 8
	case *NewVertexSetExpr:
		return fmt.Sprintf("new vertexset{Vertex}(%s)", gtExprString(x.Count)), 8
	}
	return "<?>", 8
}
