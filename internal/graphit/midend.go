package graphit

import "fmt"

// ApplyMidend attaches a schedule to every operator site and plans the
// per-call-site UDF specialisations. This is the decision point the paper
// describes in §2.1: the same UDF used by two operators compiles into two
// different functions (Figure 1 -> Figure 2), each named udf_N for call
// site N, and each driver gets its own generated function.
func ApplyMidend(info *Info, sched *Schedule) error {
	if sched == nil {
		sched = EmptySchedule()
	}
	// Labels in the schedule must exist in the program — catching typos in
	// schedule files is part of the compiler's job.
	known := map[string]bool{}
	for _, site := range info.Sites {
		if site.Label != "" {
			known[site.Label] = true
		}
	}
	for _, l := range sched.Labels() {
		if !known[l] {
			return fmt.Errorf("graphit: schedule names label %q, but no operator carries it", l)
		}
	}

	specCount := map[string]int{}
	for _, site := range info.Sites {
		site.Schedule = sched.For(site.Label)
		if site.Kind == SiteVertexApply || site.Kind == SiteVertexFilter {
			// Vertex operators have no direction; normalise so the debug
			// info doesn't report a meaningless push/pull.
			site.Schedule.Direction = "vertex"
		}
		specCount[site.UDF.Name]++
		site.SpecializedName = fmt.Sprintf("%s_%d", site.UDF.Name, specCount[site.UDF.Name])
		label := site.Label
		if label == "" {
			label = fmt.Sprintf("op%d", site.Index+1)
		}
		site.DriverName = fmt.Sprintf("__apply_%s", label)
	}
	// Driver names must be unique even when labels repeat.
	seen := map[string]int{}
	for _, site := range info.Sites {
		seen[site.DriverName]++
		if seen[site.DriverName] > 1 {
			site.DriverName = fmt.Sprintf("%s_%d", site.DriverName, seen[site.DriverName])
		}
	}
	return nil
}
