package graphit

import (
	"fmt"

	"d2x/internal/graphgen"
	"d2x/internal/minic"
)

// RegisterGraphNatives installs the graph-input natives the generated
// runtime prologue (__graphit_load) consumes. The generated code builds
// its own CSR; the host only serves the raw edge list described by a
// graph-spec string (see package graphgen). Parsed graphs are cached per
// registry, like an mmap'd input file.
func RegisterGraphNatives(nats *minic.Natives) {
	cache := map[string]*graphgen.Graph{}
	load := func(spec string) (*graphgen.Graph, error) {
		if g, ok := cache[spec]; ok {
			return g, nil
		}
		g, err := graphgen.Parse(spec)
		if err != nil {
			return nil, err
		}
		cache[spec] = g
		return g, nil
	}
	intT, strT := minic.IntType, minic.StringType

	nats.Register(&minic.Native{
		Name: "graph_spec_num_vertices",
		Sig:  minic.Signature{Params: []*minic.Type{strT}, Result: intT},
		Handler: func(call *minic.NativeCall) (minic.Value, error) {
			g, err := load(call.Args[0].S)
			if err != nil {
				return minic.NullVal(), err
			}
			return minic.IntVal(int64(g.N)), nil
		},
	})
	nats.Register(&minic.Native{
		Name: "graph_spec_num_edges",
		Sig:  minic.Signature{Params: []*minic.Type{strT}, Result: intT},
		Handler: func(call *minic.NativeCall) (minic.Value, error) {
			g, err := load(call.Args[0].S)
			if err != nil {
				return minic.NullVal(), err
			}
			return minic.IntVal(int64(g.NumEdges())), nil
		},
	})
	edgeEnd := func(idx int) minic.NativeHandler {
		return func(call *minic.NativeCall) (minic.Value, error) {
			g, err := load(call.Args[0].S)
			if err != nil {
				return minic.NullVal(), err
			}
			i := call.Args[1].I
			if i < 0 || i >= int64(len(g.Edges)) {
				return minic.NullVal(), fmt.Errorf("edge index %d out of range [0, %d)", i, len(g.Edges))
			}
			return minic.IntVal(int64(g.Edges[i][idx])), nil
		}
	}
	nats.Register(&minic.Native{
		Name:    "graph_spec_edge_src",
		Sig:     minic.Signature{Params: []*minic.Type{strT, intT}, Result: intT},
		Handler: edgeEnd(0),
	})
	nats.Register(&minic.Native{
		Name:    "graph_spec_edge_dst",
		Sig:     minic.Signature{Params: []*minic.Type{strT, intT}, Result: intT},
		Handler: edgeEnd(1),
	})
	nats.Register(&minic.Native{
		Name: "graph_spec_edge_weight",
		Sig:  minic.Signature{Params: []*minic.Type{strT, intT}, Result: intT},
		Handler: func(call *minic.NativeCall) (minic.Value, error) {
			g, err := load(call.Args[0].S)
			if err != nil {
				return minic.NullVal(), err
			}
			i := call.Args[1].I
			if i < 0 || i >= int64(len(g.Edges)) {
				return minic.NullVal(), fmt.Errorf("edge index %d out of range [0, %d)", i, len(g.Edges))
			}
			return minic.IntVal(int64(g.Weight(int(i)))), nil
		},
	})
}
