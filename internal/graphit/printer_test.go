package graphit

import "testing"

// TestPrintRoundTrip: for every canonical program, printing the parse and
// reparsing the output reaches a fixed point, and the reprinted program
// still compiles and runs to the same result.
func TestPrintRoundTrip(t *testing.T) {
	programs := map[string]string{
		"twoapply":      TwoApplySrc,
		"pagerank":      PageRankSrc,
		"pagerankdelta": PageRankDeltaSrc,
		"bfs":           BFSSrc,
		"cc":            CCSrc,
		"sssp":          SSSPSrc,
	}
	for name, src := range programs {
		t.Run(name, func(t *testing.T) {
			p1, err := ParseProgram(name+".gt", src)
			if err != nil {
				t.Fatal(err)
			}
			out1 := PrintProgram(p1)
			p2, err := ParseProgram(name+".gt", out1)
			if err != nil {
				t.Fatalf("reparse failed: %v\n%s", err, out1)
			}
			out2 := PrintProgram(p2)
			if out1 != out2 {
				t.Errorf("print is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
			}
		})
	}
}

// TestReprintedProgramBehaves: the pretty-printed source is a working
// program with identical output, including labels and schedules.
func TestReprintedProgramBehaves(t *testing.T) {
	cases := []struct{ name, src, sched string }{
		{"pagerankdelta", PageRankDeltaSrc, PageRankDeltaSchedule},
		{"bfs", BFSSrc, BFSSchedule},
		{"sssp", SSSPSrc, SSSPSchedule},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig, _ := runGT(t, tc.name+".gt", tc.src, tc.sched, false)
			p, err := ParseProgram(tc.name+".gt", tc.src)
			if err != nil {
				t.Fatal(err)
			}
			reprinted, _ := runGT(t, tc.name+".gt", PrintProgram(p), tc.sched, false)
			if orig != reprinted {
				t.Errorf("reprinted program diverges: %q vs %q", reprinted, orig)
			}
		})
	}
}

func TestPrinterPreservesConstructs(t *testing.T) {
	src := `element Vertex end
const edges : edgeset{Edge}(Vertex, Vertex, int) = load("chain:n=4")
const v : vector{Vertex}(float) = 1.0 / num_vertices

func f(a: Vertex, b: Vertex, w: int)
	v[b] min= v[a] + w
end

func g(x: Vertex) -> out: bool
	if v[x] > 1.0 and not (v[x] == 2.0)
		out = true
	elif v[x] < 0.5
		out = false
	else
		out = v[x] != 1.0
	end
end

func main()
	var s : vertexset{Vertex} = new vertexset{Vertex}(0)
	#lbl# s = edges.from(s).applyModified(f, v)
	print s.size()
end
`
	p, err := ParseProgram("t.gt", src)
	if err != nil {
		t.Fatal(err)
	}
	out := PrintProgram(p)
	for _, want := range []string{
		"edgeset{Edge}(Vertex, Vertex, int)",
		"min=",
		"-> out: bool",
		"elif",
		"not ",
		"#lbl# s = edges.from(s).applyModified(f, v)",
		"new vertexset{Vertex}(0)",
	} {
		if !contains(out, want) {
			t.Errorf("printed output missing %q:\n%s", want, out)
		}
	}
	// And the output reparses.
	if _, err := ParseProgram("t.gt", out); err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
