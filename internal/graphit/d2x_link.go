package graphit

// Link-step D2X wiring for GraphIt builds; part of the Table 3 delta (see
// d2x_support.go for the accounting rule).

import (
	"os"

	"d2x/internal/d2x"
	"d2x/internal/minic"
)

// Link assembles a debuggable build from a compiled artifact: the
// generated code with the D2X tables riding inside it, the standard debug
// info, the D2X runtime, and the GraphIt graph natives. The .gt source is
// served to xlist from memory, falling back to the filesystem for any
// other first-stage file.
func (a *Artifact) Link() (*d2x.Build, error) { return a.LinkOptimizing(false) }

// LinkOptimizing is Link with the mini-C constant folder optionally run
// over the generated code first.
func (a *Artifact) LinkOptimizing(optimize bool) (*d2x.Build, error) {
	build, err := d2x.Link(genFileName(a.GTFile), a.Source, a.Ctx, d2x.LinkOptions{
		WithoutD2X: a.Ctx == nil,
		Optimize:   optimize,
		Natives:    RegisterGraphNatives,
		FileResolver: func(path string) (string, error) {
			if path == a.GTFile {
				return a.GTSource, nil
			}
			b, err := os.ReadFile(path)
			return string(b), err
		},
	})
	if err != nil {
		return nil, err
	}
	if a.Ctx != nil {
		build.ExtraMacros = XGraphMacro
	}
	return build, nil
}

// LinkWithNatives is Link with additional host natives (used by tests to
// inject probes).
func (a *Artifact) LinkWithNatives(extra func(*minic.Natives)) (*d2x.Build, error) {
	return d2x.Link(genFileName(a.GTFile), a.Source, a.Ctx, d2x.LinkOptions{
		WithoutD2X: a.Ctx == nil,
		Natives: func(n *minic.Natives) {
			RegisterGraphNatives(n)
			if extra != nil {
				extra(n)
			}
		},
		FileResolver: func(path string) (string, error) {
			if path == a.GTFile {
				return a.GTSource, nil
			}
			b, err := os.ReadFile(path)
			return string(b), err
		},
	})
}

// genFileName derives the generated-code file name: pagerankdelta.gt ->
// pagerankdelta.c (the paper's Figure 6 pairing).
func genFileName(gtFile string) string {
	base := gtFile
	for i := len(base) - 1; i >= 0; i-- {
		if base[i] == '.' {
			base = base[:i]
			break
		}
	}
	return base + ".c"
}
