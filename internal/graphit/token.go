// Package graphit implements a compiler for a GraphIt-style graph DSL —
// the paper's first case study (§5.1). The algorithm language (".gt"
// files) separates *what* is computed; the scheduling language separates
// *how* (push/pull direction, parallelisation, frontier representation).
// The compiler lowers high-level operators like edgeset.apply through a
// mid-end that specialises user-defined functions per call site (Figures
// 1-2), then generates mini-C, optionally instrumented with D2X debug
// information (the d2x_*.go files hold that delta, accounted in Table 3).
package graphit

import "fmt"

type tokKind int

const (
	tEOF tokKind = iota
	tNewline
	tIdent
	tInt
	tFloat
	tString
	tLabel // #s1#

	// Keywords.
	tKwElement
	tKwEnd
	tKwConst
	tKwFunc
	tKwVar
	tKwIf
	tKwElif
	tKwElse
	tKwWhile
	tKwFor
	tKwIn
	tKwPrint
	tKwBreak
	tKwTrue
	tKwFalse
	tKwNew
	tKwAnd
	tKwOr
	tKwNot
	tKwInt
	tKwFloat
	tKwBool
	tKwVertex
	tKwVector
	tKwVertexset
	tKwEdgeset
	tKwLoad

	// Punctuation.
	tColon
	tComma
	tLParen
	tRParen
	tLBrace
	tRBrace
	tLBracket
	tRBracket
	tAssign
	tPlusAssign
	tMinusAssign
	tEq
	tNeq
	tLt
	tLe
	tGt
	tGe
	tPlus
	tMinus
	tStar
	tSlash
	tPercent
	tDot
	tArrow
)

var gtKeywords = map[string]tokKind{
	"element":   tKwElement,
	"end":       tKwEnd,
	"const":     tKwConst,
	"func":      tKwFunc,
	"var":       tKwVar,
	"if":        tKwIf,
	"elif":      tKwElif,
	"else":      tKwElse,
	"while":     tKwWhile,
	"for":       tKwFor,
	"in":        tKwIn,
	"print":     tKwPrint,
	"break":     tKwBreak,
	"true":      tKwTrue,
	"false":     tKwFalse,
	"new":       tKwNew,
	"and":       tKwAnd,
	"or":        tKwOr,
	"not":       tKwNot,
	"int":       tKwInt,
	"float":     tKwFloat,
	"bool":      tKwBool,
	"Vertex":    tKwVertex,
	"vector":    tKwVector,
	"vertexset": tKwVertexset,
	"edgeset":   tKwEdgeset,
	"load":      tKwLoad,
}

var gtTokNames = map[tokKind]string{
	tEOF: "end of file", tNewline: "newline", tIdent: "identifier",
	tInt: "integer", tFloat: "float literal", tString: "string literal",
	tLabel: "label", tColon: ":", tComma: ",", tLParen: "(", tRParen: ")",
	tLBrace: "{", tRBrace: "}", tLBracket: "[", tRBracket: "]",
	tAssign: "=", tPlusAssign: "+=", tMinusAssign: "-=", tEq: "==",
	tNeq: "!=", tLt: "<", tLe: "<=", tGt: ">", tGe: ">=", tPlus: "+",
	tMinus: "-", tStar: "*", tSlash: "/", tPercent: "%", tDot: ".",
	tArrow: "->",
}

func (k tokKind) String() string {
	if s, ok := gtTokNames[k]; ok {
		return s
	}
	for name, kw := range gtKeywords {
		if kw == k {
			return fmt.Sprintf("keyword %q", name)
		}
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

type gtToken struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t gtToken) String() string {
	switch t.kind {
	case tIdent, tInt, tFloat, tString, tLabel:
		return fmt.Sprintf("%s %q", t.kind, t.text)
	}
	return t.kind.String()
}
