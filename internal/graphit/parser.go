package graphit

import "strconv"

// gtParser parses the token stream of one .gt file.
type gtParser struct {
	file string
	toks []gtToken
	pos  int
}

// ParseProgram parses GraphIt algorithm-language source.
func ParseProgram(file, src string) (*Program, error) {
	toks, err := gtLex(file, src)
	if err != nil {
		return nil, err
	}
	p := &gtParser{file: file, toks: toks}
	return p.program()
}

func (p *gtParser) cur() gtToken      { return p.toks[p.pos] }
func (p *gtParser) at(k tokKind) bool { return p.cur().kind == k }

func (p *gtParser) advance() gtToken {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *gtParser) expect(k tokKind) (gtToken, error) {
	if !p.at(k) {
		t := p.cur()
		return t, gtErrf(p.file, t.line, t.col, "expected %s, found %s", k, t)
	}
	return p.advance(), nil
}

func (p *gtParser) errHere(format string, args ...any) error {
	t := p.cur()
	return gtErrf(p.file, t.line, t.col, format, args...)
}

func (p *gtParser) skipNewlines() {
	for p.at(tNewline) {
		p.advance()
	}
}

func (p *gtParser) term() error {
	if p.at(tEOF) {
		return nil
	}
	if _, err := p.expect(tNewline); err != nil {
		return err
	}
	p.skipNewlines()
	return nil
}

func (p *gtParser) program() (*Program, error) {
	prog := &Program{File: p.file}
	p.skipNewlines()
	for !p.at(tEOF) {
		switch p.cur().kind {
		case tKwElement:
			p.advance()
			// Element names may collide with type keywords (Vertex).
			name := p.cur()
			if name.kind != tIdent && name.kind != tKwVertex {
				return nil, p.errHere("expected element name, found %s", name)
			}
			p.advance()
			if name.text == "" {
				name.text = "Vertex"
			}
			p.skipNewlines()
			if _, err := p.expect(tKwEnd); err != nil {
				return nil, err
			}
			if err := p.term(); err != nil {
				return nil, err
			}
			prog.Elements = append(prog.Elements, name.text)
		case tKwConst:
			cd, err := p.constDecl()
			if err != nil {
				return nil, err
			}
			prog.Consts = append(prog.Consts, cd)
		case tKwFunc:
			fd, err := p.funcDef()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fd)
		default:
			return nil, p.errHere("expected element, const, or func declaration, found %s", p.cur())
		}
	}
	return prog, nil
}

func (p *gtParser) constDecl() (*ConstDecl, error) {
	kw := p.advance() // const
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tColon); err != nil {
		return nil, err
	}
	typ, err := p.typeSpec()
	if err != nil {
		return nil, err
	}
	cd := &ConstDecl{Name: name.text, Type: typ, Line: kw.line}
	if p.at(tAssign) {
		p.advance()
		if p.at(tKwLoad) {
			p.advance()
			if _, err := p.expect(tLParen); err != nil {
				return nil, err
			}
			spec, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
			cd.LoadSpec = spec
		} else {
			init, err := p.expr()
			if err != nil {
				return nil, err
			}
			cd.ScalarInit = init
		}
	}
	return cd, p.term()
}

func (p *gtParser) typeSpec() (*GType, error) {
	t := p.cur()
	switch t.kind {
	case tKwInt:
		p.advance()
		return gtInt, nil
	case tKwFloat:
		p.advance()
		return gtFloat, nil
	case tKwBool:
		p.advance()
		return gtBool, nil
	case tKwVertex:
		p.advance()
		return gtVertex, nil
	case tKwVector:
		p.advance()
		if _, err := p.expect(tLBrace); err != nil {
			return nil, err
		}
		if _, err := p.expect(tKwVertex); err != nil {
			return nil, err
		}
		if _, err := p.expect(tRBrace); err != nil {
			return nil, err
		}
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		elem, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return &GType{Kind: GTVector, Elem: elem}, nil
	case tKwVertexset:
		p.advance()
		if _, err := p.expect(tLBrace); err != nil {
			return nil, err
		}
		if _, err := p.expect(tKwVertex); err != nil {
			return nil, err
		}
		if _, err := p.expect(tRBrace); err != nil {
			return nil, err
		}
		return gtVertexSet, nil
	case tKwEdgeset:
		p.advance()
		if _, err := p.expect(tLBrace); err != nil {
			return nil, err
		}
		if _, err := p.expect(tIdent); err != nil { // Edge
			return nil, err
		}
		if _, err := p.expect(tRBrace); err != nil {
			return nil, err
		}
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tKwVertex); err != nil {
			return nil, err
		}
		if _, err := p.expect(tComma); err != nil {
			return nil, err
		}
		if _, err := p.expect(tKwVertex); err != nil {
			return nil, err
		}
		weighted := false
		if p.at(tComma) {
			p.advance()
			if _, err := p.expect(tKwInt); err != nil {
				return nil, err
			}
			weighted = true
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		if weighted {
			return &GType{Kind: GTEdgeSet, Weighted: true}, nil
		}
		return gtEdgeSet, nil
	}
	return nil, p.errHere("expected type, found %s", t)
}

func (p *gtParser) funcDef() (*FuncDef, error) {
	kw := p.advance() // func
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	fd := &FuncDef{Name: name.text, Line: kw.line, RetType: gtVoid}
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	for !p.at(tRParen) {
		pn, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tColon); err != nil {
			return nil, err
		}
		pt, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		fd.Params = append(fd.Params, GParam{Name: pn.text, Type: pt})
		if p.at(tComma) {
			p.advance()
		} else {
			break
		}
	}
	if _, err := p.expect(tRParen); err != nil {
		return nil, err
	}
	if p.at(tArrow) {
		p.advance()
		rn, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tColon); err != nil {
			return nil, err
		}
		rt, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		fd.RetName = rn.text
		fd.RetType = rt
	}
	if err := p.term(); err != nil {
		return nil, err
	}
	body, err := p.stmtsUntil(tKwEnd)
	if err != nil {
		return nil, err
	}
	fd.Body = body
	p.advance() // end
	return fd, p.term()
}

// stmtsUntil parses statements until one of the given terminators is the
// current token (not consumed).
func (p *gtParser) stmtsUntil(terms ...tokKind) ([]GStmt, error) {
	var stmts []GStmt
	p.skipNewlines()
	for {
		for _, k := range terms {
			if p.at(k) {
				return stmts, nil
			}
		}
		if p.at(tEOF) {
			return nil, p.errHere("unexpected end of file (missing 'end'?)")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		p.skipNewlines()
	}
}

func (p *gtParser) stmt() (GStmt, error) {
	t := p.cur()
	switch t.kind {
	case tKwVar:
		p.advance()
		name, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tColon); err != nil {
			return nil, err
		}
		typ, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tAssign); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &VarDecl{gstmtBase: gstmtBase{Line: t.line}, Name: name.text, Type: typ, Init: init}, p.term()

	case tKwIf:
		return p.ifStmt()

	case tKwWhile:
		p.advance()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.term(); err != nil {
			return nil, err
		}
		body, err := p.stmtsUntil(tKwEnd)
		if err != nil {
			return nil, err
		}
		p.advance()
		return &WhileStmt{gstmtBase: gstmtBase{Line: t.line}, Cond: cond, Body: body}, p.term()

	case tKwFor:
		p.advance()
		name, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tKwIn); err != nil {
			return nil, err
		}
		lo, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tColon); err != nil {
			return nil, err
		}
		hi, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.term(); err != nil {
			return nil, err
		}
		body, err := p.stmtsUntil(tKwEnd)
		if err != nil {
			return nil, err
		}
		p.advance()
		return &ForStmt{gstmtBase: gstmtBase{Line: t.line}, Var: name.text, Lo: lo, Hi: hi, Body: body}, p.term()

	case tKwPrint:
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &PrintStmt{gstmtBase: gstmtBase{Line: t.line}, X: x}, p.term()

	case tKwBreak:
		p.advance()
		return &BreakStmt{gstmtBase{Line: t.line}}, p.term()
	}

	// Labelled or plain expression/assignment statement.
	label := ""
	if p.at(tLabel) {
		label = p.advance().text
	}
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	// `lhs min= rhs` — GraphIt's minimum-reduction assignment, used by
	// SSSP-style relaxations. Lexically it is the identifier `min`
	// followed by `=`.
	if p.at(tIdent) && p.cur().text == "min" && p.toks[p.pos+1].kind == tAssign {
		p.advance() // min
		p.advance() // =
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if label != "" {
			if err := p.term(); err != nil {
				return nil, err
			}
			return &AssignStmt{gstmtBase: gstmtBase{Line: t.line}, Op: "min=",
				LHS: lhs, RHS: &labelledExpr{inner: rhs, label: label}}, nil
		}
		return &AssignStmt{gstmtBase: gstmtBase{Line: t.line}, Op: "min=", LHS: lhs, RHS: rhs}, p.term()
	}
	switch p.cur().kind {
	case tAssign, tPlusAssign, tMinusAssign:
		opTok := p.advance()
		op := "="
		if opTok.kind == tPlusAssign {
			op = "+="
		} else if opTok.kind == tMinusAssign {
			op = "-="
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if label != "" {
			// A labelled assignment labels its RHS operator expression.
			if err := p.term(); err != nil {
				return nil, err
			}
			return &AssignStmt{gstmtBase: gstmtBase{Line: t.line}, Op: op,
				LHS: lhs, RHS: &labelledExpr{inner: rhs, label: label}}, nil
		}
		return &AssignStmt{gstmtBase: gstmtBase{Line: t.line}, Op: op, LHS: lhs, RHS: rhs}, p.term()
	}
	return &ExprStmt{gstmtBase: gstmtBase{Line: t.line}, Label: label, X: lhs}, p.term()
}

// labelledExpr wraps an operator expression with its schedule label when
// the operator appears on the right of an assignment
// (frontier = edges.from(f).applyModified(...)).
type labelledExpr struct {
	inner GExpr
	label string
}

func (e *labelledExpr) gline() int       { return e.inner.gline() }
func (e *labelledExpr) GType() *GType    { return e.inner.GType() }
func (e *labelledExpr) setType(t *GType) { e.inner.setType(t) }

func (p *gtParser) ifStmt() (GStmt, error) {
	t := p.advance() // if or elif
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.term(); err != nil {
		return nil, err
	}
	then, err := p.stmtsUntil(tKwEnd, tKwElse, tKwElif)
	if err != nil {
		return nil, err
	}
	s := &IfStmt{gstmtBase: gstmtBase{Line: t.line}, Cond: cond, Then: then}
	switch p.cur().kind {
	case tKwElif:
		els, err := p.ifStmt() // consumes through its own end
		if err != nil {
			return nil, err
		}
		s.Else = []GStmt{els}
		return s, nil
	case tKwElse:
		p.advance()
		if err := p.term(); err != nil {
			return nil, err
		}
		els, err := p.stmtsUntil(tKwEnd)
		if err != nil {
			return nil, err
		}
		s.Else = els
		p.advance() // end
		return s, p.term()
	default: // end
		p.advance()
		return s, p.term()
	}
}

// ---- Expressions ----

func gtBinPrec(k tokKind) (string, int) {
	switch k {
	case tKwOr:
		return "or", 1
	case tKwAnd:
		return "and", 2
	case tEq:
		return "==", 3
	case tNeq:
		return "!=", 3
	case tLt:
		return "<", 4
	case tLe:
		return "<=", 4
	case tGt:
		return ">", 4
	case tGe:
		return ">=", 4
	case tPlus:
		return "+", 5
	case tMinus:
		return "-", 5
	case tStar:
		return "*", 6
	case tSlash:
		return "/", 6
	}
	return "", 0
}

func (p *gtParser) expr() (GExpr, error) { return p.binExpr(1) }

func (p *gtParser) binExpr(minPrec int) (GExpr, error) {
	lhs, err := p.unExpr()
	if err != nil {
		return nil, err
	}
	for {
		op, prec := gtBinPrec(p.cur().kind)
		if prec == 0 || prec < minPrec {
			return lhs, nil
		}
		opTok := p.advance()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{gexprBase: gexprBase{Line: opTok.line}, Op: op, X: lhs, Y: rhs}
	}
}

func (p *gtParser) unExpr() (GExpr, error) {
	t := p.cur()
	switch t.kind {
	case tMinus:
		p.advance()
		x, err := p.unExpr()
		if err != nil {
			return nil, err
		}
		return &UnExpr{gexprBase: gexprBase{Line: t.line}, Op: "-", X: x}, nil
	case tKwNot:
		p.advance()
		x, err := p.unExpr()
		if err != nil {
			return nil, err
		}
		return &UnExpr{gexprBase: gexprBase{Line: t.line}, Op: "not", X: x}, nil
	}
	return p.postfixExpr()
}

func (p *gtParser) postfixExpr() (GExpr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().kind {
		case tLBracket:
			lb := p.advance()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{gexprBase: gexprBase{Line: lb.line}, X: x, Index: idx}
		case tDot:
			dot := p.advance()
			name, err := p.expect(tIdent)
			if err != nil {
				return nil, err
			}
			m := &MethodExpr{gexprBase: gexprBase{Line: dot.line}, Recv: x, Method: name.text}
			if _, err := p.expect(tLParen); err != nil {
				return nil, err
			}
			for !p.at(tRParen) {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				m.Args = append(m.Args, a)
				if p.at(tComma) {
					p.advance()
				} else {
					break
				}
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
			x = m
		default:
			return x, nil
		}
	}
}

func (p *gtParser) primaryExpr() (GExpr, error) {
	t := p.cur()
	switch t.kind {
	case tInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, gtErrf(p.file, t.line, t.col, "bad integer %q", t.text)
		}
		return &IntLit{gexprBase: gexprBase{Line: t.line}, Val: v}, nil
	case tFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, gtErrf(p.file, t.line, t.col, "bad float %q", t.text)
		}
		return &FloatLit{gexprBase: gexprBase{Line: t.line}, Val: v}, nil
	case tString:
		p.advance()
		return &StringLit{gexprBase: gexprBase{Line: t.line}, Val: t.text}, nil
	case tKwTrue, tKwFalse:
		p.advance()
		return &BoolLit{gexprBase: gexprBase{Line: t.line}, Val: t.kind == tKwTrue}, nil
	case tLParen:
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return x, nil
	case tKwNew:
		p.advance()
		if _, err := p.expect(tKwVertexset); err != nil {
			return nil, err
		}
		if _, err := p.expect(tLBrace); err != nil {
			return nil, err
		}
		if _, err := p.expect(tKwVertex); err != nil {
			return nil, err
		}
		if _, err := p.expect(tRBrace); err != nil {
			return nil, err
		}
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		cnt, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return &NewVertexSetExpr{gexprBase: gexprBase{Line: t.line}, Count: cnt}, nil
	case tIdent:
		p.advance()
		if p.at(tLParen) {
			p.advance()
			c := &CallExpr{gexprBase: gexprBase{Line: t.line}, Name: t.text}
			for !p.at(tRParen) {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, a)
				if p.at(tComma) {
					p.advance()
				} else {
					break
				}
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
			return c, nil
		}
		return &NameRef{gexprBase: gexprBase{Line: t.line}, Name: t.text}, nil
	}
	return nil, p.errHere("expected expression, found %s", t)
}
