package graphit

// GraphIt algorithm-language AST. Line numbers are retained on every node:
// the frontend "already records the line and column number for each
// operator it parses for printing error messages" (paper §5.1), and the
// D2X integration propagates exactly these through the mid-end to codegen.

// TypeKind enumerates GraphIt types.
type TypeKind int

const (
	GTInt TypeKind = iota
	GTFloat
	GTBool
	GTVertex
	GTVector    // vector{Vertex}(Elem)
	GTVertexSet // vertexset{Vertex}
	GTEdgeSet   // edgeset{Edge}(Vertex, Vertex)
	GTVoid
)

// GType is a GraphIt type.
type GType struct {
	Kind TypeKind
	Elem *GType // element type for GTVector
	// Weighted marks edgesets declared with a third int component
	// (edgeset{Edge}(Vertex, Vertex, int)); their UDFs receive the edge
	// weight as a third parameter.
	Weighted bool
}

func (t *GType) String() string {
	switch t.Kind {
	case GTInt:
		return "int"
	case GTFloat:
		return "float"
	case GTBool:
		return "bool"
	case GTVertex:
		return "Vertex"
	case GTVector:
		return "vector{Vertex}(" + t.Elem.String() + ")"
	case GTVertexSet:
		return "vertexset{Vertex}"
	case GTEdgeSet:
		if t.Weighted {
			return "edgeset{Edge}(Vertex,Vertex,int)"
		}
		return "edgeset{Edge}(Vertex,Vertex)"
	case GTVoid:
		return "void"
	}
	return "?"
}

// Equal reports structural equality.
func (t *GType) Equal(o *GType) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind {
		return false
	}
	if t.Kind == GTVector {
		return t.Elem.Equal(o.Elem)
	}
	if t.Kind == GTEdgeSet {
		return t.Weighted == o.Weighted
	}
	return true
}

// IsNumeric reports int/float (Vertex indexes like an int but is not
// arithmetic in this dialect, except comparisons).
func (t *GType) IsNumeric() bool { return t.Kind == GTInt || t.Kind == GTFloat }

var (
	gtInt       = &GType{Kind: GTInt}
	gtFloat     = &GType{Kind: GTFloat}
	gtBool      = &GType{Kind: GTBool}
	gtVertex    = &GType{Kind: GTVertex}
	gtVertexSet = &GType{Kind: GTVertexSet}
	gtEdgeSet   = &GType{Kind: GTEdgeSet}
	gtVoid      = &GType{Kind: GTVoid}
)

// Program is one parsed .gt file.
type Program struct {
	File     string
	Elements []string
	Consts   []*ConstDecl
	Funcs    []*FuncDef
}

// FuncByName returns the function definition, or nil.
func (p *Program) FuncByName(name string) *FuncDef {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ConstDecl is a top-level `const name : type [= init]`.
type ConstDecl struct {
	Name string
	Type *GType
	Line int
	// Init forms: for edgesets, LoadSpec holds the load("...") argument;
	// for scalars/vectors, ScalarInit holds the fill value expression.
	LoadSpec   GExpr // nil unless edgeset
	ScalarInit GExpr // nil when absent
}

// FuncDef is a function definition, either a UDF applied by operators or
// main.
type FuncDef struct {
	Name    string
	Params  []GParam
	RetName string // named return variable ("" for void)
	RetType *GType
	Body    []GStmt
	Line    int
}

// GParam is a parameter of a GraphIt function.
type GParam struct {
	Name string
	Type *GType
}

// ---- Statements ----

// GStmt is a GraphIt statement.
type GStmt interface {
	gline() int
}

type gstmtBase struct{ Line int }

func (s gstmtBase) gline() int { return s.Line }

// VarDecl is `var name : type = init`.
type VarDecl struct {
	gstmtBase
	Name string
	Type *GType
	Init GExpr
}

// AssignStmt is `lhs = rhs`, `lhs += rhs`, `lhs -= rhs`.
type AssignStmt struct {
	gstmtBase
	Op  string // "=", "+=", "-="
	LHS GExpr
	RHS GExpr
}

// ExprStmt is an expression evaluated for effect, optionally labelled for
// scheduling (#s1# edges.apply(...)).
type ExprStmt struct {
	gstmtBase
	Label string
	X     GExpr
}

// IfStmt is if/elif/else/end (elif chains become nested IfStmts).
type IfStmt struct {
	gstmtBase
	Cond GExpr
	Then []GStmt
	Else []GStmt
}

// WhileStmt is while/end.
type WhileStmt struct {
	gstmtBase
	Cond GExpr
	Body []GStmt
}

// ForStmt is `for i in lo:hi` (hi exclusive).
type ForStmt struct {
	gstmtBase
	Var    string
	Lo, Hi GExpr
	Body   []GStmt
}

// PrintStmt is `print expr`.
type PrintStmt struct {
	gstmtBase
	X GExpr
}

// BreakStmt is `break`.
type BreakStmt struct{ gstmtBase }

// ---- Expressions ----

// GExpr is a GraphIt expression. Types are filled in by the checker.
type GExpr interface {
	gline() int
	GType() *GType
	setType(*GType)
}

type gexprBase struct {
	Line int
	typ  *GType
}

func (e *gexprBase) gline() int       { return e.Line }
func (e *gexprBase) GType() *GType    { return e.typ }
func (e *gexprBase) setType(t *GType) { e.typ = t }

// IntLit is an integer literal.
type IntLit struct {
	gexprBase
	Val int64
}

// FloatLit is a float literal.
type FloatLit struct {
	gexprBase
	Val float64
}

// BoolLit is true/false.
type BoolLit struct {
	gexprBase
	Val bool
}

// StringLit is a string literal (graph load specs).
type StringLit struct {
	gexprBase
	Val string
}

// NameRef references a const, local, parameter, or intrinsic.
type NameRef struct {
	gexprBase
	Name string
}

// BinExpr is a binary operation; Op is the surface operator.
type BinExpr struct {
	gexprBase
	Op   string
	X, Y GExpr
}

// UnExpr is `-x` or `not x`.
type UnExpr struct {
	gexprBase
	Op string
	X  GExpr
}

// IndexExpr is `vec[v]`.
type IndexExpr struct {
	gexprBase
	X     GExpr
	Index GExpr
}

// CallExpr is `f(args)` for free functions/intrinsics.
type CallExpr struct {
	gexprBase
	Name string
	Args []GExpr
}

// MethodExpr is `recv.method(args)` — the operator surface syntax:
// edges.apply(f), edges.from(fr).apply(f), vertices.filter(f), vs.size().
type MethodExpr struct {
	gexprBase
	Recv   GExpr
	Method string
	Args   []GExpr
}

// NewVertexSetExpr is `new vertexset{Vertex}(count)`: 0 means empty,
// anything else fills [0, count).
type NewVertexSetExpr struct {
	gexprBase
	Count GExpr
}
