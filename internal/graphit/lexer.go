package graphit

import (
	"fmt"
	"strings"
)

// CompileError is a positioned error in GraphIt input (algorithm or
// schedule).
type CompileError struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

func gtErrf(file string, line, col int, format string, args ...any) *CompileError {
	return &CompileError{File: file, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// gtLex tokenises a .gt source file. Newlines are significant (statement
// terminators); consecutive newlines collapse into one token. Comments run
// from '%' to end of line, per GraphIt convention.
func gtLex(file, src string) ([]gtToken, error) {
	var toks []gtToken
	line, col := 1, 1
	i := 0
	emit := func(kind tokKind, text string, c int) {
		toks = append(toks, gtToken{kind: kind, text: text, line: line, col: c})
	}
	lastSignificant := func() tokKind {
		if len(toks) == 0 {
			return tNewline
		}
		return toks[len(toks)-1].kind
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			if lastSignificant() != tNewline {
				emit(tNewline, "", col)
			}
			i++
			line++
			col = 1
			continue
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
			continue
		case c == '%':
			for i < len(src) && src[i] != '\n' {
				i++
			}
			continue
		}

		startCol := col
		two := func(k tokKind) {
			emit(k, "", startCol)
			i += 2
			col += 2
		}
		one := func(k tokKind) {
			emit(k, "", startCol)
			i++
			col++
		}

		switch {
		case isGtIdentStart(c):
			j := i
			for j < len(src) && isGtIdentCont(src[j]) {
				j++
			}
			word := src[i:j]
			col += j - i
			i = j
			if kw, ok := gtKeywords[word]; ok {
				emit(kw, word, startCol)
			} else {
				emit(tIdent, word, startCol)
			}
		case c >= '0' && c <= '9':
			j := i
			isFloat := false
			for j < len(src) && (src[j] >= '0' && src[j] <= '9') {
				j++
			}
			if j < len(src) && src[j] == '.' && j+1 < len(src) && src[j+1] >= '0' && src[j+1] <= '9' {
				isFloat = true
				j++
				for j < len(src) && (src[j] >= '0' && src[j] <= '9') {
					j++
				}
			}
			text := src[i:j]
			col += j - i
			i = j
			if isFloat {
				emit(tFloat, text, startCol)
			} else {
				emit(tInt, text, startCol)
			}
		case c == '"':
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != '"' && src[j] != '\n' {
				b.WriteByte(src[j])
				j++
			}
			if j >= len(src) || src[j] != '"' {
				return nil, gtErrf(file, line, startCol, "unterminated string literal")
			}
			emit(tString, b.String(), startCol)
			col += j - i + 1
			i = j + 1
		case c == '#':
			// Schedule label: #s1#
			j := i + 1
			for j < len(src) && isGtIdentCont(src[j]) {
				j++
			}
			if j >= len(src) || src[j] != '#' || j == i+1 {
				return nil, gtErrf(file, line, startCol, "malformed schedule label (expected #name#)")
			}
			emit(tLabel, src[i+1:j], startCol)
			col += j - i + 1
			i = j + 1
		case c == '+':
			if i+1 < len(src) && src[i+1] == '=' {
				two(tPlusAssign)
			} else {
				one(tPlus)
			}
		case c == '-':
			switch {
			case i+1 < len(src) && src[i+1] == '=':
				two(tMinusAssign)
			case i+1 < len(src) && src[i+1] == '>':
				two(tArrow)
			default:
				one(tMinus)
			}
		case c == '=':
			if i+1 < len(src) && src[i+1] == '=' {
				two(tEq)
			} else {
				one(tAssign)
			}
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				two(tNeq)
			} else {
				return nil, gtErrf(file, line, startCol, "unexpected '!'")
			}
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				two(tLe)
			} else {
				one(tLt)
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				two(tGe)
			} else {
				one(tGt)
			}
		case c == ':':
			one(tColon)
		case c == ',':
			one(tComma)
		case c == '(':
			one(tLParen)
		case c == ')':
			one(tRParen)
		case c == '{':
			one(tLBrace)
		case c == '}':
			one(tRBrace)
		case c == '[':
			one(tLBracket)
		case c == ']':
			one(tRBracket)
		case c == '*':
			one(tStar)
		case c == '/':
			one(tSlash)
		case c == '.':
			one(tDot)
		default:
			return nil, gtErrf(file, line, startCol, "unexpected character %q", string(rune(c)))
		}
	}
	if lastSignificant() != tNewline {
		emit(tNewline, "", col)
	}
	toks = append(toks, gtToken{kind: tEOF, line: line, col: col})
	return toks, nil
}

func isGtIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isGtIdentCont(c byte) bool {
	return isGtIdentStart(c) || (c >= '0' && c <= '9')
}
