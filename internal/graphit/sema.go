package graphit

import "fmt"

// SiteKind classifies operator call sites the mid-end lowers specially.
type SiteKind int

const (
	SiteEdgesApply SiteKind = iota
	SiteEdgesApplyModified
	SiteVertexApply
	SiteVertexFilter
)

// ApplySite is one operator occurrence: an edgeset.apply-family call or a
// vertexset operator, with everything the mid-end and codegen need.
type ApplySite struct {
	Index    int
	Kind     SiteKind
	Label    string
	Line     int // line of the operator in the .gt file
	UDF      *FuncDef
	HasFrom  bool
	Weighted bool
	TrackVec string // applyModified's modification-tracked vector
	Expr     *MethodExpr

	// Filled by the mid-end.
	Schedule        ApplySchedule
	SpecializedName string
	DriverName      string
}

// Info is the checked program plus everything later phases consume.
type Info struct {
	Prog    *Program
	Edgeset *ConstDecl
	Vectors []*ConstDecl
	Scalars []*ConstDecl
	Sites   []*ApplySite

	constByName map[string]*ConstDecl
	localTypes  map[*FuncDef]map[string]*GType
}

// ConstByName returns the const declaration, or nil.
func (in *Info) ConstByName(name string) *ConstDecl { return in.constByName[name] }

// LocalTypes returns the local symbol table of a function.
func (in *Info) LocalTypes(f *FuncDef) map[string]*GType { return in.localTypes[f] }

// checker performs name resolution and type checking.
type checker struct {
	info *Info
	file string

	fn     *FuncDef
	scopes []map[string]*GType
	loop   int
}

// Check type-checks the program and collects operator sites.
func Check(prog *Program) (*Info, error) {
	info := &Info{
		Prog:        prog,
		constByName: map[string]*ConstDecl{},
		localTypes:  map[*FuncDef]map[string]*GType{},
	}
	c := &checker{info: info, file: prog.File}

	for _, cd := range prog.Consts {
		if _, dup := info.constByName[cd.Name]; dup {
			return nil, gtErrf(c.file, cd.Line, 1, "duplicate const %q", cd.Name)
		}
		info.constByName[cd.Name] = cd
		switch cd.Type.Kind {
		case GTEdgeSet:
			if info.Edgeset != nil {
				return nil, gtErrf(c.file, cd.Line, 1, "only one edgeset is supported (%q already declared)", info.Edgeset.Name)
			}
			if cd.LoadSpec == nil {
				return nil, gtErrf(c.file, cd.Line, 1, "edgeset %q must be initialised with load(...)", cd.Name)
			}
			if err := c.checkExpr(cd.LoadSpec); err != nil {
				return nil, err
			}
			info.Edgeset = cd
		case GTVector:
			if cd.ScalarInit != nil {
				if err := c.checkExpr(cd.ScalarInit); err != nil {
					return nil, err
				}
				it := cd.ScalarInit.GType()
				if !assignableGT(cd.Type.Elem, it) {
					return nil, gtErrf(c.file, cd.Line, 1, "cannot initialise %s vector %q with %s", cd.Type.Elem, cd.Name, it)
				}
			}
			info.Vectors = append(info.Vectors, cd)
		case GTVertexSet:
			return nil, gtErrf(c.file, cd.Line, 1, "global vertexsets are not supported; declare %q with var in main", cd.Name)
		default:
			if cd.ScalarInit != nil {
				if err := c.checkExpr(cd.ScalarInit); err != nil {
					return nil, err
				}
				if !assignableGT(cd.Type, cd.ScalarInit.GType()) {
					return nil, gtErrf(c.file, cd.Line, 1, "cannot initialise %s const %q with %s", cd.Type, cd.Name, cd.ScalarInit.GType())
				}
			}
			info.Scalars = append(info.Scalars, cd)
		}
	}
	if info.Edgeset == nil {
		return nil, gtErrf(c.file, 1, 1, "program declares no edgeset")
	}

	seen := map[string]bool{}
	for _, f := range prog.Funcs {
		if seen[f.Name] {
			return nil, gtErrf(c.file, f.Line, 1, "duplicate function %q", f.Name)
		}
		seen[f.Name] = true
	}
	if prog.FuncByName("main") == nil {
		return nil, gtErrf(c.file, 1, 1, "program has no main function")
	}

	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return nil, err
		}
	}
	return info, nil
}

// assignableGT: ints widen to float; Vertex and int interconvert (vertex
// IDs are integers in this dialect).
func assignableGT(dst, src *GType) bool {
	if dst.Equal(src) {
		return true
	}
	if dst.Kind == GTFloat && (src.Kind == GTInt || src.Kind == GTVertex) {
		return true
	}
	if dst.Kind == GTInt && src.Kind == GTVertex {
		return true
	}
	if dst.Kind == GTVertex && src.Kind == GTInt {
		return true
	}
	return false
}

func (c *checker) err(line int, format string, args ...any) error {
	return gtErrf(c.file, line, 0, format, args...)
}

func (c *checker) checkFunc(f *FuncDef) error {
	c.fn = f
	c.scopes = []map[string]*GType{{}}
	c.loop = 0
	locals := map[string]*GType{}
	c.info.localTypes[f] = locals
	for _, p := range f.Params {
		c.scopes[0][p.Name] = p.Type
		locals[p.Name] = p.Type
	}
	if f.RetName != "" {
		c.scopes[0][f.RetName] = f.RetType
		locals[f.RetName] = f.RetType
	}
	return c.checkStmts(f.Body)
}

func (c *checker) lookup(name string) (*GType, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	return nil, false
}

func (c *checker) declare(name string, t *GType, line int) error {
	if _, dup := c.scopes[len(c.scopes)-1][name]; dup {
		return c.err(line, "variable %q redeclared", name)
	}
	c.scopes[len(c.scopes)-1][name] = t
	if prev, ok := c.info.localTypes[c.fn][name]; ok && !prev.Equal(t) {
		return c.err(line, "variable %q redeclared with a different type in %s", name, c.fn.Name)
	}
	c.info.localTypes[c.fn][name] = t
	return nil
}

func (c *checker) checkStmts(stmts []GStmt) error {
	c.scopes = append(c.scopes, map[string]*GType{})
	defer func() { c.scopes = c.scopes[:len(c.scopes)-1] }()
	for _, s := range stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s GStmt) error {
	switch st := s.(type) {
	case *VarDecl:
		if err := c.checkExpr(st.Init); err != nil {
			return err
		}
		if !assignableGT(st.Type, st.Init.GType()) {
			return c.err(st.Line, "cannot initialise %s variable %q with %s", st.Type, st.Name, st.Init.GType())
		}
		return c.declare(st.Name, st.Type, st.Line)

	case *AssignStmt:
		if err := c.checkExpr(st.LHS); err != nil {
			return err
		}
		if err := c.checkExpr(st.RHS); err != nil {
			return err
		}
		lt, rt := st.LHS.GType(), st.RHS.GType()
		switch st.LHS.(type) {
		case *NameRef, *IndexExpr:
		default:
			return c.err(st.gline(), "left side of assignment must be a variable or vector element")
		}
		if nr, ok := st.LHS.(*NameRef); ok {
			if cd := c.info.constByName[nr.Name]; cd != nil && cd.Type.Kind != GTVector {
				return c.err(st.gline(), "cannot assign to const %q", nr.Name)
			}
		}
		if st.Op != "=" && !lt.IsNumeric() {
			return c.err(st.gline(), "%s requires a numeric target, have %s", st.Op, lt)
		}
		if st.Op == "min=" {
			if _, isIdx := st.LHS.(*IndexExpr); !isIdx {
				return c.err(st.gline(), "min= is only supported on vector elements")
			}
		}
		if !assignableGT(lt, rt) {
			return c.err(st.gline(), "cannot assign %s to %s", rt, lt)
		}
		return nil

	case *ExprStmt:
		if err := c.checkExprLabelled(st.X, st.Label); err != nil {
			return err
		}
		return nil

	case *IfStmt:
		if err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		if st.Cond.GType().Kind != GTBool {
			return c.err(st.Line, "if condition must be bool, have %s", st.Cond.GType())
		}
		if err := c.checkStmts(st.Then); err != nil {
			return err
		}
		return c.checkStmts(st.Else)

	case *WhileStmt:
		if err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		if st.Cond.GType().Kind != GTBool {
			return c.err(st.Line, "while condition must be bool, have %s", st.Cond.GType())
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkStmts(st.Body)

	case *ForStmt:
		if err := c.checkExpr(st.Lo); err != nil {
			return err
		}
		if err := c.checkExpr(st.Hi); err != nil {
			return err
		}
		if st.Lo.GType().Kind != GTInt || st.Hi.GType().Kind != GTInt {
			return c.err(st.Line, "for bounds must be int")
		}
		c.scopes = append(c.scopes, map[string]*GType{})
		defer func() { c.scopes = c.scopes[:len(c.scopes)-1] }()
		if err := c.declare(st.Var, gtInt, st.Line); err != nil {
			return err
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkStmts(st.Body)

	case *PrintStmt:
		return c.checkExpr(st.X)

	case *BreakStmt:
		if c.loop == 0 {
			return c.err(st.gline(), "break outside loop")
		}
		return nil
	}
	return fmt.Errorf("graphit: unknown statement %T", s)
}

func (c *checker) checkExpr(e GExpr) error { return c.checkExprLabelled(e, "") }

func (c *checker) checkExprLabelled(e GExpr, label string) error {
	switch x := e.(type) {
	case *labelledExpr:
		return c.checkExprLabelled(x.inner, x.label)

	case *IntLit:
		x.setType(gtInt)
	case *FloatLit:
		x.setType(gtFloat)
	case *BoolLit:
		x.setType(gtBool)
	case *StringLit:
		x.setType(&GType{Kind: GTVoid}) // strings only appear in load()
	case *NameRef:
		if t, ok := c.lookup(x.Name); ok {
			x.setType(t)
			return nil
		}
		if cd, ok := c.info.constByName[x.Name]; ok {
			x.setType(cd.Type)
			return nil
		}
		switch x.Name {
		case "vertices":
			x.setType(gtVertexSet)
			return nil
		case "out_degree", "in_degree":
			x.setType(&GType{Kind: GTVector, Elem: gtInt})
			return nil
		case "num_vertices", "num_edges":
			x.setType(gtInt)
			return nil
		}
		if c.info.Prog.FuncByName(x.Name) != nil {
			return c.err(x.Line, "function %q used as a value (operators take function names directly)", x.Name)
		}
		return c.err(x.Line, "undefined name %q", x.Name)

	case *BinExpr:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		if err := c.checkExpr(x.Y); err != nil {
			return err
		}
		xt, yt := x.X.GType(), x.Y.GType()
		switch x.Op {
		case "+", "-", "*", "/":
			if !numericOrVertex(xt) || !numericOrVertex(yt) {
				return c.err(x.Line, "invalid operands to %s: %s and %s", x.Op, xt, yt)
			}
			if xt.Kind == GTFloat || yt.Kind == GTFloat {
				x.setType(gtFloat)
			} else {
				x.setType(gtInt)
			}
		case "<", "<=", ">", ">=":
			if !numericOrVertex(xt) || !numericOrVertex(yt) {
				return c.err(x.Line, "invalid operands to %s: %s and %s", x.Op, xt, yt)
			}
			x.setType(gtBool)
		case "==", "!=":
			ok := (numericOrVertex(xt) && numericOrVertex(yt)) ||
				(xt.Kind == GTBool && yt.Kind == GTBool)
			if !ok {
				return c.err(x.Line, "invalid comparison between %s and %s", xt, yt)
			}
			x.setType(gtBool)
		case "and", "or":
			if xt.Kind != GTBool || yt.Kind != GTBool {
				return c.err(x.Line, "operands of %s must be bool", x.Op)
			}
			x.setType(gtBool)
		default:
			return c.err(x.Line, "unknown operator %q", x.Op)
		}

	case *UnExpr:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		if x.Op == "-" {
			if !x.X.GType().IsNumeric() {
				return c.err(x.Line, "unary - requires a numeric operand")
			}
			x.setType(x.X.GType())
		} else {
			if x.X.GType().Kind != GTBool {
				return c.err(x.Line, "not requires a bool operand")
			}
			x.setType(gtBool)
		}

	case *IndexExpr:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		if err := c.checkExpr(x.Index); err != nil {
			return err
		}
		if x.X.GType().Kind != GTVector {
			return c.err(x.Line, "cannot index %s", x.X.GType())
		}
		it := x.Index.GType()
		if it.Kind != GTVertex && it.Kind != GTInt {
			return c.err(x.Line, "vector index must be a Vertex or int, have %s", it)
		}
		x.setType(x.X.GType().Elem)

	case *CallExpr:
		return c.err(x.Line, "unknown function %q (operators use method syntax)", x.Name)

	case *NewVertexSetExpr:
		if err := c.checkExpr(x.Count); err != nil {
			return err
		}
		if x.Count.GType().Kind != GTInt {
			return c.err(x.Line, "vertexset size must be int")
		}
		x.setType(gtVertexSet)

	case *MethodExpr:
		return c.checkMethod(x, label)

	default:
		return fmt.Errorf("graphit: unknown expression %T", e)
	}
	return nil
}

func numericOrVertex(t *GType) bool {
	return t.IsNumeric() || t.Kind == GTVertex
}

// checkMethod types operator syntax and records apply sites.
func (c *checker) checkMethod(x *MethodExpr, label string) error {
	// `from` receivers check specially: edges.from(vs).
	if inner, ok := x.Recv.(*MethodExpr); ok && inner.Method == "from" {
		if err := c.checkFrom(inner); err != nil {
			return err
		}
	} else if err := c.checkExpr(x.Recv); err != nil {
		return err
	}
	recvT := x.Recv.GType()

	udfArg := func(i int) (*FuncDef, error) {
		if i >= len(x.Args) {
			return nil, c.err(x.Line, "%s requires a function argument", x.Method)
		}
		nr, ok := x.Args[i].(*NameRef)
		if !ok {
			return nil, c.err(x.Line, "%s requires a function name, not an expression", x.Method)
		}
		f := c.info.Prog.FuncByName(nr.Name)
		if f == nil {
			return nil, c.err(x.Line, "unknown function %q", nr.Name)
		}
		nr.setType(gtVoid)
		return f, nil
	}

	record := func(site *ApplySite) {
		site.Index = len(c.info.Sites)
		site.Label = label
		site.Line = x.Line
		site.Expr = x
		c.info.Sites = append(c.info.Sites, site)
	}

	switch x.Method {
	case "from":
		return c.err(x.Line, "from(...) must be followed by .apply or .applyModified")

	case "apply":
		udf, err := udfArg(0)
		if err != nil {
			return err
		}
		if len(x.Args) != 1 {
			return c.err(x.Line, "apply takes exactly one function")
		}
		switch recvT.Kind {
		case GTEdgeSet:
			if err := checkEdgeUDFSig(c, udf, recvT.Weighted); err != nil {
				return err
			}
			record(&ApplySite{Kind: SiteEdgesApply, UDF: udf, HasFrom: isFrom(x.Recv), Weighted: recvT.Weighted})
			x.setType(gtVoid)
		case GTVertexSet:
			if err := checkUDFSig(c, udf, 1, gtVoid); err != nil {
				return err
			}
			record(&ApplySite{Kind: SiteVertexApply, UDF: udf})
			x.setType(gtVoid)
		default:
			return c.err(x.Line, "apply is not defined on %s", recvT)
		}

	case "applyModified":
		if recvT.Kind != GTEdgeSet {
			return c.err(x.Line, "applyModified is only defined on edgesets")
		}
		udf, err := udfArg(0)
		if err != nil {
			return err
		}
		if len(x.Args) != 2 {
			return c.err(x.Line, "applyModified takes a function and a tracked vector")
		}
		vecRef, ok := x.Args[1].(*NameRef)
		if !ok {
			return c.err(x.Line, "applyModified's second argument must be a vector name")
		}
		cd := c.info.constByName[vecRef.Name]
		if cd == nil || cd.Type.Kind != GTVector {
			return c.err(x.Line, "%q is not a vector const", vecRef.Name)
		}
		vecRef.setType(cd.Type)
		if err := checkEdgeUDFSig(c, udf, recvT.Weighted); err != nil {
			return err
		}
		record(&ApplySite{Kind: SiteEdgesApplyModified, UDF: udf, HasFrom: isFrom(x.Recv), TrackVec: vecRef.Name, Weighted: recvT.Weighted})
		x.setType(gtVertexSet)

	case "filter":
		if recvT.Kind != GTVertexSet {
			return c.err(x.Line, "filter is only defined on vertexsets")
		}
		udf, err := udfArg(0)
		if err != nil {
			return err
		}
		if len(x.Args) != 1 {
			return c.err(x.Line, "filter takes exactly one function")
		}
		if err := checkUDFSig(c, udf, 1, gtBool); err != nil {
			return err
		}
		record(&ApplySite{Kind: SiteVertexFilter, UDF: udf})
		x.setType(gtVertexSet)

	case "size", "getVertexSetSize":
		if recvT.Kind != GTVertexSet {
			return c.err(x.Line, "%s is only defined on vertexsets", x.Method)
		}
		if len(x.Args) != 0 {
			return c.err(x.Line, "%s takes no arguments", x.Method)
		}
		x.setType(gtInt)

	case "addVertex":
		if recvT.Kind != GTVertexSet {
			return c.err(x.Line, "addVertex is only defined on vertexsets")
		}
		if len(x.Args) != 1 {
			return c.err(x.Line, "addVertex takes one vertex")
		}
		if err := c.checkExpr(x.Args[0]); err != nil {
			return err
		}
		at := x.Args[0].GType()
		if at.Kind != GTVertex && at.Kind != GTInt {
			return c.err(x.Line, "addVertex argument must be a vertex")
		}
		x.setType(gtVoid)

	case "contains":
		if recvT.Kind != GTVertexSet {
			return c.err(x.Line, "contains is only defined on vertexsets")
		}
		if len(x.Args) != 1 {
			return c.err(x.Line, "contains takes one vertex")
		}
		if err := c.checkExpr(x.Args[0]); err != nil {
			return err
		}
		x.setType(gtBool)

	default:
		return c.err(x.Line, "unknown method %q on %s", x.Method, recvT)
	}
	return nil
}

func isFrom(recv GExpr) bool {
	m, ok := recv.(*MethodExpr)
	return ok && m.Method == "from"
}

// checkFrom types `edges.from(vs)`.
func (c *checker) checkFrom(x *MethodExpr) error {
	if err := c.checkExpr(x.Recv); err != nil {
		return err
	}
	if x.Recv.GType().Kind != GTEdgeSet {
		return c.err(x.Line, "from is only defined on edgesets")
	}
	if len(x.Args) != 1 {
		return c.err(x.Line, "from takes exactly one vertexset")
	}
	if err := c.checkExpr(x.Args[0]); err != nil {
		return err
	}
	if x.Args[0].GType().Kind != GTVertexSet {
		return c.err(x.Line, "from's argument must be a vertexset, have %s", x.Args[0].GType())
	}
	// Propagate the receiver's exact edgeset type (weightedness matters).
	x.setType(x.Recv.GType())
	return nil
}

// checkEdgeUDFSig validates an edge UDF: (src, dst) for plain edgesets,
// (src, dst, weight: int) for weighted ones.
func checkEdgeUDFSig(c *checker, f *FuncDef, weighted bool) error {
	want := 2
	if weighted {
		want = 3
	}
	if len(f.Params) != want {
		return c.err(f.Line, "function %q must take %d parameters for this edgeset, has %d",
			f.Name, want, len(f.Params))
	}
	for i, p := range f.Params {
		if i < 2 && p.Type.Kind != GTVertex {
			return c.err(f.Line, "parameter %q of %q must be Vertex", p.Name, f.Name)
		}
		if i == 2 && p.Type.Kind != GTInt {
			return c.err(f.Line, "weight parameter %q of %q must be int", p.Name, f.Name)
		}
	}
	if f.RetName != "" {
		return c.err(f.Line, "function %q must not return a value here", f.Name)
	}
	return nil
}

func checkUDFSig(c *checker, f *FuncDef, nparams int, ret *GType) error {
	if len(f.Params) != nparams {
		return c.err(f.Line, "function %q must take %d Vertex parameters, has %d", f.Name, nparams, len(f.Params))
	}
	for _, p := range f.Params {
		if p.Type.Kind != GTVertex {
			return c.err(f.Line, "parameter %q of %q must be Vertex", p.Name, f.Name)
		}
	}
	if ret.Kind == GTVoid && f.RetName != "" {
		return c.err(f.Line, "function %q must not return a value here", f.Name)
	}
	if ret.Kind != GTVoid && (f.RetName == "" || !f.RetType.Equal(ret)) {
		return c.err(f.Line, "function %q must declare a %s return value", f.Name, ret)
	}
	return nil
}
