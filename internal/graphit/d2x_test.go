package graphit

import (
	"strings"
	"testing"

	"d2x/internal/d2x"
	"d2x/internal/debugger"
)

// fig6Build compiles PageRankDelta with D2X, the paper's Figure 6 setup.
func fig6Build(t *testing.T) (*Artifact, *d2x.Build) {
	t.Helper()
	art := compile(t, "pagerankdelta.gt", PageRankDeltaSrc, PageRankDeltaSchedule, true)
	build, err := art.Link()
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return art, build
}

func fig6Session(t *testing.T) (*Artifact, *debugger.Debugger, *strings.Builder) {
	t.Helper()
	art, build := fig6Build(t)
	var out strings.Builder
	d, err := build.NewSession(&out)
	if err != nil {
		t.Fatal(err)
	}
	return art, d, &out
}

func run(t *testing.T, d *debugger.Debugger, lines ...string) {
	t.Helper()
	for _, l := range lines {
		if err := d.Execute(l); err != nil {
			t.Fatalf("command %q: %v", l, err)
		}
	}
}

// genLineOf finds the first generated line containing the needle.
func genLineOf(t *testing.T, art *Artifact, needle string) int {
	t.Helper()
	for i, l := range strings.Split(art.Source, "\n") {
		if strings.Contains(l, needle) {
			return i + 1
		}
	}
	t.Fatalf("no generated line contains %q", needle)
	return 0
}

// gtLineOf finds the first .gt line containing the needle.
func gtLineOf(t *testing.T, art *Artifact, needle string) int {
	t.Helper()
	for i, l := range strings.Split(art.GTSource, "\n") {
		if strings.Contains(l, needle) {
			return i + 1
		}
	}
	t.Fatalf("no .gt line contains %q", needle)
	return 0
}

// TestFig6ExtendedStackInUDF: stopped inside the specialised UDF, xbt
// shows the UDF's .gt line as the innermost extended frame and the apply
// operator's call site as the caller — the red box of Figure 6.
func TestFig6ExtendedStackInUDF(t *testing.T) {
	art, d, out := fig6Session(t)
	udfLine := genLineOf(t, art, "atomic_add(&new_rank[dst]")
	run(t, d, "break pagerankdelta.c:"+itoa(udfLine), "run")
	out.Reset()
	run(t, d, "xbt")
	tr := out.String()
	gtUDF := gtLineOf(t, art, "new_rank[dst] += delta[src]")
	gtOp := gtLineOf(t, art, "#s1#")
	if !strings.Contains(tr, "#0 in updateEdge at pagerankdelta.gt:"+itoa(gtUDF)) {
		t.Errorf("xbt missing UDF frame (want .gt line %d):\n%s", gtUDF, tr)
	}
	if !strings.Contains(tr, "#1 in main at pagerankdelta.gt:"+itoa(gtOp)) {
		t.Errorf("xbt missing specialising call site (want .gt line %d):\n%s", gtOp, tr)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// TestFig6XListShowsGTSource: xlist renders the .gt input around the
// extended frame, served from the compiler's in-memory copy.
func TestFig6XListShowsGTSource(t *testing.T) {
	art, d, out := fig6Session(t)
	udfLine := genLineOf(t, art, "atomic_add(&new_rank[dst]")
	run(t, d, "break pagerankdelta.c:"+itoa(udfLine), "run")
	out.Reset()
	run(t, d, "xlist")
	if !strings.Contains(out.String(), "new_rank[dst] += delta[src] / out_degree[src]") {
		t.Errorf("xlist should show the UDF source:\n%s", out.String())
	}
	// The blue box: xframe 1 moves to the operator call site.
	out.Reset()
	run(t, d, "xframe 1", "xlist")
	if !strings.Contains(out.String(), "edges.from(frontier).apply(updateEdge)") {
		t.Errorf("xlist at frame 1 should show the operator:\n%s", out.String())
	}
}

// TestFig6ScheduleVisible: the schedule applied to the operator is
// compiler-internal state; D2X exposes it as extended variables.
func TestFig6ScheduleVisible(t *testing.T) {
	art, d, out := fig6Session(t)
	udfLine := genLineOf(t, art, "atomic_add(&new_rank[dst]")
	run(t, d, "break pagerankdelta.c:"+itoa(udfLine), "run")
	out.Reset()
	run(t, d, "xvars schedule", "xvars apply_op", "xvars specialized_udf")
	tr := out.String()
	if !strings.Contains(tr, "schedule = direction=push parallel=true frontier=auto") {
		t.Errorf("schedule var:\n%s", tr)
	}
	if !strings.Contains(tr, "apply_op = s1") {
		t.Errorf("apply_op var:\n%s", tr)
	}
	if !strings.Contains(tr, "specialized_udf = updateEdge_1") {
		t.Errorf("specialized_udf var:\n%s", tr)
	}
}

// TestFig6FrontierHandler: the green box — xvars frontier runs the
// generated rtv_handler, which decodes whichever representation the
// vertexset currently uses.
func TestFig6FrontierHandler(t *testing.T) {
	art, d, out := fig6Session(t)
	// Stop in main right after the filter assigns the new frontier: the
	// print statement's generated line.
	printLine := genLineOf(t, art, "__frontier_size(frontier)")
	run(t, d, "break pagerankdelta.c:"+itoa(printLine), "run")
	out.Reset()
	run(t, d, "xvars")
	if !strings.Contains(out.String(), "frontier") {
		t.Fatalf("frontier not listed in xvars:\n%s", out.String())
	}
	out.Reset()
	run(t, d, "xvars frontier")
	tr := out.String()
	if !strings.Contains(tr, "frontier = is_dense(") {
		t.Fatalf("frontier handler output:\n%s", tr)
	}
	if !strings.Contains(tr, "[") || !strings.Contains(tr, "]") {
		t.Errorf("handler did not serialise elements:\n%s", tr)
	}
	// Contrast with the plain print command (Figure 6's point): print
	// shows the raw struct, the handler shows decoded contents.
	out.Reset()
	run(t, d, "print frontier")
	if !strings.Contains(out.String(), "is_dense = ") {
		t.Errorf("raw struct print:\n%s", out.String())
	}
}

// TestFrontierHandlerBothRepresentations drives the handler over both a
// sparse and a dense frontier (Figure 7's two branches).
func TestFrontierHandlerBothRepresentations(t *testing.T) {
	art := compile(t, "bfs.gt", BFSSrc, BFSSchedule, true)
	build, err := art.Link()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	d, err := build.NewSession(&out)
	if err != nil {
		t.Fatal(err)
	}
	whileLine := genLineOf(t, &Artifact{Source: build.Source}, "while ((__frontier_size(frontier) > 0))")
	run(t, d, "break bfs.c:"+itoa(whileLine), "run")
	out.Reset()
	run(t, d, "xvars frontier")
	first := out.String()
	if !strings.Contains(first, "is_dense(false) [0,]") {
		t.Errorf("initial sparse frontier: %q", first)
	}
	// After one round the frontier holds vertex 0's neighbours.
	run(t, d, "continue")
	out.Reset()
	run(t, d, "xvars frontier")
	second := out.String()
	if !strings.Contains(second, "is_dense(") || strings.Contains(second, "[0,]") {
		t.Errorf("round-2 frontier unexpectedly unchanged: %q", second)
	}
}

// TestXBreakOnGTLine: a DSL-level breakpoint on the UDF's .gt line lands
// on every generated specialisation line.
func TestXBreakOnGTLine(t *testing.T) {
	art, d, out := fig6Session(t)
	run(t, d, "break main", "run")
	gtUDF := gtLineOf(t, art, "new_rank[dst] += delta[src]")
	out.Reset()
	run(t, d, "xbreak pagerankdelta.gt:"+itoa(gtUDF))
	if !strings.Contains(out.String(), "Inserting 1 breakpoints with ID: #1") {
		t.Fatalf("xbreak:\n%s", out.String())
	}
	run(t, d, "continue")
	if d.LastStop().Reason != debugger.StopBreakpoint {
		t.Fatalf("stop = %v", d.LastStop().Reason)
	}
	// We are inside the specialised UDF.
	if f := d.SelectedFrame(); f == nil || f.Fn.Name != "updateEdge_1" {
		t.Errorf("stopped in %v, want updateEdge_1", d.SelectedFrame().Fn.Name)
	}
	// And xbreak on the operator line hits the driver.
	gtOp := gtLineOf(t, art, "#s1#")
	out.Reset()
	run(t, d, "xbreak pagerankdelta.gt:"+itoa(gtOp))
	if !strings.Contains(out.String(), "breakpoints with ID: #2") {
		t.Errorf("second xbreak:\n%s", out.String())
	}
}

// TestWorkerThreadContext: with the parallel schedule, breakpoints inside
// the UDF hit on worker threads; D2X commands still resolve the context
// there (the paper's multi-threading claim, §4.2).
func TestWorkerThreadContext(t *testing.T) {
	art, d, out := fig6Session(t)
	udfLine := genLineOf(t, art, "atomic_add(&new_rank[dst]")
	run(t, d, "break pagerankdelta.c:"+itoa(udfLine), "run")
	stop := d.LastStop()
	if stop.Thread == nil || stop.Thread.ID == 0 {
		t.Fatalf("expected a worker-thread stop, got %+v", stop.Thread)
	}
	out.Reset()
	run(t, d, "xbt", "xvars schedule")
	tr := out.String()
	if !strings.Contains(tr, "updateEdge") || !strings.Contains(tr, "direction=push") {
		t.Errorf("worker-thread D2X context:\n%s", tr)
	}
}

// TestXGraphExtension reproduces §4.3: the DSL defines its own debugger
// command as generated code plus a DSL-supplied macro. The debugger and
// the D2X runtime library are untouched.
func TestXGraphExtension(t *testing.T) {
	_, d, out := fig6Session(t)
	run(t, d, "break main", "run")
	out.Reset()
	run(t, d, "xgraph")
	if !strings.Contains(out.String(), "graph not loaded yet") {
		t.Fatalf("xgraph before load:\n%s", out.String())
	}
	// After the graph loads, the command reports real statistics.
	run(t, d, "next", "next") // __graphit_load + __graphit_init
	out.Reset()
	run(t, d, "xgraph")
	if !strings.Contains(out.String(), "graph: 64 vertices, 512 edges, max out-degree") {
		t.Errorf("xgraph after load:\n%s", out.String())
	}
	// The raw call form works too (it is just a generated function).
	out.Reset()
	run(t, d, "call __d2x_ext_graph_info()")
	if !strings.Contains(out.String(), "64 vertices") {
		t.Errorf("raw call:\n%s", out.String())
	}
}
