package graphit

// Canonical GraphIt programs used by the examples, tests, and the
// benchmark harness. TwoApplySrc is the paper's Figure 1 verbatim shape;
// PageRankDeltaSrc is the Figure 6 application.

// TwoApplySrc reproduces Figure 1: the same UDF applied by two operators
// that the schedule compiles in two different ways (push with atomics,
// pull without — Figure 2).
const TwoApplySrc = `element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex) = load("uniform:n=32,m=128,seed=3")
const orank : vector{Vertex}(float) = 1.0
const nrank : vector{Vertex}(float) = 0.0

func updateEdge(s: Vertex, d: Vertex)
	nrank[d] += orank[s]
end

func main()
	#s1# edges.apply(updateEdge) % PUSH Schedule
	#s2# edges.apply(updateEdge) % PULL Schedule
	print nrank[0]
end
`

// TwoApplySchedule applies PUSH to s1 and PULL to s2, both parallel.
const TwoApplySchedule = `s1: direction=push, parallel=true
s2: direction=pull, parallel=true
`

// PageRankSrc is textbook PageRank over all edges.
const PageRankSrc = `element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex) = load("powerlaw:n=64,m=512,seed=11")
const old_rank : vector{Vertex}(float) = 1.0 / num_vertices
const new_rank : vector{Vertex}(float) = 0.0
const damp : float = 0.85
const base_score : float = 0.15 / num_vertices

func updateEdge(src: Vertex, dst: Vertex)
	new_rank[dst] += old_rank[src] / out_degree[src]
end

func updateVertex(v: Vertex)
	old_rank[v] = base_score + damp * new_rank[v]
	new_rank[v] = 0.0
end

func main()
	for i in 0:20
		#s1# edges.apply(updateEdge)
		vertices.apply(updateVertex)
	end
	print old_rank[0]
end
`

// PageRankDeltaSrc is the paper's Figure 6 application: only vertices
// whose rank changed materially stay in the frontier, which shrinks and
// switches representation as the computation converges.
const PageRankDeltaSrc = `element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex) = load("powerlaw:n=64,m=512,seed=5")
const old_rank : vector{Vertex}(float) = 0.0
const new_rank : vector{Vertex}(float) = 0.0
const delta : vector{Vertex}(float) = 1.0 / num_vertices
const damp : float = 0.85
const epsilon : float = 0.001

func updateEdge(src: Vertex, dst: Vertex)
	new_rank[dst] += delta[src] / out_degree[src]
end

func updateVertex(v: Vertex) -> output: bool
	delta[v] = damp * new_rank[v]
	old_rank[v] = old_rank[v] + delta[v]
	new_rank[v] = 0.0
	output = delta[v] > epsilon
end

func main()
	var frontier : vertexset{Vertex} = new vertexset{Vertex}(num_vertices)
	for i in 0:10
		#s1# edges.from(frontier).apply(updateEdge)
		frontier = vertices.filter(updateVertex)
		print frontier.size()
	end
end
`

// PageRankDeltaSchedule uses the hybrid parallel push configuration.
const PageRankDeltaSchedule = `s1: direction=push, parallel=true, frontier=auto
`

// BFSSrc is frontier-based BFS from vertex 0 using applyModified to build
// the next frontier from parent updates.
const BFSSrc = `element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex) = load("uniform:n=64,m=256,seed=9")
const parent : vector{Vertex}(int) = -1

func updateEdge(src: Vertex, dst: Vertex)
	if parent[dst] == -1
		parent[dst] = src
	end
end

func reached(v: Vertex) -> output: bool
	output = parent[v] != -1
end

func main()
	var frontier : vertexset{Vertex} = new vertexset{Vertex}(0)
	frontier.addVertex(0)
	parent[0] = 0
	while frontier.size() > 0
		#s1# frontier = edges.from(frontier).applyModified(updateEdge, parent)
	end
	var visited : vertexset{Vertex} = vertices.filter(reached)
	print visited.size()
end
`

// BFSSchedule runs BFS with a sparse parallel push, the classic choice.
const BFSSchedule = `s1: direction=push, parallel=true, frontier=sparse
`

// CCSrc computes connected-component labels by iterative label
// propagation and prints the number of components.
const CCSrc = `element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex) = load("grid:w=8,h=4")
const comp : vector{Vertex}(int) = 0

func initComp(v: Vertex)
	comp[v] = v
end

func updateEdge(src: Vertex, dst: Vertex)
	if comp[src] < comp[dst]
		comp[dst] = comp[src]
	end
end

func isRoot(v: Vertex) -> output: bool
	output = comp[v] == v
end

func main()
	vertices.apply(initComp)
	for i in 0:40
		#s1# edges.apply(updateEdge)
	end
	var roots : vertexset{Vertex} = vertices.filter(isRoot)
	print roots.size()
end
`

// SSSPSrc computes single-source shortest paths over a weighted edgeset
// with frontier-based Bellman-Ford relaxation. The `min=` reduction is
// what the schedule specialises: atomic_min under parallel push, a plain
// compare-and-store otherwise.
const SSSPSrc = `element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex, int) = load("uniform:n=48,m=480,seed=13")
const dist : vector{Vertex}(int) = 1073741824

func relaxEdge(src: Vertex, dst: Vertex, w: int)
	dist[dst] min= dist[src] + w
end

func settled(v: Vertex) -> output: bool
	output = dist[v] < 1073741824
end

func main()
	var frontier : vertexset{Vertex} = new vertexset{Vertex}(0)
	frontier.addVertex(0)
	dist[0] = 0
	while frontier.size() > 0
		#s1# frontier = edges.from(frontier).applyModified(relaxEdge, dist)
	end
	var reached : vertexset{Vertex} = vertices.filter(settled)
	print reached.size()
	print dist[1]
end
`

// SSSPSchedule runs the relaxation as a sparse parallel push, where the
// min= reduction becomes atomic_min.
const SSSPSchedule = `s1: direction=push, parallel=true, frontier=sparse
`
