package graphit

import (
	"fmt"
	"strings"
	"testing"

	"d2x/internal/d2x"
	"d2x/internal/graphgen"
)

// compile compiles a program with optional schedule and D2X.
func compile(t *testing.T, name, src, sched string, d2xOn bool) *Artifact {
	t.Helper()
	art, err := CompileToC(name, src, name+".sched", sched, CompileOptions{D2X: d2xOn})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return art
}

// runGT compiles, links, and executes a program, returning its output.
func runGT(t *testing.T, name, src, sched string, d2xOn bool) (string, *d2x.Build) {
	t.Helper()
	art := compile(t, name, src, sched, d2xOn)
	build, err := art.Link()
	if err != nil {
		t.Fatalf("link %s: %v\n--- generated ---\n%s", name, err, numbered(art.Source))
	}
	out, _, err := build.Run()
	if err != nil {
		t.Fatalf("run %s: %v\n--- generated ---\n%s", name, err, numbered(art.Source))
	}
	return out, build
}

func numbered(src string) string {
	var b strings.Builder
	for i, l := range strings.Split(src, "\n") {
		fmt.Fprintf(&b, "%4d  %s\n", i+1, l)
	}
	return b.String()
}

// ---- Frontend tests ----

func TestParsePrograms(t *testing.T) {
	for name, src := range map[string]string{
		"twoapply": TwoApplySrc, "pagerank": PageRankSrc,
		"pagerankdelta": PageRankDeltaSrc, "bfs": BFSSrc, "cc": CCSrc,
	} {
		if _, err := ParseProgram(name+".gt", src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"bad-label", "func main()\n#s1 broken\nend\n", "malformed schedule label"},
		{"unterminated-func", "func main()\nprint 1\n", "missing 'end'"},
		{"bad-char", "func main()\nprint @\nend\n", "unexpected character"},
		{"bad-string", "const e : edgeset{Edge}(Vertex, Vertex) = load(\"oops\n", "unterminated string"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseProgram("t.gt", tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestSemaErrors(t *testing.T) {
	hdr := "element Vertex end\nelement Edge end\nconst edges : edgeset{Edge}(Vertex, Vertex) = load(\"chain:n=4\")\n"
	cases := []struct{ name, src, want string }{
		{"no-edgeset", "func main()\nend\n", "declares no edgeset"},
		{"no-main", hdr + "func f(v: Vertex)\nend\n", "no main function"},
		{"undef-name", hdr + "func main()\nprint nope\nend\n", "undefined name"},
		{"bad-udf-arity", hdr + "func one(v: Vertex)\nend\nfunc main()\nedges.apply(one)\nend\n", "must take 2 parameters"},
		{"unknown-udf", hdr + "func main()\nedges.apply(ghost)\nend\n", "unknown function"},
		{"assign-const", hdr + "const k : int = 3\nfunc main()\nk = 4\nend\n", "cannot assign to const"},
		{"bad-filter-ret", hdr + "func f(v: Vertex)\nend\nfunc main()\nvar s : vertexset{Vertex} = vertices.filter(f)\nend\n", "must declare a bool return"},
		{"break-outside", hdr + "func main()\nbreak\nend\n", "break outside loop"},
		{"bad-from", hdr + "func main()\nvar x : int = 1\nprint edges.from(x).size()\nend\n", "from's argument must be a vertexset"},
		{"two-edgesets", hdr + "const e2 : edgeset{Edge}(Vertex, Vertex) = load(\"chain:n=4\")\nfunc main()\nend\n", "only one edgeset"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := ParseProgram("t.gt", tc.src)
			if err == nil {
				_, err = Check(prog)
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestScheduleParsing(t *testing.T) {
	s, err := ParseSchedule("t.sched", `
% comment
s1: direction=DensePull, parallel=true
s2: direction=SparsePush
s3: frontier=dense
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.For("s1"); got.Direction != "pull" || !got.Parallel || got.Frontier != "dense" {
		t.Errorf("s1 = %+v", got)
	}
	if got := s.For("s2"); got.Direction != "push" || got.Frontier != "sparse" {
		t.Errorf("s2 = %+v", got)
	}
	if got := s.For("missing"); got.Direction != "push" || got.Parallel {
		t.Errorf("default = %+v", got)
	}
	for _, bad := range []string{
		"s1 direction=push", "s1: direction=sideways", "s1: parallel=maybe",
		"s1: frontier=wavy", "s1: zoom=1", "s1: direction=push\ns1: direction=pull",
	} {
		if _, err := ParseSchedule("t.sched", bad); err == nil {
			t.Errorf("schedule %q accepted", bad)
		}
	}
}

func TestScheduleUnknownLabelRejected(t *testing.T) {
	_, err := CompileToC("twoapply.gt", TwoApplySrc, "s", "zz: direction=pull", CompileOptions{})
	if err == nil || !strings.Contains(err.Error(), "no operator carries it") {
		t.Errorf("err = %v", err)
	}
}

// ---- Figure 1/2: per-call-site UDF specialisation ----

func TestFig2UDFSpecialization(t *testing.T) {
	art := compile(t, "twoapply.gt", TwoApplySrc, TwoApplySchedule, false)
	src := art.Source
	// Two specialised versions of the same UDF exist.
	if !strings.Contains(src, "func void updateEdge_1(int s, int d) {") ||
		!strings.Contains(src, "func void updateEdge_2(int s, int d) {") {
		t.Fatalf("missing specialised UDFs:\n%s", src)
	}
	// The push version uses an atomic; the pull version a plain update —
	// exactly Figure 2.
	if !strings.Contains(src, "atomic_add(&nrank[d], orank[s]);") {
		t.Errorf("push specialisation not atomic:\n%s", src)
	}
	if !strings.Contains(src, "nrank[d] += orank[s];") {
		t.Errorf("pull specialisation not plain:\n%s", src)
	}
	// The push atomic appears in updateEdge_1's body, the plain one in _2.
	i1 := strings.Index(src, "func void updateEdge_1")
	i2 := strings.Index(src, "func void updateEdge_2")
	ia := strings.Index(src, "atomic_add(&nrank[d]")
	ip := strings.Index(src, "nrank[d] += orank[s];")
	if !(i1 < ia && ia < i2 && i2 < ip) {
		t.Errorf("specialisations attached to wrong call sites (i1=%d ia=%d i2=%d ip=%d)", i1, ia, i2, ip)
	}
}

func TestPushPullEquivalence(t *testing.T) {
	// The same program under serial push vs parallel pull vs parallel
	// push(atomics) computes identical results.
	results := map[string]string{}
	for name, sched := range map[string]string{
		"serial":   "",
		"push-par": "s1: direction=push, parallel=true\ns2: direction=push, parallel=true\n",
		"pull-par": "s1: direction=pull, parallel=true\ns2: direction=pull, parallel=true\n",
	} {
		out, _ := runGT(t, "twoapply.gt", TwoApplySrc, sched, false)
		results[name] = out
	}
	if results["serial"] != results["push-par"] || results["serial"] != results["pull-par"] {
		t.Errorf("schedules disagree: %+v", results)
	}
}

func TestRaceWithoutAtomics(t *testing.T) {
	// Negative control: forcing the pull-style (non-atomic) UDF under a
	// parallel push schedule loses updates. We simulate by running the
	// push-parallel schedule, which uses atomics, against a hand-broken
	// serial sum — instead, check the atomic path equals the serial sum
	// over a high-contention star graph.
	src := strings.Replace(TwoApplySrc, `load("uniform:n=32,m=128,seed=3")`, `load("star:n=48")`, 1)
	serial, _ := runGT(t, "twoapply.gt", src, "", false)
	par, _ := runGT(t, "twoapply.gt", src, TwoApplySchedule, false)
	if serial != par {
		t.Errorf("atomic parallel push diverged from serial: %q vs %q", par, serial)
	}
}

// ---- Algorithm correctness against host oracles ----

func TestBFSMatchesOracle(t *testing.T) {
	out, _ := runGT(t, "bfs.gt", BFSSrc, BFSSchedule, false)
	g, err := graphgen.Parse("uniform:n=64,m=256,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range g.Reachable(0) {
		if r {
			want++
		}
	}
	if !strings.Contains(out, fmt.Sprint(want)) {
		t.Errorf("BFS visited output %q, oracle %d", out, want)
	}
}

func TestBFSSchedulesAgree(t *testing.T) {
	for _, sched := range []string{"", BFSSchedule, "s1: direction=pull, parallel=true\n", "s1: direction=push, parallel=true, frontier=dense\n"} {
		out, _ := runGT(t, "bfs.gt", BFSSrc, sched, false)
		oracle, _ := runGT(t, "bfs.gt", BFSSrc, "", false)
		if out != oracle {
			t.Errorf("schedule %q output %q != serial %q", sched, out, oracle)
		}
	}
}

func TestCCCountsComponents(t *testing.T) {
	// grid:w=8,h=4 is fully connected: exactly 1 component.
	out, _ := runGT(t, "cc.gt", CCSrc, "s1: direction=push, parallel=true\n", false)
	if !strings.Contains(out, "1\n") {
		t.Errorf("CC output %q, want 1 component", out)
	}
	// Two disjoint chains: chain:n=k is connected; use a custom two-part
	// graph via two stars? Use a chain: 1 component as well; instead use
	// uniform with tiny m, count must be >= 1.
	src := strings.Replace(CCSrc, `load("grid:w=8,h=4")`, `load("chain:n=16")`, 1)
	out2, _ := runGT(t, "cc.gt", src, "", false)
	if !strings.Contains(out2, "1\n") {
		t.Errorf("CC on chain output %q, want 1", out2)
	}
}

func TestPageRankConverges(t *testing.T) {
	out, _ := runGT(t, "pagerank.gt", PageRankSrc, "s1: direction=pull, parallel=true\n", false)
	// The printed rank of vertex 0 must be a positive float below 1.
	var rank float64
	if _, err := fmt.Sscanf(strings.TrimSpace(out), "%g", &rank); err != nil {
		t.Fatalf("unparseable output %q", out)
	}
	if rank <= 0 || rank >= 1 {
		t.Errorf("rank[0] = %g out of range", rank)
	}
	// Serial and parallel pull agree bit-for-bit; parallel push with
	// atomics may reorder float additions, so compare within epsilon.
	outSerial, _ := runGT(t, "pagerank.gt", PageRankSrc, "", false)
	var rankSerial float64
	fmt.Sscanf(strings.TrimSpace(outSerial), "%g", &rankSerial)
	if diff := rank - rankSerial; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("pull parallel %g vs serial %g", rank, rankSerial)
	}
}

func TestPageRankDeltaFrontierShrinks(t *testing.T) {
	out, _ := runGT(t, "pagerankdelta.gt", PageRankDeltaSrc, PageRankDeltaSchedule, false)
	lines := strings.Fields(strings.TrimSpace(out))
	if len(lines) != 10 {
		t.Fatalf("expected 10 frontier sizes, got %q", out)
	}
	// Each print happens after the filter, so the first value is already
	// post-round-1; the sequence must start near-full and shrink as the
	// computation converges.
	var first, last int
	fmt.Sscanf(lines[0], "%d", &first)
	fmt.Sscanf(lines[len(lines)-1], "%d", &last)
	if first <= 32 || first > 64 {
		t.Errorf("round-1 frontier = %d, want most of 64 vertices", first)
	}
	if last >= first {
		t.Errorf("frontier did not shrink: first %d, last %d", first, last)
	}
}

func TestGeneratedCodeIsDeterministic(t *testing.T) {
	a1 := compile(t, "pagerankdelta.gt", PageRankDeltaSrc, PageRankDeltaSchedule, true)
	a2 := compile(t, "pagerankdelta.gt", PageRankDeltaSrc, PageRankDeltaSchedule, true)
	if a1.Source != a2.Source {
		t.Error("codegen is not deterministic")
	}
}

func TestD2XOnOffSameCode(t *testing.T) {
	// D2X adds tables and the handler but must not change the algorithm's
	// code: the program output is identical with and without D2X.
	plain, _ := runGT(t, "pagerankdelta.gt", PageRankDeltaSrc, PageRankDeltaSchedule, false)
	debug, _ := runGT(t, "pagerankdelta.gt", PageRankDeltaSrc, PageRankDeltaSchedule, true)
	if plain != debug {
		t.Errorf("output differs with D2X: %q vs %q", plain, debug)
	}
}

// ---- Weighted edgesets and SSSP (min= reduction) ----

func TestSSSPMatchesOracle(t *testing.T) {
	g, err := graphgen.Parse("uniform:n=48,m=480,seed=13")
	if err != nil {
		t.Fatal(err)
	}
	oracle := g.ShortestPaths(0)
	wantReached := 0
	for _, d := range oracle {
		if d >= 0 {
			wantReached++
		}
	}
	for _, sched := range []string{"", SSSPSchedule, "s1: direction=pull, parallel=true\n"} {
		out, _ := runGT(t, "sssp.gt", SSSPSrc, sched, false)
		lines := strings.Fields(strings.TrimSpace(out))
		if len(lines) != 2 {
			t.Fatalf("schedule %q: output %q", sched, out)
		}
		if lines[0] != fmt.Sprint(wantReached) {
			t.Errorf("schedule %q: reached = %s, oracle %d", sched, lines[0], wantReached)
		}
		want1 := fmt.Sprint(oracle[1])
		if oracle[1] < 0 {
			want1 = "1073741824"
		}
		if lines[1] != want1 {
			t.Errorf("schedule %q: dist[1] = %s, oracle %s", sched, lines[1], want1)
		}
	}
}

func TestMinEqualsSpecialization(t *testing.T) {
	art := compile(t, "sssp.gt", SSSPSrc, SSSPSchedule, false)
	// Parallel push: the min= reduction compiles to atomic_min.
	if !strings.Contains(art.Source, "atomic_min(&dist[dst], (dist[src] + w));") {
		t.Errorf("parallel push min= not atomic:\n%s", art.Source)
	}
	// Serial: a plain compare-and-store.
	artSerial := compile(t, "sssp.gt", SSSPSrc, "", false)
	if strings.Contains(artSerial.Source, "atomic_min") {
		t.Errorf("serial min= uses atomics")
	}
	if !strings.Contains(artSerial.Source, "if ((dist[src] + w) < dist[dst]) {") {
		t.Errorf("serial min= shape missing:\n%s", artSerial.Source)
	}
}

func TestWeightedUDFSigChecked(t *testing.T) {
	bad := strings.Replace(SSSPSrc,
		"func relaxEdge(src: Vertex, dst: Vertex, w: int)",
		"func relaxEdge(src: Vertex, dst: Vertex)", 1)
	bad = strings.Replace(bad, "dist[src] + w", "dist[src] + 1", 1)
	_, err := CompileToC("sssp.gt", bad, "s", "", CompileOptions{})
	if err == nil || !strings.Contains(err.Error(), "must take 3 parameters") {
		t.Errorf("unweighted UDF on weighted edgeset: %v", err)
	}
	// And the converse: a 3-parameter UDF on an unweighted edgeset.
	bad2 := strings.Replace(PageRankSrc,
		"func updateEdge(src: Vertex, dst: Vertex)",
		"func updateEdge(src: Vertex, dst: Vertex, w: int)", 1)
	_, err = CompileToC("pagerank.gt", bad2, "s", "", CompileOptions{})
	if err == nil || !strings.Contains(err.Error(), "must take 2 parameters") {
		t.Errorf("weighted UDF on unweighted edgeset: %v", err)
	}
}

func TestMinEqualsRestrictions(t *testing.T) {
	hdr := "element Vertex end\nconst edges : edgeset{Edge}(Vertex, Vertex) = load(\"chain:n=4\")\n"
	src := hdr + "func main()\nvar x : int = 3\nx min= 2\nend\n"
	_, err := CompileToC("t.gt", src, "s", "", CompileOptions{})
	if err == nil || !strings.Contains(err.Error(), "only supported on vector elements") {
		t.Errorf("min= on scalar: %v", err)
	}
}

func TestSSSPWithD2X(t *testing.T) {
	// The weighted pipeline keeps working with debug info enabled.
	out, _ := runGT(t, "sssp.gt", SSSPSrc, SSSPSchedule, true)
	plain, _ := runGT(t, "sssp.gt", SSSPSrc, SSSPSchedule, false)
	if out != plain {
		t.Errorf("D2X changed SSSP output: %q vs %q", out, plain)
	}
}

func TestElifChainsAndContains(t *testing.T) {
	src := `element Vertex end
const edges : edgeset{Edge}(Vertex, Vertex) = load("chain:n=6")
func main()
	var fr : vertexset{Vertex} = new vertexset{Vertex}(0)
	fr.addVertex(2)
	var category : int = 0
	if fr.contains(0)
		category = 1
	elif fr.contains(2)
		category = 2
	else
		category = 3
	end
	print category
	print fr.contains(5)
end
`
	out, _ := runGT(t, "elif.gt", src, "", false)
	if out != "2\nfalse\n" {
		t.Errorf("output = %q, want %q", out, "2\nfalse\n")
	}
}

func TestWhileBreakInMain(t *testing.T) {
	src := `element Vertex end
const edges : edgeset{Edge}(Vertex, Vertex) = load("chain:n=4")
func main()
	var n : int = 0
	while true
		n = n + 1
		if n >= 5
			break
		end
	end
	print n
end
`
	out, _ := runGT(t, "loop.gt", src, "", false)
	if out != "5\n" {
		t.Errorf("output = %q", out)
	}
}
