package minic

import (
	"fmt"
	"sort"
	"strings"
)

// Program is a fully checked and compiled mini-C program, ready to run on
// the VM. It is the analogue of the executable the DSL compilers in the
// paper produce: the debugger and the D2X runtime only ever see a Program
// plus its (separately encoded) debug information.
type Program struct {
	SourceName string
	SourceText string

	Structs      map[string]*StructDef
	Funcs        []*FuncDecl
	FuncByName   map[string]int
	Globals      []*GlobalDecl
	GlobalByName map[string]int
	Natives      *Natives

	Code []*FuncCode // parallel to Funcs
}

// FuncIndex returns the index of the named function, or -1.
func (p *Program) FuncIndex(name string) int {
	if i, ok := p.FuncByName[name]; ok {
		return i
	}
	return -1
}

// InitFuncs returns, in declaration order, the names of functions that the
// VM runs automatically before main. By convention these are all functions
// whose name starts with "__init". The D2X table emitter uses this hook to
// populate its tables inside the debuggee before execution begins.
func (p *Program) InitFuncs() []string {
	var names []string
	for _, f := range p.Funcs {
		if strings.HasPrefix(f.Name, "__init") {
			names = append(names, f.Name)
		}
	}
	return names
}

// SourceLines returns the program text split into lines (1-based access via
// SourceLine). The debugger's `list` command and D2X's xlist both read
// generated source through this.
func (p *Program) SourceLines() []string {
	return strings.Split(p.SourceText, "\n")
}

// SourceLine returns the 1-based line of the generated source, or "" when
// out of range.
func (p *Program) SourceLine(n int) string {
	lines := p.SourceLines()
	if n < 1 || n > len(lines) {
		return ""
	}
	return lines[n-1]
}

// NativeHandler is the Go implementation of a native (host-linked)
// function. It is the analogue of a C++ library linked into the generated
// executable: the D2X runtime library registers its command_x* entry points
// through this mechanism. Handlers run synchronously on the calling thread.
type NativeHandler func(call *NativeCall) (Value, error)

// NativeCall carries the arguments and VM context of one native invocation.
type NativeCall struct {
	VM     *VM
	Thread *Thread
	Args   []Value
}

// Native describes one registered native function.
type Native struct {
	Name    string
	Sig     Signature
	Handler NativeHandler

	// AnyResult marks natives whose static result type is adopted from the
	// assignment context (the mini-C analogue of returning void*).
	AnyResult bool
	// Variadic allows any extra arguments after Sig.Params.
	Variadic bool
	// WritesMemory declares that the handler may mutate program-visible
	// memory (globals, or memory reached through pointer arguments).
	// The effects analysis treats this flag as ground truth for native
	// writes, and the VM's guarded-call write barrier blocks calls to
	// natives that set it.
	WritesMemory bool
}

// Natives is a registry of native functions available to a program. A
// registry is provided at compile time (for signature checking) and shared
// with the VM at run time (for dispatch).
type Natives struct {
	list   []*Native
	byName map[string]int
}

// NewNatives returns a registry pre-populated with the core builtins that
// generated code relies on (printf, to_str, len, atomic operations, ...).
func NewNatives() *Natives {
	n := &Natives{byName: map[string]int{}}
	registerCoreBuiltins(n)
	return n
}

// Register adds a native function. Registering a duplicate name panics:
// this indicates a build-system bug, exactly like a duplicate symbol at
// link time.
func (n *Natives) Register(nat *Native) {
	if _, dup := n.byName[nat.Name]; dup {
		panic(fmt.Sprintf("minic: duplicate native %q", nat.Name))
	}
	n.byName[nat.Name] = len(n.list)
	n.list = append(n.list, nat)
}

// Lookup returns the native with the given name and its index.
func (n *Natives) Lookup(name string) (*Native, int, bool) {
	i, ok := n.byName[name]
	if !ok {
		return nil, -1, false
	}
	return n.list[i], i, true
}

// Names returns all registered native names, sorted.
func (n *Natives) Names() []string {
	out := make([]string, 0, len(n.list))
	for _, nat := range n.list {
		out = append(out, nat.Name)
	}
	sort.Strings(out)
	return out
}

// At returns the native at index i.
func (n *Natives) At(i int) *Native { return n.list[i] }

// Len returns the number of registered natives.
func (n *Natives) Len() int { return len(n.list) }

// Compile parses, checks, and compiles mini-C source into a runnable
// Program. natives may be nil, in which case only the core builtins are
// available.
func Compile(filename, src string, natives *Natives) (*Program, error) {
	if natives == nil {
		natives = NewNatives()
	}
	file, err := Parse(filename, src)
	if err != nil {
		return nil, err
	}
	prog, err := Check(file, natives)
	if err != nil {
		return nil, err
	}
	if err := CompileCode(prog); err != nil {
		return nil, err
	}
	prog.SourceText = src
	return prog, nil
}
