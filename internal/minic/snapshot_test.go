package minic

import (
	"strings"
	"testing"
)

// snapshotProgram exercises every object-graph shape the copier must
// preserve: globals, arrays, structs, pointers into array interiors and
// struct fields, parallel_for captures, and multi-frame call stacks.
const snapshotProgram = `
struct point { int x; int y; }
global int checksum = 0;
func int weigh(int[] data, point* p, int round) {
	int acc = p->x + p->y;
	for (int i = 0; i < len(data); i++) {
		acc += data[i] * round;
	}
	return acc;
}
func int main() {
	int[] data = new int[16];
	point* p = new point;
	int* alias = &data[3];
	parallel_for (int i = 0; i < 16; i++) {
		data[i] = i * 3;
	}
	for (int round = 0; round < 24; round++) {
		p->x = round;
		p->y = *alias;
		*alias = *alias + 1;
		checksum = checksum + weigh(data, p, round);
		printf("round %d: %d\n", round, checksum);
	}
	printf("done %d\n", checksum);
	return 0;
}`

func compileForTest(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Compile("test.c", src, nil)
	if err != nil {
		t.Fatalf("compile failed: %v", err)
	}
	return prog
}

// TestSnapshotRestoreReplaysIdentically pauses a run at several points,
// snapshots, finishes the run, then restores and re-runs — the replayed
// tail of the output and the final state must match the forward run
// byte for byte.
func TestSnapshotRestoreReplaysIdentically(t *testing.T) {
	prog := compileForTest(t, snapshotProgram)
	for _, pause := range []int{0, 1, 7, 50, 333, 1000} {
		var fwd strings.Builder
		vm := NewVM(prog, &fwd)
		if err := vm.Start(); err != nil {
			t.Fatalf("start: %v", err)
		}
		for i := 0; i < pause; i++ {
			if vm.StepInstr() == nil {
				break
			}
		}
		snap := vm.TakeSnapshot()
		prefixLen := len(fwd.String())
		if err := vm.RunToCompletion(0); err != nil {
			t.Fatalf("forward run (pause %d): %v", pause, err)
		}
		wantTail := fwd.String()[prefixLen:]
		wantSum := vm.GlobalCell("checksum").V.I
		wantSteps := vm.Steps

		var replay strings.Builder
		if err := vm.RestoreSnapshot(snap); err != nil {
			t.Fatalf("restore (pause %d): %v", pause, err)
		}
		vm.Output = &replay
		if err := vm.RunToCompletion(0); err != nil {
			t.Fatalf("replay run (pause %d): %v", pause, err)
		}
		if got := replay.String(); got != wantTail {
			t.Errorf("pause %d: replayed output diverged:\n got %q\nwant %q", pause, got, wantTail)
		}
		if got := vm.GlobalCell("checksum").V.I; got != wantSum {
			t.Errorf("pause %d: checksum = %d after replay, want %d", pause, got, wantSum)
		}
		if vm.Steps != wantSteps {
			t.Errorf("pause %d: Steps = %d after replay, want %d", pause, vm.Steps, wantSteps)
		}
	}
}

// TestSnapshotIsIsolated checks a snapshot is a deep copy: running the VM
// past the snapshot point must not disturb it, and one snapshot restores
// correctly more than once.
func TestSnapshotIsIsolated(t *testing.T) {
	prog := compileForTest(t, snapshotProgram)
	var out strings.Builder
	vm := NewVM(prog, &out)
	if err := vm.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	for i := 0; i < 200; i++ {
		vm.StepInstr()
	}
	snap := vm.TakeSnapshot()
	prefixLen := len(out.String())
	if err := vm.RunToCompletion(0); err != nil {
		t.Fatalf("forward: %v", err)
	}
	wantTail := out.String()[prefixLen:]

	for round := 0; round < 2; round++ {
		var replay strings.Builder
		if err := vm.RestoreSnapshot(snap); err != nil {
			t.Fatalf("restore %d: %v", round, err)
		}
		vm.Output = &replay
		if err := vm.RunToCompletion(0); err != nil {
			t.Fatalf("replay %d: %v", round, err)
		}
		if replay.String() != wantTail {
			t.Errorf("restore %d: output diverged from forward run", round)
		}
	}
}

// TestSnapshotPreservesAliasing restores mid-loop — while `alias` points
// into data[3] and the struct holds values derived through it — and
// checks a write through the restored pointer is visible through the
// restored array, i.e. interior pointers were translated to the copied
// container, not to detached duplicates.
func TestSnapshotPreservesAliasing(t *testing.T) {
	prog := compileForTest(t, snapshotProgram)
	vm := NewVM(prog, nil)
	if err := vm.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	// Run until main's alias slot is populated.
	mainT := vm.Threads()[0]
	var aliasCell *Cell
	for i := 0; i < 100000; i++ {
		if c := mainT.Frames[0].SlotByName("alias"); c != nil && c.V.Kind == VPtr && c.V.Ptr != nil {
			aliasCell = c.V.Ptr
			break
		}
		vm.StepInstr()
	}
	if aliasCell == nil {
		t.Fatal("never saw alias populated")
	}
	snap := vm.TakeSnapshot()
	if err := vm.RestoreSnapshot(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	rt := vm.Threads()[0]
	alias := rt.Frames[0].SlotByName("alias").V
	data := rt.Frames[0].SlotByName("data").V
	if alias.Kind != VPtr || data.Kind != VArr {
		t.Fatalf("restored slots have kinds %v/%v, want ptr/arr", alias.Kind, data.Kind)
	}
	if alias.Ptr == aliasCell {
		t.Fatal("restored pointer still targets the pre-restore cell (shallow copy)")
	}
	if alias.Ptr != &data.Arr.Cells[3] {
		t.Fatal("restored pointer does not alias the restored array interior")
	}
	alias.Ptr.V = IntVal(991)
	if got := data.Arr.Cells[3].V.I; got != 991 {
		t.Errorf("write through restored pointer invisible through array: got %d", got)
	}
}

// TestSnapshotDuringParallelFor snapshots while helper threads are live
// (parent Waiting, captures shared by reference) and checks the replay
// still converges to the right answer.
func TestSnapshotDuringParallelFor(t *testing.T) {
	prog := compileForTest(t, `
global int total = 0;
func int main() {
	int bias = 2;
	parallel_for (int i = 0; i < 100; i++) {
		atomic_add(&total, i + bias);
	}
	printf("%d\n", total);
	return 0;
}`)
	var out strings.Builder
	vm := NewVM(prog, &out)
	if err := vm.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	// Step until the fan-out happened and some helpers have run.
	for len(vm.Threads()) < 2 {
		if vm.StepInstr() == nil {
			t.Fatal("program finished before parallel_for spawned")
		}
	}
	for i := 0; i < 40; i++ {
		vm.StepInstr()
	}
	snap := vm.TakeSnapshot()
	if err := vm.RunToCompletion(0); err != nil {
		t.Fatalf("forward: %v", err)
	}
	want := out.String()

	var replay strings.Builder
	if err := vm.RestoreSnapshot(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	vm.Output = &replay
	if err := vm.RunToCompletion(0); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if fwdTail, repl := want, replay.String(); !strings.HasSuffix(fwdTail, repl) || repl == "" {
		t.Errorf("replay output %q is not the tail of forward output %q", repl, fwdTail)
	}
	if got := vm.GlobalCell("total").V.I; got != 5150 {
		t.Errorf("total after replay = %d, want 5150", got)
	}
}

// TestSchedulerDeterminism is the regression test replay correctness
// rests on: two VMs built from the same program must produce identical
// (thread ID, function, pc) step sequences, including across the thread
// appends of spawnParFor and the schedIdx wraparound in StepInstr.
func TestSchedulerDeterminism(t *testing.T) {
	prog := compileForTest(t, `
global int total = 0;
func int main() {
	parallel_for (int i = 0; i < 37; i++) {
		parallel_for (int j = 0; j < 5; j++) {
			atomic_add(&total, i * j);
		}
	}
	printf("%d\n", total);
	return 0;
}`)
	a := NewVM(prog, nil)
	b := NewVM(prog, nil)
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	for step := 0; ; step++ {
		ta, tb := a.NextThread(), b.NextThread()
		if (ta == nil) != (tb == nil) {
			t.Fatalf("step %d: one VM finished before the other", step)
		}
		if ta == nil {
			break
		}
		fa, fb := ta.Top(), tb.Top()
		if ta.ID != tb.ID {
			t.Fatalf("step %d: thread %d vs %d", step, ta.ID, tb.ID)
		}
		if fa == nil || fb == nil {
			if fa != fb {
				t.Fatalf("step %d: frame presence diverged", step)
			}
		} else if fa.FuncIndex != fb.FuncIndex || fa.PC != fb.PC {
			t.Fatalf("step %d: (fn %d, pc %d) vs (fn %d, pc %d)",
				step, fa.FuncIndex, fa.PC, fb.FuncIndex, fb.PC)
		}
		a.StepInstr()
		b.StepInstr()
	}
	if !a.Done() || !b.Done() {
		t.Fatal("VMs not both done")
	}
	if x, y := a.GlobalCell("total").V.I, b.GlobalCell("total").V.I; x != y {
		t.Fatalf("totals diverged: %d vs %d", x, y)
	}
}

// TestRunToCompletionBudgetExact pins the step-budget semantics: a
// program that finishes in exactly maxSteps succeeds, a budget one short
// fails, and the failing run executes exactly maxSteps instructions —
// not maxSteps+1 as the old `steps > maxSteps` check allowed.
func TestRunToCompletionBudgetExact(t *testing.T) {
	prog := compileForTest(t, `
func int main() {
	int acc = 0;
	for (int i = 0; i < 50; i++) {
		acc += i;
	}
	return acc;
}`)
	vm := NewVM(prog, nil)
	if err := vm.Run(); err != nil {
		t.Fatalf("unbudgeted run: %v", err)
	}
	total := vm.Steps

	exact := NewVM(prog, nil)
	if err := exact.Start(); err != nil {
		t.Fatal(err)
	}
	if err := exact.RunToCompletion(total); err != nil {
		t.Errorf("budget of exactly %d failed: %v", total, err)
	}

	short := NewVM(prog, nil)
	if err := short.Start(); err != nil {
		t.Fatal(err)
	}
	err := short.RunToCompletion(total - 1)
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("budget %d: err = %v, want step budget error", total-1, err)
	}
	if short.Steps != total-1 {
		t.Errorf("budget %d executed %d instructions, want exactly the budget", total-1, short.Steps)
	}

	one := NewVM(prog, nil)
	if err := one.Start(); err != nil {
		t.Fatal(err)
	}
	if err := one.RunToCompletion(1); err == nil {
		t.Error("budget 1 should fail for a multi-instruction program")
	}
	if one.Steps != 1 {
		t.Errorf("budget 1 executed %d instructions, want 1", one.Steps)
	}
}
