package minic

import (
	"strings"
	"testing"
)

// runProgram compiles and runs src, returning the VM and its captured
// output. Fails the test on any error.
func runProgram(t *testing.T, src string) (*VM, string) {
	t.Helper()
	vm, out, err := tryRunProgram(src)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return vm, out
}

func tryRunProgram(src string) (*VM, string, error) {
	prog, err := Compile("test.c", src, nil)
	if err != nil {
		return nil, "", err
	}
	var buf strings.Builder
	vm := NewVM(prog, &buf)
	err = vm.Run()
	return vm, buf.String(), err
}

func TestArithmeticAndPrintf(t *testing.T) {
	_, out := runProgram(t, `
func int main() {
	int a = 6;
	int b = 7;
	printf("%d\n", a * b);
	float x = 1;
	printf("%f\n", x / 2);
	printf("%s %b %v\n", "hi", true, a);
	return 0;
}`)
	want := "42\n0.5\nhi true 6\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestPowerBySquaring(t *testing.T) {
	// The exact shape BuildIt generates for power_15 (paper Figure 8).
	vm, _ := runProgram(t, `
func int power_15(int arg0) {
	int res_1 = 1;
	int x_2 = arg0;
	res_1 = res_1 * x_2;
	x_2 = x_2 * x_2;
	res_1 = res_1 * x_2;
	x_2 = x_2 * x_2;
	res_1 = res_1 * x_2;
	x_2 = x_2 * x_2;
	res_1 = res_1 * x_2;
	x_2 = x_2 * x_2;
	return res_1;
}
global int result = 0;
func int main() {
	result = power_15(3);
	return 0;
}`)
	got := vm.GlobalCell("result").V.I
	if got != 14348907 { // 3^15
		t.Errorf("power_15(3) = %d, want 14348907", got)
	}
}

func TestControlFlow(t *testing.T) {
	_, out := runProgram(t, `
func int main() {
	int total = 0;
	for (int i = 0; i < 10; i++) {
		if (i % 2 == 0) {
			continue;
		}
		if (i == 9) {
			break;
		}
		total += i;
	}
	int j = 0;
	while (j < 3) {
		j++;
	}
	printf("%d %d\n", total, j);
	return 0;
}`)
	if out != "16 3\n" { // 1+3+5+7
		t.Errorf("output = %q, want %q", out, "16 3\n")
	}
}

func TestArraysAndStructs(t *testing.T) {
	_, out := runProgram(t, `
struct point { int x; int y; }
func int main() {
	int[] a = new int[5];
	for (int i = 0; i < len(a); i++) {
		a[i] = i * i;
	}
	point* p = new point;
	p->x = a[3];
	p->y = a[4];
	printf("%d %d %d\n", p->x, p->y, len(a));
	return 0;
}`)
	if out != "9 16 5\n" {
		t.Errorf("output = %q, want %q", out, "9 16 5\n")
	}
}

func TestPointers(t *testing.T) {
	_, out := runProgram(t, `
func void bump(int* p) {
	*p = *p + 1;
}
func int main() {
	int v = 41;
	bump(&v);
	printf("%d\n", v);
	int[] arr = new int[3];
	int* q = &arr[1];
	*q = 7;
	printf("%d\n", arr[1]);
	return 0;
}`)
	if out != "42\n7\n" {
		t.Errorf("output = %q, want %q", out, "42\n7\n")
	}
}

func TestStringOps(t *testing.T) {
	_, out := runProgram(t, `
func int main() {
	string s = "is_dense(";
	s += to_str(true);
	s += ") [";
	s = s + to_str(1) + "," + to_str(2) + ",";
	printf("%s]\n", s);
	printf("%d\n", str_len("hello"));
	return 0;
}`)
	if out != "is_dense(true) [1,2,]\n5\n" {
		t.Errorf("output = %q", out)
	}
}

func TestRecursion(t *testing.T) {
	_, out := runProgram(t, `
func int fib(int n) {
	if (n < 2) {
		return n;
	}
	return fib(n - 1) + fib(n - 2);
}
func int main() {
	printf("%d\n", fib(15));
	return 0;
}`)
	if out != "610\n" {
		t.Errorf("fib output = %q, want 610", out)
	}
}

func TestParallelForSum(t *testing.T) {
	// atomic_add keeps the parallel accumulation correct regardless of
	// thread interleaving.
	vm, _ := runProgram(t, `
global int total = 0;
func int main() {
	parallel_for (int i = 0; i < 1000; i++) {
		atomic_add(&total, i);
	}
	return 0;
}`)
	if got := vm.GlobalCell("total").V.I; got != 499500 {
		t.Errorf("parallel sum = %d, want 499500", got)
	}
}

func TestParallelForRace(t *testing.T) {
	// A plain += compiles to a load/add/store sequence that interleaves
	// across logical threads: with a single shared counter, updates must
	// be lost. This is the GraphIt push-schedule data race the paper's
	// atomicAdd specialisation exists to fix (Figure 2).
	vm, _ := runProgram(t, `
global int total = 0;
func int main() {
	parallel_for (int i = 0; i < 1000; i++) {
		total += 1;
	}
	return 0;
}`)
	got := vm.GlobalCell("total").V.I
	if got >= 1000 {
		t.Errorf("racy sum = %d, expected lost updates (< 1000)", got)
	}
	if got <= 0 {
		t.Errorf("racy sum = %d, expected some updates to land", got)
	}
}

func TestParallelForCapture(t *testing.T) {
	_, out := runProgram(t, `
func int main() {
	int[] data = new int[64];
	int bias = 5;
	parallel_for (int i = 0; i < 64; i++) {
		data[i] = i + bias;
	}
	int total = 0;
	for (int i = 0; i < 64; i++) {
		total += data[i];
	}
	printf("%d\n", total);
	return 0;
}`)
	if out != "2336\n" { // sum(0..63) + 64*5
		t.Errorf("output = %q, want 2336", out)
	}
}

func TestNestedParallelFor(t *testing.T) {
	vm, _ := runProgram(t, `
global int total = 0;
func int main() {
	parallel_for (int i = 0; i < 8; i++) {
		parallel_for (int j = 0; j < 8; j++) {
			atomic_add(&total, 1);
		}
	}
	return 0;
}`)
	if got := vm.GlobalCell("total").V.I; got != 64 {
		t.Errorf("nested parallel total = %d, want 64", got)
	}
}

func TestCallFunctionSynchronous(t *testing.T) {
	prog, err := Compile("test.c", `
func int double_it(int x) {
	return x * 2;
}
func int main() {
	return 0;
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, nil)
	if err := vm.Start(); err != nil {
		t.Fatal(err)
	}
	res, err := vm.CallFunction("double_it", []Value{IntVal(21)})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 42 {
		t.Errorf("double_it(21) = %d, want 42", res.I)
	}
}

func TestInitFunctionsRunBeforeMain(t *testing.T) {
	vm, _ := runProgram(t, `
global int[] table;
func void __init_tables() {
	table = new int[3];
	table[0] = 10;
	table[1] = 20;
	table[2] = 30;
}
global int sum = 0;
func int main() {
	sum = table[0] + table[1] + table[2];
	return 0;
}`)
	if got := vm.GlobalCell("sum").V.I; got != 60 {
		t.Errorf("sum = %d, want 60", got)
	}
}

func TestRuntimeFaults(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"div-by-zero", `func int main() { int a = 1; int b = 0; int c = a / b; return c; }`, "division by zero"},
		{"null-deref", `func int main() { int* p = null; return *p; }`, "null pointer"},
		{"oob", `func int main() { int[] a = new int[2]; return a[5]; }`, "out of range"},
		{"null-array", `func int main() { int[] a = null; return a[0]; }`, "null array"},
		{"assert", `func int main() { assert(false, "boom"); return 0; }`, "boom"},
		{"neg-size", `func int main() { int[] a = new int[0 - 3]; return 0; }`, "negative array size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := tryRunProgram(tc.src)
			if err == nil {
				t.Fatalf("expected fault containing %q, got success", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("fault = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undef-var", `func int main() { return x; }`, "undefined identifier"},
		{"undef-func", `func int main() { foo(); return 0; }`, "undefined function"},
		{"type-mismatch", `func int main() { int a = "s"; return a; }`, "cannot initialise"},
		{"bad-cond", `func int main() { if (1) { } return 0; }`, "must be bool"},
		{"dup-func", `func void f() { } func void f() { } func int main() { return 0; }`, "duplicate function"},
		{"bad-args", `func void f(int a) { } func int main() { f(); return 0; }`, "requires 1 arguments"},
		{"break-outside", `func int main() { break; return 0; }`, "break outside loop"},
		{"bad-field", `struct s { int a; } func int main() { s* p = new s; return p->b; }`, "no field"},
		{"void-var", `func int main() { void v; return 0; }`, "cannot have type void"},
		{"string-mod", `func int main() { string s = "a"; s = s % "b"; return 0; }`, "must be int"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile("test.c", tc.src, nil)
			if err == nil {
				t.Fatalf("expected compile error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}

func TestAtomicMinAndCas(t *testing.T) {
	vm, _ := runProgram(t, `
global int best = 1000;
global int flag = 0;
global int winners = 0;
func int main() {
	parallel_for (int i = 0; i < 100; i++) {
		atomic_min(&best, 100 - i);
		if (cas(&flag, 0, 1)) {
			atomic_add(&winners, 1);
		}
	}
	return 0;
}`)
	if got := vm.GlobalCell("best").V.I; got != 1 {
		t.Errorf("atomic_min result = %d, want 1", got)
	}
	if got := vm.GlobalCell("winners").V.I; got != 1 {
		t.Errorf("cas winners = %d, want exactly 1", got)
	}
}

func TestFrameRegistry(t *testing.T) {
	prog, err := Compile("test.c", `
func int inner(int x) {
	return x + 1;
}
func int main() {
	return inner(1);
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, nil)
	if err := vm.Start(); err != nil {
		t.Fatal(err)
	}
	// Step until we are inside inner, then check the frame registry maps
	// IDs to live frames.
	for i := 0; i < 100; i++ {
		th := vm.NextThread()
		if th == nil {
			break
		}
		if top := th.Top(); top != nil && top.Fn.Name == "inner" {
			if vm.FrameByID(top.ID) != top {
				t.Fatalf("FrameByID(%d) did not return the live frame", top.ID)
			}
			if cell := top.SlotByName("x"); cell == nil || cell.V.I != 1 {
				t.Fatalf("slot x = %v, want 1", cell)
			}
			return
		}
		vm.StepInstr()
	}
	t.Fatal("never reached inner()")
}

func TestStepsCounterAdvances(t *testing.T) {
	vm, _ := runProgram(t, `func int main() { int a = 0; for (int i = 0; i < 100; i++) { a += i; } return a; }`)
	if vm.Steps < 100 {
		t.Errorf("Steps = %d, expected at least 100", vm.Steps)
	}
}

func TestImplicitIntToFloat(t *testing.T) {
	_, out := runProgram(t, `
func float halve(float x) {
	return x / 2;
}
func int main() {
	float a = 3;
	printf("%f %f\n", a / 2, halve(5));
	return 0;
}`)
	if out != "1.5 2.5\n" {
		t.Errorf("output = %q, want %q", out, "1.5 2.5\n")
	}
}

func TestShortCircuit(t *testing.T) {
	_, out := runProgram(t, `
global int calls = 0;
func bool touch() {
	calls += 1;
	return true;
}
func int main() {
	bool a = false && touch();
	bool b = true || touch();
	printf("%b %b %d\n", a, b, calls);
	return 0;
}`)
	if out != "false true 0\n" {
		t.Errorf("short-circuit output = %q", out)
	}
}

func TestCallFunctionWithParallelFor(t *testing.T) {
	// A synchronous debugger-style call into a function that itself fans
	// out a parallel_for: the synthetic scheduler must run the spawned
	// children to completion while the main program stays frozen.
	prog, err := Compile("test.c", `
global int acc = 0;
func int fan(int n) {
	acc = 0;
	parallel_for (int i = 0; i < n; i++) {
		atomic_add(&acc, i);
	}
	return acc;
}
func int main() {
	int x = 0;
	x = x + 1;
	return x;
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, nil)
	if err := vm.Start(); err != nil {
		t.Fatal(err)
	}
	vm.StepInstr() // main is mid-flight
	res, err := vm.CallFunction("fan", []Value{IntVal(100)})
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 4950 {
		t.Errorf("fan(100) = %d, want 4950", res.I)
	}
	// The frozen main thread is untouched and completes normally.
	if err := vm.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
}

func TestCallFunctionBudget(t *testing.T) {
	prog, err := Compile("test.c", `
func int spin() {
	int i = 0;
	while (true) {
		i += 1;
	}
	return i;
}
func int main() { return 0; }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, nil)
	vm.SynthBudget = 10_000
	if err := vm.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.CallFunction("spin", nil); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("runaway call: %v", err)
	}
}

func TestWorkerCountAffectsChunks(t *testing.T) {
	src := `
global int[] owner;
func int main() {
	owner = new int[16];
	parallel_for (int i = 0; i < 16; i++) {
		owner[i] = thread_id();
	}
	return 0;
}`
	distinct := func(workers int) int {
		prog, err := Compile("test.c", src, nil)
		if err != nil {
			t.Fatal(err)
		}
		vm := NewVM(prog, nil)
		vm.NumWorkers = workers
		if err := vm.Run(); err != nil {
			t.Fatal(err)
		}
		ids := map[int64]bool{}
		arr := vm.GlobalCell("owner").V.Arr
		for i := range arr.Cells {
			ids[arr.Cells[i].V.I] = true
		}
		return len(ids)
	}
	if got := distinct(1); got != 1 {
		t.Errorf("1 worker used %d threads", got)
	}
	if got := distinct(4); got != 4 {
		t.Errorf("4 workers used %d threads", got)
	}
	if got := distinct(32); got != 16 { // clamped to the range
		t.Errorf("32 workers over 16 items used %d threads", got)
	}
}
