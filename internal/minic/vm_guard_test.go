package minic

import (
	"errors"
	"testing"
)

// startProgram compiles src and starts a VM without running main, the
// state a debugger holds when it calls handlers synchronously.
func startProgram(t *testing.T, src string) *VM {
	t.Helper()
	prog, err := Compile("guard_test.c", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, nil)
	if err := vm.Start(); err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestGuardBlocksGlobalWrite(t *testing.T) {
	vm := startProgram(t, `
global int g = 7;
func int bump() {
	g = g + 1;
	return g;
}
func int main() { return 0; }`)
	frames := len(vm.frameByID)

	_, err := vm.CallFunctionGuarded("bump", nil, &Guard{BlockWrites: true})
	if !errors.Is(err, ErrWriteBarrier) {
		t.Fatalf("err = %v, want ErrWriteBarrier", err)
	}
	if got := vm.GlobalCell("g").V.I; got != 7 {
		t.Errorf("g = %d after blocked call, want 7 (untouched)", got)
	}
	if len(vm.frameByID) != frames {
		t.Errorf("frame registry leaked: %d entries, want %d", len(vm.frameByID), frames)
	}

	// The same call without a guard succeeds and performs the write.
	res, err := vm.CallFunctionGuarded("bump", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 8 || vm.GlobalCell("g").V.I != 8 {
		t.Errorf("unguarded bump: res=%d g=%d, want 8/8", res.I, vm.GlobalCell("g").V.I)
	}
}

func TestGuardBlocksPointerStore(t *testing.T) {
	vm := startProgram(t, `
global int g = 1;
func void poke(int* p) { *p = 9; }
func int main() { return 0; }`)
	cell := vm.GlobalCell("g")
	_, err := vm.CallFunctionGuarded("poke", []Value{PtrVal(cell)}, &Guard{BlockWrites: true})
	if !errors.Is(err, ErrWriteBarrier) {
		t.Fatalf("err = %v, want ErrWriteBarrier", err)
	}
	if cell.V.I != 1 {
		t.Errorf("g = %d, want 1", cell.V.I)
	}
}

// TestGuardAllowsPointerStoreToOwnLocal: a store through a pointer that
// targets a local of the guarded call itself (here, a caller's slot two
// frames down) is private memory and must pass the barrier.
func TestGuardAllowsPointerStoreToOwnLocal(t *testing.T) {
	vm := startProgram(t, `
func void poke(int* p) { *p = 9; }
func int outer() {
	int x = 0;
	poke(&x);
	return x;
}
func int main() { return 0; }`)
	res, err := vm.CallFunctionGuarded("outer", nil, &Guard{BlockWrites: true})
	if err != nil {
		t.Fatalf("store into own local blocked: %v", err)
	}
	if res.I != 9 {
		t.Errorf("outer() = %d, want 9", res.I)
	}
}

func TestGuardBlocksWritingNative(t *testing.T) {
	vm := startProgram(t, `
global int g = 0;
func void bump() { atomic_add(&g, 1); }
func int main() { return 0; }`)
	_, err := vm.CallFunctionGuarded("bump", nil, &Guard{BlockWrites: true})
	if !errors.Is(err, ErrWriteBarrier) {
		t.Fatalf("err = %v, want ErrWriteBarrier", err)
	}
	if got := vm.GlobalCell("g").V.I; got != 0 {
		t.Errorf("g = %d, want 0", got)
	}
}

func TestGuardAllowsLocalsAndReads(t *testing.T) {
	vm := startProgram(t, `
global int g = 5;
func int mix(int n) {
	int acc = 0;
	for (int i = 0; i < 4; i++) {
		acc = acc + i * n;
	}
	return acc + g;
}
func int main() { return 0; }`)
	res, err := vm.CallFunctionGuarded("mix", []Value{IntVal(3)}, &Guard{Fuel: 100_000, BlockWrites: true})
	if err != nil {
		t.Fatalf("guarded pure call failed: %v", err)
	}
	// 0+3+6+9 + 5
	if res.I != 23 {
		t.Errorf("mix(3) = %d, want 23", res.I)
	}
}

// TestGuardConservativeOnLocalArrays documents the division of labor:
// the runtime barrier cannot see allocation provenance, so it blocks
// even stores into a locally-allocated array. The static analysis is
// what proves such handlers safe — and then no guard is attached.
func TestGuardConservativeOnLocalArrays(t *testing.T) {
	vm := startProgram(t, `
func int fill() {
	int[] buf = new int[4];
	buf[0] = 1;
	return buf[0];
}
func int main() { return 0; }`)
	_, err := vm.CallFunctionGuarded("fill", nil, &Guard{BlockWrites: true})
	if !errors.Is(err, ErrWriteBarrier) {
		t.Fatalf("err = %v, want ErrWriteBarrier (barrier is conservative)", err)
	}
	res, err := vm.CallFunctionGuarded("fill", nil, nil)
	if err != nil || res.I != 1 {
		t.Fatalf("unguarded fill: res=%v err=%v", res, err)
	}
}

func TestGuardFuelExhaustion(t *testing.T) {
	vm := startProgram(t, `
func int spin() {
	int i = 0;
	while (true) { i = i + 1; }
	return i;
}
func int main() { return 0; }`)
	frames := len(vm.frameByID)
	_, err := vm.CallFunctionGuarded("spin", nil, &Guard{Fuel: 10_000})
	if !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("err = %v, want ErrFuelExhausted", err)
	}
	if len(vm.frameByID) != frames {
		t.Errorf("frame registry leaked after fuel exhaustion: %d entries, want %d", len(vm.frameByID), frames)
	}
}

// TestGuardFuelDoesNotRelaxSynthBudget: a guard fuel above the VM-wide
// budget must not raise the cap, and the resulting error is the plain
// budget message, not ErrFuelExhausted.
func TestGuardFuelDoesNotRelaxSynthBudget(t *testing.T) {
	vm := startProgram(t, `
func int spin() {
	while (true) { }
	return 0;
}
func int main() { return 0; }`)
	vm.SynthBudget = 5_000
	_, err := vm.CallFunctionGuarded("spin", nil, &Guard{Fuel: 1_000_000})
	if err == nil {
		t.Fatal("expected an error")
	}
	if errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("err = %v; VM budget overruns must not report as guard fuel", err)
	}
}

// TestGuardStatsTelemetry: a Guard with Stats attached reports the fuel
// actually burned and which fence stopped the call — the raw numbers the
// observability layer exports.
func TestGuardStatsTelemetry(t *testing.T) {
	vm := startProgram(t, `
global int g = 1;
func int ok() {
	int i = 0;
	while (i < 10) { i = i + 1; }
	return i;
}
func int writer() { g = 2; return g; }
func int spin() {
	while (true) { }
	return 0;
}
func int main() { return 0; }`)

	// Clean completion: fuel used is positive, no fences tripped.
	st := &GuardStats{}
	if _, err := vm.CallFunctionGuarded("ok", nil, &Guard{Fuel: 10_000, Stats: st}); err != nil {
		t.Fatal(err)
	}
	if st.FuelUsed <= 0 || st.WriteDenied || st.FuelExhausted {
		t.Errorf("clean call stats = %+v", st)
	}

	// Write barrier: denied flag set, fuel reflects work before the stop.
	st = &GuardStats{}
	_, err := vm.CallFunctionGuarded("writer", nil, &Guard{BlockWrites: true, Stats: st})
	if !errors.Is(err, ErrWriteBarrier) {
		t.Fatalf("err = %v, want ErrWriteBarrier", err)
	}
	if !st.WriteDenied || st.FuelExhausted {
		t.Errorf("barrier stats = %+v", st)
	}

	// Fuel exhaustion: exhausted flag set, fuel used is at the cap.
	st = &GuardStats{}
	_, err = vm.CallFunctionGuarded("spin", nil, &Guard{Fuel: 1_000, Stats: st})
	if !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("err = %v, want ErrFuelExhausted", err)
	}
	if !st.FuelExhausted || st.WriteDenied || st.FuelUsed < 1_000 {
		t.Errorf("fuel stats = %+v", st)
	}
}
