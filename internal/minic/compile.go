package minic

import "fmt"

// CompileCode lowers every checked function of prog to bytecode, filling in
// prog.Code. Check must have run first.
func CompileCode(prog *Program) error {
	prog.Code = make([]*FuncCode, len(prog.Funcs))
	for i, fd := range prog.Funcs {
		fc, err := compileFunc(prog, fd)
		if err != nil {
			return err
		}
		prog.Code[i] = fc
	}
	return nil
}

// fnCompiler lowers one function body.
type fnCompiler struct {
	prog *Program
	fn   *FuncDecl
	fc   *FuncCode

	line      int // current source line being compiled
	stmtStart bool

	breakPatch    [][]int // jump sites to patch per loop nesting
	continuePatch [][]int
}

func compileFunc(prog *Program, fd *FuncDecl) (*FuncCode, error) {
	c := &fnCompiler{
		prog: prog,
		fn:   fd,
		fc: &FuncCode{
			Name:      fd.Name,
			NumSlots:  fd.NumSlots,
			NumParams: len(fd.Params),
		},
	}
	if err := c.block(fd.Body); err != nil {
		return nil, err
	}
	// Implicit return at end of function. Non-void functions that fall off
	// the end return their zero value; generated code always returns
	// explicitly, but hand-written test programs may not.
	c.line = lastLine(fd.Body)
	if fd.Result.Kind == TVoid {
		c.emit(OpRet, 0, 0)
	} else {
		c.emit(OpConst, c.constIdx(ZeroValue(fd.Result)), 0)
		c.emit(OpRetVal, 0, 0)
	}
	return c.fc, nil
}

func lastLine(b *BlockStmt) int {
	if len(b.Stmts) == 0 {
		return b.Line
	}
	return b.Stmts[len(b.Stmts)-1].Pos()
}

func (c *fnCompiler) emit(op OpCode, a, b int) int {
	pc := len(c.fc.Instrs)
	c.fc.Instrs = append(c.fc.Instrs, Instr{
		Op: op, A: a, B: b, Line: c.line, StmtStart: c.stmtStart,
	})
	c.stmtStart = false
	return pc
}

func (c *fnCompiler) patch(pc, target int) { c.fc.Instrs[pc].A = target }

func (c *fnCompiler) here() int { return len(c.fc.Instrs) }

func (c *fnCompiler) constIdx(v Value) int {
	// Small tables; linear dedup of scalar constants is fine and keeps
	// const pools compact for the big D2X string tables.
	for i, existing := range c.fc.Consts {
		if existing.Kind == v.Kind {
			switch v.Kind {
			case VInt, VBool:
				if existing.I == v.I {
					return i
				}
			case VFloat:
				if existing.F == v.F {
					return i
				}
			case VStr:
				if existing.S == v.S {
					return i
				}
			case VNull:
				return i
			}
		}
	}
	c.fc.Consts = append(c.fc.Consts, v)
	return len(c.fc.Consts) - 1
}

func (c *fnCompiler) typeIdx(t *Type) int {
	for i, existing := range c.fc.Types {
		if existing.Equal(t) {
			return i
		}
	}
	c.fc.Types = append(c.fc.Types, t)
	return len(c.fc.Types) - 1
}

func (c *fnCompiler) structIdx(sd *StructDef) int {
	for i, existing := range c.fc.StructRefs {
		if existing == sd {
			return i
		}
	}
	c.fc.StructRefs = append(c.fc.StructRefs, sd)
	return len(c.fc.StructRefs) - 1
}

// stmt marks the next emitted instruction as a statement boundary at the
// statement's line, then compiles it.
func (c *fnCompiler) stmt(s Stmt) error {
	c.line = s.Pos()
	c.stmtStart = true
	return c.stmtNoMark(s)
}

func (c *fnCompiler) block(b *BlockStmt) error {
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *fnCompiler) stmtNoMark(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		// A bare block is not itself a step target; its statements are.
		c.stmtStart = false
		return c.block(st)

	case *VarDeclStmt:
		if st.Init != nil {
			if err := c.expr(st.Init); err != nil {
				return err
			}
			c.castIfNeeded(st.Type, st.Init.Type())
		} else {
			c.emit(OpConst, c.constIdx(ZeroValue(st.Type)), 0)
		}
		c.emit(OpStoreLocal, st.Slot, 0)
		return nil

	case *AssignStmt:
		return c.assign(st)

	case *IncDecStmt:
		delta := int64(1)
		if st.Op == Dec {
			delta = -1
		}
		synth := &AssignStmt{
			stmtBase: stmtBase{Line: st.Line},
			Op:       PlusAssign,
			LHS:      st.LHS,
			RHS:      &IntLit{exprBase: exprBase{Line: st.Line, typ: IntType}, Value: delta},
		}
		return c.assign(synth)

	case *ExprStmt:
		if err := c.expr(st.X); err != nil {
			return err
		}
		if st.X.Type().Kind != TVoid {
			c.emit(OpPop, 0, 0)
		}
		return nil

	case *IfStmt:
		if err := c.expr(st.Cond); err != nil {
			return err
		}
		jf := c.emit(OpJmpFalse, 0, 0)
		if err := c.block(st.Then); err != nil {
			return err
		}
		if st.Else == nil {
			c.patch(jf, c.here())
			return nil
		}
		jEnd := c.emit(OpJmp, 0, 0)
		c.patch(jf, c.here())
		if err := c.stmt(st.Else); err != nil {
			return err
		}
		c.patch(jEnd, c.here())
		return nil

	case *WhileStmt:
		top := c.here()
		c.line = st.Line
		if err := c.expr(st.Cond); err != nil {
			return err
		}
		jf := c.emit(OpJmpFalse, 0, 0)
		c.pushLoop()
		if err := c.block(st.Body); err != nil {
			return err
		}
		c.patchContinues(top)
		c.emit(OpJmp, top, 0)
		c.patch(jf, c.here())
		c.patchBreaks(c.here())
		c.popLoop()
		return nil

	case *ForStmt:
		if st.Init != nil {
			if err := c.stmtNoMark(st.Init); err != nil {
				return err
			}
		}
		top := c.here()
		var jf int = -1
		if st.Cond != nil {
			c.line = st.Line
			if err := c.expr(st.Cond); err != nil {
				return err
			}
			jf = c.emit(OpJmpFalse, 0, 0)
		}
		c.pushLoop()
		if err := c.block(st.Body); err != nil {
			return err
		}
		post := c.here()
		c.patchContinues(post)
		if st.Post != nil {
			c.line = st.Post.Pos()
			if err := c.stmtNoMark(st.Post); err != nil {
				return err
			}
		}
		c.emit(OpJmp, top, 0)
		if jf >= 0 {
			c.patch(jf, c.here())
		}
		c.patchBreaks(c.here())
		c.popLoop()
		return nil

	case *ParallelForStmt:
		if err := c.expr(st.Lo); err != nil {
			return err
		}
		if err := c.expr(st.Hi); err != nil {
			return err
		}
		info := ParForInfo{Helper: st.HelperIndex, Captured: st.capturedSlot}
		c.fc.ParFors = append(c.fc.ParFors, info)
		c.emit(OpParFor, len(c.fc.ParFors)-1, 0)
		return nil

	case *ReturnStmt:
		if st.X == nil {
			c.emit(OpRet, 0, 0)
			return nil
		}
		if err := c.expr(st.X); err != nil {
			return err
		}
		c.castIfNeeded(c.fn.Result, st.X.Type())
		c.emit(OpRetVal, 0, 0)
		return nil

	case *BreakStmt:
		pc := c.emit(OpJmp, 0, 0)
		last := len(c.breakPatch) - 1
		c.breakPatch[last] = append(c.breakPatch[last], pc)
		return nil

	case *ContinueStmt:
		pc := c.emit(OpJmp, 0, 0)
		last := len(c.continuePatch) - 1
		c.continuePatch[last] = append(c.continuePatch[last], pc)
		return nil
	}
	return fmt.Errorf("minic: cannot compile statement %T", s)
}

func (c *fnCompiler) pushLoop() {
	c.breakPatch = append(c.breakPatch, nil)
	c.continuePatch = append(c.continuePatch, nil)
}

func (c *fnCompiler) popLoop() {
	c.breakPatch = c.breakPatch[:len(c.breakPatch)-1]
	c.continuePatch = c.continuePatch[:len(c.continuePatch)-1]
}

func (c *fnCompiler) patchBreaks(target int) {
	for _, pc := range c.breakPatch[len(c.breakPatch)-1] {
		c.patch(pc, target)
	}
}

func (c *fnCompiler) patchContinues(target int) {
	for _, pc := range c.continuePatch[len(c.continuePatch)-1] {
		c.patch(pc, target)
	}
}

// castIfNeeded emits the implicit int->float widening on stores into
// float-typed locations, keeping the invariant that float cells always
// hold float values (so `/` means float division there).
func (c *fnCompiler) castIfNeeded(dst, src *Type) {
	if dst != nil && src != nil && dst.Kind == TFloat && src.Kind == TInt {
		c.emit(OpCastFloat, 0, 0)
	}
}

func (c *fnCompiler) assign(st *AssignStmt) error {
	lt := st.LHS.Type()
	switch st.Op {
	case Assign:
		// Simple-variable fast paths avoid address materialisation.
		if id, ok := st.LHS.(*Ident); ok {
			if err := c.expr(st.RHS); err != nil {
				return err
			}
			c.castIfNeeded(lt, st.RHS.Type())
			if id.IsGlobal {
				c.emit(OpStoreGlobal, id.GlobalIndex, 0)
			} else {
				c.emit(OpStoreLocal, id.Slot, 0)
			}
			return nil
		}
		if err := c.addr(st.LHS); err != nil {
			return err
		}
		if err := c.expr(st.RHS); err != nil {
			return err
		}
		c.castIfNeeded(lt, st.RHS.Type())
		c.emit(OpStoreInd, 0, 0)
		return nil

	case PlusAssign, MinusAssign:
		op := Plus
		if st.Op == MinusAssign {
			op = Minus
		}
		if err := c.addr(st.LHS); err != nil {
			return err
		}
		c.emit(OpDup, 0, 0)
		c.emit(OpLoadInd, 0, 0)
		if err := c.expr(st.RHS); err != nil {
			return err
		}
		c.emit(OpBin, int(op), 0)
		c.castIfNeeded(lt, st.RHS.Type())
		c.emit(OpStoreInd, 0, 0)
		return nil
	}
	return fmt.Errorf("minic: unknown assignment operator %s", st.Op)
}

// addr compiles the address of an addressable expression onto the stack.
func (c *fnCompiler) addr(e Expr) error {
	switch x := e.(type) {
	case *Ident:
		if x.IsGlobal {
			c.emit(OpAddrGlobal, x.GlobalIndex, 0)
		} else {
			c.emit(OpAddrLocal, x.Slot, 0)
		}
		return nil
	case *IndexExpr:
		if err := c.expr(x.X); err != nil {
			return err
		}
		if err := c.expr(x.Index); err != nil {
			return err
		}
		c.emit(OpIndexAddr, 0, 0)
		return nil
	case *FieldExpr:
		if err := c.expr(x.X); err != nil {
			return err
		}
		c.emit(OpFieldAddr, x.FieldIndex, 0)
		return nil
	case *UnaryExpr:
		if x.Op == Star {
			return c.expr(x.X)
		}
	}
	return fmt.Errorf("minic: expression %T is not addressable", e)
}

func (c *fnCompiler) expr(e Expr) error {
	switch x := e.(type) {
	case *IntLit:
		c.emit(OpConst, c.constIdx(IntVal(x.Value)), 0)
	case *FloatLit:
		c.emit(OpConst, c.constIdx(FloatVal(x.Value)), 0)
	case *BoolLit:
		c.emit(OpConst, c.constIdx(BoolVal(x.Value)), 0)
	case *StringLit:
		c.emit(OpConst, c.constIdx(StrVal(x.Value)), 0)
	case *NullLit:
		c.emit(OpConst, c.constIdx(NullVal()), 0)

	case *Ident:
		if x.IsFunc {
			return fmt.Errorf("minic: function %q used as a value at line %d", x.Name, x.Line)
		}
		if x.IsGlobal {
			c.emit(OpLoadGlobal, x.GlobalIndex, 0)
		} else {
			c.emit(OpLoadLocal, x.Slot, 0)
		}

	case *BinaryExpr:
		if x.Op == AndAnd || x.Op == OrOr {
			if err := c.expr(x.X); err != nil {
				return err
			}
			c.emit(OpDup, 0, 0)
			var jshort int
			if x.Op == AndAnd {
				jshort = c.emit(OpJmpFalse, 0, 0)
			} else {
				jshort = c.emit(OpJmpTrue, 0, 0)
			}
			c.emit(OpPop, 0, 0)
			if err := c.expr(x.Y); err != nil {
				return err
			}
			c.patch(jshort, c.here())
			return nil
		}
		if err := c.expr(x.X); err != nil {
			return err
		}
		if err := c.expr(x.Y); err != nil {
			return err
		}
		c.emit(OpBin, int(x.Op), 0)

	case *UnaryExpr:
		switch x.Op {
		case Amp:
			return c.addr(x.X)
		case Star:
			if err := c.expr(x.X); err != nil {
				return err
			}
			c.emit(OpLoadInd, 0, 0)
		default:
			if err := c.expr(x.X); err != nil {
				return err
			}
			c.emit(OpUn, int(x.Op), 0)
		}

	case *IndexExpr:
		if err := c.expr(x.X); err != nil {
			return err
		}
		if err := c.expr(x.Index); err != nil {
			return err
		}
		c.emit(OpIndexLoad, 0, 0)

	case *FieldExpr:
		if err := c.expr(x.X); err != nil {
			return err
		}
		c.emit(OpFieldLoad, x.FieldIndex, 0)

	case *CallExpr:
		if x.IsBuiltin {
			nat := c.prog.Natives.At(x.BuiltinIndex)
			for i, a := range x.Args {
				if err := c.expr(a); err != nil {
					return err
				}
				if i < len(nat.Sig.Params) {
					c.castIfNeeded(nat.Sig.Params[i], a.Type())
				}
			}
			c.emit(OpCallNative, x.BuiltinIndex, len(x.Args))
			return nil
		}
		fd := c.prog.Funcs[x.FuncIndex]
		for i, a := range x.Args {
			if err := c.expr(a); err != nil {
				return err
			}
			c.castIfNeeded(fd.Params[i].Type, a.Type())
		}
		c.emit(OpCall, x.FuncIndex, len(x.Args))

	case *NewExpr:
		if x.Count != nil {
			if err := c.expr(x.Count); err != nil {
				return err
			}
			c.emit(OpNewArr, c.typeIdx(x.ElemType), 0)
		} else {
			sd := c.prog.Structs[x.ElemType.Name]
			c.emit(OpNewStruct, c.structIdx(sd), 0)
		}

	case *CastExpr:
		if err := c.expr(x.X); err != nil {
			return err
		}
		switch x.Target.Kind {
		case TInt:
			c.emit(OpCastInt, 0, 0)
		case TFloat:
			c.emit(OpCastFloat, 0, 0)
		case TBool:
			c.emit(OpCastBool, 0, 0)
		case TString:
			// string(x) on a string is the identity.
		}

	default:
		return fmt.Errorf("minic: cannot compile expression %T", e)
	}
	return nil
}
