package minic

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// ThreadState is the lifecycle state of one logical VM thread.
type ThreadState int

const (
	ThreadReady ThreadState = iota
	ThreadWaiting
	ThreadDone
	ThreadFaulted
)

func (s ThreadState) String() string {
	switch s {
	case ThreadReady:
		return "ready"
	case ThreadWaiting:
		return "waiting"
	case ThreadDone:
		return "done"
	case ThreadFaulted:
		return "faulted"
	}
	return fmt.Sprintf("ThreadState(%d)", int(s))
}

// Frame is one function activation. Slots are individually heap-allocated
// cells so that pointers into frames (and parallel_for's by-reference
// captures) stay valid for the frame's lifetime.
type Frame struct {
	ID        int
	FuncIndex int
	Fn        *FuncDecl
	Code      *FuncCode
	PC        int
	Slots     []*Cell
	stack     []Value
}

// Line returns the source line of the instruction the frame is about to
// execute (for the top frame) or is executing a call from (inner frames).
func (f *Frame) Line() int { return f.Code.LineOf(f.PC) }

// SlotByName returns the cell for the named local, or nil. This is a
// convenience used by tests; the debugger goes through the debug info
// instead, as a real debugger would.
func (f *Frame) SlotByName(name string) *Cell {
	for i, n := range f.Fn.SlotNames {
		if n == name && i < len(f.Slots) {
			return f.Slots[i]
		}
	}
	return nil
}

// parRange drives one logical thread's share of a parallel_for: the thread
// repeatedly pushes helper frames until the index range is exhausted.
type parRange struct {
	next, end int64
	helper    int
	captured  []*Cell
}

// Thread is one logical thread of execution.
type Thread struct {
	ID       int
	Frames   []*Frame
	State    ThreadState
	Fault    error
	Result   Value // set when the root function returns a value
	parent   *Thread
	children int
	par      *parRange
	synth    bool // synthetic thread (debugger `call`), not scheduled normally
}

// Top returns the innermost frame, or nil for a finished thread.
//
//d2x:noalloc
func (t *Thread) Top() *Frame {
	if len(t.Frames) == 0 {
		return nil
	}
	return t.Frames[len(t.Frames)-1]
}

// VM executes a compiled Program. It is single-goroutine and cooperatively
// scheduled: logical threads interleave at instruction granularity in a
// deterministic round-robin, so data races in generated code are
// observable and reproducible — the property GraphIt's push schedule
// (atomicAdd vs plain +=) depends on.
type VM struct {
	Prog    *Program
	Globals []Cell
	Output  io.Writer

	// NumWorkers is the number of logical threads a parallel_for fans out
	// to (the analogue of OMP_NUM_THREADS). Default 4.
	NumWorkers int

	// Steps counts executed instructions; a deterministic clock for the
	// overhead experiments.
	Steps int64

	// SynthBudget caps the instructions of one synchronous CallFunction
	// (debugger `call`), so a buggy rtv_handler cannot hang the debugger.
	SynthBudget int64

	threads      []*Thread
	nextThreadID int
	nextFrameID  int
	frameByID    map[int]*Frame
	schedIdx     int
	started      bool

	// onStep, when set, observes every scheduled instruction just before
	// it executes (the execution journal records through it). It fires
	// only for scheduled steps — synthetic calls (debugger `call`,
	// rtv_handlers) run on their own pool and are invisible to it. The
	// hook runs before schedIdx advances, so a snapshot taken inside it
	// captures a state from which the same thread is deterministically
	// re-selected on replay.
	onStep func(*Thread)
}

// NewVM prepares a VM for the program with zero-initialised globals.
func NewVM(prog *Program, output io.Writer) *VM {
	if output == nil {
		output = io.Discard
	}
	vm := &VM{
		Prog:        prog,
		Output:      output,
		NumWorkers:  4,
		SynthBudget: 200_000_000,
		frameByID:   map[int]*Frame{},
	}
	vm.Globals = make([]Cell, len(prog.Globals))
	for i, g := range prog.Globals {
		if g.Init != nil {
			vm.Globals[i].V = constValue(g.Init)
		} else {
			vm.Globals[i].V = ZeroValue(g.Type)
		}
	}
	return vm
}

func constValue(e Expr) Value {
	switch x := e.(type) {
	case *IntLit:
		return IntVal(x.Value)
	case *FloatLit:
		return FloatVal(x.Value)
	case *BoolLit:
		return BoolVal(x.Value)
	case *StringLit:
		return StrVal(x.Value)
	case *NullLit:
		return NullVal()
	case *UnaryExpr:
		v := constValue(x.X)
		switch v.Kind {
		case VInt:
			return IntVal(-v.I)
		case VFloat:
			return FloatVal(-v.F)
		}
	}
	return NullVal()
}

// GlobalCell returns the storage cell of the named global, or nil. Natives
// (the D2X runtime among them) use this to read "inferior memory".
func (vm *VM) GlobalCell(name string) *Cell {
	if i, ok := vm.Prog.GlobalByName[name]; ok {
		return &vm.Globals[i]
	}
	return nil
}

// Threads returns the live thread list (program order).
func (vm *VM) Threads() []*Thread { return vm.threads }

// ThreadByID returns the thread with the given ID, or nil.
func (vm *VM) ThreadByID(id int) *Thread {
	for _, t := range vm.threads {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// FrameByID resolves a frame ID (the VM's analogue of a stack pointer
// value) to the live frame, or nil after the frame has returned.
func (vm *VM) FrameByID(id int) *Frame { return vm.frameByID[id] }

func (vm *VM) newFrame(funcIndex int, args []Value) (*Frame, error) {
	fd := vm.Prog.Funcs[funcIndex]
	fc := vm.Prog.Code[funcIndex]
	if len(args) != len(fd.Params) {
		return nil, fmt.Errorf("call to %s with %d args, want %d", fd.Name, len(args), len(fd.Params))
	}
	f := &Frame{
		ID:        vm.nextFrameID,
		FuncIndex: funcIndex,
		Fn:        fd,
		Code:      fc,
		Slots:     make([]*Cell, fc.NumSlots),
	}
	vm.nextFrameID++
	backing := make([]Cell, fc.NumSlots)
	for i := range f.Slots {
		f.Slots[i] = &backing[i]
		if i < len(fd.SlotTypes) {
			f.Slots[i].V = ZeroValue(fd.SlotTypes[i])
		}
	}
	for i, a := range args {
		f.Slots[i].V = a
	}
	vm.frameByID[f.ID] = f
	return f, nil
}

func (vm *VM) newThread(parent *Thread, synth bool) *Thread {
	t := &Thread{ID: vm.nextThreadID, parent: parent, synth: synth}
	vm.nextThreadID++
	return t
}

// Start sets up the main thread. Functions whose name begins with "__init"
// run to completion first (module constructors — the D2X table emitter
// registers its table-building code this way); they execute synchronously
// and are not visible to the debugger, like ELF constructors run before
// the first stop at main.
func (vm *VM) Start() error {
	if vm.started {
		return fmt.Errorf("minic: VM already started")
	}
	mainIdx := vm.Prog.FuncIndex("main")
	if mainIdx < 0 {
		return fmt.Errorf("minic: program has no main function")
	}
	for _, name := range vm.Prog.InitFuncs() {
		if _, err := vm.CallFunction(name, nil); err != nil {
			return fmt.Errorf("minic: running %s: %w", name, err)
		}
	}
	frame, err := vm.newFrame(mainIdx, nil)
	if err != nil {
		return err
	}
	t := vm.newThread(nil, false)
	t.Frames = []*Frame{frame}
	vm.threads = append(vm.threads, t)
	vm.started = true
	return nil
}

// Started reports whether Start has run (the main thread exists).
func (vm *VM) Started() bool { return vm.started }

// SetStepHook installs (or, with nil, removes) the per-instruction
// observer. At most one hook is supported; installing a new one replaces
// the old. The hook must not run or mutate the VM — taking a snapshot is
// the intended use.
func (vm *VM) SetStepHook(fn func(*Thread)) { vm.onStep = fn }

// Done reports whether every thread has finished.
func (vm *VM) Done() bool {
	for _, t := range vm.threads {
		if t.State == ThreadReady || t.State == ThreadWaiting {
			return false
		}
	}
	return true
}

// Faulted returns the first faulted thread, or nil.
func (vm *VM) Faulted() *Thread {
	for _, t := range vm.threads {
		if t.State == ThreadFaulted {
			return t
		}
	}
	return nil
}

// NextThread returns the thread the scheduler would run next, or nil when
// everything is blocked or finished. It does not advance any state: the
// debugger uses it to inspect the instruction about to execute.
func (vm *VM) NextThread() *Thread {
	n := len(vm.threads)
	for off := 0; off < n; off++ {
		t := vm.threads[(vm.schedIdx+off)%n]
		if t.State == ThreadReady {
			return t
		}
	}
	return nil
}

// StepInstr executes exactly one instruction on the next runnable thread.
// It returns the thread that ran (nil when nothing is runnable). Faults
// mark the thread Faulted rather than returning an error, so a debugger
// can inspect the fault site; RunToCompletion converts them to errors.
func (vm *VM) StepInstr() *Thread {
	n := len(vm.threads)
	for off := 0; off < n; off++ {
		idx := (vm.schedIdx + off) % n
		t := vm.threads[idx]
		if t.State != ThreadReady {
			continue
		}
		if vm.onStep != nil {
			vm.onStep(t)
		}
		vm.schedIdx = (idx + 1) % len(vm.threads)
		spawned, err := vm.execInstr(t)
		vm.Steps++
		if err != nil {
			t.State = ThreadFaulted
			t.Fault = err
		}
		vm.threads = append(vm.threads, spawned...)
		return t
	}
	return nil
}

// RunToCompletion drives the scheduler until the program finishes or
// faults. maxSteps of 0 means no limit; a positive budget is exact — the
// error fires as soon as maxSteps instructions have executed with work
// still pending, and a program that finishes in exactly maxSteps
// succeeds. (The fuel guard in CallFunctionGuarded depends on budgets
// being exact, and it used to be possible to slip one extra instruction
// past the cap here.)
//
// The loop tracks a live-thread count instead of rescanning every thread
// per instruction: Faulted() and Done() are O(threads), and journal
// replay drives this loop for millions of steps over programs whose
// parallel_for fan-out leaves hundreds of finished threads behind.
func (vm *VM) RunToCompletion(maxSteps int64) error {
	live := 0
	for _, t := range vm.threads {
		switch t.State {
		case ThreadFaulted:
			return fmt.Errorf("thread %d faulted: %w", t.ID, t.Fault)
		case ThreadReady, ThreadWaiting:
			live++
		}
	}
	var steps int64
	for live > 0 {
		if maxSteps > 0 && steps >= maxSteps {
			return fmt.Errorf("minic: step budget of %d exceeded", maxSteps)
		}
		known := len(vm.threads)
		t := vm.StepInstr()
		if t == nil {
			return fmt.Errorf("minic: deadlock: no runnable threads")
		}
		steps++
		live += len(vm.threads) - known // spawned threads are born Ready
		switch t.State {
		case ThreadFaulted:
			return fmt.Errorf("thread %d faulted: %w", t.ID, t.Fault)
		case ThreadDone:
			live--
		}
	}
	return nil
}

// Run compiles the whole lifecycle: Start plus RunToCompletion.
func (vm *VM) Run() error {
	if !vm.started {
		if err := vm.Start(); err != nil {
			return err
		}
	}
	return vm.RunToCompletion(0)
}

// CallFunction synchronously executes a function to completion on a
// synthetic thread while the rest of the VM stays frozen. This implements
// the debugger's `call` command — the single debugger feature the paper's
// whole design rests on — and is also used by D2X-R to evaluate
// rtv_handlers. Reentrant: a native called this way may call back in.
func (vm *VM) CallFunction(name string, args []Value) (Value, error) {
	return vm.CallFunctionGuarded(name, args, nil)
}

// Guard constrains a synthetic (debugger-initiated) call. It is the
// runtime twin of the effects analysis: when a handler could not be
// proven safe statically, the caller supplies a Guard and the VM fences
// the call instead of trusting it.
type Guard struct {
	// Fuel caps the instruction count of the call (and everything it
	// spawns). 0 means no extra cap beyond the VM-wide SynthBudget; a
	// positive value tightens it.
	Fuel int64
	// BlockWrites rejects every store to debuggee-visible memory before
	// it executes: global stores, stores through pointers (live frames,
	// heap objects), and calls to natives registered WritesMemory.
	// Stores to the synthetic call's own local slots remain allowed.
	BlockWrites bool
	// Stats, when non-nil, receives the call's guard telemetry: fuel
	// actually burned and which fence (if any) stopped it. The VM only
	// writes into it — observability layers above decide what to do
	// with the numbers, keeping this package free of any obs dependency.
	Stats *GuardStats
}

// GuardStats is the per-call telemetry a Guard collects when its Stats
// field is set. One struct per call: guards are built per invocation, so
// no synchronisation is needed.
type GuardStats struct {
	// FuelUsed is the number of instructions the call executed before
	// returning or being stopped.
	FuelUsed int64
	// WriteDenied reports that the write barrier stopped the call.
	WriteDenied bool
	// FuelExhausted reports that the fuel cap stopped the call.
	FuelExhausted bool
}

// Sentinel errors for guard violations; callers match with errors.Is to
// degrade the result instead of failing the session.
var (
	ErrFuelExhausted = errors.New("fuel exhausted")
	ErrWriteBarrier  = errors.New("write to debuggee blocked")
)

// CallFunctionGuarded is CallFunction under an optional Guard (nil
// behaves exactly like CallFunction).
func (vm *VM) CallFunctionGuarded(name string, args []Value, g *Guard) (Value, error) {
	fi := vm.Prog.FuncIndex(name)
	if fi < 0 {
		return NullVal(), fmt.Errorf("minic: no function %q in program", name)
	}
	return vm.callSynthetic(fi, args, g)
}

// CallFunctionByIndex is CallFunction addressed by function index.
func (vm *VM) CallFunctionByIndex(fi int, args []Value) (Value, error) {
	return vm.callSynthetic(fi, args, nil)
}

// callSynthetic runs a function to completion on a synthetic thread
// pool, enforcing the guard (if any) instruction by instruction.
func (vm *VM) callSynthetic(fi int, args []Value, g *Guard) (Value, error) {
	frame, err := vm.newFrame(fi, args)
	if err != nil {
		return NullVal(), err
	}
	root := vm.newThread(nil, true)
	root.Frames = []*Frame{frame}
	pool := []*Thread{root}
	var budget int64
	// fail unregisters the pool's live frames before reporting: an
	// aborted call must not leave dangling frame IDs that the debugger
	// (or a d2x_find_stack_var in a later call) could still resolve.
	fail := func(err error) (Value, error) {
		if g != nil && g.Stats != nil {
			g.Stats.FuelUsed = budget
		}
		for _, t := range pool {
			for _, f := range t.Frames {
				delete(vm.frameByID, f.ID)
			}
		}
		return NullVal(), err
	}
	limit := vm.SynthBudget
	fuelLimited := false
	if g != nil && g.Fuel > 0 && g.Fuel < limit {
		limit = g.Fuel
		fuelLimited = true
	}
	for {
		progress := false
		for i := 0; i < len(pool); i++ {
			t := pool[i]
			if t.State != ThreadReady {
				continue
			}
			if g != nil && g.BlockWrites {
				if err := vm.guardWriteCheck(t); err != nil {
					if g.Stats != nil {
						g.Stats.WriteDenied = true
					}
					return fail(err)
				}
			}
			spawned, err := vm.execInstr(t)
			vm.Steps++
			budget++
			if err != nil {
				return fail(fmt.Errorf("in %s: %w", vm.Prog.Funcs[fi].Name, err))
			}
			pool = append(pool, spawned...)
			progress = true
			if budget > limit {
				if fuelLimited {
					if g.Stats != nil {
						g.Stats.FuelExhausted = true
					}
					return fail(fmt.Errorf("minic: call to %s: %w after %d instructions",
						vm.Prog.Funcs[fi].Name, ErrFuelExhausted, limit))
				}
				return fail(fmt.Errorf("minic: call to %s exceeded instruction budget", vm.Prog.Funcs[fi].Name))
			}
		}
		if root.State == ThreadDone {
			if g != nil && g.Stats != nil {
				g.Stats.FuelUsed = budget
			}
			return root.Result, nil
		}
		if root.State == ThreadFaulted {
			return fail(root.Fault)
		}
		if !progress {
			return fail(fmt.Errorf("minic: call to %s deadlocked", vm.Prog.Funcs[fi].Name))
		}
	}
}

// guardWriteCheck inspects the instruction t is about to execute and
// rejects debuggee-visible stores before they happen. Checking ahead of
// execution (rather than undoing after) keeps the barrier exact: the
// write never lands, so shared session state cannot be corrupted even
// transiently.
func (vm *VM) guardWriteCheck(t *Thread) error {
	f := t.Top()
	if f == nil || f.PC < 0 || f.PC >= len(f.Code.Instrs) {
		return nil
	}
	in := f.Code.Instrs[f.PC]
	deny := func(what string) error {
		return fmt.Errorf("%s:%d: in %s: %w: %s",
			vm.Prog.SourceName, f.Line(), f.Fn.Name, ErrWriteBarrier, what)
	}
	switch in.Op {
	case OpStoreGlobal:
		return deny(fmt.Sprintf("store to global %s", vm.Prog.Globals[in.A].Name))
	case OpStoreInd:
		// Compound assignment and ++/-- on plain locals also lower to
		// OpStoreInd, so an unconditional deny would reject every loop
		// counter. Stores whose target cell is a frame slot of this
		// thread are private to the guarded call and allowed; anything
		// else — global cells, array backing stores, debuggee frames
		// reached through pointers — is denied. (Locally-allocated
		// arrays are denied too: allocation provenance is a static
		// property, proven by internal/minic/effects, which then runs
		// the handler with no guard at all.)
		if len(f.stack) >= 2 {
			if p := f.stack[len(f.stack)-2]; p.Kind == VPtr && p.Ptr != nil && frameLocalCell(t, p.Ptr) {
				return nil
			}
		}
		return deny("store through pointer")
	case OpCallNative:
		if nat := vm.Prog.Natives.At(in.A); nat.WritesMemory {
			return deny(fmt.Sprintf("call to writing native %s", nat.Name))
		}
	}
	return nil
}

// frameLocalCell reports whether cell is a local slot of one of t's own
// frames — memory private to the guarded call, invisible to the
// debuggee once the call returns.
func frameLocalCell(t *Thread, cell *Cell) bool {
	for _, fr := range t.Frames {
		for _, s := range fr.Slots {
			if s == cell {
				return true
			}
		}
	}
	return false
}

// faultf builds a positioned runtime fault.
func (vm *VM) faultf(f *Frame, format string, args ...any) error {
	return fmt.Errorf("%s:%d: in %s: %s",
		vm.Prog.SourceName, f.Line(), f.Fn.Name, fmt.Sprintf(format, args...))
}

func (f *Frame) push(v Value) { f.stack = append(f.stack, v) }

func (f *Frame) pop() (Value, bool) {
	if len(f.stack) == 0 {
		return Value{}, false
	}
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v, true
}

// execInstr executes one instruction on thread t, returning any threads
// spawned by a parallel_for.
func (vm *VM) execInstr(t *Thread) ([]*Thread, error) {
	f := t.Top()
	if f == nil {
		t.State = ThreadDone
		return nil, nil
	}
	if f.PC < 0 || f.PC >= len(f.Code.Instrs) {
		return nil, vm.faultf(f, "program counter out of range (%d)", f.PC)
	}
	in := f.Code.Instrs[f.PC]
	f.PC++

	pop := func() (Value, error) {
		v, ok := f.pop()
		if !ok {
			return Value{}, vm.faultf(f, "operand stack underflow at %s", in.Op)
		}
		return v, nil
	}

	switch in.Op {
	case OpNop, OpHalt:
		// OpHalt is a defensive stop for synthetic drivers; treated as nop.

	case OpConst:
		f.push(f.Code.Consts[in.A])

	case OpLoadLocal:
		f.push(f.Slots[in.A].V)

	case OpStoreLocal:
		v, err := pop()
		if err != nil {
			return nil, err
		}
		f.Slots[in.A].V = v

	case OpAddrLocal:
		f.push(PtrVal(f.Slots[in.A]))

	case OpLoadGlobal:
		f.push(vm.Globals[in.A].V)

	case OpStoreGlobal:
		v, err := pop()
		if err != nil {
			return nil, err
		}
		vm.Globals[in.A].V = v

	case OpAddrGlobal:
		f.push(PtrVal(&vm.Globals[in.A]))

	case OpLoadInd:
		p, err := pop()
		if err != nil {
			return nil, err
		}
		if p.Kind != VPtr || p.Ptr == nil {
			return nil, vm.faultf(f, "null pointer dereference")
		}
		f.push(p.Ptr.V)

	case OpStoreInd:
		v, err := pop()
		if err != nil {
			return nil, err
		}
		p, err := pop()
		if err != nil {
			return nil, err
		}
		if p.Kind != VPtr || p.Ptr == nil {
			return nil, vm.faultf(f, "null pointer store")
		}
		p.Ptr.V = v

	case OpIndexLoad, OpIndexAddr:
		idx, err := pop()
		if err != nil {
			return nil, err
		}
		arr, err := pop()
		if err != nil {
			return nil, err
		}
		if arr.Kind != VArr || arr.Arr == nil {
			return nil, vm.faultf(f, "indexing a null array")
		}
		if idx.I < 0 || idx.I >= int64(len(arr.Arr.Cells)) {
			return nil, vm.faultf(f, "array index %d out of range [0, %d)", idx.I, len(arr.Arr.Cells))
		}
		if in.Op == OpIndexLoad {
			f.push(arr.Arr.Cells[idx.I].V)
		} else {
			f.push(PtrVal(&arr.Arr.Cells[idx.I]))
		}

	case OpFieldLoad, OpFieldAddr:
		sv, err := pop()
		if err != nil {
			return nil, err
		}
		var obj *StructObj
		switch sv.Kind {
		case VStruct:
			obj = sv.Struct
		case VPtr:
			if sv.Ptr != nil && sv.Ptr.V.Kind == VStruct {
				obj = sv.Ptr.V.Struct
			}
		}
		if obj == nil {
			return nil, vm.faultf(f, "field access on null struct")
		}
		if in.Op == OpFieldLoad {
			f.push(obj.Fields[in.A].V)
		} else {
			f.push(PtrVal(&obj.Fields[in.A]))
		}

	case OpBin:
		y, err := pop()
		if err != nil {
			return nil, err
		}
		x, err := pop()
		if err != nil {
			return nil, err
		}
		v, err := evalBin(Kind(in.A), x, y)
		if err != nil {
			return nil, vm.faultf(f, "%s", err)
		}
		f.push(v)

	case OpUn:
		x, err := pop()
		if err != nil {
			return nil, err
		}
		switch Kind(in.A) {
		case Minus:
			if x.Kind == VFloat {
				f.push(FloatVal(-x.F))
			} else {
				f.push(IntVal(-x.I))
			}
		case Not:
			f.push(BoolVal(!x.Bool()))
		default:
			return nil, vm.faultf(f, "bad unary operator %s", Kind(in.A))
		}

	case OpJmp:
		f.PC = in.A

	case OpJmpFalse:
		v, err := pop()
		if err != nil {
			return nil, err
		}
		if !v.Bool() {
			f.PC = in.A
		}

	case OpJmpTrue:
		v, err := pop()
		if err != nil {
			return nil, err
		}
		if v.Bool() {
			f.PC = in.A
		}

	case OpCall:
		args := make([]Value, in.B)
		for i := in.B - 1; i >= 0; i-- {
			v, err := pop()
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		callee, err := vm.newFrame(in.A, args)
		if err != nil {
			return nil, vm.faultf(f, "%s", err)
		}
		if len(t.Frames) >= 10000 {
			return nil, vm.faultf(f, "call stack overflow (10000 frames)")
		}
		t.Frames = append(t.Frames, callee)

	case OpCallNative:
		nat := vm.Prog.Natives.At(in.A)
		args := make([]Value, in.B)
		for i := in.B - 1; i >= 0; i-- {
			v, err := pop()
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		res, err := nat.Handler(&NativeCall{VM: vm, Thread: t, Args: args})
		if err != nil {
			return nil, vm.faultf(f, "%s: %s", nat.Name, err)
		}
		if nat.Sig.Result != nil && nat.Sig.Result.Kind != TVoid {
			f.push(res)
		} else if nat.AnyResult {
			f.push(res)
		}

	case OpRet:
		vm.returnFrame(t, NullVal(), false)

	case OpRetVal:
		v, err := pop()
		if err != nil {
			return nil, err
		}
		vm.returnFrame(t, v, true)

	case OpPop:
		if _, err := pop(); err != nil {
			return nil, err
		}

	case OpDup:
		v, err := pop()
		if err != nil {
			return nil, err
		}
		f.push(v)
		f.push(v)

	case OpNewArr:
		n, err := pop()
		if err != nil {
			return nil, err
		}
		if n.I < 0 {
			return nil, vm.faultf(f, "negative array size %d", n.I)
		}
		if n.I > 1<<28 {
			return nil, vm.faultf(f, "array size %d too large", n.I)
		}
		f.push(ArrVal(NewArray(f.Code.Types[in.A], int(n.I))))

	case OpNewStruct:
		f.push(StructVal(NewStruct(f.Code.StructRefs[in.A])))

	case OpCastInt:
		v, err := pop()
		if err != nil {
			return nil, err
		}
		switch v.Kind {
		case VFloat:
			f.push(IntVal(int64(v.F)))
		case VBool, VInt:
			f.push(IntVal(v.I))
		default:
			return nil, vm.faultf(f, "cannot convert %s to int", v.Kind)
		}

	case OpCastFloat:
		v, err := pop()
		if err != nil {
			return nil, err
		}
		switch v.Kind {
		case VInt:
			f.push(FloatVal(float64(v.I)))
		case VFloat:
			f.push(v)
		default:
			return nil, vm.faultf(f, "cannot convert %s to float", v.Kind)
		}

	case OpCastBool:
		v, err := pop()
		if err != nil {
			return nil, err
		}
		f.push(BoolVal(v.I != 0))

	case OpParFor:
		hi, err := pop()
		if err != nil {
			return nil, err
		}
		lo, err := pop()
		if err != nil {
			return nil, err
		}
		info := f.Code.ParFors[in.A]
		return vm.spawnParFor(t, f, info, lo.I, hi.I)

	default:
		return nil, vm.faultf(f, "unknown opcode %s", in.Op)
	}
	return nil, nil
}

// returnFrame pops the top frame; pushes the result into the caller or
// finishes the thread (continuing its parallel_for range, if any).
func (vm *VM) returnFrame(t *Thread, v Value, hasValue bool) {
	top := t.Top()
	delete(vm.frameByID, top.ID)
	t.Frames = t.Frames[:len(t.Frames)-1]
	if len(t.Frames) > 0 {
		if hasValue {
			t.Top().push(v)
		}
		return
	}
	// Root frame returned.
	if t.par != nil && t.par.next < t.par.end {
		frame := vm.parForFrame(t.par)
		t.Frames = []*Frame{frame}
		t.par.next++
		return
	}
	if hasValue {
		t.Result = v
	}
	t.State = ThreadDone
	if t.parent != nil {
		t.parent.children--
		if t.parent.children == 0 && t.parent.State == ThreadWaiting {
			t.parent.State = ThreadReady
		}
	}
}

// parForFrame builds a helper frame for the next index of a parallel range:
// slot 0 holds the index; the following slots alias the captured cells of
// the spawning frame.
func (vm *VM) parForFrame(pr *parRange) *Frame {
	fd := vm.Prog.Funcs[pr.helper]
	fc := vm.Prog.Code[pr.helper]
	f := &Frame{
		ID:        vm.nextFrameID,
		FuncIndex: pr.helper,
		Fn:        fd,
		Code:      fc,
		Slots:     make([]*Cell, fc.NumSlots),
	}
	vm.nextFrameID++
	f.Slots[0] = &Cell{V: IntVal(pr.next)}
	for i, cell := range pr.captured {
		f.Slots[1+i] = cell
	}
	for i := 1 + len(pr.captured); i < fc.NumSlots; i++ {
		f.Slots[i] = &Cell{}
		if i < len(fd.SlotTypes) {
			f.Slots[i].V = ZeroValue(fd.SlotTypes[i])
		}
	}
	vm.frameByID[f.ID] = f
	return f
}

// spawnParFor fans the index range [lo, hi) out over up to NumWorkers
// logical threads and blocks t until they all complete.
func (vm *VM) spawnParFor(t *Thread, f *Frame, info ParForInfo, lo, hi int64) ([]*Thread, error) {
	if lo >= hi {
		return nil, nil
	}
	captured := make([]*Cell, len(info.Captured))
	for i, slot := range info.Captured {
		captured[i] = f.Slots[slot]
	}
	workers := int64(vm.NumWorkers)
	if workers < 1 {
		workers = 1
	}
	span := hi - lo
	if workers > span {
		workers = span
	}
	chunk := (span + workers - 1) / workers
	var spawned []*Thread
	for w := int64(0); w < workers; w++ {
		start := lo + w*chunk
		end := start + chunk
		if end > hi {
			end = hi
		}
		if start >= end {
			continue
		}
		child := vm.newThread(t, t.synth)
		child.par = &parRange{next: start, end: end, helper: info.Helper, captured: captured}
		child.Frames = []*Frame{vm.parForFrame(child.par)}
		child.par.next++
		spawned = append(spawned, child)
	}
	t.children = len(spawned)
	t.State = ThreadWaiting
	return spawned, nil
}

func evalBin(op Kind, x, y Value) (Value, error) {
	switch op {
	case Plus:
		if x.Kind == VStr && y.Kind == VStr {
			return StrVal(x.S + y.S), nil
		}
		if x.Kind == VFloat || y.Kind == VFloat {
			return FloatVal(x.AsFloat() + y.AsFloat()), nil
		}
		return IntVal(x.I + y.I), nil
	case Minus:
		if x.Kind == VFloat || y.Kind == VFloat {
			return FloatVal(x.AsFloat() - y.AsFloat()), nil
		}
		return IntVal(x.I - y.I), nil
	case Star:
		if x.Kind == VFloat || y.Kind == VFloat {
			return FloatVal(x.AsFloat() * y.AsFloat()), nil
		}
		return IntVal(x.I * y.I), nil
	case Slash:
		if x.Kind == VFloat || y.Kind == VFloat {
			d := y.AsFloat()
			if d == 0 {
				return Value{}, fmt.Errorf("floating point division by zero")
			}
			return FloatVal(x.AsFloat() / d), nil
		}
		if y.I == 0 {
			return Value{}, fmt.Errorf("integer division by zero")
		}
		return IntVal(x.I / y.I), nil
	case Percent:
		if y.I == 0 {
			return Value{}, fmt.Errorf("integer modulo by zero")
		}
		return IntVal(x.I % y.I), nil
	case Shl:
		if y.I < 0 || y.I > 63 {
			return Value{}, fmt.Errorf("shift amount %d out of range", y.I)
		}
		return IntVal(x.I << uint(y.I)), nil
	case Shr:
		if y.I < 0 || y.I > 63 {
			return Value{}, fmt.Errorf("shift amount %d out of range", y.I)
		}
		return IntVal(x.I >> uint(y.I)), nil
	case Eq:
		return BoolVal(ValuesEqual(x, y)), nil
	case Neq:
		return BoolVal(!ValuesEqual(x, y)), nil
	case Lt, Le, Gt, Ge:
		var cmp int
		switch {
		case x.Kind == VStr && y.Kind == VStr:
			cmp = strings.Compare(x.S, y.S)
		case x.Kind == VFloat || y.Kind == VFloat:
			a, b := x.AsFloat(), y.AsFloat()
			switch {
			case a < b:
				cmp = -1
			case a > b:
				cmp = 1
			}
		default:
			switch {
			case x.I < y.I:
				cmp = -1
			case x.I > y.I:
				cmp = 1
			}
		}
		switch op {
		case Lt:
			return BoolVal(cmp < 0), nil
		case Le:
			return BoolVal(cmp <= 0), nil
		case Gt:
			return BoolVal(cmp > 0), nil
		default:
			return BoolVal(cmp >= 0), nil
		}
	case AndAnd:
		return BoolVal(x.Bool() && y.Bool()), nil
	case OrOr:
		return BoolVal(x.Bool() || y.Bool()), nil
	}
	return Value{}, fmt.Errorf("bad binary operator %s", op)
}

// EvalBinary exposes the VM's binary-operator semantics for tools (the
// debugger's expression evaluator) that must match program behaviour
// exactly.
func EvalBinary(op Kind, x, y Value) (Value, error) {
	return evalBin(op, x, y)
}
