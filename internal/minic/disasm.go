package minic

import (
	"fmt"
	"strings"
)

// Disassemble renders a function's bytecode with line annotations — the
// debugger's `disas` command output. The format intentionally resembles
// objdump interleaved with source lines:
//
//	power_15:  (2 params, 3 slots)
//	  ; line 2: int res_1 = 1;
//	     0  const     0 0
//	     1  storel    1 0
type Disassembler struct {
	prog *Program
}

// NewDisassembler returns a disassembler over a compiled program.
func NewDisassembler(prog *Program) *Disassembler { return &Disassembler{prog: prog} }

// Func renders the named function, or an error note when absent.
func (d *Disassembler) Func(name string) string {
	fi := d.prog.FuncIndex(name)
	if fi < 0 {
		return fmt.Sprintf("no function %q\n", name)
	}
	return d.FuncByIndex(fi)
}

// FuncByIndex renders function fi.
func (d *Disassembler) FuncByIndex(fi int) string {
	fd := d.prog.Funcs[fi]
	fc := d.prog.Code[fi]
	var b strings.Builder
	fmt.Fprintf(&b, "%s:  (%d params, %d slots)\n", fd.Name, len(fd.Params), fc.NumSlots)
	lastLine := -1
	for pc, in := range fc.Instrs {
		if in.Line != lastLine {
			src := strings.TrimSpace(d.prog.SourceLine(in.Line))
			fmt.Fprintf(&b, "  ; line %d: %s\n", in.Line, src)
			lastLine = in.Line
		}
		marker := " "
		if in.StmtStart {
			marker = "*"
		}
		fmt.Fprintf(&b, "  %s%4d  %-10s %s\n", marker, pc, in.Op, d.operands(fc, in))
	}
	return b.String()
}

// operands renders instruction operands symbolically where possible.
func (d *Disassembler) operands(fc *FuncCode, in Instr) string {
	switch in.Op {
	case OpConst:
		if in.A < len(fc.Consts) {
			return FormatValue(fc.Consts[in.A])
		}
	case OpLoadLocal, OpStoreLocal, OpAddrLocal:
		return fmt.Sprintf("slot %d", in.A)
	case OpLoadGlobal, OpStoreGlobal, OpAddrGlobal:
		if in.A < len(d.prog.Globals) {
			return d.prog.Globals[in.A].Name
		}
	case OpBin, OpUn:
		return Kind(in.A).String()
	case OpJmp, OpJmpFalse, OpJmpTrue:
		return fmt.Sprintf("-> %d", in.A)
	case OpCall:
		if in.A < len(d.prog.Funcs) {
			return fmt.Sprintf("%s (%d args)", d.prog.Funcs[in.A].Name, in.B)
		}
	case OpCallNative:
		if in.A < d.prog.Natives.Len() {
			return fmt.Sprintf("%s (%d args)", d.prog.Natives.At(in.A).Name, in.B)
		}
	case OpFieldLoad, OpFieldAddr:
		return fmt.Sprintf("field %d", in.A)
	case OpNewArr:
		if in.A < len(fc.Types) {
			return fc.Types[in.A].String()
		}
	case OpNewStruct:
		if in.A < len(fc.StructRefs) {
			return fc.StructRefs[in.A].Name
		}
	case OpParFor:
		if in.A < len(fc.ParFors) {
			pf := fc.ParFors[in.A]
			return fmt.Sprintf("%s captures %v", d.prog.Funcs[pf.Helper].Name, pf.Captured)
		}
	}
	if in.A == 0 && in.B == 0 {
		return ""
	}
	return fmt.Sprintf("%d %d", in.A, in.B)
}
