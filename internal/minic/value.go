package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// ValueKind discriminates runtime values.
type ValueKind int

const (
	VNull ValueKind = iota
	VInt
	VFloat
	VBool
	VStr
	VPtr    // pointer to a Cell
	VArr    // reference to an ArrayObj
	VStruct // reference to a StructObj (what struct pointers hold)
)

func (k ValueKind) String() string {
	switch k {
	case VNull:
		return "null"
	case VInt:
		return "int"
	case VFloat:
		return "float"
	case VBool:
		return "bool"
	case VStr:
		return "string"
	case VPtr:
		return "pointer"
	case VArr:
		return "array"
	case VStruct:
		return "struct"
	}
	return fmt.Sprintf("ValueKind(%d)", int(k))
}

// Value is one mini-C runtime value. The VM is dynamically typed
// underneath; the checker guarantees kind agreement for checked programs.
type Value struct {
	Kind   ValueKind
	I      int64
	F      float64
	S      string
	Ptr    *Cell
	Arr    *ArrayObj
	Struct *StructObj
}

// Convenience constructors.
func IntVal(v int64) Value         { return Value{Kind: VInt, I: v} }
func FloatVal(v float64) Value     { return Value{Kind: VFloat, F: v} }
func BoolVal(v bool) Value         { return Value{Kind: VBool, I: b2i(v)} }
func StrVal(v string) Value        { return Value{Kind: VStr, S: v} }
func NullVal() Value               { return Value{Kind: VNull} }
func PtrVal(c *Cell) Value         { return Value{Kind: VPtr, Ptr: c} }
func ArrVal(a *ArrayObj) Value     { return Value{Kind: VArr, Arr: a} }
func StructVal(s *StructObj) Value { return Value{Kind: VStruct, Struct: s} }

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// Bool returns the boolean interpretation of a VBool value.
func (v Value) Bool() bool { return v.I != 0 }

// IsNull reports whether the value is the null reference.
func (v Value) IsNull() bool { return v.Kind == VNull }

// AsFloat widens ints to float; used by mixed-mode arithmetic.
func (v Value) AsFloat() float64 {
	if v.Kind == VInt {
		return float64(v.I)
	}
	return v.F
}

// Cell is one storage location: a local slot, a global, an array element,
// or a struct field. Pointers reference cells, so the debugger and D2X's
// find_stack_var hand out *Cell-backed pointers into live frames.
type Cell struct {
	V Value
}

// ArrayObj is a heap-allocated dynamic array.
type ArrayObj struct {
	Elem  *Type
	Cells []Cell
}

// NewArray allocates a zero-initialised array of n elements of type elem.
func NewArray(elem *Type, n int) *ArrayObj {
	a := &ArrayObj{Elem: elem, Cells: make([]Cell, n)}
	zero := ZeroValue(elem)
	for i := range a.Cells {
		a.Cells[i].V = zero
	}
	return a
}

// Len returns the number of elements.
func (a *ArrayObj) Len() int { return len(a.Cells) }

// StructObj is a heap-allocated struct instance.
type StructObj struct {
	Def    *StructDef
	Fields []Cell
}

// NewStruct allocates a zero-initialised instance of def.
func NewStruct(def *StructDef) *StructObj {
	s := &StructObj{Def: def, Fields: make([]Cell, len(def.Fields))}
	for i, f := range def.Fields {
		s.Fields[i].V = ZeroValue(f.Type)
	}
	return s
}

// ZeroValue returns the zero value of a static type.
func ZeroValue(t *Type) Value {
	if t == nil {
		return NullVal()
	}
	switch t.Kind {
	case TInt:
		return IntVal(0)
	case TFloat:
		return FloatVal(0)
	case TBool:
		return BoolVal(false)
	case TString:
		return StrVal("")
	default:
		return NullVal()
	}
}

// FormatValue renders a value the way the debugger's print command would:
// scalars verbatim, strings quoted, arrays as bracketed element lists
// (truncated), structs as {field = value, ...}.
func FormatValue(v Value) string {
	return formatValue(v, 0)
}

const maxFormatDepth = 3
const maxFormatElems = 32

func formatValue(v Value, depth int) string {
	switch v.Kind {
	case VNull:
		return "null"
	case VInt:
		return strconv.FormatInt(v.I, 10)
	case VFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case VBool:
		if v.Bool() {
			return "true"
		}
		return "false"
	case VStr:
		return strconv.Quote(v.S)
	case VPtr:
		if v.Ptr == nil {
			return "null"
		}
		if depth >= maxFormatDepth {
			return "&..."
		}
		return "&" + formatValue(v.Ptr.V, depth+1)
	case VArr:
		if v.Arr == nil {
			return "null"
		}
		if depth >= maxFormatDepth {
			return "[...]"
		}
		var b strings.Builder
		b.WriteByte('[')
		for i := range v.Arr.Cells {
			if i >= maxFormatElems {
				fmt.Fprintf(&b, ", ... (%d total)", len(v.Arr.Cells))
				break
			}
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(formatValue(v.Arr.Cells[i].V, depth+1))
		}
		b.WriteByte(']')
		return b.String()
	case VStruct:
		if v.Struct == nil {
			return "null"
		}
		if depth >= maxFormatDepth {
			return "{...}"
		}
		var b strings.Builder
		b.WriteByte('{')
		for i, f := range v.Struct.Def.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s = %s", f.Name, formatValue(v.Struct.Fields[i].V, depth+1))
		}
		b.WriteByte('}')
		return b.String()
	}
	return "<invalid>"
}

// ToStr converts a value to its unquoted string form, as the to_str
// builtin and printf's %v verb do.
func ToStr(v Value) string {
	if v.Kind == VStr {
		return v.S
	}
	return FormatValue(v)
}

// ValuesEqual implements == for the subset of comparisons the checker
// admits.
func ValuesEqual(a, b Value) bool {
	switch {
	case a.Kind == VInt && b.Kind == VInt:
		return a.I == b.I
	case a.Kind == VFloat || b.Kind == VFloat:
		if (a.Kind == VFloat || a.Kind == VInt) && (b.Kind == VFloat || b.Kind == VInt) {
			return a.AsFloat() == b.AsFloat()
		}
	case a.Kind == VBool && b.Kind == VBool:
		return a.I == b.I
	case a.Kind == VStr && b.Kind == VStr:
		return a.S == b.S
	}
	if a.IsNull() || b.IsNull() {
		return refIsNil(a) && refIsNil(b)
	}
	switch {
	case a.Kind == VPtr && b.Kind == VPtr:
		return a.Ptr == b.Ptr
	case a.Kind == VArr && b.Kind == VArr:
		return a.Arr == b.Arr
	case a.Kind == VStruct && b.Kind == VStruct:
		return a.Struct == b.Struct
	}
	return false
}

func refIsNil(v Value) bool {
	switch v.Kind {
	case VNull:
		return true
	case VPtr:
		return v.Ptr == nil
	case VArr:
		return v.Arr == nil
	case VStruct:
		return v.Struct == nil
	}
	return false
}
