package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a parsed (not necessarily checked) file back to mini-C
// source. Printing a parse of the output yields an identical tree, a
// property the test suite checks; tools use this for formatting and for
// dumping compiler output.
func Print(f *File) string {
	p := &printer{}
	for i, sd := range f.Structs {
		if i > 0 {
			p.nl()
		}
		p.printStruct(sd)
	}
	if len(f.Structs) > 0 && (len(f.Globals) > 0 || len(f.Funcs) > 0) {
		p.nl()
	}
	for _, g := range f.Globals {
		p.printGlobal(g)
	}
	if len(f.Globals) > 0 && len(f.Funcs) > 0 {
		p.nl()
	}
	for i, fd := range f.Funcs {
		if i > 0 {
			p.nl()
		}
		p.printFunc(fd)
	}
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) nl() { p.b.WriteByte('\n') }

func (p *printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("\t", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.nl()
}

func (p *printer) printStruct(sd *StructDef) {
	p.line("struct %s {", sd.Name)
	p.indent++
	for _, fl := range sd.Fields {
		p.line("%s %s;", fl.Type, fl.Name)
	}
	p.indent--
	p.line("}")
}

func (p *printer) printGlobal(g *GlobalDecl) {
	if g.Init != nil {
		p.line("global %s %s = %s;", g.Type, g.Name, exprString(g.Init))
	} else {
		p.line("global %s %s;", g.Type, g.Name)
	}
}

func (p *printer) printFunc(fd *FuncDecl) {
	params := make([]string, len(fd.Params))
	for i, pr := range fd.Params {
		params[i] = fmt.Sprintf("%s %s", pr.Type, pr.Name)
	}
	p.line("func %s %s(%s) {", fd.Result, fd.Name, strings.Join(params, ", "))
	p.indent++
	for _, s := range fd.Body.Stmts {
		p.printStmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) printStmt(s Stmt) {
	switch st := s.(type) {
	case *BlockStmt:
		p.line("{")
		p.indent++
		for _, inner := range st.Stmts {
			p.printStmt(inner)
		}
		p.indent--
		p.line("}")
	case *VarDeclStmt:
		if st.Init != nil {
			p.line("%s %s = %s;", st.Type, st.Name, exprString(st.Init))
		} else {
			p.line("%s %s;", st.Type, st.Name)
		}
	case *AssignStmt:
		p.line("%s %s %s;", exprString(st.LHS), st.Op, exprString(st.RHS))
	case *IncDecStmt:
		p.line("%s%s;", exprString(st.LHS), st.Op)
	case *ExprStmt:
		p.line("%s;", exprString(st.X))
	case *IfStmt:
		p.printIf(st, "")
	case *WhileStmt:
		p.line("while (%s) {", exprString(st.Cond))
		p.indent++
		for _, inner := range st.Body.Stmts {
			p.printStmt(inner)
		}
		p.indent--
		p.line("}")
	case *ForStmt:
		var init, cond, post string
		if st.Init != nil {
			init = simpleStmtString(st.Init)
		}
		if st.Cond != nil {
			cond = exprString(st.Cond)
		}
		if st.Post != nil {
			post = simpleStmtString(st.Post)
		}
		p.line("for (%s; %s; %s) {", init, cond, post)
		p.indent++
		for _, inner := range st.Body.Stmts {
			p.printStmt(inner)
		}
		p.indent--
		p.line("}")
	case *ParallelForStmt:
		p.line("parallel_for (int %s = %s; %s < %s; %s++) {",
			st.Var, exprString(st.Lo), st.Var, exprString(st.Hi), st.Var)
		p.indent++
		for _, inner := range st.Body.Stmts {
			p.printStmt(inner)
		}
		p.indent--
		p.line("}")
	case *ReturnStmt:
		if st.X != nil {
			p.line("return %s;", exprString(st.X))
		} else {
			p.line("return;")
		}
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	}
}

func (p *printer) printIf(st *IfStmt, prefix string) {
	p.line("%sif (%s) {", prefix, exprString(st.Cond))
	p.indent++
	for _, inner := range st.Then.Stmts {
		p.printStmt(inner)
	}
	p.indent--
	switch els := st.Else.(type) {
	case nil:
		p.line("}")
	case *IfStmt:
		p.printIf(els, "} else ")
	case *BlockStmt:
		p.line("} else {")
		p.indent++
		for _, inner := range els.Stmts {
			p.printStmt(inner)
		}
		p.indent--
		p.line("}")
	}
}

func simpleStmtString(s Stmt) string {
	switch st := s.(type) {
	case *VarDeclStmt:
		if st.Init != nil {
			return fmt.Sprintf("%s %s = %s", st.Type, st.Name, exprString(st.Init))
		}
		return fmt.Sprintf("%s %s", st.Type, st.Name)
	case *AssignStmt:
		return fmt.Sprintf("%s %s %s", exprString(st.LHS), st.Op, exprString(st.RHS))
	case *IncDecStmt:
		return fmt.Sprintf("%s%s", exprString(st.LHS), st.Op)
	case *ExprStmt:
		return exprString(st.X)
	}
	return ""
}

// exprString renders an expression with minimal but sufficient parentheses:
// parentheses appear wherever a child binds looser than its context.
func exprString(e Expr) string {
	return exprStringPrec(e, 0)
}

func exprStringPrec(e Expr, min int) string {
	s, prec := exprStringRaw(e)
	if prec < min {
		return "(" + s + ")"
	}
	return s
}

func exprStringRaw(e Expr) (string, int) {
	switch x := e.(type) {
	case *IntLit:
		return strconv.FormatInt(x.Value, 10), 8
	case *FloatLit:
		s := strconv.FormatFloat(x.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s, 8
	case *BoolLit:
		if x.Value {
			return "true", 8
		}
		return "false", 8
	case *StringLit:
		return quoteMiniC(x.Value), 8
	case *NullLit:
		return "null", 8
	case *Ident:
		return x.Name, 8
	case *BinaryExpr:
		prec := binPrec(x.Op)
		// Left-associative: the right child needs strictly higher binding.
		return fmt.Sprintf("%s %s %s",
			exprStringPrec(x.X, prec), x.Op, exprStringPrec(x.Y, prec+1)), prec
	case *UnaryExpr:
		return fmt.Sprintf("%s%s", x.Op, exprStringPrec(x.X, 7)), 7
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", exprStringPrec(x.X, 8), exprString(x.Index)), 8
	case *FieldExpr:
		op := "."
		if x.Arrow {
			op = "->"
		}
		return fmt.Sprintf("%s%s%s", exprStringPrec(x.X, 8), op, x.Name), 8
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = exprString(a)
		}
		return fmt.Sprintf("%s(%s)", x.Callee, strings.Join(args, ", ")), 8
	case *NewExpr:
		if x.Count != nil {
			return fmt.Sprintf("new %s[%s]", x.ElemType, exprString(x.Count)), 8
		}
		return fmt.Sprintf("new %s", x.ElemType), 8
	case *CastExpr:
		return fmt.Sprintf("%s(%s)", x.Target, exprString(x.X)), 8
	}
	return "<?>", 8
}

// Quote renders a string literal with mini-C's escape set. Code
// generators (the D2X table emitter among them) use it to embed arbitrary
// strings in generated source.
func Quote(s string) string { return quoteMiniC(s) }

// quoteMiniC renders a string literal with mini-C's escape set.
func quoteMiniC(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case 0:
			b.WriteString(`\0`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
