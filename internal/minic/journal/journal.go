// Package journal records minic VM execution so it can run backwards.
//
// The design is the classic deterministic-replay one (rr, GDB process
// record): because the VM is single-goroutine, round-robin scheduled and
// input-free, execution is a pure function of a state snapshot, so the
// journal only needs periodic full snapshots plus a per-instruction
// position log. Restoring to step N restores the nearest snapshot at or
// before N and re-executes the gap with program output suppressed;
// re-execution is byte-identical to the original run, which the replay
// differential tests pin.
//
// The per-instruction log is the hot path: one fixed-size record per
// scheduled instruction, appended into pooled 16K-record chunks so
// steady-state recording allocates nothing (chunk growth amortizes to
// zero, and truncated or stopped journals return their chunks to a
// shared pool — the same ring/pool discipline internal/obs uses for its
// histograms). The
// package deliberately depends only on internal/minic — it is VM
// machinery, usable by the stock debugger with no D2X knowledge.
//
// Two fidelity caveats, both shared with GDB's recorder: the journal
// sees scheduled instructions only, so synthetic calls the debugger
// injects at a stop (`call`, rtv_handlers) are not part of history; and
// debugger-applied mutations (`set var`) at a past stop are not replayed
// — callers should force a Checkpoint after mutating, which the
// debugger's `set` command does.
package journal

import (
	"fmt"
	"io"
	"sync"

	"d2x/internal/minic"
)

// chunkShift sizes the record chunks: 1<<14 records x 16 bytes = 256 KiB
// per chunk.
const (
	chunkShift = 14
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
)

// rec is one per-instruction delta: where execution stood just before
// scheduled instruction i ran. 16 bytes, fixed size, no pointers.
type rec struct {
	thread int32
	fnIdx  int32
	pc     int32
	depth  int32
}

type chunk [chunkSize]rec

// chunkPool recycles record chunks across truncations, journals and
// sessions. Chunks are pointer-free and every record slot is fully
// rewritten before it is readable (reads stop at j.step), so reused
// chunks need no zeroing — which is the point: new(chunk) pays a 256 KiB
// memclr that recording at full speed cannot afford.
var chunkPool = sync.Pool{New: func() any { return new(chunk) }}

// Rec is the exported view of one recorded instruction.
type Rec struct {
	Thread    int // thread ID that ran the instruction
	FuncIndex int // function containing it
	PC        int // instruction index within the function
	Depth     int // frame depth of the thread at that moment
}

// Options configures a journal.
type Options struct {
	// SnapshotEvery is the scheduled-instruction cadence between full
	// snapshots. Larger values record faster and replay slower. 0 means
	// DefaultSnapshotEvery.
	SnapshotEvery int64
}

// DefaultSnapshotEvery is the snapshot cadence when Options leaves it 0.
// A full snapshot is O(live heap) — on the Fig4 workload it costs about
// as much as running a few tens of thousands of instructions — so the
// spacing is what keeps recording inside its 15% overhead budget: at
// half a million instructions between snapshots the cadence cost
// amortizes below 5%, and the worst-case rewind replays the gap in well
// under a second (the replay loop runs at full VM speed with output
// discarded).
const DefaultSnapshotEvery = 1 << 19

// Stats is recording telemetry for `info record` and the overhead
// experiments.
type Stats struct {
	Steps       int64 // recorded scheduled instructions (current history extent)
	Snapshots   int   // live snapshots, including the base
	Replays     int64 // RestoreTo invocations
	ReplaySteps int64 // instructions re-executed across all replays
	RecordBytes int64 // bytes held by the record chunks (free pool included)
}

type checkpoint struct {
	step int64
	snap *minic.Snapshot
}

// Journal records one VM. Not safe for concurrent use — like the VM it
// records, it belongs to a single-goroutine debug session.
type Journal struct {
	vm *minic.VM

	// The hot-path cursor. cur/pos shadow chunks[len(chunks)-1] and the
	// offset of record step within it, so the per-instruction append is
	// one pointer indexing instead of two bounds-checked slice lookups;
	// untilSnap counts records down to the next cadence snapshot, so the
	// hot path never divides by `every`. pos == chunkSize forces grow.
	cur       *chunk
	pos       int64
	untilSnap int64

	every  int64
	chunks []*chunk
	snaps  []checkpoint // ascending by step; snaps[0] is the base at step 0
	step   int64        // recorded instructions; also the current position
	active bool
	stats  Stats
}

// Attach starts recording vm. The VM must be started: the base snapshot
// is taken after module initialisers (__init*) have run, so table
// constructors are part of the base state rather than of history, and
// restoring to step 0 lands exactly where a debugger's first stop does.
func Attach(vm *minic.VM, opts Options) (*Journal, error) {
	if !vm.Started() {
		return nil, fmt.Errorf("journal: VM not started")
	}
	every := opts.SnapshotEvery
	if every <= 0 {
		every = DefaultSnapshotEvery
	}
	j := &Journal{vm: vm, every: every, active: true, pos: chunkSize, untilSnap: every}
	j.snaps = append(j.snaps, checkpoint{step: 0, snap: vm.TakeSnapshot()})
	vm.SetStepHook(j.record)
	return j, nil
}

// Step returns the current position: the number of recorded instructions
// between the base snapshot and the VM's present state.
func (j *Journal) Step() int64 { return j.step }

// Active reports whether the journal is still recording.
func (j *Journal) Active() bool { return j.active }

// Stats returns a copy of the recording telemetry.
func (j *Journal) Stats() Stats {
	s := j.stats
	s.Steps = j.step
	s.Snapshots = len(j.snaps)
	s.RecordBytes = int64(len(j.chunks)) * chunkSize * 16
	return s
}

// Stop detaches the journal from the VM and releases its history. The
// journal cannot be restarted; attach a new one.
func (j *Journal) Stop() {
	if !j.active {
		return
	}
	j.active = false
	j.vm.SetStepHook(nil)
	for _, c := range j.chunks {
		chunkPool.Put(c)
	}
	j.chunks, j.snaps, j.cur = nil, nil, nil
}

// record is the per-instruction hot path, installed as the VM step hook.
// It runs once per scheduled instruction while recording is on.
//
//d2x:hotpath
//d2x:noalloc
func (j *Journal) record(t *minic.Thread) {
	// The hook fires before the instruction at position j.step executes,
	// so right now the VM state IS position j.step — the only moment a
	// cadence snapshot for it can be taken. untilSnap hits 0 exactly at
	// positive multiples of `every` (the checkpoint guard absorbs
	// re-execution over a cadence point that already has its snapshot).
	if j.untilSnap == 0 {
		j.checkpoint() //d2xvet:ignore noalloc cadence snapshots are off the per-instruction path
		j.untilSnap = j.every
	}
	j.untilSnap--
	if j.pos == chunkSize {
		j.grow() //d2xvet:ignore noalloc chunk growth is pooled and amortized over 16384 records
	}
	r := &j.cur[j.pos]
	r.thread = int32(t.ID)
	if f := t.Top(); f != nil {
		r.fnIdx = int32(f.FuncIndex)
		r.pc = int32(f.PC)
		r.depth = int32(len(t.Frames))
	} else {
		r.fnIdx, r.pc, r.depth = -1, -1, 0
	}
	j.pos++
	j.step++
}

// grow opens the chunk holding record j.step.
func (j *Journal) grow() {
	j.cur = chunkPool.Get().(*chunk)
	j.chunks = append(j.chunks, j.cur)
	j.pos = 0
}

// checkpoint takes a cadence snapshot at the current position unless one
// is already recorded there (re-execution after a rewind crosses the
// same cadence points again).
func (j *Journal) checkpoint() {
	if n := len(j.snaps); n > 0 && j.snaps[n-1].step >= j.step {
		return
	}
	j.snaps = append(j.snaps, checkpoint{step: j.step, snap: j.vm.TakeSnapshot()})
	j.stats.Snapshots = len(j.snaps)
}

// Checkpoint forces a full snapshot at the current position. The
// debugger calls this after mutating the debuggee at a stop (`set var`),
// so that replays crossing the stop see the mutated state exactly as the
// forward run did.
func (j *Journal) Checkpoint() {
	if !j.active {
		return
	}
	j.checkpoint()
}

// At returns the recorded position of instruction i (0-based), i.e. where
// execution stood just before it ran. ok is false outside [0, Step()).
func (j *Journal) At(i int64) (Rec, bool) {
	if i < 0 || i >= j.step {
		return Rec{}, false
	}
	r := &j.chunks[i>>chunkShift][i&chunkMask]
	return Rec{Thread: int(r.thread), FuncIndex: int(r.fnIdx), PC: int(r.pc), Depth: int(r.depth)}, true
}

// RestoreTo rewinds (or fast-forwards within history) the VM to its
// exact state after `target` recorded instructions: the nearest snapshot
// at or before target is restored and the gap re-executed with program
// output suppressed, so replay emits nothing the forward run already
// printed. History beyond target is discarded — resuming forward from
// there deterministically regenerates it (and its output), unless the
// caller mutates the debuggee first, which is the point of rewinding.
func (j *Journal) RestoreTo(target int64) error {
	if !j.active {
		return fmt.Errorf("journal: not recording")
	}
	if target < 0 || target > j.step {
		return fmt.Errorf("journal: step %d outside recorded history [0, %d]", target, j.step)
	}
	// Nearest checkpoint at or before target (snaps is ascending and
	// snaps[0].step == 0).
	ci := 0
	for i := len(j.snaps) - 1; i >= 0; i-- {
		if j.snaps[i].step <= target {
			ci = i
			break
		}
	}
	cp := j.snaps[ci]
	j.snaps = j.snaps[:ci+1]

	// Truncate the record log to target, recycling whole chunks, and
	// point the append cursor at the first free slot (pos == chunkSize
	// makes the next record pull a chunk back from the pool).
	keep := int((target + chunkMask) >> chunkShift)
	for len(j.chunks) > keep {
		n := len(j.chunks) - 1
		chunkPool.Put(j.chunks[n])
		j.chunks = j.chunks[:n]
	}
	if keep > 0 {
		j.cur = j.chunks[keep-1]
		j.pos = target - int64(keep-1)<<chunkShift
	} else {
		j.cur = nil
		j.pos = chunkSize
	}
	// Re-arm the cadence countdown: the next checkpoint check fires at
	// the next positive multiple of `every` (immediately if target sits
	// on one — the guard then skips, since its snapshot survived the
	// truncation).
	j.untilSnap = (j.every - target%j.every) % j.every
	if target == 0 {
		j.untilSnap = j.every
	}

	vm := j.vm
	vm.SetStepHook(nil)
	out := vm.Output
	vm.Output = io.Discard
	err := vm.RestoreSnapshot(cp.snap)
	if err == nil {
		for i := cp.step; i < target; i++ {
			if vm.StepInstr() == nil {
				err = fmt.Errorf("journal: replay stalled at step %d of %d", i, target)
				break
			}
		}
	}
	vm.Output = out
	vm.SetStepHook(j.record)
	if err != nil {
		return err
	}
	j.step = target
	j.stats.Replays++
	j.stats.ReplaySteps += target - cp.step
	return nil
}

// SeekBack scans the record log backwards from position `from`
// (exclusive) for the most recent instruction satisfying pred, returning
// its step. ok is false when no recorded instruction matches. The scan
// does not touch the VM; pair it with RestoreTo.
func (j *Journal) SeekBack(from int64, pred func(Rec) bool) (int64, bool) {
	if from > j.step {
		from = j.step
	}
	for i := from - 1; i >= 0; i-- {
		r := &j.chunks[i>>chunkShift][i&chunkMask]
		if pred(Rec{Thread: int(r.thread), FuncIndex: int(r.fnIdx), PC: int(r.pc), Depth: int(r.depth)}) {
			return i, true
		}
	}
	return 0, false
}
