package journal

import (
	"strings"
	"testing"

	"d2x/internal/minic"
)

const testProgram = `
global int checksum = 0;
func int digest(int[] data, int round) {
	int acc = 0;
	for (int i = 0; i < len(data); i++) {
		acc += data[i] * round;
	}
	return acc;
}
func int main() {
	int[] data = new int[8];
	parallel_for (int i = 0; i < 8; i++) {
		data[i] = i + 1;
	}
	for (int round = 0; round < 30; round++) {
		checksum = checksum + digest(data, round);
		printf("round %d: %d\n", round, checksum);
	}
	printf("done %d\n", checksum);
	return 0;
}`

func startVM(t *testing.T, out *strings.Builder) *minic.VM {
	t.Helper()
	prog, err := minic.Compile("test.c", testProgram, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	vm := minic.NewVM(prog, out)
	if err := vm.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	return vm
}

func TestAttachRequiresStartedVM(t *testing.T) {
	prog, err := minic.Compile("test.c", testProgram, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(minic.NewVM(prog, nil), Options{}); err == nil {
		t.Fatal("Attach on an unstarted VM should fail")
	}
}

// TestRestoreToReplaysByteIdentically records a full run, then rewinds to
// many points (crossing checkpoint boundaries both ways) and re-runs;
// the regenerated output tail must be byte-identical to the forward run.
func TestRestoreToReplaysByteIdentically(t *testing.T) {
	var out strings.Builder
	vm := startVM(t, &out)
	j, err := Attach(vm, Options{SnapshotEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Record the output length at each step so we can compare tails.
	offsets := []int{len(out.String())}
	for vm.StepInstr() != nil {
		offsets = append(offsets, len(out.String()))
	}
	forward := out.String()
	total := j.Step()
	if total != int64(len(offsets)-1) {
		t.Fatalf("journal recorded %d steps, scheduler ran %d", total, len(offsets)-1)
	}
	if j.Stats().Snapshots < 2 {
		t.Fatalf("expected cadence snapshots, got %d", j.Stats().Snapshots)
	}

	for _, target := range []int64{0, 1, 63, 64, 65, total / 2, total - 1, total} {
		preLen := len(out.String())
		if err := j.RestoreTo(target); err != nil {
			t.Fatalf("RestoreTo(%d): %v", target, err)
		}
		if got := len(out.String()); got != preLen {
			t.Fatalf("RestoreTo(%d) leaked %d bytes of replay output", target, got-preLen)
		}
		if j.Step() != target {
			t.Fatalf("after RestoreTo(%d), Step() = %d", target, j.Step())
		}
		var tail strings.Builder
		vm.Output = &tail
		for vm.StepInstr() != nil {
		}
		vm.Output = &out
		want := forward[offsets[target]:]
		if tail.String() != want {
			t.Fatalf("RestoreTo(%d): resumed output diverged\n got %q\nwant %q", target, tail.String(), want)
		}
		if j.Step() != total {
			t.Fatalf("re-run from %d recorded %d steps, want %d", target, j.Step(), total)
		}
	}
}

// TestRecordsMatchExecution checks the per-instruction log against the
// scheduler: every record's (thread, func, pc) must equal what
// NextThread showed just before that step ran.
func TestRecordsMatchExecution(t *testing.T) {
	vm := startVM(t, &strings.Builder{})
	j, err := Attach(vm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	type pos struct{ th, fn, pc, depth int }
	var want []pos
	for {
		nt := vm.NextThread()
		if nt == nil {
			break
		}
		p := pos{th: nt.ID}
		if f := nt.Top(); f != nil {
			p.fn, p.pc, p.depth = f.FuncIndex, f.PC, len(nt.Frames)
		} else {
			p.fn, p.pc = -1, -1
		}
		want = append(want, p)
		vm.StepInstr()
	}
	if j.Step() != int64(len(want)) {
		t.Fatalf("recorded %d steps, executed %d", j.Step(), len(want))
	}
	for i, p := range want {
		r, ok := j.At(int64(i))
		if !ok {
			t.Fatalf("At(%d) out of range", i)
		}
		if r.Thread != p.th || r.FuncIndex != p.fn || r.PC != p.pc || r.Depth != p.depth {
			t.Fatalf("record %d = %+v, want %+v", i, r, p)
		}
	}
	if _, ok := j.At(int64(len(want))); ok {
		t.Fatal("At(extent) should be out of range")
	}
	if _, ok := j.At(-1); ok {
		t.Fatal("At(-1) should be out of range")
	}
}

func TestSeekBack(t *testing.T) {
	vm := startVM(t, &strings.Builder{})
	j, err := Attach(vm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for vm.StepInstr() != nil {
	}
	total := j.Step()

	// The most recent main-thread record is findable...
	s, ok := j.SeekBack(total, func(r Rec) bool { return r.Thread == 0 })
	if !ok {
		t.Fatal("no main-thread record found")
	}
	r, _ := j.At(s)
	if r.Thread != 0 {
		t.Fatalf("SeekBack landed on thread %d", r.Thread)
	}
	// ...the scan is bounded by from...
	if s2, ok := j.SeekBack(s, func(r Rec) bool { return r.Thread == 0 }); !ok || s2 >= s {
		t.Fatalf("SeekBack(from=%d) = %d, %v; want an earlier hit", s, s2, ok)
	}
	// ...and an impossible predicate reports no hit.
	if _, ok := j.SeekBack(total, func(Rec) bool { return false }); ok {
		t.Fatal("impossible predicate reported a hit")
	}
}

// TestMutationThenCheckpoint pins the `set var` fidelity story: a
// debugger-applied mutation at a stop is not part of the instruction
// history, so a replay to that stop loses it — unless a checkpoint is
// forced there, after which replays land on the mutated state exactly.
func TestMutationThenCheckpoint(t *testing.T) {
	var out strings.Builder
	vm := startVM(t, &out)
	j, err := Attach(vm, Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		vm.StepInstr()
	}
	mark := j.Step()
	before := vm.GlobalCell("checksum").V.I

	// Mutate the debuggee the way `set var checksum = 1000000` would,
	// without a checkpoint: rewinding to the same spot replays from the
	// base snapshot and the mutation is gone.
	vm.GlobalCell("checksum").V = minic.IntVal(1_000_000)
	if err := j.RestoreTo(mark); err != nil {
		t.Fatal(err)
	}
	if got := vm.GlobalCell("checksum").V.I; got != before {
		t.Errorf("replay without checkpoint: checksum = %d, want pre-mutation %d", got, before)
	}

	// Mutate again, this time with a forced checkpoint: the rewind must
	// land on the mutated state, and the resumed run must reproduce the
	// forward run that followed the mutation.
	vm.GlobalCell("checksum").V = minic.IntVal(1_000_000)
	j.Checkpoint()
	for vm.StepInstr() != nil {
	}
	want := vm.GlobalCell("checksum").V.I
	if err := j.RestoreTo(mark); err != nil {
		t.Fatal(err)
	}
	if got := vm.GlobalCell("checksum").V.I; got != 1_000_000 {
		t.Errorf("restore to the checkpoint lost the mutation: checksum = %d", got)
	}
	for vm.StepInstr() != nil {
	}
	if got := vm.GlobalCell("checksum").V.I; got != want {
		t.Errorf("replay across the mutation diverged: %d, want %d", got, want)
	}
}

func TestStopDetaches(t *testing.T) {
	vm := startVM(t, &strings.Builder{})
	j, err := Attach(vm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		vm.StepInstr()
	}
	if j.Step() != 10 {
		t.Fatalf("Step() = %d, want 10", j.Step())
	}
	j.Stop()
	if j.Active() {
		t.Fatal("journal still active after Stop")
	}
	for i := 0; i < 10; i++ {
		vm.StepInstr()
	}
	if j.Step() != 10 {
		t.Fatal("journal kept recording after Stop")
	}
	if err := j.RestoreTo(5); err == nil {
		t.Fatal("RestoreTo after Stop should fail")
	}
}

func TestRestoreToBounds(t *testing.T) {
	vm := startVM(t, &strings.Builder{})
	j, err := Attach(vm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		vm.StepInstr()
	}
	if err := j.RestoreTo(-1); err == nil {
		t.Fatal("RestoreTo(-1) should fail")
	}
	if err := j.RestoreTo(11); err == nil {
		t.Fatal("RestoreTo beyond history should fail")
	}
	if err := j.RestoreTo(10); err != nil {
		t.Fatalf("RestoreTo(extent) is a no-op rewind, got %v", err)
	}
}

// TestChunkRecycling rewinds across chunk boundaries and checks that
// truncated chunks come back from the free pool instead of growing the
// footprint.
func TestChunkRecycling(t *testing.T) {
	prog, err := minic.Compile("test.c", `
global int n = 0;
func int main() {
	for (int i = 0; i < 40000; i++) {
		n = n + 1;
	}
	return 0;
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := minic.NewVM(prog, nil)
	if err := vm.Start(); err != nil {
		t.Fatal(err)
	}
	j, err := Attach(vm, Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*chunkSize; i++ {
		if vm.StepInstr() == nil {
			t.Fatal("program too short for the test")
		}
	}
	bytesBefore := j.Stats().RecordBytes
	if err := j.RestoreTo(10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*chunkSize-10; i++ {
		vm.StepInstr()
	}
	if got := j.Stats().RecordBytes; got != bytesBefore {
		t.Errorf("record footprint changed across rewind+rerun: %d -> %d bytes", bytesBefore, got)
	}
	if j.Step() != 3*chunkSize {
		t.Fatalf("Step() = %d, want %d", j.Step(), 3*chunkSize)
	}
	r, ok := j.At(3*chunkSize - 1)
	if !ok || r.Thread != 0 {
		t.Fatalf("re-recorded tail record bad: %+v ok=%v", r, ok)
	}
}
