package minic

import "fmt"

// Snapshot is a deep copy of a VM's execution state: threads, frames,
// operand stacks, globals, and every heap object reachable from them,
// plus the scheduler cursor and the ID counters. Restoring a snapshot
// and re-running is deterministic (the VM is single-goroutine round-robin
// with no external input), which is the property the execution journal's
// reverse execution rests on. A snapshot shares only immutable program
// metadata (FuncDecl, FuncCode, Type, StructDef) with the live VM.
type Snapshot struct {
	steps        int64
	schedIdx     int
	nextThreadID int
	nextFrameID  int
	started      bool
	globals      []Cell
	threads      []*Thread
}

// Steps returns the VM instruction counter at the time the snapshot was
// taken.
func (s *Snapshot) Steps() int64 { return s.steps }

// TakeSnapshot deep-copies the VM's current execution state. It must not
// be called from inside instruction execution; the journal calls it from
// the step hook (before the instruction runs) or at a debugger stop.
func (vm *VM) TakeSnapshot() *Snapshot {
	dst := make([]Cell, len(vm.Globals))
	return &Snapshot{
		steps:        vm.Steps,
		schedIdx:     vm.schedIdx,
		nextThreadID: vm.nextThreadID,
		nextFrameID:  vm.nextFrameID,
		started:      vm.started,
		globals:      dst,
		threads:      copyVMState(vm.Globals, vm.threads, dst),
	}
}

// RestoreSnapshot replaces the VM's execution state with a deep copy of
// the snapshot (the snapshot itself stays intact and can be restored
// again). Globals are overwritten in place so &vm.Globals[i] pointers
// held by natives or the debugger stay valid. Program identity must
// match: a snapshot only restores onto the VM it was taken from (or an
// identical program).
func (vm *VM) RestoreSnapshot(s *Snapshot) error {
	if len(s.globals) != len(vm.Globals) {
		return fmt.Errorf("minic: snapshot has %d globals, VM has %d", len(s.globals), len(vm.Globals))
	}
	threads := copyVMState(s.globals, s.threads, vm.Globals)
	vm.threads = threads
	vm.frameByID = make(map[int]*Frame, 2*len(threads))
	for _, t := range threads {
		for _, f := range t.Frames {
			vm.frameByID[f.ID] = f
		}
	}
	vm.Steps = s.steps
	vm.schedIdx = s.schedIdx
	vm.nextThreadID = s.nextThreadID
	vm.nextFrameID = s.nextFrameID
	vm.started = s.started
	return nil
}

// stateCopier performs one aliasing-preserving deep copy of a VM object
// graph. The copy runs in phases so that pointers into the interior of a
// container (a VPtr to &ArrayObj.Cells[i], a struct field cell, a global)
// are translated to the corresponding interior cell of the copied
// container rather than to a detached duplicate:
//
//  1. register the root cells whose copies have fixed homes (globals);
//  2. discover the reachable graph, allocating each container copy and
//     mapping its interior cells the moment the container is first seen;
//  3. give every remaining reachable cell (frame slots, parallel_for
//     captures, cells kept alive only by pointers) a standalone copy;
//  4. fill every mapped cell and every non-cell value (operand stacks,
//     thread results) by translating through the completed maps.
//
// The VM guarantees that a frame slot or global cell is never the
// interior of an array or struct (slots come from newFrame/parForFrame
// backing cells, globals from vm.Globals), so root registration in phase
// 1 cannot conflict with container discovery in phase 2.
type stateCopier struct {
	cells   map[*Cell]*Cell
	arrs    map[*ArrayObj]*ArrayObj
	structs map[*StructObj]*StructObj
	seen    []*Cell // discovery order; queue tail is unprocessed
	queued  map[*Cell]bool
}

// copyVMState deep-copies (globals, threads) into (dstGlobals, returned
// threads). dstGlobals must have the same length as globals; its cells
// are overwritten in place.
func copyVMState(globals []Cell, threads []*Thread, dstGlobals []Cell) []*Thread {
	c := &stateCopier{
		cells:   make(map[*Cell]*Cell, len(globals)+64),
		arrs:    map[*ArrayObj]*ArrayObj{},
		structs: map[*StructObj]*StructObj{},
		queued:  make(map[*Cell]bool, len(globals)+64),
	}

	// Phase 1: globals are roots with fixed destinations.
	for i := range globals {
		c.cells[&globals[i]] = &dstGlobals[i]
		c.enqueue(&globals[i])
	}

	// Phase 2: discover everything reachable from threads.
	for _, t := range threads {
		for _, f := range t.Frames {
			for _, slot := range f.Slots {
				c.enqueue(slot)
			}
			for _, v := range f.stack {
				c.discoverValue(v)
			}
		}
		if t.par != nil {
			for _, cap := range t.par.captured {
				c.enqueue(cap)
			}
		}
		c.discoverValue(t.Result)
	}
	for i := 0; i < len(c.seen); i++ {
		c.discoverValue(c.seen[i].V)
	}

	// Phase 3: reachable cells not owned by a container or a global get
	// standalone copies.
	for _, old := range c.seen {
		if c.cells[old] == nil {
			c.cells[old] = &Cell{}
		}
	}

	// Phase 4: fill.
	for old, nc := range c.cells {
		nc.V = c.translate(old.V)
	}
	tmap := make(map[*Thread]*Thread, len(threads))
	out := make([]*Thread, len(threads))
	for i, t := range threads {
		tmap[t] = &Thread{}
		out[i] = tmap[t]
	}
	for i, t := range threads {
		nt := out[i]
		nt.ID = t.ID
		nt.State = t.State
		nt.Fault = t.Fault
		nt.Result = c.translate(t.Result)
		nt.parent = tmap[t.parent] // nil maps to nil
		nt.children = t.children
		nt.synth = t.synth
		if t.par != nil {
			pr := &parRange{next: t.par.next, end: t.par.end, helper: t.par.helper}
			pr.captured = make([]*Cell, len(t.par.captured))
			for j, cap := range t.par.captured {
				pr.captured[j] = c.cells[cap]
			}
			nt.par = pr
		}
		if len(t.Frames) > 0 {
			nt.Frames = make([]*Frame, len(t.Frames))
			for j, f := range t.Frames {
				nf := &Frame{
					ID:        f.ID,
					FuncIndex: f.FuncIndex,
					Fn:        f.Fn,
					Code:      f.Code,
					PC:        f.PC,
				}
				nf.Slots = make([]*Cell, len(f.Slots))
				for k, slot := range f.Slots {
					nf.Slots[k] = c.cells[slot]
				}
				if len(f.stack) > 0 {
					nf.stack = make([]Value, len(f.stack))
					for k, v := range f.stack {
						nf.stack[k] = c.translate(v)
					}
				}
				nt.Frames[j] = nf
			}
		}
	}
	return out
}

func (c *stateCopier) enqueue(cell *Cell) {
	if cell == nil || c.queued[cell] {
		return
	}
	c.queued[cell] = true
	c.seen = append(c.seen, cell)
}

// discoverValue walks one value, allocating container copies (with their
// interior cell mappings) on first sight and queueing every cell it can
// reach. Recursion depth is bounded by static type nesting, not by data
// size: container elements are iterated, and revisits cut off at the
// identity maps.
func (c *stateCopier) discoverValue(v Value) {
	switch v.Kind {
	case VArr:
		if v.Arr == nil || c.arrs[v.Arr] != nil {
			return
		}
		na := &ArrayObj{Elem: v.Arr.Elem, Cells: make([]Cell, len(v.Arr.Cells))}
		c.arrs[v.Arr] = na
		for i := range v.Arr.Cells {
			c.cells[&v.Arr.Cells[i]] = &na.Cells[i]
			c.enqueue(&v.Arr.Cells[i])
		}
	case VStruct:
		if v.Struct == nil || c.structs[v.Struct] != nil {
			return
		}
		ns := &StructObj{Def: v.Struct.Def, Fields: make([]Cell, len(v.Struct.Fields))}
		c.structs[v.Struct] = ns
		for i := range v.Struct.Fields {
			c.cells[&v.Struct.Fields[i]] = &ns.Fields[i]
			c.enqueue(&v.Struct.Fields[i])
		}
	case VPtr:
		c.enqueue(v.Ptr)
	}
}

// translate rewrites a value's object references through the completed
// identity maps. Scalars (including strings, which are immutable) pass
// through unchanged.
func (c *stateCopier) translate(v Value) Value {
	switch v.Kind {
	case VArr:
		if v.Arr != nil {
			v.Arr = c.arrs[v.Arr]
		}
	case VStruct:
		if v.Struct != nil {
			v.Struct = c.structs[v.Struct]
		}
	case VPtr:
		if v.Ptr != nil {
			v.Ptr = c.cells[v.Ptr]
		}
	}
	return v
}
