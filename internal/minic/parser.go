package minic

import "fmt"

// parser builds the AST from the token stream. It is a conventional
// recursive-descent parser with one token of (occasionally multi-token,
// via raw index scanning) lookahead.
type parser struct {
	file string
	toks []Token
	pos  int
}

// Parse parses mini-C source text into an unchecked File.
func Parse(filename, src string) (*File, error) {
	toks, err := lexAll(filename, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: filename, toks: toks}
	return p.parseFile()
}

func (p *parser) cur() Token     { return p.toks[p.pos] }
func (p *parser) at(k Kind) bool { return p.toks[p.pos].Kind == k }
func (p *parser) kindAt(off int) Kind {
	i := p.pos + off
	if i >= len(p.toks) {
		return EOF
	}
	return p.toks[i].Kind
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		t := p.cur()
		return t, errf(p.file, t.Line, t.Col, "expected %s, found %s", k, t)
	}
	return p.advance(), nil
}

func (p *parser) errHere(format string, args ...any) error {
	t := p.cur()
	return errf(p.file, t.Line, t.Col, format, args...)
}

func (p *parser) parseFile() (*File, error) {
	f := &File{Name: p.file}
	for !p.at(EOF) {
		switch p.cur().Kind {
		case KwStruct:
			sd, err := p.parseStruct()
			if err != nil {
				return nil, err
			}
			f.Structs = append(f.Structs, sd)
		case KwGlobal:
			gd, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, gd)
		case KwFunc:
			fd, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fd)
		default:
			return nil, p.errHere("expected struct, global, or func declaration, found %s", p.cur())
		}
	}
	return f, nil
}

func (p *parser) parseStruct() (*StructDef, error) {
	kw, _ := p.expect(KwStruct)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	sd := &StructDef{Name: name.Text, Line: kw.Line}
	for !p.at(RBrace) {
		ft, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		sd.Fields = append(sd.Fields, Field{Name: fn.Text, Type: ft})
	}
	p.advance() // }
	if p.at(Semi) {
		p.advance()
	}
	return sd, nil
}

func (p *parser) parseGlobal() (*GlobalDecl, error) {
	kw, _ := p.expect(KwGlobal)
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Name: name.Text, Type: typ, Line: kw.Line}
	if p.at(Assign) {
		p.advance()
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		g.Init = init
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *parser) parseFunc() (*FuncDecl, error) {
	kw, _ := p.expect(KwFunc)
	result, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	fd := &FuncDecl{Name: name.Text, Result: result, Line: kw.Line}
	for !p.at(RParen) {
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		fd.Params = append(fd.Params, Param{Name: pn.Text, Type: pt})
		if p.at(Comma) {
			p.advance()
		} else {
			break
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

// typeStart reports whether kind k can begin a type.
func typeStart(k Kind) bool {
	switch k {
	case KwInt, KwFloat, KwBool, KwString, KwVoid:
		return true
	}
	return false
}

func (p *parser) parseType() (*Type, error) {
	var base *Type
	t := p.cur()
	switch t.Kind {
	case KwInt:
		base = IntType
	case KwFloat:
		base = FloatType
	case KwBool:
		base = BoolType
	case KwString:
		base = StringType
	case KwVoid:
		base = VoidType
	case IDENT:
		base = StructType(t.Text)
	default:
		return nil, p.errHere("expected type, found %s", t)
	}
	p.advance()
	for {
		switch {
		case p.at(Star):
			p.advance()
			base = PointerTo(base)
		case p.at(LBracket) && p.kindAt(1) == RBracket:
			p.advance()
			p.advance()
			base = ArrayOf(base)
		default:
			return base, nil
		}
	}
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{stmtBase: stmtBase{Line: lb.Line}}
	for !p.at(RBrace) {
		if p.at(EOF) {
			return nil, p.errHere("unexpected end of file inside block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance()
	return b, nil
}

// startsVarDecl reports whether the statement starting at the current
// position is a variable declaration. Basic-type keywords always start a
// declaration; an IDENT starts one only when it is followed by type
// suffixes and then another IDENT (e.g. `frontier_t* f = ...`).
func (p *parser) startsVarDecl() bool {
	if typeStart(p.cur().Kind) {
		return true
	}
	if !p.at(IDENT) {
		return false
	}
	j := p.pos + 1
	for {
		switch {
		case p.kindAt(j-p.pos) == Star:
			j++
		case p.kindAt(j-p.pos) == LBracket && p.kindAt(j-p.pos+1) == RBracket:
			j += 2
		default:
			return p.kindAt(j-p.pos) == IDENT &&
				(p.kindAt(j-p.pos+1) == Assign || p.kindAt(j-p.pos+1) == Semi)
		}
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case LBrace:
		return p.parseBlock()
	case KwIf:
		return p.parseIf()
	case KwWhile:
		return p.parseWhile()
	case KwFor:
		return p.parseFor()
	case KwParallelFor:
		return p.parseParallelFor()
	case KwReturn:
		p.advance()
		r := &ReturnStmt{stmtBase: stmtBase{Line: t.Line}}
		if !p.at(Semi) {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return r, nil
	case KwBreak:
		p.advance()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &BreakStmt{stmtBase{Line: t.Line}}, nil
	case KwContinue:
		p.advance()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ContinueStmt{stmtBase{Line: t.Line}}, nil
	}
	if p.startsVarDecl() {
		d, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return d, nil
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) parseVarDecl() (*VarDeclStmt, error) {
	line := p.cur().Line
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &VarDeclStmt{stmtBase: stmtBase{Line: line}, Name: name.Text, Type: typ}
	if p.at(Assign) {
		p.advance()
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, nil
}

// parseSimpleStmt parses an expression statement, assignment, or inc/dec,
// without the trailing semicolon.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	line := p.cur().Line
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case Assign, PlusAssign, MinusAssign:
		op := p.advance().Kind
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{stmtBase: stmtBase{Line: line}, Op: op, LHS: lhs, RHS: rhs}, nil
	case Inc, Dec:
		op := p.advance().Kind
		return &IncDecStmt{stmtBase: stmtBase{Line: line}, Op: op, LHS: lhs}, nil
	}
	return &ExprStmt{stmtBase: stmtBase{Line: line}, X: lhs}, nil
}

func (p *parser) parseIf() (*IfStmt, error) {
	kw := p.advance()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{stmtBase: stmtBase{Line: kw.Line}, Cond: cond, Then: then}
	if p.at(KwElse) {
		p.advance()
		if p.at(KwIf) {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = els
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

func (p *parser) parseWhile() (*WhileStmt, error) {
	kw := p.advance()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{stmtBase: stmtBase{Line: kw.Line}, Cond: cond, Body: body}, nil
}

func (p *parser) parseFor() (*ForStmt, error) {
	kw := p.advance()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	s := &ForStmt{stmtBase: stmtBase{Line: kw.Line}}
	if !p.at(Semi) {
		if p.startsVarDecl() {
			d, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			s.Init = d
		} else {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			s.Init = init
		}
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(Semi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(RParen) {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// parseParallelFor parses the restricted form
// `parallel_for (int i = lo; i < hi; i++) block`.
func (p *parser) parseParallelFor() (*ParallelForStmt, error) {
	kw := p.advance()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(KwInt); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Assign); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	cmpName, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if cmpName.Text != name.Text {
		return nil, errf(p.file, cmpName.Line, cmpName.Col,
			"parallel_for condition must test the loop variable %q", name.Text)
	}
	if _, err := p.expect(Lt); err != nil {
		return nil, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	postName, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if postName.Text != name.Text {
		return nil, errf(p.file, postName.Line, postName.Col,
			"parallel_for post statement must increment the loop variable %q", name.Text)
	}
	if _, err := p.expect(Inc); err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ParallelForStmt{
		stmtBase: stmtBase{Line: kw.Line},
		Var:      name.Text, Lo: lo, Hi: hi, Body: body,
	}, nil
}

// ---- Expressions ----

// Binary operator precedence, higher binds tighter.
func binPrec(k Kind) int {
	switch k {
	case OrOr:
		return 1
	case AndAnd:
		return 2
	case Eq, Neq:
		return 3
	case Lt, Le, Gt, Ge:
		return 4
	case Plus, Minus, Shl, Shr:
		// Shifts share the additive level; generated code parenthesises
		// explicitly, and mini-C documents this deviation from C.
		return 5
	case Star, Slash, Percent:
		return 6
	}
	return 0
}

func (p *parser) parseExpr() (Expr, error) {
	return p.parseBinary(1)
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Kind
		prec := binPrec(op)
		if prec == 0 || prec < minPrec {
			return lhs, nil
		}
		opTok := p.advance()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{
			exprBase: exprBase{Line: opTok.Line},
			Op:       op, X: lhs, Y: rhs,
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case Minus, Not, Amp, Star:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{exprBase: exprBase{Line: t.Line}, Op: t.Kind, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case LBracket:
			lb := p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{exprBase: exprBase{Line: lb.Line}, X: x, Index: idx}
		case Dot, Arrow:
			opTok := p.advance()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			x = &FieldExpr{
				exprBase: exprBase{Line: opTok.Line},
				X:        x, Name: name.Text, Arrow: opTok.Kind == Arrow,
			}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INTLIT:
		p.advance()
		var v int64
		if _, err := fmt.Sscanf(t.Text, "%d", &v); err != nil {
			return nil, errf(p.file, t.Line, t.Col, "bad integer literal %q", t.Text)
		}
		return &IntLit{exprBase: exprBase{Line: t.Line}, Value: v}, nil
	case FLOATLIT:
		p.advance()
		var v float64
		if _, err := fmt.Sscanf(t.Text, "%g", &v); err != nil {
			return nil, errf(p.file, t.Line, t.Col, "bad float literal %q", t.Text)
		}
		return &FloatLit{exprBase: exprBase{Line: t.Line}, Value: v}, nil
	case STRINGLIT:
		p.advance()
		return &StringLit{exprBase: exprBase{Line: t.Line}, Value: t.Text}, nil
	case KwTrue, KwFalse:
		p.advance()
		return &BoolLit{exprBase: exprBase{Line: t.Line}, Value: t.Kind == KwTrue}, nil
	case KwNull:
		p.advance()
		return &NullLit{exprBase: exprBase{Line: t.Line}}, nil
	case KwInt, KwFloat, KwBool, KwString:
		// Cast syntax: int(x), float(x), bool(x), string(x).
		p.advance()
		var target *Type
		switch t.Kind {
		case KwInt:
			target = IntType
		case KwFloat:
			target = FloatType
		case KwBool:
			target = BoolType
		case KwString:
			target = StringType
		}
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return &CastExpr{exprBase: exprBase{Line: t.Line}, Target: target, X: x}, nil
	case KwNew:
		p.advance()
		base, err := p.parseBaseTypeForNew()
		if err != nil {
			return nil, err
		}
		n := &NewExpr{exprBase: exprBase{Line: t.Line}, ElemType: base}
		if p.at(LBracket) {
			p.advance()
			cnt, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			n.Count = cnt
		}
		return n, nil
	case LParen:
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	case IDENT:
		p.advance()
		if p.at(LParen) {
			p.advance()
			call := &CallExpr{exprBase: exprBase{Line: t.Line}, Callee: t.Text}
			for !p.at(RParen) {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.at(Comma) {
					p.advance()
				} else {
					break
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{exprBase: exprBase{Line: t.Line}, Name: t.Text}, nil
	}
	return nil, p.errHere("expected expression, found %s", t)
}

// parseBaseTypeForNew parses the type after `new`: a base type plus any `*`
// suffixes, but stops before `[`, which introduces the element count.
func (p *parser) parseBaseTypeForNew() (*Type, error) {
	var base *Type
	t := p.cur()
	switch t.Kind {
	case KwInt:
		base = IntType
	case KwFloat:
		base = FloatType
	case KwBool:
		base = BoolType
	case KwString:
		base = StringType
	case IDENT:
		base = StructType(t.Text)
	default:
		return nil, p.errHere("expected type after new, found %s", t)
	}
	p.advance()
	for p.at(Star) {
		p.advance()
		base = PointerTo(base)
	}
	return base, nil
}
