package minic

import "fmt"

// Kind enumerates the lexical token kinds of the mini-C target language.
type Kind int

// Token kinds. The language is a small C dialect: the output language of
// the DSL compilers in this repository, standing in for the C++ the paper's
// DSLs emit.
const (
	EOF Kind = iota
	IDENT
	INTLIT
	FLOATLIT
	STRINGLIT

	// Keywords.
	KwFunc
	KwGlobal
	KwStruct
	KwIf
	KwElse
	KwWhile
	KwFor
	KwParallelFor
	KwReturn
	KwBreak
	KwContinue
	KwTrue
	KwFalse
	KwNull
	KwNew
	KwInt
	KwFloat
	KwBool
	KwString
	KwVoid

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semi
	Dot
	Arrow // ->
	Assign
	PlusAssign
	MinusAssign
	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	AndAnd
	OrOr
	Not
	Eq
	Neq
	Lt
	Le
	Gt
	Ge
	Inc // ++
	Dec // --
	Shl // <<
	Shr // >>
)

var kindNames = map[Kind]string{
	EOF:           "EOF",
	IDENT:         "identifier",
	INTLIT:        "integer literal",
	FLOATLIT:      "float literal",
	STRINGLIT:     "string literal",
	KwFunc:        "func",
	KwGlobal:      "global",
	KwStruct:      "struct",
	KwIf:          "if",
	KwElse:        "else",
	KwWhile:       "while",
	KwFor:         "for",
	KwParallelFor: "parallel_for",
	KwReturn:      "return",
	KwBreak:       "break",
	KwContinue:    "continue",
	KwTrue:        "true",
	KwFalse:       "false",
	KwNull:        "null",
	KwNew:         "new",
	KwInt:         "int",
	KwFloat:       "float",
	KwBool:        "bool",
	KwString:      "string",
	KwVoid:        "void",
	LParen:        "(",
	RParen:        ")",
	LBrace:        "{",
	RBrace:        "}",
	LBracket:      "[",
	RBracket:      "]",
	Comma:         ",",
	Semi:          ";",
	Dot:           ".",
	Arrow:         "->",
	Assign:        "=",
	PlusAssign:    "+=",
	MinusAssign:   "-=",
	Plus:          "+",
	Minus:         "-",
	Star:          "*",
	Slash:         "/",
	Percent:       "%",
	Amp:           "&",
	AndAnd:        "&&",
	OrOr:          "||",
	Not:           "!",
	Eq:            "==",
	Neq:           "!=",
	Lt:            "<",
	Le:            "<=",
	Gt:            ">",
	Ge:            ">=",
	Inc:           "++",
	Dec:           "--",
	Shl:           "<<",
	Shr:           ">>",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"func":         KwFunc,
	"global":       KwGlobal,
	"struct":       KwStruct,
	"if":           KwIf,
	"else":         KwElse,
	"while":        KwWhile,
	"for":          KwFor,
	"parallel_for": KwParallelFor,
	"return":       KwReturn,
	"break":        KwBreak,
	"continue":     KwContinue,
	"true":         KwTrue,
	"false":        KwFalse,
	"null":         KwNull,
	"new":          KwNew,
	"int":          KwInt,
	"float":        KwFloat,
	"bool":         KwBool,
	"string":       KwString,
	"void":         KwVoid,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind Kind
	Text string // raw text for IDENT and literals
	Line int    // 1-based line in the source file
	Col  int    // 1-based column
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT, STRINGLIT:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
