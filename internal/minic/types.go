package minic

import (
	"fmt"
	"strings"
)

// TypeKind discriminates the mini-C type shapes.
type TypeKind int

const (
	TVoid TypeKind = iota
	TInt
	TFloat
	TBool
	TString
	TPointer
	TArray
	TStruct
	// TAny is used only in native (host-linked) function signatures: an
	// any-typed parameter accepts every value, and an any-typed result is
	// assignable to anything, mirroring how C code converts void* results.
	TAny
)

// Type describes a mini-C type. Types are interned per Program by the
// checker so pointer equality is not meaningful; use Equal.
type Type struct {
	Kind TypeKind
	Elem *Type  // pointee for TPointer, element for TArray
	Name string // struct name for TStruct
}

// Predeclared basic types, shared by the whole package.
var (
	VoidType   = &Type{Kind: TVoid}
	IntType    = &Type{Kind: TInt}
	FloatType  = &Type{Kind: TFloat}
	BoolType   = &Type{Kind: TBool}
	StringType = &Type{Kind: TString}
	AnyType    = &Type{Kind: TAny}
)

// PointerTo returns the pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: TPointer, Elem: elem} }

// ArrayOf returns the dynamic-array type of elem.
func ArrayOf(elem *Type) *Type { return &Type{Kind: TArray, Elem: elem} }

// StructType returns a named struct type reference.
func StructType(name string) *Type { return &Type{Kind: TStruct, Name: name} }

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TPointer, TArray:
		return t.Elem.Equal(o.Elem)
	case TStruct:
		return t.Name == o.Name
	default:
		return true
	}
}

// String renders the type in mini-C surface syntax: "int", "float[]",
// "frontier_t*", "int[]*".
func (t *Type) String() string {
	if t == nil {
		return "<nil-type>"
	}
	switch t.Kind {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	case TString:
		return "string"
	case TPointer:
		return t.Elem.String() + "*"
	case TArray:
		return t.Elem.String() + "[]"
	case TStruct:
		return t.Name
	case TAny:
		return "any"
	default:
		return fmt.Sprintf("Type(%d)", int(t.Kind))
	}
}

// IsNumeric reports whether arithmetic is defined on t.
func (t *Type) IsNumeric() bool { return t.Kind == TInt || t.Kind == TFloat }

// IsReference reports whether values of t are heap references for which
// null is a valid value.
func (t *Type) IsReference() bool {
	return t.Kind == TPointer || t.Kind == TArray
}

// StructDef is the declaration of a named struct.
type StructDef struct {
	Name   string
	Fields []Field
	Line   int
}

// Field is one struct field.
type Field struct {
	Name string
	Type *Type
}

// FieldIndex returns the position of the named field, or -1.
func (s *StructDef) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Signature is a function's type: parameter types and result type.
type Signature struct {
	Params []*Type
	Result *Type
}

func (s Signature) String() string {
	parts := make([]string, len(s.Params))
	for i, p := range s.Params {
		parts[i] = p.String()
	}
	return fmt.Sprintf("(%s) %s", strings.Join(parts, ", "), s.Result)
}
