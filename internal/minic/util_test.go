package minic

import (
	"strings"
	"testing"
)

func TestFormatValueShapes(t *testing.T) {
	def := &StructDef{Name: "p", Fields: []Field{{Name: "x", Type: IntType}, {Name: "y", Type: StringType}}}
	obj := NewStruct(def)
	obj.Fields[0].V = IntVal(4)
	obj.Fields[1].V = StrVal("s")
	cases := []struct {
		v    Value
		want string
	}{
		{IntVal(-3), "-3"},
		{FloatVal(2.5), "2.5"},
		{BoolVal(true), "true"},
		{StrVal("a\"b"), `"a\"b"`},
		{NullVal(), "null"},
		{PtrVal(nil), "null"},
		{PtrVal(&Cell{V: IntVal(7)}), "&7"},
		{StructVal(obj), `{x = 4, y = "s"}`},
		{ArrVal(nil), "null"},
		{StructVal(nil), "null"},
	}
	for _, tc := range cases {
		if got := FormatValue(tc.v); got != tc.want {
			t.Errorf("FormatValue(%v) = %q, want %q", tc.v.Kind, got, tc.want)
		}
	}

	// Long arrays truncate with a count.
	big := NewArray(IntType, 100)
	got := FormatValue(ArrVal(big))
	if !strings.Contains(got, "... (100 total)") {
		t.Errorf("long array format: %q", got)
	}

	// Cyclic structures terminate via the depth cap.
	cyc := NewStruct(&StructDef{Name: "n", Fields: []Field{{Name: "next", Type: PointerTo(StructType("n"))}}})
	cyc.Fields[0].V = StructVal(cyc)
	if out := FormatValue(StructVal(cyc)); !strings.Contains(out, "{...}") && !strings.Contains(out, "&...") {
		t.Errorf("cyclic format did not cap: %q", out)
	}
}

func TestValuesEqualMatrix(t *testing.T) {
	arr := NewArray(IntType, 1)
	cell := &Cell{}
	cases := []struct {
		a, b Value
		want bool
	}{
		{IntVal(1), IntVal(1), true},
		{IntVal(1), IntVal(2), false},
		{IntVal(1), FloatVal(1), true}, // numeric widening
		{FloatVal(1.5), FloatVal(1.5), true},
		{BoolVal(true), BoolVal(true), true},
		{StrVal("a"), StrVal("a"), true},
		{StrVal("a"), StrVal("b"), false},
		{NullVal(), NullVal(), true},
		{NullVal(), ArrVal(nil), true}, // typed nil == null
		{NullVal(), ArrVal(arr), false},
		{ArrVal(arr), ArrVal(arr), true},
		{PtrVal(cell), PtrVal(cell), true},
		{PtrVal(cell), PtrVal(&Cell{}), false},
		{IntVal(1), StrVal("1"), false},
	}
	for i, tc := range cases {
		if got := ValuesEqual(tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: ValuesEqual = %v, want %v", i, got, tc.want)
		}
	}
}

func TestNativesRegistry(t *testing.T) {
	n := NewNatives()
	if n.Len() == 0 {
		t.Fatal("no core builtins")
	}
	names := n.Names()
	found := false
	for _, name := range names {
		if name == "printf" {
			found = true
		}
	}
	if !found {
		t.Error("printf missing from Names()")
	}
	if _, _, ok := n.Lookup("printf"); !ok {
		t.Error("printf not found")
	}
	if _, _, ok := n.Lookup("nope"); ok {
		t.Error("phantom native found")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	n.Register(&Native{Name: "printf"})
}

func TestFormatPrintfErrors(t *testing.T) {
	cases := []struct {
		format string
		args   []Value
	}{
		{"%d", nil},                  // too few args
		{"%q", []Value{IntVal(1)}},   // unknown verb
		{"trailing %", nil},          // dangling percent
		{"none", []Value{IntVal(1)}}, // extra args
	}
	for _, tc := range cases {
		if _, err := FormatPrintf(tc.format, tc.args); err == nil {
			t.Errorf("format %q accepted", tc.format)
		}
	}
	out, err := FormatPrintf("100%% %d %s %b %f %v", []Value{
		IntVal(1), StrVal("x"), BoolVal(false), FloatVal(0.5), IntVal(9),
	})
	if err != nil || out != "100% 1 x false 0.5 9" {
		t.Errorf("out = %q err = %v", out, err)
	}
}

func TestProgramHelpers(t *testing.T) {
	prog, err := Compile("p.c", `
func void __init_a() { }
func void helper() { }
func void __init_b() { }
func int main() { return 0; }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	inits := prog.InitFuncs()
	if len(inits) != 2 || inits[0] != "__init_a" || inits[1] != "__init_b" {
		t.Errorf("InitFuncs = %v", inits)
	}
	if prog.FuncIndex("helper") < 0 || prog.FuncIndex("ghost") != -1 {
		t.Error("FuncIndex broken")
	}
	if prog.SourceLine(0) != "" || prog.SourceLine(10000) != "" {
		t.Error("out-of-range SourceLine not empty")
	}
	if !strings.Contains(prog.SourceLine(2), "__init_a") {
		t.Errorf("SourceLine(2) = %q", prog.SourceLine(2))
	}
}

func TestTypeStringsAndPredicates(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{IntType, "int"},
		{FloatType, "float"},
		{BoolType, "bool"},
		{StringType, "string"},
		{VoidType, "void"},
		{AnyType, "any"},
		{PointerTo(IntType), "int*"},
		{ArrayOf(FloatType), "float[]"},
		{PointerTo(ArrayOf(IntType)), "int[]*"},
		{StructType("frontier_t"), "frontier_t"},
	}
	for _, tc := range cases {
		if got := tc.t.String(); got != tc.want {
			t.Errorf("%v.String() = %q, want %q", tc.t.Kind, got, tc.want)
		}
	}
	if !IntType.IsNumeric() || !FloatType.IsNumeric() || BoolType.IsNumeric() {
		t.Error("IsNumeric wrong")
	}
	if !PointerTo(IntType).IsReference() || !ArrayOf(IntType).IsReference() || IntType.IsReference() {
		t.Error("IsReference wrong")
	}
	if !ArrayOf(IntType).Equal(ArrayOf(IntType)) || ArrayOf(IntType).Equal(ArrayOf(FloatType)) {
		t.Error("Equal wrong for arrays")
	}
	var nilT *Type
	if got := nilT.String(); got != "<nil-type>" {
		t.Errorf("nil type string = %q", got)
	}
}

func TestThreadAndStateStrings(t *testing.T) {
	for st, want := range map[ThreadState]string{
		ThreadReady: "ready", ThreadWaiting: "waiting", ThreadDone: "done", ThreadFaulted: "faulted",
	} {
		if st.String() != want {
			t.Errorf("%v", st)
		}
	}
	if !strings.Contains(Token{Kind: IDENT, Text: "abc"}.String(), "abc") {
		t.Error("token string")
	}
	if OpConst.String() != "const" {
		t.Error("opcode string")
	}
	in := Instr{Op: OpConst, A: 1, StmtStart: true, Line: 4}
	if !strings.Contains(in.String(), "stmt") || !strings.Contains(in.String(), "@4") {
		t.Errorf("instr string: %q", in.String())
	}
}

func TestDeepRecursionOverflows(t *testing.T) {
	_, _, err := tryRunProgram(`
func int down(int n) {
	return down(n + 1);
}
func int main() {
	return down(0);
}`)
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("unbounded recursion: %v", err)
	}
}

func TestVMRequiresMain(t *testing.T) {
	prog, err := Compile("p.c", "func void f() { }", nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, nil)
	if err := vm.Run(); err == nil || !strings.Contains(err.Error(), "no main") {
		t.Errorf("missing main: %v", err)
	}
	prog2, _ := Compile("p.c", "func int main() { return 0; }", nil)
	vm2 := NewVM(prog2, nil)
	if err := vm2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := vm2.Start(); err == nil {
		t.Error("double Start accepted")
	}
}
