package minic

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPrintRoundTrip(t *testing.T) {
	src := `struct frontier_t {
	bool is_dense;
	int num_vertices;
	int[] dense_vertex_set;
	bool[] bool_map;
}

global int[] nrank;
global float damp = 0.85;

func void updateEdge_1(int s, int d) {
	atomic_add(&nrank[d], 1);
}

func int main() {
	int x = 1;
	float y = 2.5;
	string s = "a\nb";
	if (x == 1 && y > 2.0) {
		x += 3;
	} else if (x < 0) {
		x--;
	} else {
		x = -x;
	}
	while (x > 0) {
		x -= 1;
		if (x == 2) {
			break;
		}
		continue;
	}
	for (int i = 0; i < 10; i++) {
		x = x + i * 2;
	}
	parallel_for (int i = 0; i < 10; i++) {
		atomic_add(&nrank[i], i);
	}
	frontier_t* f = new frontier_t;
	f->is_dense = true;
	int[] arr = new int[10];
	arr[0] = int(y);
	updateEdge_1(x, arr[0]);
	return x;
}
`
	f1, err := Parse("a.c", src)
	if err != nil {
		t.Fatal(err)
	}
	out1 := Print(f1)
	f2, err := Parse("a.c", out1)
	if err != nil {
		t.Fatalf("reparse of printed output failed: %v\noutput:\n%s", err, out1)
	}
	out2 := Print(f2)
	if out1 != out2 {
		t.Errorf("print is not a fixed point.\nfirst:\n%s\nsecond:\n%s", out1, out2)
	}
}

// genExpr builds a random well-formed integer expression of bounded depth.
// Used by the property test: printing must preserve evaluation.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		return &IntLit{Value: int64(r.Intn(50) + 1)}
	}
	ops := []Kind{Plus, Minus, Star, Slash, Percent}
	op := ops[r.Intn(len(ops))]
	return &BinaryExpr{
		Op: op,
		X:  genExpr(r, depth-1),
		Y:  genExpr(r, depth-1),
	}
}

// TestPrinterPreservesEvaluation is a property-based test: for random
// expression trees, the printed form must reparse and evaluate to the same
// value the original tree evaluates to. This catches precedence and
// parenthesisation bugs in the printer.
func TestPrinterPreservesEvaluation(t *testing.T) {
	evalTree := func(e Expr) (int64, bool) {
		var rec func(Expr) (int64, bool)
		rec = func(e Expr) (int64, bool) {
			switch x := e.(type) {
			case *IntLit:
				return x.Value, true
			case *BinaryExpr:
				a, ok := rec(x.X)
				if !ok {
					return 0, false
				}
				b, ok := rec(x.Y)
				if !ok {
					return 0, false
				}
				switch x.Op {
				case Plus:
					return a + b, true
				case Minus:
					return a - b, true
				case Star:
					return a * b, true
				case Slash:
					if b == 0 {
						return 0, false
					}
					return a / b, true
				case Percent:
					if b == 0 {
						return 0, false
					}
					return a % b, true
				}
			}
			return 0, false
		}
		return rec(e)
	}

	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := genExpr(r, 4)
		want, ok := evalTree(tree)
		if !ok {
			return true // division by zero in the tree; skip
		}
		src := "func int main() { int result = " + exprString(tree) + "; return result; }"
		prog, err := Compile("gen.c", src, nil)
		if err != nil {
			t.Logf("seed %d: compile error: %v\nsrc: %s", seed, err, src)
			return false
		}
		vm := NewVM(prog, nil)
		if err := vm.Run(); err != nil {
			t.Logf("seed %d: run error: %v", seed, err)
			return false
		}
		got := vm.threads[0].Result.I
		if got != want {
			t.Logf("seed %d: got %d want %d\nsrc: %s", seed, got, want, src)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLexerPropertyIdentifiers checks that any identifier-shaped string
// round-trips through the lexer as a single IDENT token (or keyword).
func TestLexerPropertyIdentifiers(t *testing.T) {
	letters := "abcdefghijklmnopqrstuvwxyz_ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(20) + 1
		var b strings.Builder
		b.WriteByte(letters[r.Intn(len(letters))])
		for i := 1; i < n; i++ {
			b.WriteByte("abcdefghijklmnopqrstuvwxyz0123456789_"[r.Intn(37)])
		}
		name := b.String()
		toks, err := lexAll("t.c", name)
		if err != nil {
			return false
		}
		if len(toks) != 2 { // token + EOF
			return false
		}
		if _, isKw := keywords[name]; isKw {
			return toks[0].Kind != IDENT
		}
		return toks[0].Kind == IDENT && toks[0].Text == name
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStringLiteralRoundTrip: quoting then lexing any byte string (without
// exotic bytes) yields the original value.
func TestStringLiteralRoundTrip(t *testing.T) {
	check := func(s string) bool {
		// The mini-C escape set covers ASCII; restrict the property to it.
		for i := 0; i < len(s); i++ {
			if s[i] > 126 || (s[i] < 32 && s[i] != '\n' && s[i] != '\t' && s[i] != '\r' && s[i] != 0) {
				return true
			}
		}
		toks, err := lexAll("t.c", quoteMiniC(s))
		if err != nil {
			t.Logf("lex error for %q: %v", s, err)
			return false
		}
		return len(toks) == 2 && toks[0].Kind == STRINGLIT && toks[0].Text == s
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
