package effects

// Per-function control-flow graph over mini-C statements. The effects
// analysis uses it for one precise question — is this `break` actually
// reachable from the loop entry? — which separates `while (true) { ...
// if (c) break; }` (fuel-bounded) from `while (true) {}` (unprovable).
// The graph is statement-granular: each Block is a maximal straight-line
// run of statements, with loop headers and if-conditions ending blocks.

import "d2x/internal/minic"

// Block is one basic block.
type Block struct {
	ID    int
	Stmts []minic.Stmt
	Succs []*Block
}

// CFG is the control-flow graph of one function.
type CFG struct {
	Fn     *minic.FuncDecl
	Blocks []*Block
	Entry  *Block
	Exit   *Block // every return and the fall-off-end path edge here

	stmtBlock map[minic.Stmt]*Block
}

// BlockOf returns the basic block containing statement s, or nil if s is
// not part of this function.
func (c *CFG) BlockOf(s minic.Stmt) *Block { return c.stmtBlock[s] }

// Reachable returns the set of blocks reachable from the entry.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{c.Entry: true}
	stack := []*Block{c.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// StmtReachable reports whether s lies in an entry-reachable block.
func (c *CFG) StmtReachable(s minic.Stmt) bool {
	b := c.stmtBlock[s]
	return b != nil && c.Reachable()[b]
}

// BuildCFG lowers a function body to its control-flow graph. mini-C is
// fully structured (no goto), so the lowering is a direct recursion with
// break/continue target stacks.
func BuildCFG(fd *minic.FuncDecl) *CFG {
	b := &cfgBuilder{cfg: &CFG{Fn: fd, stmtBlock: map[minic.Stmt]*Block{}}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.blockStmts(fd.Body)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit) // implicit return at end of body
	}
	return b.cfg
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block // nil right after a terminator (return/break/continue)

	breakTo    []*Block
	continueTo []*Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{ID: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// append records s in the current block, opening a fresh (unreachable)
// block if control already terminated — statements after a return still
// get a home, and reachability analysis naturally reports them dead.
func (b *cfgBuilder) append(s minic.Stmt) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Stmts = append(b.cur.Stmts, s)
	b.cfg.stmtBlock[s] = b.cur
}

func (b *cfgBuilder) blockStmts(blk *minic.BlockStmt) {
	if blk == nil {
		return
	}
	for _, s := range blk.Stmts {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s minic.Stmt) {
	switch st := s.(type) {
	case *minic.BlockStmt:
		b.blockStmts(st)

	case *minic.IfStmt:
		b.append(st)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.blockStmts(st.Then)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		if st.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(st.Else)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *minic.WhileStmt:
		header := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, header)
		}
		b.cur = header
		b.append(st)
		after := b.newBlock()
		if !condAlwaysTrue(st.Cond) {
			b.edge(header, after) // cond may be false on entry
		}
		body := b.newBlock()
		b.edge(header, body)
		b.pushLoop(after, header)
		b.cur = body
		b.blockStmts(st.Body)
		if b.cur != nil {
			b.edge(b.cur, header)
		}
		b.popLoop()
		b.cur = after

	case *minic.ForStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		header := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, header)
		}
		b.cur = header
		b.append(st)
		after := b.newBlock()
		if st.Cond != nil && !condAlwaysTrue(st.Cond) {
			b.edge(header, after)
		}
		body := b.newBlock()
		b.edge(header, body)
		post := b.newBlock()
		if st.Post != nil {
			// The post statement belongs to the loop's back-edge block
			// (continue jumps here, not to the header).
			b.cfg.stmtBlock[st.Post] = post
			post.Stmts = append(post.Stmts, st.Post)
		}
		b.edge(post, header)
		b.pushLoop(after, post)
		b.cur = body
		b.blockStmts(st.Body)
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		b.popLoop()
		b.cur = after

	case *minic.ParallelForStmt:
		// The iteration space [Lo, Hi) is computed once up front, so a
		// parallel_for always terminates; model it as body-or-skip with
		// a back edge for repeated iterations.
		b.append(st)
		header := b.cur
		after := b.newBlock()
		b.edge(header, after)
		body := b.newBlock()
		b.edge(header, body)
		b.cur = body
		b.blockStmts(st.Body)
		if b.cur != nil {
			b.edge(b.cur, header)
		}
		b.cur = after

	case *minic.ReturnStmt:
		b.append(st)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *minic.BreakStmt:
		b.append(st)
		if n := len(b.breakTo); n > 0 {
			b.edge(b.cur, b.breakTo[n-1])
		}
		b.cur = nil

	case *minic.ContinueStmt:
		b.append(st)
		if n := len(b.continueTo); n > 0 {
			b.edge(b.cur, b.continueTo[n-1])
		}
		b.cur = nil

	default:
		b.append(s)
	}
}

func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, cont)
}

func (b *cfgBuilder) popLoop() {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
}

// condAlwaysTrue reports whether a loop condition is the constant true
// (so the loop's only exits are break/return).
func condAlwaysTrue(e minic.Expr) bool {
	bl, ok := e.(*minic.BoolLit)
	return ok && bl.Value
}
