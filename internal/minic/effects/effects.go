// Package effects implements an interprocedural effect-and-termination
// analysis over checked mini-C programs. It answers the question the D2X
// verifier and runtime both need before letting the debugger `call`
// generated code inside a paused debuggee: can this function write
// debuggee state, and does it provably terminate?
//
// The analysis is a classic monotone framework:
//
//   - An intrinsic pass classifies each function body alone: heap reads
//     and writes (globals, stores through pointers, array/struct fields
//     not provably backed by a local `new`), native calls by a fixed
//     policy, and per-loop termination via a bound heuristic backed by a
//     per-function CFG (cfg.go, loops.go).
//   - Call-graph cycles (mutual or self recursion) mark every function on
//     the cycle DivergesMaybe — recursion depth is not bounded here.
//   - A fixpoint then propagates effects and loop classes over call
//     edges until nothing changes. The lattice is finite (a bitmask and
//     a three-point chain) and all transfer functions are monotone, so
//     termination is immediate.
//
// Consumers: d2xverify's checks_effects family (compile-time rejection),
// d2xenc (effect summaries embedded in the emitted D2X tables), and
// d2xr/debugger (choosing a runtime Guard when the proof is partial).
package effects

import (
	"sort"
	"strings"

	"d2x/internal/minic"
)

// Effect is a bitmask over the effect lattice. The bottom element (0)
// means pure: no heap access, no extern calls, provably terminating
// modulo loop classification (which is tracked separately in LoopClass).
type Effect uint8

const (
	// ReadsHeap: the function may read debuggee state that outlives the
	// call — globals, or memory reached through pointers/arrays/fields
	// not allocated by the function itself.
	ReadsHeap Effect = 1 << iota
	// WritesHeap: the function may mutate such state. This is the
	// property that makes an rtv handler unsafe to `call` in a paused
	// debuggee.
	WritesHeap
	// CallsExtern: the function may call a native whose behaviour the
	// analysis does not model precisely (I/O, runtime services).
	CallsExtern
	// DivergesMaybe: the function sits on a call-graph cycle, so
	// termination cannot be argued structurally.
	DivergesMaybe
)

// String renders the mask as "pure" or a |-joined list of effect names.
func (e Effect) String() string {
	if e == 0 {
		return "pure"
	}
	var parts []string
	if e&ReadsHeap != 0 {
		parts = append(parts, "reads-heap")
	}
	if e&WritesHeap != 0 {
		parts = append(parts, "writes-heap")
	}
	if e&CallsExtern != 0 {
		parts = append(parts, "calls-extern")
	}
	if e&DivergesMaybe != 0 {
		parts = append(parts, "diverges-maybe")
	}
	return strings.Join(parts, "|")
}

// LoopClass is the termination verdict for the loops of a function
// (including, transitively, the loops of its callees). The values form
// a chain; interprocedural propagation takes the maximum.
type LoopClass int

const (
	// LoopTrivial: every loop matches the trivially-bounded pattern
	// (counted for-loop over an invariant bound), or there are no loops.
	LoopTrivial LoopClass = iota
	// LoopFuelBounded: some loop could not be proven bounded but is
	// plausibly finite (data-dependent condition, or a while(true) with
	// a reachable break); safe to run only under a fuel budget.
	LoopFuelBounded
	// LoopUnprovable: some loop has no structural exit at all — a
	// while(true) whose every break is unreachable. Running it means
	// burning the entire fuel budget.
	LoopUnprovable
)

// String returns the class name used in diagnostics and -effects output.
func (c LoopClass) String() string {
	switch c {
	case LoopTrivial:
		return "trivially-bounded"
	case LoopFuelBounded:
		return "fuel-bounded"
	case LoopUnprovable:
		return "unprovable"
	}
	return "unknown"
}

// Summary is the analysis result for one function.
type Summary struct {
	Name    string
	Effects Effect
	Loop    LoopClass

	// WriteLine is the source line of the first heap write found (or of
	// the call site that transitively introduces one); 0 if none.
	WriteLine int
	// LoopLine is the source line of the worst-classified loop (or of
	// the call site importing it); 0 when Loop is LoopTrivial.
	LoopLine int
}

// Safe reports whether the function may be evaluated inside a paused
// debuggee with no runtime guard at all: it provably writes nothing and
// provably terminates.
func (s *Summary) Safe() bool {
	return s.Effects&(WritesHeap|DivergesMaybe) == 0 && s.Loop == LoopTrivial
}

// Analysis holds the fixpoint summaries for every function of a program.
type Analysis struct {
	Prog   *minic.Program
	Funcs  []*Summary // parallel to Prog.Funcs
	byName map[string]*Summary
}

// ByName returns the summary for the named function.
func (a *Analysis) ByName(name string) (*Summary, bool) {
	s, ok := a.byName[name]
	return s, ok
}

// nativeFX is the fixed effect policy for natives the analysis knows.
// Natives absent from this map default to ReadsHeap|CallsExtern — a DSL
// runtime call may observe anything, but writes are only attributed
// through the explicit Native.WritesMemory registration flag, so unknown
// natives never trigger the SevError write diagnostic by themselves.
var nativeFX = map[string]Effect{
	"printf":             CallsExtern,
	"to_str":             0,
	"len":                0,
	"str_len":            0,
	"fabs":               0,
	"sqrt":               0,
	"min_int":            0,
	"max_int":            0,
	"thread_id":          0,
	"num_workers":        0,
	"assert":             0,
	"atomic_add":         ReadsHeap | WritesHeap,
	"atomic_min":         ReadsHeap | WritesHeap,
	"cas":                ReadsHeap | WritesHeap,
	"d2x_find_stack_var": ReadsHeap | CallsExtern,
}

// NativeEffect returns the effect mask attributed to one native call.
func NativeEffect(nat *minic.Native) Effect {
	e, known := nativeFX[nat.Name]
	if !known {
		e = ReadsHeap | CallsExtern
	}
	if nat.WritesMemory {
		e |= ReadsHeap | WritesHeap
	}
	return e
}

// callEdge is one static call site in the call graph.
type callEdge struct {
	callee int // index into Prog.Funcs
	line   int
}

// Analyze runs the full analysis over a checked program and returns the
// fixpoint summaries. The program needs checker annotations (slots,
// global indices, call resolution) but not compiled bytecode.
func Analyze(p *minic.Program) *Analysis {
	a := &Analysis{
		Prog:   p,
		Funcs:  make([]*Summary, len(p.Funcs)),
		byName: make(map[string]*Summary, len(p.Funcs)),
	}
	edges := make([][]callEdge, len(p.Funcs))
	for i, fd := range p.Funcs {
		s := &Summary{Name: fd.Name, Loop: LoopTrivial}
		edges[i] = intrinsic(p, fd, s)
		cls, line := classifyLoops(p, fd, BuildCFG(fd))
		if cls > s.Loop {
			s.Loop, s.LoopLine = cls, line
		}
		a.Funcs[i] = s
		a.byName[fd.Name] = s
	}
	markCycles(edges, a.Funcs)

	// Interprocedural fixpoint: a caller absorbs its callees' effects
	// and worst loop class. Strictly increasing on a finite lattice.
	for changed := true; changed; {
		changed = false
		for i := range a.Funcs {
			s := a.Funcs[i]
			for _, e := range edges[i] {
				c := a.Funcs[e.callee]
				if add := c.Effects &^ s.Effects; add != 0 {
					if add&WritesHeap != 0 && s.WriteLine == 0 {
						s.WriteLine = e.line
					}
					s.Effects |= add
					changed = true
				}
				if c.Loop > s.Loop {
					s.Loop = c.Loop
					s.LoopLine = e.line
					changed = true
				}
			}
		}
	}
	return a
}

// intrinsic classifies one function body in isolation, filling s with
// its direct effects and returning its outgoing call edges.
func intrinsic(p *minic.Program, fd *minic.FuncDecl, s *Summary) []callEdge {
	var edges []callEdge
	local := locallyAllocated(fd)

	// isLocalRoot reports whether an lvalue chain (fields/indices)
	// bottoms out in a local variable that only ever holds memory this
	// function allocated itself — such stores cannot touch debuggee
	// state that outlives the call.
	isLocalRoot := func(e minic.Expr) bool {
		for {
			switch x := e.(type) {
			case *minic.IndexExpr:
				e = x.X
			case *minic.FieldExpr:
				e = x.X
			default:
				id, ok := e.(*minic.Ident)
				return ok && !id.IsGlobal && !id.IsFunc && local[id.Slot]
			}
		}
	}

	heapWrite := func(line int) {
		if s.Effects&WritesHeap == 0 {
			s.WriteLine = line
		}
		s.Effects |= WritesHeap
	}

	// markReads walks one expression tree, attributing heap reads,
	// native effects, and call edges.
	markReads := func(e minic.Expr) {
		minic.InspectExpr(e, func(n minic.Expr) {
			switch x := n.(type) {
			case *minic.Ident:
				if x.IsGlobal {
					s.Effects |= ReadsHeap
				}
			case *minic.IndexExpr:
				if !isLocalRoot(x) {
					s.Effects |= ReadsHeap
				}
			case *minic.FieldExpr:
				if !isLocalRoot(x) {
					s.Effects |= ReadsHeap
				}
			case *minic.UnaryExpr:
				if x.Op == minic.Star {
					s.Effects |= ReadsHeap
				}
			case *minic.CallExpr:
				if x.IsBuiltin {
					fx := NativeEffect(p.Natives.At(x.BuiltinIndex))
					if fx&WritesHeap != 0 && s.Effects&WritesHeap == 0 {
						s.WriteLine = x.Pos()
					}
					s.Effects |= fx
				} else {
					edges = append(edges, callEdge{callee: x.FuncIndex, line: x.Pos()})
				}
			}
		})
	}

	markStore := func(lhs minic.Expr, line int) {
		switch x := lhs.(type) {
		case *minic.Ident:
			if x.IsGlobal {
				heapWrite(line)
			}
		case *minic.IndexExpr, *minic.FieldExpr:
			if !isLocalRoot(x) {
				heapWrite(line)
			}
			// The subscript/base computation still reads.
			switch l := x.(type) {
			case *minic.IndexExpr:
				markReads(l.X)
				markReads(l.Index)
			case *minic.FieldExpr:
				markReads(l.X)
			}
		case *minic.UnaryExpr: // *p = ...
			heapWrite(line)
			markReads(x.X)
		default:
			heapWrite(line)
			markReads(lhs)
		}
	}

	minic.InspectStmts(fd.Body, func(st minic.Stmt) bool {
		switch x := st.(type) {
		case *minic.AssignStmt:
			markStore(x.LHS, x.Pos())
			if x.Op != minic.Assign {
				// += / -= reads the target too.
				markReads(x.LHS)
			}
			markReads(x.RHS)
		case *minic.IncDecStmt:
			markStore(x.LHS, x.Pos())
			markReads(x.LHS)
		default:
			minic.StmtExprs(st, markReads)
		}
		return true
	})
	return edges
}

// locallyAllocated returns the set of local slots whose every assignment
// is a `new` expression and whose address is never taken — memory that
// provably belongs to this invocation, so stores through it are local.
// Parameters never qualify (their memory came from the caller).
func locallyAllocated(fd *minic.FuncDecl) map[int]bool {
	candidate := map[int]bool{}
	disqualified := map[int]bool{}
	minic.InspectStmts(fd.Body, func(st minic.Stmt) bool {
		switch x := st.(type) {
		case *minic.VarDeclStmt:
			if _, isNew := x.Init.(*minic.NewExpr); isNew {
				candidate[x.Slot] = true
			} else {
				disqualified[x.Slot] = true
			}
		case *minic.AssignStmt:
			if id, ok := x.LHS.(*minic.Ident); ok && !id.IsGlobal && !id.IsFunc {
				if _, isNew := x.RHS.(*minic.NewExpr); !isNew || x.Op != minic.Assign {
					disqualified[id.Slot] = true
				} else {
					candidate[id.Slot] = true
				}
			}
		case *minic.IncDecStmt:
			if id, ok := x.LHS.(*minic.Ident); ok && !id.IsGlobal && !id.IsFunc {
				disqualified[id.Slot] = true
			}
		}
		// &x lets the pointer escape; a callee or alias could then
		// republish the memory, so the slot no longer proves locality.
		minic.StmtExprs(st, func(e minic.Expr) {
			minic.InspectExpr(e, func(n minic.Expr) {
				if u, ok := n.(*minic.UnaryExpr); ok && u.Op == minic.Amp {
					if id, ok := u.X.(*minic.Ident); ok && !id.IsGlobal {
						disqualified[id.Slot] = true
					}
				}
			})
		})
		return true
	})
	for slot := range disqualified {
		delete(candidate, slot)
	}
	return candidate
}

// markCycles marks every function on a call-graph cycle (including
// self-recursion) DivergesMaybe: structural loop bounds say nothing
// about recursion depth. Plain DFS reachability per node — programs
// here are small, and the result feeds the same fixpoint anyway.
func markCycles(edges [][]callEdge, sums []*Summary) {
	for i := range sums {
		if onCycle(i, edges) {
			sums[i].Effects |= DivergesMaybe
			if sums[i].Loop < LoopFuelBounded {
				sums[i].Loop = LoopFuelBounded
			}
		}
	}
}

// onCycle reports whether function i can reach itself through one or
// more call edges.
func onCycle(i int, edges [][]callEdge) bool {
	seen := map[int]bool{}
	var stack []int
	for _, e := range edges[i] {
		stack = append(stack, e.callee)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == i {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		for _, e := range edges[n] {
			stack = append(stack, e.callee)
		}
	}
	return false
}

// Sorted returns the summaries ordered by function name — the stable
// order used by `d2xlint -effects` and the verifier's diagnostics.
func (a *Analysis) Sorted() []*Summary {
	out := make([]*Summary, len(a.Funcs))
	copy(out, a.Funcs)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
